// mars_sim — command-line driver for MARS experiments.
//
// Subcommands:
//   generate  --out FILE [--objects N] [--mb N] [--zipf] [--seed S]
//       Generate a procedural city scene and persist it.
//   info      --db FILE
//       Print a summary of a persisted scene.
//   run       [--db FILE | --objects N | --mb N] [--tour tram|walk]
//             [--speed S] [--frames N] [--distance M]
//             [--client buffered|streaming|naive] [--buffer-kb N]
//             [--query-frac F] [--index support|naive-point]
//             [--no-prefetch] [--naive-prefetch] [--kalman] [--seed S]
//             [--loss P] [--outage-rate R] [--outage-secs S]
//             [--clients N] [--workers M] [--shards K]
//             [--fanout-workers W]
//             [--fairness wfq|equal] [--weights S,B,N] [--admission]
//             [--coalesce on|off]
//             [--cells K] [--cell-outage-rate R] [--handover-blackout S]
//             [--store memory|disk] [--pages FILE] [--page-size N]
//             [--pool-pages N] [--evict lru|motion]
//             [--rebalance on|off] [--rebalance-interval N]
//             [--split-factor F] [--merge-factor F] [--max-shards K]
//             [--abr on|off] [--ladder-steps N] [--abr-target BPS]
//             [--handover-dwell N]
//       Run one client over one tour and print the metrics.
//       --loss injects i.i.d. packet loss (probability per exchange,
//       < 0.5); --outage-rate schedules full-connectivity outages at R
//       per hour with mean duration --outage-secs (default 8 s).
//       With --clients N > 1, runs a mixed fleet of N concurrent clients
//       (streaming/buffered/naive, alternating tram/walk tours) against
//       one shared server and a shared 2 Mbps cell, using --workers M
//       threads for the parallel phase; the per-client and aggregate
//       metrics are bit-identical at any M. --loss then applies to the
//       cell, --outage-rate to the cell's fault schedule.
//       --fairness selects the cell's scheduling discipline (weighted
//       fair queuing by default; "equal" is the legacy per-transfer
//       equal-share model). --weights sets the WFQ weight per client
//       kind as three comma-separated values: streaming,buffered,naive
//       (e.g. --weights 2,2,1 gives the motion-aware clients twice the
//       naive baseline's share). --admission enables the server's
//       admission controller on the cell (defer/shed under overload).
//       --coalesce on enables cross-client request coalescing on the
//       cell (fleet mode only, requires --fairness wfq): concurrent
//       requests for the same record ride one wire copy through the
//       server's inflight table; the cell is charged once for the
//       coalesced payload plus a small per-attach header. Off (the
//       default) is a strict passthrough — output is bit-identical to
//       a build without the feature. When on, the JSON block gains
//       per-class coalescing lines, a totals line, and per-shard hot
//       cache stats.
//       --shards K partitions the coefficient index over a ground-plane
//       grid of K shards (default 1 = the classic single tree; every
//       query's required set is identical at any K) and prints per-shard
//       stats in the JSON block when K > 1. --fanout-workers W > 1
//       queries the shards in parallel; results are identical to
//       sequential fan-out.
//       --cells K tiles the ground plane with K radio cells (fleet mode
//       only; default 1 = the classic single shared cell, a strict
//       bit-identical passthrough). Each client is served by the cell
//       covering its position and handed over as it crosses cells; a
//       cell outage fails its clients over to the nearest healthy
//       neighbour, cancelling and re-issuing their in-flight transfers.
//       --cell-outage-rate R schedules whole-cell outages at R per hour
//       (per cell, independent seeds; mean duration --outage-secs),
//       overriding --outage-rate for the cells. --handover-blackout S
//       blacks out a client's private bearer for S seconds after each
//       handover (the radio re-association gap). With --cells K > 1 the
//       JSON block gains per-cell, handover and chaos-invariant lines.
//       --store disk pages the coefficient index into the --pages file
//       (shard k of K > 1 appends ".shard<k>") behind per-shard buffer
//       pools of --pool-pages total pages of --page-size bytes; a rerun
//       against an existing page file restores the trees instead of
//       rebuilding ("restored shards" reports how many attached).
//       --evict picks the pool's eviction policy: lru, or motion — the
//       paper's client visit-probability logic run server-side over the
//       fleet's predicted positions. The default --store memory is a
//       bit-identical passthrough; disk mode adds "-- storage --" lines
//       and per-shard pool stats to the JSON block.
//       --warm on starts the background pool warmer (requires --store
//       disk --evict motion): a dedicated I/O pool speculatively reads
//       the pages the fleet's interest field predicts it is about to
//       traverse, installing them at the next serial commit point under
//       a never-evict-hotter rule. --warm-budget N caps the arrays
//       admitted into flight per tick (default 32); --warm-workers W
//       sizes the I/O pool (default 2). Query results and node-access
//       counts are bit-identical to --warm off at any --workers or
//       --warm-workers; only pool hit rates and wall-clock change. Off
//       (the default) is a strict bit-identical passthrough; on extends
//       the pool_shard JSON lines with prefetch counters.
//       --rebalance on makes the shard set load-adaptive: every
//       --rebalance-interval frames (default 16) the server splits a
//       shard running hotter than --split-factor (default 2.0) times its
//       fair share of that window's index accesses and merges one idling
//       below --merge-factor (default 0.1) of it, up to --max-shards
//       total slots — online split/merge via the same build-then-swap
//       epochs as ingest, so queries never block. Works from any
//       --shards (even 1) and in both single-client and fleet mode;
//       fleet metrics stay byte-identical at any --workers. Off (the
//       default) is a strict bit-identical passthrough. When on, the
//       output gains a "-- rebalance --" summary and one JSON line per
//       applied op.
//       --abr on gives every motion-aware fleet client an adaptive
//       resolution ladder (fleet mode only): under admission
//       backpressure or collapsing goodput the client coarsens its
//       requested w_min one rung at a time (fetch coarse now), and when
//       the cell clears it steps back down, topping detail up through
//       Algorithm 1's resolution-increment path. --ladder-steps N sets
//       the rung count above the static mapping (default 4);
//       --abr-target BPS the per-client goodput (bytes/second,
//       default 16384) considered healthy. Ladder decisions are made in
//       the fleet's serial commit phase from integer-microsecond
//       virtual-clock state, so the fleet JSON stays byte-identical at
//       any --workers. Off (the default) is a strict bit-identical
//       passthrough; on adds per-client "abr_client" lines and an "abr"
//       totals line to the JSON block.
//       --handover-dwell N delays a voluntary cell handover until the
//       covering cell has differed from the serving cell for N
//       consecutive routing rounds (cell-edge ping-pong hysteresis;
//       default 1 = immediate, the historical behavior). Outage
//       failovers always fire immediately.
//
// Examples:
//   mars_sim generate --mb 60 --out city.mars
//   mars_sim run --db city.mars --tour walk --speed 0.7 --client buffered
//   mars_sim run --mb 20 --tour tram --speed 1.0 --client naive
//   mars_sim run --mb 20 --loss 0.05 --outage-rate 30 --outage-secs 5
//   mars_sim run --mb 20 --clients 32 --workers 8 --frames 120
//   mars_sim run --mb 20 --clients 12 --cells 4 --cell-outage-rate 60

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "common/units.h"
#include "core/metrics.h"
#include "core/system.h"
#include "fleet/fleet_engine.h"
#include "server/persistence.h"
#include "workload/scene.h"
#include "workload/tour.h"

namespace {

using namespace mars;  // NOLINT

struct Flags {
  std::string command;
  std::string db_path;
  std::string out_path;
  int objects = 0;
  int mb = 0;
  bool zipf = false;
  uint64_t seed = 42;
  std::string tour = "tram";
  double speed = 0.5;
  int frames = 300;
  double distance = -1.0;
  std::string client = "buffered";
  int buffer_kb = 64;
  double query_frac = 0.1;
  std::string index = "support";
  bool no_prefetch = false;
  bool naive_prefetch = false;
  bool kalman = false;
  double loss = 0.0;
  double outage_rate = 0.0;
  double outage_secs = 8.0;
  int clients = 1;
  int workers = 1;
  int shards = 1;
  int fanout_workers = 1;
  std::string fairness = "wfq";
  double weight_streaming = 1.0;
  double weight_buffered = 1.0;
  double weight_naive = 1.0;
  bool admission = false;
  std::string coalesce = "off";
  int cells = 1;
  double cell_outage_rate = 0.0;
  double handover_blackout = 0.0;
  std::string store = "memory";
  std::string pages_path;
  int page_size = 4096;
  int pool_pages = 256;
  std::string evict = "lru";
  std::string warm = "off";
  int warm_budget = 32;
  int warm_workers = 2;
  std::string rebalance = "off";
  int rebalance_interval = 16;
  double split_factor = 2.0;
  double merge_factor = 0.1;
  int max_shards = 64;
  std::string abr = "off";
  int ladder_steps = 4;
  double abr_target = 16384.0;  // bytes/second
  int handover_dwell = 1;
};

void Usage() {
  std::fprintf(stderr,
               "usage: mars_sim generate|info|run [flags]\n"
               "run `head -30 tools/mars_sim.cc` for the flag list\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  if (argc < 2) return false;
  flags->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--db") {
      flags->db_path = next();
    } else if (arg == "--out") {
      flags->out_path = next();
    } else if (arg == "--objects") {
      flags->objects = std::atoi(next());
    } else if (arg == "--mb") {
      flags->mb = std::atoi(next());
    } else if (arg == "--zipf") {
      flags->zipf = true;
    } else if (arg == "--seed") {
      flags->seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--tour") {
      flags->tour = next();
    } else if (arg == "--speed") {
      flags->speed = std::atof(next());
    } else if (arg == "--frames") {
      flags->frames = std::atoi(next());
    } else if (arg == "--distance") {
      flags->distance = std::atof(next());
    } else if (arg == "--client") {
      flags->client = next();
    } else if (arg == "--buffer-kb") {
      flags->buffer_kb = std::atoi(next());
    } else if (arg == "--query-frac") {
      flags->query_frac = std::atof(next());
    } else if (arg == "--index") {
      flags->index = next();
    } else if (arg == "--no-prefetch") {
      flags->no_prefetch = true;
    } else if (arg == "--naive-prefetch") {
      flags->naive_prefetch = true;
    } else if (arg == "--kalman") {
      flags->kalman = true;
    } else if (arg == "--loss") {
      flags->loss = std::atof(next());
    } else if (arg == "--outage-rate") {
      flags->outage_rate = std::atof(next());
    } else if (arg == "--outage-secs") {
      flags->outage_secs = std::atof(next());
    } else if (arg == "--clients") {
      flags->clients = std::atoi(next());
    } else if (arg == "--workers") {
      flags->workers = std::atoi(next());
    } else if (arg == "--shards") {
      flags->shards = std::atoi(next());
    } else if (arg == "--fanout-workers") {
      flags->fanout_workers = std::atoi(next());
    } else if (arg == "--fairness") {
      flags->fairness = next();
    } else if (arg == "--weights") {
      if (std::sscanf(next(), "%lf,%lf,%lf", &flags->weight_streaming,
                      &flags->weight_buffered, &flags->weight_naive) != 3) {
        std::fprintf(stderr, "--weights wants S,B,N (three doubles)\n");
        return false;
      }
    } else if (arg == "--admission") {
      flags->admission = true;
    } else if (arg == "--coalesce") {
      flags->coalesce = next();
    } else if (arg == "--cells") {
      flags->cells = std::atoi(next());
    } else if (arg == "--cell-outage-rate") {
      flags->cell_outage_rate = std::atof(next());
    } else if (arg == "--handover-blackout") {
      flags->handover_blackout = std::atof(next());
    } else if (arg == "--store") {
      flags->store = next();
    } else if (arg == "--pages") {
      flags->pages_path = next();
    } else if (arg == "--page-size") {
      flags->page_size = std::atoi(next());
    } else if (arg == "--pool-pages") {
      flags->pool_pages = std::atoi(next());
    } else if (arg == "--evict") {
      flags->evict = next();
    } else if (arg == "--warm") {
      flags->warm = next();
    } else if (arg == "--warm-budget") {
      flags->warm_budget = std::atoi(next());
    } else if (arg == "--warm-workers") {
      flags->warm_workers = std::atoi(next());
    } else if (arg == "--rebalance") {
      flags->rebalance = next();
    } else if (arg == "--rebalance-interval") {
      flags->rebalance_interval = std::atoi(next());
    } else if (arg == "--split-factor") {
      flags->split_factor = std::atof(next());
    } else if (arg == "--merge-factor") {
      flags->merge_factor = std::atof(next());
    } else if (arg == "--max-shards") {
      flags->max_shards = std::atoi(next());
    } else if (arg == "--abr") {
      flags->abr = next();
    } else if (arg == "--ladder-steps") {
      flags->ladder_steps = std::atoi(next());
    } else if (arg == "--abr-target") {
      flags->abr_target = std::atof(next());
    } else if (arg == "--handover-dwell") {
      flags->handover_dwell = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

workload::SceneOptions SceneFromFlags(const Flags& flags) {
  workload::SceneOptions scene =
      flags.mb > 0 ? workload::SceneForDatasetSize(flags.mb, flags.seed)
                   : workload::SceneOptions();
  if (flags.objects > 0) scene.object_count = flags.objects;
  scene.seed = flags.seed;
  if (flags.zipf) scene.placement = workload::Placement::kZipf;
  return scene;
}

int Generate(const Flags& flags) {
  if (flags.out_path.empty()) {
    std::fprintf(stderr, "generate requires --out\n");
    return 2;
  }
  const workload::SceneOptions scene = SceneFromFlags(flags);
  std::printf("generating %d objects (seed %llu)...\n", scene.object_count,
              static_cast<unsigned long long>(scene.seed));
  auto db = workload::GenerateScene(scene);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const auto status = server::SaveDatabase(*db, flags.out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d objects, %zu records, %s of records\n",
              flags.out_path.c_str(), db->object_count(),
              db->records().size(),
              common::FormatBytes(db->total_bytes()).c_str());
  return 0;
}

int Info(const Flags& flags) {
  if (flags.db_path.empty()) {
    std::fprintf(stderr, "info requires --db\n");
    return 2;
  }
  auto db = server::LoadDatabase(flags.db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("objects : %d\n", db->object_count());
  std::printf("records : %zu\n", db->records().size());
  std::printf("dataset : %s\n",
              common::FormatBytes(db->total_bytes()).c_str());
  int64_t coeffs = 0;
  for (const auto& r : db->records()) {
    if (!r.is_base()) ++coeffs;
  }
  std::printf("coeffs  : %lld\n", static_cast<long long>(coeffs));
  return 0;
}

// Per-shard stats JSON, one line per shard. Only emitted when sharding
// is actually on (K > 1), so default-configuration output stays
// byte-identical to the single-tree era.
void PrintShardStats(const core::System& system) {
  const server::Server& server = system.server();
  if (server.shard_count() <= 1) return;
  for (const auto& s : server.sharded_index().Stats()) {
    std::printf(
        "{\"shard\": %d, \"records\": %lld, \"node_accesses\": %lld, "
        "\"fanout_queries\": %lld, \"rebuilds\": %lld}\n",
        s.shard, static_cast<long long>(s.records),
        static_cast<long long>(s.node_accesses),
        static_cast<long long>(s.fanout_queries),
        static_cast<long long>(s.rebuilds));
  }
}

// Per-shard buffer-pool JSON, one line per shard. Disk mode only, so
// memory-mode output stays byte-identical to the pre-storage era.
void PrintPoolStats(const core::System& system) {
  const server::Server& server = system.server();
  if (!server.disk_store()) return;
  // The prefetch counters ride only the warm-on lines, so --warm off
  // output stays byte-identical to the pre-warming era.
  const bool warming = server.pool_warming_enabled();
  for (const auto& s : server.PoolStats()) {
    std::printf(
        "{\"pool_shard\": %d, \"hits\": %lld, \"misses\": %lld, "
        "\"evictions\": %lld, \"disk_reads\": %lld, \"disk_writes\": %lld, "
        "\"resident_pages\": %lld, \"file_pages\": %lld, "
        "\"free_pages\": %lld, \"fragmented_pages\": %lld",
        s.shard, static_cast<long long>(s.pool.hits),
        static_cast<long long>(s.pool.misses),
        static_cast<long long>(s.pool.evictions),
        static_cast<long long>(s.pool.disk_reads),
        static_cast<long long>(s.pool.disk_writes),
        static_cast<long long>(s.pool.resident_pages),
        static_cast<long long>(s.file_pages),
        static_cast<long long>(s.free_pages),
        static_cast<long long>(s.fragmented_pages));
    if (warming) {
      std::printf(
          ", \"prefetch_issued\": %lld, \"prefetch_hits\": %lld, "
          "\"prefetch_wasted\": %lld, \"prefetch_dropped\": %lld",
          static_cast<long long>(s.pool.prefetch_issued),
          static_cast<long long>(s.pool.prefetch_hits),
          static_cast<long long>(s.pool.prefetch_wasted),
          static_cast<long long>(s.pool.prefetch_dropped));
    }
    std::printf("}\n");
  }
}

// Rebalance telemetry: only emitted with --rebalance on, so off-mode
// output stays byte-identical to the static-shard era.
void PrintRebalanceSummary(const core::System& system) {
  const server::Server& server = system.server();
  if (!server.rebalance_enabled()) return;
  const std::vector<server::RebalanceEvent> events = server.RebalanceEvents();
  int64_t splits = 0;
  for (const server::RebalanceEvent& e : events) {
    if (e.kind == server::RebalanceEvent::Kind::kSplit) ++splits;
  }
  std::printf("\n-- rebalance --\n");
  std::printf("ops applied             : %lld (%lld splits, %lld merges)\n",
              static_cast<long long>(events.size()),
              static_cast<long long>(splits),
              static_cast<long long>(static_cast<int64_t>(events.size()) -
                                     splits));
  std::printf("shards live / total     : %d / %d\n",
              server.live_shard_count(), server.shard_count());
}

// One JSON line per applied rebalance op (--rebalance on only).
void PrintRebalanceJson(const core::System& system) {
  const server::Server& server = system.server();
  if (!server.rebalance_enabled()) return;
  for (const server::RebalanceEvent& e : server.RebalanceEvents()) {
    std::printf(
        "{\"rebalance\": {\"op\": \"%s\", \"round\": %lld, \"shard\": %d, "
        "\"target\": %d, \"share\": %.17g, \"records\": %lld}}\n",
        e.kind == server::RebalanceEvent::Kind::kSplit ? "split" : "merge",
        static_cast<long long>(e.round), e.shard, e.target, e.share,
        static_cast<long long>(e.records));
  }
}

// Human-readable storage summary (disk mode only).
void PrintStorageSummary(const core::System& system) {
  const server::Server& server = system.server();
  if (!server.disk_store()) return;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t prefetch_issued = 0;
  int64_t prefetch_hits = 0;
  int64_t prefetch_wasted = 0;
  int64_t prefetch_dropped = 0;
  for (const auto& s : server.PoolStats()) {
    hits += s.pool.hits;
    misses += s.pool.misses;
    evictions += s.pool.evictions;
    reads += s.pool.disk_reads;
    writes += s.pool.disk_writes;
    prefetch_issued += s.pool.prefetch_issued;
    prefetch_hits += s.pool.prefetch_hits;
    prefetch_wasted += s.pool.prefetch_wasted;
    prefetch_dropped += s.pool.prefetch_dropped;
  }
  const double total = static_cast<double>(hits + misses);
  std::printf("\n-- storage --\n");
  std::printf("pool hits / misses      : %lld / %lld (%.1f %% hit)\n",
              static_cast<long long>(hits), static_cast<long long>(misses),
              total > 0.0 ? 100.0 * static_cast<double>(hits) / total : 0.0);
  std::printf("pool evictions          : %lld\n",
              static_cast<long long>(evictions));
  std::printf("disk reads / writes     : %lld / %lld\n",
              static_cast<long long>(reads), static_cast<long long>(writes));
  if (server.pool_warming_enabled()) {
    // Warm-on only, so --warm off output stays byte-identical.
    std::printf("prefetch issued / hits  : %lld / %lld\n",
                static_cast<long long>(prefetch_issued),
                static_cast<long long>(prefetch_hits));
    std::printf("prefetch wasted/dropped : %lld / %lld\n",
                static_cast<long long>(prefetch_wasted),
                static_cast<long long>(prefetch_dropped));
  }
}

// Fleet mode: N concurrent clients against one shared server and cell.
int RunFleet(const core::System& system, const Flags& flags) {
  fleet::FleetOptions options;
  options.workers = flags.workers;
  options.cell.loss_probability = flags.loss;
  options.cell.discipline =
      flags.fairness == "equal"
          ? net::SharedMediumLink::Discipline::kEqualShare
          : net::SharedMediumLink::Discipline::kWeightedFair;
  options.admission.enabled = flags.admission;
  options.coalesce.enabled = flags.coalesce == "on";
  options.cell_fault.outage_rate_per_hour = flags.outage_rate;
  options.cell_fault.outage_mean_seconds = flags.outage_secs;
  options.cell_fault.seed = flags.seed + 2;
  options.cells = flags.cells;
  options.handover_blackout_seconds = flags.handover_blackout;
  options.handover_dwell_rounds = flags.handover_dwell;
  options.abr.enabled = flags.abr == "on";
  options.abr.ladder.ladder_steps = flags.ladder_steps;
  options.abr.ladder.target_goodput_bps = flags.abr_target;
  if (flags.cell_outage_rate > 0.0) {
    // Whole-cell failure rate for the multi-cell topology; each cell
    // derives an independent outage stream from the base seed.
    options.cell_fault.outage_rate_per_hour = flags.cell_outage_rate;
  }
  std::vector<fleet::ClientSpec> specs = fleet::FleetEngine::MakeMixedFleet(
      flags.clients, flags.frames, flags.speed, flags.seed);
  for (fleet::ClientSpec& spec : specs) {
    spec.buffer_bytes = static_cast<int64_t>(flags.buffer_kb) * 1024;
    switch (spec.kind) {
      case fleet::ClientKind::kStreaming:
        spec.weight = flags.weight_streaming;
        break;
      case fleet::ClientKind::kBuffered:
        spec.weight = flags.weight_buffered;
        break;
      case fleet::ClientKind::kNaive:
        spec.weight = flags.weight_naive;
        break;
    }
  }
  fleet::FleetEngine engine(system, options, std::move(specs));
  const fleet::FleetResult result = engine.Run();

  std::printf("\n-- fleet (%d clients, %d workers) --\n", flags.clients,
              flags.workers);
  if (flags.cells > 1) {
    std::printf("cells                   : %d\n", flags.cells);
    std::printf("handovers / failovers   : %lld / %lld\n",
                static_cast<long long>(result.handovers),
                static_cast<long long>(result.failovers));
    std::printf("reissued transfers      : %lld (%s)\n",
                static_cast<long long>(result.reissued_transfers),
                common::FormatBytes(result.reissued_bytes).c_str());
  }
  std::printf("virtual seconds         : %.1f\n", result.virtual_seconds);
  std::printf("cell bytes              : %s\n",
              common::FormatBytes(result.cell_bytes).c_str());
  std::printf("cell retries / timeouts : %lld / %lld\n",
              static_cast<long long>(result.cell_retries),
              static_cast<long long>(result.cell_timeouts));
  std::printf("cell outage             : %.1f s\n",
              result.cell_outage_seconds);
  std::printf("hot cache hits / misses : %lld / %lld\n",
              static_cast<long long>(result.hot_hits),
              static_cast<long long>(result.hot_misses));
  std::printf("hot encode bytes saved  : %s\n",
              common::FormatBytes(result.hot_bytes_saved).c_str());
  std::printf("mean response / query   : %.3f s\n",
              result.aggregate.MeanResponsePerExchange());
  std::printf("p50 / p99 response      : %.3f / %.3f s\n",
              result.aggregate.P50ResponseSeconds(),
              result.aggregate.P99ResponseSeconds());
  const bool coalescing = flags.coalesce == "on";
  if (coalescing) {
    std::printf("coalesce hits / attach  : %lld / %lld\n",
                static_cast<long long>(result.coalesce_hits),
                static_cast<long long>(result.coalesce_attaches));
    std::printf("coalesce bytes saved    : %s (refused %lld)\n",
                common::FormatBytes(result.coalesce_bytes_saved).c_str(),
                static_cast<long long>(result.coalesce_refused));
    std::printf("encode calls            : %lld\n",
                static_cast<long long>(result.encode_calls));
  }
  if (flags.abr == "on") {
    std::printf("abr step-ups / top-ups  : %lld / %lld (worst rung %d/%d)\n",
                static_cast<long long>(result.abr_step_ups),
                static_cast<long long>(result.abr_top_ups),
                result.abr_max_ladder_step, flags.ladder_steps);
  }
  if (flags.admission) {
    std::printf("admitted/deferred/shed  : %lld / %lld / %lld\n",
                static_cast<long long>(result.admitted_exchanges),
                static_cast<long long>(result.deferred_exchanges),
                static_cast<long long>(result.shed_exchanges));
    std::printf("peak cell backlog       : %s\n",
                common::FormatBytes(result.peak_cell_backlog_bytes).c_str());
  }
  static const char* const kKindNames[] = {"streaming", "buffered", "naive"};
  for (size_t k = 0; k < result.by_kind.size(); ++k) {
    const fleet::ClassStats& cls = result.by_kind[k];
    if (cls.clients == 0) continue;
    const double goodput =
        result.virtual_seconds > 0.0
            ? static_cast<double>(cls.metrics.total_bytes()) /
                  result.virtual_seconds
            : 0.0;
    std::printf(
        "class %-9s           : %lld clients, %.0f B/s goodput, "
        "p99 %.3f s\n",
        kKindNames[k], static_cast<long long>(cls.clients), goodput,
        cls.metrics.P99ResponseSeconds());
  }

  PrintStorageSummary(system);
  PrintRebalanceSummary(system);

  // Full-precision JSON lines: one per client plus the aggregate. Diffing
  // this block across --workers values must show zero differences.
  std::printf("\n-- json --\n");
  for (const fleet::ClientResult& client : result.clients) {
    std::printf("{\"client\": %d, \"metrics\": %s}\n", client.spec.id,
                core::RunMetricsJson(client.metrics).c_str());
  }
  std::printf("{\"aggregate\": %s}\n",
              core::RunMetricsJson(result.aggregate).c_str());
  PrintShardStats(system);
  PrintPoolStats(system);
  PrintRebalanceJson(system);
  if (coalescing) {
    // Coalescing telemetry rides extra JSON lines so the off-mode block
    // above stays byte-identical to the pre-coalescing era.
    for (size_t k = 0; k < result.by_kind.size(); ++k) {
      const fleet::ClassStats& cls = result.by_kind[k];
      if (cls.clients == 0) continue;
      std::printf(
          "{\"coalesce_class\": \"%s\", \"hits\": %lld, \"attaches\": %lld, "
          "\"bytes_saved\": %lld, \"encode_calls\": %lld, "
          "\"cell_bytes\": %lld}\n",
          kKindNames[k], static_cast<long long>(cls.coalesce_hits),
          static_cast<long long>(cls.coalesce_attaches),
          static_cast<long long>(cls.coalesce_bytes_saved),
          static_cast<long long>(cls.encode_calls),
          static_cast<long long>(cls.cell_bytes));
    }
    std::printf(
        "{\"coalesce\": {\"hits\": %lld, \"attaches\": %lld, "
        "\"bytes_saved\": %lld, \"refused\": %lld, \"header_bytes\": %lld, "
        "\"encode_calls\": %lld}}\n",
        static_cast<long long>(result.coalesce_hits),
        static_cast<long long>(result.coalesce_attaches),
        static_cast<long long>(result.coalesce_bytes_saved),
        static_cast<long long>(result.coalesce_refused),
        static_cast<long long>(result.coalesce_header_bytes),
        static_cast<long long>(result.encode_calls));
    for (const auto& s : result.hot_shards) {
      std::printf(
          "{\"hot_shard\": %d, \"hits\": %lld, \"misses\": %lld, "
          "\"evictions\": %lld, \"entries\": %lld, \"bytes\": %lld}\n",
          s.shard, static_cast<long long>(s.hits),
          static_cast<long long>(s.misses),
          static_cast<long long>(s.evictions),
          static_cast<long long>(s.entries),
          static_cast<long long>(s.bytes));
    }
  }
  if (flags.abr == "on") {
    // ABR telemetry rides extra JSON lines so the off-mode block above
    // stays byte-identical to the pre-ladder era. Per-client ladder state
    // first (the nightly chaos sweep watches degradation trends), then
    // the fleet totals.
    for (const fleet::ClientResult& client : result.clients) {
      std::printf(
          "{\"abr_client\": %d, \"ladder_step\": %d, "
          "\"goodput_ewma_bps\": %.17g, \"step_ups\": %lld, "
          "\"top_ups\": %lld}\n",
          client.spec.id, client.abr.ladder_step,
          client.abr.goodput_ewma_bps,
          static_cast<long long>(client.abr.step_ups),
          static_cast<long long>(client.abr.top_ups));
    }
    std::printf(
        "{\"abr\": {\"step_ups\": %lld, \"top_ups\": %lld, "
        "\"max_ladder_step\": %d, \"ladder_steps\": %d}}\n",
        static_cast<long long>(result.abr_step_ups),
        static_cast<long long>(result.abr_top_ups),
        result.abr_max_ladder_step, flags.ladder_steps);
  }
  if (flags.cells > 1) {
    // Multi-cell telemetry rides extra JSON lines so the single-cell
    // block above stays byte-identical to the pre-topology era. The
    // chaos line carries the engine's handover invariants (all zero, or
    // the run would have FATALed) so the chaos harness can assert the
    // checks actually ran.
    for (size_t k = 0; k < result.cell_stats.size(); ++k) {
      const fleet::FleetResult::CellStats& cs = result.cell_stats[k];
      std::printf(
          "{\"cell\": %zu, \"bytes\": %lld, \"retries\": %lld, "
          "\"timeouts\": %lld, \"outage_seconds\": %.17g, "
          "\"peak_backlog_bytes\": %lld, \"handovers_in\": %lld}\n",
          k, static_cast<long long>(cs.bytes),
          static_cast<long long>(cs.retries),
          static_cast<long long>(cs.timeouts), cs.outage_seconds,
          static_cast<long long>(cs.peak_backlog_bytes),
          static_cast<long long>(cs.handovers_in));
    }
    for (const fleet::ClientResult& client : result.clients) {
      std::printf(
          "{\"client_cells\": %d, \"home\": %d, \"final\": %d, "
          "\"handovers\": %lld, \"failovers\": %lld}\n",
          client.spec.id, client.home_cell, client.final_cell,
          static_cast<long long>(client.handovers),
          static_cast<long long>(client.failovers));
    }
    std::printf(
        "{\"handover\": {\"handovers\": %lld, \"failovers\": %lld, "
        "\"reissued_transfers\": %lld, \"reissued_bytes\": %lld}}\n",
        static_cast<long long>(result.handovers),
        static_cast<long long>(result.failovers),
        static_cast<long long>(result.reissued_transfers),
        static_cast<long long>(result.reissued_bytes));
    std::printf(
        "{\"chaos\": {\"session_desyncs\": %lld, "
        "\"duplicate_deliveries\": %lld, \"stranded_waiters\": %lld, "
        "\"unresolved_exchanges\": %lld}}\n",
        static_cast<long long>(result.chaos_session_desyncs),
        static_cast<long long>(result.chaos_duplicate_deliveries),
        static_cast<long long>(result.chaos_stranded_waiters),
        static_cast<long long>(result.chaos_unresolved_exchanges));
  }
  return 0;
}

int Run(const Flags& flags) {
  // Assemble the system: from a persisted DB or a fresh scene.
  core::System::Config config;
  config.scene = SceneFromFlags(flags);
  config.index_kind = flags.index == "naive-point"
                          ? server::Server::IndexKind::kNaivePoint
                          : server::Server::IndexKind::kSupportRegion;
  if (flags.loss < 0.0 || flags.loss >= 0.5) {
    std::fprintf(stderr, "--loss must be in [0, 0.5)\n");
    return 2;
  }
  if (flags.outage_rate < 0.0) {
    std::fprintf(stderr, "--outage-rate must be >= 0\n");
    return 2;
  }
  if (flags.outage_rate > 0.0 && flags.outage_secs <= 0.0) {
    std::fprintf(stderr, "--outage-secs must be > 0\n");
    return 2;
  }
  if (flags.shards < 1 || flags.fanout_workers < 1) {
    std::fprintf(stderr, "--shards and --fanout-workers must be >= 1\n");
    return 2;
  }
  if (flags.coalesce != "on" && flags.coalesce != "off") {
    std::fprintf(stderr, "--coalesce wants on|off\n");
    return 2;
  }
  if (flags.coalesce == "on" && flags.fairness == "equal") {
    std::fprintf(stderr,
                 "--coalesce on requires --fairness wfq (shared-delivery "
                 "resolution relies on per-client FIFO completions)\n");
    return 2;
  }
  if (flags.cells < 1) {
    std::fprintf(stderr, "--cells must be >= 1\n");
    return 2;
  }
  if (flags.cells > 1 && flags.clients <= 1) {
    std::fprintf(stderr, "--cells K > 1 requires fleet mode (--clients > 1)\n");
    return 2;
  }
  if (flags.cell_outage_rate < 0.0 || flags.handover_blackout < 0.0) {
    std::fprintf(stderr,
                 "--cell-outage-rate and --handover-blackout must be >= 0\n");
    return 2;
  }
  if (flags.store != "memory" && flags.store != "disk") {
    std::fprintf(stderr, "--store wants memory|disk\n");
    return 2;
  }
  if (flags.evict != "lru" && flags.evict != "motion") {
    std::fprintf(stderr, "--evict wants lru|motion\n");
    return 2;
  }
  if (flags.store == "disk" && flags.pages_path.empty()) {
    std::fprintf(stderr, "--store disk requires --pages FILE\n");
    return 2;
  }
  if (flags.page_size < 128 || flags.pool_pages < 1) {
    std::fprintf(stderr,
                 "--page-size must be >= 128 and --pool-pages >= 1\n");
    return 2;
  }
  if (flags.warm != "on" && flags.warm != "off") {
    std::fprintf(stderr, "--warm wants on|off\n");
    return 2;
  }
  if (flags.warm == "on" &&
      (flags.store != "disk" || flags.evict != "motion")) {
    std::fprintf(stderr, "--warm on requires --store disk --evict motion\n");
    return 2;
  }
  if (flags.warm_budget < 1 || flags.warm_workers < 1) {
    std::fprintf(stderr,
                 "--warm-budget and --warm-workers must be >= 1\n");
    return 2;
  }
  if (flags.rebalance != "on" && flags.rebalance != "off") {
    std::fprintf(stderr, "--rebalance wants on|off\n");
    return 2;
  }
  if (flags.rebalance_interval < 1 || flags.max_shards < 1) {
    std::fprintf(stderr,
                 "--rebalance-interval and --max-shards must be >= 1\n");
    return 2;
  }
  if (flags.split_factor <= 1.0 || flags.merge_factor < 0.0 ||
      flags.merge_factor >= 1.0) {
    std::fprintf(stderr,
                 "--split-factor must be > 1 and --merge-factor in [0, 1)\n");
    return 2;
  }
  if (flags.abr != "on" && flags.abr != "off") {
    std::fprintf(stderr, "--abr wants on|off\n");
    return 2;
  }
  if (flags.abr == "on" && flags.clients <= 1) {
    std::fprintf(stderr, "--abr on requires fleet mode (--clients > 1)\n");
    return 2;
  }
  if (flags.ladder_steps < 1 || flags.abr_target <= 0.0) {
    std::fprintf(stderr,
                 "--ladder-steps must be >= 1 and --abr-target > 0\n");
    return 2;
  }
  if (flags.handover_dwell < 1) {
    std::fprintf(stderr, "--handover-dwell must be >= 1\n");
    return 2;
  }
  config.shards = flags.shards;
  config.fanout_workers = flags.fanout_workers;
  config.storage.store = flags.store == "disk" ? storage::StoreKind::kDisk
                                               : storage::StoreKind::kMemory;
  config.storage.path = flags.pages_path;
  config.storage.page_size = flags.page_size;
  config.storage.pool_pages = flags.pool_pages;
  config.storage.evict = flags.evict == "motion" ? storage::EvictPolicy::kMotion
                                                 : storage::EvictPolicy::kLru;
  config.storage.warm = flags.warm == "on";
  config.storage.warm_budget = flags.warm_budget;
  config.storage.warm_workers = flags.warm_workers;
  config.rebalance.enabled = flags.rebalance == "on";
  config.rebalance.interval = flags.rebalance_interval;
  config.rebalance.split_factor = flags.split_factor;
  config.rebalance.merge_factor = flags.merge_factor;
  config.rebalance.max_shards = flags.max_shards;
  config.link.loss_probability = flags.loss;
  config.fault.outage_rate_per_hour = flags.outage_rate;
  config.fault.outage_mean_seconds = flags.outage_secs;
  config.fault.seed = flags.seed + 2;

  std::unique_ptr<core::System> system;
  if (!flags.db_path.empty()) {
    auto db = server::LoadDatabase(flags.db_path);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    auto sys = core::System::FromDatabase(config, std::move(*db));
    system = std::move(sys);
  } else {
    auto sys = core::System::Create(config);
    if (!sys.ok()) {
      std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
      return 1;
    }
    system = std::move(sys).value();
  }
  std::printf("dataset: %s, %d objects\n",
              common::FormatBytes(system->db().total_bytes()).c_str(),
              system->db().object_count());
  if (system->server().disk_store()) {
    std::printf("store: disk (%s), %s eviction, restored shards %d/%d\n",
                flags.pages_path.c_str(), flags.evict.c_str(),
                system->server().restored_shards(), flags.shards);
  }
  if (system->server().pool_warming_enabled()) {
    std::printf("warm: on (budget %d, workers %d)\n", flags.warm_budget,
                flags.warm_workers);
  }

  if (flags.clients > 1) return RunFleet(*system, flags);

  workload::TourOptions tour_options;
  tour_options.kind = flags.tour == "walk" ? workload::TourKind::kPedestrian
                                           : workload::TourKind::kTram;
  tour_options.space = system->space();
  tour_options.target_speed = flags.speed;
  tour_options.frames = flags.frames;
  tour_options.distance = flags.distance;
  tour_options.seed = flags.seed + 1;
  const auto tour = workload::GenerateTour(tour_options);
  std::printf("tour: %s, %zu frames, %.0f m at speed %.3f\n",
              flags.tour.c_str(), tour.size(),
              workload::TourDistance(tour), flags.speed);

  core::RunMetrics metrics;
  if (flags.client == "streaming") {
    client::StreamingClient::Options options;
    options.query_fraction = flags.query_frac;
    metrics = system->RunStreaming(tour, options);
  } else if (flags.client == "naive") {
    client::NaiveObjectClient::Options options;
    options.query_fraction = flags.query_frac;
    options.cache_bytes = static_cast<int64_t>(flags.buffer_kb) * 1024;
    metrics = system->RunNaiveObject(tour, options);
  } else {
    client::BufferedClient::Options options;
    options.query_fraction = flags.query_frac;
    options.buffer_bytes = static_cast<int64_t>(flags.buffer_kb) * 1024;
    options.enable_prefetch = !flags.no_prefetch;
    options.motion_aware = !flags.naive_prefetch;
    if (flags.kalman) {
      options.predictor = client::BufferedClient::Options::Predictor::kKalman;
    }
    metrics = system->RunBuffered(tour, options);
  }

  std::printf("\n-- metrics --\n");
  std::printf("frames                  : %lld\n",
              static_cast<long long>(metrics.frames));
  std::printf("demand bytes            : %s\n",
              common::FormatBytes(metrics.demand_bytes).c_str());
  std::printf("prefetch bytes          : %s\n",
              common::FormatBytes(metrics.prefetch_bytes).c_str());
  std::printf("mean response / frame   : %.3f s\n",
              metrics.MeanResponseSeconds());
  std::printf("mean response / query   : %.3f s\n",
              metrics.MeanResponsePerExchange());
  std::printf("cache hit rate          : %.1f %%\n",
              100.0 * metrics.cache_hit_rate);
  std::printf("prefetch utilization    : %.1f %%\n",
              100.0 * metrics.data_utilization);
  std::printf("index I/O per frame     : %.1f\n",
              metrics.MeanNodeAccesses());
  if (flags.loss > 0.0 || flags.outage_rate > 0.0) {
    std::printf("link retries            : %lld\n",
                static_cast<long long>(metrics.retries));
    std::printf("exchange timeouts       : %lld\n",
                static_cast<long long>(metrics.timeouts));
    std::printf("outage frames           : %lld\n",
                static_cast<long long>(metrics.outage_frames));
    std::printf("stale frames            : %lld\n",
                static_cast<long long>(metrics.stale_frames));
    std::printf("worst stale run         : %lld frames\n",
                static_cast<long long>(metrics.max_stale_run_frames));
  }
  if (flags.shards > 1) {
    std::printf("\n-- shards --\n");
    PrintShardStats(*system);
  }
  PrintStorageSummary(*system);
  PrintPoolStats(*system);
  PrintRebalanceSummary(*system);
  PrintRebalanceJson(*system);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  if (flags.command == "generate") return Generate(flags);
  if (flags.command == "info") return Info(flags);
  if (flags.command == "run") return Run(flags);
  Usage();
  return 2;
}
