#!/usr/bin/env python3
"""Deterministic chaos sweep for the multi-cell fleet topology.

Runs mars_sim fleets across a seed x outage-rate x fleet-size grid with
the ground plane tiled into four cells, killing cells at random (seeded)
times, and fails loudly if the fault-tolerance machinery violates any
invariant:

  * chaos counters — session desyncs, duplicate deliveries, stranded
    waiters, unresolved exchanges — must all be zero (the engine also
    MARS_CHECKs them, so a violation usually aborts the run first);
  * the `-- json --` block must be byte-identical between --workers 1
    and --workers 8: failover, cancellation, and re-issue are part of
    the deterministic two-phase tick, not a best-effort recovery path;
  * every run must exit 0 (a MARS_CHECK abort inside the engine is a
    sweep failure, not a skip).

The sweep is itself deterministic: the grid is fixed and every stochastic
stream inside the simulator derives from the run's --seed, so a failing
cell (seed, rate, fleet) reproduces standalone with the printed command.

Usage:
    tools/chaos_sweep.py                 # full sweep (20 seeds)
    tools/chaos_sweep.py --quick         # 3-seed CI smoke
    tools/chaos_sweep.py --seeds 50      # go deeper
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile

CHAOS_KEYS = (
    "session_desyncs",
    "duplicate_deliveries",
    "stranded_waiters",
    "unresolved_exchanges",
)


def run_sim(binary, seed, rate, clients, mb, frames, workers, coalesce,
            warm):
    cmd = [
        binary, "run",
        "--mb", str(mb),
        "--clients", str(clients),
        "--cells", "4",
        "--cell-outage-rate", str(rate),
        "--frames", str(frames),
        "--seed", str(seed),
        "--workers", str(workers),
        "--coalesce", "on" if coalesce else "off",
    ]
    pages = None
    if warm:
        # Speculative I/O in flight while cells die: the out-of-core
        # store with background warming must not perturb the fleet's
        # deterministic JSON either. Each run builds its page file from
        # scratch so workers 1 and 8 start from identical disk state.
        pages = os.path.join(tempfile.gettempdir(),
                             f"chaos_warm_{seed}_{workers}.pages")
        remove_page_files(pages)
        cmd += ["--store", "disk", "--pages", pages,
                "--evict", "motion", "--warm", "on"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if pages is not None:
        remove_page_files(pages)
    return cmd, proc


def remove_page_files(pages):
    for path in glob.glob(pages + "*"):
        os.remove(path)


def json_block(stdout):
    marker = "-- json --"
    pos = stdout.find(marker)
    return stdout[pos:] if pos >= 0 else None


def chaos_counters(stdout):
    for line in stdout.splitlines():
        if line.startswith('{"chaos":'):
            return json.loads(line)["chaos"]
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="build/tools/mars_sim",
                        help="mars_sim binary (default: %(default)s)")
    parser.add_argument("--seeds", type=int, default=20,
                        help="seeds per grid cell (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="3-seed single-cell smoke for CI")
    args = parser.parse_args()

    # (outage rate / h, clients, scene MB, frames, coalesce, warm)
    if args.quick:
        seeds = range(1, 4)
        grid = [
            (300.0, 8, 10, 40, False, False),
            (300.0, 8, 10, 40, False, True),
        ]
    else:
        seeds = range(1, args.seeds + 1)
        grid = [
            (150.0, 8, 10, 50, False, False),
            (400.0, 8, 10, 50, True, False),
            (300.0, 12, 20, 60, False, False),
            (300.0, 12, 20, 60, True, False),
            (300.0, 8, 10, 50, False, True),
            (400.0, 12, 20, 60, True, True),
        ]

    failures = 0
    runs = 0
    for rate, clients, mb, frames, coalesce, warm in grid:
        for seed in seeds:
            outputs = {}
            bad = False
            for workers in (1, 8):
                cmd, proc = run_sim(args.binary, seed, rate, clients, mb,
                                    frames, workers, coalesce, warm)
                runs += 1
                label = " ".join(cmd)
                if proc.returncode != 0:
                    print(f"FATAL: exit {proc.returncode}: {label}")
                    sys.stderr.write(proc.stderr[-2000:])
                    failures += 1
                    bad = True
                    continue
                block = json_block(proc.stdout)
                if block is None:
                    print(f"FATAL: no json block: {label}")
                    failures += 1
                    bad = True
                    continue
                outputs[workers] = block
                chaos = chaos_counters(proc.stdout)
                if chaos is None:
                    print(f"FATAL: no chaos counters: {label}")
                    failures += 1
                    bad = True
                    continue
                for key in CHAOS_KEYS:
                    if chaos.get(key, -1) != 0:
                        print(f"FATAL: {key}={chaos.get(key)}: {label}")
                        failures += 1
                        bad = True
            if not bad and outputs.get(1) != outputs.get(8):
                print(f"FATAL: workers 1 vs 8 diverged: seed={seed} "
                      f"rate={rate} clients={clients} mb={mb} "
                      f"coalesce={coalesce} warm={warm}")
                failures += 1

    if failures:
        print(f"chaos sweep: {failures} violation(s) across {runs} runs")
        return 1
    print(f"chaos sweep: {runs} runs clean "
          f"(zero chaos counters, workers 1 == 8)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
