#!/usr/bin/env bash
# Runs every baseline-gated bench in smoke mode and gates it against its
# checked-in baseline. The baseline set under bench/baselines/ is the
# single source of truth: adding a baseline picks the bench up with no
# workflow edit, and dropping one drops the gate.
#
# Usage: tools/run_bench_smoke.sh [build_dir] [out_dir]
set -euo pipefail

build_dir=${1:-build}
out_dir=${2:-bench-out}
mkdir -p "$out_dir"

status=0
for baseline in bench/baselines/*.json; do
  name=$(basename "$baseline" .json)
  binary="$build_dir/bench/bench_$name"
  if [[ ! -x "$binary" ]]; then
    echo "::error::$binary not built but $baseline gates it" >&2
    status=1
    continue
  fi
  echo "== bench_$name (smoke) =="
  if ! MARS_BENCH_SMOKE=1 MARS_BENCH_JSON="$out_dir/$name.json" "$binary"; then
    echo "::error::bench_$name failed" >&2
    status=1
    continue
  fi
  if ! python3 tools/bench_gate.py --baseline "$baseline" \
      --current "$out_dir/$name.json"; then
    status=1
  fi
done
exit $status
