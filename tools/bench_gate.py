#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a bench run's JSON output (written by the bench binary when
MARS_BENCH_JSON=<path> is set) against a checked-in baseline under
bench/baselines/. Every gated metric is a *deterministic simulated*
quantity — delivery-delay quantiles, virtual time, hit rates — never
wall clock, so the gate's verdict does not depend on runner speed.

A metric regresses when it moves in its bad direction (each entry
carries `higher_is_better`) by more than its tolerance. The tolerance
resolves most-specific first: a `tolerance` key on the metric's
baseline entry, else a file-level `tolerance` key at the baseline's top
level, else the --tolerance flag (default 15%). Improvements and new
metrics never fail; a metric present in the baseline but missing from
the run does, since silently dropping a gated metric is how regressions
hide.

Usage:
    bench_gate.py --baseline bench/baselines/foo.json --current out.json
    bench_gate.py ... --update   # rewrite the baseline from the run

--update preserves the baseline's existing file- and metric-level
tolerance keys, so tightening a bound survives baseline refreshes.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if "metrics" not in doc or not isinstance(doc["metrics"], dict):
        raise SystemExit(f"{path}: missing 'metrics' object")
    return doc


def resolve_tolerance(base_entry, baseline, cli_tolerance):
    """Most-specific tolerance wins: metric entry > baseline file > CLI."""
    if "tolerance" in base_entry:
        return float(base_entry["tolerance"])
    if "tolerance" in baseline:
        return float(baseline["tolerance"])
    return cli_tolerance


def compare(baseline, current, cli_tolerance):
    failures = []
    report = []
    for name, base in sorted(baseline["metrics"].items()):
        cur = current["metrics"].get(name)
        if cur is None:
            failures.append(f"{name}: present in baseline but missing from run")
            continue
        base_value = float(base["value"])
        cur_value = float(cur["value"])
        higher_is_better = bool(base.get("higher_is_better", False))
        tolerance = resolve_tolerance(base, baseline, cli_tolerance)
        if base_value == 0.0:
            # Zero baselines (e.g. no sheds expected): any movement in the
            # bad direction is a regression, movement toward zero is fine.
            bad = cur_value < 0.0 if higher_is_better else cur_value > 0.0
            delta_text = f"{cur_value:+.6g} from zero baseline"
        else:
            delta = (cur_value - base_value) / abs(base_value)
            bad = (delta < -tolerance) if higher_is_better else (delta > tolerance)
            delta_text = f"{delta:+.1%} (tol {tolerance:.0%})"
        arrow = "worse" if bad else "ok"
        report.append(
            f"  {name}: baseline={base_value:.6g} current={cur_value:.6g} "
            f"({delta_text}, {arrow})"
        )
        if bad:
            failures.append(
                f"{name}: {delta_text} beyond tolerance "
                f"(baseline {base_value:.6g} -> {cur_value:.6g}, "
                f"{'higher' if higher_is_better else 'lower'} is better)"
            )
    for name in sorted(set(current["metrics"]) - set(baseline["metrics"])):
        report.append(f"  {name}: new metric (not gated)")
    return failures, report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline file from the current run and exit",
    )
    args = parser.parse_args()

    current = load(args.current)
    if args.update:
        # Carry the old baseline's tolerance configuration over to the
        # refreshed values (file-level key plus per-metric keys).
        try:
            old = load(args.baseline)
        except (OSError, SystemExit, json.JSONDecodeError):
            old = None
        if old is not None:
            if "tolerance" in old:
                current["tolerance"] = old["tolerance"]
            for name, entry in current["metrics"].items():
                old_entry = old["metrics"].get(name)
                if old_entry is not None and "tolerance" in old_entry:
                    entry["tolerance"] = old_entry["tolerance"]
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline {args.baseline} updated from {args.current}")
        return 0

    baseline = load(args.baseline)
    if baseline.get("bench") != current.get("bench"):
        raise SystemExit(
            f"bench name mismatch: baseline={baseline.get('bench')!r} "
            f"current={current.get('bench')!r}"
        )

    failures, report = compare(baseline, current, args.tolerance)
    print(f"bench {current.get('bench')} vs {args.baseline} "
          f"(default tolerance {args.tolerance:.0%}):")
    for line in report:
        print(line)
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
