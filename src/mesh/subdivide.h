#ifndef MARS_MESH_SUBDIVIDE_H_
#define MARS_MESH_SUBDIVIDE_H_

#include <cstdint>
#include <vector>

#include "mesh/mesh.h"

namespace mars::mesh {

// A vertex introduced by one subdivision step: the midpoint of the parent
// edge (parent_a, parent_b) in the coarser mesh. "Odd" in the lifting-scheme
// sense; the original vertices are "even".
struct OddVertex {
  int32_t vertex = 0;    // index in the subdivided mesh
  int32_t parent_a = 0;  // endpoints of the split edge (coarse indices ==
  int32_t parent_b = 0;  // fine indices, evens keep their numbering)
};

// Result of one 1:4 subdivision step (paper Fig. 1(b)): every edge gains a
// midpoint vertex and every face (a, b, c) is replaced by four faces. Even
// vertices keep their indices; odd vertices are appended in edge-index
// order, so vertex i >= coarse.vertex_count() corresponds to odd_vertices
// [i - coarse.vertex_count()].
struct Subdivision {
  Mesh mesh;
  std::vector<OddVertex> odd_vertices;
};

// Regularly subdivides `coarse` 1:4. Midpoints are placed exactly at the
// parent-edge midpoints (the "lazy wavelet" prediction); callers displace
// them afterwards to add detail or to apply wavelet coefficients.
Subdivision Subdivide(const Mesh& coarse);

}  // namespace mars::mesh

#endif  // MARS_MESH_SUBDIVIDE_H_
