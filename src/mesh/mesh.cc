#include "mesh/mesh.h"

#include <cstdint>
#include <set>
#include <string>
#include <utility>

namespace mars::mesh {

geometry::Box3 Mesh::Bounds() const {
  geometry::Box3 box;
  for (const geometry::Vec3& v : vertices_) {
    box.ExtendPoint({v.x, v.y, v.z});
  }
  return box;
}

double Mesh::SurfaceArea() const {
  double area = 0.0;
  for (const Face& f : faces_) {
    const geometry::Vec3& a = vertices_[f[0]];
    const geometry::Vec3& b = vertices_[f[1]];
    const geometry::Vec3& c = vertices_[f[2]];
    area += 0.5 * (b - a).Cross(c - a).Norm();
  }
  return area;
}

common::Status Mesh::Validate() const {
  const int32_t n = vertex_count();
  for (size_t i = 0; i < faces_.size(); ++i) {
    const Face& f = faces_[i];
    for (int32_t idx : f) {
      if (idx < 0 || idx >= n) {
        return common::InvalidArgumentError(
            "face " + std::to_string(i) + " references vertex " +
            std::to_string(idx) + " outside [0, " + std::to_string(n) + ")");
      }
    }
    if (f[0] == f[1] || f[1] == f[2] || f[0] == f[2]) {
      return common::InvalidArgumentError("face " + std::to_string(i) +
                                          " is degenerate");
    }
  }
  return common::OkStatus();
}

void Mesh::Translate(const geometry::Vec3& offset) {
  for (geometry::Vec3& v : vertices_) {
    v += offset;
  }
}

void Mesh::Scale(double factor) {
  for (geometry::Vec3& v : vertices_) {
    v = v * factor;
  }
}

int64_t CountEdges(const Mesh& mesh) {
  std::set<std::pair<int32_t, int32_t>> edges;
  for (const Face& f : mesh.faces()) {
    for (int k = 0; k < 3; ++k) {
      const int32_t a = f[k];
      const int32_t b = f[(k + 1) % 3];
      edges.insert({std::min(a, b), std::max(a, b)});
    }
  }
  return static_cast<int64_t>(edges.size());
}

}  // namespace mars::mesh
