#include "mesh/subdivide.h"

#include "geometry/vec.h"
#include "mesh/adjacency.h"

namespace mars::mesh {

Subdivision Subdivide(const Mesh& coarse) {
  Subdivision out;
  out.mesh = Mesh(coarse.vertices(), {});

  const EdgeMap edge_map(coarse);
  const int32_t even_count = coarse.vertex_count();

  // One odd vertex per coarse edge, appended in edge-index order.
  out.odd_vertices.reserve(edge_map.edge_count());
  for (int32_t e = 0; e < edge_map.edge_count(); ++e) {
    const auto [a, b] = edge_map.edge(e);
    const int32_t v =
        out.mesh.AddVertex(geometry::Midpoint(coarse.vertex(a),
                                              coarse.vertex(b)));
    out.odd_vertices.push_back(OddVertex{v, a, b});
  }

  const auto midpoint_of = [&](int32_t a, int32_t b) {
    return even_count + edge_map.IndexOf(a, b);
  };

  for (const Face& f : coarse.faces()) {
    const int32_t a = f[0], b = f[1], c = f[2];
    const int32_t mab = midpoint_of(a, b);
    const int32_t mbc = midpoint_of(b, c);
    const int32_t mca = midpoint_of(c, a);
    out.mesh.AddFace(a, mab, mca);
    out.mesh.AddFace(b, mbc, mab);
    out.mesh.AddFace(c, mca, mbc);
    out.mesh.AddFace(mab, mbc, mca);
  }
  return out;
}

}  // namespace mars::mesh
