#include "mesh/adjacency.h"

#include <algorithm>

namespace mars::mesh {

VertexAdjacency::VertexAdjacency(const Mesh& mesh) {
  neighbors_.resize(mesh.vertex_count());
  for (const Face& f : mesh.faces()) {
    for (int k = 0; k < 3; ++k) {
      const int32_t a = f[k];
      const int32_t b = f[(k + 1) % 3];
      neighbors_[a].push_back(b);
      neighbors_[b].push_back(a);
    }
  }
  for (std::vector<int32_t>& list : neighbors_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

bool VertexAdjacency::AreAdjacent(int32_t a, int32_t b) const {
  const std::vector<int32_t>& list = neighbors_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

EdgeMap::EdgeMap(const Mesh& mesh) {
  for (const Face& f : mesh.faces()) {
    for (int k = 0; k < 3; ++k) {
      const auto key = EdgeKey(f[k], f[(k + 1) % 3]);
      if (index_.emplace(key, static_cast<int32_t>(edges_.size())).second) {
        edges_.push_back(key);
      }
    }
  }
}

int32_t EdgeMap::IndexOf(int32_t a, int32_t b) const {
  const auto it = index_.find(EdgeKey(a, b));
  return it == index_.end() ? -1 : it->second;
}

}  // namespace mars::mesh
