#ifndef MARS_MESH_PRIMITIVES_H_
#define MARS_MESH_PRIMITIVES_H_

#include "mesh/mesh.h"

namespace mars::mesh {

// Regular tetrahedron with unit circumradius, centered at the origin.
// The smallest closed 2-manifold; handy in tests.
Mesh MakeTetrahedron();

// Regular octahedron with unit circumradius, centered at the origin.
Mesh MakeOctahedron();

// Axis-aligned box [0,w] x [0,d] x [0,h] triangulated into 12 faces.
Mesh MakeBox(double w, double d, double h);

// A simple building: box footprint [0,w] x [0,d] walls of height `h`, topped
// by a pyramidal roof rising `roof_h` above the walls. These are the "old
// buildings in cities" base meshes of the paper's augmented-reality tour.
Mesh MakeBuilding(double w, double d, double h, double roof_h);

// An open terrain patch: an nx × ny grid of quads over [0, w] × [0, d]
// (each split into two triangles), all at z = 0. Open meshes (boundary
// edges) exercise the subdivision/wavelet pipeline beyond the closed
// building shells — the multiresolution terrain case the paper's related
// work targets. Requires nx, ny >= 1.
Mesh MakeTerrainPatch(int32_t nx, int32_t ny, double w, double d);

}  // namespace mars::mesh

#endif  // MARS_MESH_PRIMITIVES_H_
