#ifndef MARS_MESH_PROGRESSIVE_H_
#define MARS_MESH_PROGRESSIVE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "geometry/vec.h"
#include "mesh/mesh.h"

namespace mars::mesh {

// Progressive-mesh multiresolution representation (Hoppe, SIGGRAPH 1996) —
// the alternative the paper's Related Work contrasts with wavelets:
// "wavelet-based approaches offer a more compact coding for progressive
// transmission of data". MARS implements it as a comparison baseline (see
// bench_ablation_encoding); the production path uses wavelets.
//
// The fine mesh is simplified by a sequence of half-edge collapses
// (shortest edge first); the inverse records — vertex splits — rebuild the
// mesh progressively from the base. Unlike subdivision wavelets, a vertex
// split must carry explicit connectivity (which faces to re-point and
// re-add), which is exactly why its wire format is bigger per unit of
// detail.
class ProgressiveMesh {
 public:
  // One vertex split (the inverse of a half-edge collapse of `removed`
  // onto `kept`). Applied coarse-to-fine.
  struct VertexSplit {
    int32_t kept = 0;
    int32_t removed = 0;
    geometry::Vec3 removed_position;
    // Stable ids of faces whose `removed` corner was re-pointed to `kept`
    // by the collapse; the split points them back.
    std::vector<int32_t> repointed_faces;
    // Stable ids of faces deleted by the collapse (they contained both
    // endpoints); the split revives them.
    std::vector<int32_t> revived_faces;

    // Wire size of this record: vertex ids, position, and the explicit
    // connectivity payload.
    int64_t WireBytes() const;
  };

  // Simplifies `fine` down to at most `target_vertices` referenced
  // vertices (never below 4). Fails if the mesh is invalid. Collapses that
  // would create duplicate faces are skipped, so the achieved base size
  // can be above the target on pathological inputs.
  static common::StatusOr<ProgressiveMesh> Build(const Mesh& fine,
                                                 int32_t target_vertices);

  // Number of vertex splits (0 splits = base mesh, all = original).
  int32_t split_count() const {
    return static_cast<int32_t>(splits_.size());
  }
  const std::vector<VertexSplit>& splits() const { return splits_; }

  // The mesh after applying the first `splits` vertex splits, compacted
  // (unreferenced vertices dropped). splits = split_count() reproduces the
  // original mesh geometry exactly.
  Mesh MeshAtDetail(int32_t splits) const;

  // Referenced-vertex count of the base mesh.
  int32_t base_vertex_count() const { return base_vertex_count_; }

  // Wire size of the base mesh (vertices + faces).
  int64_t BaseWireBytes() const;

  // Total wire size of the first `splits` split records.
  int64_t SplitsWireBytes(int32_t splits) const;

 private:
  ProgressiveMesh() = default;

  // All vertices ever used (positions of removed vertices retained).
  std::vector<geometry::Vec3> vertices_;
  // Face table in the *base* state, with tombstones (`alive_[i]`) for
  // faces deleted during simplification.
  std::vector<Face> base_faces_;
  std::vector<bool> base_alive_;
  // Splits in coarse-to-fine application order.
  std::vector<VertexSplit> splits_;
  int32_t base_vertex_count_ = 0;
};

}  // namespace mars::mesh

#endif  // MARS_MESH_PROGRESSIVE_H_
