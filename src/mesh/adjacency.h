#ifndef MARS_MESH_ADJACENCY_H_
#define MARS_MESH_ADJACENCY_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "mesh/mesh.h"

namespace mars::mesh {

// Per-vertex one-ring neighbourhoods of a mesh. The one-ring of an odd
// (edge-midpoint) vertex is exactly the wavelet support region of its
// coefficient (paper Sec. VI-A), and neighbour sets drive the server-side
// duplicate filtering of Sec. IV.
class VertexAdjacency {
 public:
  explicit VertexAdjacency(const Mesh& mesh);

  // Sorted, de-duplicated vertex indices sharing an edge with `v`.
  const std::vector<int32_t>& Neighbors(int32_t v) const {
    return neighbors_[v];
  }

  int32_t vertex_count() const {
    return static_cast<int32_t>(neighbors_.size());
  }

  bool AreAdjacent(int32_t a, int32_t b) const;

 private:
  std::vector<std::vector<int32_t>> neighbors_;
};

// Canonical (min, max) key for an undirected edge.
inline std::pair<int32_t, int32_t> EdgeKey(int32_t a, int32_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

// Maps each undirected edge to a dense index [0, edge_count). Iteration
// order of `edges()` matches the index order, which makes subdivision
// deterministic.
class EdgeMap {
 public:
  explicit EdgeMap(const Mesh& mesh);

  int32_t edge_count() const { return static_cast<int32_t>(edges_.size()); }

  // Index of edge (a, b); -1 if the mesh has no such edge.
  int32_t IndexOf(int32_t a, int32_t b) const;

  // Edge endpoints by dense index.
  const std::pair<int32_t, int32_t>& edge(int32_t index) const {
    return edges_[index];
  }
  const std::vector<std::pair<int32_t, int32_t>>& edges() const {
    return edges_;
  }

 private:
  std::map<std::pair<int32_t, int32_t>, int32_t> index_;
  std::vector<std::pair<int32_t, int32_t>> edges_;
};

}  // namespace mars::mesh

#endif  // MARS_MESH_ADJACENCY_H_
