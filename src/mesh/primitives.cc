#include "mesh/primitives.h"

#include <cmath>

#include "geometry/vec.h"

namespace mars::mesh {

using geometry::Vec3;

Mesh MakeTetrahedron() {
  const double s = 1.0 / std::sqrt(3.0);
  std::vector<Vec3> v = {
      {s, s, s}, {s, -s, -s}, {-s, s, -s}, {-s, -s, s}};
  std::vector<Face> f = {{0, 1, 2}, {0, 3, 1}, {0, 2, 3}, {1, 3, 2}};
  return Mesh(std::move(v), std::move(f));
}

Mesh MakeOctahedron() {
  std::vector<Vec3> v = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                         {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
  std::vector<Face> f = {{0, 2, 4}, {2, 1, 4}, {1, 3, 4}, {3, 0, 4},
                         {2, 0, 5}, {1, 2, 5}, {3, 1, 5}, {0, 3, 5}};
  return Mesh(std::move(v), std::move(f));
}

Mesh MakeBox(double w, double d, double h) {
  std::vector<Vec3> v = {{0, 0, 0}, {w, 0, 0}, {w, d, 0}, {0, d, 0},
                         {0, 0, h}, {w, 0, h}, {w, d, h}, {0, d, h}};
  std::vector<Face> f = {
      {0, 2, 1}, {0, 3, 2},  // bottom (z = 0), outward normal -z
      {4, 5, 6}, {4, 6, 7},  // top (z = h)
      {0, 1, 5}, {0, 5, 4},  // front (y = 0)
      {1, 2, 6}, {1, 6, 5},  // right (x = w)
      {2, 3, 7}, {2, 7, 6},  // back (y = d)
      {3, 0, 4}, {3, 4, 7},  // left (x = 0)
  };
  return Mesh(std::move(v), std::move(f));
}

Mesh MakeBuilding(double w, double d, double h, double roof_h) {
  Mesh m = MakeBox(w, d, h);
  // Replace the flat top (faces 2 and 3 in MakeBox) by a pyramid to the
  // apex. Rebuild the face list without the two top faces.
  std::vector<Face> faces;
  for (int32_t i = 0; i < m.face_count(); ++i) {
    if (i == 2 || i == 3) continue;
    faces.push_back(m.face(i));
  }
  Mesh out(m.vertices(), std::move(faces));
  const int32_t apex =
      out.AddVertex(Vec3{w / 2, d / 2, h + roof_h});
  // Top ring of the box is vertices 4..7, counter-clockwise from above.
  out.AddFace(4, 5, apex);
  out.AddFace(5, 6, apex);
  out.AddFace(6, 7, apex);
  out.AddFace(7, 4, apex);
  return out;
}

Mesh MakeTerrainPatch(int32_t nx, int32_t ny, double w, double d) {
  Mesh m;
  for (int32_t j = 0; j <= ny; ++j) {
    for (int32_t i = 0; i <= nx; ++i) {
      m.AddVertex(Vec3{w * i / nx, d * j / ny, 0.0});
    }
  }
  const auto vid = [nx](int32_t i, int32_t j) { return j * (nx + 1) + i; };
  for (int32_t j = 0; j < ny; ++j) {
    for (int32_t i = 0; i < nx; ++i) {
      // Two counter-clockwise triangles per cell (normal +z).
      m.AddFace(vid(i, j), vid(i + 1, j), vid(i + 1, j + 1));
      m.AddFace(vid(i, j), vid(i + 1, j + 1), vid(i, j + 1));
    }
  }
  return m;
}

}  // namespace mars::mesh
