#include "mesh/progressive.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "mesh/adjacency.h"

namespace mars::mesh {

namespace {

// Canonical sorted key of a face's vertex set, for duplicate detection.
std::tuple<int32_t, int32_t, int32_t> FaceKey(const Face& f) {
  std::array<int32_t, 3> v = {f[0], f[1], f[2]};
  std::sort(v.begin(), v.end());
  return {v[0], v[1], v[2]};
}

}  // namespace

int64_t ProgressiveMesh::VertexSplit::WireBytes() const {
  // kept id + removed id + position + per-face connectivity entries.
  return 4 + 4 + 12 +
         4 * static_cast<int64_t>(repointed_faces.size()) +
         4 * static_cast<int64_t>(revived_faces.size());
}

common::StatusOr<ProgressiveMesh> ProgressiveMesh::Build(
    const Mesh& fine, int32_t target_vertices) {
  MARS_RETURN_IF_ERROR(fine.Validate());
  target_vertices = std::max(target_vertices, 4);

  ProgressiveMesh pm;
  pm.vertices_ = fine.vertices();
  std::vector<Face> faces = fine.faces();
  std::vector<bool> alive(faces.size(), true);

  // Live face key set for duplicate detection, and per-vertex incident
  // face lists (indices into `faces`).
  std::set<std::tuple<int32_t, int32_t, int32_t>> live_keys;
  std::vector<std::vector<int32_t>> incident(fine.vertex_count());
  for (size_t i = 0; i < faces.size(); ++i) {
    live_keys.insert(FaceKey(faces[i]));
    for (int32_t v : faces[i]) {
      incident[v].push_back(static_cast<int32_t>(i));
    }
  }

  int32_t referenced = fine.vertex_count();
  std::vector<bool> removed(fine.vertex_count(), false);

  // Shortest-edge priority queue (lazily invalidated).
  using QueueEntry = std::pair<double, std::pair<int32_t, int32_t>>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>> queue;
  auto push_edges_of = [&](int32_t v) {
    for (int32_t fi : incident[v]) {
      if (!alive[fi]) continue;
      const Face& f = faces[fi];
      for (int k = 0; k < 3; ++k) {
        const int32_t a = f[k], b = f[(k + 1) % 3];
        const double len = (pm.vertices_[a] - pm.vertices_[b]).Norm();
        queue.push({len, EdgeKey(a, b)});
      }
    }
  };
  for (int32_t v = 0; v < fine.vertex_count(); ++v) push_edges_of(v);

  // Collapses recorded fine-to-coarse; reversed into splits at the end.
  std::vector<VertexSplit> collapses;

  while (referenced > target_vertices && !queue.empty()) {
    const auto edge = queue.top().second;
    queue.pop();
    const auto [u, v] = edge;  // collapse v onto u (half-edge collapse)
    if (removed[u] || removed[v]) continue;
    // Lazy invalidation: the edge may have died since it was queued.
    bool edge_alive = false;
    for (int32_t fi : incident[v]) {
      if (!alive[fi]) continue;
      const Face& f = faces[fi];
      if ((f[0] == u || f[1] == u || f[2] == u)) {
        edge_alive = true;
        break;
      }
    }
    if (!edge_alive) continue;

    // Validity: re-pointing v->u must not create a duplicate face.
    bool valid = true;
    for (int32_t fi : incident[v]) {
      if (!alive[fi]) continue;
      Face f = faces[fi];
      const bool has_u = f[0] == u || f[1] == u || f[2] == u;
      if (has_u) continue;  // this face dies, no duplication issue
      for (int32_t& c : f) {
        if (c == v) c = u;
      }
      if (live_keys.contains(FaceKey(f))) {
        valid = false;
        break;
      }
    }
    if (!valid) continue;

    // Perform the collapse.
    VertexSplit record;
    record.kept = u;
    record.removed = v;
    record.removed_position = pm.vertices_[v];
    for (int32_t fi : incident[v]) {
      if (!alive[fi]) continue;
      Face& f = faces[fi];
      const bool has_u = f[0] == u || f[1] == u || f[2] == u;
      live_keys.erase(FaceKey(f));
      if (has_u) {
        alive[fi] = false;
        record.revived_faces.push_back(fi);
      } else {
        for (int32_t& c : f) {
          if (c == v) c = u;
        }
        live_keys.insert(FaceKey(f));
        record.repointed_faces.push_back(fi);
        incident[u].push_back(fi);
      }
    }
    removed[v] = true;
    --referenced;
    collapses.push_back(std::move(record));
    push_edges_of(u);  // refresh edges around the survivor
  }

  pm.base_faces_ = std::move(faces);
  pm.base_alive_ = std::move(alive);
  pm.base_vertex_count_ = referenced;
  pm.splits_.assign(collapses.rbegin(), collapses.rend());
  return pm;
}

Mesh ProgressiveMesh::MeshAtDetail(int32_t split_budget) const {
  MARS_CHECK_GE(split_budget, 0);
  MARS_CHECK_LE(split_budget, split_count());

  std::vector<Face> faces = base_faces_;
  std::vector<bool> alive = base_alive_;
  for (int32_t s = 0; s < split_budget; ++s) {
    const VertexSplit& split = splits_[s];
    for (int32_t fi : split.repointed_faces) {
      for (int32_t& c : faces[fi]) {
        if (c == split.kept) c = split.removed;
      }
    }
    // Re-pointing rewrites *every* kept-corner of the face, which is only
    // correct because the collapse produced exactly one such corner per
    // repointed face (duplicate faces are rejected at build time)...
    for (int32_t fi : split.revived_faces) {
      alive[fi] = true;
    }
  }

  // Compact: drop tombstoned faces and unreferenced vertices.
  std::vector<int32_t> remap(vertices_.size(), -1);
  Mesh out;
  for (size_t fi = 0; fi < faces.size(); ++fi) {
    if (!alive[fi]) continue;
    Face f = faces[fi];
    for (int32_t& c : f) {
      if (remap[c] < 0) {
        remap[c] = out.AddVertex(vertices_[c]);
      }
      c = remap[c];
    }
    out.AddFace(f[0], f[1], f[2]);
  }
  return out;
}

int64_t ProgressiveMesh::BaseWireBytes() const {
  int64_t live_faces = 0;
  for (bool a : base_alive_) {
    if (a) ++live_faces;
  }
  // Vertices (12 B) + face index triples (12 B).
  return 12 * static_cast<int64_t>(base_vertex_count_) + 12 * live_faces;
}

int64_t ProgressiveMesh::SplitsWireBytes(int32_t splits) const {
  MARS_CHECK_GE(splits, 0);
  MARS_CHECK_LE(splits, split_count());
  int64_t total = 0;
  for (int32_t i = 0; i < splits; ++i) {
    total += splits_[i].WireBytes();
  }
  return total;
}

}  // namespace mars::mesh
