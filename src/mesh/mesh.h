#ifndef MARS_MESH_MESH_H_
#define MARS_MESH_MESH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/box.h"
#include "geometry/vec.h"

namespace mars::mesh {

// A triangle face referencing three vertex indices, counter-clockwise when
// viewed from outside.
using Face = std::array<int32_t, 3>;

// Indexed triangle mesh: the surface representation of a 3D object
// (paper Sec. III). Plain data holder; topological queries live in
// adjacency.h and subdivide.h.
class Mesh {
 public:
  Mesh() = default;
  Mesh(std::vector<geometry::Vec3> vertices, std::vector<Face> faces)
      : vertices_(std::move(vertices)), faces_(std::move(faces)) {}

  int32_t vertex_count() const {
    return static_cast<int32_t>(vertices_.size());
  }
  int32_t face_count() const { return static_cast<int32_t>(faces_.size()); }

  const std::vector<geometry::Vec3>& vertices() const { return vertices_; }
  const std::vector<Face>& faces() const { return faces_; }
  const geometry::Vec3& vertex(int32_t i) const { return vertices_[i]; }
  geometry::Vec3& mutable_vertex(int32_t i) { return vertices_[i]; }
  const Face& face(int32_t i) const { return faces_[i]; }

  // Appends a vertex and returns its index.
  int32_t AddVertex(const geometry::Vec3& v) {
    vertices_.push_back(v);
    return vertex_count() - 1;
  }
  void AddFace(int32_t a, int32_t b, int32_t c) {
    faces_.push_back(Face{a, b, c});
  }

  // Axis-aligned bounds of all vertices.
  geometry::Box3 Bounds() const;

  // Total surface area (sum of triangle areas).
  double SurfaceArea() const;

  // Verifies all face indices are in range and no face is degenerate
  // (repeated vertex index).
  common::Status Validate() const;

  // Translates all vertices by `offset`.
  void Translate(const geometry::Vec3& offset);

  // Scales all vertices about the origin.
  void Scale(double factor);

 private:
  std::vector<geometry::Vec3> vertices_;
  std::vector<Face> faces_;
};

// Number of distinct undirected edges in the mesh.
int64_t CountEdges(const Mesh& mesh);

}  // namespace mars::mesh

#endif  // MARS_MESH_MESH_H_
