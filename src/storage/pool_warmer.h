#ifndef MARS_STORAGE_POOL_WARMER_H_
#define MARS_STORAGE_POOL_WARMER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "storage/buffer_pool.h"

namespace mars::storage {

// Background buffer-pool warming: turns the fleet's interest field into an
// asynchronous warm-ahead plan, so the pages the fleet is about to traverse
// are resident before the query fan-out touches them.
//
// The warmer is driven from serial phases only (the fleet's commit phase or
// the single-client frame loop), with exactly two calls per tick:
//
//   Join()      waits for the previous tick's speculative reads and installs
//               their results into the pools in ascending (pool, id) order,
//               under the pools' never-evict-hotter rule.
//   Dispatch()  ranks every registered-not-resident array across all pools
//               by its interest score (score desc, then pool asc, id asc),
//               admits the top min(budget, max_in_flight) into flight, and
//               hands the reads to a dedicated I/O pool.
//
// Between Dispatch and the next Join the reads run concurrently with query
// Fetches (both serialise on each pool's mutex) — but never with the serial
// window itself, where the index layer talks to the raw storage managers
// (directory writes, page frees, rebalances). That window ordering is the
// whole determinism argument: every dispatched read installs exactly one
// tick later regardless of I/O timing, installs happen at one fixed point
// in the serial order, and results/node accesses are untouched because
// warming only ever changes which arrays are resident, never their bytes.
class PoolWarmer {
 public:
  struct Options {
    int64_t budget = 32;        // arrays admitted into flight per tick
    int64_t max_in_flight = 256;  // hard cap on one batch, over the budget
    int32_t workers = 2;        // dedicated I/O pool width
  };

  explicit PoolWarmer(Options options);
  ~PoolWarmer();

  PoolWarmer(const PoolWarmer&) = delete;
  PoolWarmer& operator=(const PoolWarmer&) = delete;

  // Registers a pool as a warming target. Serial phase only (between Join
  // and Dispatch); the pool must outlive the warmer.
  void AddPool(BufferPool* pool);

  // Serial phase, call 1: blocks until the in-flight batch (if any) has
  // finished reading, then installs the results deterministically.
  void Join();

  // Serial phase, call 2: ranks candidates under the pools' current
  // interest fields and dispatches the next speculative batch.
  void Dispatch();

  // Ticks that dispatched at least one read.
  int64_t active_ticks() const;
  const Options& options() const { return options_; }

 private:
  // One speculative read: filled by the I/O pool, installed by Join.
  struct Slot {
    BufferPool* pool = nullptr;
    size_t pool_index = 0;
    PageId id = kInvalidPage;
    std::vector<uint8_t> bytes;
    bool ok = false;
  };

  void CoordinatorLoop();

  const Options options_;
  std::vector<BufferPool*> pools_;  // serial-phase access only
  std::unique_ptr<common::ThreadPool> io_pool_;

  // Batch handoff: Dispatch publishes a batch and wakes the coordinator,
  // which owns it while pending; Join waits for completion and takes it
  // back. The coordinator thread exists so Dispatch can return before any
  // read has started — the serial phase never blocks on I/O.
  mutable std::mutex mu_;
  std::condition_variable batch_cv_;  // coordinator waits for a batch
  std::condition_variable done_cv_;   // Join waits for completion
  std::vector<Slot> batch_;
  bool batch_pending_ = false;
  bool stop_ = false;
  int64_t active_ticks_ = 0;

  std::thread coordinator_;
};

}  // namespace mars::storage

#endif  // MARS_STORAGE_POOL_WARMER_H_
