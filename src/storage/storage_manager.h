#ifndef MARS_STORAGE_STORAGE_MANAGER_H_
#define MARS_STORAGE_STORAGE_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mars::storage {

// Logical page identifier. Pages are fixed-size slots; a logical byte array
// larger than one page is stored as an overflow chain of pages and is always
// addressed by the id of its head page.
using PageId = int64_t;
inline constexpr PageId kInvalidPage = -1;

// FNV-1a 64-bit, used for page checksums and index fingerprints. Chosen for
// the same reasons as in server/persistence: deterministic, dependency-free,
// and good enough to catch torn writes and bit rot (not adversaries).
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t Fnv1a64(const uint8_t* data, size_t size,
                        uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t Fnv1a64Mix(uint64_t value, uint64_t seed) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return Fnv1a64(bytes, sizeof(bytes), seed);
}

// Which backing store holds index nodes.
enum class StoreKind : uint8_t {
  kMemory = 0,  // RAM-resident byte arrays; default, bit-identical passthrough
  kDisk = 1,    // fixed-size pages in a single file, checksummed
};

// Which eviction policy the buffer pool uses once full.
enum class EvictPolicy : uint8_t {
  kLru = 0,  // least-recently-used (buffer::LruCache semantics)
  // Motion-aware: keep pages with high predicted visit probability.
  kMotion = 1,
};

// User-facing storage configuration, threaded from mars_sim flags through
// core::Config / Server::Options down to the per-shard index build.
struct StorageConfig {
  StoreKind store = StoreKind::kMemory;
  // Page file path; required when store == kDisk. With K > 1 shards, shard k
  // uses `path + ".shard<k>"` so fan-out I/O parallelises across files.
  std::string path;
  int32_t page_size = 4096;   // bytes per on-disk page
  int64_t pool_pages = 256;   // buffer-pool capacity, split across shards
  EvictPolicy evict = EvictPolicy::kLru;
  // Background pool warming (storage::PoolWarmer): speculative reads of
  // the pages the fleet's interest field predicts it is about to
  // traverse. Requires kDisk + kMotion; off is a strict passthrough.
  bool warm = false;
  int64_t warm_budget = 32;   // arrays admitted into flight per tick
  int32_t warm_workers = 2;   // dedicated I/O pool width
};

// Cumulative counters kept by a storage manager. Units are pages, not
// logical arrays: storing a 3-page overflow chain counts 3 writes.
struct StorageStats {
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t erases = 0;
  int64_t pages_allocated = 0;
  int64_t pages_freed = 0;
};

// Abstract page store. Implementations persist logical byte arrays addressed
// by the PageId of their head page; arrays larger than one page payload are
// chained across pages transparently (the caller only ever sees head ids).
//
// Not thread-safe: callers serialise access (the BufferPool wraps every
// manager call in its own mutex).
class IStorageManager {
 public:
  virtual ~IStorageManager() = default;

  // Stores `data` as one logical array. On input, *id == kInvalidPage
  // allocates a fresh array and returns its head id; otherwise the existing
  // array at *id is rewritten in place (its chain grows or shrinks as
  // needed).
  virtual common::Status Store(PageId* id,
                               const std::vector<uint8_t>& data) = 0;

  // Loads the logical array with head page `id` into *out (replaced).
  virtual common::Status Load(PageId id, std::vector<uint8_t>* out) = 0;

  // Frees the logical array with head page `id`; its pages return to the
  // freelist for reuse.
  virtual common::Status Erase(PageId id) = 0;

  // Flushes buffered writes to durable storage (no-op for memory).
  virtual common::Status Flush() = 0;

  // A single well-known "root" array id persisted with the store, used by
  // the index layer to find its directory after a restart.
  virtual PageId root() const = 0;
  virtual common::Status SetRoot(PageId id) = 0;

  virtual const StorageStats& stats() const = 0;
  virtual int32_t page_size() const = 0;
  virtual const char* name() const = 0;
};

}  // namespace mars::storage

#endif  // MARS_STORAGE_STORAGE_MANAGER_H_
