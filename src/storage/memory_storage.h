#ifndef MARS_STORAGE_MEMORY_STORAGE_H_
#define MARS_STORAGE_MEMORY_STORAGE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "storage/storage_manager.h"

namespace mars::storage {

// RAM-resident IStorageManager: logical arrays live as whole vectors, but
// page accounting (reads/writes in page units) mirrors what the disk
// implementation would do at the same page size, so `--store memory` keeps
// the same stats semantics while staying a zero-I/O passthrough.
class MemoryStorageManager : public IStorageManager {
 public:
  explicit MemoryStorageManager(int32_t page_size);

  common::Status Store(PageId* id, const std::vector<uint8_t>& data) override;
  common::Status Load(PageId id, std::vector<uint8_t>* out) override;
  common::Status Erase(PageId id) override;
  common::Status Flush() override;

  PageId root() const override { return root_; }
  common::Status SetRoot(PageId id) override;

  const StorageStats& stats() const override { return stats_; }
  int32_t page_size() const override { return page_size_; }
  const char* name() const override { return "memory"; }

 private:
  int64_t PageCost(size_t bytes) const;

  int32_t page_size_;
  std::vector<std::optional<std::vector<uint8_t>>> arrays_;
  std::set<PageId> freelist_;  // ordered so reuse picks the lowest id
  PageId root_ = kInvalidPage;
  StorageStats stats_;
};

}  // namespace mars::storage

#endif  // MARS_STORAGE_MEMORY_STORAGE_H_
