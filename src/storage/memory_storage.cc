#include "storage/memory_storage.h"

#include <algorithm>
#include <utility>

namespace mars::storage {

MemoryStorageManager::MemoryStorageManager(int32_t page_size)
    : page_size_(std::max<int32_t>(page_size, 64)) {}

int64_t MemoryStorageManager::PageCost(size_t bytes) const {
  // Mirror the disk layout: each page holds page_size - header bytes of
  // payload. Keep the constant in sync with disk_storage.cc.
  const int64_t payload = std::max<int64_t>(page_size_ - 24, 1);
  return std::max<int64_t>(
      1, (static_cast<int64_t>(bytes) + payload - 1) / payload);
}

common::Status MemoryStorageManager::Store(PageId* id,
                                           const std::vector<uint8_t>& data) {
  if (id == nullptr) {
    return common::InvalidArgumentError("memory store: null id");
  }
  if (*id == kInvalidPage) {
    if (!freelist_.empty()) {
      *id = *freelist_.begin();
      freelist_.erase(freelist_.begin());
    } else {
      *id = static_cast<PageId>(arrays_.size());
      arrays_.emplace_back();
    }
    stats_.pages_allocated += PageCost(data.size());
  } else {
    if (*id < 0 || *id >= static_cast<PageId>(arrays_.size()) ||
        !arrays_[*id].has_value()) {
      return common::NotFoundError("memory store: rewrite of unknown page");
    }
    stats_.pages_freed += PageCost(arrays_[*id]->size());
    stats_.pages_allocated += PageCost(data.size());
  }
  arrays_[*id] = data;
  stats_.writes += PageCost(data.size());
  return common::OkStatus();
}

common::Status MemoryStorageManager::Load(PageId id,
                                          std::vector<uint8_t>* out) {
  if (out == nullptr) {
    return common::InvalidArgumentError("memory load: null out");
  }
  if (id < 0 || id >= static_cast<PageId>(arrays_.size()) ||
      !arrays_[id].has_value()) {
    return common::NotFoundError("memory load: unknown page");
  }
  *out = *arrays_[id];
  stats_.reads += PageCost(out->size());
  return common::OkStatus();
}

common::Status MemoryStorageManager::Erase(PageId id) {
  if (id < 0 || id >= static_cast<PageId>(arrays_.size()) ||
      !arrays_[id].has_value()) {
    return common::NotFoundError("memory erase: unknown page");
  }
  stats_.pages_freed += PageCost(arrays_[id]->size());
  ++stats_.erases;
  arrays_[id].reset();
  freelist_.insert(id);
  return common::OkStatus();
}

common::Status MemoryStorageManager::Flush() { return common::OkStatus(); }

common::Status MemoryStorageManager::SetRoot(PageId id) {
  root_ = id;
  return common::OkStatus();
}

}  // namespace mars::storage
