#include "storage/pool_warmer.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace mars::storage {

PoolWarmer::PoolWarmer(Options options) : options_(options) {
  MARS_CHECK_GE(options_.budget, 1);
  MARS_CHECK_GE(options_.max_in_flight, 1);
  MARS_CHECK_GE(options_.workers, 1);
  io_pool_ = std::make_unique<common::ThreadPool>(options_.workers);
  coordinator_ = std::thread([this] { CoordinatorLoop(); });
}

PoolWarmer::~PoolWarmer() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  batch_cv_.notify_all();
  // Joining the coordinator waits out any in-flight batch, so no read can
  // touch a pool after the warmer is gone.
  coordinator_.join();
}

void PoolWarmer::AddPool(BufferPool* pool) {
  MARS_CHECK(pool != nullptr);
  pools_.push_back(pool);
}

void PoolWarmer::CoordinatorLoop() {
  for (;;) {
    std::vector<Slot>* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_cv_.wait(lock, [this] { return batch_pending_ || stop_; });
      if (!batch_pending_) {
        return;  // stop requested with nothing in flight
      }
      batch = &batch_;
    }
    // Read every slot on the I/O pool. The slots are disjoint and the
    // pools internally locked, so the batch needs no further coordination;
    // RunBatch is a full barrier.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(batch->size());
    for (Slot& slot : *batch) {
      tasks.push_back([&slot] {
        slot.ok = slot.pool->ReadForPrefetch(slot.id, &slot.bytes).ok();
      });
    }
    io_pool_->RunBatch(tasks);
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_pending_ = false;
    }
    done_cv_.notify_all();
  }
}

void PoolWarmer::Join() {
  std::vector<Slot> finished;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return !batch_pending_; });
    finished = std::move(batch_);
    batch_.clear();
  }
  // Install in the batch's dispatch order — (pool, id) ascending within a
  // score rank — so the pools' eviction decisions are identical however
  // the reads interleaved.
  for (Slot& slot : finished) {
    if (slot.ok) {
      slot.pool->InstallPrefetched(slot.id, slot.bytes);
    } else {
      slot.pool->NotePrefetchFailed();
    }
  }
}

void PoolWarmer::Dispatch() {
  // Rank every pool's not-resident candidates globally: hottest first,
  // ties to the lower pool index then lower id. The candidate lists are
  // computed under the pools' current interest fields, which the serial
  // phase refreshed just before this call.
  struct Ranked {
    double score;
    size_t pool_index;
    PageId id;
  };
  std::vector<Ranked> ranked;
  for (size_t p = 0; p < pools_.size(); ++p) {
    for (const BufferPool::PrefetchCandidate& c :
         pools_[p]->PrefetchCandidates()) {
      ranked.push_back({c.score, p, c.id});
    }
  }
  if (ranked.empty()) {
    return;
  }
  const size_t admit = static_cast<size_t>(
      std::min(options_.budget, options_.max_in_flight));
  if (ranked.size() > admit) {
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<ptrdiff_t>(admit),
                      ranked.end(), [](const Ranked& a, const Ranked& b) {
                        if (a.score != b.score) return a.score > b.score;
                        if (a.pool_index != b.pool_index) {
                          return a.pool_index < b.pool_index;
                        }
                        return a.id < b.id;
                      });
    ranked.resize(admit);
  } else {
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.pool_index != b.pool_index) {
                  return a.pool_index < b.pool_index;
                }
                return a.id < b.id;
              });
  }

  std::vector<Slot> batch;
  batch.reserve(ranked.size());
  for (const Ranked& r : ranked) {
    Slot slot;
    slot.pool = pools_[r.pool_index];
    slot.pool_index = r.pool_index;
    slot.id = r.id;
    batch.push_back(std::move(slot));
    pools_[r.pool_index]->NotePrefetchIssued(1);
  }
  // Installs must be order-deterministic regardless of score ties'
  // floating-point happenstance across pools: fix (pool, id) ascending.
  std::sort(batch.begin(), batch.end(), [](const Slot& a, const Slot& b) {
    if (a.pool_index != b.pool_index) return a.pool_index < b.pool_index;
    return a.id < b.id;
  });
  {
    std::unique_lock<std::mutex> lock(mu_);
    MARS_CHECK(!batch_pending_) << "Dispatch without an intervening Join";
    batch_ = std::move(batch);
    batch_pending_ = true;
    ++active_ticks_;
  }
  batch_cv_.notify_all();
}

int64_t PoolWarmer::active_ticks() const {
  std::unique_lock<std::mutex> lock(mu_);
  return active_ticks_;
}

}  // namespace mars::storage
