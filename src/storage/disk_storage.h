#ifndef MARS_STORAGE_DISK_STORAGE_H_
#define MARS_STORAGE_DISK_STORAGE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/storage_manager.h"

namespace mars::storage {

// Fixed-size-page file store, after the IStorageManager split in
// libspatialindex-style stores: logical byte arrays are chained across
// fixed-size pages in a single file, page ids are allocated from a freelist,
// and every page carries an FNV-1a checksum so torn writes and bit rot
// surface as clean Status errors instead of undefined behavior.
//
// File layout:
//   [64-byte header]  magic, version, page_size, root id, header checksum
//   [page 0][page 1]...  each page_size bytes:
//     [u64 checksum][u32 flags][u32 payload_len][i64 next page][payload...]
//
// The checksum covers everything after itself up to the end of the payload.
// `flags` bit 0 marks the slot used, bit 1 marks a chain head; the freelist
// is rebuilt on open by scanning the used bits.
class DiskStorageManager : public IStorageManager {
 public:
  // Opens `path`. If the file exists (and `truncate` is false) its header is
  // validated and the freelist rebuilt from the page flags — a bad magic,
  // version, or header checksum is an error, never a crash. Otherwise a
  // fresh, empty store is created with the requested page size.
  static common::StatusOr<std::unique_ptr<DiskStorageManager>> Open(
      const std::string& path, int32_t page_size, bool truncate = false);

  ~DiskStorageManager() override;

  DiskStorageManager(const DiskStorageManager&) = delete;
  DiskStorageManager& operator=(const DiskStorageManager&) = delete;

  common::Status Store(PageId* id, const std::vector<uint8_t>& data) override;
  common::Status Load(PageId id, std::vector<uint8_t>* out) override;
  common::Status Erase(PageId id) override;
  common::Status Flush() override;

  PageId root() const override { return root_; }
  common::Status SetRoot(PageId id) override;

  const StorageStats& stats() const override { return stats_; }
  int32_t page_size() const override { return page_size_; }
  const char* name() const override { return "disk"; }

  // True when Open() attached to an existing page file rather than creating
  // a fresh one; the index layer uses this to attempt a restore.
  bool opened_existing() const { return opened_existing_; }
  int64_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }

  // Pages currently on the freelist: slots the file has allocated but no
  // chain occupies (epoch retirements return pages here for reuse).
  int64_t free_pages() const {
    return static_cast<int64_t>(freelist_.size());
  }
  // Free pages that are NOT part of the file's trailing free run — holes
  // punched mid-file, the store's fragmentation measure. Store() refills
  // them lowest-id first, so a fragmented file heals as epochs rewrite.
  int64_t fragmented_pages() const {
    int64_t trailing = 0;
    PageId expected = page_count_ - 1;
    for (auto it = freelist_.rbegin(); it != freelist_.rend();
         ++it, --expected) {
      if (*it != expected) break;
      ++trailing;
    }
    return static_cast<int64_t>(freelist_.size()) - trailing;
  }

 private:
  DiskStorageManager(std::string path, int32_t page_size);

  int64_t PayloadCapacity() const;
  int64_t PageOffset(PageId id) const;
  PageId AllocatePage();
  common::Status FreePage(PageId id);
  common::Status WritePage(PageId id, uint32_t flags, PageId next,
                           const uint8_t* payload, uint32_t payload_len);
  common::Status ReadPage(PageId id, uint32_t* flags, PageId* next,
                          std::vector<uint8_t>* payload);
  common::Status WriteHeader();
  common::Status OpenExisting();
  common::Status CreateFresh();
  bool IsUsed(PageId id) const;

  std::string path_;
  int32_t page_size_;
  std::FILE* file_ = nullptr;
  int64_t page_count_ = 0;
  std::set<PageId> freelist_;  // ordered so reuse picks the lowest id
  PageId root_ = kInvalidPage;
  bool opened_existing_ = false;
  StorageStats stats_;
};

}  // namespace mars::storage

#endif  // MARS_STORAGE_DISK_STORAGE_H_
