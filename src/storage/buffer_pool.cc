#include "storage/buffer_pool.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mars::storage {

double InterestGrid::ScoreRegion(const geometry::Box2& region) const {
  if (empty() || region.IsEmpty()) {
    return 0.0;
  }
  const double width = space.hi(0) - space.lo(0);
  const double height = space.hi(1) - space.lo(1);
  if (width <= 0.0 || height <= 0.0) {
    return 0.0;
  }
  auto block_of = [](double v, double lo, double extent, int32_t n) {
    const double t = (v - lo) / extent;
    const int32_t i = static_cast<int32_t>(std::floor(t * n));
    return std::clamp<int32_t>(i, 0, n - 1);
  };
  const int32_t i0 = block_of(region.lo(0), space.lo(0), width, nx);
  const int32_t i1 = block_of(region.hi(0), space.lo(0), width, nx);
  const int32_t j0 = block_of(region.lo(1), space.lo(1), height, ny);
  const int32_t j1 = block_of(region.hi(1), space.lo(1), height, ny);
  double total = 0.0;
  int64_t blocks = 0;
  for (int32_t j = j0; j <= j1; ++j) {
    for (int32_t i = i0; i <= i1; ++i) {
      total += score[static_cast<size_t>(j) * nx + i];
      ++blocks;
    }
  }
  return blocks > 0 ? total / static_cast<double>(blocks) : 0.0;
}

BufferPool::BufferPool(IStorageManager* manager, int64_t capacity_pages,
                       EvictPolicy policy)
    : manager_(manager),
      capacity_pages_(std::max<int64_t>(capacity_pages, 1)),
      policy_(policy),
      // The LruCache is a recency-order structure only: capacity is
      // enforced by EvictForLocked (which keeps it in lockstep with
      // resident_), so the cache itself must never self-evict.
      lru_(std::numeric_limits<int64_t>::max()) {}

int64_t BufferPool::PageCost(size_t bytes) const {
  const int64_t payload = std::max<int64_t>(manager_->page_size() - 24, 1);
  return std::max<int64_t>(
      1, (static_cast<int64_t>(bytes) + payload - 1) / payload);
}

double BufferPool::ScoreLocked(PageId id) const {
  if (interest_.empty()) {
    return 0.0;
  }
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    return 0.0;
  }
  return interest_.ScoreRegion(it->second);
}

void BufferPool::RemoveResidentLocked(PageId victim) {
  auto it = resident_.find(victim);
  if (it == resident_.end()) {
    return;
  }
  if (it->second.speculative) {
    ++stats_.prefetch_wasted;
  }
  used_pages_ -= it->second.cost_pages;
  resident_.erase(it);
  lru_.Erase(victim);
  ++stats_.evictions;
}

void BufferPool::EvictForLocked(PageId just_inserted) {
  while (used_pages_ > capacity_pages_ && resident_.size() > 1) {
    PageId victim = kInvalidPage;
    if (policy_ == EvictPolicy::kMotion) {
      // Coldest predicted region first; recency then id break ties so the
      // choice is deterministic across runs.
      double best_score = std::numeric_limits<double>::infinity();
      int64_t best_use = std::numeric_limits<int64_t>::max();
      for (const auto& [id, entry] : resident_) {
        if (id == just_inserted) {
          continue;
        }
        if (entry.score < best_score ||
            (entry.score == best_score && entry.last_use < best_use) ||
            (entry.score == best_score && entry.last_use == best_use &&
             (victim == kInvalidPage || id < victim))) {
          best_score = entry.score;
          best_use = entry.last_use;
          victim = id;
        }
      }
    } else {
      PageId lru_victim = kInvalidPage;
      if (!lru_.LeastRecent(just_inserted, &lru_victim)) {
        return;
      }
      victim = lru_victim;
    }
    if (victim == kInvalidPage || !resident_.contains(victim)) {
      return;
    }
    RemoveResidentLocked(victim);
  }
}

bool BufferPool::EvictColderLocked(double score) {
  PageId victim = kInvalidPage;
  double best_score = std::numeric_limits<double>::infinity();
  int64_t best_use = std::numeric_limits<int64_t>::max();
  for (const auto& [id, entry] : resident_) {
    if (entry.score < best_score ||
        (entry.score == best_score && entry.last_use < best_use) ||
        (entry.score == best_score && entry.last_use == best_use &&
         (victim == kInvalidPage || id < victim))) {
      best_score = entry.score;
      best_use = entry.last_use;
      victim = id;
    }
  }
  if (victim == kInvalidPage || best_score >= score) {
    return false;
  }
  RemoveResidentLocked(victim);
  return true;
}

void BufferPool::InsertLocked(PageId id, const std::vector<uint8_t>& bytes) {
  const int64_t cost = PageCost(bytes.size());
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    used_pages_ -= it->second.cost_pages;
    resident_.erase(it);
  }
  Resident entry;
  entry.bytes = bytes;
  entry.cost_pages = cost;
  entry.last_use = ++clock_;
  entry.score = ScoreLocked(id);
  resident_.emplace(id, std::move(entry));
  used_pages_ += cost;
  if (!lru_.Contains(id)) {
    lru_.Put(id, cost);
  } else {
    lru_.Touch(id);
  }
  EvictForLocked(id);
}

common::Status BufferPool::Fetch(PageId id, std::vector<uint8_t>* out) {
  if (out == nullptr) {
    return common::InvalidArgumentError("buffer pool: null out");
  }
  common::MutexLock lock(&mu_);
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    ++stats_.hits;
    if (it->second.speculative) {
      // First query touch of a warmed entry: the prefetch paid off.
      it->second.speculative = false;
      ++stats_.prefetch_hits;
    }
    it->second.last_use = ++clock_;
    lru_.Touch(id);
    *out = it->second.bytes;
    return common::OkStatus();
  }
  ++stats_.misses;
  const int64_t reads_before = manager_->stats().reads;
  MARS_RETURN_IF_ERROR(manager_->Load(id, out));
  stats_.disk_reads += manager_->stats().reads - reads_before;
  InsertLocked(id, *out);
  return common::OkStatus();
}

common::Status BufferPool::Store(PageId* id,
                                 const std::vector<uint8_t>& data) {
  common::MutexLock lock(&mu_);
  const int64_t writes_before = manager_->stats().writes;
  MARS_RETURN_IF_ERROR(manager_->Store(id, data));
  stats_.disk_writes += manager_->stats().writes - writes_before;
  InsertLocked(*id, data);
  return common::OkStatus();
}

common::Status BufferPool::Erase(PageId id) {
  common::MutexLock lock(&mu_);
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    used_pages_ -= it->second.cost_pages;
    resident_.erase(it);
    lru_.Erase(id);
  }
  regions_.erase(id);
  return manager_->Erase(id);
}

common::Status BufferPool::Flush() {
  common::MutexLock lock(&mu_);
  return manager_->Flush();
}

common::Status BufferPool::SetRoot(PageId id) {
  common::MutexLock lock(&mu_);
  return manager_->SetRoot(id);
}

PageId BufferPool::root() const {
  common::MutexLock lock(&mu_);
  return manager_->root();
}

void BufferPool::SetPageRegion(PageId id, const geometry::Box2& region) {
  common::MutexLock lock(&mu_);
  regions_[id] = region;
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    it->second.score = ScoreLocked(id);
  }
}

void BufferPool::UpdateInterest(const InterestGrid& interest) {
  common::MutexLock lock(&mu_);
  interest_ = interest;
  for (auto& [id, entry] : resident_) {
    entry.score = ScoreLocked(id);
  }
}

std::vector<BufferPool::PrefetchCandidate> BufferPool::PrefetchCandidates()
    const {
  common::MutexLock lock(&mu_);
  std::vector<PrefetchCandidate> out;
  if (interest_.empty()) {
    return out;
  }
  for (const auto& [id, region] : regions_) {
    if (resident_.contains(id)) {
      continue;
    }
    const double score = interest_.ScoreRegion(region);
    if (score > 0.0) {
      out.push_back({id, score});
    }
  }
  // regions_ iterates in hash order; ascending id makes the candidate
  // list — and therefore the warmer's tie-breaks — deterministic.
  std::sort(out.begin(), out.end(),
            [](const PrefetchCandidate& a, const PrefetchCandidate& b) {
              return a.id < b.id;
            });
  return out;
}

common::Status BufferPool::ReadForPrefetch(PageId id,
                                           std::vector<uint8_t>* out) {
  if (out == nullptr) {
    return common::InvalidArgumentError("buffer pool: null out");
  }
  // The pool mutex serialises the manager against concurrent Fetch
  // misses (managers are not thread-safe, and Fetch's disk_reads delta
  // must not absorb speculative reads).
  common::MutexLock lock(&mu_);
  return manager_->Load(id, out);
}

void BufferPool::NotePrefetchIssued(int64_t count) {
  common::MutexLock lock(&mu_);
  stats_.prefetch_issued += count;
}

void BufferPool::NotePrefetchFailed() {
  common::MutexLock lock(&mu_);
  ++stats_.prefetch_dropped;
}

void BufferPool::InstallPrefetched(PageId id,
                                   const std::vector<uint8_t>& bytes) {
  common::MutexLock lock(&mu_);
  if (resident_.contains(id)) {
    // A query fetched the array between dispatch and install; the cached
    // copy is authoritative (same on-disk bytes, fresher recency).
    ++stats_.prefetch_dropped;
    return;
  }
  if (!regions_.contains(id)) {
    // Unregistered since dispatch (epoch swap erased the array).
    ++stats_.prefetch_dropped;
    return;
  }
  const double score = ScoreLocked(id);
  const int64_t cost = PageCost(bytes.size());
  if (cost > capacity_pages_) {
    ++stats_.prefetch_dropped;
    return;
  }
  // Never evict a protected / hotter page for a speculative one: make
  // room only off strictly colder residents, or refuse the install.
  while (used_pages_ + cost > capacity_pages_ && !resident_.empty()) {
    if (!EvictColderLocked(score)) {
      ++stats_.prefetch_dropped;
      return;
    }
  }
  Resident entry;
  entry.bytes = bytes;
  entry.cost_pages = cost;
  entry.last_use = ++clock_;
  entry.score = score;
  entry.speculative = true;
  resident_.emplace(id, std::move(entry));
  used_pages_ += cost;
  if (!lru_.Contains(id)) {
    lru_.Put(id, cost);
  } else {
    lru_.Touch(id);
  }
}

PoolStats BufferPool::stats() const {
  common::MutexLock lock(&mu_);
  PoolStats out = stats_;
  out.resident = static_cast<int64_t>(resident_.size());
  out.resident_pages = used_pages_;
  return out;
}

}  // namespace mars::storage
