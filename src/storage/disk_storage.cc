#include "storage/disk_storage.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/serialize.h"

namespace mars::storage {
namespace {

constexpr int64_t kHeaderBytes = 64;
constexpr int64_t kPageHeaderBytes = 24;
constexpr uint64_t kMagic = 0x3145474150535244ull;  // "DRSPAGE1" LE
constexpr uint32_t kVersion = 1;
constexpr uint32_t kUsedFlag = 1u << 0;
constexpr uint32_t kHeadFlag = 1u << 1;
constexpr int32_t kMinPageSize = 128;

}  // namespace

common::StatusOr<std::unique_ptr<DiskStorageManager>> DiskStorageManager::Open(
    const std::string& path, int32_t page_size, bool truncate) {
  if (path.empty()) {
    return common::InvalidArgumentError("disk store: empty path");
  }
  if (page_size < kMinPageSize) {
    return common::InvalidArgumentError("disk store: page size too small");
  }
  std::unique_ptr<DiskStorageManager> mgr(
      new DiskStorageManager(path, page_size));
  bool exists = false;
  if (!truncate) {
    if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
      std::fclose(probe);
      exists = true;
    }
  }
  if (exists) {
    mgr->file_ = std::fopen(path.c_str(), "rb+");
    if (mgr->file_ == nullptr) {
      return common::InternalError("disk store: cannot open " + path);
    }
    MARS_RETURN_IF_ERROR(mgr->OpenExisting());
    mgr->opened_existing_ = true;
  } else {
    mgr->file_ = std::fopen(path.c_str(), "wb+");
    if (mgr->file_ == nullptr) {
      return common::InternalError("disk store: cannot create " + path);
    }
    MARS_RETURN_IF_ERROR(mgr->CreateFresh());
  }
  return mgr;
}

DiskStorageManager::DiskStorageManager(std::string path, int32_t page_size)
    : path_(std::move(path)), page_size_(page_size) {}

DiskStorageManager::~DiskStorageManager() {
  if (file_ != nullptr) {
    WriteHeader();  // best effort: persist root across shutdown
    std::fflush(file_);
    std::fclose(file_);
  }
}

int64_t DiskStorageManager::PayloadCapacity() const {
  return page_size_ - kPageHeaderBytes;
}

int64_t DiskStorageManager::PageOffset(PageId id) const {
  return kHeaderBytes + id * static_cast<int64_t>(page_size_);
}

bool DiskStorageManager::IsUsed(PageId id) const {
  return id >= 0 && id < page_count_ && freelist_.count(id) == 0;
}

common::Status DiskStorageManager::WriteHeader() {
  common::ByteWriter w;
  w.WriteU64(kMagic);
  w.WriteU32(kVersion);
  w.WriteU32(static_cast<uint32_t>(page_size_));
  w.WriteI64(root_);
  std::vector<uint8_t> buf = std::move(w).Take();
  buf.resize(kHeaderBytes - 8, 0);
  const uint64_t checksum = Fnv1a64(buf.data(), buf.size());
  common::ByteWriter tail;
  tail.WriteU64(checksum);
  buf.insert(buf.end(), tail.buffer().begin(), tail.buffer().end());
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return common::InternalError("disk store: header write failed");
  }
  return common::OkStatus();
}

common::Status DiskStorageManager::CreateFresh() {
  page_count_ = 0;
  root_ = kInvalidPage;
  MARS_RETURN_IF_ERROR(WriteHeader());
  if (std::fflush(file_) != 0) {
    return common::InternalError("disk store: flush failed");
  }
  return common::OkStatus();
}

common::Status DiskStorageManager::OpenExisting() {
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return common::InternalError("disk store: seek failed");
  }
  const int64_t file_size = std::ftell(file_);
  if (file_size < kHeaderBytes) {
    return common::InternalError("disk store: truncated header in " + path_);
  }
  std::vector<uint8_t> buf(kHeaderBytes);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return common::InternalError("disk store: header read failed");
  }
  common::ByteReader head(buf.data(), kHeaderBytes - 8);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t page_size = 0;
  int64_t root = kInvalidPage;
  MARS_RETURN_IF_ERROR(head.ReadU64(&magic));
  MARS_RETURN_IF_ERROR(head.ReadU32(&version));
  MARS_RETURN_IF_ERROR(head.ReadU32(&page_size));
  MARS_RETURN_IF_ERROR(head.ReadI64(&root));
  if (magic != kMagic) {
    return common::InternalError("disk store: bad magic in " + path_);
  }
  if (version != kVersion) {
    return common::InternalError("disk store: unsupported version in " +
                                 path_);
  }
  if (page_size < static_cast<uint32_t>(kMinPageSize) ||
      page_size > (1u << 26)) {
    return common::InternalError("disk store: bad page size in " + path_);
  }
  common::ByteReader tail(buf.data() + (kHeaderBytes - 8), 8);
  uint64_t stored_checksum = 0;
  MARS_RETURN_IF_ERROR(tail.ReadU64(&stored_checksum));
  if (Fnv1a64(buf.data(), kHeaderBytes - 8) != stored_checksum) {
    return common::InternalError("disk store: header checksum mismatch in " +
                                 path_);
  }
  page_size_ = static_cast<int32_t>(page_size);
  root_ = root;
  page_count_ = (file_size - kHeaderBytes) / page_size_;
  // Rebuild the freelist by scanning the used bit of every page header. A
  // corrupt flag word can at worst leak a slot or route a Load into a
  // checksum mismatch; it never reads out of bounds.
  freelist_.clear();
  std::vector<uint8_t> page_head(kPageHeaderBytes);
  for (PageId id = 0; id < page_count_; ++id) {
    if (std::fseek(file_, static_cast<long>(PageOffset(id)), SEEK_SET) != 0 ||
        std::fread(page_head.data(), 1, page_head.size(), file_) !=
            page_head.size()) {
      return common::InternalError("disk store: truncated page table in " +
                                   path_);
    }
    common::ByteReader r(page_head.data(), page_head.size());
    uint64_t checksum = 0;
    uint32_t flags = 0;
    MARS_RETURN_IF_ERROR(r.ReadU64(&checksum));
    MARS_RETURN_IF_ERROR(r.ReadU32(&flags));
    if ((flags & kUsedFlag) == 0) {
      freelist_.insert(id);
    }
  }
  if (root_ != kInvalidPage && !IsUsed(root_)) {
    return common::InternalError("disk store: root page not in use in " +
                                 path_);
  }
  return common::OkStatus();
}

PageId DiskStorageManager::AllocatePage() {
  ++stats_.pages_allocated;
  if (!freelist_.empty()) {
    const PageId id = *freelist_.begin();
    freelist_.erase(freelist_.begin());
    return id;
  }
  return page_count_++;
}

common::Status DiskStorageManager::FreePage(PageId id) {
  // Clear the used bit on disk so a restart's freelist scan sees the slot
  // as free; the payload itself is left in place.
  std::vector<uint8_t> head(kPageHeaderBytes, 0);
  if (std::fseek(file_, static_cast<long>(PageOffset(id)), SEEK_SET) != 0 ||
      std::fwrite(head.data(), 1, head.size(), file_) != head.size()) {
    return common::InternalError("disk store: page free failed");
  }
  freelist_.insert(id);
  ++stats_.pages_freed;
  return common::OkStatus();
}

common::Status DiskStorageManager::WritePage(PageId id, uint32_t flags,
                                             PageId next,
                                             const uint8_t* payload,
                                             uint32_t payload_len) {
  common::ByteWriter w;
  w.WriteU32(flags);
  w.WriteU32(payload_len);
  w.WriteI64(next);
  std::vector<uint8_t> body = std::move(w).Take();
  body.insert(body.end(), payload, payload + payload_len);
  const uint64_t checksum = Fnv1a64(body.data(), body.size());
  common::ByteWriter page;
  page.WriteU64(checksum);
  std::vector<uint8_t> buf = std::move(page).Take();
  buf.insert(buf.end(), body.begin(), body.end());
  buf.resize(page_size_, 0);
  if (std::fseek(file_, static_cast<long>(PageOffset(id)), SEEK_SET) != 0 ||
      std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return common::InternalError("disk store: page write failed");
  }
  ++stats_.writes;
  return common::OkStatus();
}

common::Status DiskStorageManager::ReadPage(PageId id, uint32_t* flags,
                                            PageId* next,
                                            std::vector<uint8_t>* payload) {
  if (id < 0 || id >= page_count_) {
    return common::OutOfRangeError("disk store: page id out of range");
  }
  std::vector<uint8_t> buf(page_size_);
  if (std::fseek(file_, static_cast<long>(PageOffset(id)), SEEK_SET) != 0 ||
      std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return common::InternalError("disk store: truncated page read in " +
                                 path_);
  }
  common::ByteReader r(buf.data(), buf.size());
  uint64_t stored_checksum = 0;
  uint32_t payload_len = 0;
  MARS_RETURN_IF_ERROR(r.ReadU64(&stored_checksum));
  MARS_RETURN_IF_ERROR(r.ReadU32(flags));
  MARS_RETURN_IF_ERROR(r.ReadU32(&payload_len));
  MARS_RETURN_IF_ERROR(r.ReadI64(next));
  if (payload_len > static_cast<uint64_t>(PayloadCapacity())) {
    return common::InternalError("disk store: corrupt payload length");
  }
  const uint64_t checksum =
      Fnv1a64(buf.data() + 8, kPageHeaderBytes - 8 + payload_len);
  if (checksum != stored_checksum) {
    return common::InternalError("disk store: page checksum mismatch in " +
                                 path_);
  }
  payload->assign(buf.begin() + kPageHeaderBytes,
                  buf.begin() + kPageHeaderBytes + payload_len);
  ++stats_.reads;
  return common::OkStatus();
}

common::Status DiskStorageManager::Store(PageId* id,
                                         const std::vector<uint8_t>& data) {
  if (id == nullptr) {
    return common::InvalidArgumentError("disk store: null id");
  }
  const int64_t capacity = PayloadCapacity();
  const int64_t pages_needed = std::max<int64_t>(
      1, (static_cast<int64_t>(data.size()) + capacity - 1) / capacity);

  std::vector<PageId> chain;
  if (*id != kInvalidPage) {
    // In-place rewrite: walk the old chain so its pages can be reused, the
    // head id staying stable for callers that recorded it.
    if (!IsUsed(*id)) {
      return common::NotFoundError("disk store: rewrite of unknown page");
    }
    PageId cur = *id;
    int64_t steps = 0;
    while (cur != kInvalidPage) {
      if (++steps > page_count_) {
        return common::InternalError("disk store: page chain cycle");
      }
      chain.push_back(cur);
      uint32_t flags = 0;
      PageId next = kInvalidPage;
      std::vector<uint8_t> scratch;
      MARS_RETURN_IF_ERROR(ReadPage(cur, &flags, &next, &scratch));
      cur = next;
    }
    while (static_cast<int64_t>(chain.size()) > pages_needed) {
      MARS_RETURN_IF_ERROR(FreePage(chain.back()));
      chain.pop_back();
    }
  }
  while (static_cast<int64_t>(chain.size()) < pages_needed) {
    chain.push_back(AllocatePage());
  }
  for (int64_t i = 0; i < pages_needed; ++i) {
    const int64_t begin = i * capacity;
    const int64_t end =
        std::min<int64_t>(begin + capacity, static_cast<int64_t>(data.size()));
    const uint32_t flags = kUsedFlag | (i == 0 ? kHeadFlag : 0u);
    const PageId next = (i + 1 < pages_needed) ? chain[i + 1] : kInvalidPage;
    MARS_RETURN_IF_ERROR(WritePage(chain[i], flags, next, data.data() + begin,
                                   static_cast<uint32_t>(end - begin)));
  }
  *id = chain[0];
  return common::OkStatus();
}

common::Status DiskStorageManager::Load(PageId id, std::vector<uint8_t>* out) {
  if (out == nullptr) {
    return common::InvalidArgumentError("disk store: null out");
  }
  if (!IsUsed(id)) {
    return common::NotFoundError("disk store: load of unknown page");
  }
  out->clear();
  PageId cur = id;
  bool first = true;
  int64_t steps = 0;
  while (cur != kInvalidPage) {
    if (++steps > page_count_) {
      return common::InternalError("disk store: page chain cycle");
    }
    uint32_t flags = 0;
    PageId next = kInvalidPage;
    std::vector<uint8_t> payload;
    MARS_RETURN_IF_ERROR(ReadPage(cur, &flags, &next, &payload));
    if ((flags & kUsedFlag) == 0) {
      return common::InternalError("disk store: chain through free page");
    }
    if (first && (flags & kHeadFlag) == 0) {
      return common::InvalidArgumentError(
          "disk store: load of non-head page");
    }
    out->insert(out->end(), payload.begin(), payload.end());
    cur = next;
    first = false;
  }
  return common::OkStatus();
}

common::Status DiskStorageManager::Erase(PageId id) {
  if (!IsUsed(id)) {
    return common::NotFoundError("disk store: erase of unknown page");
  }
  // Collect the chain before freeing anything so a mid-chain error leaves a
  // consistent (if leaky) file.
  std::vector<PageId> chain;
  PageId cur = id;
  int64_t steps = 0;
  while (cur != kInvalidPage) {
    if (++steps > page_count_) {
      return common::InternalError("disk store: page chain cycle");
    }
    chain.push_back(cur);
    uint32_t flags = 0;
    PageId next = kInvalidPage;
    std::vector<uint8_t> payload;
    MARS_RETURN_IF_ERROR(ReadPage(cur, &flags, &next, &payload));
    cur = next;
  }
  for (const PageId page : chain) {
    MARS_RETURN_IF_ERROR(FreePage(page));
  }
  ++stats_.erases;
  return common::OkStatus();
}

common::Status DiskStorageManager::Flush() {
  MARS_RETURN_IF_ERROR(WriteHeader());
  if (std::fflush(file_) != 0) {
    return common::InternalError("disk store: flush failed");
  }
  return common::OkStatus();
}

common::Status DiskStorageManager::SetRoot(PageId id) {
  root_ = id;
  return WriteHeader();
}

}  // namespace mars::storage
