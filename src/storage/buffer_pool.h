#ifndef MARS_STORAGE_BUFFER_POOL_H_
#define MARS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "buffer/lru_cache.h"
#include "common/mutex.h"
#include "common/status.h"
#include "geometry/box.h"
#include "storage/storage_manager.h"

namespace mars::storage {

// Server-side visit-probability field over the ground plane, produced from
// the fleet's motion predictors (see server::MotionInterestTracker). Kept
// dependency-free of src/motion so the storage layer stays a leaf library:
// producers translate predictor output into this grid.
struct InterestGrid {
  geometry::Box2 space;
  int32_t nx = 0;
  int32_t ny = 0;
  std::vector<double> score;  // row-major nx*ny block scores

  bool empty() const { return nx <= 0 || ny <= 0 || score.empty(); }

  // Mean block score over the blocks a world-space region overlaps (zero
  // when the grid is empty or the region misses the space entirely).
  double ScoreRegion(const geometry::Box2& region) const;
};

// Cumulative buffer-pool counters, exported per shard in the fleet JSON.
struct PoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t disk_reads = 0;   // pages read from the backing store on misses
  int64_t disk_writes = 0;  // pages written through to the backing store
  int64_t resident = 0;     // logical arrays currently cached
  int64_t resident_pages = 0;
  // Pool-warming counters (units are logical arrays, like hits/misses).
  int64_t prefetch_issued = 0;   // speculative reads dispatched
  int64_t prefetch_hits = 0;     // speculative entries a query later hit
  int64_t prefetch_wasted = 0;   // speculative entries evicted unused
  int64_t prefetch_dropped = 0;  // installs refused (resident / too cold)
};

// Thread-safe cache of logical node arrays in front of an IStorageManager.
// Capacity is counted in pages (an array costs its overflow-chain length)
// and eviction is pluggable: LRU via buffer::LruCache — the same policy the
// paper's client buffer baseline uses — or motion-aware, which scores each
// resident array by the fleet's predicted visit probability for the
// world-space region its node covers and evicts the coldest future region
// first (ties broken by recency, then page id, so runs are deterministic).
class BufferPool {
 public:
  // `manager` must outlive the pool. `capacity_pages` below 1 is clamped.
  BufferPool(IStorageManager* manager, int64_t capacity_pages,
             EvictPolicy policy);

  // Loads the array with head page `id`, from cache on a hit or from the
  // backing store (then cached) on a miss.
  common::Status Fetch(PageId id, std::vector<uint8_t>* out);

  // Write-through store: persists via the manager and caches the bytes.
  common::Status Store(PageId* id, const std::vector<uint8_t>& data);

  // Drops the array from cache and frees it in the backing store.
  common::Status Erase(PageId id);

  // Forwards to the manager (root bookkeeping and durability).
  common::Status Flush();
  common::Status SetRoot(PageId id);
  PageId root() const;

  // Registers the world-space ground region covered by an array's node, so
  // the motion policy can score it against the interest grid. Safe to call
  // for ids that are not resident.
  void SetPageRegion(PageId id, const geometry::Box2& region);

  // Installs a fresh interest field and rescores every resident array.
  void UpdateInterest(const InterestGrid& interest);

  // --- Pool-warming surface (storage::PoolWarmer) -------------------------
  //
  // The warmer speculatively reads not-resident arrays off-thread and
  // installs them at the next serial commit point. Reads coexist with
  // concurrent Fetch calls (everything serialises on the pool mutex);
  // installs and candidate scans run in serial phases only.

  // One not-resident array and its interest score under the current grid.
  struct PrefetchCandidate {
    PageId id = kInvalidPage;
    double score = 0.0;
  };
  // Every registered array that is not resident and scores above zero
  // under the current interest field, in ascending id order (the warmer
  // re-sorts globally by score, so the order here only fixes ties).
  std::vector<PrefetchCandidate> PrefetchCandidates() const;

  // Loads the array's bytes from the backing store without touching the
  // hit/miss counters or the resident set — the speculative read half of
  // a prefetch. Safe against concurrent Fetch calls.
  common::Status ReadForPrefetch(PageId id, std::vector<uint8_t>* out);

  // Counts `count` dispatched speculative reads (prefetch_issued).
  void NotePrefetchIssued(int64_t count);

  // Installs a speculatively read array under the never-evict-hotter
  // rule: the entry is admitted only if any eviction it forces hits
  // strictly colder residents; otherwise — or when the array is already
  // resident (a query beat the prefetch) or no longer registered — the
  // install is refused and counted as prefetch_dropped.
  void InstallPrefetched(PageId id, const std::vector<uint8_t>& bytes);

  // Counts a speculative read that failed before install (dropped).
  void NotePrefetchFailed();

  PoolStats stats() const;
  EvictPolicy policy() const { return policy_; }
  int64_t capacity_pages() const { return capacity_pages_; }

  // Access to the backing manager for single-threaded control-plane work
  // (directory blobs, restore). Do not mix with concurrent Fetch calls.
  IStorageManager* manager() { return manager_; }

 private:
  struct Resident {
    std::vector<uint8_t> bytes;
    int64_t cost_pages = 1;
    double score = 0.0;     // motion policy: predicted visit probability
    int64_t last_use = 0;   // pool-local logical clock
    // Installed by the warmer and not yet touched by a query: the first
    // Fetch hit clears it (prefetch_hits); eviction before that counts
    // prefetch_wasted.
    bool speculative = false;
  };

  int64_t PageCost(size_t bytes) const;
  void InsertLocked(PageId id, const std::vector<uint8_t>& bytes)
      MARS_REQUIRES(mu_);
  void EvictForLocked(PageId just_inserted) MARS_REQUIRES(mu_);
  double ScoreLocked(PageId id) const MARS_REQUIRES(mu_);
  // Removes `victim` from the resident set (never-touched speculative
  // victims count prefetch_wasted on top of the eviction).
  void RemoveResidentLocked(PageId victim) MARS_REQUIRES(mu_);
  // Evicts the coldest resident strictly colder than `score` (same
  // motion-policy tie-breaks as EvictForLocked). Returns false — no
  // state change — when every resident is at least as hot.
  bool EvictColderLocked(double score) MARS_REQUIRES(mu_);

  IStorageManager* const manager_;
  const int64_t capacity_pages_;
  const EvictPolicy policy_;

  mutable common::Mutex mu_;
  buffer::LruCache<PageId> lru_ MARS_GUARDED_BY(mu_);
  std::unordered_map<PageId, Resident> resident_ MARS_GUARDED_BY(mu_);
  std::unordered_map<PageId, geometry::Box2> regions_ MARS_GUARDED_BY(mu_);
  InterestGrid interest_ MARS_GUARDED_BY(mu_);
  int64_t clock_ MARS_GUARDED_BY(mu_) = 0;
  int64_t used_pages_ MARS_GUARDED_BY(mu_) = 0;
  PoolStats stats_ MARS_GUARDED_BY(mu_);
};

}  // namespace mars::storage

#endif  // MARS_STORAGE_BUFFER_POOL_H_
