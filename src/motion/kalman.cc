#include "motion/kalman.h"

#include "common/logging.h"

namespace mars::motion {

namespace {

// Constant-velocity transition for time step dt.
Matrix TransitionMatrix(double dt) {
  Matrix f = Matrix::Identity(4);
  f(0, 2) = dt;
  f(1, 3) = dt;
  return f;
}

// Discrete white-noise-acceleration process covariance (per axis blocks
// [dt^4/4, dt^3/2; dt^3/2, dt^2] scaled by the noise intensity).
Matrix ProcessNoise(double dt, double intensity) {
  Matrix q(4, 4);
  const double dt2 = dt * dt;
  const double dt3 = dt2 * dt;
  const double dt4 = dt3 * dt;
  for (int axis = 0; axis < 2; ++axis) {
    const int p = axis;      // position index
    const int v = axis + 2;  // velocity index
    q(p, p) = dt4 / 4.0 * intensity;
    q(p, v) = dt3 / 2.0 * intensity;
    q(v, p) = dt3 / 2.0 * intensity;
    q(v, v) = dt2 * intensity;
  }
  return q;
}

}  // namespace

KalmanFilterPredictor::KalmanFilterPredictor()
    : KalmanFilterPredictor(Options()) {}

KalmanFilterPredictor::KalmanFilterPredictor(Options options)
    : options_(options),
      f_(TransitionMatrix(options.dt)),
      q_(ProcessNoise(options.dt, options.process_noise)),
      h_(Matrix(2, 4)),
      state_(Matrix(4, 1)),
      p_(Matrix::Identity(4) * options.initial_variance) {
  MARS_CHECK_GT(options.dt, 0.0);
  MARS_CHECK_GE(options.process_noise, 0.0);
  MARS_CHECK_GT(options.measurement_noise, 0.0);
  h_(0, 0) = 1.0;
  h_(1, 1) = 1.0;
}

void KalmanFilterPredictor::Observe(const geometry::Vec2& position) {
  if (observations_ > 0) {
    const double step = (position - last_position_).Norm();
    mean_step_distance_ = observations_ == 1
                              ? step
                              : 0.7 * mean_step_distance_ + 0.3 * step;
  }
  last_position_ = position;
  if (observations_ == 0) {
    state_(0, 0) = position.x;
    state_(1, 0) = position.y;
    ++observations_;
    return;
  }

  // Predict.
  state_ = f_ * state_;
  p_ = f_ * p_ * f_.Transpose() + q_;

  // Update: K = P Hᵀ (H P Hᵀ + R)⁻¹.
  Matrix s = h_ * p_ * h_.Transpose();
  s(0, 0) += options_.measurement_noise;
  s(1, 1) += options_.measurement_noise;
  auto s_inv = s.Inverse();
  MARS_CHECK(s_inv.ok()) << "innovation covariance singular";
  const Matrix k = p_ * h_.Transpose() * *s_inv;

  Matrix innovation(2, 1);
  innovation(0, 0) = position.x - state_(0, 0);
  innovation(1, 0) = position.y - state_(1, 0);
  state_ = state_ + k * innovation;
  p_ = (Matrix::Identity(4) - k * h_) * p_;
  ++observations_;
}

Prediction KalmanFilterPredictor::Predict(int32_t steps) const {
  MARS_CHECK_GE(steps, 1);
  Prediction out;
  if (observations_ == 0) {
    out.cov_xx = out.cov_yy = 1e6;
    return out;
  }
  const Matrix f_i = f_.Pow(steps);
  const Matrix predicted = f_i * state_;
  out.mean = {predicted(0, 0), predicted(1, 0)};

  // Propagate covariance i steps: P_i = Fⁱ P (Fⁱ)ᵀ + Σ F^j Q (F^j)ᵀ.
  Matrix cov = f_i * p_ * f_i.Transpose();
  Matrix f_j = Matrix::Identity(4);
  for (int32_t j = 0; j < steps; ++j) {
    cov = cov + f_j * q_ * f_j.Transpose();
    f_j = f_j * f_;
  }
  out.cov_xx = cov(0, 0);
  out.cov_xy = cov(0, 1);
  out.cov_yy = cov(1, 1);
  return out;
}

geometry::Vec2 KalmanFilterPredictor::velocity() const {
  return {state_(2, 0), state_(3, 0)};
}

}  // namespace mars::motion
