#include "motion/predictor.h"

#include <algorithm>

#include "common/logging.h"

namespace mars::motion {

MotionPredictor::MotionPredictor() : MotionPredictor(Options()) {}

MotionPredictor::MotionPredictor(Options options)
    : options_(options),
      dim_(2 * options.history),
      rls_(dim_, options.forgetting),
      state_cov_(Matrix(dim_, dim_)) {
  MARS_CHECK_GE(options.history, 1);
}

Matrix MotionPredictor::StateFromHistory(size_t newest_offset) const {
  // State = [p(t−offset), p(t−offset−1), ...] stacked x, y.
  Matrix s(dim_, 1);
  for (int32_t i = 0; i < options_.history; ++i) {
    const geometry::Vec2& p = recent_[newest_offset + i];
    s(2 * i, 0) = p.x;
    s(2 * i + 1, 0) = p.y;
  }
  return s;
}

void MotionPredictor::Observe(const geometry::Vec2& position) {
  if (!recent_.empty()) {
    const double step = (position - recent_.front()).Norm();
    mean_step_distance_ = observations_ <= 1
                              ? step
                              : 0.7 * mean_step_distance_ + 0.3 * step;
  }
  recent_.push_front(position);
  ++observations_;
  const size_t needed = static_cast<size_t>(options_.history) + 1;
  while (recent_.size() > needed) {
    recent_.pop_back();
  }
  if (recent_.size() < needed) return;

  // One observed transition: state at t−1 -> state at t.
  const Matrix x = StateFromHistory(1);
  const Matrix y = StateFromHistory(0);

  // Track the one-step prediction error with the *pre-update* model so the
  // covariance reflects genuine out-of-sample error.
  if (rls_.update_count() > 0) {
    const Matrix predicted = rls_.transition() * x;
    const Matrix e = y - predicted;
    const double alpha = options_.covariance_smoothing;
    Matrix outer(dim_, dim_);
    for (int32_t r = 0; r < dim_; ++r) {
      for (int32_t c = 0; c < dim_; ++c) {
        outer(r, c) = e(r, 0) * e(c, 0);
      }
    }
    state_cov_ = state_cov_ * (1.0 - alpha) + outer * alpha;
  }
  rls_.Update(x, y);
}

Prediction MotionPredictor::Predict(int32_t steps) const {
  MARS_CHECK_GE(steps, 1);
  Prediction out;
  if (recent_.empty()) {
    out.cov_xx = out.cov_yy = 1e6;
    return out;
  }
  if (!ready() ||
      recent_.size() < static_cast<size_t>(options_.history)) {
    out.mean = recent_.front();
    out.cov_xx = out.cov_yy = 1e6;
    return out;
  }

  const Matrix s = StateFromHistory(0);
  const Matrix a_i = rls_.transition().Pow(steps);
  const Matrix predicted = a_i * s;
  out.mean = {predicted(0, 0), predicted(1, 0)};

  // P_{t+i} = Aⁱ P_t (Aⁱ)ᵀ, plus a per-step noise floor.
  const Matrix cov = a_i * state_cov_ * a_i.Transpose();
  const double floor = options_.process_noise * steps;
  out.cov_xx = std::max(cov(0, 0) + floor, floor);
  out.cov_yy = std::max(cov(1, 1) + floor, floor);
  out.cov_xy = cov(0, 1);
  return out;
}

}  // namespace mars::motion
