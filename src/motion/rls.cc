#include "motion/rls.h"

#include "common/logging.h"

namespace mars::motion {

RlsEstimator::RlsEstimator(int32_t dim, double forgetting,
                           double initial_gain)
    : dim_(dim),
      forgetting_(forgetting),
      a_(Matrix::Identity(dim)),
      p_(Matrix::Identity(dim) * initial_gain) {
  MARS_CHECK_GT(forgetting, 0.0);
  MARS_CHECK_LE(forgetting, 1.0);
  MARS_CHECK_GT(initial_gain, 0.0);
}

void RlsEstimator::Update(const Matrix& x, const Matrix& y) {
  MARS_CHECK_EQ(x.rows(), dim_);
  MARS_CHECK_EQ(x.cols(), 1);
  MARS_CHECK_EQ(y.rows(), dim_);
  MARS_CHECK_EQ(y.cols(), 1);

  // Gain k = P x / (λ + xᵀ P x).
  const Matrix px = p_ * x;
  double denom = forgetting_;
  for (int32_t i = 0; i < dim_; ++i) {
    denom += x(i, 0) * px(i, 0);
  }
  const Matrix k = px * (1.0 / denom);

  // A += (y − A x) kᵀ  — one rank-1 correction shared by all rows.
  const Matrix error = y - a_ * x;
  for (int32_t r = 0; r < dim_; ++r) {
    for (int32_t c = 0; c < dim_; ++c) {
      a_(r, c) += error(r, 0) * k(c, 0);
    }
  }

  // P = (P − k xᵀ P) / λ.
  const Matrix xtp = x.Transpose() * p_;  // 1 × dim
  Matrix kxp(dim_, dim_);
  for (int32_t r = 0; r < dim_; ++r) {
    for (int32_t c = 0; c < dim_; ++c) {
      kxp(r, c) = k(r, 0) * xtp(0, c);
    }
  }
  p_ = (p_ - kxp) * (1.0 / forgetting_);
  ++updates_;
}

}  // namespace mars::motion
