#ifndef MARS_MOTION_KALMAN_H_
#define MARS_MOTION_KALMAN_H_

#include <cstdint>

#include "geometry/vec.h"
#include "motion/matrix.h"
#include "motion/predictor.h"

namespace mars::motion {

// Classic discrete Kalman filter (Welch & Bishop, the paper's reference
// [21]) with a constant-velocity motion model: state [x, y, vx, vy],
// position measurements. Serves as an alternative to the RLS-learned
// transition of MotionPredictor — the KF assumes the dynamics, the RLS
// learns them; `bench_ablation_prediction` compares the two on the tour
// workloads.
class KalmanFilterPredictor : public PositionPredictor {
 public:
  struct Options {
    // Time step between observations (the query-frame interval).
    double dt = 1.0;
    // Process-noise intensity (white acceleration spectral density): how
    // much the velocity may drift between frames.
    double process_noise = 0.5;
    // Measurement-noise variance of the observed positions.
    double measurement_noise = 0.25;
    // Initial state variance (positions are observed immediately, so
    // this mostly governs how fast the velocity estimate settles).
    double initial_variance = 100.0;
  };

  KalmanFilterPredictor();  // default options
  explicit KalmanFilterPredictor(Options options);

  // Feeds the client position observed at the next timestamp (runs one
  // predict + update cycle).
  void Observe(const geometry::Vec2& position) override;

  // Predicts the position `steps` >= 1 timestamps ahead with its 2 × 2
  // covariance; matches MotionPredictor::Predict's contract.
  Prediction Predict(int32_t steps) const override;

  // Smoothed per-timestamp displacement (meters per frame).
  double MeanStepDistance() const override { return mean_step_distance_; }

  bool ready() const { return observations_ >= 2; }
  int64_t observations() const { return observations_; }

  // Current velocity estimate.
  geometry::Vec2 velocity() const;

 private:
  Options options_;
  Matrix f_;  // 4x4 transition
  Matrix q_;  // 4x4 process noise
  Matrix h_;  // 2x4 measurement
  Matrix state_;  // 4x1
  Matrix p_;      // 4x4 covariance
  int64_t observations_ = 0;
  geometry::Vec2 last_position_;
  double mean_step_distance_ = 0.0;
};

}  // namespace mars::motion

#endif  // MARS_MOTION_KALMAN_H_
