#include "motion/grid_probability.h"

#include <cmath>

#include "common/logging.h"

namespace mars::motion {

namespace {

// 2 × 2 Cholesky factor L (lower triangular) of the covariance, with a
// defensive floor for non-positive-definite numerical corner cases.
struct Chol2 {
  double l11, l21, l22;
};

Chol2 Cholesky2(double xx, double xy, double yy) {
  const double floor = 1e-12;
  xx = std::max(xx, floor);
  Chol2 c;
  c.l11 = std::sqrt(xx);
  c.l21 = xy / c.l11;
  const double rest = yy - c.l21 * c.l21;
  c.l22 = std::sqrt(std::max(rest, floor));
  return c;
}

}  // namespace

BlockProbabilities ComputeBlockProbabilities(
    const PositionPredictor& predictor, const geometry::GridPartition& grid,
    const GridProbabilityOptions& options, common::Rng& rng) {
  MARS_CHECK_GE(options.horizon, 1);
  MARS_CHECK_GE(options.samples_per_step, 1);

  BlockProbabilities probs;
  double weight = 1.0;
  double total = 0.0;
  for (int32_t step = 1; step <= options.horizon; ++step) {
    const Prediction pred = predictor.Predict(step);
    const Chol2 chol = Cholesky2(pred.cov_xx, pred.cov_xy, pred.cov_yy);
    const double sample_weight =
        weight / static_cast<double>(options.samples_per_step);
    for (int32_t s = 0; s < options.samples_per_step; ++s) {
      const double z1 = rng.Normal();
      const double z2 = rng.Normal();
      const geometry::Vec2 p{pred.mean.x + chol.l11 * z1,
                             pred.mean.y + chol.l21 * z1 + chol.l22 * z2};
      if (options.frame_half_width > 0.0 ||
          options.frame_half_height > 0.0) {
        // Spread the sample over the predicted query frame's blocks
        // (clipped to the space by BlocksIntersecting).
        const geometry::Box2 frame = geometry::MakeBox2(
            p.x - options.frame_half_width, p.y - options.frame_half_height,
            p.x + options.frame_half_width,
            p.y + options.frame_half_height);
        for (int64_t block : grid.BlocksIntersecting(frame)) {
          probs[block] += sample_weight;
          total += sample_weight;
        }
      } else {
        // Point sampling; mass predicted outside the data space is
        // dropped (not clamped to the boundary blocks, which would
        // concentrate phantom probability at the edges for long
        // horizons).
        if (!grid.space().ContainsPoint({p.x, p.y})) continue;
        const int64_t block = grid.BlockId(grid.BlockOfPoint(p));
        probs[block] += sample_weight;
        total += sample_weight;
      }
    }
    weight *= options.step_discount;
  }

  if (total > 0.0) {
    for (auto& [block, p] : probs) {
      p /= total;
    }
  }
  return probs;
}

}  // namespace mars::motion
