#ifndef MARS_MOTION_RLS_H_
#define MARS_MOTION_RLS_H_

#include <cstdint>

#include "motion/matrix.h"

namespace mars::motion {

// Recursive least-squares estimator of the state-transition matrix A such
// that y ≈ A x (paper Sec. V-B, following Yi et al.: "the transition matrix
// A can be calculated by using the recursive least-squares estimation
// method"). All outputs share the same regressor x, so one inverse
// correlation matrix P serves every row of A.
class RlsEstimator {
 public:
  // `dim` is the state dimension; `forgetting` in (0, 1] discounts old
  // observations (1.0 = ordinary least squares); `initial_gain` scales the
  // initial P = initial_gain * I (large values mean "no prior").
  RlsEstimator(int32_t dim, double forgetting = 0.98,
               double initial_gain = 1e4);

  // Incorporates one observed transition x -> y (both dim × 1 column
  // vectors).
  void Update(const Matrix& x, const Matrix& y);

  // Current estimate of A (dim × dim). Before any update this is the
  // identity (a standstill model).
  const Matrix& transition() const { return a_; }

  int64_t update_count() const { return updates_; }
  int32_t dim() const { return dim_; }

 private:
  int32_t dim_;
  double forgetting_;
  Matrix a_;  // current transition estimate
  Matrix p_;  // inverse correlation matrix
  int64_t updates_ = 0;
};

}  // namespace mars::motion

#endif  // MARS_MOTION_RLS_H_
