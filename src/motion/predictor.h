#ifndef MARS_MOTION_PREDICTOR_H_
#define MARS_MOTION_PREDICTOR_H_

#include <cstdint>
#include <deque>

#include "geometry/vec.h"
#include "motion/matrix.h"
#include "motion/rls.h"

namespace mars::motion {

// A predicted client position i steps ahead with its 2 × 2 error
// covariance (paper Eq. 3: P(s) ~ N(ŝ, P_t)).
struct Prediction {
  geometry::Vec2 mean;
  // Row-major 2 × 2 covariance of the position estimate.
  double cov_xx = 0.0;
  double cov_xy = 0.0;
  double cov_yy = 0.0;
};

// Interface shared by the motion models: feed positions, ask for a
// Gaussian position forecast. Implemented by MotionPredictor (RLS-learned
// dynamics, the paper's approach) and KalmanFilterPredictor
// (constant-velocity Kalman filter).
class PositionPredictor {
 public:
  virtual ~PositionPredictor() = default;

  // Feeds the client position at the next timestamp.
  virtual void Observe(const geometry::Vec2& position) = 0;

  // Predicts the position `steps` >= 1 timestamps ahead.
  virtual Prediction Predict(int32_t steps) const = 0;

  // Smoothed per-timestamp displacement (meters per frame).
  virtual double MeanStepDistance() const = 0;
};

// State-estimation motion predictor (paper Sec. V-B). The state s_t stacks
// the h most recent positions, s_t = [p(t), p(t−1), ..., p(t−h+1)]ᵀ; the
// one-step predictor A is learned online by recursive least squares, and
// multi-step predictions use ŝ_{t+i} = Aⁱ s_t. The state error covariance
// P_t is tracked as an exponentially weighted average of observed one-step
// prediction errors and propagated with P_{t+i} = Aⁱ P_t (Aⁱ)ᵀ.
class MotionPredictor : public PositionPredictor {
 public:
  struct Options {
    // Number of recent positions per state (h). State dimension = 2h.
    int32_t history = 3;
    // RLS forgetting factor.
    double forgetting = 0.98;
    // EWMA weight for the state error covariance update.
    double covariance_smoothing = 0.2;
    // Covariance floor added per prediction step so that probabilities
    // never collapse to a point even for perfectly linear motion (in
    // squared space units).
    double process_noise = 1e-4;
  };

  MotionPredictor();  // default options
  explicit MotionPredictor(Options options);

  // Feeds the client position at the next timestamp.
  void Observe(const geometry::Vec2& position) override;

  // True once enough positions have been observed to form a state and at
  // least one RLS update has run.
  bool ready() const { return rls_.update_count() > 0; }

  // Predicts the position `steps` >= 1 timestamps ahead. Before ready(),
  // falls back to the last observed position (zero velocity) with a large
  // covariance.
  Prediction Predict(int32_t steps) const override;

  // Number of positions observed so far.
  int64_t observations() const { return observations_; }

  // Smoothed per-timestamp displacement (meters per frame); 0 before two
  // observations. The prefetcher uses it to convert a desired look-ahead
  // distance into a prediction horizon in steps.
  double MeanStepDistance() const override { return mean_step_distance_; }

  const Matrix& transition() const { return rls_.transition(); }

 private:
  Matrix StateFromHistory(size_t newest_offset) const;

  Options options_;
  int32_t dim_;  // 2 * history
  std::deque<geometry::Vec2> recent_;  // newest at front
  RlsEstimator rls_;
  Matrix state_cov_;  // dim × dim EWMA of one-step error outer products
  int64_t observations_ = 0;
  double mean_step_distance_ = 0.0;
};

}  // namespace mars::motion

#endif  // MARS_MOTION_PREDICTOR_H_
