#ifndef MARS_MOTION_GRID_PROBABILITY_H_
#define MARS_MOTION_GRID_PROBABILITY_H_

#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "geometry/grid.h"
#include "motion/predictor.h"

namespace mars::motion {

// Probability of each grid block being visited by the client's query frame
// over the prediction horizon (paper Sec. V-B, Fig. 4(b)). Values are
// normalized to sum to 1 over the returned map.
using BlockProbabilities = std::unordered_map<int64_t, double>;

// Options for spreading the predicted Gaussians over grid blocks.
struct GridProbabilityOptions {
  // How many future timestamps to iterate (Q_{t+1} ... Q_{t+horizon}).
  // Deep enough that predictions span several grid blocks at cruising
  // speed.
  int32_t horizon = 16;
  // Geometric discount per step: nearer predictions weigh more.
  double step_discount = 0.9;
  // Monte-Carlo samples per step used to integrate the Gaussian over the
  // grid. Deterministic given the seed.
  int32_t samples_per_step = 64;

  // Half-extents of the client's query frame. When non-zero, each sampled
  // future position contributes mass to every block its *query frame*
  // would cover — the paper predicts where the frame Q_{t+i} will be
  // (Fig. 4(a)), not just the client point. Zero reduces to point
  // sampling.
  double frame_half_width = 0.0;
  double frame_half_height = 0.0;
};

// Computes visit probabilities for blocks of `grid`, by sampling the
// predictor's Gaussian N(mean_i, cov_i) at each future step i and
// accumulating discounted sample mass per block. The paper computes
// probabilities for "different blocks that can be visited by a client"
// rather than per-point probabilities for exactly this reason — cell-level
// integration is cheap.
BlockProbabilities ComputeBlockProbabilities(
    const PositionPredictor& predictor, const geometry::GridPartition& grid,
    const GridProbabilityOptions& options, common::Rng& rng);

}  // namespace mars::motion

#endif  // MARS_MOTION_GRID_PROBABILITY_H_
