#ifndef MARS_MOTION_SECTORS_H_
#define MARS_MOTION_SECTORS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/grid.h"
#include "motion/grid_probability.h"

namespace mars::motion {

// Partition of the plane around the client into k equally sized angular
// sectors — the k "possible directions" of the buffer-allocation model
// (paper Sec. V-A, Fig. 4(b), k = 4). Sector i spans angles
// [i·2π/k − π/k, i·2π/k + π/k) around the client, so sector 0 is centered
// on +x, sector 1 on +y for k = 4, etc.
class SectorPartition {
 public:
  // `center` is the client position; k >= 1.
  SectorPartition(const geometry::Vec2& center, int32_t k);

  int32_t k() const { return k_; }
  const geometry::Vec2& center() const { return center_; }

  // Sector of an arbitrary point.
  int32_t SectorOfPoint(const geometry::Vec2& p) const;

  // Sector of a grid block. Blocks that straddle a partition line are
  // assigned to the side owning the larger share of the block; exact ties
  // alternate between the two adjacent sectors (paper Sec. V-B: "if the
  // blocks (5,5) and (7,7) are assigned for direction 1, then the blocks
  // (6,6) and (8,8) are assigned for direction 2"). The alternation state
  // is per-partition-line and mutates, hence non-const.
  int32_t SectorOfBlock(const geometry::GridPartition& grid, int64_t block);

  // Aggregates per-block visit probabilities into per-sector direction
  // probabilities p_1..p_k, normalized to sum to 1 (uniform if the input is
  // empty). Also returns the block -> sector assignment used, for the
  // prefetcher.
  struct DirectionProbabilities {
    std::vector<double> p;  // size k, sums to 1
    std::unordered_map<int64_t, int32_t> block_sector;
  };
  DirectionProbabilities Aggregate(const geometry::GridPartition& grid,
                                   const BlockProbabilities& probs);

 private:
  geometry::Vec2 center_;
  int32_t k_;
  // Toggle per boundary line (boundary b sits between sectors b and b+1
  // mod k).
  std::vector<bool> boundary_toggle_;
};

}  // namespace mars::motion

#endif  // MARS_MOTION_SECTORS_H_
