#ifndef MARS_MOTION_MATRIX_H_
#define MARS_MOTION_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"

namespace mars::motion {

// Small dense row-major matrix of doubles. Sized for the motion-prediction
// state spaces (tens of rows at most); no attempt at BLAS-grade
// performance.
class Matrix {
 public:
  Matrix() = default;
  // Zero-initialized rows × cols matrix.
  Matrix(int32_t rows, int32_t cols);

  static Matrix Identity(int32_t n);
  // Column vector from values.
  static Matrix ColumnVector(const std::vector<double>& values);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }

  double operator()(int32_t r, int32_t c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double& operator()(int32_t r, int32_t c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double s) const;

  Matrix Transpose() const;

  // Matrix power by repeated multiplication; requires a square matrix and
  // k >= 0 (k = 0 yields the identity).
  Matrix Pow(int32_t k) const;

  // Gauss-Jordan inverse with partial pivoting; fails on (near-)singular
  // input.
  common::StatusOr<Matrix> Inverse() const;

  // Frobenius norm.
  double Norm() const;

  bool IsSquare() const { return rows_ == cols_; }

 private:
  int32_t rows_ = 0;
  int32_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mars::motion

#endif  // MARS_MOTION_MATRIX_H_
