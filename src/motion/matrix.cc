#include "motion/matrix.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace mars::motion {

Matrix::Matrix(int32_t rows, int32_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, 0.0) {
  MARS_CHECK_GE(rows, 0);
  MARS_CHECK_GE(cols, 0);
}

Matrix Matrix::Identity(int32_t n) {
  Matrix m(n, n);
  for (int32_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(static_cast<int32_t>(values.size()), 1);
  for (size_t i = 0; i < values.size(); ++i) {
    m(static_cast<int32_t>(i), 0) = values[i];
  }
  return m;
}

Matrix Matrix::operator+(const Matrix& o) const {
  MARS_CHECK_EQ(rows_, o.rows_);
  MARS_CHECK_EQ(cols_, o.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + o.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  MARS_CHECK_EQ(rows_, o.rows_);
  MARS_CHECK_EQ(cols_, o.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - o.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& o) const {
  MARS_CHECK_EQ(cols_, o.rows_);
  Matrix out(rows_, o.cols_);
  for (int32_t r = 0; r < rows_; ++r) {
    for (int32_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (int32_t c = 0; c < o.cols_; ++c) {
        out(r, c) += v * o(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int32_t r = 0; r < rows_; ++r) {
    for (int32_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::Pow(int32_t k) const {
  MARS_CHECK(IsSquare());
  MARS_CHECK_GE(k, 0);
  Matrix result = Identity(rows_);
  for (int32_t i = 0; i < k; ++i) {
    result = result * (*this);
  }
  return result;
}

common::StatusOr<Matrix> Matrix::Inverse() const {
  if (!IsSquare()) {
    return common::InvalidArgumentError("Inverse of non-square matrix");
  }
  const int32_t n = rows_;
  Matrix a = *this;
  Matrix inv = Identity(n);
  for (int32_t col = 0; col < n; ++col) {
    // Partial pivot.
    int32_t pivot = col;
    for (int32_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12) {
      return common::FailedPreconditionError("matrix is singular");
    }
    if (pivot != col) {
      for (int32_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double scale = 1.0 / a(col, col);
    for (int32_t c = 0; c < n; ++c) {
      a(col, c) *= scale;
      inv(col, c) *= scale;
    }
    for (int32_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a(r, col);
      if (factor == 0.0) continue;
      for (int32_t c = 0; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
        inv(r, c) -= factor * inv(col, c);
      }
    }
  }
  return inv;
}

double Matrix::Norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace mars::motion
