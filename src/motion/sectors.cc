#include "motion/sectors.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mars::motion {

namespace {
constexpr double kTwoPi = 2.0 * M_PI;
}  // namespace

SectorPartition::SectorPartition(const geometry::Vec2& center, int32_t k)
    : center_(center), k_(k), boundary_toggle_(k, false) {
  MARS_CHECK_GE(k, 1);
}

int32_t SectorPartition::SectorOfPoint(const geometry::Vec2& p) const {
  const double dx = p.x - center_.x;
  const double dy = p.y - center_.y;
  if (dx == 0.0 && dy == 0.0) return 0;
  double angle = std::atan2(dy, dx);  // (−π, π]
  // Shift so sector i spans [i·2π/k − π/k, i·2π/k + π/k).
  angle += M_PI / k_;
  if (angle < 0) angle += kTwoPi;
  const int32_t sector = static_cast<int32_t>(angle / (kTwoPi / k_));
  return sector % k_;
}

int32_t SectorPartition::SectorOfBlock(const geometry::GridPartition& grid,
                                       int64_t block) {
  const geometry::Box2 box = grid.BlockBox(block);
  // Vote with a 4 × 4 sample lattice over the block. The majority sector
  // approximates "the partition that owns the maximum region of that
  // block"; samples landing (numerically) on a partition line abstain, so
  // a block bisected by a line produces an exact tie, which falls to the
  // per-boundary alternation rule.
  std::vector<int32_t> votes(k_, 0);
  constexpr int kSamples = 4;
  const double sector_span = kTwoPi / k_;
  int32_t counted = 0;
  for (int i = 0; i < kSamples; ++i) {
    for (int j = 0; j < kSamples; ++j) {
      const geometry::Vec2 p{
          box.lo(0) + box.Extent(0) * (i + 0.5) / kSamples,
          box.lo(1) + box.Extent(1) * (j + 0.5) / kSamples};
      const double dx = p.x - center_.x;
      const double dy = p.y - center_.y;
      if (dx != 0.0 || dy != 0.0) {
        double shifted = std::atan2(dy, dx) + M_PI / k_;
        if (shifted < 0) shifted += kTwoPi;
        const double frac =
            std::fmod(shifted, sector_span) / sector_span;
        if (frac < 1e-9 || frac > 1.0 - 1e-9) continue;  // on a boundary
      }
      ++votes[SectorOfPoint(p)];
      ++counted;
    }
  }
  if (counted == 0) {
    // Degenerate: the whole lattice sat on boundaries; alternate from the
    // center point's sector.
    const geometry::Vec2 c{box.lo(0) + box.Extent(0) / 2,
                           box.lo(1) + box.Extent(1) / 2};
    return SectorOfPoint(c);
  }
  int32_t best = 0;
  for (int32_t s = 1; s < k_; ++s) {
    if (votes[s] > votes[best]) best = s;
  }
  // Exact tie between two adjacent sectors: alternate along the boundary.
  for (int32_t s = 0; s < k_; ++s) {
    if (s == best) continue;
    if (votes[s] != votes[best]) continue;
    // Identify the boundary between the tied sectors.
    const int32_t lo = std::min(s, best);
    const int32_t hi = std::max(s, best);
    int32_t boundary;
    if (hi == lo + 1) {
      boundary = lo;
    } else if (lo == 0 && hi == k_ - 1) {
      boundary = k_ - 1;  // wraparound boundary
    } else {
      continue;  // non-adjacent tie; keep the smaller-index winner
    }
    const bool flip = boundary_toggle_[boundary];
    boundary_toggle_[boundary] = !flip;
    return flip ? s : best;
  }
  return best;
}

SectorPartition::DirectionProbabilities SectorPartition::Aggregate(
    const geometry::GridPartition& grid, const BlockProbabilities& probs) {
  DirectionProbabilities out;
  out.p.assign(k_, 0.0);
  double total = 0.0;
  for (const auto& [block, prob] : probs) {
    const int32_t sector = SectorOfBlock(grid, block);
    out.block_sector[block] = sector;
    out.p[sector] += prob;
    total += prob;
  }
  if (total <= 0.0) {
    std::fill(out.p.begin(), out.p.end(), 1.0 / k_);
  } else {
    for (double& p : out.p) p /= total;
  }
  return out;
}

}  // namespace mars::motion
