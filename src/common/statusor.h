#ifndef MARS_COMMON_STATUSOR_H_
#define MARS_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace mars::common {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Mirrors the shape of absl::StatusOr without the dependency.
template <typename T>
class StatusOr {
 public:
  // Constructs from an error. Must not be OK: an OK StatusOr must carry a
  // value.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    MARS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(OkStatus()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Value accessors; the program aborts if no value is held.
  const T& value() const& {
    MARS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    MARS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MARS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mars::common

// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status
// from the enclosing function, otherwise assigns the value to `lhs`.
#define MARS_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  MARS_ASSIGN_OR_RETURN_IMPL_(                            \
      MARS_STATUS_MACRO_CONCAT_(statusor_, __LINE__), lhs, rexpr)

#define MARS_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) {                                   \
    return statusor.status();                             \
  }                                                       \
  lhs = std::move(statusor).value()

#define MARS_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define MARS_STATUS_MACRO_CONCAT_(x, y) MARS_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // MARS_COMMON_STATUSOR_H_
