#ifndef MARS_COMMON_STATUS_H_
#define MARS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace mars::common {

// Canonical error codes, a minimal subset of the absl::Status vocabulary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
// ...).
std::string_view StatusCodeToString(StatusCode code);

// A lightweight success-or-error result, used instead of exceptions
// throughout MARS. An OK status carries no message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders as "OK" or "CODE: message" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);

}  // namespace mars::common

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define MARS_RETURN_IF_ERROR(expr)                          \
  do {                                                      \
    ::mars::common::Status mars_status_macro_tmp = (expr);  \
    if (!mars_status_macro_tmp.ok()) {                      \
      return mars_status_macro_tmp;                         \
    }                                                       \
  } while (false)

#endif  // MARS_COMMON_STATUS_H_
