#ifndef MARS_COMMON_THREAD_ANNOTATIONS_H_
#define MARS_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (-Wthread-safety). They compile
// away on GCC and MSVC, so the annotated structures stay portable; under
// clang the analysis statically checks that every access to a
// MARS_GUARDED_BY member happens with its mutex held.

#if defined(__clang__) && defined(__has_attribute)
#define MARS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MARS_THREAD_ANNOTATION(x)
#endif

#define MARS_CAPABILITY(x) MARS_THREAD_ANNOTATION(capability(x))
#define MARS_SCOPED_CAPABILITY MARS_THREAD_ANNOTATION(scoped_lockable)
#define MARS_GUARDED_BY(x) MARS_THREAD_ANNOTATION(guarded_by(x))
#define MARS_PT_GUARDED_BY(x) MARS_THREAD_ANNOTATION(pt_guarded_by(x))
#define MARS_ACQUIRE(...) \
  MARS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MARS_ACQUIRE_SHARED(...) \
  MARS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MARS_RELEASE(...) \
  MARS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MARS_RELEASE_SHARED(...) \
  MARS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MARS_TRY_ACQUIRE(...) \
  MARS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MARS_REQUIRES(...) \
  MARS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MARS_REQUIRES_SHARED(...) \
  MARS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define MARS_EXCLUDES(...) MARS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MARS_RETURN_CAPABILITY(x) MARS_THREAD_ANNOTATION(lock_returned(x))
#define MARS_NO_THREAD_SAFETY_ANALYSIS \
  MARS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // MARS_COMMON_THREAD_ANNOTATIONS_H_
