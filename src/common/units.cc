#include "common/units.h"

#include <cstdio>

namespace mars::common {

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return std::string(buf);
}

}  // namespace mars::common
