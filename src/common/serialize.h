#ifndef MARS_COMMON_SERIALIZE_H_
#define MARS_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace mars::common {

// Minimal little-endian byte-buffer writer used by the persistence layer
// and the wire-format codecs. Varints use LEB128.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(v); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }

  void WriteVarU64(uint64_t v) {
    while (v >= 0x80) {
      buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buffer_.push_back(static_cast<uint8_t>(v));
  }

  void WriteString(const std::string& s) {
    WriteVarU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void WriteRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }

  std::vector<uint8_t> buffer_;
};

// Bounds-checked reader over a byte span. Every accessor returns a Status
// instead of reading past the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI32(int32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadFloat(float* out) { return ReadRaw(out, sizeof(*out)); }

  Status ReadVarU64(uint64_t* out) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t byte = 0;
      MARS_RETURN_IF_ERROR(ReadU8(&byte));
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = result;
        return OkStatus();
      }
    }
    return InvalidArgumentError("varint too long");
  }

  Status ReadString(std::string* out) {
    uint64_t n = 0;
    MARS_RETURN_IF_ERROR(ReadVarU64(&n));
    if (n > remaining()) {
      return OutOfRangeError("string length exceeds buffer");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return OkStatus();
  }

 private:
  Status ReadRaw(void* out, size_t n) {
    if (n > remaining()) {
      return OutOfRangeError("read past end of buffer");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return OkStatus();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace mars::common

#endif  // MARS_COMMON_SERIALIZE_H_
