#ifndef MARS_COMMON_LOGGING_H_
#define MARS_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace mars::common {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Minimum severity that is actually emitted; default kWarning so library
// code stays quiet in tests and benches.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

namespace internal {

// Accumulates a log line and emits it (to stderr) on destruction. A kFatal
// message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows a streamed expression; used for disabled log levels.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace mars::common

#define MARS_LOG_INTERNAL_(severity)                                     \
  ::mars::common::internal::LogMessage(severity, __FILE__, __LINE__)

#define MARS_LOG(severity)                                               \
  MARS_LOG_INTERNAL_(::mars::common::LogSeverity::k##severity)

// Aborts the program with a diagnostic when `condition` is false. Active in
// all build modes: MARS uses it to guard internal invariants, mirroring
// CHECK() in Google-style codebases.
#define MARS_CHECK(condition)                                            \
  (condition) ? (void)0                                                  \
              : ::mars::common::internal::LogMessageVoidify() &          \
                    MARS_LOG_INTERNAL_(                                  \
                        ::mars::common::LogSeverity::kFatal)             \
                        << "Check failed: " #condition " "

#define MARS_CHECK_EQ(a, b) MARS_CHECK((a) == (b))
#define MARS_CHECK_NE(a, b) MARS_CHECK((a) != (b))
#define MARS_CHECK_LT(a, b) MARS_CHECK((a) < (b))
#define MARS_CHECK_LE(a, b) MARS_CHECK((a) <= (b))
#define MARS_CHECK_GT(a, b) MARS_CHECK((a) > (b))
#define MARS_CHECK_GE(a, b) MARS_CHECK((a) >= (b))

#endif  // MARS_COMMON_LOGGING_H_
