#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace mars::common {

ThreadPool::ThreadPool(int32_t workers)
    : workers_(std::max<int32_t>(1, workers)) {
  threads_.reserve(static_cast<size_t>(workers_ - 1));
  for (int32_t i = 1; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

size_t ThreadPool::DrainBatch(
    const std::vector<std::function<void()>>& tasks) {
  size_t ran = 0;
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= tasks.size()) return ran;
    tasks[i]();
    ++ran;
  }
}

void ThreadPool::WorkerLoop() {
  int64_t seen_generation = 0;
  for (;;) {
    const std::vector<std::function<void()>>* tasks = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      tasks = batch_;
      // The batch may already be retired: when the other threads drain a
      // small batch before this worker gets scheduled, RunBatch has
      // returned and nulled batch_ by the time we wake — there is
      // nothing to do for this generation.
      if (tasks == nullptr) continue;
      ++draining_;
    }
    const size_t ran = DrainBatch(*tasks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished_ += ran;
      --draining_;
      // RunBatch must not retire the batch while any worker still holds
      // the pointer, even one that claimed zero tasks — hence the
      // draining_ condition on top of the task count.
      if (finished_ == tasks->size() && draining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::RunBatch(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (threads_.empty() || tasks.size() == 1) {
    for (const auto& task : tasks) task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    MARS_CHECK(batch_ == nullptr);  // not reentrant
    batch_ = &tasks;
    finished_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  const size_t ran = DrainBatch(tasks);
  {
    std::unique_lock<std::mutex> lock(mu_);
    finished_ += ran;
    done_cv_.wait(lock, [&] {
      return finished_ == tasks.size() && draining_ == 0;
    });
    batch_ = nullptr;
  }
}

}  // namespace mars::common
