#ifndef MARS_COMMON_UNITS_H_
#define MARS_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace mars::common {

// Byte-size literals used across configuration code.
inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;

// Converts kilobits per second to bytes per second (network convention:
// 1 kbit = 1000 bits).
constexpr double KbpsToBytesPerSecond(double kbps) {
  return kbps * 1000.0 / 8.0;
}

// Renders a byte count as a human-readable string, e.g. "1.50 MB".
std::string FormatBytes(int64_t bytes);

}  // namespace mars::common

#endif  // MARS_COMMON_UNITS_H_
