#ifndef MARS_COMMON_MUTEX_H_
#define MARS_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace mars::common {

// std::mutex / std::shared_mutex wrappers carrying the clang
// thread-safety-analysis capability attributes, so MARS_GUARDED_BY members
// are statically checked under -Wthread-safety. The standard mutexes are
// not annotated (outside libc++'s opt-in build), hence the thin wrappers.

class MARS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MARS_ACQUIRE() { mu_.lock(); }
  void Unlock() MARS_RELEASE() { mu_.unlock(); }
  bool TryLock() MARS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

class MARS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MARS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MARS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Reader/writer mutex: many concurrent shared holders (the fleet's
// parallel read phase) or one exclusive holder (the serial commit phase).
class MARS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MARS_ACQUIRE() { mu_.lock(); }
  void Unlock() MARS_RELEASE() { mu_.unlock(); }
  void LockShared() MARS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MARS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

class MARS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) MARS_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() MARS_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

class MARS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) MARS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  // Generic release: a scoped capability's destructor releases whatever
  // mode its constructor acquired (the abseil ReaderMutexLock pattern).
  ~ReaderLock() MARS_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace mars::common

#endif  // MARS_COMMON_MUTEX_H_
