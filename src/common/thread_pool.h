#ifndef MARS_COMMON_THREAD_POOL_H_
#define MARS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mars::common {

// Fixed-size worker pool executing one batch of independent tasks at a
// time. The fleet engine uses it for the parallel phase of each tick
// (every due client's step is one task) and the sharded coefficient
// index for per-shard query fan-out; tasks never touch another task's
// state, and RunBatch does not return until every task has finished —
// a full barrier, after which the caller merges results serially.
//
// `workers` counts the calling thread: a pool of W spawns W-1 threads and
// the caller works the batch too, so workers=1 degenerates to plain
// inline execution with no threads at all (and therefore byte-identical
// behaviour with zero scheduling noise — the reference for the fleet
// determinism tests).
class ThreadPool {
 public:
  explicit ThreadPool(int32_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs all tasks, returning after the last one completes. Tasks are
  // claimed dynamically (atomic cursor), so stragglers do not serialize
  // the batch. Not reentrant; one batch at a time.
  void RunBatch(const std::vector<std::function<void()>>& tasks);

  int32_t workers() const { return workers_; }

 private:
  void WorkerLoop();
  // Claims and runs tasks from the current batch until exhausted;
  // returns how many tasks this thread completed.
  size_t DrainBatch(const std::vector<std::function<void()>>& tasks);

  const int32_t workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // caller waits for batch completion
  const std::vector<std::function<void()>>* batch_ = nullptr;
  int64_t generation_ = 0;            // bumped per batch
  size_t finished_ = 0;               // tasks completed in this batch
  int32_t draining_ = 0;              // workers currently inside the batch
  bool stop_ = false;

  std::atomic<size_t> next_{0};       // claim cursor into the batch
};

}  // namespace mars::common

#endif  // MARS_COMMON_THREAD_POOL_H_
