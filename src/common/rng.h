#ifndef MARS_COMMON_RNG_H_
#define MARS_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace mars::common {

// Deterministic pseudo-random generator (xoshiro256++ seeded via SplitMix64).
// Every source of randomness in MARS flows through a seeded Rng so that
// experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Next raw 64-bit value.
  uint64_t NextUint64();

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal deviate (Box-Muller).
  double Normal();

  // Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  // Derives an independent child generator; useful for giving each object /
  // tour its own stream while staying reproducible.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Samples ranks 0..n-1 with Zipf(skew) probabilities: P(k) proportional to
// 1/(k+1)^skew. Precomputes the CDF once; sampling is O(log n).
class ZipfSampler {
 public:
  // Requires n >= 1 and skew >= 0 (skew == 0 degenerates to uniform).
  ZipfSampler(int n, double skew);

  int Sample(Rng& rng) const;

  int n() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace mars::common

#endif  // MARS_COMMON_RNG_H_
