#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mars::common {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  MARS_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MARS_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = NextUint64();
  while (value >= limit) {
    value = NextUint64();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; u1 kept away from 0 so log() is finite.
  double u1 = UniformDouble();
  while (u1 <= 1e-300) {
    u1 = UniformDouble();
  }
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

ZipfSampler::ZipfSampler(int n, double skew) {
  MARS_CHECK_GE(n, 1);
  MARS_CHECK_GE(skew, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

int ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return static_cast<int>(cdf_.size()) - 1;
  }
  return static_cast<int>(it - cdf_.begin());
}

}  // namespace mars::common
