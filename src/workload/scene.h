#ifndef MARS_WORKLOAD_SCENE_H_
#define MARS_WORKLOAD_SCENE_H_

#include <cstdint>

#include "common/statusor.h"
#include "geometry/box.h"
#include "server/object_db.h"

namespace mars::workload {

// Placement of objects over the data space (paper Sec. VII-E evaluates
// both uniform and Zipfian data sets).
enum class Placement {
  kUniform,
  kZipf,  // objects concentrate around Zipf-weighted cluster centers
};

// Configuration of the synthetic augmented-reality city scene: procedural
// building meshes, subdivided and displaced to create multi-level detail,
// then wavelet-decomposed. With the defaults each object carries ~200 KB
// of records, so the paper's 100/200/300/400-object datasets weigh
// ≈ 20/40/60/80 MB (Sec. VII-A).
struct SceneOptions {
  geometry::Box2 space = geometry::MakeBox2(0, 0, 10000, 10000);
  int32_t object_count = 300;
  Placement placement = Placement::kUniform;
  double zipf_skew = 0.9;
  int32_t zipf_clusters = 16;
  // Cluster spread (standard deviation, meters) for Zipf placement.
  double cluster_spread = 400.0;

  // Building dimensions (meters).
  double min_footprint = 25.0;
  double max_footprint = 60.0;
  double min_height = 15.0;
  double max_height = 60.0;
  double roof_fraction = 0.3;  // roof height / wall height

  // Wavelet decomposition levels J; coefficients per object grow 4× per
  // level (21 · 4^j for the building base mesh).
  int32_t levels = 4;
  // Displacement noise: odd vertices of level j move by about
  // amplitude · decay^j meters, so coarse levels carry large coefficients
  // and fine levels small ones.
  double displacement_amplitude = 3.0;
  double displacement_decay = 0.45;

  uint64_t seed = 42;
};

// Generates the scene and returns a finalized object database ready to
// serve. Fails only on inconsistent options.
common::StatusOr<server::ObjectDatabase> GenerateScene(
    const SceneOptions& options);

// Convenience: options for a dataset of roughly `megabytes` MB using the
// paper's sizing (100 objects ≈ 20 MB).
SceneOptions SceneForDatasetSize(int32_t megabytes, uint64_t seed = 42);

}  // namespace mars::workload

#endif  // MARS_WORKLOAD_SCENE_H_
