#include "workload/tour.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace mars::workload {

namespace {

using geometry::Vec2;

// Reflects `p` into `space`, flipping the heading components that caused
// the excursion.
void ReflectIntoSpace(const geometry::Box2& space, Vec2* p,
                      double* heading) {
  bool flip_x = false, flip_y = false;
  if (p->x < space.lo(0)) {
    p->x = 2 * space.lo(0) - p->x;
    flip_x = true;
  } else if (p->x > space.hi(0)) {
    p->x = 2 * space.hi(0) - p->x;
    flip_x = true;
  }
  if (p->y < space.lo(1)) {
    p->y = 2 * space.lo(1) - p->y;
    flip_y = true;
  } else if (p->y > space.hi(1)) {
    p->y = 2 * space.hi(1) - p->y;
    flip_y = true;
  }
  if (flip_x || flip_y) {
    const double dx = std::cos(*heading) * (flip_x ? -1.0 : 1.0);
    const double dy = std::sin(*heading) * (flip_y ? -1.0 : 1.0);
    *heading = std::atan2(dy, dx);
  }
}

}  // namespace

std::vector<TourPoint> GenerateTour(const TourOptions& options) {
  MARS_CHECK_GT(options.target_speed, 0.0);
  MARS_CHECK_LE(options.target_speed, 1.0);
  MARS_CHECK_GT(options.frame_interval, 0.0);
  common::Rng rng(options.seed);

  std::vector<TourPoint> tour;
  Vec2 pos{rng.Uniform(options.space.lo(0) + options.space.Extent(0) * 0.2,
                       options.space.hi(0) - options.space.Extent(0) * 0.2),
           rng.Uniform(options.space.lo(1) + options.space.Extent(1) * 0.2,
                       options.space.hi(1) - options.space.Extent(1) * 0.2)};

  // Trams run along the street grid; pedestrians start anywhere.
  double heading = options.kind == TourKind::kTram
                       ? (M_PI / 2.0) * rng.UniformInt(0, 3)
                       : rng.Uniform(0, 2 * M_PI);

  double covered = 0.0;
  double segment_left =
      rng.Uniform(options.tram_segment_min, options.tram_segment_max);
  double next_stop_in = options.tram_stop_every;
  int32_t stop_frames_left = 0;
  double time = 0.0;

  const bool by_distance = options.distance > 0.0;
  const int64_t max_frames = by_distance ? 1'000'000 : options.frames;

  for (int64_t f = 0; f < max_frames; ++f) {
    double speed = options.target_speed;
    if (options.kind == TourKind::kTram) {
      if (stop_frames_left > 0) {
        --stop_frames_left;
        speed = 0.001;  // dwell at a stop (minimum normalized speed)
      } else {
        speed *= 1.0 + rng.Normal(0.0, options.tram_speed_jitter);
      }
    } else {
      speed *= 1.0 + rng.Normal(0.0, options.walk_speed_jitter);
      heading += rng.Normal(0.0, options.walk_heading_sigma);
    }
    speed = std::clamp(speed, 0.001, 1.0);

    tour.push_back(TourPoint{pos, speed, time});

    // Advance.
    const double step =
        speed * options.max_speed_mps * options.frame_interval;
    pos += Vec2{std::cos(heading), std::sin(heading)} * step;
    ReflectIntoSpace(options.space, &pos, &heading);
    covered += step;
    time += options.frame_interval;

    if (options.kind == TourKind::kTram) {
      segment_left -= step;
      next_stop_in -= step;
      if (segment_left <= 0.0) {
        // Right-angle turn at an intersection.
        heading += (rng.Bernoulli(0.5) ? 1.0 : -1.0) * (M_PI / 2.0);
        segment_left =
            rng.Uniform(options.tram_segment_min, options.tram_segment_max);
      }
      if (next_stop_in <= 0.0) {
        stop_frames_left = options.tram_stop_frames;
        next_stop_in = options.tram_stop_every;
      }
    }

    if (by_distance && covered >= options.distance) break;
  }
  return tour;
}

GroupTourGenerator::GroupTourGenerator(const Options& options)
    : options_(options), base_(GenerateTour(options.base)) {
  MARS_CHECK_GE(options.members, 1);
  MARS_CHECK_GE(options.position_jitter_m, 0.0);
  MARS_CHECK_GE(options.speed_jitter, 0.0);
}

std::vector<TourPoint> GroupTourGenerator::Tour(int32_t member) const {
  MARS_CHECK_GE(member, 0);
  MARS_CHECK_LT(member, options_.members);
  // Seed the member stream from (base seed, member) only, so a member's
  // tour is stable regardless of how many others share the group.
  common::Rng rng(options_.base.seed * 1'000'003ULL + 0x9e3779b9ULL +
                  static_cast<uint64_t>(member));

  std::vector<TourPoint> tour = base_;
  // Bounded random-walk offset: each frame the member drifts by a small
  // step and the offset is pulled back inside the jitter envelope, so the
  // group stays tight around the shared trajectory for the whole run.
  const double radius = options_.position_jitter_m;
  const double step_sigma = radius * 0.2;
  Vec2 offset{rng.Uniform(-radius, radius) * 0.5,
              rng.Uniform(-radius, radius) * 0.5};
  for (TourPoint& point : tour) {
    offset += Vec2{rng.Normal(0.0, step_sigma), rng.Normal(0.0, step_sigma)};
    const double norm = offset.Norm();
    if (norm > radius && norm > 0.0) offset = offset * (radius / norm);
    point.position += offset;
    point.position.x = std::clamp(point.position.x,
                                  options_.base.space.lo(0),
                                  options_.base.space.hi(0));
    point.position.y = std::clamp(point.position.y,
                                  options_.base.space.lo(1),
                                  options_.base.space.hi(1));
    point.speed *= 1.0 + rng.Normal(0.0, options_.speed_jitter);
    point.speed = std::clamp(point.speed, 0.001, 1.0);
  }
  return tour;
}

double TourDistance(const std::vector<TourPoint>& tour) {
  double distance = 0.0;
  for (size_t i = 1; i < tour.size(); ++i) {
    distance += (tour[i].position - tour[i - 1].position).Norm();
  }
  return distance;
}

}  // namespace mars::workload
