#include "workload/scene.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "geometry/vec.h"
#include "mesh/mesh.h"
#include "mesh/primitives.h"
#include "mesh/subdivide.h"
#include "wavelet/decompose.h"

namespace mars::workload {

namespace {

using geometry::Vec2;
using geometry::Vec3;

// Builds one displaced fine mesh from a base building: each subdivision
// step moves the new odd vertices by seeded noise whose amplitude decays
// with the level, so the wavelet analysis recovers coefficients with the
// intended coarse-large / fine-small magnitude profile.
mesh::Mesh MakeFineMesh(const mesh::Mesh& base, int32_t levels,
                        double amplitude, double decay, common::Rng& rng) {
  mesh::Mesh current = base;
  double level_amp = amplitude;
  for (int32_t j = 0; j < levels; ++j) {
    mesh::Subdivision sub = mesh::Subdivide(current);
    for (const mesh::OddVertex& odd : sub.odd_vertices) {
      // Random direction, magnitude uniform in [0.1, 1] × level amplitude
      // (the floor keeps coefficients from collapsing to zero).
      Vec3 dir{rng.Normal(), rng.Normal(), rng.Normal()};
      const double norm = dir.Norm();
      if (norm > 1e-12) dir = dir / norm;
      const double magnitude = level_amp * rng.Uniform(0.1, 1.0);
      sub.mesh.mutable_vertex(odd.vertex) += dir * magnitude;
    }
    current = std::move(sub.mesh);
    level_amp *= decay;
  }
  return current;
}

}  // namespace

common::StatusOr<server::ObjectDatabase> GenerateScene(
    const SceneOptions& options) {
  if (options.object_count < 1) {
    return common::InvalidArgumentError("object_count must be >= 1");
  }
  if (options.levels < 1) {
    return common::InvalidArgumentError("levels must be >= 1");
  }
  if (options.space.IsEmpty()) {
    return common::InvalidArgumentError("space must be non-empty");
  }

  common::Rng rng(options.seed);
  server::ObjectDatabase db;

  // Zipf cluster centers, if any.
  std::vector<Vec2> clusters;
  if (options.placement == Placement::kZipf) {
    for (int32_t c = 0; c < options.zipf_clusters; ++c) {
      clusters.push_back(
          {rng.Uniform(options.space.lo(0), options.space.hi(0)),
           rng.Uniform(options.space.lo(1), options.space.hi(1))});
    }
  }
  common::ZipfSampler zipf(std::max<int32_t>(options.zipf_clusters, 1),
                           options.zipf_skew);

  for (int32_t i = 0; i < options.object_count; ++i) {
    common::Rng object_rng = rng.Fork();

    // Footprint and height.
    const double w =
        object_rng.Uniform(options.min_footprint, options.max_footprint);
    const double d =
        object_rng.Uniform(options.min_footprint, options.max_footprint);
    const double h =
        object_rng.Uniform(options.min_height, options.max_height);
    mesh::Mesh base = mesh::MakeBuilding(w, d, h, h * options.roof_fraction);

    // World placement.
    Vec2 pos;
    if (options.placement == Placement::kUniform) {
      pos = {object_rng.Uniform(options.space.lo(0),
                                options.space.hi(0) - w),
             object_rng.Uniform(options.space.lo(1),
                                options.space.hi(1) - d)};
    } else {
      const Vec2& center = clusters[zipf.Sample(object_rng)];
      pos = {center.x + object_rng.Normal(0.0, options.cluster_spread),
             center.y + object_rng.Normal(0.0, options.cluster_spread)};
      pos.x = std::clamp(pos.x, options.space.lo(0),
                         options.space.hi(0) - w);
      pos.y = std::clamp(pos.y, options.space.lo(1),
                         options.space.hi(1) - d);
    }
    base.Translate(Vec3{pos.x, pos.y, 0.0});

    const mesh::Mesh fine =
        MakeFineMesh(base, options.levels, options.displacement_amplitude,
                     options.displacement_decay, object_rng);
    auto decomposed = wavelet::Decompose(fine, base, options.levels);
    if (!decomposed.ok()) return decomposed.status();
    db.AddObject(std::move(decomposed).value());
  }

  db.FinalizeRecords();
  return db;
}

SceneOptions SceneForDatasetSize(int32_t megabytes, uint64_t seed) {
  SceneOptions options;
  options.seed = seed;
  // Paper sizing: 20 MB ↔ 100 objects, 80 MB ↔ 400 objects.
  options.object_count = megabytes * 5;
  return options;
}

}  // namespace mars::workload
