#ifndef MARS_WORKLOAD_TOUR_H_
#define MARS_WORKLOAD_TOUR_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/vec.h"

namespace mars::workload {

// One sample of a client's movement: where it is, how fast it is going
// (normalized to [0, 1]) and the simulated timestamp of the query frame.
struct TourPoint {
  geometry::Vec2 position;
  double speed = 0.0;  // normalized
  double time = 0.0;   // seconds
};

// Kind of tour (paper Sec. VII-A: "head movements of 10 tourists in two
// different settings: (i) tram tours, (ii) pedestrian tours").
enum class TourKind {
  // Tram: long straight street segments, right-angle turns at
  // intersections, brief scheduled stops — highly predictable.
  kTram,
  // Pedestrian: correlated random walk with continuous heading drift and
  // speed jitter — much less predictable.
  kPedestrian,
};

struct TourOptions {
  TourKind kind = TourKind::kTram;
  geometry::Box2 space = geometry::MakeBox2(0, 0, 10000, 10000);
  // Normalized cruise speed in (0, 1]; the actual speed of each frame
  // varies slightly around it ("the speed of the clients may also slightly
  // vary at different parts of a tour", Sec. VII-C).
  double target_speed = 0.5;
  // World speed (m/s) corresponding to normalized speed 1.0.
  double max_speed_mps = 15.0;
  // Seconds between query frames.
  double frame_interval = 1.0;
  // Number of frames; ignored when `distance` > 0.
  int32_t frames = 300;
  // When > 0, the tour runs until this world distance (m) is covered —
  // the "clients traveling similar distances at varying speeds" setup of
  // Fig. 8.
  double distance = -1.0;

  // Tram parameters.
  double tram_segment_min = 400.0;   // meters between turns
  double tram_segment_max = 900.0;
  double tram_stop_every = 350.0;    // meters between stops
  int32_t tram_stop_frames = 2;      // frames spent (nearly) stopped
  double tram_speed_jitter = 0.05;   // relative speed noise

  // Pedestrian parameters.
  double walk_heading_sigma = 0.35;  // radians per frame
  double walk_speed_jitter = 0.25;   // relative speed noise

  uint64_t seed = 7;
};

// Generates a seeded tour. Positions stay inside `space` (paths reflect at
// the boundary).
std::vector<TourPoint> GenerateTour(const TourOptions& options);

// Co-moving group (tour buses): N clients share ONE base trajectory —
// generated from `base` exactly as GenerateTour would — and each member
// rides a seeded per-member jittered copy of it: a bounded random-walk
// position offset (seat positions drifting within the vehicle's envelope)
// plus relative speed noise. Member tours therefore stay within
// ~position_jitter_m of each other for the whole run — the co-moving,
// overlapping-window workload that exercises cross-client coalescing
// beyond co-located spawns.
//
// Determinism: member m's tour depends only on (base options, m) — never
// on `members` or on which other members are generated.
class GroupTourGenerator {
 public:
  struct Options {
    TourOptions base;
    int32_t members = 1;
    // Maximum distance (meters) a member strays from the base trajectory;
    // the per-frame drift step is a fraction of it.
    double position_jitter_m = 25.0;
    // Relative per-frame speed noise around the base point's speed.
    double speed_jitter = 0.05;
  };

  explicit GroupTourGenerator(const Options& options);

  // Member m's jittered copy of the shared trajectory (m in
  // [0, members)). Member jitter streams are seeded from
  // (base.seed, m) only.
  std::vector<TourPoint> Tour(int32_t member) const;

  const std::vector<TourPoint>& base() const { return base_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<TourPoint> base_;
};

// Total world distance covered by a tour.
double TourDistance(const std::vector<TourPoint>& tour);

}  // namespace mars::workload

#endif  // MARS_WORKLOAD_TOUR_H_
