#ifndef MARS_INDEX_ACCESS_H_
#define MARS_INDEX_ACCESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "index/record.h"
#include "index/rtree.h"

namespace mars::index {

// Access method over the server's coefficient records for the window query
// Q(R, w_max, w_min) of paper Sec. VI. The *required set* of a query is the
// set of records whose support-region MBB intersects R (in the ground
// plane) with w in [w_min, w_max]; both strategies return exactly that set,
// at different I/O cost.
//
// Thread safety: after Build, Query on a const index is safe from many
// threads concurrently — the cumulative counters are relaxed atomics and
// each call returns its own node-access count, so per-exchange accounting
// never reads order-dependent counter deltas.
class CoefficientIndex {
 public:
  virtual ~CoefficientIndex() = default;

  // Builds the index over `records`; the table must outlive the index.
  virtual void Build(const std::vector<CoeffRecord>& records) = 0;

  // Appends the ids of the required set for Q(region, w_max, w_min);
  // returns the node accesses this call spent.
  virtual int64_t Query(const geometry::Box2& region, double w_min,
                        double w_max, std::vector<RecordId>* out) const = 0;

  // Node accesses accumulated by queries since the last ResetStats() — the
  // paper's I/O cost metric.
  virtual int64_t node_accesses() const = 0;
  virtual void ResetStats() = 0;

  virtual std::string name() const = 0;
};

// Affine per-axis normalization of the ground plane into [0, 1], so that
// x, y (meters) and w (already unit-scaled) are commensurate inside the
// R*-tree — its margin/overlap split criteria mix axis units and degrade
// badly when one axis spans kilometers and another spans 1.0 (see the
// index ablation bench).
struct GroundScale {
  double off_x = 0.0, off_y = 0.0;
  double scale_x = 1.0, scale_y = 1.0;

  static GroundScale FromRecords(const std::vector<CoeffRecord>& records);

  double X(double x) const { return (x - off_x) * scale_x; }
  double Y(double y) const { return (y - off_y) * scale_y; }
};

// The paper's proposed index (Sec. VI-B): a 3D (x, y, w) R*-tree over the
// support-region MBBs of the coefficients, exactly as in the experimental
// study (Sec. VII-D). One traversal returns the minimal required set.
class SupportRegionIndex : public CoefficientIndex {
 public:
  explicit SupportRegionIndex(RTreeOptions options = RTreeOptions());

  void Build(const std::vector<CoeffRecord>& records) override;
  int64_t Query(const geometry::Box2& region, double w_min, double w_max,
                std::vector<RecordId>* out) const override;
  int64_t node_accesses() const override;
  void ResetStats() override;
  std::string name() const override { return "support-region"; }

  const RTree3& tree() const { return tree_; }

 private:
  RTreeOptions options_;
  RTree3 tree_;
  GroundScale scale_;
};

// The straightforward access method the paper argues against (Sec. VI): a
// 3D (x, y, w) R*-tree over coefficient *positions*. Answering a query
// takes two passes — the initial window query plus a re-execution over the
// extended region covering the neighbouring vertices — and the second pass
// re-fetches data the first already saw.
//
// For the extended region we use the correctness-preserving variant: the
// window grown by the dataset's maximum support-region extent. It subsumes
// the paper's per-result bounding region (any record whose support box
// intersects R has its vertex within that distance of R), so both
// strategies provably return the same required set.
class NaivePointIndex : public CoefficientIndex {
 public:
  explicit NaivePointIndex(RTreeOptions options = RTreeOptions());

  void Build(const std::vector<CoeffRecord>& records) override;
  int64_t Query(const geometry::Box2& region, double w_min, double w_max,
                std::vector<RecordId>* out) const override;
  int64_t node_accesses() const override;
  void ResetStats() override;
  std::string name() const override { return "naive-point"; }

 private:
  RTreeOptions options_;
  RTree3 tree_;
  GroundScale scale_;
  const std::vector<CoeffRecord>* records_ = nullptr;
  // Maximum support extents in normalized coordinates.
  double max_extent_x_ = 0.0;
  double max_extent_y_ = 0.0;
};

// The full four-dimensional variant of the paper's index (Sec. VI-B): a
// 4D (x, y, z, w) R*-tree over the support-region MBBs, for clients whose
// region of interest is a 3D box (e.g. a view frustum bound) rather than
// a ground-plane window. The experimental study of Sec. VII-D uses the 3D
// x-y-w projection (SupportRegionIndex); this variant covers the general
// formulation. Spatial axes are normalized like the 3D index.
class SupportRegionIndex4D {
 public:
  explicit SupportRegionIndex4D(RTreeOptions options = RTreeOptions());

  void Build(const std::vector<CoeffRecord>& records);

  // Q(R, w_max, w_min) with a 3D region of interest; returns this call's
  // node accesses.
  int64_t Query(const geometry::Box3& region, double w_min, double w_max,
                std::vector<RecordId>* out) const;

  int64_t node_accesses() const { return tree_.stats().query_node_accesses; }
  void ResetStats() { tree_.ResetStats(); }

 private:
  RTreeOptions options_;
  RTree4 tree_;
  GroundScale scale_;
  double off_z_ = 0.0;
  double scale_z_ = 1.0;
};

// Object-granularity R*-tree used by the fully naive end-to-end system
// (Sec. VII-E): ground-plane MBRs of whole objects, no resolutions.
class ObjectIndex {
 public:
  explicit ObjectIndex(RTreeOptions options = RTreeOptions());

  // object_bounds[i] = world bounds of object i.
  void Build(const std::vector<geometry::Box3>& object_bounds);

  // Adds one object after Build (online ingest). Not safe against
  // concurrent queries — callers serialize it with the query path.
  void Insert(int32_t object_id, const geometry::Box3& bounds);

  // Appends the ids of objects whose ground-plane MBR intersects `region`;
  // returns this call's node accesses.
  int64_t Query(const geometry::Box2& region,
                std::vector<int32_t>* out) const;

  int64_t node_accesses() const { return tree_.stats().query_node_accesses; }
  void ResetStats() { tree_.ResetStats(); }

 private:
  RTree2 tree_;
};

}  // namespace mars::index

#endif  // MARS_INDEX_ACCESS_H_
