#ifndef MARS_INDEX_SHARDED_INDEX_H_
#define MARS_INDEX_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "geometry/box.h"
#include "index/access.h"
#include "index/paged_index.h"
#include "index/record.h"
#include "index/rtree.h"
#include "index/shard_map.h"
#include "storage/buffer_pool.h"
#include "storage/disk_storage.h"
#include "storage/pool_warmer.h"
#include "storage/storage_manager.h"

namespace mars::index {

// Configuration of a sharded coefficient index.
struct ShardedIndexOptions {
  // Ground-plane shard count K. With the default of 1 the index is a
  // strict passthrough around one inner tree: same build, same traversal,
  // same node accesses — bit-identical to the unsharded access methods.
  int32_t shards = 1;

  // Access method each shard runs internally.
  enum class Kind {
    kSupportRegion,  // the paper's motion-aware index (Sec. VI-B)
    kNaivePoint,     // the straightforward point index (Sec. VI)
  };
  Kind kind = Kind::kSupportRegion;

  RTreeOptions rtree;

  // Worker count for parallel query fan-out (counting the caller, like
  // common::ThreadPool). 1 = sequential fan-out. Values > 1 spin up an
  // internal pool shared by all queries; a query that finds the pool
  // busy (another query is fanning out) falls back to sequential, which
  // returns the exact same records and node accesses — parallelism only
  // changes wall clock, never results.
  int32_t fanout_workers = 1;

  // Where index nodes live. The default (kMemory with no page file) keeps
  // the in-memory access methods untouched — a bit-identical passthrough.
  // kDisk pages each shard's tree into `storage.path` (shard k of K > 1
  // uses `path + ".shard<k>"`) behind a per-shard BufferPool, and Build
  // restores from an existing page file instead of rebuilding when its
  // directory matches the routed record table.
  storage::StorageConfig storage;
};

// The coefficient access method refactored for scale: a ground-plane
// ShardMap routes every record to one of K shards, each owning an
// independent inner index (support-region or naive-point) over its own
// record slice with its own GroundScale normalization. A window query
// fans out only to the shards whose coverage box (union of routed
// support MBBs — exact for any routing) intersects the window, merging
// results in ascending shard id so the output is deterministic for any
// fan-out execution order.
//
// Sharding is also what takes ingest online: records staged after Build
// (AddObject after FinalizeRecords) accumulate in per-shard staging
// buffers, and CommitStaged folds each buffer into its shard by an epoch
// rebuild — build the shard's new table + tree off to the side, then
// swap it in under a writer lock. The other K−1 shards are untouched
// (their trees, coverage and counters survive by identity), and
// in-flight queries are never invalidated: they either hold the reader
// lock (and the swap waits) or start after the swap (and see the new
// epoch).
//
// The same build-then-swap machinery also powers *load-adaptive
// rebalancing* (SplitShard/MergeShards): the shard map generalizes to a
// splittable ground-plane tree (shard_map.h), so a hot shard can be
// halved at the median of its record centers — the high half moving to a
// freshly allocated shard id — and a cold shard forwarded into a
// neighbour, each as one epoch-style swap with counters, page files and
// buffer-pool state following the records.
//
// Thread safety: Query/node_accesses/Stats are safe from many threads
// concurrently, including against a concurrent Stage. CommitStaged,
// SplitShard, MergeShards and ResetStats are single-writer operations:
// at most one at a time, but safe against concurrent queries.
class ShardedCoefficientIndex : public CoefficientIndex {
 public:
  explicit ShardedCoefficientIndex(ShardedIndexOptions options);
  ~ShardedCoefficientIndex() override;

  ShardedCoefficientIndex(const ShardedCoefficientIndex&) = delete;
  ShardedCoefficientIndex& operator=(const ShardedCoefficientIndex&) = delete;

  // Builds the shard map and every shard's inner index. Unlike the inner
  // access methods, the sharded index copies each record into its shard's
  // local table, so `records` does NOT need to outlive the index.
  void Build(const std::vector<CoeffRecord>& records) override;

  // Fans out Q(region, w_max, w_min) to the intersecting shards and
  // appends the merged required set (global record ids, ascending shard
  // id, inner traversal order within a shard). Returns the node accesses
  // summed over the shards touched.
  int64_t Query(const geometry::Box2& region, double w_min, double w_max,
                std::vector<RecordId>* out) const override;

  // Per-query fan-out breakdown. max_shard_accesses is the node-access
  // count of the most expensive shard the query touched — the critical
  // path of a parallel fan-out, and the deterministic latency proxy the
  // rebalancing bench gates (wall clock would flake on runner speed).
  struct FanoutProfile {
    int32_t shards_touched = 0;
    int64_t max_shard_accesses = 0;
  };
  // Query with an optional per-call profile (nullptr behaves exactly
  // like Query); results and node accesses are identical either way.
  int64_t QueryProfiled(const geometry::Box2& region, double w_min,
                        double w_max, std::vector<RecordId>* out,
                        FanoutProfile* profile) const;

  int64_t node_accesses() const override;
  void ResetStats() override;
  std::string name() const override;

  // --- Online ingest ------------------------------------------------------

  // Stages `count` records (global ids first_id, first_id + 1, ...) into
  // their shards' staging buffers. Staged records are invisible to
  // queries until CommitStaged. Thread-safe against concurrent queries.
  void Stage(const CoeffRecord* records, size_t count, RecordId first_id);

  // Epoch rebuild: folds every non-empty staging buffer into its shard
  // (build-then-swap; only the affected shards are rebuilt). Returns the
  // number of records folded. Single-writer; safe against concurrent
  // queries.
  int64_t CommitStaged();

  // Records staged but not yet committed.
  int64_t staged_records() const;

  // Epochs committed so far (CommitStaged calls that folded records).
  int64_t epoch() const;

  // --- Load-adaptive rebalancing (single-writer, serial phase only) -------

  // Splits `shard` at the median of its records' support centers along
  // the axis with the wider center spread: the high half re-routes to a
  // freshly allocated shard id (returned). Build-then-swap like
  // CommitStaged — the split shard's traversal counters stay with the
  // surviving low half, the new shard starts fresh, and in disk mode the
  // old epoch's pages are freed, the new shard gets its own page file +
  // buffer pool, and both directories are rewritten. Fails (no state
  // change) when the shard is retired, holds fewer than two records, or
  // every center is identical on both axes.
  common::StatusOr<int32_t> SplitShard(int32_t shard);

  // Forwards everything routed to `src` into `dst` and retires `src`:
  // dst is rebuilt over both record tables (dst's first), inherits the
  // sum of both shards' counters, and src becomes a permanently empty
  // slot (its id is never reused). In disk mode both old trees' pages
  // are freed and both directories rewritten (src's as empty). Fails
  // when either shard is retired or src == dst.
  common::Status MergeShards(int32_t src, int32_t dst);

  // Rebalance ops applied so far (splits + merges).
  int64_t rebalances() const;

  // Shards that can still receive records (total slots minus retired).
  int32_t live_shard_count() const;

  // --- Observability ------------------------------------------------------

  struct ShardStats {
    int32_t shard = 0;
    int64_t records = 0;
    // Cumulative node accesses, carried across epoch rebuilds.
    int64_t node_accesses = 0;
    // Queries the fan-out routed to this shard.
    int64_t fanout_queries = 0;
    // Epoch rebuilds this shard absorbed.
    int64_t rebuilds = 0;
    // Merged away: the id no longer receives records or queries.
    bool retired = false;
    geometry::Box2 coverage;
  };
  std::vector<ShardStats> Stats() const;

  // Per-shard buffer-pool counters (empty vector in memory mode).
  struct ShardPoolStats {
    int32_t shard = 0;
    storage::PoolStats pool;
    // Page-file occupancy of the shard's store: total page slots in the
    // file, slots on the freelist, and the free slots stranded mid-file
    // (disk_storage.h fragmented_pages — the fragmentation measure
    // rebalance/epoch churn leaves behind).
    int64_t file_pages = 0;
    int64_t free_pages = 0;
    int64_t fragmented_pages = 0;
  };
  std::vector<ShardPoolStats> PoolStats() const;

  // Installs a fresh motion-interest field on every shard's buffer pool
  // (no-op in memory mode). Const because the serving path only ever sees
  // a const index; the pools are internally locked.
  void UpdateInterest(const storage::InterestGrid& interest) const;

  // --- Background pool warming (storage::PoolWarmer) ----------------------
  //
  // Active only when the storage config asks for it (disk store + warm).
  // Both calls are serial-phase only and come as a pair per tick: WarmJoin
  // installs the previous tick's speculative reads (call it FIRST, before
  // any serial-phase work that touches the raw storage managers — interest
  // refresh, rebalancing, ingest — so in-flight reads never overlap page
  // frees or directory writes), and WarmDispatch issues the next batch
  // (call it LAST, after the tick's interest refresh and rebalance, so the
  // ranking sees the fresh grid and the settled shard layout). Const like
  // UpdateInterest: the serving path holds a const index.
  bool warming_enabled() const { return warmer_ != nullptr; }
  void WarmJoin() const;
  void WarmDispatch() const;

  bool disk_store() const {
    return options_.storage.store == storage::StoreKind::kDisk;
  }
  // Shards Build attached from a persisted page file instead of rebuilding.
  int32_t restored_shards() const { return restored_shards_; }

  // Current slot count: the configured K plus every shard a split has
  // allocated since (including retired merge sources).
  int32_t shard_count() const;
  const ShardMap& shard_map() const { return map_; }

 private:
  // One shard. Immutable after the swap that installs it, except the
  // statistics counters (relaxed atomics, like the inner trees').
  struct Shard {
    int32_t id = 0;
    // Shard-local record table the inner index is built over (the inner
    // access methods require the table to outlive the tree, so each
    // epoch owns its copy) and the local → global id map.
    std::vector<CoeffRecord> records;
    std::vector<RecordId> ids;
    std::unique_ptr<CoefficientIndex> index;  // null for an empty shard
    // Aliases `index` in disk mode (persist/restore/page-lifecycle
    // surface); null in memory mode.
    PagedCoefficientIndex* paged = nullptr;
    // Union of the ground-plane support MBBs routed here — the exact
    // fan-out filter.
    geometry::Box2 coverage;
    // Merged away: the slot stays (ids are stable) but never receives
    // records or queries again.
    bool retired = false;
    // Stats carried over from the epochs this shard replaced.
    int64_t retired_accesses = 0;
    int64_t rebuilds = 0;
    mutable RelaxedCounter fanout_queries;
  };

  std::unique_ptr<CoefficientIndex> MakeInner(int32_t shard_id) const;
  // Builds a shard over `records`/`ids` (no locks held).
  std::unique_ptr<Shard> BuildShard(int32_t id,
                                    std::vector<CoeffRecord> records,
                                    std::vector<RecordId> ids) const;
  // Disk mode: attaches shard `id` to the tree persisted in its page file
  // instead of rebuilding. Fails (caller then rebuilds) when the stored
  // directory does not match the routed table.
  common::StatusOr<std::unique_ptr<Shard>> RestoreShard(
      int32_t id, std::vector<CoeffRecord> records,
      std::vector<RecordId> ids) const;
  // Disk mode: persists shard metadata (tree root, record fingerprint) as
  // the store's root array so a restart can find and validate the tree.
  common::Status WriteDirectory(int32_t id, const Shard& shard) const;
  // Queries one shard, appending global ids; returns node accesses.
  static int64_t QueryShard(const Shard& shard, const geometry::Box2& region,
                            double w_min, double w_max,
                            std::vector<RecordId>* out);
  // Shard k's page file path (keyed to the configured K, so rebalance-
  // allocated shards always get their own ".shard<k>" suffix).
  std::string ShardFilePath(int32_t shard) const;
  // Disk mode: the shard map's sidecar file (base path + ".shardmap").
  std::string ShardMapPath() const;
  // Disk mode: persists the shard map — base K, grid bounds and the
  // refinement list — so a restart routes records exactly as the
  // rebalanced map did and re-attaches every split-allocated shard's
  // page file instead of rebuilding.
  void PersistShardMap() const;
  // Disk mode: loads the sidecar and replays its refinements onto `map`
  // when it matches the configured K and `map`'s freshly computed base
  // grid (same bounds bit-for-bit). Returns true when `map` was refined.
  bool LoadShardMap(ShardMap* map) const;
  // Disk mode: appends a fresh page store + buffer pool for a new slot.
  // Caller holds mu_ exclusively (PoolStats/UpdateInterest read under
  // the reader lock).
  void AddShardStore(int32_t shard);
  // Re-buckets every staged record under the current map (shard ids
  // change across a split/merge, and the staging buffers grow with the
  // slot table).
  void RebucketStaged(int32_t new_shard_count)
      MARS_REQUIRES(stage_mu_);
  // Transfers the retired slot's cumulative counters into `next` and
  // frees its pages; installs `next` into the slot (mu_ held
  // exclusively).
  void SwapSlot(std::unique_ptr<Shard> next)
      MARS_REQUIRES(mu_);

  ShardedIndexOptions options_;
  ShardMap map_;

  // Shard array. Slots are only appended (by Build and SplitShard) and
  // the pointed-to shards are swapped whole by CommitStaged and the
  // rebalance ops — always under the writer lock, so readers iterate a
  // stable snapshot.
  mutable common::SharedMutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_ MARS_GUARDED_BY(mu_);
  int64_t epoch_ MARS_GUARDED_BY(mu_) = 0;
  int64_t rebalances_ MARS_GUARDED_BY(mu_) = 0;

  // Per-shard staging buffers for online ingest.
  mutable common::Mutex stage_mu_;
  std::vector<std::vector<std::pair<RecordId, CoeffRecord>>> staged_
      MARS_GUARDED_BY(stage_mu_);
  int64_t staged_count_ MARS_GUARDED_BY(stage_mu_) = 0;

  // Fan-out pool (fanout_workers > 1). pool_mu_ admits one fanning-out
  // query at a time; contenders fall back to sequential execution.
  mutable common::Mutex pool_mu_;
  mutable std::unique_ptr<common::ThreadPool> pool_;

  // Disk mode only: per-shard page stores and buffer pools. Created by
  // Build (one per configured slot) and appended by SplitShard for each
  // slot it allocates; every epoch of a shard shares its pool
  // (CommitStaged writes the new epoch's pages and frees the old
  // epoch's through it). Queries reach a pool through the pointer its
  // tree captured at build time, so only the vectors need mu_: appends
  // hold it exclusively, PoolStats/UpdateInterest scan under the reader
  // lock.
  std::vector<std::unique_ptr<storage::DiskStorageManager>> managers_;
  std::vector<std::unique_ptr<storage::BufferPool>> pools_;
  int32_t restored_shards_ = 0;

  // Background pool warming (storage.warm). Declared after the pools so
  // it is destroyed first — the destructor joins any in-flight reads
  // while the pools are still alive. Mutable for the same reason the
  // rebalancer is: the serving path holds a const index, and the warm
  // hooks run in serial phases only.
  mutable std::unique_ptr<storage::PoolWarmer> warmer_;
};

}  // namespace mars::index

#endif  // MARS_INDEX_SHARDED_INDEX_H_
