#include "index/sharded_index.h"

#include <utility>

#include "common/logging.h"

namespace mars::index {

namespace {

// Ground-plane (x, y) projection of a record's support MBB.
geometry::Box2 GroundSupport(const CoeffRecord& r) {
  return geometry::Box2({r.support_bounds.lo(0), r.support_bounds.lo(1)},
                        {r.support_bounds.hi(0), r.support_bounds.hi(1)});
}

std::string KindName(ShardedIndexOptions::Kind kind) {
  switch (kind) {
    case ShardedIndexOptions::Kind::kSupportRegion:
      return "support-region";
    case ShardedIndexOptions::Kind::kNaivePoint:
      return "naive-point";
  }
  MARS_CHECK(false);
  return "";
}

}  // namespace

ShardedCoefficientIndex::ShardedCoefficientIndex(ShardedIndexOptions options)
    : options_(options) {
  MARS_CHECK_GE(options_.shards, 1);
  MARS_CHECK_GE(options_.fanout_workers, 1);
}

ShardedCoefficientIndex::~ShardedCoefficientIndex() = default;

std::unique_ptr<CoefficientIndex> ShardedCoefficientIndex::MakeInner() const {
  switch (options_.kind) {
    case ShardedIndexOptions::Kind::kSupportRegion:
      return std::make_unique<SupportRegionIndex>(options_.rtree);
    case ShardedIndexOptions::Kind::kNaivePoint:
      return std::make_unique<NaivePointIndex>(options_.rtree);
  }
  MARS_CHECK(false);
  return nullptr;
}

std::unique_ptr<ShardedCoefficientIndex::Shard>
ShardedCoefficientIndex::BuildShard(int32_t id,
                                    std::vector<CoeffRecord> records,
                                    std::vector<RecordId> ids) const {
  auto shard = std::make_unique<Shard>();
  shard->id = id;
  shard->records = std::move(records);
  shard->ids = std::move(ids);
  for (const CoeffRecord& r : shard->records) {
    shard->coverage.Extend(GroundSupport(r));
  }
  if (!shard->records.empty()) {
    shard->index = MakeInner();
    // Built over the shard's own table (the inner access methods keep a
    // pointer to it), so the records copied here must stay put — which
    // they do: a Shard is immutable once installed.
    shard->index->Build(shard->records);
  }
  return shard;
}

void ShardedCoefficientIndex::Build(const std::vector<CoeffRecord>& records) {
  const int32_t k = options_.shards;
  map_ = k == 1 ? ShardMap()
                : ShardMap::Build(ShardMap::GroundBounds(records), k);

  // Partition the table.
  std::vector<std::vector<CoeffRecord>> tables(k);
  std::vector<std::vector<RecordId>> ids(k);
  for (size_t i = 0; i < records.size(); ++i) {
    const int32_t s = map_.Route(records[i]);
    tables[s].push_back(records[i]);
    ids[s].push_back(static_cast<RecordId>(i));
  }

  if (options_.fanout_workers > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<common::ThreadPool>(options_.fanout_workers);
  }

  // Build every shard — in parallel when a pool is available (shard
  // builds are independent), sequentially otherwise. Either way the
  // result is the same set of trees.
  std::vector<std::unique_ptr<Shard>> shards(k);
  if (pool_ != nullptr && k > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(k);
    for (int32_t s = 0; s < k; ++s) {
      tasks.push_back([this, s, &shards, &tables, &ids] {
        shards[s] = BuildShard(s, std::move(tables[s]), std::move(ids[s]));
      });
    }
    common::MutexLock pool_lock(&pool_mu_);
    pool_->RunBatch(tasks);
  } else {
    for (int32_t s = 0; s < k; ++s) {
      shards[s] = BuildShard(s, std::move(tables[s]), std::move(ids[s]));
    }
  }

  {
    common::WriterLock lock(&mu_);
    shards_ = std::move(shards);
    epoch_ = 0;
  }
  common::MutexLock stage_lock(&stage_mu_);
  staged_.assign(k, {});
  staged_count_ = 0;
}

int64_t ShardedCoefficientIndex::QueryShard(const Shard& shard,
                                            const geometry::Box2& region,
                                            double w_min, double w_max,
                                            std::vector<RecordId>* out) {
  ++shard.fanout_queries;
  if (shard.index == nullptr) return 0;
  std::vector<RecordId> local;
  const int64_t accesses = shard.index->Query(region, w_min, w_max, &local);
  out->reserve(out->size() + local.size());
  for (RecordId id : local) {
    out->push_back(shard.ids[static_cast<size_t>(id)]);
  }
  return accesses;
}

int64_t ShardedCoefficientIndex::Query(const geometry::Box2& region,
                                       double w_min, double w_max,
                                       std::vector<RecordId>* out) const {
  common::ReaderLock lock(&mu_);
  MARS_CHECK(!shards_.empty());

  // K = 1 is a strict passthrough: one shard, queried unconditionally,
  // so traversal and node accesses match the unsharded index exactly
  // (the single tree always pays at least the root visit).
  if (shards_.size() == 1) {
    return QueryShard(*shards_[0], region, w_min, w_max, out);
  }

  // Fan out to the shards whose coverage intersects the window. The
  // coverage boxes are exact (union of the support MBBs routed there),
  // so a skipped shard provably contributes nothing to the required set.
  std::vector<const Shard*> hit;
  hit.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->coverage.Intersects(region)) hit.push_back(shard.get());
  }
  if (hit.empty()) return 0;

  // Parallel fan-out when the pool is free; sequential otherwise (pool
  // busy means another query — or a fleet tick that owns the pool's
  // worker budget elsewhere — is mid-batch, and ThreadPool batches are
  // not reentrant). Both paths produce identical output: results merge
  // in ascending shard id and node accesses sum order-independently.
  if (pool_ != nullptr && hit.size() > 1 && pool_mu_.TryLock()) {
    std::vector<std::vector<RecordId>> results(hit.size());
    std::vector<int64_t> accesses(hit.size(), 0);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(hit.size());
    for (size_t i = 0; i < hit.size(); ++i) {
      tasks.push_back([&, i] {
        accesses[i] =
            QueryShard(*hit[i], region, w_min, w_max, &results[i]);
      });
    }
    pool_->RunBatch(tasks);
    pool_mu_.Unlock();
    int64_t total = 0;
    for (size_t i = 0; i < hit.size(); ++i) {
      total += accesses[i];
      out->insert(out->end(), results[i].begin(), results[i].end());
    }
    return total;
  }

  int64_t total = 0;
  for (const Shard* shard : hit) {
    total += QueryShard(*shard, region, w_min, w_max, out);
  }
  return total;
}

int64_t ShardedCoefficientIndex::node_accesses() const {
  common::ReaderLock lock(&mu_);
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->retired_accesses;
    if (shard->index != nullptr) total += shard->index->node_accesses();
  }
  return total;
}

void ShardedCoefficientIndex::ResetStats() {
  common::WriterLock lock(&mu_);
  for (const auto& shard : shards_) {
    shard->retired_accesses = 0;
    shard->fanout_queries = 0;
    if (shard->index != nullptr) shard->index->ResetStats();
  }
}

std::string ShardedCoefficientIndex::name() const {
  // K = 1 reports the inner method's name so every existing log line,
  // JSON field and test expectation is untouched at the default.
  if (options_.shards == 1) return KindName(options_.kind);
  return "sharded-" + std::to_string(options_.shards) + "(" +
         KindName(options_.kind) + ")";
}

void ShardedCoefficientIndex::Stage(const CoeffRecord* records, size_t count,
                                    RecordId first_id) {
  common::MutexLock lock(&stage_mu_);
  MARS_CHECK(!staged_.empty());  // Build must run before ingest starts.
  for (size_t i = 0; i < count; ++i) {
    const int32_t s = map_.Route(records[i]);
    staged_[s].emplace_back(first_id + static_cast<RecordId>(i), records[i]);
  }
  staged_count_ += static_cast<int64_t>(count);
}

int64_t ShardedCoefficientIndex::CommitStaged() {
  // Claim the staged buffers.
  std::vector<std::vector<std::pair<RecordId, CoeffRecord>>> pending;
  {
    common::MutexLock lock(&stage_mu_);
    if (staged_count_ == 0) return 0;
    pending = std::move(staged_);
    staged_.assign(pending.size(), {});
    staged_count_ = 0;
  }

  // Snapshot the affected shards' tables (queries keep running on the
  // old shards meanwhile).
  struct Rebuild {
    int32_t shard;
    std::vector<CoeffRecord> records;
    std::vector<RecordId> ids;
  };
  std::vector<Rebuild> rebuilds;
  int64_t folded = 0;
  {
    common::ReaderLock lock(&mu_);
    MARS_CHECK_EQ(pending.size(), shards_.size());
    for (size_t s = 0; s < pending.size(); ++s) {
      if (pending[s].empty()) continue;
      Rebuild rb;
      rb.shard = static_cast<int32_t>(s);
      rb.records = shards_[s]->records;
      rb.ids = shards_[s]->ids;
      for (auto& [id, record] : pending[s]) {
        rb.records.push_back(std::move(record));
        rb.ids.push_back(id);
      }
      folded += static_cast<int64_t>(pending[s].size());
      rebuilds.push_back(std::move(rb));
    }
  }

  // Build the replacement shards with no lock held — the expensive part
  // of the epoch happens while readers proceed untouched.
  std::vector<std::unique_ptr<Shard>> built;
  built.reserve(rebuilds.size());
  for (Rebuild& rb : rebuilds) {
    built.push_back(
        BuildShard(rb.shard, std::move(rb.records), std::move(rb.ids)));
  }

  // Swap. Counters transfer at swap time so queries that ran during the
  // rebuild are not lost: the old tree's accesses retire into the new
  // shard's carried total.
  common::WriterLock lock(&mu_);
  for (auto& shard : built) {
    std::unique_ptr<Shard>& slot = shards_[shard->id];
    shard->retired_accesses = slot->retired_accesses;
    if (slot->index != nullptr) {
      shard->retired_accesses += slot->index->node_accesses();
    }
    shard->fanout_queries = slot->fanout_queries;
    shard->rebuilds = slot->rebuilds + 1;
    slot = std::move(shard);
  }
  ++epoch_;
  return folded;
}

int64_t ShardedCoefficientIndex::staged_records() const {
  common::MutexLock lock(&stage_mu_);
  return staged_count_;
}

int64_t ShardedCoefficientIndex::epoch() const {
  common::ReaderLock lock(&mu_);
  return epoch_;
}

std::vector<ShardedCoefficientIndex::ShardStats>
ShardedCoefficientIndex::Stats() const {
  common::ReaderLock lock(&mu_);
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.shard = shard->id;
    s.records = static_cast<int64_t>(shard->records.size());
    s.node_accesses = shard->retired_accesses;
    if (shard->index != nullptr) {
      s.node_accesses += shard->index->node_accesses();
    }
    s.fanout_queries = shard->fanout_queries.load();
    s.rebuilds = shard->rebuilds;
    s.coverage = shard->coverage;
    stats.push_back(s);
  }
  return stats;
}

}  // namespace mars::index
