#include "index/sharded_index.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/logging.h"
#include "common/serialize.h"

namespace mars::index {

namespace {

// Ground-plane (x, y) projection of a record's support MBB.
geometry::Box2 GroundSupport(const CoeffRecord& r) {
  return geometry::Box2({r.support_bounds.lo(0), r.support_bounds.lo(1)},
                        {r.support_bounds.hi(0), r.support_bounds.hi(1)});
}

// Per-shard-file directory blob, stored as the page store's root array so a
// restart can find the persisted tree and prove it matches the table that
// would be routed to this shard today.
constexpr uint64_t kDirMagic = 0x52494452414d3144ull;  // "D1MARDIR" LE
constexpr uint32_t kDirVersion = 1;

uint64_t HashDouble(double v, uint64_t h) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return storage::Fnv1a64Mix(bits, h);
}

// Fingerprint of a shard's routed table: record identity, geometry, and
// global ids, order-sensitive. Any change to the dataset or the routing
// (shard count, shard map) changes the fingerprint and forces a rebuild.
uint64_t FingerprintTable(const std::vector<CoeffRecord>& records,
                          const std::vector<RecordId>& ids) {
  uint64_t h = storage::kFnvOffset;
  for (size_t i = 0; i < records.size(); ++i) {
    const CoeffRecord& r = records[i];
    h = storage::Fnv1a64Mix(static_cast<uint64_t>(r.object_id), h);
    h = storage::Fnv1a64Mix(static_cast<uint64_t>(r.coeff_id), h);
    h = HashDouble(r.w, h);
    h = HashDouble(r.position.x, h);
    h = HashDouble(r.position.y, h);
    h = HashDouble(r.support_bounds.lo(0), h);
    h = HashDouble(r.support_bounds.lo(1), h);
    h = HashDouble(r.support_bounds.hi(0), h);
    h = HashDouble(r.support_bounds.hi(1), h);
    h = storage::Fnv1a64Mix(static_cast<uint64_t>(ids[i]), h);
  }
  return h;
}

struct Directory {
  uint8_t kind = 0;
  int32_t shard = 0;
  int64_t record_count = 0;
  uint64_t fingerprint = 0;
  storage::PageId root = storage::kInvalidPage;
  int32_t height = 0;
  int64_t size = 0;
};

std::vector<uint8_t> EncodeDirectory(const Directory& dir) {
  common::ByteWriter w;
  w.WriteU64(kDirMagic);
  w.WriteU32(kDirVersion);
  w.WriteU8(dir.kind);
  w.WriteI32(dir.shard);
  w.WriteI64(dir.record_count);
  w.WriteU64(dir.fingerprint);
  w.WriteI64(dir.root);
  w.WriteI32(dir.height);
  w.WriteI64(dir.size);
  return w.Take();
}

common::Status DecodeDirectory(const std::vector<uint8_t>& bytes,
                               Directory* dir) {
  common::ByteReader r(bytes.data(), bytes.size());
  uint64_t magic = 0;
  uint32_t version = 0;
  MARS_RETURN_IF_ERROR(r.ReadU64(&magic));
  if (magic != kDirMagic) {
    return common::InternalError("shard directory: bad magic");
  }
  MARS_RETURN_IF_ERROR(r.ReadU32(&version));
  if (version != kDirVersion) {
    return common::InternalError("shard directory: unsupported version");
  }
  MARS_RETURN_IF_ERROR(r.ReadU8(&dir->kind));
  MARS_RETURN_IF_ERROR(r.ReadI32(&dir->shard));
  MARS_RETURN_IF_ERROR(r.ReadI64(&dir->record_count));
  MARS_RETURN_IF_ERROR(r.ReadU64(&dir->fingerprint));
  MARS_RETURN_IF_ERROR(r.ReadI64(&dir->root));
  MARS_RETURN_IF_ERROR(r.ReadI32(&dir->height));
  MARS_RETURN_IF_ERROR(r.ReadI64(&dir->size));
  return common::OkStatus();
}

// Shard-map sidecar blob: base grid geometry plus the refinement list,
// persisted next to the page files so a restart re-applies the
// rebalancer's splits/merges before partitioning (and therefore restores
// the split-allocated shards' trees instead of rebuilding everything).
constexpr uint64_t kMapMagic = 0x50414d53524d3144ull;  // "D1MRSMAP" LE
// Version 1 stored the raw refinement list and replayed it through
// ApplySplit/ApplyMerge, whose next-unallocated-id check requires split
// targets in allocation order. Version 2 additionally stores the
// allocation high-water mark (total_shards), because a compacted list
// (ShardMap::Compact) may drop or re-target the very splits that
// allocated ids later ops still reference. Both versions decode.
constexpr uint32_t kMapVersion = 2;

std::vector<uint8_t> EncodeShardMap(const ShardMap& map, int32_t base_shards) {
  common::ByteWriter w;
  w.WriteU64(kMapMagic);
  w.WriteU32(kMapVersion);
  w.WriteI32(base_shards);
  w.WriteI32(map.total_shards());
  const geometry::Box2& bounds = map.bounds();
  w.WriteU8(bounds.IsEmpty() ? 1 : 0);
  if (!bounds.IsEmpty()) {
    w.WriteDouble(bounds.lo(0));
    w.WriteDouble(bounds.lo(1));
    w.WriteDouble(bounds.hi(0));
    w.WriteDouble(bounds.hi(1));
  }
  const auto& ops = map.refinements();
  w.WriteI64(static_cast<int64_t>(ops.size()));
  for (const ShardMap::Refinement& op : ops) {
    w.WriteU8(static_cast<uint8_t>(op.kind));
    w.WriteI32(op.shard);
    w.WriteI32(op.target);
    w.WriteI32(op.axis);
    w.WriteDouble(op.threshold);
  }
  return w.Take();
}

// Decodes the sidecar and replays its refinements onto `map` (which must
// already hold the base grid). Fails without touching `map` when the blob
// is malformed or was written for a different base grid.
common::Status DecodeShardMapInto(const std::vector<uint8_t>& bytes,
                                  int32_t base_shards, ShardMap* map) {
  common::ByteReader r(bytes.data(), bytes.size());
  uint64_t magic = 0;
  uint32_t version = 0;
  MARS_RETURN_IF_ERROR(r.ReadU64(&magic));
  if (magic != kMapMagic) {
    return common::InternalError("shard map sidecar: bad magic");
  }
  MARS_RETURN_IF_ERROR(r.ReadU32(&version));
  if (version != 1 && version != kMapVersion) {
    return common::InternalError("shard map sidecar: unsupported version");
  }
  int32_t stored_shards = 0;
  MARS_RETURN_IF_ERROR(r.ReadI32(&stored_shards));
  if (stored_shards != base_shards) {
    return common::FailedPreconditionError(
        "shard map sidecar: base shard count changed");
  }
  int32_t total_shards = base_shards;
  if (version >= 2) {
    MARS_RETURN_IF_ERROR(r.ReadI32(&total_shards));
    if (total_shards < base_shards || total_shards > 1'000'000) {
      return common::InternalError("shard map sidecar: bad total shards");
    }
  }
  uint8_t empty = 0;
  MARS_RETURN_IF_ERROR(r.ReadU8(&empty));
  std::array<double, 4> stored_bounds = {0, 0, 0, 0};
  if (empty == 0) {
    for (double& v : stored_bounds) {
      MARS_RETURN_IF_ERROR(r.ReadDouble(&v));
    }
  }
  const geometry::Box2& bounds = map->bounds();
  const bool bounds_match =
      empty != 0
          ? bounds.IsEmpty()
          : !bounds.IsEmpty() && bounds.lo(0) == stored_bounds[0] &&
                bounds.lo(1) == stored_bounds[1] &&
                bounds.hi(0) == stored_bounds[2] &&
                bounds.hi(1) == stored_bounds[3];
  if (!bounds_match) {
    return common::FailedPreconditionError(
        "shard map sidecar: base grid bounds changed");
  }
  int64_t count = 0;
  MARS_RETURN_IF_ERROR(r.ReadI64(&count));
  if (count < 0 || count > 1'000'000) {
    return common::InternalError("shard map sidecar: bad refinement count");
  }
  std::vector<ShardMap::Refinement> ops;
  ops.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    uint8_t kind = 0;
    ShardMap::Refinement op;
    MARS_RETURN_IF_ERROR(r.ReadU8(&kind));
    if (kind > static_cast<uint8_t>(ShardMap::Refinement::Kind::kMerge)) {
      return common::InternalError("shard map sidecar: bad refinement kind");
    }
    op.kind = static_cast<ShardMap::Refinement::Kind>(kind);
    MARS_RETURN_IF_ERROR(r.ReadI32(&op.shard));
    MARS_RETURN_IF_ERROR(r.ReadI32(&op.target));
    MARS_RETURN_IF_ERROR(r.ReadI32(&op.axis));
    MARS_RETURN_IF_ERROR(r.ReadDouble(&op.threshold));
    if (op.shard < 0 || op.target < 0 || (op.axis != 0 && op.axis != 1)) {
      return common::InternalError("shard map sidecar: bad refinement");
    }
    ops.push_back(op);
  }
  if (version == 1) {
    // Replay in list order — ApplySplit's next-unallocated-id check holds
    // by construction, and re-checks here against a hand-edited file.
    for (const ShardMap::Refinement& op : ops) {
      if (op.kind == ShardMap::Refinement::Kind::kSplit) {
        if (op.target != map->total_shards()) {
          return common::InternalError(
              "shard map sidecar: split target out of order");
        }
        map->ApplySplit(op.shard, op.axis, op.threshold, op.target);
      } else {
        if (op.shard >= map->total_shards() ||
            op.target >= map->total_shards() || op.shard == op.target) {
          return common::InternalError("shard map sidecar: bad merge");
        }
        map->ApplyMerge(op.shard, op.target);
      }
    }
    return common::OkStatus();
  }
  // Version 2: a compacted list does not replay through the append-only
  // surface (its split targets may be out of allocation order, or point
  // at existing ids after a forward collapse). Bounds-check every op
  // against the stored high-water mark and install the list verbatim —
  // any in-bounds list routes safely, because Route only ever follows op
  // targets and every target is below total_shards.
  for (const ShardMap::Refinement& op : ops) {
    if (op.shard >= total_shards || op.target >= total_shards ||
        op.shard == op.target) {
      return common::InternalError("shard map sidecar: refinement out of "
                                   "bounds");
    }
  }
  map->RestoreRefinements(total_shards, std::move(ops));
  return common::OkStatus();
}

std::string KindName(ShardedIndexOptions::Kind kind) {
  switch (kind) {
    case ShardedIndexOptions::Kind::kSupportRegion:
      return "support-region";
    case ShardedIndexOptions::Kind::kNaivePoint:
      return "naive-point";
  }
  MARS_CHECK(false);
  return "";
}

}  // namespace

ShardedCoefficientIndex::ShardedCoefficientIndex(ShardedIndexOptions options)
    : options_(options) {
  MARS_CHECK_GE(options_.shards, 1);
  MARS_CHECK_GE(options_.fanout_workers, 1);
}

ShardedCoefficientIndex::~ShardedCoefficientIndex() {
  // Persist roots and buffered pages so a restart can restore; pages are
  // deliberately NOT freed — they are the on-disk index.
  for (const auto& pool : pools_) {
    if (pool != nullptr) pool->Flush();
  }
}

std::unique_ptr<CoefficientIndex> ShardedCoefficientIndex::MakeInner(
    int32_t shard_id) const {
  if (disk_store()) {
    storage::BufferPool* pool = pools_[shard_id].get();
    switch (options_.kind) {
      case ShardedIndexOptions::Kind::kSupportRegion:
        return std::make_unique<PagedSupportRegionIndex>(options_.rtree, pool);
      case ShardedIndexOptions::Kind::kNaivePoint:
        return std::make_unique<PagedNaivePointIndex>(options_.rtree, pool);
    }
    MARS_CHECK(false);
    return nullptr;
  }
  switch (options_.kind) {
    case ShardedIndexOptions::Kind::kSupportRegion:
      return std::make_unique<SupportRegionIndex>(options_.rtree);
    case ShardedIndexOptions::Kind::kNaivePoint:
      return std::make_unique<NaivePointIndex>(options_.rtree);
  }
  MARS_CHECK(false);
  return nullptr;
}

std::unique_ptr<ShardedCoefficientIndex::Shard>
ShardedCoefficientIndex::BuildShard(int32_t id,
                                    std::vector<CoeffRecord> records,
                                    std::vector<RecordId> ids) const {
  auto shard = std::make_unique<Shard>();
  shard->id = id;
  shard->records = std::move(records);
  shard->ids = std::move(ids);
  for (const CoeffRecord& r : shard->records) {
    shard->coverage.Extend(GroundSupport(r));
  }
  if (!shard->records.empty()) {
    shard->index = MakeInner(id);
    // Built over the shard's own table (the inner access methods keep a
    // pointer to it), so the records copied here must stay put — which
    // they do: a Shard is immutable once installed.
    shard->index->Build(shard->records);
    if (disk_store()) {
      shard->paged = static_cast<PagedCoefficientIndex*>(shard->index.get());
    }
  }
  return shard;
}

common::StatusOr<std::unique_ptr<ShardedCoefficientIndex::Shard>>
ShardedCoefficientIndex::RestoreShard(int32_t id,
                                      std::vector<CoeffRecord> records,
                                      std::vector<RecordId> ids) const {
  storage::BufferPool* pool = pools_[id].get();
  const storage::PageId dir_page = pool->root();
  if (dir_page == storage::kInvalidPage) {
    return common::NotFoundError("shard restore: no directory");
  }
  std::vector<uint8_t> blob;
  MARS_RETURN_IF_ERROR(pool->Fetch(dir_page, &blob));
  Directory dir;
  MARS_RETURN_IF_ERROR(DecodeDirectory(blob, &dir));
  if (dir.kind != static_cast<uint8_t>(options_.kind) || dir.shard != id) {
    return common::FailedPreconditionError("shard restore: directory is for "
                                           "a different index");
  }
  if (dir.record_count != static_cast<int64_t>(records.size()) ||
      dir.fingerprint != FingerprintTable(records, ids)) {
    return common::FailedPreconditionError(
        "shard restore: record table changed since persist");
  }
  auto shard = std::make_unique<Shard>();
  shard->id = id;
  shard->records = std::move(records);
  shard->ids = std::move(ids);
  for (const CoeffRecord& r : shard->records) {
    shard->coverage.Extend(GroundSupport(r));
  }
  if (!shard->records.empty()) {
    if (dir.root == storage::kInvalidPage) {
      return common::InternalError("shard restore: directory has no tree");
    }
    shard->index = MakeInner(id);
    shard->paged = static_cast<PagedCoefficientIndex*>(shard->index.get());
    MARS_RETURN_IF_ERROR(shard->paged->Restore(
        shard->records, PagedCoefficientIndex::TreeInfo{
                            dir.root, dir.height, dir.size}));
  }
  return shard;
}

common::Status ShardedCoefficientIndex::WriteDirectory(
    int32_t id, const Shard& shard) const {
  Directory dir;
  dir.kind = static_cast<uint8_t>(options_.kind);
  dir.shard = id;
  dir.record_count = static_cast<int64_t>(shard.records.size());
  dir.fingerprint = FingerprintTable(shard.records, shard.ids);
  if (shard.paged != nullptr) {
    const PagedCoefficientIndex::TreeInfo info = shard.paged->tree_info();
    dir.root = info.root;
    dir.height = info.height;
    dir.size = info.size;
  }
  storage::BufferPool* pool = pools_[id].get();
  storage::PageId dir_page = pool->root();
  MARS_RETURN_IF_ERROR(pool->Store(&dir_page, EncodeDirectory(dir)));
  MARS_RETURN_IF_ERROR(pool->SetRoot(dir_page));
  return pool->Flush();
}

void ShardedCoefficientIndex::Build(const std::vector<CoeffRecord>& records) {
  const int32_t k = options_.shards;
  map_ = k == 1 ? ShardMap()
                : ShardMap::Build(ShardMap::GroundBounds(records), k);
  if (disk_store()) {
    // Replay a persisted refinement list (if any) BEFORE partitioning, so
    // the routed per-slot tables match the directories the rebalanced run
    // wrote and every slot — including the ones splits allocated past the
    // configured K — re-attaches its page file instead of rebuilding.
    LoadShardMap(&map_);
  }
  const int32_t total = map_.total_shards();

  // Partition the table over every slot the map has ever allocated
  // (total == k unless a restored refinement list grew it).
  std::vector<std::vector<CoeffRecord>> tables(total);
  std::vector<std::vector<RecordId>> ids(total);
  for (size_t i = 0; i < records.size(); ++i) {
    const int32_t s = map_.Route(records[i]);
    tables[s].push_back(records[i]);
    ids[s].push_back(static_cast<RecordId>(i));
  }

  if (options_.fanout_workers > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<common::ThreadPool>(options_.fanout_workers);
  }

  std::vector<std::unique_ptr<Shard>> shards(total);
  if (disk_store()) {
    // Disk mode: open (or create) each shard's page file, then restore
    // the persisted tree when its directory matches the routed table —
    // partitioning above is deterministic, so an unchanged dataset
    // restores every shard and a restart skips the whole rebuild. Any
    // mismatch or corruption falls back to a fresh file and rebuild:
    // always a clean recovery, never undefined behavior.
    MARS_CHECK(!options_.storage.path.empty())
        << "disk store requires a page file path";
    // A rebuild invalidates every pool pointer the warmer holds: stop it
    // (joining any in-flight reads) before the pools go away.
    warmer_.reset();
    pools_.clear();
    managers_.clear();
    managers_.resize(total);
    pools_.resize(total);
    restored_shards_ = 0;
    // Per-slot budget keyed to the configured K (AddShardStore semantics):
    // restored split slots grow the pool footprint, not shrink the rest.
    const int64_t pool_pages =
        std::max<int64_t>(1, options_.storage.pool_pages / k);
    for (int32_t s = 0; s < total; ++s) {
      const std::string path = ShardFilePath(s);
      auto opened = storage::DiskStorageManager::Open(
          path, options_.storage.page_size, /*truncate=*/false);
      bool fresh_needed = !opened.ok();
      if (opened.ok()) {
        managers_[s] = std::move(opened).value();
        pools_[s] = std::make_unique<storage::BufferPool>(
            managers_[s].get(), pool_pages, options_.storage.evict);
        if (managers_[s]->opened_existing()) {
          auto restored = RestoreShard(s, tables[s], ids[s]);
          if (restored.ok()) {
            shards[s] = std::move(restored).value();
            ++restored_shards_;
          } else {
            fresh_needed = true;
          }
        }
      }
      if (fresh_needed) {
        // Stale or unreadable page file: recreate it from scratch.
        pools_[s].reset();
        managers_[s].reset();
        auto created = storage::DiskStorageManager::Open(
            path, options_.storage.page_size, /*truncate=*/true);
        MARS_CHECK(created.ok())
            << "cannot create page file: " << created.status().ToString();
        managers_[s] = std::move(created).value();
        pools_[s] = std::make_unique<storage::BufferPool>(
            managers_[s].get(), pool_pages, options_.storage.evict);
      }
      if (shards[s] == nullptr) {
        shards[s] = BuildShard(s, std::move(tables[s]), std::move(ids[s]));
        const common::Status dir = WriteDirectory(s, *shards[s]);
        MARS_CHECK(dir.ok())
            << "cannot persist shard directory: " << dir.ToString();
      }
    }
    // Re-mark merged-away slots: ids are append-only and never reused, so
    // the retired set is exactly the merge ops' source ids. (A compacted
    // sidecar may have dropped a merge whose slot cancelled out entirely;
    // that slot comes back as an empty live one — routing-identical, it
    // just counts as live again.)
    for (const ShardMap::Refinement& op : map_.refinements()) {
      if (op.kind == ShardMap::Refinement::Kind::kMerge) {
        shards[op.shard]->retired = true;
      }
    }
    PersistShardMap();
    if (options_.storage.warm) {
      storage::PoolWarmer::Options warm;
      warm.budget = options_.storage.warm_budget;
      warm.workers = options_.storage.warm_workers;
      warmer_ = std::make_unique<storage::PoolWarmer>(warm);
      for (const auto& pool : pools_) {
        warmer_->AddPool(pool.get());
      }
    }
  } else if (pool_ != nullptr && k > 1) {
    // Build every shard in parallel (shard builds are independent); the
    // result is the same set of trees as the sequential path.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(total);
    for (int32_t s = 0; s < total; ++s) {
      tasks.push_back([this, s, &shards, &tables, &ids] {
        shards[s] = BuildShard(s, std::move(tables[s]), std::move(ids[s]));
      });
    }
    common::MutexLock pool_lock(&pool_mu_);
    pool_->RunBatch(tasks);
  } else {
    for (int32_t s = 0; s < total; ++s) {
      shards[s] = BuildShard(s, std::move(tables[s]), std::move(ids[s]));
    }
  }

  {
    common::WriterLock lock(&mu_);
    shards_ = std::move(shards);
    epoch_ = 0;
  }
  common::MutexLock stage_lock(&stage_mu_);
  staged_.assign(total, {});
  staged_count_ = 0;
}

int64_t ShardedCoefficientIndex::QueryShard(const Shard& shard,
                                            const geometry::Box2& region,
                                            double w_min, double w_max,
                                            std::vector<RecordId>* out) {
  ++shard.fanout_queries;
  if (shard.index == nullptr) return 0;
  std::vector<RecordId> local;
  const int64_t accesses = shard.index->Query(region, w_min, w_max, &local);
  out->reserve(out->size() + local.size());
  for (RecordId id : local) {
    out->push_back(shard.ids[static_cast<size_t>(id)]);
  }
  return accesses;
}

int64_t ShardedCoefficientIndex::Query(const geometry::Box2& region,
                                       double w_min, double w_max,
                                       std::vector<RecordId>* out) const {
  return QueryProfiled(region, w_min, w_max, out, nullptr);
}

int64_t ShardedCoefficientIndex::QueryProfiled(const geometry::Box2& region,
                                               double w_min, double w_max,
                                               std::vector<RecordId>* out,
                                               FanoutProfile* profile) const {
  common::ReaderLock lock(&mu_);
  MARS_CHECK(!shards_.empty());

  // A single slot is a strict passthrough: one shard, queried
  // unconditionally, so traversal and node accesses match the unsharded
  // index exactly (the single tree always pays at least the root visit).
  if (shards_.size() == 1) {
    const int64_t accesses =
        QueryShard(*shards_[0], region, w_min, w_max, out);
    if (profile != nullptr) {
      profile->shards_touched = 1;
      profile->max_shard_accesses = accesses;
    }
    return accesses;
  }

  // Fan out to the shards whose coverage intersects the window. The
  // coverage boxes are exact (union of the support MBBs routed there),
  // so a skipped shard provably contributes nothing to the required set
  // — and a retired shard's coverage is the empty box, which intersects
  // nothing, so merged-away slots cost no traversal.
  std::vector<const Shard*> hit;
  hit.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->coverage.Intersects(region)) hit.push_back(shard.get());
  }
  if (profile != nullptr) {
    profile->shards_touched = static_cast<int32_t>(hit.size());
    profile->max_shard_accesses = 0;
  }
  if (hit.empty()) return 0;

  // Parallel fan-out when the pool is free; sequential otherwise (pool
  // busy means another query — or a fleet tick that owns the pool's
  // worker budget elsewhere — is mid-batch, and ThreadPool batches are
  // not reentrant). Both paths produce identical output: results merge
  // in ascending shard id and node accesses sum order-independently.
  if (pool_ != nullptr && hit.size() > 1 && pool_mu_.TryLock()) {
    std::vector<std::vector<RecordId>> results(hit.size());
    std::vector<int64_t> accesses(hit.size(), 0);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(hit.size());
    for (size_t i = 0; i < hit.size(); ++i) {
      tasks.push_back([&, i] {
        accesses[i] =
            QueryShard(*hit[i], region, w_min, w_max, &results[i]);
      });
    }
    pool_->RunBatch(tasks);
    pool_mu_.Unlock();
    int64_t total = 0;
    for (size_t i = 0; i < hit.size(); ++i) {
      total += accesses[i];
      if (profile != nullptr) {
        profile->max_shard_accesses =
            std::max(profile->max_shard_accesses, accesses[i]);
      }
      out->insert(out->end(), results[i].begin(), results[i].end());
    }
    return total;
  }

  int64_t total = 0;
  for (const Shard* shard : hit) {
    const int64_t accesses = QueryShard(*shard, region, w_min, w_max, out);
    total += accesses;
    if (profile != nullptr) {
      profile->max_shard_accesses =
          std::max(profile->max_shard_accesses, accesses);
    }
  }
  return total;
}

int64_t ShardedCoefficientIndex::node_accesses() const {
  common::ReaderLock lock(&mu_);
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->retired_accesses;
    if (shard->index != nullptr) total += shard->index->node_accesses();
  }
  return total;
}

void ShardedCoefficientIndex::ResetStats() {
  common::WriterLock lock(&mu_);
  for (const auto& shard : shards_) {
    shard->retired_accesses = 0;
    shard->fanout_queries = 0;
    if (shard->index != nullptr) shard->index->ResetStats();
  }
}

std::string ShardedCoefficientIndex::name() const {
  // K = 1 reports the inner method's name so every existing log line,
  // JSON field and test expectation is untouched at the default.
  if (options_.shards == 1) return KindName(options_.kind);
  return "sharded-" + std::to_string(options_.shards) + "(" +
         KindName(options_.kind) + ")";
}

void ShardedCoefficientIndex::Stage(const CoeffRecord* records, size_t count,
                                    RecordId first_id) {
  common::MutexLock lock(&stage_mu_);
  MARS_CHECK(!staged_.empty());  // Build must run before ingest starts.
  for (size_t i = 0; i < count; ++i) {
    const int32_t s = map_.Route(records[i]);
    staged_[s].emplace_back(first_id + static_cast<RecordId>(i), records[i]);
  }
  staged_count_ += static_cast<int64_t>(count);
}

int64_t ShardedCoefficientIndex::CommitStaged() {
  // Claim the staged buffers.
  std::vector<std::vector<std::pair<RecordId, CoeffRecord>>> pending;
  {
    common::MutexLock lock(&stage_mu_);
    if (staged_count_ == 0) return 0;
    pending = std::move(staged_);
    staged_.assign(pending.size(), {});
    staged_count_ = 0;
  }

  // Snapshot the affected shards' tables (queries keep running on the
  // old shards meanwhile).
  struct Rebuild {
    int32_t shard;
    std::vector<CoeffRecord> records;
    std::vector<RecordId> ids;
  };
  std::vector<Rebuild> rebuilds;
  int64_t folded = 0;
  {
    common::ReaderLock lock(&mu_);
    MARS_CHECK_EQ(pending.size(), shards_.size());
    for (size_t s = 0; s < pending.size(); ++s) {
      if (pending[s].empty()) continue;
      Rebuild rb;
      rb.shard = static_cast<int32_t>(s);
      rb.records = shards_[s]->records;
      rb.ids = shards_[s]->ids;
      for (auto& [id, record] : pending[s]) {
        rb.records.push_back(std::move(record));
        rb.ids.push_back(id);
      }
      folded += static_cast<int64_t>(pending[s].size());
      rebuilds.push_back(std::move(rb));
    }
  }

  // Build the replacement shards with no lock held — the expensive part
  // of the epoch happens while readers proceed untouched.
  std::vector<std::unique_ptr<Shard>> built;
  built.reserve(rebuilds.size());
  for (Rebuild& rb : rebuilds) {
    built.push_back(
        BuildShard(rb.shard, std::move(rb.records), std::move(rb.ids)));
  }

  // Swap (SwapSlot transfers counters, frees the replaced epoch's pages
  // and rewrites the shard directory).
  common::WriterLock lock(&mu_);
  for (auto& shard : built) {
    SwapSlot(std::move(shard));
  }
  ++epoch_;
  return folded;
}

void ShardedCoefficientIndex::SwapSlot(std::unique_ptr<Shard> next) {
  std::unique_ptr<Shard>& slot = shards_[next->id];
  // Counters transfer at swap time so queries that ran during the
  // off-side build are not lost: the old tree's accesses retire into the
  // new shard's carried total — on top of anything the caller pre-seeded
  // (a merge source's history, say). In disk mode the replaced epoch's
  // pages go back to the freelist (the destructor leaves pages alone by
  // design) and the shard directory is rewritten to point at the new
  // tree.
  next->retired_accesses += slot->retired_accesses;
  if (slot->index != nullptr) {
    next->retired_accesses += slot->index->node_accesses();
  }
  next->fanout_queries += slot->fanout_queries.load();
  next->rebuilds += slot->rebuilds + 1;
  if (slot->paged != nullptr) {
    const common::Status freed = slot->paged->FreePages();
    MARS_CHECK(freed.ok())
        << "cannot retire epoch pages: " << freed.ToString();
  }
  const int32_t id = next->id;
  slot = std::move(next);
  if (disk_store()) {
    const common::Status dir = WriteDirectory(id, *slot);
    MARS_CHECK(dir.ok())
        << "cannot persist shard directory: " << dir.ToString();
  }
}

std::string ShardedCoefficientIndex::ShardFilePath(int32_t shard) const {
  // Shard 0 of a configured K == 1 keeps the bare path (bit-identical
  // with the pre-sharding store); every other slot — including the ones
  // splits allocate past the configured K — gets its own suffix.
  if (options_.shards == 1 && shard == 0) return options_.storage.path;
  return options_.storage.path + ".shard" + std::to_string(shard);
}

std::string ShardedCoefficientIndex::ShardMapPath() const {
  return options_.storage.path + ".shardmap";
}

void ShardedCoefficientIndex::PersistShardMap() const {
  MARS_CHECK(disk_store());
  const std::vector<uint8_t> blob = EncodeShardMap(map_, options_.shards);
  std::ofstream out(ShardMapPath(), std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  MARS_CHECK(out.good()) << "cannot persist shard map: " << ShardMapPath();
}

bool ShardedCoefficientIndex::LoadShardMap(ShardMap* map) const {
  std::ifstream in(ShardMapPath(), std::ios::binary | std::ios::ate);
  if (!in.good()) return false;  // no sidecar: nothing was rebalanced
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> blob(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(blob.data()), size);
  if (!in.good()) return false;
  // Replay onto a scratch copy so a stale or corrupt sidecar leaves the
  // freshly built base map untouched (the build then proceeds as if the
  // rebalancer had never run — a clean recovery).
  ShardMap candidate = *map;
  const common::Status replayed =
      DecodeShardMapInto(blob, options_.shards, &candidate);
  if (!replayed.ok()) return false;
  *map = candidate;
  return !map->refinements().empty();
}

void ShardedCoefficientIndex::AddShardStore(int32_t shard) {
  MARS_CHECK(disk_store());
  MARS_CHECK_EQ(static_cast<size_t>(shard), managers_.size());
  auto created = storage::DiskStorageManager::Open(
      ShardFilePath(shard), options_.storage.page_size, /*truncate=*/true);
  MARS_CHECK(created.ok())
      << "cannot create page file: " << created.status().ToString();
  // Same per-slot budget Build hands the configured K: rebalancing grows
  // the pool footprint with the slot count instead of shrinking every
  // other shard's share.
  const int64_t pool_pages =
      std::max<int64_t>(1, options_.storage.pool_pages / options_.shards);
  managers_.push_back(std::move(created).value());
  pools_.push_back(std::make_unique<storage::BufferPool>(
      managers_.back().get(), pool_pages, options_.storage.evict));
  // SplitShard runs in the serial window between WarmJoin and
  // WarmDispatch, so registering with the warmer here cannot race a
  // candidate scan or an install.
  if (warmer_ != nullptr) {
    warmer_->AddPool(pools_.back().get());
  }
}

void ShardedCoefficientIndex::RebucketStaged(int32_t new_shard_count) {
  std::vector<std::vector<std::pair<RecordId, CoeffRecord>>> old =
      std::move(staged_);
  staged_.assign(static_cast<size_t>(new_shard_count), {});
  for (auto& bucket : old) {
    for (auto& [id, record] : bucket) {
      staged_[map_.Route(record)].emplace_back(id, std::move(record));
    }
  }
}

common::StatusOr<int32_t> ShardedCoefficientIndex::SplitShard(int32_t shard) {
  // Snapshot the shard's table under the reader lock; queries keep
  // running against the old shards while the halves build off-side.
  std::vector<CoeffRecord> records;
  std::vector<RecordId> ids;
  int32_t new_id = 0;
  {
    common::ReaderLock lock(&mu_);
    if (shard < 0 || shard >= static_cast<int32_t>(shards_.size())) {
      return common::InvalidArgumentError("split: no such shard");
    }
    const Shard& s = *shards_[shard];
    if (s.retired) {
      return common::FailedPreconditionError("split: shard is retired");
    }
    if (s.records.size() < 2) {
      return common::FailedPreconditionError("split: fewer than two records");
    }
    records = s.records;
    ids = s.ids;
    new_id = static_cast<int32_t>(shards_.size());
  }

  // Median split along the axis with the wider spread of support
  // centers; fall back to the other axis when duplicate centers collapse
  // one side of the first.
  const size_t n = records.size();
  std::array<std::vector<double>, 2> centers;
  centers[0].reserve(n);
  centers[1].reserve(n);
  for (const CoeffRecord& r : records) {
    centers[0].push_back(
        0.5 * (r.support_bounds.lo(0) + r.support_bounds.hi(0)));
    centers[1].push_back(
        0.5 * (r.support_bounds.lo(1) + r.support_bounds.hi(1)));
  }
  const auto spread = [&centers](int axis) {
    const auto [lo, hi] =
        std::minmax_element(centers[axis].begin(), centers[axis].end());
    return *hi - *lo;
  };
  const int first = spread(0) >= spread(1) ? 0 : 1;
  int axis = -1;
  double threshold = 0.0;
  for (const int candidate : {first, 1 - first}) {
    std::vector<double> sorted = centers[candidate];
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(n / 2),
                     sorted.end());
    const double t = sorted[n / 2];
    size_t high = 0;
    for (const double c : centers[candidate]) {
      if (c >= t) ++high;
    }
    if (high > 0 && high < n) {
      axis = candidate;
      threshold = t;
      break;
    }
  }
  if (axis < 0) {
    return common::FailedPreconditionError(
        "split: all record centers coincide");
  }

  // Partition exactly as the refined map will route.
  std::vector<CoeffRecord> low_records;
  std::vector<CoeffRecord> high_records;
  std::vector<RecordId> low_ids;
  std::vector<RecordId> high_ids;
  for (size_t i = 0; i < n; ++i) {
    if (centers[axis][i] >= threshold) {
      high_records.push_back(records[i]);
      high_ids.push_back(ids[i]);
    } else {
      low_records.push_back(records[i]);
      low_ids.push_back(ids[i]);
    }
  }

  if (disk_store()) {
    // The new slot needs its page file + buffer pool before its tree can
    // build (appending races PoolStats/UpdateInterest, hence the lock).
    common::WriterLock lock(&mu_);
    AddShardStore(new_id);
  }

  // Build both halves off to the side, no lock held.
  std::unique_ptr<Shard> low =
      BuildShard(shard, std::move(low_records), std::move(low_ids));
  std::unique_ptr<Shard> high =
      BuildShard(new_id, std::move(high_records), std::move(high_ids));

  {
    common::WriterLock lock(&mu_);
    MARS_CHECK_EQ(new_id, static_cast<int32_t>(shards_.size()));
    shards_.push_back(std::move(high));
    if (disk_store()) {
      const common::Status dir = WriteDirectory(new_id, *shards_.back());
      MARS_CHECK(dir.ok())
          << "cannot persist shard directory: " << dir.ToString();
    }
    // The surviving low half keeps the split shard's counter history;
    // the high half starts fresh.
    SwapSlot(std::move(low));
    ++rebalances_;
  }

  // Route future records — and the already-staged ones — under the
  // refined map.
  common::MutexLock stage_lock(&stage_mu_);
  map_.ApplySplit(shard, axis, threshold, new_id);
  if (disk_store()) PersistShardMap();
  RebucketStaged(new_id + 1);
  return new_id;
}

common::Status ShardedCoefficientIndex::MergeShards(int32_t src, int32_t dst) {
  if (src == dst) {
    return common::InvalidArgumentError("merge: src == dst");
  }
  std::vector<CoeffRecord> records;
  std::vector<RecordId> ids;
  {
    common::ReaderLock lock(&mu_);
    const int32_t count = static_cast<int32_t>(shards_.size());
    if (src < 0 || src >= count || dst < 0 || dst >= count) {
      return common::InvalidArgumentError("merge: no such shard");
    }
    if (shards_[src]->retired || shards_[dst]->retired) {
      return common::FailedPreconditionError("merge: shard is retired");
    }
    records = shards_[dst]->records;
    ids = shards_[dst]->ids;
    records.insert(records.end(), shards_[src]->records.begin(),
                   shards_[src]->records.end());
    ids.insert(ids.end(), shards_[src]->ids.begin(), shards_[src]->ids.end());
  }
  // Union in ascending global id — exactly the order a fresh Build
  // partition produces when it routes the table under the merged map, so
  // the rebuilt shard fingerprints identically and a restart re-attaches
  // its page file instead of rebuilding.
  {
    std::vector<size_t> order(ids.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&ids](size_t a, size_t b) { return ids[a] < ids[b]; });
    std::vector<CoeffRecord> sorted_records;
    std::vector<RecordId> sorted_ids;
    sorted_records.reserve(records.size());
    sorted_ids.reserve(ids.size());
    for (const size_t i : order) {
      sorted_records.push_back(std::move(records[i]));
      sorted_ids.push_back(ids[i]);
    }
    records = std::move(sorted_records);
    ids = std::move(sorted_ids);
  }

  // Build the union shard and src's empty tombstone off to the side.
  std::unique_ptr<Shard> merged =
      BuildShard(dst, std::move(records), std::move(ids));
  std::unique_ptr<Shard> tombstone = BuildShard(src, {}, {});
  tombstone->retired = true;

  int32_t count = 0;
  {
    common::WriterLock lock(&mu_);
    // src's cumulative counters move into the union before the swap adds
    // dst's own — the destination inherits the sum of both histories and
    // the retired slot restarts at zero, permanently.
    Shard& old_src = *shards_[src];
    merged->retired_accesses += old_src.retired_accesses;
    if (old_src.index != nullptr) {
      merged->retired_accesses += old_src.index->node_accesses();
    }
    merged->fanout_queries += old_src.fanout_queries.load();
    tombstone->rebuilds = old_src.rebuilds + 1;
    if (old_src.paged != nullptr) {
      const common::Status freed = old_src.paged->FreePages();
      MARS_CHECK(freed.ok())
          << "cannot retire epoch pages: " << freed.ToString();
    }
    shards_[src] = std::move(tombstone);
    if (disk_store()) {
      const common::Status dir = WriteDirectory(src, *shards_[src]);
      MARS_CHECK(dir.ok())
          << "cannot persist shard directory: " << dir.ToString();
    }
    SwapSlot(std::move(merged));
    ++rebalances_;
    count = static_cast<int32_t>(shards_.size());
  }

  common::MutexLock stage_lock(&stage_mu_);
  map_.ApplyMerge(src, dst);
  // Merges are what create compactable patterns (cancelled or forwarded
  // splits, unreachable sources), so this is the one place the list can
  // grow dead weight: compact it before it persists. Routing is
  // preserved exactly, so the already-swapped shard slots stay valid.
  map_.Compact();
  if (disk_store()) PersistShardMap();
  RebucketStaged(count);
  return common::OkStatus();
}

int64_t ShardedCoefficientIndex::rebalances() const {
  common::ReaderLock lock(&mu_);
  return rebalances_;
}

int32_t ShardedCoefficientIndex::shard_count() const {
  common::ReaderLock lock(&mu_);
  // Before Build the answer is the configured K — nothing has split yet.
  if (shards_.empty()) return options_.shards;
  return static_cast<int32_t>(shards_.size());
}

int32_t ShardedCoefficientIndex::live_shard_count() const {
  common::ReaderLock lock(&mu_);
  if (shards_.empty()) return options_.shards;
  int32_t live = 0;
  for (const auto& shard : shards_) {
    if (!shard->retired) ++live;
  }
  return live;
}

int64_t ShardedCoefficientIndex::staged_records() const {
  common::MutexLock lock(&stage_mu_);
  return staged_count_;
}

int64_t ShardedCoefficientIndex::epoch() const {
  common::ReaderLock lock(&mu_);
  return epoch_;
}

std::vector<ShardedCoefficientIndex::ShardStats>
ShardedCoefficientIndex::Stats() const {
  common::ReaderLock lock(&mu_);
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.shard = shard->id;
    s.records = static_cast<int64_t>(shard->records.size());
    s.node_accesses = shard->retired_accesses;
    if (shard->index != nullptr) {
      s.node_accesses += shard->index->node_accesses();
    }
    s.fanout_queries = shard->fanout_queries.load();
    s.rebuilds = shard->rebuilds;
    s.retired = shard->retired;
    s.coverage = shard->coverage;
    stats.push_back(s);
  }
  return stats;
}

std::vector<ShardedCoefficientIndex::ShardPoolStats>
ShardedCoefficientIndex::PoolStats() const {
  // The reader lock orders the vector scan against SplitShard's append.
  common::ReaderLock lock(&mu_);
  std::vector<ShardPoolStats> stats;
  stats.reserve(pools_.size());
  for (size_t s = 0; s < pools_.size(); ++s) {
    if (pools_[s] == nullptr) continue;
    ShardPoolStats entry;
    entry.shard = static_cast<int32_t>(s);
    entry.pool = pools_[s]->stats();
    entry.file_pages = managers_[s]->page_count();
    entry.free_pages = managers_[s]->free_pages();
    entry.fragmented_pages = managers_[s]->fragmented_pages();
    stats.push_back(entry);
  }
  return stats;
}

void ShardedCoefficientIndex::UpdateInterest(
    const storage::InterestGrid& interest) const {
  // The reader lock orders the vector scan against SplitShard's append.
  common::ReaderLock lock(&mu_);
  for (const auto& pool : pools_) {
    if (pool != nullptr) pool->UpdateInterest(interest);
  }
}

void ShardedCoefficientIndex::WarmJoin() const {
  if (warmer_ != nullptr) warmer_->Join();
}

void ShardedCoefficientIndex::WarmDispatch() const {
  if (warmer_ != nullptr) warmer_->Dispatch();
}

}  // namespace mars::index
