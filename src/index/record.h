#ifndef MARS_INDEX_RECORD_H_
#define MARS_INDEX_RECORD_H_

#include <cstdint>

#include "geometry/box.h"
#include "geometry/vec.h"

namespace mars::index {

// Index into the server's flat record table.
using RecordId = int64_t;

// Wire-size model (uncompressed record format):
//  - a wavelet coefficient ships its object/vertex ids, level, the detail
//    vector, its normalized value, and the neighbour (support) information
//    the naive access method needs (paper Sec. VI: "additional information,
//    neighboring vertices, are also needed to be stored").
//  - a base-mesh record ships the whole coarse mesh of one object.
// Absolute values only scale the axes of the experiments; the defaults are
// sized so that an object with 4 decomposition levels weighs ~200 KB,
// matching the paper's 100 objects ≈ 20 MB datasets.
inline constexpr int64_t kCoefficientWireBytes = 112;
inline constexpr int64_t kBaseVertexWireBytes = 48;

// One retrievable unit stored on the server: either a wavelet coefficient
// or the base mesh of an object (whose vertices all carry w = 1.0, paper
// Sec. VII-A, so the coarsest shape is retrieved at any speed).
struct CoeffRecord {
  int32_t object_id = 0;
  // Coefficient id within the object; kBaseMeshRecord for the base-mesh
  // record.
  int32_t coeff_id = 0;
  static constexpr int32_t kBaseMeshRecord = -1;

  // Normalized geometric influence in [0, 1]; 1.0 for base records.
  double w = 1.0;

  // Vertex position (world coordinates) — the key of the naive point
  // index. For base records: the object's center.
  geometry::Vec3 position;

  // Support-region MBB (world coordinates) — the key of the motion-aware
  // index. For base records: the whole object's bounds.
  geometry::Box3 support_bounds;

  // Bytes on the wire when this record is transmitted.
  int64_t wire_bytes = kCoefficientWireBytes;

  bool is_base() const { return coeff_id == kBaseMeshRecord; }
};

}  // namespace mars::index

#endif  // MARS_INDEX_RECORD_H_
