#ifndef MARS_INDEX_SHARD_MAP_H_
#define MARS_INDEX_SHARD_MAP_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "geometry/box.h"
#include "index/record.h"

namespace mars::index {

// Ground-plane shard map: a uniform grid of K cells tiling the bounding
// box of the record table, routing each record to exactly one shard by
// the center of its ground-plane support MBB. The map is a *placement*
// heuristic only — query correctness never depends on it, because the
// sharded index fans out by each shard's actual coverage box (the union
// of the support MBBs routed there), which is exact for any routing.
//
// Records staged after Build (online ingest) may fall outside the
// original bounds; Route clamps them to the nearest edge cell, so the
// map never has to be rebuilt when the world grows.
class ShardMap {
 public:
  // Passthrough map: everything routes to shard 0.
  ShardMap() = default;

  // Tiles `bounds` with a near-square grid of exactly `shards` cells
  // (cols = ceil(sqrt(K)); trailing grid cells wrap onto the first
  // shards when K is not a product of the grid sides).
  static ShardMap Build(const geometry::Box2& bounds, int32_t shards) {
    MARS_CHECK_GE(shards, 1);
    ShardMap map;
    map.shards_ = shards;
    map.bounds_ = bounds;
    map.cols_ = static_cast<int32_t>(
        std::ceil(std::sqrt(static_cast<double>(shards))));
    map.rows_ = (shards + map.cols_ - 1) / map.cols_;
    return map;
  }

  // Bounding box of the records' ground-plane support MBBs.
  static geometry::Box2 GroundBounds(const std::vector<CoeffRecord>& records) {
    geometry::Box2 bounds;
    for (const CoeffRecord& r : records) {
      bounds.ExtendPoint({r.support_bounds.lo(0), r.support_bounds.lo(1)});
      bounds.ExtendPoint({r.support_bounds.hi(0), r.support_bounds.hi(1)});
    }
    return bounds;
  }

  int32_t shard_count() const { return shards_; }

  // Shard id for a record (by the ground-plane center of its support MBB).
  int32_t Route(const CoeffRecord& record) const {
    if (shards_ == 1) return 0;
    const double cx =
        0.5 * (record.support_bounds.lo(0) + record.support_bounds.hi(0));
    const double cy =
        0.5 * (record.support_bounds.lo(1) + record.support_bounds.hi(1));
    return CellAt(cx, cy) % shards_;
  }

  // Nominal cell of a ground point (clamped into the grid).
  int32_t CellAt(double x, double y) const {
    if (shards_ == 1 || bounds_.IsEmpty()) return 0;
    const int32_t col = Clamp(
        static_cast<int32_t>((x - bounds_.lo(0)) / CellWidth()), cols_);
    const int32_t row = Clamp(
        static_cast<int32_t>((y - bounds_.lo(1)) / CellHeight()), rows_);
    return row * cols_ + col;
  }

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  const geometry::Box2& bounds() const { return bounds_; }

 private:
  static int32_t Clamp(int32_t v, int32_t n) {
    return std::max<int32_t>(0, std::min<int32_t>(v, n - 1));
  }
  double CellWidth() const {
    const double e = bounds_.Extent(0);
    return e > 0 ? e / cols_ : 1.0;
  }
  double CellHeight() const {
    const double e = bounds_.Extent(1);
    return e > 0 ? e / rows_ : 1.0;
  }

  int32_t shards_ = 1;
  int32_t rows_ = 1;
  int32_t cols_ = 1;
  geometry::Box2 bounds_;
};

}  // namespace mars::index

#endif  // MARS_INDEX_SHARD_MAP_H_
