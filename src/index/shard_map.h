#ifndef MARS_INDEX_SHARD_MAP_H_
#define MARS_INDEX_SHARD_MAP_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "geometry/box.h"
#include "index/record.h"

namespace mars::index {

// Ground-plane shard map: a splittable partition of the ground plane,
// routing each record to exactly one shard by the center of its
// ground-plane support MBB. The map is a *placement* heuristic only —
// query correctness never depends on it, because the sharded index fans
// out by each shard's actual coverage box (the union of the support MBBs
// routed there), which is exact for any routing.
//
// The partition has two layers:
//
//   1. A uniform base grid of exactly `shards` cells tiling the bounding
//      box of the record table (cols = ceil(sqrt(K)); trailing grid
//      cells wrap onto the first shards when K is not a product of the
//      grid sides). With no refinements this is the historical static
//      grid, bit-identical arithmetic included.
//
//   2. An ordered list of *refinements* — the linearized form of a
//      splittable ground-plane tree, grown online by the load-adaptive
//      rebalancer. A split refinement halves one shard's region at a
//      threshold on one axis (records on the high side re-route to a
//      freshly allocated shard id); a merge refinement forwards one
//      shard's whole region to another, retiring the source id. Route()
//      resolves the base cell first and then folds the refinements in
//      order, so each op only re-routes records that would have reached
//      its source shard at that point of the list — exactly a root-to-
//      leaf walk of the split tree, in list form.
//
// Records staged after Build (online ingest) may fall outside the
// original bounds; Route clamps them to the nearest edge cell, so the
// map never has to be rebuilt when the world grows. Refinement lists are
// short in practice (one entry per rebalance op, bounded by the
// rebalancer's max-shards budget), so the fold stays cheap.
class ShardMap {
 public:
  // One refinement op of the splittable tree (see class comment).
  struct Refinement {
    enum class Kind : uint8_t {
      kSplit,  // id == shard && center[axis] >= threshold -> target
      kMerge,  // id == shard -> target
    };
    Kind kind = Kind::kSplit;
    int32_t shard = 0;   // source shard the op refines
    int32_t target = 0;  // split: the new shard id; merge: the destination
    int32_t axis = 0;    // split only: 0 = x, 1 = y
    double threshold = 0.0;  // split only, world coordinates
  };

  // Passthrough map: everything routes to shard 0.
  ShardMap() = default;

  // Tiles `bounds` with the near-square base grid of exactly `shards`
  // cells.
  static ShardMap Build(const geometry::Box2& bounds, int32_t shards) {
    MARS_CHECK_GE(shards, 1);
    ShardMap map;
    map.shards_ = shards;
    map.total_shards_ = shards;
    map.bounds_ = bounds;
    map.cols_ = static_cast<int32_t>(
        std::ceil(std::sqrt(static_cast<double>(shards))));
    map.rows_ = (shards + map.cols_ - 1) / map.cols_;
    return map;
  }

  // Bounding box of the records' ground-plane support MBBs.
  static geometry::Box2 GroundBounds(const std::vector<CoeffRecord>& records) {
    geometry::Box2 bounds;
    for (const CoeffRecord& r : records) {
      bounds.ExtendPoint({r.support_bounds.lo(0), r.support_bounds.lo(1)});
      bounds.ExtendPoint({r.support_bounds.hi(0), r.support_bounds.hi(1)});
    }
    return bounds;
  }

  // Base grid size K. total_shards() counts every id the map has ever
  // allocated (base cells plus split targets), including merged-away ids
  // that no longer receive records.
  int32_t shard_count() const { return shards_; }
  int32_t total_shards() const { return total_shards_; }
  const std::vector<Refinement>& refinements() const { return refinements_; }

  // Splits `shard` at `threshold` on `axis` (0 = x, 1 = y): records
  // whose support center lands on the high side re-route to the new id,
  // which must be the next unallocated one (total_shards()).
  void ApplySplit(int32_t shard, int32_t axis, double threshold,
                  int32_t new_shard) {
    MARS_CHECK_GE(shard, 0);
    MARS_CHECK_LT(shard, total_shards_);
    MARS_CHECK(axis == 0 || axis == 1);
    MARS_CHECK_EQ(new_shard, total_shards_);
    Refinement op;
    op.kind = Refinement::Kind::kSplit;
    op.shard = shard;
    op.target = new_shard;
    op.axis = axis;
    op.threshold = threshold;
    refinements_.push_back(op);
    ++total_shards_;
  }

  // Forwards everything routed to `src` to `dst`, retiring `src`. A
  // later split may not reuse the retired id (ids are append-only), but
  // the op list stays order-correct either way.
  void ApplyMerge(int32_t src, int32_t dst) {
    MARS_CHECK_GE(src, 0);
    MARS_CHECK_LT(src, total_shards_);
    MARS_CHECK_GE(dst, 0);
    MARS_CHECK_LT(dst, total_shards_);
    MARS_CHECK_NE(src, dst);
    Refinement op;
    op.kind = Refinement::Kind::kMerge;
    op.shard = src;
    op.target = dst;
    refinements_.push_back(op);
  }

  // Rewrites the refinement list into an equivalent, shorter one without
  // changing Route() for any record or the id space (total_shards() is an
  // allocation high-water mark and never shrinks). Long-lived fleets
  // accumulate dead refinements as the rebalancer churns — a split whose
  // target was merged straight back, a chain forwarded onward, ops whose
  // source no base cell can reach any more — and every one of them is a
  // branch on every Route() call. Three routing-preserving rewrites run
  // to a fixpoint:
  //
  //   1. dead ops: the source id is unreachable at that point of the
  //      fold, so the op never fires;
  //   2. annihilation: split a->t later merged t->a with nothing in
  //      between touching a or t — the detour cancels exactly;
  //   3. forward collapse: split a->t later merged t->b with nothing in
  //      between touching t or b — the split re-targets b directly and
  //      the merge disappears.
  //
  // Returns the number of ops removed. A compacted list may reference
  // ids whose allocating split was removed, so it no longer replays
  // through ApplySplit — persistence must carry total_shards() and
  // restore via RestoreRefinements.
  int32_t Compact() {
    const size_t before = refinements_.size();
    bool changed = true;
    while (changed) {
      changed = DropDeadOps();
      if (AnnihilateOrCollapse()) changed = true;
    }
    return static_cast<int32_t>(before - refinements_.size());
  }

  // Installs a refinement list restored from persistence, with the
  // allocation high-water mark it was written under. Unlike replaying
  // ApplySplit/ApplyMerge this accepts compacted lists (split targets out
  // of allocation order, or targeting existing ids after a collapse);
  // the caller must have bounds-checked every op against `total_shards`.
  void RestoreRefinements(int32_t total_shards,
                          std::vector<Refinement> ops) {
    MARS_CHECK_GE(total_shards, shards_);
    total_shards_ = total_shards;
    refinements_ = std::move(ops);
  }

  // Shard id for a record (by the ground-plane center of its support
  // MBB): base grid cell, then the refinement fold.
  int32_t Route(const CoeffRecord& record) const {
    if (shards_ == 1 && refinements_.empty()) return 0;
    const double cx =
        0.5 * (record.support_bounds.lo(0) + record.support_bounds.hi(0));
    const double cy =
        0.5 * (record.support_bounds.lo(1) + record.support_bounds.hi(1));
    int32_t id = shards_ == 1 ? 0 : CellAt(cx, cy) % shards_;
    for (const Refinement& op : refinements_) {
      if (id != op.shard) continue;
      if (op.kind == Refinement::Kind::kMerge) {
        id = op.target;
      } else if ((op.axis == 0 ? cx : cy) >= op.threshold) {
        id = op.target;
      }
    }
    return id;
  }

  // Nominal cell of a ground point (clamped into the grid).
  int32_t CellAt(double x, double y) const {
    if (shards_ == 1 || bounds_.IsEmpty()) return 0;
    const int32_t col = Clamp(
        static_cast<int32_t>((x - bounds_.lo(0)) / CellWidth()), cols_);
    const int32_t row = Clamp(
        static_cast<int32_t>((y - bounds_.lo(1)) / CellHeight()), rows_);
    return row * cols_ + col;
  }

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  const geometry::Box2& bounds() const { return bounds_; }

 private:
  // Compact rewrite 1: drop every op whose source id is unreachable at
  // its position in the fold. Reachability is tracked over ids — base
  // cells start reachable, a split adds its target, a merge retires its
  // source and adds its target — so an unreachable source means no
  // record can trigger the op, whatever its geometry.
  bool DropDeadOps() {
    std::vector<char> reachable(static_cast<size_t>(total_shards_), 0);
    for (int32_t s = 0; s < shards_; ++s) reachable[s] = 1;
    std::vector<Refinement> kept;
    kept.reserve(refinements_.size());
    bool changed = false;
    for (const Refinement& op : refinements_) {
      if (!reachable[op.shard]) {
        changed = true;
        continue;
      }
      if (op.kind == Refinement::Kind::kSplit) {
        reachable[op.target] = 1;
      } else {
        reachable[op.shard] = 0;
        reachable[op.target] = 1;
      }
      kept.push_back(op);
    }
    if (changed) refinements_ = std::move(kept);
    return changed;
  }

  // Compact rewrites 2+3: find a split (a->t at i) whose target is next
  // referenced by a merge out of t (t->x at j). If nothing between i and
  // j references a, t or x, the pair is a pure detour: x == a cancels
  // both ops (annihilation); x != a re-targets the split at x and drops
  // the merge (forward collapse). Applies the first such pair found and
  // returns whether one was applied (the Compact loop re-runs to a
  // fixpoint). The in-between exclusions are conservative — an op
  // touching any of the three ids could see different membership once
  // the detour is gone — and cheap: refinement lists are short.
  bool AnnihilateOrCollapse() {
    const auto references = [](const Refinement& op, int32_t id) {
      return op.shard == id || op.target == id;
    };
    for (size_t i = 0; i < refinements_.size(); ++i) {
      const Refinement& split = refinements_[i];
      if (split.kind != Refinement::Kind::kSplit) continue;
      const int32_t a = split.shard;
      const int32_t t = split.target;
      for (size_t j = i + 1; j < refinements_.size(); ++j) {
        const Refinement& merge = refinements_[j];
        if (merge.kind == Refinement::Kind::kMerge && merge.shard == t) {
          const int32_t x = merge.target;
          bool clean = true;
          for (size_t k = i + 1; k < j && clean; ++k) {
            clean = !references(refinements_[k], a) &&
                    !references(refinements_[k], t) &&
                    !references(refinements_[k], x);
          }
          if (!clean) break;
          if (x == a) {
            refinements_.erase(refinements_.begin() +
                               static_cast<ptrdiff_t>(j));
            refinements_.erase(refinements_.begin() +
                               static_cast<ptrdiff_t>(i));
          } else {
            refinements_[i].target = x;
            refinements_.erase(refinements_.begin() +
                               static_cast<ptrdiff_t>(j));
          }
          return true;
        }
        // Any other reference to a or t before the merge breaks the
        // window: this split has no compactable partner.
        if (references(merge, a) || references(merge, t)) break;
      }
    }
    return false;
  }

  static int32_t Clamp(int32_t v, int32_t n) {
    return std::max<int32_t>(0, std::min<int32_t>(v, n - 1));
  }
  double CellWidth() const {
    const double e = bounds_.Extent(0);
    return e > 0 ? e / cols_ : 1.0;
  }
  double CellHeight() const {
    const double e = bounds_.Extent(1);
    return e > 0 ? e / rows_ : 1.0;
  }

  int32_t shards_ = 1;
  int32_t total_shards_ = 1;
  int32_t rows_ = 1;
  int32_t cols_ = 1;
  geometry::Box2 bounds_;
  std::vector<Refinement> refinements_;
};

}  // namespace mars::index

#endif  // MARS_INDEX_SHARD_MAP_H_
