#ifndef MARS_INDEX_SHARD_MAP_H_
#define MARS_INDEX_SHARD_MAP_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "geometry/box.h"
#include "index/record.h"

namespace mars::index {

// Ground-plane shard map: a splittable partition of the ground plane,
// routing each record to exactly one shard by the center of its
// ground-plane support MBB. The map is a *placement* heuristic only —
// query correctness never depends on it, because the sharded index fans
// out by each shard's actual coverage box (the union of the support MBBs
// routed there), which is exact for any routing.
//
// The partition has two layers:
//
//   1. A uniform base grid of exactly `shards` cells tiling the bounding
//      box of the record table (cols = ceil(sqrt(K)); trailing grid
//      cells wrap onto the first shards when K is not a product of the
//      grid sides). With no refinements this is the historical static
//      grid, bit-identical arithmetic included.
//
//   2. An ordered list of *refinements* — the linearized form of a
//      splittable ground-plane tree, grown online by the load-adaptive
//      rebalancer. A split refinement halves one shard's region at a
//      threshold on one axis (records on the high side re-route to a
//      freshly allocated shard id); a merge refinement forwards one
//      shard's whole region to another, retiring the source id. Route()
//      resolves the base cell first and then folds the refinements in
//      order, so each op only re-routes records that would have reached
//      its source shard at that point of the list — exactly a root-to-
//      leaf walk of the split tree, in list form.
//
// Records staged after Build (online ingest) may fall outside the
// original bounds; Route clamps them to the nearest edge cell, so the
// map never has to be rebuilt when the world grows. Refinement lists are
// short in practice (one entry per rebalance op, bounded by the
// rebalancer's max-shards budget), so the fold stays cheap.
class ShardMap {
 public:
  // One refinement op of the splittable tree (see class comment).
  struct Refinement {
    enum class Kind : uint8_t {
      kSplit,  // id == shard && center[axis] >= threshold -> target
      kMerge,  // id == shard -> target
    };
    Kind kind = Kind::kSplit;
    int32_t shard = 0;   // source shard the op refines
    int32_t target = 0;  // split: the new shard id; merge: the destination
    int32_t axis = 0;    // split only: 0 = x, 1 = y
    double threshold = 0.0;  // split only, world coordinates
  };

  // Passthrough map: everything routes to shard 0.
  ShardMap() = default;

  // Tiles `bounds` with the near-square base grid of exactly `shards`
  // cells.
  static ShardMap Build(const geometry::Box2& bounds, int32_t shards) {
    MARS_CHECK_GE(shards, 1);
    ShardMap map;
    map.shards_ = shards;
    map.total_shards_ = shards;
    map.bounds_ = bounds;
    map.cols_ = static_cast<int32_t>(
        std::ceil(std::sqrt(static_cast<double>(shards))));
    map.rows_ = (shards + map.cols_ - 1) / map.cols_;
    return map;
  }

  // Bounding box of the records' ground-plane support MBBs.
  static geometry::Box2 GroundBounds(const std::vector<CoeffRecord>& records) {
    geometry::Box2 bounds;
    for (const CoeffRecord& r : records) {
      bounds.ExtendPoint({r.support_bounds.lo(0), r.support_bounds.lo(1)});
      bounds.ExtendPoint({r.support_bounds.hi(0), r.support_bounds.hi(1)});
    }
    return bounds;
  }

  // Base grid size K. total_shards() counts every id the map has ever
  // allocated (base cells plus split targets), including merged-away ids
  // that no longer receive records.
  int32_t shard_count() const { return shards_; }
  int32_t total_shards() const { return total_shards_; }
  const std::vector<Refinement>& refinements() const { return refinements_; }

  // Splits `shard` at `threshold` on `axis` (0 = x, 1 = y): records
  // whose support center lands on the high side re-route to the new id,
  // which must be the next unallocated one (total_shards()).
  void ApplySplit(int32_t shard, int32_t axis, double threshold,
                  int32_t new_shard) {
    MARS_CHECK_GE(shard, 0);
    MARS_CHECK_LT(shard, total_shards_);
    MARS_CHECK(axis == 0 || axis == 1);
    MARS_CHECK_EQ(new_shard, total_shards_);
    Refinement op;
    op.kind = Refinement::Kind::kSplit;
    op.shard = shard;
    op.target = new_shard;
    op.axis = axis;
    op.threshold = threshold;
    refinements_.push_back(op);
    ++total_shards_;
  }

  // Forwards everything routed to `src` to `dst`, retiring `src`. A
  // later split may not reuse the retired id (ids are append-only), but
  // the op list stays order-correct either way.
  void ApplyMerge(int32_t src, int32_t dst) {
    MARS_CHECK_GE(src, 0);
    MARS_CHECK_LT(src, total_shards_);
    MARS_CHECK_GE(dst, 0);
    MARS_CHECK_LT(dst, total_shards_);
    MARS_CHECK_NE(src, dst);
    Refinement op;
    op.kind = Refinement::Kind::kMerge;
    op.shard = src;
    op.target = dst;
    refinements_.push_back(op);
  }

  // Shard id for a record (by the ground-plane center of its support
  // MBB): base grid cell, then the refinement fold.
  int32_t Route(const CoeffRecord& record) const {
    if (shards_ == 1 && refinements_.empty()) return 0;
    const double cx =
        0.5 * (record.support_bounds.lo(0) + record.support_bounds.hi(0));
    const double cy =
        0.5 * (record.support_bounds.lo(1) + record.support_bounds.hi(1));
    int32_t id = shards_ == 1 ? 0 : CellAt(cx, cy) % shards_;
    for (const Refinement& op : refinements_) {
      if (id != op.shard) continue;
      if (op.kind == Refinement::Kind::kMerge) {
        id = op.target;
      } else if ((op.axis == 0 ? cx : cy) >= op.threshold) {
        id = op.target;
      }
    }
    return id;
  }

  // Nominal cell of a ground point (clamped into the grid).
  int32_t CellAt(double x, double y) const {
    if (shards_ == 1 || bounds_.IsEmpty()) return 0;
    const int32_t col = Clamp(
        static_cast<int32_t>((x - bounds_.lo(0)) / CellWidth()), cols_);
    const int32_t row = Clamp(
        static_cast<int32_t>((y - bounds_.lo(1)) / CellHeight()), rows_);
    return row * cols_ + col;
  }

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  const geometry::Box2& bounds() const { return bounds_; }

 private:
  static int32_t Clamp(int32_t v, int32_t n) {
    return std::max<int32_t>(0, std::min<int32_t>(v, n - 1));
  }
  double CellWidth() const {
    const double e = bounds_.Extent(0);
    return e > 0 ? e / cols_ : 1.0;
  }
  double CellHeight() const {
    const double e = bounds_.Extent(1);
    return e > 0 ? e / rows_ : 1.0;
  }

  int32_t shards_ = 1;
  int32_t total_shards_ = 1;
  int32_t rows_ = 1;
  int32_t cols_ = 1;
  geometry::Box2 bounds_;
  std::vector<Refinement> refinements_;
};

}  // namespace mars::index

#endif  // MARS_INDEX_SHARD_MAP_H_
