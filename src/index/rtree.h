#ifndef MARS_INDEX_RTREE_H_
#define MARS_INDEX_RTREE_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <queue>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "geometry/box.h"

namespace mars::index {

// Split algorithm for overflowing nodes.
enum class SplitPolicy {
  kGuttmanQuadratic,  // Guttman 1984 quadratic split (classic R-tree)
  kRStar,             // Beckmann et al. 1990 axis/margin split (R*-tree)
};

// Tuning knobs. The defaults mirror the paper's experimental setup: a 4 KB
// page holding up to 20 entries (Sec. VII-D).
struct RTreeOptions {
  int32_t page_size_bytes = 4096;
  int32_t node_capacity = 20;
  // Minimum entries per node after a split, as a fraction of capacity.
  // 40% is the R*-tree recommendation.
  double min_fill_fraction = 0.4;
  SplitPolicy split_policy = SplitPolicy::kRStar;
  // R*-tree forced reinsertion: on the first overflow per level per
  // insertion, re-insert the 30% of entries farthest from the node center
  // instead of splitting.
  bool forced_reinsert = true;
  double reinsert_fraction = 0.3;
};

// Relaxed atomic counter that behaves like a plain int64_t at the call
// sites (increment, add, read, copy). Queries of a const-shared tree bump
// these counters concurrently; relaxed ordering suffices because the
// counters carry no synchronization — they are pure statistics.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(int64_t v) : v_(v) {}  // NOLINT: implicit by design
  RelaxedCounter(const RelaxedCounter& o) : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  int64_t load() const { return v_.load(std::memory_order_relaxed); }
  operator int64_t() const { return load(); }  // NOLINT: implicit by design

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(int64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<int64_t> v_{0};
};

// Cumulative access counters, the "I/O cost" metric of the paper's
// evaluation: every node visited during a query or update counts as one
// page access. Query-side counters are relaxed atomics so a const tree can
// be shared across the fleet's worker threads; per-exchange accounting
// uses the per-call counts the query methods return, never deltas of
// these cumulative counters (deltas would interleave across clients).
struct RTreeStats {
  RelaxedCounter query_node_accesses;
  RelaxedCounter insert_node_accesses;
  RelaxedCounter queries;
  RelaxedCounter splits;
  RelaxedCounter reinserts;
};

// In-memory R-tree / R*-tree over axis-aligned boxes in `Dim` dimensions
// with int64 payloads. MARS instantiates it with Dim = 2 (object MBRs for
// the naive system), Dim = 3 (the paper's x-y-w experimental index), and
// Dim = 4 (the full x-y-z-w index of Sec. VI-B).
//
// Not thread-safe; queries are logically const but mutate the access
// counters (declared mutable).
template <size_t Dim>
class RTree {
 public:
  using BoxT = geometry::Box<Dim>;

  struct Entry {
    BoxT box;
    int64_t value = 0;
  };

  explicit RTree(RTreeOptions options = RTreeOptions())
      : options_(options) {
    MARS_CHECK_GE(options_.node_capacity, 4);
    min_fill_ = std::max<int32_t>(
        2, static_cast<int32_t>(options_.node_capacity *
                                options_.min_fill_fraction));
    root_ = std::make_unique<Node>(/*is_leaf=*/true);
  }

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  int64_t size() const { return size_; }
  int32_t height() const { return height_; }
  const RTreeOptions& options() const { return options_; }

  const RTreeStats& stats() const { return stats_; }
  void ResetStats() { stats_ = RTreeStats(); }

  // Inserts one entry. Duplicate (box, value) pairs are allowed.
  void Insert(const BoxT& box, int64_t value) {
    reinserted_levels_.assign(height_, false);
    InsertEntry(Entry{box, value}, /*target_level=*/0);
    ++size_;
  }

  // Sort-Tile-Recursive bulk loading (Leutenegger et al. 1997): packs the
  // entries into full nodes tiled along the space-sorted axes. Roughly an
  // order of magnitude faster to build than repeated insertion and at
  // least as cheap to query on static data; MARS's server-side indexes
  // are static, so the access methods build this way.
  static RTree BulkLoad(std::vector<Entry> entries,
                        RTreeOptions options = RTreeOptions()) {
    RTree tree(options);
    if (entries.empty()) return tree;
    tree.size_ = static_cast<int64_t>(entries.size());

    // Pack leaves.
    std::vector<std::unique_ptr<Node>> level = PackLeaves(
        std::move(entries), options.node_capacity, tree.min_fill_);
    int32_t height = 1;
    // Pack internal levels until one root remains.
    while (level.size() > 1) {
      level = PackInternal(std::move(level), options.node_capacity,
                           tree.min_fill_);
      ++height;
    }
    tree.root_ = std::move(level.front());
    tree.height_ = height;
    tree.reinserted_levels_.assign(height, false);
    return tree;
  }

  // Removes one entry matching (box, value) exactly; returns false if no
  // such entry exists. Underfull nodes are condensed by reinsertion
  // (Guttman's CondenseTree).
  bool Remove(const BoxT& box, int64_t value) {
    std::vector<Entry> orphans;
    std::vector<std::unique_ptr<Node>> orphan_nodes;
    const bool removed = RemoveRec(root_.get(), box, value, 0, &orphans,
                                   &orphan_nodes);
    if (!removed) return false;
    --size_;
    // Root adjustments: collapse a non-leaf root with a single child.
    while (!root_->is_leaf && root_->children.size() == 1) {
      std::unique_ptr<Node> child = std::move(root_->children[0]);
      root_ = std::move(child);
      --height_;
    }
    if (!root_->is_leaf && root_->children.empty()) {
      root_ = std::make_unique<Node>(/*is_leaf=*/true);
      height_ = 1;
    }
    // Reinsert orphaned entries / subtrees.
    for (const Entry& e : orphans) {
      reinserted_levels_.assign(height_, false);
      InsertEntry(e, 0);
    }
    for (std::unique_ptr<Node>& node : orphan_nodes) {
      ReinsertSubtree(std::move(node));
    }
    return true;
  }

  // Appends the values of all entries whose box intersects `window`.
  // Returns the node accesses of this call (also added to the cumulative
  // stats — with a single atomic add, so concurrent queries on a shared
  // tree stay cheap and the per-call count stays exact).
  int64_t Query(const BoxT& window, std::vector<int64_t>* out) const {
    ++stats_.queries;
    int64_t accesses = 0;
    QueryRec(root_.get(), window, out, &accesses);
    stats_.query_node_accesses += accesses;
    return accesses;
  }

  // Appends (box, value) pairs of all entries whose box intersects
  // `window`. Returns the node accesses of this call.
  int64_t QueryEntries(const BoxT& window, std::vector<Entry>* out) const {
    ++stats_.queries;
    int64_t accesses = 0;
    QueryEntriesRec(root_.get(), window, out, &accesses);
    stats_.query_node_accesses += accesses;
    return accesses;
  }

  // Bounding box of the whole tree (empty box when the tree is empty).
  BoxT Bounds() const { return root_->mbr; }

  // k-nearest-neighbour query (best-first / Hjaltason & Samet): the k
  // entries whose boxes are nearest to `point` (minimum box distance),
  // nearest first. Ties are broken arbitrarily. Counts node accesses like
  // Query and returns this call's count.
  int64_t NearestNeighbors(const std::array<double, Dim>& point, int32_t k,
                           std::vector<Entry>* out) const {
    ++stats_.queries;
    out->clear();
    int64_t accesses = 0;
    if (size_ == 0 || k <= 0) return accesses;

    // Min-heap over (distance², node or entry).
    struct HeapItem {
      double distance = 0.0;
      const Node* node = nullptr;   // set for subtrees
      const Entry* entry = nullptr;  // set for leaf entries
      bool operator>(const HeapItem& o) const {
        return distance > o.distance;
      }
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>> heap;
    heap.push(HeapItem{MinDistanceSquared(root_->mbr, point), root_.get(),
                       nullptr});
    while (!heap.empty() && static_cast<int32_t>(out->size()) < k) {
      const HeapItem item = heap.top();
      heap.pop();
      if (item.entry != nullptr) {
        out->push_back(*item.entry);
        continue;
      }
      ++accesses;
      const Node* node = item.node;
      if (node->is_leaf) {
        for (const Entry& e : node->entries) {
          heap.push(HeapItem{MinDistanceSquared(e.box, point), nullptr, &e});
        }
      } else {
        for (const auto& child : node->children) {
          heap.push(HeapItem{MinDistanceSquared(child->mbr, point),
                             child.get(), nullptr});
        }
      }
    }
    stats_.query_node_accesses += accesses;
    return accesses;
  }

  // Squared minimum distance from `point` to `box` (0 when inside).
  static double MinDistanceSquared(const BoxT& box,
                                   const std::array<double, Dim>& point) {
    double d2 = 0.0;
    for (size_t k = 0; k < Dim; ++k) {
      double d = 0.0;
      if (point[k] < box.lo(k)) {
        d = box.lo(k) - point[k];
      } else if (point[k] > box.hi(k)) {
        d = point[k] - box.hi(k);
      }
      d2 += d * d;
    }
    return d2;
  }

  // Structural invariants: fanout bounds, MBR containment and tightness,
  // uniform leaf depth, size consistency. Used by tests.
  common::Status CheckInvariants() const {
    int64_t counted = 0;
    MARS_RETURN_IF_ERROR(CheckNode(root_.get(), /*is_root=*/true, 0,
                                   &counted));
    if (counted != size_) {
      return common::InternalError(
          "size mismatch: counted " + std::to_string(counted) +
          " entries, size() = " + std::to_string(size_));
    }
    return common::OkStatus();
  }

  // Flattened snapshot of the tree for page-based serialization (see
  // src/index/paged_index.h): nodes in preorder, root at index 0, internal
  // nodes referencing children by flat index alongside their MBRs. An empty
  // tree flattens to its single empty root leaf.
  struct FlatNode {
    bool is_leaf = true;
    BoxT mbr;
    std::vector<Entry> entries;     // leaf payload
    std::vector<int32_t> children;  // internal: indices into the flat list
    std::vector<BoxT> child_mbrs;   // parallel to children
  };

  std::vector<FlatNode> Flatten() const {
    std::vector<FlatNode> out;
    FlattenRec(root_.get(), &out);
    return out;
  }

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}

    bool is_leaf;
    BoxT mbr;  // tight bounds of the node's entries / children
    // Leaf payload.
    std::vector<Entry> entries;
    // Internal payload; children[i]'s bounds are children[i]->mbr.
    std::vector<std::unique_ptr<Node>> children;

    int32_t count() const {
      return is_leaf ? static_cast<int32_t>(entries.size())
                     : static_cast<int32_t>(children.size());
    }

    void RecomputeMbr() {
      mbr = BoxT();
      if (is_leaf) {
        for (const Entry& e : entries) mbr.Extend(e.box);
      } else {
        for (const auto& c : children) mbr.Extend(c->mbr);
      }
    }
  };

  // --- Bulk loading ------------------------------------------------------

  // Recursively sorts items[lo, hi) into Sort-Tile-Recursive order:
  // slabbed along each axis in turn so that consecutive runs of
  // `capacity` items form spatially tight tiles.
  template <typename Item, typename GetBox>
  static void StrSortRange(std::vector<Item>& items, size_t lo, size_t hi,
                           size_t axis, int32_t capacity, GetBox get_box) {
    std::sort(items.begin() + static_cast<int64_t>(lo),
              items.begin() + static_cast<int64_t>(hi),
              [axis, &get_box](const Item& a, const Item& b) {
                return get_box(a).Center()[axis] <
                       get_box(b).Center()[axis];
              });
    if (axis + 1 == Dim) return;
    const size_t n = hi - lo;
    const size_t cap = static_cast<size_t>(capacity);
    const size_t pages = (n + cap - 1) / cap;
    const double remaining_dims = static_cast<double>(Dim - axis);
    const size_t slabs = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(std::pow(static_cast<double>(pages),
                                  1.0 / remaining_dims))));
    const size_t per_slab = ((pages + slabs - 1) / slabs) * cap;
    for (size_t s = lo; s < hi; s += per_slab) {
      StrSortRange(items, s, std::min(hi, s + per_slab), axis + 1, capacity,
                   get_box);
    }
  }

  // Chunk boundaries over `n` items such that every chunk has between
  // min_fill and capacity items (the final two chunks are rebalanced).
  static std::vector<size_t> ChunkSizes(size_t n, int32_t capacity,
                                        int32_t min_fill) {
    std::vector<size_t> sizes;
    const size_t cap = static_cast<size_t>(capacity);
    size_t left = n;
    while (left > 0) {
      const size_t take = std::min(left, cap);
      sizes.push_back(take);
      left -= take;
    }
    if (sizes.size() >= 2 &&
        sizes.back() < static_cast<size_t>(min_fill)) {
      // Steal from the penultimate chunk to satisfy the fill invariant.
      const size_t need = static_cast<size_t>(min_fill) - sizes.back();
      sizes[sizes.size() - 2] -= need;
      sizes.back() += need;
    }
    return sizes;
  }

  static std::vector<std::unique_ptr<Node>> PackLeaves(
      std::vector<Entry> entries, int32_t capacity, int32_t min_fill) {
    StrSortRange(entries, 0, entries.size(), 0, capacity,
                 [](const Entry& e) -> const BoxT& { return e.box; });
    std::vector<std::unique_ptr<Node>> nodes;
    size_t pos = 0;
    for (size_t count : ChunkSizes(entries.size(), capacity, min_fill)) {
      auto node = std::make_unique<Node>(/*is_leaf=*/true);
      node->entries.assign(entries.begin() + static_cast<int64_t>(pos),
                           entries.begin() + static_cast<int64_t>(pos + count));
      node->RecomputeMbr();
      nodes.push_back(std::move(node));
      pos += count;
    }
    return nodes;
  }

  static std::vector<std::unique_ptr<Node>> PackInternal(
      std::vector<std::unique_ptr<Node>> children, int32_t capacity,
      int32_t min_fill) {
    StrSortRange(children, 0, children.size(), 0, capacity,
                 [](const std::unique_ptr<Node>& n) -> const BoxT& {
                   return n->mbr;
                 });
    std::vector<std::unique_ptr<Node>> nodes;
    size_t pos = 0;
    for (size_t count : ChunkSizes(children.size(), capacity, min_fill)) {
      auto node = std::make_unique<Node>(/*is_leaf=*/false);
      for (size_t i = 0; i < count; ++i) {
        node->children.push_back(std::move(children[pos + i]));
      }
      node->RecomputeMbr();
      nodes.push_back(std::move(node));
      pos += count;
    }
    return nodes;
  }

  // --- Insertion -------------------------------------------------------

  // Inserts `entry` at `target_level` (0 = leaf). Levels are counted from
  // the leaves up, so subtree reinsertion can target the right depth.
  void InsertEntry(const Entry& entry, int32_t target_level) {
    std::vector<Node*> path;
    Node* node = ChoosePath(entry.box, target_level, &path);
    ++stats_.insert_node_accesses;
    node->entries.push_back(entry);
    node->mbr.Extend(entry.box);
    HandleOverflowUp(path);
  }

  // Walks from the root to a node at `target_level`, recording the path.
  // For target_level 0 this is ChooseLeaf/ChooseSubtree.
  Node* ChoosePath(const BoxT& box, int32_t target_level,
                   std::vector<Node*>* path) {
    Node* node = root_.get();
    int32_t level = height_ - 1;  // root level (leaves are level 0)
    path->push_back(node);
    while (level > target_level) {
      ++stats_.insert_node_accesses;
      Node* next = ChooseChild(node, box, level);
      node = next;
      --level;
      path->push_back(node);
    }
    return node;
  }

  Node* ChooseChild(Node* node, const BoxT& box, int32_t node_level) {
    MARS_CHECK(!node->is_leaf);
    // R*-tree rule: when children are leaves, minimize overlap enlargement;
    // otherwise minimize volume enlargement. Ties: volume enlargement, then
    // volume.
    const bool children_are_leaves = (node_level == 1);
    double best_primary = std::numeric_limits<double>::max();
    double best_secondary = std::numeric_limits<double>::max();
    double best_tertiary = std::numeric_limits<double>::max();
    Node* best = nullptr;
    for (const auto& child : node->children) {
      const double enlargement = child->mbr.Enlargement(box);
      const double volume = child->mbr.Volume();
      double primary, secondary, tertiary;
      if (options_.split_policy == SplitPolicy::kRStar &&
          children_are_leaves) {
        const BoxT grown = child->mbr.Union(box);
        double overlap_delta = 0.0;
        for (const auto& other : node->children) {
          if (other.get() == child.get()) continue;
          overlap_delta += grown.OverlapVolume(other->mbr) -
                           child->mbr.OverlapVolume(other->mbr);
        }
        primary = overlap_delta;
        secondary = enlargement;
        tertiary = volume;
      } else {
        primary = enlargement;
        secondary = volume;
        tertiary = 0.0;
      }
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           tertiary < best_tertiary)) {
        best_primary = primary;
        best_secondary = secondary;
        best_tertiary = tertiary;
        best = child.get();
      }
    }
    MARS_CHECK(best != nullptr);
    return best;
  }

  // Propagates MBR updates and resolves overflows along `path` (root
  // first, inserted node last).
  void HandleOverflowUp(std::vector<Node*>& path) {
    for (int32_t i = static_cast<int32_t>(path.size()) - 1; i >= 0; --i) {
      Node* node = path[i];
      node->RecomputeMbr();
      if (node->count() <= options_.node_capacity) continue;
      const int32_t level = static_cast<int32_t>(path.size()) - 1 - i;
      Node* parent = (i == 0) ? nullptr : path[i - 1];
      if (options_.split_policy == SplitPolicy::kRStar &&
          options_.forced_reinsert && parent != nullptr &&
          level < static_cast<int32_t>(reinserted_levels_.size()) &&
          !reinserted_levels_[level]) {
        reinserted_levels_[level] = true;
        ForcedReinsert(node, parent, level);
        // Reinsertion may have split other parts of the tree; recompute the
        // ancestors' boxes and stop (reinsertion handled the overflow).
        for (int32_t k = i - 1; k >= 0; --k) path[k]->RecomputeMbr();
        return;
      }
      SplitNode(node, parent, i, path);
    }
  }

  // Removes the `reinsert_fraction` entries farthest from the node's
  // center and re-inserts them from the top.
  void ForcedReinsert(Node* node, Node* parent, int32_t level) {
    ++stats_.reinserts;
    const int32_t remove_count = std::max<int32_t>(
        1, static_cast<int32_t>(node->count() * options_.reinsert_fraction));
    const auto center = node->mbr.Center();
    auto center_distance = [&center](const BoxT& b) {
      const auto c = b.Center();
      double d = 0.0;
      for (size_t k = 0; k < Dim; ++k) {
        const double diff = c[k] - center[k];
        d += diff * diff;
      }
      return d;
    };

    if (node->is_leaf) {
      std::sort(node->entries.begin(), node->entries.end(),
                [&](const Entry& a, const Entry& b) {
                  return center_distance(a.box) > center_distance(b.box);
                });
      std::vector<Entry> evicted(node->entries.begin(),
                                 node->entries.begin() + remove_count);
      node->entries.erase(node->entries.begin(),
                          node->entries.begin() + remove_count);
      node->RecomputeMbr();
      parent->RecomputeMbr();
      for (const Entry& e : evicted) {
        InsertEntry(e, level);
      }
    } else {
      std::sort(node->children.begin(), node->children.end(),
                [&](const std::unique_ptr<Node>& a,
                    const std::unique_ptr<Node>& b) {
                  return center_distance(a->mbr) > center_distance(b->mbr);
                });
      std::vector<std::unique_ptr<Node>> evicted;
      for (int32_t k = 0; k < remove_count; ++k) {
        evicted.push_back(std::move(node->children[k]));
      }
      node->children.erase(node->children.begin(),
                           node->children.begin() + remove_count);
      node->RecomputeMbr();
      parent->RecomputeMbr();
      // Evicted children live one level below the overflowing node.
      for (std::unique_ptr<Node>& child : evicted) {
        InsertSubtree(std::move(child), level - 1);
      }
    }
  }

  // --- Splitting -------------------------------------------------------

  // Splits `node` in place; the new sibling is attached to `parent` (or a
  // new root is grown). `path_index`/`path` let the caller's loop continue
  // correctly after root growth.
  void SplitNode(Node* node, Node* parent, int32_t path_index,
                 std::vector<Node*>& path) {
    ++stats_.splits;
    std::unique_ptr<Node> sibling =
        options_.split_policy == SplitPolicy::kRStar ? RStarSplit(node)
                                                     : QuadraticSplit(node);
    node->RecomputeMbr();
    sibling->RecomputeMbr();
    if (parent == nullptr) {
      auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
      auto old_root = std::move(root_);
      new_root->children.push_back(std::move(old_root));
      new_root->children.push_back(std::move(sibling));
      new_root->RecomputeMbr();
      root_ = std::move(new_root);
      ++height_;
      reinserted_levels_.push_back(false);
      (void)path_index;
      (void)path;
    } else {
      parent->children.push_back(std::move(sibling));
      parent->RecomputeMbr();
    }
  }

  // Collects the boxes of a node's members (entries or children).
  std::vector<BoxT> MemberBoxes(const Node* node) const {
    std::vector<BoxT> boxes;
    boxes.reserve(node->count());
    if (node->is_leaf) {
      for (const Entry& e : node->entries) boxes.push_back(e.box);
    } else {
      for (const auto& c : node->children) boxes.push_back(c->mbr);
    }
    return boxes;
  }

  // Reorders the node's members by `order` (a permutation).
  void Permute(Node* node, const std::vector<int32_t>& order) {
    if (node->is_leaf) {
      std::vector<Entry> tmp;
      tmp.reserve(order.size());
      for (int32_t i : order) tmp.push_back(node->entries[i]);
      node->entries = std::move(tmp);
    } else {
      std::vector<std::unique_ptr<Node>> tmp;
      tmp.reserve(order.size());
      for (int32_t i : order) tmp.push_back(std::move(node->children[i]));
      node->children = std::move(tmp);
    }
  }

  // Moves members [split_at, end) of `node` into a new sibling.
  std::unique_ptr<Node> SplitOffTail(Node* node, int32_t split_at) {
    auto sibling = std::make_unique<Node>(node->is_leaf);
    if (node->is_leaf) {
      sibling->entries.assign(
          std::make_move_iterator(node->entries.begin() + split_at),
          std::make_move_iterator(node->entries.end()));
      node->entries.resize(split_at);
    } else {
      for (size_t i = split_at; i < node->children.size(); ++i) {
        sibling->children.push_back(std::move(node->children[i]));
      }
      node->children.resize(split_at);
    }
    return sibling;
  }

  // R*-tree split: choose the axis with minimum total margin over all
  // min-fill-respecting distributions (considering both lo and hi
  // sortings), then the distribution with minimum overlap (ties: volume).
  std::unique_ptr<Node> RStarSplit(Node* node) {
    const std::vector<BoxT> boxes = MemberBoxes(node);
    const int32_t total = static_cast<int32_t>(boxes.size());
    const int32_t min_fill = min_fill_;

    double best_axis_margin = std::numeric_limits<double>::max();
    size_t best_axis = 0;
    bool best_axis_use_hi = false;

    for (size_t axis = 0; axis < Dim; ++axis) {
      for (const bool use_hi : {false, true}) {
        std::vector<int32_t> order(total);
        std::iota(order.begin(), order.end(), 0);
        SortOrder(boxes, axis, use_hi, &order);
        double margin_sum = 0.0;
        for (int32_t k = min_fill; k <= total - min_fill; ++k) {
          BoxT left, right;
          for (int32_t i = 0; i < k; ++i) left.Extend(boxes[order[i]]);
          for (int32_t i = k; i < total; ++i) right.Extend(boxes[order[i]]);
          margin_sum += left.Margin() + right.Margin();
        }
        if (margin_sum < best_axis_margin) {
          best_axis_margin = margin_sum;
          best_axis = axis;
          best_axis_use_hi = use_hi;
        }
      }
    }

    std::vector<int32_t> order(total);
    std::iota(order.begin(), order.end(), 0);
    SortOrder(boxes, best_axis, best_axis_use_hi, &order);

    double best_overlap = std::numeric_limits<double>::max();
    double best_volume = std::numeric_limits<double>::max();
    int32_t best_k = min_fill;
    for (int32_t k = min_fill; k <= total - min_fill; ++k) {
      BoxT left, right;
      for (int32_t i = 0; i < k; ++i) left.Extend(boxes[order[i]]);
      for (int32_t i = k; i < total; ++i) right.Extend(boxes[order[i]]);
      const double overlap = left.OverlapVolume(right);
      const double volume = left.Volume() + right.Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && volume < best_volume)) {
        best_overlap = overlap;
        best_volume = volume;
        best_k = k;
      }
    }

    Permute(node, order);
    return SplitOffTail(node, best_k);
  }

  static void SortOrder(const std::vector<BoxT>& boxes, size_t axis,
                        bool use_hi, std::vector<int32_t>* order) {
    std::sort(order->begin(), order->end(), [&](int32_t a, int32_t b) {
      const double ka = use_hi ? boxes[a].hi(axis) : boxes[a].lo(axis);
      const double kb = use_hi ? boxes[b].hi(axis) : boxes[b].lo(axis);
      if (ka != kb) return ka < kb;
      // Secondary key keeps the sort total.
      return use_hi ? boxes[a].lo(axis) < boxes[b].lo(axis)
                    : boxes[a].hi(axis) < boxes[b].hi(axis);
    });
  }

  // Guttman quadratic split: pick the pair of seeds wasting the most area,
  // then greedily assign by strongest preference.
  std::unique_ptr<Node> QuadraticSplit(Node* node) {
    const std::vector<BoxT> boxes = MemberBoxes(node);
    const int32_t total = static_cast<int32_t>(boxes.size());

    int32_t seed_a = 0, seed_b = 1;
    double worst_waste = -std::numeric_limits<double>::max();
    for (int32_t i = 0; i < total; ++i) {
      for (int32_t j = i + 1; j < total; ++j) {
        const double waste = boxes[i].Union(boxes[j]).Volume() -
                             boxes[i].Volume() - boxes[j].Volume();
        if (waste > worst_waste) {
          worst_waste = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }

    std::vector<int32_t> group_a = {seed_a};
    std::vector<int32_t> group_b = {seed_b};
    BoxT mbr_a = boxes[seed_a];
    BoxT mbr_b = boxes[seed_b];
    std::vector<bool> assigned(total, false);
    assigned[seed_a] = assigned[seed_b] = true;
    int32_t remaining = total - 2;

    while (remaining > 0) {
      // Force-assign when one group must take all the rest to reach
      // min_fill.
      if (static_cast<int32_t>(group_a.size()) + remaining <= min_fill_) {
        for (int32_t i = 0; i < total; ++i) {
          if (!assigned[i]) {
            group_a.push_back(i);
            mbr_a.Extend(boxes[i]);
            assigned[i] = true;
          }
        }
        remaining = 0;
        break;
      }
      if (static_cast<int32_t>(group_b.size()) + remaining <= min_fill_) {
        for (int32_t i = 0; i < total; ++i) {
          if (!assigned[i]) {
            group_b.push_back(i);
            mbr_b.Extend(boxes[i]);
            assigned[i] = true;
          }
        }
        remaining = 0;
        break;
      }
      // PickNext: the unassigned box with the largest preference
      // difference.
      int32_t pick = -1;
      double max_diff = -1.0;
      double pick_da = 0.0, pick_db = 0.0;
      for (int32_t i = 0; i < total; ++i) {
        if (assigned[i]) continue;
        const double da = mbr_a.Enlargement(boxes[i]);
        const double db = mbr_b.Enlargement(boxes[i]);
        const double diff = std::abs(da - db);
        if (diff > max_diff) {
          max_diff = diff;
          pick = i;
          pick_da = da;
          pick_db = db;
        }
      }
      MARS_CHECK_GE(pick, 0);
      const bool to_a =
          pick_da < pick_db ||
          (pick_da == pick_db && (mbr_a.Volume() < mbr_b.Volume() ||
                                  (mbr_a.Volume() == mbr_b.Volume() &&
                                   group_a.size() <= group_b.size())));
      if (to_a) {
        group_a.push_back(pick);
        mbr_a.Extend(boxes[pick]);
      } else {
        group_b.push_back(pick);
        mbr_b.Extend(boxes[pick]);
      }
      assigned[pick] = true;
      --remaining;
    }

    std::vector<int32_t> order = group_a;
    order.insert(order.end(), group_b.begin(), group_b.end());
    Permute(node, order);
    return SplitOffTail(node, static_cast<int32_t>(group_a.size()));
  }

  // --- Subtree reinsertion (for Remove / forced reinsert) ---------------

  // Inserts a whole subtree so that its leaves end up at leaf level.
  void InsertSubtree(std::unique_ptr<Node> subtree, int32_t subtree_level) {
    std::vector<Node*> path;
    Node* target = ChoosePath(subtree->mbr, subtree_level + 1, &path);
    MARS_CHECK(!target->is_leaf);
    target->children.push_back(std::move(subtree));
    HandleOverflowUp(path);
  }

  void ReinsertSubtree(std::unique_ptr<Node> subtree) {
    const int32_t subtree_height = SubtreeHeight(subtree.get());
    if (subtree_height >= height_) {
      // Tree shrank below the orphan's height: reinsert entry by entry.
      std::vector<Entry> entries;
      CollectEntries(subtree.get(), &entries);
      for (const Entry& e : entries) {
        reinserted_levels_.assign(height_, false);
        InsertEntry(e, 0);
      }
      return;
    }
    reinserted_levels_.assign(height_, false);
    InsertSubtree(std::move(subtree), subtree_height - 1);
  }

  static int32_t SubtreeHeight(const Node* node) {
    int32_t h = 1;
    while (!node->is_leaf) {
      node = node->children.front().get();
      ++h;
    }
    return h;
  }

  static void CollectEntries(const Node* node, std::vector<Entry>* out) {
    if (node->is_leaf) {
      out->insert(out->end(), node->entries.begin(), node->entries.end());
    } else {
      for (const auto& c : node->children) CollectEntries(c.get(), out);
    }
  }

  // --- Removal ---------------------------------------------------------

  bool RemoveRec(Node* node, const BoxT& box, int64_t value, int32_t depth,
                 std::vector<Entry>* orphans,
                 std::vector<std::unique_ptr<Node>>* orphan_nodes) {
    if (node->is_leaf) {
      for (size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].value == value && node->entries[i].box == box) {
          node->entries.erase(node->entries.begin() + i);
          node->RecomputeMbr();
          return true;
        }
      }
      return false;
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      Node* child = node->children[i].get();
      if (!child->mbr.Intersects(box)) continue;
      if (RemoveRec(child, box, value, depth + 1, orphans, orphan_nodes)) {
        if (child->count() < min_fill_ && node->children.size() > 1) {
          // Condense: orphan the underfull child for reinsertion.
          std::unique_ptr<Node> removed = std::move(node->children[i]);
          node->children.erase(node->children.begin() + i);
          if (removed->is_leaf) {
            orphans->insert(orphans->end(), removed->entries.begin(),
                            removed->entries.end());
          } else {
            for (auto& grandchild : removed->children) {
              orphan_nodes->push_back(std::move(grandchild));
            }
          }
        }
        node->RecomputeMbr();
        return true;
      }
    }
    return false;
  }

  // --- Query -----------------------------------------------------------

  void QueryRec(const Node* node, const BoxT& window,
                std::vector<int64_t>* out, int64_t* accesses) const {
    ++*accesses;
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        if (e.box.Intersects(window)) out->push_back(e.value);
      }
      return;
    }
    for (const auto& child : node->children) {
      if (child->mbr.Intersects(window)) {
        QueryRec(child.get(), window, out, accesses);
      }
    }
  }

  void QueryEntriesRec(const Node* node, const BoxT& window,
                       std::vector<Entry>* out, int64_t* accesses) const {
    ++*accesses;
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        if (e.box.Intersects(window)) out->push_back(e);
      }
      return;
    }
    for (const auto& child : node->children) {
      if (child->mbr.Intersects(window)) {
        QueryEntriesRec(child.get(), window, out, accesses);
      }
    }
  }

  // Appends `node` (then its subtree, preorder) to *out; returns the flat
  // index of `node`. Indexes instead of references throughout: the vector
  // reallocates as it grows.
  int32_t FlattenRec(const Node* node, std::vector<FlatNode>* out) const {
    const int32_t index = static_cast<int32_t>(out->size());
    out->emplace_back();
    (*out)[index].is_leaf = node->is_leaf;
    (*out)[index].mbr = node->mbr;
    (*out)[index].entries = node->entries;
    if (!node->is_leaf) {
      std::vector<int32_t> children;
      std::vector<BoxT> child_mbrs;
      children.reserve(node->children.size());
      child_mbrs.reserve(node->children.size());
      for (const auto& child : node->children) {
        child_mbrs.push_back(child->mbr);
        children.push_back(FlattenRec(child.get(), out));
      }
      (*out)[index].children = std::move(children);
      (*out)[index].child_mbrs = std::move(child_mbrs);
    }
    return index;
  }

  // --- Invariants ------------------------------------------------------

  common::Status CheckNode(const Node* node, bool is_root, int32_t depth,
                           int64_t* counted) const {
    const int32_t count = node->count();
    if (count > options_.node_capacity) {
      return common::InternalError("node exceeds capacity");
    }
    if (!is_root && count < min_fill_) {
      return common::InternalError("non-root node underfull: " +
                                   std::to_string(count));
    }
    if (is_root && !node->is_leaf && count < 2) {
      return common::InternalError("internal root has < 2 children");
    }
    BoxT recomputed;
    if (node->is_leaf) {
      if (depth != height_ - 1) {
        return common::InternalError("leaf at wrong depth");
      }
      *counted += node->entries.size();
      for (const Entry& e : node->entries) recomputed.Extend(e.box);
    } else {
      for (const auto& child : node->children) {
        recomputed.Extend(child->mbr);
        MARS_RETURN_IF_ERROR(
            CheckNode(child.get(), /*is_root=*/false, depth + 1, counted));
      }
    }
    if (count > 0 && !(recomputed == node->mbr)) {
      return common::InternalError("stale node MBR");
    }
    return common::OkStatus();
  }

  RTreeOptions options_;
  int32_t min_fill_ = 2;
  std::unique_ptr<Node> root_;
  int64_t size_ = 0;
  int32_t height_ = 1;
  // Per-insertion flags: has forced reinsertion already run at level i?
  std::vector<bool> reinserted_levels_;
  mutable RTreeStats stats_;
};

using RTree2 = RTree<2>;
using RTree3 = RTree<3>;
using RTree4 = RTree<4>;

}  // namespace mars::index

#endif  // MARS_INDEX_RTREE_H_
