#ifndef MARS_INDEX_PAGED_INDEX_H_
#define MARS_INDEX_PAGED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/box.h"
#include "index/access.h"
#include "index/record.h"
#include "index/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace mars::index {

// R*-tree node storage on pages: the tree is STR-bulk-loaded in RAM exactly
// as the in-memory access methods build it, then flattened and written one
// node per logical page array (children referenced by page id instead of
// pointer). Queries traverse by page id through a BufferPool, so the
// paper's query_node_accesses metric becomes real page fetches with a
// hit/miss split — while visiting exactly the nodes the pointer-chasing
// traversal would, keeping node-access counts bit-identical to `--store
// memory`.
class PagedTree3 {
 public:
  // `pool` must outlive this object.
  explicit PagedTree3(storage::BufferPool* pool) : pool_(pool) {}

  // Serializes `tree` into pages. `scale` un-normalizes node MBRs back to
  // world coordinates so each page's ground region can be registered with
  // the pool for motion-aware eviction.
  common::Status Write(const RTree3& tree, const GroundScale& scale);

  // Re-attaches to a tree previously written to the same store (restart
  // path); the caller supplies the directory-recorded metadata.
  void Attach(storage::PageId root, int32_t height, int64_t size);

  // Appends values of entries intersecting `window`, visiting exactly the
  // pages the in-memory traversal would visit nodes. Returns this call's
  // page fetches (== node accesses). Thread-safe on a const tree: the pool
  // serializes page access and the counter is relaxed.
  int64_t Query(const geometry::Box3& window, std::vector<int64_t>* out) const;

  // Returns every page of the tree to the store's freelist (epoch retire).
  common::Status FreePages();

  storage::PageId root() const { return root_; }
  int32_t height() const { return height_; }
  int64_t size() const { return size_; }
  int64_t node_accesses() const { return accesses_; }
  void ResetStats() { accesses_ = 0; }

 private:
  common::Status QueryPage(storage::PageId id, const geometry::Box3& window,
                           std::vector<int64_t>* out,
                           int64_t* accesses) const;

  storage::BufferPool* pool_;
  storage::PageId root_ = storage::kInvalidPage;
  int32_t height_ = 0;
  int64_t size_ = 0;
  mutable RelaxedCounter accesses_;
};

// CoefficientIndex whose nodes live on pages. Adds the persist/restore and
// page-lifecycle surface the sharded index needs for `--store disk`.
class PagedCoefficientIndex : public CoefficientIndex {
 public:
  struct TreeInfo {
    storage::PageId root = storage::kInvalidPage;
    int32_t height = 0;
    int64_t size = 0;
  };

  virtual TreeInfo tree_info() const = 0;

  // Attaches to a persisted tree instead of rebuilding: derived state
  // (normalization, extents) is recomputed deterministically from
  // `records`, which must be the same table the tree was built from.
  virtual common::Status Restore(const std::vector<CoeffRecord>& records,
                                 const TreeInfo& info) = 0;

  // Frees the tree's pages (the destructor intentionally does not: pages
  // must survive shutdown for restart-from-disk).
  virtual common::Status FreePages() = 0;
};

// Paged twin of SupportRegionIndex (paper Sec. VI-B): identical build keys,
// identical traversal, nodes on pages.
class PagedSupportRegionIndex : public PagedCoefficientIndex {
 public:
  PagedSupportRegionIndex(RTreeOptions options, storage::BufferPool* pool);

  void Build(const std::vector<CoeffRecord>& records) override;
  int64_t Query(const geometry::Box2& region, double w_min, double w_max,
                std::vector<RecordId>* out) const override;
  int64_t node_accesses() const override { return paged_.node_accesses(); }
  void ResetStats() override { paged_.ResetStats(); }
  std::string name() const override { return "support-region"; }

  TreeInfo tree_info() const override;
  common::Status Restore(const std::vector<CoeffRecord>& records,
                         const TreeInfo& info) override;
  common::Status FreePages() override { return paged_.FreePages(); }

 private:
  RTreeOptions options_;
  PagedTree3 paged_;
  GroundScale scale_;
};

// Paged twin of NaivePointIndex: same two-pass query over vertex positions
// with the extended-region re-execution and support post-filter.
class PagedNaivePointIndex : public PagedCoefficientIndex {
 public:
  PagedNaivePointIndex(RTreeOptions options, storage::BufferPool* pool);

  void Build(const std::vector<CoeffRecord>& records) override;
  int64_t Query(const geometry::Box2& region, double w_min, double w_max,
                std::vector<RecordId>* out) const override;
  int64_t node_accesses() const override { return paged_.node_accesses(); }
  void ResetStats() override { paged_.ResetStats(); }
  std::string name() const override { return "naive-point"; }

  TreeInfo tree_info() const override;
  common::Status Restore(const std::vector<CoeffRecord>& records,
                         const TreeInfo& info) override;
  common::Status FreePages() override { return paged_.FreePages(); }

 private:
  // Normalization and extents derived from the record table; shared by
  // Build and Restore so both paths agree bit-for-bit.
  void DeriveFromRecords(const std::vector<CoeffRecord>& records);

  RTreeOptions options_;
  PagedTree3 paged_;
  GroundScale scale_;
  const std::vector<CoeffRecord>* records_ = nullptr;
  double max_extent_x_ = 0.0;
  double max_extent_y_ = 0.0;
};

}  // namespace mars::index

#endif  // MARS_INDEX_PAGED_INDEX_H_
