#include "index/paged_index.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/serialize.h"

namespace mars::index {
namespace {

// Node page payload:
//   u8  is_leaf
//   u32 count
//   then `count` of either
//     leaf:     Box3 (6 doubles) + i64 record id
//     internal: child MBR Box3 (6 doubles) + i64 child head page id
void WriteBox3(common::ByteWriter* w, const geometry::Box3& box) {
  for (size_t k = 0; k < 3; ++k) w->WriteDouble(box.lo(k));
  for (size_t k = 0; k < 3; ++k) w->WriteDouble(box.hi(k));
}

common::Status ReadBox3(common::ByteReader* r, geometry::Box3* box) {
  double lo[3];
  double hi[3];
  for (double& v : lo) MARS_RETURN_IF_ERROR(r->ReadDouble(&v));
  for (double& v : hi) MARS_RETURN_IF_ERROR(r->ReadDouble(&v));
  *box = geometry::Box3({lo[0], lo[1], lo[2]}, {hi[0], hi[1], hi[2]});
  return common::OkStatus();
}

// Same lift as access.cc: ground window + w range into the normalized
// (x, y, w) key space.
geometry::Box3 LiftWindow(const GroundScale& scale,
                          const geometry::Box2& region, double w_min,
                          double w_max) {
  return geometry::Box3(
      {scale.X(region.lo(0)), scale.Y(region.lo(1)), w_min},
      {scale.X(region.hi(0)), scale.Y(region.hi(1)), w_max});
}

// Un-normalizes a node MBR's ground footprint back to world coordinates
// for motion-aware page scoring.
geometry::Box2 GroundRegion(const GroundScale& scale,
                            const geometry::Box3& mbr) {
  if (mbr.IsEmpty()) return geometry::Box2();
  return geometry::Box2({mbr.lo(0) / scale.scale_x + scale.off_x,
                         mbr.lo(1) / scale.scale_y + scale.off_y},
                        {mbr.hi(0) / scale.scale_x + scale.off_x,
                         mbr.hi(1) / scale.scale_y + scale.off_y});
}

}  // namespace

// --- PagedTree3 ----------------------------------------------------------

common::Status PagedTree3::Write(const RTree3& tree,
                                 const GroundScale& scale) {
  const std::vector<RTree3::FlatNode> flat = tree.Flatten();
  std::vector<storage::PageId> page_of(flat.size(), storage::kInvalidPage);
  // Children follow their parent in preorder, so writing back-to-front
  // guarantees every child already has a page id when its parent
  // serializes.
  for (int64_t i = static_cast<int64_t>(flat.size()) - 1; i >= 0; --i) {
    const RTree3::FlatNode& node = flat[i];
    common::ByteWriter w;
    w.WriteU8(node.is_leaf ? 1 : 0);
    if (node.is_leaf) {
      w.WriteU32(static_cast<uint32_t>(node.entries.size()));
      for (const RTree3::Entry& e : node.entries) {
        WriteBox3(&w, e.box);
        w.WriteI64(e.value);
      }
    } else {
      w.WriteU32(static_cast<uint32_t>(node.children.size()));
      for (size_t k = 0; k < node.children.size(); ++k) {
        WriteBox3(&w, node.child_mbrs[k]);
        w.WriteI64(page_of[node.children[k]]);
      }
    }
    storage::PageId id = storage::kInvalidPage;
    MARS_RETURN_IF_ERROR(pool_->Store(&id, w.buffer()));
    pool_->SetPageRegion(id, GroundRegion(scale, node.mbr));
    page_of[i] = id;
  }
  root_ = page_of.empty() ? storage::kInvalidPage : page_of[0];
  height_ = tree.height();
  size_ = tree.size();
  return common::OkStatus();
}

void PagedTree3::Attach(storage::PageId root, int32_t height, int64_t size) {
  root_ = root;
  height_ = height;
  size_ = size;
}

common::Status PagedTree3::QueryPage(storage::PageId id,
                                     const geometry::Box3& window,
                                     std::vector<int64_t>* out,
                                     int64_t* accesses) const {
  ++*accesses;
  std::vector<uint8_t> bytes;
  MARS_RETURN_IF_ERROR(pool_->Fetch(id, &bytes));
  common::ByteReader r(bytes.data(), bytes.size());
  uint8_t is_leaf = 0;
  uint32_t count = 0;
  MARS_RETURN_IF_ERROR(r.ReadU8(&is_leaf));
  MARS_RETURN_IF_ERROR(r.ReadU32(&count));
  for (uint32_t k = 0; k < count; ++k) {
    geometry::Box3 box;
    int64_t value = 0;
    MARS_RETURN_IF_ERROR(ReadBox3(&r, &box));
    MARS_RETURN_IF_ERROR(r.ReadI64(&value));
    if (!box.Intersects(window)) continue;
    if (is_leaf != 0) {
      out->push_back(value);
    } else {
      MARS_RETURN_IF_ERROR(QueryPage(value, window, out, accesses));
    }
  }
  return common::OkStatus();
}

int64_t PagedTree3::Query(const geometry::Box3& window,
                          std::vector<int64_t>* out) const {
  if (root_ == storage::kInvalidPage) return 0;
  int64_t accesses = 0;
  const common::Status status = QueryPage(root_, window, out, &accesses);
  // Pages were validated (checksummed) when the tree was written or
  // restored; a failure here means the store broke underneath a live
  // index, which has no recovery short of a rebuild.
  MARS_CHECK(status.ok()) << "paged query failed: " << status.ToString();
  accesses_ += accesses;
  return accesses;
}

common::Status PagedTree3::FreePages() {
  if (root_ == storage::kInvalidPage) return common::OkStatus();
  std::vector<storage::PageId> stack = {root_};
  while (!stack.empty()) {
    const storage::PageId id = stack.back();
    stack.pop_back();
    std::vector<uint8_t> bytes;
    MARS_RETURN_IF_ERROR(pool_->Fetch(id, &bytes));
    common::ByteReader r(bytes.data(), bytes.size());
    uint8_t is_leaf = 0;
    uint32_t count = 0;
    MARS_RETURN_IF_ERROR(r.ReadU8(&is_leaf));
    MARS_RETURN_IF_ERROR(r.ReadU32(&count));
    if (is_leaf == 0) {
      for (uint32_t k = 0; k < count; ++k) {
        geometry::Box3 box;
        int64_t child = 0;
        MARS_RETURN_IF_ERROR(ReadBox3(&r, &box));
        MARS_RETURN_IF_ERROR(r.ReadI64(&child));
        stack.push_back(child);
      }
    }
    MARS_RETURN_IF_ERROR(pool_->Erase(id));
  }
  root_ = storage::kInvalidPage;
  height_ = 0;
  size_ = 0;
  return common::OkStatus();
}

// --- PagedSupportRegionIndex ---------------------------------------------

PagedSupportRegionIndex::PagedSupportRegionIndex(RTreeOptions options,
                                                 storage::BufferPool* pool)
    : options_(options), paged_(pool) {}

void PagedSupportRegionIndex::Build(const std::vector<CoeffRecord>& records) {
  scale_ = GroundScale::FromRecords(records);
  std::vector<RTree3::Entry> entries;
  entries.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const CoeffRecord& r = records[i];
    const geometry::Box3 key({scale_.X(r.support_bounds.lo(0)),
                              scale_.Y(r.support_bounds.lo(1)), r.w},
                             {scale_.X(r.support_bounds.hi(0)),
                              scale_.Y(r.support_bounds.hi(1)), r.w});
    entries.push_back({key, static_cast<int64_t>(i)});
  }
  const RTree3 tree = RTree3::BulkLoad(std::move(entries), options_);
  const common::Status status = paged_.Write(tree, scale_);
  MARS_CHECK(status.ok()) << "paged build failed: " << status.ToString();
}

int64_t PagedSupportRegionIndex::Query(const geometry::Box2& region,
                                       double w_min, double w_max,
                                       std::vector<RecordId>* out) const {
  return paged_.Query(LiftWindow(scale_, region, w_min, w_max), out);
}

PagedCoefficientIndex::TreeInfo PagedSupportRegionIndex::tree_info() const {
  return TreeInfo{paged_.root(), paged_.height(), paged_.size()};
}

common::Status PagedSupportRegionIndex::Restore(
    const std::vector<CoeffRecord>& records, const TreeInfo& info) {
  scale_ = GroundScale::FromRecords(records);
  paged_.Attach(info.root, info.height, info.size);
  return common::OkStatus();
}

// --- PagedNaivePointIndex ------------------------------------------------

PagedNaivePointIndex::PagedNaivePointIndex(RTreeOptions options,
                                           storage::BufferPool* pool)
    : options_(options), paged_(pool) {}

void PagedNaivePointIndex::DeriveFromRecords(
    const std::vector<CoeffRecord>& records) {
  records_ = &records;
  scale_ = GroundScale::FromRecords(records);
  max_extent_x_ = 0.0;
  max_extent_y_ = 0.0;
  for (const CoeffRecord& r : records) {
    max_extent_x_ = std::max(max_extent_x_,
                             r.support_bounds.Extent(0) * scale_.scale_x);
    max_extent_y_ = std::max(max_extent_y_,
                             r.support_bounds.Extent(1) * scale_.scale_y);
  }
}

void PagedNaivePointIndex::Build(const std::vector<CoeffRecord>& records) {
  DeriveFromRecords(records);
  std::vector<RTree3::Entry> entries;
  entries.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const CoeffRecord& r = records[i];
    const geometry::Box3 key(
        {scale_.X(r.position.x), scale_.Y(r.position.y), r.w},
        {scale_.X(r.position.x), scale_.Y(r.position.y), r.w});
    entries.push_back({key, static_cast<int64_t>(i)});
  }
  const RTree3 tree = RTree3::BulkLoad(std::move(entries), options_);
  const common::Status status = paged_.Write(tree, scale_);
  MARS_CHECK(status.ok()) << "paged build failed: " << status.ToString();
}

int64_t PagedNaivePointIndex::Query(const geometry::Box2& region,
                                    double w_min, double w_max,
                                    std::vector<RecordId>* out) const {
  MARS_CHECK(records_ != nullptr) << "Query before Build";
  std::vector<int64_t> first_pass;
  int64_t accesses =
      paged_.Query(LiftWindow(scale_, region, w_min, w_max), &first_pass);

  geometry::Box3 extended = LiftWindow(scale_, region, w_min, w_max);
  extended.set_lo(0, extended.lo(0) - max_extent_x_);
  extended.set_hi(0, extended.hi(0) + max_extent_x_);
  extended.set_lo(1, extended.lo(1) - max_extent_y_);
  extended.set_hi(1, extended.hi(1) + max_extent_y_);

  std::vector<int64_t> second_pass;
  accesses += paged_.Query(extended, &second_pass);

  for (int64_t id : second_pass) {
    const CoeffRecord& rec = (*records_)[id];
    const geometry::Box2 support2(
        {rec.support_bounds.lo(0), rec.support_bounds.lo(1)},
        {rec.support_bounds.hi(0), rec.support_bounds.hi(1)});
    if (support2.Intersects(region)) {
      out->push_back(id);
    }
  }
  return accesses;
}

PagedCoefficientIndex::TreeInfo PagedNaivePointIndex::tree_info() const {
  return TreeInfo{paged_.root(), paged_.height(), paged_.size()};
}

common::Status PagedNaivePointIndex::Restore(
    const std::vector<CoeffRecord>& records, const TreeInfo& info) {
  DeriveFromRecords(records);
  paged_.Attach(info.root, info.height, info.size);
  return common::OkStatus();
}

}  // namespace mars::index
