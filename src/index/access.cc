#include "index/access.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace mars::index {

GroundScale GroundScale::FromRecords(
    const std::vector<CoeffRecord>& records) {
  geometry::Box2 bounds;
  for (const CoeffRecord& r : records) {
    bounds.ExtendPoint({r.support_bounds.lo(0), r.support_bounds.lo(1)});
    bounds.ExtendPoint({r.support_bounds.hi(0), r.support_bounds.hi(1)});
  }
  GroundScale s;
  if (!bounds.IsEmpty()) {
    s.off_x = bounds.lo(0);
    s.off_y = bounds.lo(1);
    if (bounds.Extent(0) > 0) s.scale_x = 1.0 / bounds.Extent(0);
    if (bounds.Extent(1) > 0) s.scale_y = 1.0 / bounds.Extent(1);
  }
  return s;
}

namespace {

// Lifts a ground-plane window and a w-range into the normalized 3D
// (x, y, w) key space.
geometry::Box3 LiftWindow(const GroundScale& scale,
                          const geometry::Box2& region, double w_min,
                          double w_max) {
  return geometry::Box3(
      {scale.X(region.lo(0)), scale.Y(region.lo(1)), w_min},
      {scale.X(region.hi(0)), scale.Y(region.hi(1)), w_max});
}

}  // namespace

// --- SupportRegionIndex --------------------------------------------------

SupportRegionIndex::SupportRegionIndex(RTreeOptions options)
    : options_(options), tree_(options) {}

void SupportRegionIndex::Build(const std::vector<CoeffRecord>& records) {
  scale_ = GroundScale::FromRecords(records);
  std::vector<RTree3::Entry> entries;
  entries.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const CoeffRecord& r = records[i];
    const geometry::Box3 key({scale_.X(r.support_bounds.lo(0)),
                              scale_.Y(r.support_bounds.lo(1)), r.w},
                             {scale_.X(r.support_bounds.hi(0)),
                              scale_.Y(r.support_bounds.hi(1)), r.w});
    entries.push_back({key, static_cast<int64_t>(i)});
  }
  tree_ = RTree3::BulkLoad(std::move(entries), options_);
}

int64_t SupportRegionIndex::Query(const geometry::Box2& region, double w_min,
                                  double w_max,
                                  std::vector<RecordId>* out) const {
  return tree_.Query(LiftWindow(scale_, region, w_min, w_max), out);
}

int64_t SupportRegionIndex::node_accesses() const {
  return tree_.stats().query_node_accesses;
}

void SupportRegionIndex::ResetStats() { tree_.ResetStats(); }

// --- NaivePointIndex ------------------------------------------------------

NaivePointIndex::NaivePointIndex(RTreeOptions options)
    : options_(options), tree_(options) {}

void NaivePointIndex::Build(const std::vector<CoeffRecord>& records) {
  records_ = &records;
  scale_ = GroundScale::FromRecords(records);
  std::vector<RTree3::Entry> entries;
  entries.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const CoeffRecord& r = records[i];
    const geometry::Box3 key(
        {scale_.X(r.position.x), scale_.Y(r.position.y), r.w},
        {scale_.X(r.position.x), scale_.Y(r.position.y), r.w});
    entries.push_back({key, static_cast<int64_t>(i)});
    max_extent_x_ = std::max(
        max_extent_x_, r.support_bounds.Extent(0) * scale_.scale_x);
    max_extent_y_ = std::max(
        max_extent_y_, r.support_bounds.Extent(1) * scale_.scale_y);
  }
  tree_ = RTree3::BulkLoad(std::move(entries), options_);
}

int64_t NaivePointIndex::Query(const geometry::Box2& region, double w_min,
                               double w_max,
                               std::vector<RecordId>* out) const {
  MARS_CHECK(records_ != nullptr) << "Query before Build";

  // Pass 1 (paper Sec. VI): coefficients whose vertex falls inside the
  // window. These results alone are insufficient for rendering; they only
  // reveal which neighbourhoods must be fetched, so the work is repeated
  // below over the extended region.
  std::vector<int64_t> first_pass;
  int64_t accesses =
      tree_.Query(LiftWindow(scale_, region, w_min, w_max), &first_pass);

  // Pass 2: re-execute over the extended region that covers every possible
  // neighbouring vertex, then keep the records whose support region
  // actually touches the original window.
  geometry::Box3 extended = LiftWindow(scale_, region, w_min, w_max);
  extended.set_lo(0, extended.lo(0) - max_extent_x_);
  extended.set_hi(0, extended.hi(0) + max_extent_x_);
  extended.set_lo(1, extended.lo(1) - max_extent_y_);
  extended.set_hi(1, extended.hi(1) + max_extent_y_);

  std::vector<int64_t> second_pass;
  accesses += tree_.Query(extended, &second_pass);

  for (int64_t id : second_pass) {
    const CoeffRecord& rec = (*records_)[id];
    const geometry::Box2 support2(
        {rec.support_bounds.lo(0), rec.support_bounds.lo(1)},
        {rec.support_bounds.hi(0), rec.support_bounds.hi(1)});
    if (support2.Intersects(region)) {
      out->push_back(id);
    }
  }
  return accesses;
}

int64_t NaivePointIndex::node_accesses() const {
  return tree_.stats().query_node_accesses;
}

void NaivePointIndex::ResetStats() { tree_.ResetStats(); }

// --- SupportRegionIndex4D ---------------------------------------------------

SupportRegionIndex4D::SupportRegionIndex4D(RTreeOptions options)
    : options_(options), tree_(options) {}

void SupportRegionIndex4D::Build(const std::vector<CoeffRecord>& records) {
  scale_ = GroundScale::FromRecords(records);
  double z_lo = std::numeric_limits<double>::max();
  double z_hi = std::numeric_limits<double>::lowest();
  for (const CoeffRecord& r : records) {
    z_lo = std::min(z_lo, r.support_bounds.lo(2));
    z_hi = std::max(z_hi, r.support_bounds.hi(2));
  }
  if (z_lo <= z_hi) {
    off_z_ = z_lo;
    if (z_hi > z_lo) scale_z_ = 1.0 / (z_hi - z_lo);
  }
  std::vector<RTree4::Entry> entries;
  entries.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const CoeffRecord& r = records[i];
    const geometry::Box4 key(
        {scale_.X(r.support_bounds.lo(0)), scale_.Y(r.support_bounds.lo(1)),
         (r.support_bounds.lo(2) - off_z_) * scale_z_, r.w},
        {scale_.X(r.support_bounds.hi(0)), scale_.Y(r.support_bounds.hi(1)),
         (r.support_bounds.hi(2) - off_z_) * scale_z_, r.w});
    entries.push_back({key, static_cast<int64_t>(i)});
  }
  tree_ = RTree4::BulkLoad(std::move(entries), options_);
}

int64_t SupportRegionIndex4D::Query(const geometry::Box3& region,
                                    double w_min, double w_max,
                                    std::vector<RecordId>* out) const {
  const geometry::Box4 window(
      {scale_.X(region.lo(0)), scale_.Y(region.lo(1)),
       (region.lo(2) - off_z_) * scale_z_, w_min},
      {scale_.X(region.hi(0)), scale_.Y(region.hi(1)),
       (region.hi(2) - off_z_) * scale_z_, w_max});
  return tree_.Query(window, out);
}

// --- ObjectIndex ----------------------------------------------------------

ObjectIndex::ObjectIndex(RTreeOptions options) : tree_(options) {}

void ObjectIndex::Build(const std::vector<geometry::Box3>& object_bounds) {
  for (size_t i = 0; i < object_bounds.size(); ++i) {
    const geometry::Box3& b = object_bounds[i];
    tree_.Insert(geometry::Box2({b.lo(0), b.lo(1)}, {b.hi(0), b.hi(1)}),
                 static_cast<int64_t>(i));
  }
}

void ObjectIndex::Insert(int32_t object_id, const geometry::Box3& bounds) {
  tree_.Insert(geometry::Box2({bounds.lo(0), bounds.lo(1)},
                              {bounds.hi(0), bounds.hi(1)}),
               static_cast<int64_t>(object_id));
}

int64_t ObjectIndex::Query(const geometry::Box2& region,
                           std::vector<int32_t>* out) const {
  std::vector<int64_t> hits;
  const int64_t accesses = tree_.Query(region, &hits);
  out->reserve(out->size() + hits.size());
  for (int64_t h : hits) {
    out->push_back(static_cast<int32_t>(h));
  }
  return accesses;
}

}  // namespace mars::index
