#include "core/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/units.h"

namespace mars::core {

std::vector<double> StandardSpeeds() {
  return {0.001, 0.1, 0.25, 0.5, 0.75, 1.0};
}

std::vector<double> StandardQueryFractions() {
  return {0.05, 0.10, 0.15, 0.20};
}

std::vector<int32_t> StandardDatasetSizesMb() { return {20, 40, 60, 80}; }

std::vector<int32_t> StandardBufferSizesKb() { return {16, 32, 64, 128}; }

RunMetrics MeanOf(const std::vector<RunMetrics>& runs) {
  RunMetrics mean;
  if (runs.empty()) return mean;
  const double n = static_cast<double>(runs.size());
  for (const RunMetrics& r : runs) {
    mean.frames += r.frames;
    mean.demand_bytes += r.demand_bytes;
    mean.prefetch_bytes += r.prefetch_bytes;
    mean.total_response_seconds += r.total_response_seconds;
    mean.demand_exchanges += r.demand_exchanges;
    mean.node_accesses += r.node_accesses;
    mean.cache_hit_rate += r.cache_hit_rate;
    mean.data_utilization += r.data_utilization;
    mean.records_delivered += r.records_delivered;
    mean.tour_distance += r.tour_distance;
  }
  mean.frames = static_cast<int64_t>(mean.frames / n);
  mean.demand_bytes = static_cast<int64_t>(mean.demand_bytes / n);
  mean.prefetch_bytes = static_cast<int64_t>(mean.prefetch_bytes / n);
  mean.total_response_seconds /= n;
  mean.demand_exchanges = static_cast<int64_t>(mean.demand_exchanges / n);
  mean.node_accesses = static_cast<int64_t>(mean.node_accesses / n);
  mean.cache_hit_rate /= n;
  mean.data_utilization /= n;
  mean.records_delivered = static_cast<int64_t>(mean.records_delivered / n);
  mean.tour_distance /= n;
  return mean;
}

namespace {

constexpr int kCellWidth = 14;

// Appends one CSV line to $MARS_TABLE_CSV, if set. `cells` are joined
// with commas; embedded commas are replaced to keep the format trivial.
void AppendCsv(const std::string& prefix,
               const std::vector<std::string>& cells) {
  const char* path = std::getenv("MARS_TABLE_CSV");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::string line = prefix;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) line += ",";
    std::string cell = cells[i];
    for (char& c : cell) {
      if (c == ',') c = ';';
    }
    line += cell;
  }
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
}

}  // namespace

void PrintTableTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
  AppendCsv("# ", {title});
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  AppendCsv("", columns);
  for (const std::string& c : columns) {
    std::printf("%-*s", kCellWidth, c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size() * kCellWidth; ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  AppendCsv("", cells);
  for (const std::string& c : cells) {
    std::printf("%-*s", kCellWidth, c.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string FmtBytes(int64_t bytes) { return common::FormatBytes(bytes); }

}  // namespace mars::core
