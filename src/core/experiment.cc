#include "core/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace mars::core {

std::vector<double> StandardSpeeds() {
  return {0.001, 0.1, 0.25, 0.5, 0.75, 1.0};
}

std::vector<double> StandardQueryFractions() {
  return {0.05, 0.10, 0.15, 0.20};
}

std::vector<int32_t> StandardDatasetSizesMb() { return {20, 40, 60, 80}; }

std::vector<int32_t> StandardBufferSizesKb() { return {16, 32, 64, 128}; }

RunMetrics MeanOf(const std::vector<RunMetrics>& runs) {
  RunMetrics mean;
  if (runs.empty()) return mean;
  const double n = static_cast<double>(runs.size());
  for (const RunMetrics& r : runs) {
    mean.frames += r.frames;
    mean.demand_bytes += r.demand_bytes;
    mean.prefetch_bytes += r.prefetch_bytes;
    mean.total_response_seconds += r.total_response_seconds;
    mean.demand_exchanges += r.demand_exchanges;
    mean.node_accesses += r.node_accesses;
    mean.cache_hit_rate += r.cache_hit_rate;
    mean.data_utilization += r.data_utilization;
    mean.records_delivered += r.records_delivered;
    mean.tour_distance += r.tour_distance;
    mean.retries += r.retries;
    mean.timeouts += r.timeouts;
    mean.outage_frames += r.outage_frames;
    mean.stale_frames += r.stale_frames;
    // Worst case across runs, not the mean: it is a tail metric.
    mean.max_stale_run_frames =
        std::max(mean.max_stale_run_frames, r.max_stale_run_frames);
  }
  mean.frames = static_cast<int64_t>(mean.frames / n);
  mean.demand_bytes = static_cast<int64_t>(mean.demand_bytes / n);
  mean.prefetch_bytes = static_cast<int64_t>(mean.prefetch_bytes / n);
  mean.total_response_seconds /= n;
  mean.demand_exchanges = static_cast<int64_t>(mean.demand_exchanges / n);
  mean.node_accesses = static_cast<int64_t>(mean.node_accesses / n);
  mean.cache_hit_rate /= n;
  mean.data_utilization /= n;
  mean.records_delivered = static_cast<int64_t>(mean.records_delivered / n);
  mean.tour_distance /= n;
  mean.retries = static_cast<int64_t>(mean.retries / n);
  mean.timeouts = static_cast<int64_t>(mean.timeouts / n);
  mean.outage_frames = static_cast<int64_t>(mean.outage_frames / n);
  mean.stale_frames = static_cast<int64_t>(mean.stale_frames / n);
  return mean;
}

namespace {

constexpr int kCellWidth = 14;

// Appends one CSV line to $MARS_TABLE_CSV, if set. `cells` are joined
// with commas; embedded commas are replaced to keep the format trivial.
void AppendCsv(const std::string& prefix,
               const std::vector<std::string>& cells) {
  const char* path = std::getenv("MARS_TABLE_CSV");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::string line = prefix;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) line += ",";
    std::string cell = cells[i];
    for (char& c : cell) {
      if (c == ',') c = ';';
    }
    line += cell;
  }
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
}

// The current table's title and columns, so JSON rows can be emitted as
// self-describing objects (the bench binaries are single-threaded).
std::string& CurrentTitle() {
  static std::string title;
  return title;
}

std::vector<std::string>& CurrentColumns() {
  static std::vector<std::string> columns;
  return columns;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string TableRowJson(const std::vector<std::string>& cells) {
  const std::vector<std::string>& columns = CurrentColumns();
  std::string line = "{\"table\":\"" + JsonEscape(CurrentTitle()) + "\"";
  for (size_t i = 0; i < cells.size(); ++i) {
    const std::string key =
        i < columns.size() ? columns[i] : "col" + std::to_string(i);
    line += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(cells[i]) + "\"";
  }
  line += "}";
  return line;
}

namespace {

// Appends one JSON-lines row to $MARS_TABLE_JSON, if set — the JSON twin
// of the MARS_TABLE_CSV hook.
void AppendJson(const std::vector<std::string>& cells) {
  const char* path = std::getenv("MARS_TABLE_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f, "%s\n", TableRowJson(cells).c_str());
  std::fclose(f);
}

}  // namespace

void PrintTableTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
  AppendCsv("# ", {title});
  CurrentTitle() = title;
  CurrentColumns().clear();
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  AppendCsv("", columns);
  CurrentColumns() = columns;
  for (const std::string& c : columns) {
    std::printf("%-*s", kCellWidth, c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size() * kCellWidth; ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  AppendCsv("", cells);
  AppendJson(cells);
  for (const std::string& c : cells) {
    std::printf("%-*s", kCellWidth, c.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string FmtBytes(int64_t bytes) { return common::FormatBytes(bytes); }

}  // namespace mars::core
