#ifndef MARS_CORE_SYSTEM_H_
#define MARS_CORE_SYSTEM_H_

#include <memory>
#include <vector>

#include "client/buffered_client.h"
#include "client/naive_client.h"
#include "client/streaming_client.h"
#include "common/statusor.h"
#include "core/metrics.h"
#include "index/rtree.h"
#include "net/fault.h"
#include "net/link.h"
#include "server/server.h"
#include "storage/storage_manager.h"
#include "workload/scene.h"
#include "workload/tour.h"

namespace mars::core {

// One instantiated testbed: a generated scene, its server (with a chosen
// coefficient index), and a link model. Building the scene and the index
// is the expensive part, so a System is created once and then reused to
// run many tours with different client configurations — exactly how the
// paper's parameter sweeps are structured.
class System {
 public:
  struct Config {
    workload::SceneOptions scene;
    server::Server::IndexKind index_kind =
        server::Server::IndexKind::kSupportRegion;
    index::RTreeOptions rtree;
    // Ground-plane shard count of the server's coefficient index; the
    // default 1 is bit-identical to the historical single-tree server.
    int32_t shards = 1;
    // Worker budget for parallel per-shard query fan-out (1 = sequential).
    int32_t fanout_workers = 1;
    // Index node storage: memory passthrough (default, bit-identical to
    // the historical build) or page-based disk storage behind motion- or
    // LRU-evicting buffer pools.
    storage::StorageConfig storage;
    // Load-adaptive shard rebalancing. Disabled (the default) is a
    // strict bit-identical passthrough; enabled, every frame loop ticks
    // the server's rebalancer in its serial phase.
    server::RebalanceOptions rebalance;
    net::SimulatedLink::Options link;
    // Deterministic outage/burst/dip schedule. All-zero rates (the
    // default) disable the fault layer entirely; each Run* call then
    // behaves bit-identically to a fault-free build.
    net::FaultSchedule::Options fault;
  };

  // Generates the scene and builds the indexes.
  static common::StatusOr<std::unique_ptr<System>> Create(
      const Config& config);

  // Builds a system around an existing (e.g. persisted and re-loaded)
  // database; config.scene is only consulted for the space bounds, which
  // are overridden by the database's actual extent when it is larger.
  static std::unique_ptr<System> FromDatabase(const Config& config,
                                              server::ObjectDatabase db);

  // Pure motion-aware incremental retrieval (Sec. IV), no buffer: the
  // Figs. 8/9 and 12/13 configuration.
  RunMetrics RunStreaming(const std::vector<workload::TourPoint>& tour,
                          const client::StreamingClient::Options& options);

  // Full motion-aware system: multiresolution retrieval + motion-aware
  // (or naive, per options) buffer management. Figs. 10/11/14/15.
  RunMetrics RunBuffered(const std::vector<workload::TourPoint>& tour,
                         const client::BufferedClient::Options& options);

  // Fully naive baseline: full-resolution objects + LRU (Sec. VII-E).
  RunMetrics RunNaiveObject(const std::vector<workload::TourPoint>& tour,
                            const client::NaiveObjectClient::Options& options);

  const server::Server& server() const { return *server_; }
  // Ingest entry point (serial phase only): the server owns the staging
  // and epoch machinery.
  server::Server* mutable_server() { return server_.get(); }
  const server::ObjectDatabase& db() const { return *db_; }
  const geometry::Box2& space() const { return config_.scene.space; }
  const Config& config() const { return config_; }

 private:
  System(const Config& config,
         std::unique_ptr<server::ObjectDatabase> db);

  Config config_;
  std::unique_ptr<server::ObjectDatabase> db_;
  std::unique_ptr<server::Server> server_;
};

}  // namespace mars::core

#endif  // MARS_CORE_SYSTEM_H_
