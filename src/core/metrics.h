#ifndef MARS_CORE_METRICS_H_
#define MARS_CORE_METRICS_H_

#include <cstdint>
#include <string>

namespace mars::core {

// Fixed log-scale latency histogram: 96 quarter-octave buckets spanning
// ~1 ms to ~4 hours of simulated delay. Counts are integers, Merge is a
// plain sum, and bucket edges are built by repeated multiplication with
// one double constant — no libm — so two runs that observe the same
// delays produce bit-identical histograms (and hence bit-identical
// quantiles) on any machine and at any fleet worker count.
struct LatencyHistogram {
  static constexpr int kBuckets = 96;
  static constexpr double kMinSeconds = 1e-3;
  // 2^(1/4): each bucket is a quarter octave wide.
  static constexpr double kGrowth = 1.189207115002721;

  int64_t counts[kBuckets] = {};
  int64_t total = 0;

  void Add(double seconds);
  void Merge(const LatencyHistogram& other);
  // Upper edge of the bucket holding the q-quantile sample (0 when
  // empty). Quantization error is bounded by one bucket (< 19%).
  double Quantile(double q) const;
  // Fraction of samples in buckets that lie entirely at or below
  // `seconds` (1.0 when empty). Bucketized like Quantile, so the answer
  // is bit-stable across platforms and worker counts; quantization can
  // only under-count, never over-count, the timely fraction.
  double FractionAtMost(double seconds) const;
};

// Aggregate outcome of running one client over one tour — the quantities
// the paper's evaluation reports (Sec. VII).
struct RunMetrics {
  int64_t frames = 0;

  // Data volume (Figs. 8, 9).
  int64_t demand_bytes = 0;
  int64_t prefetch_bytes = 0;
  int64_t total_bytes() const { return demand_bytes + prefetch_bytes; }

  // Latency (Figs. 14, 15). `demand_exchanges` counts the query frames
  // that actually had to go to the server; frames served entirely from
  // the local buffer cost nothing.
  double total_response_seconds = 0.0;
  int64_t demand_exchanges = 0;
  // Average over all frames (buffered frames count as zero wait).
  double MeanResponseSeconds() const {
    return frames == 0 ? 0.0 : total_response_seconds / frames;
  }
  // Average over the queries that reached the server — the per-query
  // response time the paper reports.
  double MeanResponsePerExchange() const {
    return demand_exchanges == 0 ? 0.0
                                 : total_response_seconds / demand_exchanges;
  }

  // Index I/O (Figs. 12, 13): node accesses per query frame.
  int64_t node_accesses = 0;
  double MeanNodeAccesses() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(node_accesses) / frames;
  }

  // Buffer management (Figs. 10, 11).
  double cache_hit_rate = 0.0;
  double data_utilization = 0.0;

  // Misc.
  int64_t records_delivered = 0;
  double tour_distance = 0.0;

  // Fault tolerance (degraded-link runs; all zero on a clean link).
  // Lost attempts retried by the transport.
  int64_t retries = 0;
  // Exchanges that exhausted their retry budget or deadline.
  int64_t timeouts = 0;
  // Frames that ran without connectivity (a demand exchange failed).
  int64_t outage_frames = 0;
  // Frames rendered from coarser-than-needed resident data.
  int64_t stale_frames = 0;
  // Worst-case staleness: longest run of consecutive stale frames.
  int64_t max_stale_run_frames = 0;

  // Admission control / backpressure (all zero when admission is off).
  // Exchanges the cell's admission controller deferred (each deferral
  // counts once).
  int64_t deferred_exchanges = 0;
  // Bulk exchanges shed under overload.
  int64_t shed_exchanges = 0;
  // Frames the client throttled itself after a backpressure signal.
  int64_t backpressure_frames = 0;

  // Distribution of per-exchange delivery delays (the response_seconds
  // samples behind total_response_seconds). Populated by the fleet
  // engine's cell completions and by the single-client runners.
  LatencyHistogram response_histogram;
  double P50ResponseSeconds() const {
    return response_histogram.Quantile(0.50);
  }
  double P99ResponseSeconds() const {
    return response_histogram.Quantile(0.99);
  }

  // Folds `other` into this run: additive fields sum, max_stale_run_frames
  // takes the worst case, and the two rate fields (cache_hit_rate,
  // data_utilization) combine as frames-weighted averages so merging a
  // fleet of equal-length runs equals the plain mean. Merge is
  // commutative-associative up to floating-point rounding; the fleet
  // aggregator therefore merges in fixed client-id order.
  void Merge(const RunMetrics& other) {
    const double lhs_frames = static_cast<double>(frames);
    const double rhs_frames = static_cast<double>(other.frames);
    const double all_frames = lhs_frames + rhs_frames;
    if (all_frames > 0.0) {
      cache_hit_rate = (cache_hit_rate * lhs_frames +
                        other.cache_hit_rate * rhs_frames) /
                       all_frames;
      data_utilization = (data_utilization * lhs_frames +
                          other.data_utilization * rhs_frames) /
                         all_frames;
    }
    frames += other.frames;
    demand_bytes += other.demand_bytes;
    prefetch_bytes += other.prefetch_bytes;
    total_response_seconds += other.total_response_seconds;
    demand_exchanges += other.demand_exchanges;
    node_accesses += other.node_accesses;
    records_delivered += other.records_delivered;
    tour_distance += other.tour_distance;
    retries += other.retries;
    timeouts += other.timeouts;
    outage_frames += other.outage_frames;
    stale_frames += other.stale_frames;
    max_stale_run_frames =
        max_stale_run_frames > other.max_stale_run_frames
            ? max_stale_run_frames
            : other.max_stale_run_frames;
    deferred_exchanges += other.deferred_exchanges;
    shed_exchanges += other.shed_exchanges;
    backpressure_frames += other.backpressure_frames;
    response_histogram.Merge(other.response_histogram);
  }
};

// Full-precision JSON object for a RunMetrics (doubles printed with %.17g,
// so equal metrics serialize to byte-identical text — the determinism
// tests compare these strings directly).
std::string RunMetricsJson(const RunMetrics& m);

}  // namespace mars::core

#endif  // MARS_CORE_METRICS_H_
