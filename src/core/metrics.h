#ifndef MARS_CORE_METRICS_H_
#define MARS_CORE_METRICS_H_

#include <cstdint>

namespace mars::core {

// Aggregate outcome of running one client over one tour — the quantities
// the paper's evaluation reports (Sec. VII).
struct RunMetrics {
  int64_t frames = 0;

  // Data volume (Figs. 8, 9).
  int64_t demand_bytes = 0;
  int64_t prefetch_bytes = 0;
  int64_t total_bytes() const { return demand_bytes + prefetch_bytes; }

  // Latency (Figs. 14, 15). `demand_exchanges` counts the query frames
  // that actually had to go to the server; frames served entirely from
  // the local buffer cost nothing.
  double total_response_seconds = 0.0;
  int64_t demand_exchanges = 0;
  // Average over all frames (buffered frames count as zero wait).
  double MeanResponseSeconds() const {
    return frames == 0 ? 0.0 : total_response_seconds / frames;
  }
  // Average over the queries that reached the server — the per-query
  // response time the paper reports.
  double MeanResponsePerExchange() const {
    return demand_exchanges == 0 ? 0.0
                                 : total_response_seconds / demand_exchanges;
  }

  // Index I/O (Figs. 12, 13): node accesses per query frame.
  int64_t node_accesses = 0;
  double MeanNodeAccesses() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(node_accesses) / frames;
  }

  // Buffer management (Figs. 10, 11).
  double cache_hit_rate = 0.0;
  double data_utilization = 0.0;

  // Misc.
  int64_t records_delivered = 0;
  double tour_distance = 0.0;

  // Fault tolerance (degraded-link runs; all zero on a clean link).
  // Lost attempts retried by the transport.
  int64_t retries = 0;
  // Exchanges that exhausted their retry budget or deadline.
  int64_t timeouts = 0;
  // Frames that ran without connectivity (a demand exchange failed).
  int64_t outage_frames = 0;
  // Frames rendered from coarser-than-needed resident data.
  int64_t stale_frames = 0;
  // Worst-case staleness: longest run of consecutive stale frames.
  int64_t max_stale_run_frames = 0;
};

}  // namespace mars::core

#endif  // MARS_CORE_METRICS_H_
