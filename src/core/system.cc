#include "core/system.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mars::core {

common::StatusOr<std::unique_ptr<System>> System::Create(
    const Config& config) {
  auto scene = workload::GenerateScene(config.scene);
  if (!scene.ok()) return scene.status();
  auto db = std::make_unique<server::ObjectDatabase>(
      std::move(scene).value());
  return std::unique_ptr<System>(new System(config, std::move(db)));
}

std::unique_ptr<System> System::FromDatabase(const Config& config,
                                             server::ObjectDatabase db) {
  auto owned = std::make_unique<server::ObjectDatabase>(std::move(db));
  Config adjusted = config;
  // Make sure the configured space covers the data.
  geometry::Box2 extent = adjusted.scene.space;
  for (const geometry::Box3& b : owned->object_bounds()) {
    extent.Extend(geometry::Box2({b.lo(0), b.lo(1)}, {b.hi(0), b.hi(1)}));
  }
  adjusted.scene.space = extent;
  return std::unique_ptr<System>(new System(adjusted, std::move(owned)));
}

System::System(const Config& config,
               std::unique_ptr<server::ObjectDatabase> db)
    : config_(config), db_(std::move(db)) {
  server::Server::Options options;
  options.kind = config.index_kind;
  options.rtree = config.rtree;
  options.shards = config.shards;
  options.fanout_workers = config.fanout_workers;
  options.storage = config.storage;
  options.rebalance = config.rebalance;
  server_ = std::make_unique<server::Server>(db_.get(), options);
}

RunMetrics System::RunStreaming(
    const std::vector<workload::TourPoint>& tour,
    const client::StreamingClient::Options& options) {
  net::SimulatedLink link(config_.link);
  net::FaultSchedule fault(config_.fault);
  if (fault.enabled()) link.AttachFaultSchedule(&fault);
  client::StreamingClient cl(options, space(), server_.get(), &link);
  RunMetrics metrics;
  int64_t stale_run = 0;
  const bool motion_pools = server_->motion_interest_enabled();
  const bool rebalance = server_->rebalance_enabled();
  const bool warming = server_->pool_warming_enabled();
  for (const workload::TourPoint& point : tour) {
    // Warm join first: the previous frame's speculative reads install
    // before anything else touches the raw page stores this frame.
    if (warming) server_->WarmPoolsJoin();
    if (motion_pools) {
      server_->ObserveClientMotion(0, point.position);
      server_->RefreshPoolInterest();
    }
    if (rebalance) server_->TickRebalancer();
    // Dispatch last, against the refreshed interest field: the reads run
    // while the frame's queries execute below.
    if (warming) server_->WarmPoolsDispatch();
    const client::StreamingFrameReport report =
        cl.Step(point.position, point.speed);
    metrics.demand_bytes += report.response_bytes;
    metrics.node_accesses += report.node_accesses;
    metrics.records_delivered += report.new_records;
    metrics.total_response_seconds += report.response_seconds;
    if (report.response_seconds > 0.0) ++metrics.demand_exchanges;
    metrics.retries += report.retries;
    if (!report.status.ok()) {
      ++metrics.timeouts;
      ++metrics.outage_frames;
      // A failed frame renders from the store as of the last successful
      // exchange: it is stale by definition.
      ++metrics.stale_frames;
      ++stale_run;
      metrics.max_stale_run_frames =
          std::max(metrics.max_stale_run_frames, stale_run);
    } else {
      stale_run = 0;
    }
    ++metrics.frames;
  }
  // Quiesce: commit the trailing pending delivery so the server's
  // committed state matches the client's store at run end.
  cl.FlushAck();
  // Settle the trailing speculative batch so post-run pool stats are
  // stable (and deterministic) whenever the caller prints them.
  if (warming) server_->WarmPoolsJoin();
  metrics.tour_distance = workload::TourDistance(tour);
  return metrics;
}

RunMetrics System::RunBuffered(
    const std::vector<workload::TourPoint>& tour,
    const client::BufferedClient::Options& options) {
  net::SimulatedLink link(config_.link);
  net::FaultSchedule fault(config_.fault);
  if (fault.enabled()) link.AttachFaultSchedule(&fault);
  client::BufferedClient cl(options, space(), server_.get(), &link);
  RunMetrics metrics;
  const bool motion_pools = server_->motion_interest_enabled();
  const bool rebalance = server_->rebalance_enabled();
  const bool warming = server_->pool_warming_enabled();
  for (const workload::TourPoint& point : tour) {
    if (warming) server_->WarmPoolsJoin();
    if (motion_pools) {
      server_->ObserveClientMotion(0, point.position);
      server_->RefreshPoolInterest();
    }
    if (rebalance) server_->TickRebalancer();
    if (warming) server_->WarmPoolsDispatch();
    const client::BufferedFrameReport report =
        cl.Step(point.position, point.speed);
    metrics.demand_bytes += report.demand_bytes;
    metrics.prefetch_bytes += report.prefetch_bytes;
    metrics.node_accesses += report.node_accesses;
    metrics.total_response_seconds += report.response_seconds;
    if (report.response_seconds > 0.0) ++metrics.demand_exchanges;
    metrics.retries += report.retries;
    metrics.timeouts += report.timeouts;
    ++metrics.frames;
  }
  if (warming) server_->WarmPoolsJoin();
  metrics.cache_hit_rate = cl.buffer_stats().HitRate();
  metrics.data_utilization = cl.buffer_stats().Utilization();
  metrics.outage_frames = cl.outage_frames();
  metrics.stale_frames = cl.stale_frames();
  metrics.max_stale_run_frames = cl.max_stale_run_frames();
  metrics.tour_distance = workload::TourDistance(tour);
  return metrics;
}

RunMetrics System::RunNaiveObject(
    const std::vector<workload::TourPoint>& tour,
    const client::NaiveObjectClient::Options& options) {
  net::SimulatedLink link(config_.link);
  net::FaultSchedule fault(config_.fault);
  if (fault.enabled()) link.AttachFaultSchedule(&fault);
  client::NaiveObjectClient cl(options, space(), server_.get(), &link);
  RunMetrics metrics;
  const bool motion_pools = server_->motion_interest_enabled();
  const bool rebalance = server_->rebalance_enabled();
  const bool warming = server_->pool_warming_enabled();
  for (const workload::TourPoint& point : tour) {
    if (warming) server_->WarmPoolsJoin();
    if (motion_pools) {
      server_->ObserveClientMotion(0, point.position);
      server_->RefreshPoolInterest();
    }
    if (rebalance) server_->TickRebalancer();
    if (warming) server_->WarmPoolsDispatch();
    const client::NaiveFrameReport report =
        cl.Step(point.position, point.speed);
    metrics.demand_bytes += report.bytes;
    metrics.node_accesses += report.node_accesses;
    metrics.total_response_seconds += report.response_seconds;
    if (report.response_seconds > 0.0) ++metrics.demand_exchanges;
    ++metrics.frames;
  }
  if (warming) server_->WarmPoolsJoin();
  metrics.cache_hit_rate = cl.CacheHitRate();
  metrics.tour_distance = workload::TourDistance(tour);
  return metrics;
}

}  // namespace mars::core
