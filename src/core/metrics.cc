#include "core/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace mars::core {

namespace {

void AppendInt(std::string* out, const char* key, int64_t value,
               bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRId64, *first ? "" : ", ",
                key, value);
  *first = false;
  out->append(buf);
}

void AppendDouble(std::string* out, const char* key, double value,
                  bool* first) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %.17g", *first ? "" : ", ",
                key, value);
  *first = false;
  out->append(buf);
}

}  // namespace

void LatencyHistogram::Add(double seconds) {
  // Find the bucket by walking the multiplicatively built edge ladder.
  // The comparison sequence is identical on every platform (only double
  // multiply and compare), so bucket indices are bit-stable.
  int bucket = kBuckets - 1;
  double edge = kMinSeconds;
  for (int i = 0; i < kBuckets - 1; ++i) {
    if (seconds < edge) {
      bucket = i;
      break;
    }
    edge *= kGrowth;
  }
  ++counts[bucket];
  ++total;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
  total += other.total;
}

double LatencyHistogram::Quantile(double q) const {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based ceiling.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  double edge = kMinSeconds;  // upper edge of bucket 0
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return edge;
    edge *= kGrowth;
  }
  return edge;  // unreachable: seen == total >= rank by the loop end
}

double LatencyHistogram::FractionAtMost(double seconds) const {
  if (total == 0) return 1.0;
  int64_t covered = 0;
  double edge = kMinSeconds;  // upper edge of bucket 0
  for (int i = 0; i < kBuckets; ++i) {
    if (edge > seconds) break;
    covered += counts[i];
    edge *= kGrowth;
  }
  return static_cast<double>(covered) / static_cast<double>(total);
}

std::string RunMetricsJson(const RunMetrics& m) {
  std::string out = "{";
  bool first = true;
  AppendInt(&out, "frames", m.frames, &first);
  AppendInt(&out, "demand_bytes", m.demand_bytes, &first);
  AppendInt(&out, "prefetch_bytes", m.prefetch_bytes, &first);
  AppendDouble(&out, "total_response_seconds", m.total_response_seconds,
               &first);
  AppendInt(&out, "demand_exchanges", m.demand_exchanges, &first);
  AppendInt(&out, "node_accesses", m.node_accesses, &first);
  AppendDouble(&out, "cache_hit_rate", m.cache_hit_rate, &first);
  AppendDouble(&out, "data_utilization", m.data_utilization, &first);
  AppendInt(&out, "records_delivered", m.records_delivered, &first);
  AppendDouble(&out, "tour_distance", m.tour_distance, &first);
  AppendInt(&out, "retries", m.retries, &first);
  AppendInt(&out, "timeouts", m.timeouts, &first);
  AppendInt(&out, "outage_frames", m.outage_frames, &first);
  AppendInt(&out, "stale_frames", m.stale_frames, &first);
  AppendInt(&out, "max_stale_run_frames", m.max_stale_run_frames, &first);
  AppendInt(&out, "deferred_exchanges", m.deferred_exchanges, &first);
  AppendInt(&out, "shed_exchanges", m.shed_exchanges, &first);
  AppendInt(&out, "backpressure_frames", m.backpressure_frames, &first);
  AppendInt(&out, "response_samples", m.response_histogram.total, &first);
  AppendDouble(&out, "response_p50_seconds", m.P50ResponseSeconds(), &first);
  AppendDouble(&out, "response_p99_seconds", m.P99ResponseSeconds(), &first);
  out += "}";
  return out;
}

}  // namespace mars::core
