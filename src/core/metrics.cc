#include "core/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace mars::core {

namespace {

void AppendInt(std::string* out, const char* key, int64_t value,
               bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRId64, *first ? "" : ", ",
                key, value);
  *first = false;
  out->append(buf);
}

void AppendDouble(std::string* out, const char* key, double value,
                  bool* first) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %.17g", *first ? "" : ", ",
                key, value);
  *first = false;
  out->append(buf);
}

}  // namespace

std::string RunMetricsJson(const RunMetrics& m) {
  std::string out = "{";
  bool first = true;
  AppendInt(&out, "frames", m.frames, &first);
  AppendInt(&out, "demand_bytes", m.demand_bytes, &first);
  AppendInt(&out, "prefetch_bytes", m.prefetch_bytes, &first);
  AppendDouble(&out, "total_response_seconds", m.total_response_seconds,
               &first);
  AppendInt(&out, "demand_exchanges", m.demand_exchanges, &first);
  AppendInt(&out, "node_accesses", m.node_accesses, &first);
  AppendDouble(&out, "cache_hit_rate", m.cache_hit_rate, &first);
  AppendDouble(&out, "data_utilization", m.data_utilization, &first);
  AppendInt(&out, "records_delivered", m.records_delivered, &first);
  AppendDouble(&out, "tour_distance", m.tour_distance, &first);
  AppendInt(&out, "retries", m.retries, &first);
  AppendInt(&out, "timeouts", m.timeouts, &first);
  AppendInt(&out, "outage_frames", m.outage_frames, &first);
  AppendInt(&out, "stale_frames", m.stale_frames, &first);
  AppendInt(&out, "max_stale_run_frames", m.max_stale_run_frames, &first);
  out += "}";
  return out;
}

}  // namespace mars::core
