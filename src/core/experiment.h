#ifndef MARS_CORE_EXPERIMENT_H_
#define MARS_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"

namespace mars::core {

// The normalized speed ladder the evaluation sweeps ("normalized to
// 0.001-1.0", Sec. VII-A).
std::vector<double> StandardSpeeds();

// The query-frame sizes (fraction of the space per side, Sec. VII-A).
std::vector<double> StandardQueryFractions();

// The dataset sizes in MB (Sec. VII-A).
std::vector<int32_t> StandardDatasetSizesMb();

// The buffer sizes in KB (Sec. VII-C).
std::vector<int32_t> StandardBufferSizesKb();

// Element-wise mean of several runs (used to average the 10 seeded tours
// per setting, as the paper averages its 10 collected tourist traces).
RunMetrics MeanOf(const std::vector<RunMetrics>& runs);

// Fixed-width table helpers shared by the bench binaries. When the
// MARS_TABLE_CSV environment variable names a file, every table is also
// appended there in CSV form (one "# title" line, then header and rows),
// ready for plotting. When MARS_TABLE_JSON names a file, every row is
// additionally appended there as one self-describing JSON object per line
// ({"table": ..., "<column>": "<cell>", ...}).
void PrintTableTitle(const std::string& title);
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
// The JSON-lines encoding of `cells` against the current table's title
// and columns (what the MARS_TABLE_JSON hook writes); benches that print
// JSON to stdout reuse it.
std::string TableRowJson(const std::vector<std::string>& cells);
std::string Fmt(double value, int precision = 3);
std::string FmtBytes(int64_t bytes);

}  // namespace mars::core

#endif  // MARS_CORE_EXPERIMENT_H_
