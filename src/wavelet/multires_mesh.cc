#include "wavelet/multires_mesh.h"

namespace mars::wavelet {

std::vector<int32_t> MultiResMesh::CoefficientsAtLevel(int32_t level) const {
  std::vector<int32_t> out;
  for (const WaveletCoefficient& c : coefficients_) {
    if (c.level == level) out.push_back(c.id);
  }
  return out;
}

geometry::Box3 MultiResMesh::Bounds() const {
  geometry::Box3 box = base_.Bounds();
  for (const WaveletCoefficient& c : coefficients_) {
    box.Extend(c.support_bounds);
  }
  return box;
}

int64_t MultiResMesh::CountAtLeast(double w_min) const {
  int64_t n = 0;
  for (const WaveletCoefficient& c : coefficients_) {
    if (c.w >= w_min) ++n;
  }
  return n;
}

}  // namespace mars::wavelet
