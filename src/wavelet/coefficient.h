#ifndef MARS_WAVELET_COEFFICIENT_H_
#define MARS_WAVELET_COEFFICIENT_H_

#include <cstdint>

#include "geometry/box.h"
#include "geometry/vec.h"

namespace mars::wavelet {

// One wavelet coefficient of a decomposed 3D object (paper Sec. III): the
// missing detail of odd vertex `vertex` between mesh M^level and M^{level+1}.
// The coefficient's spatial footprint is its *support region* — the one-ring
// polygon of the vertex in M^{level+1} — stored here as its minimum bounding
// box (paper Sec. VI).
struct WaveletCoefficient {
  // Dense per-object id, stable across the object's lifetime. Ids are
  // assigned level-by-level, so they are ordered coarse-to-fine.
  int32_t id = 0;

  // 0-based decomposition level: this coefficient is a member of W_level and
  // refines M^level into M^{level+1}.
  int32_t level = 0;

  // Vertex index in M^{level+1}. Because even vertices keep their indices
  // through subdivision, this index is also valid in every finer mesh up to
  // the final mesh M^J.
  int32_t vertex = 0;

  // Endpoints of the parent edge in M^level whose midpoint predicts
  // `vertex`.
  int32_t parent_a = 0;
  int32_t parent_b = 0;

  // Detail vector: actual position minus predicted midpoint.
  geometry::Vec3 detail;

  // World position of the vertex this coefficient displaces (used by the
  // naive point index, which keys on vertex positions).
  geometry::Vec3 vertex_position;

  // Euclidean magnitude of `detail` (geometric influence before
  // normalization).
  double magnitude = 0.0;

  // Normalized coefficient value in [0, 1]; larger values have greater
  // geometric influence. Base-mesh vertices are modeled with w = 1.0 (paper
  // Sec. VII-A), so w here is normalized into (0, 1].
  double w = 0.0;

  // MBB of the support region in world coordinates.
  geometry::Box3 support_bounds;
};

}  // namespace mars::wavelet

#endif  // MARS_WAVELET_COEFFICIENT_H_
