#include "wavelet/decompose.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "geometry/vec.h"
#include "mesh/adjacency.h"
#include "mesh/subdivide.h"

namespace mars::wavelet {

using geometry::Vec3;
using mesh::Mesh;
using mesh::OddVertex;
using mesh::Subdivision;

common::StatusOr<MultiResMesh> Decompose(const Mesh& fine,
                                         const Mesh& base_connectivity,
                                         int32_t levels) {
  if (levels < 0) {
    return common::InvalidArgumentError("levels must be >= 0");
  }

  // Re-derive the subdivision hierarchy from the base connectivity. Only
  // the topology matters here; positions are placeholders.
  std::vector<Subdivision> chain;  // chain[j]: M^j -> M^{j+1}
  chain.reserve(levels);
  Mesh current = base_connectivity;
  for (int32_t j = 0; j < levels; ++j) {
    chain.push_back(mesh::Subdivide(current));
    current = chain.back().mesh;
  }

  if (current.vertex_count() != fine.vertex_count() ||
      current.face_count() != fine.face_count()) {
    return common::InvalidArgumentError(
        "fine mesh does not have subdivision connectivity of the base: "
        "expected " +
        std::to_string(current.vertex_count()) + " vertices / " +
        std::to_string(current.face_count()) + " faces, got " +
        std::to_string(fine.vertex_count()) + " / " +
        std::to_string(fine.face_count()));
  }

  // Base mesh M^0: base connectivity with positions restricted from the
  // fine mesh (even vertices never move in the lazy-wavelet analysis).
  std::vector<Vec3> base_positions(
      fine.vertices().begin(),
      fine.vertices().begin() + base_connectivity.vertex_count());
  Mesh base(std::move(base_positions), base_connectivity.faces());

  std::vector<WaveletCoefficient> coefficients;
  double max_magnitude = 0.0;
  for (int32_t j = 0; j < levels; ++j) {
    // One-rings in M^{j+1} define the support regions of level-j
    // coefficients.
    const mesh::VertexAdjacency adjacency(chain[j].mesh);
    for (const OddVertex& odd : chain[j].odd_vertices) {
      WaveletCoefficient c;
      c.id = static_cast<int32_t>(coefficients.size());
      c.level = j;
      c.vertex = odd.vertex;
      c.parent_a = odd.parent_a;
      c.parent_b = odd.parent_b;
      const Vec3 predicted = geometry::Midpoint(fine.vertex(odd.parent_a),
                                                fine.vertex(odd.parent_b));
      c.detail = fine.vertex(odd.vertex) - predicted;
      c.vertex_position = fine.vertex(odd.vertex);
      c.magnitude = c.detail.Norm();
      max_magnitude = std::max(max_magnitude, c.magnitude);

      geometry::Box3 support;
      const Vec3& v = fine.vertex(odd.vertex);
      support.ExtendPoint({v.x, v.y, v.z});
      for (int32_t n : adjacency.Neighbors(odd.vertex)) {
        const Vec3& p = fine.vertex(n);
        support.ExtendPoint({p.x, p.y, p.z});
      }
      c.support_bounds = support;
      coefficients.push_back(c);
    }
  }

  // Normalize geometric influence to [0, 1]. A perfectly smooth object
  // (all-zero details) keeps w = 0 everywhere: its refinement carries no
  // information, so nothing beyond the base mesh is ever worth fetching.
  if (max_magnitude > 0.0) {
    for (WaveletCoefficient& c : coefficients) {
      c.w = c.magnitude / max_magnitude;
    }
  }

  return MultiResMesh(std::move(base), levels, std::move(coefficients));
}

}  // namespace mars::wavelet
