#ifndef MARS_WAVELET_RECONSTRUCT_H_
#define MARS_WAVELET_RECONSTRUCT_H_

#include <vector>

#include "mesh/mesh.h"
#include "wavelet/multires_mesh.h"

namespace mars::wavelet {

// Wavelet synthesis: rebuilds the final-connectivity mesh M^J from the base
// mesh, applying only the coefficients selected by `include` (indexed by
// coefficient id). Omitted coefficients leave their vertices at the
// predicted edge midpoint, yielding the lower-resolution approximation the
// client renders while detail is still in flight.
mesh::Mesh ReconstructSubset(const MultiResMesh& mr,
                             const std::vector<bool>& include);

// Convenience: applies every coefficient with w >= w_min. w_min = 0
// reproduces the original mesh exactly; w_min > 1 yields the base shape at
// final connectivity.
mesh::Mesh Reconstruct(const MultiResMesh& mr, double w_min);

// Largest vertex-position distance between two meshes with identical
// connectivity; the approximation-quality metric used in tests and the
// progressive-streaming example.
double MaxVertexDistance(const mesh::Mesh& a, const mesh::Mesh& b);

// Mean vertex-position distance between two meshes with identical
// connectivity.
double MeanVertexDistance(const mesh::Mesh& a, const mesh::Mesh& b);

}  // namespace mars::wavelet

#endif  // MARS_WAVELET_RECONSTRUCT_H_
