#ifndef MARS_WAVELET_DECOMPOSE_H_
#define MARS_WAVELET_DECOMPOSE_H_

#include <cstdint>

#include "common/statusor.h"
#include "mesh/mesh.h"
#include "wavelet/multires_mesh.h"

namespace mars::wavelet {

// Wavelet analysis (paper Sec. III): splits a fine mesh M^J with subdivision
// connectivity into a base mesh M^0 plus per-level coefficient sets.
//
// `base_connectivity` supplies the faces of M^0 (its vertex positions are
// ignored; the base positions are taken from `fine`, since the lazy-wavelet
// even filter is the identity). `fine` must have been produced by `levels`
// regular 1:4 subdivisions of that connectivity — the function re-derives
// the subdivision hierarchy deterministically and validates that vertex and
// face counts line up.
//
// The returned coefficients are ordered level-by-level (coarse first) and,
// within a level, in the deterministic odd-vertex order of
// mesh::Subdivide(), which is what reconstruction relies on. Coefficient
// values w are normalized to [0, 1] by the maximum detail magnitude in the
// object; support-region MBBs are computed from the one-ring of each odd
// vertex in M^{level+1} using final-mesh vertex positions.
common::StatusOr<MultiResMesh> Decompose(const mesh::Mesh& fine,
                                         const mesh::Mesh& base_connectivity,
                                         int32_t levels);

}  // namespace mars::wavelet

#endif  // MARS_WAVELET_DECOMPOSE_H_
