#include "wavelet/reconstruct.h"

#include <algorithm>

#include "common/logging.h"
#include "mesh/subdivide.h"

namespace mars::wavelet {

mesh::Mesh ReconstructSubset(const MultiResMesh& mr,
                             const std::vector<bool>& include) {
  MARS_CHECK_EQ(static_cast<int32_t>(include.size()), mr.coefficient_count());
  mesh::Mesh current = mr.base();
  int32_t next_id = 0;
  for (int32_t j = 0; j < mr.levels(); ++j) {
    mesh::Subdivision sub = mesh::Subdivide(current);
    // Decompose() emitted level-j coefficients in exactly this odd-vertex
    // order, so ids line up one-to-one.
    for (const mesh::OddVertex& odd : sub.odd_vertices) {
      const WaveletCoefficient& c = mr.coefficient(next_id);
      MARS_CHECK_EQ(c.level, j);
      MARS_CHECK_EQ(c.vertex, odd.vertex);
      if (include[c.id]) {
        sub.mesh.mutable_vertex(odd.vertex) += c.detail;
      }
      ++next_id;
    }
    current = std::move(sub.mesh);
  }
  MARS_CHECK_EQ(next_id, mr.coefficient_count());
  return current;
}

mesh::Mesh Reconstruct(const MultiResMesh& mr, double w_min) {
  std::vector<bool> include(mr.coefficient_count());
  for (const WaveletCoefficient& c : mr.coefficients()) {
    include[c.id] = c.w >= w_min;
  }
  return ReconstructSubset(mr, include);
}

double MaxVertexDistance(const mesh::Mesh& a, const mesh::Mesh& b) {
  MARS_CHECK_EQ(a.vertex_count(), b.vertex_count());
  double max_d = 0.0;
  for (int32_t i = 0; i < a.vertex_count(); ++i) {
    max_d = std::max(max_d, (a.vertex(i) - b.vertex(i)).Norm());
  }
  return max_d;
}

double MeanVertexDistance(const mesh::Mesh& a, const mesh::Mesh& b) {
  MARS_CHECK_EQ(a.vertex_count(), b.vertex_count());
  if (a.vertex_count() == 0) return 0.0;
  double sum = 0.0;
  for (int32_t i = 0; i < a.vertex_count(); ++i) {
    sum += (a.vertex(i) - b.vertex(i)).Norm();
  }
  return sum / a.vertex_count();
}

}  // namespace mars::wavelet
