#ifndef MARS_WAVELET_MULTIRES_MESH_H_
#define MARS_WAVELET_MULTIRES_MESH_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "mesh/mesh.h"
#include "wavelet/coefficient.h"

namespace mars::wavelet {

// A 3D object in wavelet multiresolution form: base mesh M^0 plus the
// coefficient sets {W_0, ..., W_{J-1}} (paper Sec. III). This is the
// server-side storage format; clients receive the base mesh (its vertices
// carry w = 1.0) and any subset of coefficients.
class MultiResMesh {
 public:
  MultiResMesh() = default;
  MultiResMesh(mesh::Mesh base, int32_t levels,
               std::vector<WaveletCoefficient> coefficients)
      : base_(std::move(base)),
        levels_(levels),
        coefficients_(std::move(coefficients)) {}

  const mesh::Mesh& base() const { return base_; }
  // Number of decomposition levels J; the final mesh is M^J.
  int32_t levels() const { return levels_; }

  // All coefficients, ordered by id (== coarse-to-fine level order).
  const std::vector<WaveletCoefficient>& coefficients() const {
    return coefficients_;
  }
  const WaveletCoefficient& coefficient(int32_t id) const {
    return coefficients_[id];
  }
  int32_t coefficient_count() const {
    return static_cast<int32_t>(coefficients_.size());
  }

  // Coefficient ids belonging to level j, in id order.
  std::vector<int32_t> CoefficientsAtLevel(int32_t level) const;

  // World bounds of the object (base mesh extended by all support regions).
  geometry::Box3 Bounds() const;

  // Number of coefficients with w >= w_min: the retrieval volume for a
  // client moving at normalized speed w_min.
  int64_t CountAtLeast(double w_min) const;

 private:
  mesh::Mesh base_;
  int32_t levels_ = 0;
  std::vector<WaveletCoefficient> coefficients_;
};

}  // namespace mars::wavelet

#endif  // MARS_WAVELET_MULTIRES_MESH_H_
