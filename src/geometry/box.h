#ifndef MARS_GEOMETRY_BOX_H_
#define MARS_GEOMETRY_BOX_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>
#include <ostream>

#include "geometry/vec.h"

namespace mars::geometry {

// Axis-aligned N-dimensional box [lo, hi], closed on both ends. Used as the
// query window (N = 2), as the wavelet-coefficient key (N = 3: x, y, w — the
// paper's experimental index; or N = 4: x, y, z, w as in Sec. VI-B), and as
// the R-tree entry/node MBR for any N.
template <size_t N>
class Box {
 public:
  // An "empty" box: every dimension inverted so that any Extend() fixes it
  // and Intersects()/Contains() are always false.
  Box() {
    lo_.fill(std::numeric_limits<double>::max());
    hi_.fill(std::numeric_limits<double>::lowest());
  }

  Box(const std::array<double, N>& lo, const std::array<double, N>& hi)
      : lo_(lo), hi_(hi) {}

  // A degenerate box covering a single point.
  static Box FromPoint(const std::array<double, N>& p) { return Box(p, p); }

  static constexpr size_t dimensions() { return N; }

  const std::array<double, N>& lo() const { return lo_; }
  const std::array<double, N>& hi() const { return hi_; }
  double lo(size_t d) const { return lo_[d]; }
  double hi(size_t d) const { return hi_[d]; }
  void set_lo(size_t d, double v) { lo_[d] = v; }
  void set_hi(size_t d, double v) { hi_[d] = v; }

  bool IsEmpty() const {
    for (size_t d = 0; d < N; ++d) {
      if (lo_[d] > hi_[d]) return true;
    }
    return false;
  }

  double Extent(size_t d) const { return hi_[d] - lo_[d]; }

  // Hypervolume (area for N = 2). Zero for degenerate or empty boxes.
  double Volume() const {
    if (IsEmpty()) return 0.0;
    double v = 1.0;
    for (size_t d = 0; d < N; ++d) {
      v *= Extent(d);
    }
    return v;
  }

  // Sum of edge lengths; the R*-tree "margin" criterion.
  double Margin() const {
    if (IsEmpty()) return 0.0;
    double m = 0.0;
    for (size_t d = 0; d < N; ++d) {
      m += Extent(d);
    }
    return m;
  }

  std::array<double, N> Center() const {
    std::array<double, N> c;
    for (size_t d = 0; d < N; ++d) {
      c[d] = 0.5 * (lo_[d] + hi_[d]);
    }
    return c;
  }

  bool ContainsPoint(const std::array<double, N>& p) const {
    for (size_t d = 0; d < N; ++d) {
      if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
    }
    return true;
  }

  bool Contains(const Box& other) const {
    if (other.IsEmpty()) return true;
    if (IsEmpty()) return false;
    for (size_t d = 0; d < N; ++d) {
      if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
    }
    return true;
  }

  bool Intersects(const Box& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    for (size_t d = 0; d < N; ++d) {
      if (other.hi_[d] < lo_[d] || other.lo_[d] > hi_[d]) return false;
    }
    return true;
  }

  Box Intersection(const Box& other) const {
    Box out;
    if (IsEmpty() || other.IsEmpty()) return out;
    for (size_t d = 0; d < N; ++d) {
      out.lo_[d] = std::max(lo_[d], other.lo_[d]);
      out.hi_[d] = std::min(hi_[d], other.hi_[d]);
      if (out.lo_[d] > out.hi_[d]) return Box();
    }
    return out;
  }

  // Smallest box covering both this and `other`.
  Box Union(const Box& other) const {
    if (IsEmpty()) return other;
    if (other.IsEmpty()) return *this;
    Box out = *this;
    for (size_t d = 0; d < N; ++d) {
      out.lo_[d] = std::min(lo_[d], other.lo_[d]);
      out.hi_[d] = std::max(hi_[d], other.hi_[d]);
    }
    return out;
  }

  // Grows in place to cover `other`.
  void Extend(const Box& other) { *this = Union(other); }

  void ExtendPoint(const std::array<double, N>& p) {
    for (size_t d = 0; d < N; ++d) {
      lo_[d] = std::min(lo_[d], p[d]);
      hi_[d] = std::max(hi_[d], p[d]);
    }
  }

  // Volume added by growing this box to cover `other`; the Guttman insert
  // criterion.
  double Enlargement(const Box& other) const {
    return Union(other).Volume() - Volume();
  }

  // Volume shared with `other`; the R*-tree overlap criterion.
  double OverlapVolume(const Box& other) const {
    return Intersection(other).Volume();
  }

  friend bool operator==(const Box& a, const Box& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Box& b) {
    os << "[";
    for (size_t d = 0; d < N; ++d) {
      if (d != 0) os << ", ";
      os << b.lo_[d] << ".." << b.hi_[d];
    }
    return os << "]";
  }

 private:
  std::array<double, N> lo_;
  std::array<double, N> hi_;
};

using Box2 = Box<2>;
using Box3 = Box<3>;
using Box4 = Box<4>;

// Convenience constructors for the common low dimensions.
inline Box2 MakeBox2(double x0, double y0, double x1, double y1) {
  return Box2({x0, y0}, {x1, y1});
}
inline Box3 MakeBox3(double x0, double y0, double z0, double x1, double y1,
                     double z1) {
  return Box3({x0, y0, z0}, {x1, y1, z1});
}

inline Box2 Box2FromCenter(const Vec2& center, double width, double height) {
  return MakeBox2(center.x - width / 2, center.y - height / 2,
                  center.x + width / 2, center.y + height / 2);
}

}  // namespace mars::geometry

#endif  // MARS_GEOMETRY_BOX_H_
