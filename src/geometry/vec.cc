#include "geometry/vec.h"

#include <ostream>

namespace mars::geometry {

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace mars::geometry
