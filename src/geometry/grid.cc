#include "geometry/grid.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mars::geometry {

GridPartition::GridPartition(const Box2& space, int32_t nx, int32_t ny)
    : space_(space), nx_(nx), ny_(ny) {
  MARS_CHECK(!space.IsEmpty());
  MARS_CHECK_GE(nx, 1);
  MARS_CHECK_GE(ny, 1);
  block_width_ = space.Extent(0) / nx;
  block_height_ = space.Extent(1) / ny;
}

int64_t GridPartition::BlockId(const BlockCoord& c) const {
  MARS_CHECK(IsValidCoord(c));
  return static_cast<int64_t>(c.j) * nx_ + c.i;
}

BlockCoord GridPartition::BlockCoordOf(int64_t id) const {
  MARS_CHECK_GE(id, 0);
  MARS_CHECK_LT(id, block_count());
  return BlockCoord{static_cast<int32_t>(id % nx_),
                    static_cast<int32_t>(id / nx_)};
}

BlockCoord GridPartition::BlockOfPoint(const Vec2& p) const {
  auto clamp_index = [](double t, int32_t n) {
    const int32_t idx = static_cast<int32_t>(std::floor(t));
    return std::clamp(idx, 0, n - 1);
  };
  return BlockCoord{
      clamp_index((p.x - space_.lo(0)) / block_width_, nx_),
      clamp_index((p.y - space_.lo(1)) / block_height_, ny_)};
}

Box2 GridPartition::BlockBox(const BlockCoord& c) const {
  MARS_CHECK(IsValidCoord(c));
  const double x0 = space_.lo(0) + c.i * block_width_;
  const double y0 = space_.lo(1) + c.j * block_height_;
  return MakeBox2(x0, y0, x0 + block_width_, y0 + block_height_);
}

Box2 GridPartition::BlockBox(int64_t id) const {
  return BlockBox(BlockCoordOf(id));
}

std::vector<int64_t> GridPartition::BlocksIntersecting(
    const Box2& window) const {
  std::vector<int64_t> out;
  const Box2 w = window.Intersection(space_);
  if (w.IsEmpty()) return out;
  const BlockCoord lo = BlockOfPoint({w.lo(0), w.lo(1)});
  // Nudge the upper corner inward so that a window ending exactly on a block
  // boundary does not claim the next block.
  const double eps_x = block_width_ * 1e-12;
  const double eps_y = block_height_ * 1e-12;
  const BlockCoord hi = BlockOfPoint({w.hi(0) - eps_x, w.hi(1) - eps_y});
  out.reserve(static_cast<size_t>(hi.i - lo.i + 1) *
              static_cast<size_t>(hi.j - lo.j + 1));
  for (int32_t j = lo.j; j <= hi.j; ++j) {
    for (int32_t i = lo.i; i <= hi.i; ++i) {
      out.push_back(BlockId(BlockCoord{i, j}));
    }
  }
  return out;
}

}  // namespace mars::geometry
