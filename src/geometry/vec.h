#ifndef MARS_GEOMETRY_VEC_H_
#define MARS_GEOMETRY_VEC_H_

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace mars::geometry {

// 2D vector/point over the ground plane of the data space.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }

  friend constexpr bool operator==(const Vec2& a, const Vec2& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

std::ostream& operator<<(std::ostream& os, const Vec2& v);

// 3D vector/point; mesh vertices and wavelet coefficient displacements.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_in, double y_in, double z_in)
      : x(x_in), y(y_in), z(z_in) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double Norm() const { return std::sqrt(x * x + y * y + z * z); }
  constexpr double SquaredNorm() const { return x * x + y * y + z * z; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

std::ostream& operator<<(std::ostream& os, const Vec3& v);

// Midpoint helpers used by the subdivision / wavelet code.
inline constexpr Vec3 Midpoint(const Vec3& a, const Vec3& b) {
  return (a + b) * 0.5;
}
inline constexpr Vec2 Midpoint(const Vec2& a, const Vec2& b) {
  return (a + b) * 0.5;
}

}  // namespace mars::geometry

#endif  // MARS_GEOMETRY_VEC_H_
