#ifndef MARS_GEOMETRY_GRID_H_
#define MARS_GEOMETRY_GRID_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/vec.h"

namespace mars::geometry {

// Integer coordinates of a grid block.
struct BlockCoord {
  int32_t i = 0;  // column (x)
  int32_t j = 0;  // row (y)

  friend bool operator==(const BlockCoord& a, const BlockCoord& b) {
    return a.i == b.i && a.j == b.j;
  }
};

// Partition of a 2D data space into nx × ny equally sized blocks, as used by
// the buffer-management cost model (paper Sec. V-A: "the data space is
// divided into grid-like blocks"). Block ids are row-major.
class GridPartition {
 public:
  // `space` must be non-empty; nx, ny >= 1.
  GridPartition(const Box2& space, int32_t nx, int32_t ny);

  const Box2& space() const { return space_; }
  int32_t nx() const { return nx_; }
  int32_t ny() const { return ny_; }
  int64_t block_count() const {
    return static_cast<int64_t>(nx_) * static_cast<int64_t>(ny_);
  }
  double block_width() const { return block_width_; }
  double block_height() const { return block_height_; }

  // Coordinate <-> id conversions. Ids are valid in [0, block_count()).
  int64_t BlockId(const BlockCoord& c) const;
  BlockCoord BlockCoordOf(int64_t id) const;

  // Block containing `p`; points outside the space are clamped to the
  // nearest edge block.
  BlockCoord BlockOfPoint(const Vec2& p) const;

  // Geometric extent of a block.
  Box2 BlockBox(const BlockCoord& c) const;
  Box2 BlockBox(int64_t id) const;

  // Ids of all blocks intersecting `window` (clamped to the space).
  std::vector<int64_t> BlocksIntersecting(const Box2& window) const;

  bool IsValidCoord(const BlockCoord& c) const {
    return c.i >= 0 && c.i < nx_ && c.j >= 0 && c.j < ny_;
  }

 private:
  Box2 space_;
  int32_t nx_;
  int32_t ny_;
  double block_width_;
  double block_height_;
};

}  // namespace mars::geometry

#endif  // MARS_GEOMETRY_GRID_H_
