#ifndef MARS_GEOMETRY_RECT_DIFF_H_
#define MARS_GEOMETRY_RECT_DIFF_H_

#include <vector>

#include "geometry/box.h"

namespace mars::geometry {

// Decomposes the set difference a − b into at most 2*N boxes with pairwise
// disjoint interiors whose union covers {p in a : p not in b} (closed boxes
// share only boundary faces, which have zero measure). Used by the
// continuous-retrieval algorithm (paper Sec. IV) to split Q_t − Q_{t−1} into
// sub-query rectangles the server executes separately.
//
// Guillotine construction: walk the dimensions; in each, slice off the parts
// of `a` lying below b.lo and above b.hi, then continue with the clamped
// middle slab. Returns {a} when the boxes do not intersect, and {} when b
// covers a.
template <size_t N>
std::vector<Box<N>> Difference(const Box<N>& a, const Box<N>& b) {
  std::vector<Box<N>> pieces;
  if (a.IsEmpty()) return pieces;
  if (!a.Intersects(b)) {
    pieces.push_back(a);
    return pieces;
  }
  Box<N> rest = a;
  for (size_t d = 0; d < N; ++d) {
    if (b.lo(d) > rest.lo(d)) {
      Box<N> below = rest;
      below.set_hi(d, b.lo(d));
      pieces.push_back(below);
      rest.set_lo(d, b.lo(d));
    }
    if (b.hi(d) < rest.hi(d)) {
      Box<N> above = rest;
      above.set_lo(d, b.hi(d));
      pieces.push_back(above);
      rest.set_hi(d, b.hi(d));
    }
  }
  // `rest` is now a ∩ b and is dropped.
  return pieces;
}

}  // namespace mars::geometry

#endif  // MARS_GEOMETRY_RECT_DIFF_H_
