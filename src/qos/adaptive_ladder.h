#ifndef MARS_QOS_ADAPTIVE_LADDER_H_
#define MARS_QOS_ADAPTIVE_LADDER_H_

#include <cstdint>

#include "qos/resolution_policy.h"

namespace mars::qos {

// Per-client adaptive resolution ladder — the bitrate-ladder adaptation of
// HTTP adaptive streaming with wavelet w_min as the quality axis. The
// ladder has `ladder_steps` + 1 rungs: rung 0 is the paper's static
// mapping (full detail for the current speed), rung N compresses the
// request band all the way to the coarsest coefficients. Under congestion
// (admission backpressure, or measured goodput collapsing below target)
// the client climbs a rung — fetch coarse now; when the cell clears it
// steps back down, and Algorithm 1's resolution-increment path tops the
// detail back up from whatever band is already held.
//
// Everything is driven by integer-microsecond virtual timestamps supplied
// by the fleet's serial phases, so ladder trajectories are deterministic
// and byte-identical at any worker count.
class AdaptiveLadderPolicy final : public ResolutionPolicy {
 public:
  struct Options {
    SpeedResolutionMap speed_map;  // rung-0 mapping
    // Rungs above the static mapping. Rung k maps
    // w = base + (1 - base) * k / ladder_steps.
    int32_t ladder_steps = 4;
    // Goodput considered healthy at rung 0, bytes/second. Below half of
    // it the ladder climbs off rung 0 even without an admission verdict
    // (starvation under WFQ stretches latencies without ever deferring).
    // Higher rungs ignore it — their goodput is structurally low because
    // they request little — and instead probe one rung down whenever no
    // backpressure has been seen for a dwell.
    double target_goodput_bps = 16.0 * 1024.0;
    // Minimum virtual time between ladder moves. Deferred-verdict climbs
    // and all descents respect it; a shed climbs immediately (the cell is
    // past overload, waiting is wrong).
    int64_t dwell_micros = 2'000'000;
    // EWMA smoothing for the instantaneous delivery rate.
    double ewma_alpha = 0.3;
  };

  AdaptiveLadderPolicy() : AdaptiveLadderPolicy(Options{}) {}
  explicit AdaptiveLadderPolicy(const Options& options);

  double MapSpeedToResolution(double speed) const override;
  void OnDelivered(int64_t bytes, int64_t vtime_micros) override;
  void OnBackpressure(BackpressureKind kind, int64_t vtime_micros) override;
  PolicySnapshot snapshot() const override;

  int32_t ladder_step() const { return step_; }

 private:
  void StepUp(int64_t vtime_micros);

  Options options_;
  int32_t step_ = 0;
  double goodput_ewma_bps_ = -1.0;  // < 0: no sample yet
  int64_t last_delivery_micros_ = -1;
  int64_t last_change_micros_ = -1;
  int64_t last_backpressure_micros_ = -1;
  // Exponential probe backoff: a descent is a probe of the wider band
  // one rung down. A probe that fails (the next move is a climb) doubles
  // the dwell required before the next probe; a probe that holds resets
  // it. Without this the ladder re-probes every dwell, and each failed
  // probe ships one oversized exchange that clogs the client's queue.
  bool last_change_was_descent_ = false;
  int32_t probe_backoff_ = 1;
  int64_t step_ups_ = 0;
  int64_t top_ups_ = 0;
  // Request trace (PolicySnapshot::map_calls / resolution_sum). Mutable:
  // MapSpeedToResolution is const by contract, and each policy instance
  // belongs to exactly one client's step, so there is no concurrency.
  mutable int64_t map_calls_ = 0;
  mutable double resolution_sum_ = 0.0;
};

}  // namespace mars::qos

#endif  // MARS_QOS_ADAPTIVE_LADDER_H_
