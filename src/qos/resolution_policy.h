#ifndef MARS_QOS_RESOLUTION_POLICY_H_
#define MARS_QOS_RESOLUTION_POLICY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace mars::qos {

// MapSpeedToResolution (paper Sec. IV / Algorithm 1, line 1.3): converts
// the client's normalized speed into the band of coefficient values to
// retrieve. The default is the paper's experimental convention
// (Sec. VII-A): speed is "inversely proportional to the value of the
// wavelet coefficients retrieved", i.e. w_min = speed — a client at speed
// 0.5 retrieves coefficients with w ∈ [0.5, 1.0]; at speed ≈ 0 it
// retrieves everything.
//
// The function is "application dependent and ... should be adjusted by the
// vendor"; `exponent` and `floor` are the QoS tuning knobs (exponent < 1
// keeps more detail at moderate speeds; floor > 0 caps the finest
// resolution ever requested, e.g. for small displays).
class SpeedResolutionMap {
 public:
  SpeedResolutionMap() = default;
  SpeedResolutionMap(double exponent, double floor)
      : exponent_(exponent), floor_(floor) {}

  // Returns w_min for a normalized speed in [0, 1].
  double MapSpeedToResolution(double speed) const {
    const double s = std::clamp(speed, 0.0, 1.0);
    return std::clamp(floor_ + (1.0 - floor_) * std::pow(s, exponent_),
                      0.0, 1.0);
  }

  double exponent() const { return exponent_; }
  double floor() const { return floor_; }

 private:
  double exponent_ = 1.0;
  double floor_ = 0.0;
};

// The two backpressure verdicts the admission controller can hand a
// client's request (server/admission.h): deferred (retry later) or shed.
enum class BackpressureKind : uint8_t {
  kDefer = 0,
  kShed = 1,
};

// Observable adaptation state, exported per client in the fleet JSON.
// All-zero for policies that never adapt.
struct PolicySnapshot {
  int32_t ladder_step = 0;       // 0 = full detail, N = coarsest
  double goodput_ewma_bps = 0.0; // measured delivery rate, bytes/second
  int64_t step_ups = 0;          // degradations (w_min raised)
  int64_t top_ups = 0;           // recoveries (w_min lowered again)
  // Request trace: how many speed → w_min mappings the client asked for
  // and the sum of the returned w_min values. resolution_sum / map_calls
  // is the mean requested w_min — 1 minus the mean band width actually
  // retrieved, the "delivered resolution" term of the ABR utility gate.
  int64_t map_calls = 0;
  double resolution_sum = 0.0;
};

// The QoS seam of the resolution pipeline. A policy owns the
// speed → w_min decision (Algorithm 1 line 1.3) for one client, plus the
// feedback hooks that let an adaptive implementation close the loop on
// congestion.
//
// Threading contract (mirrors the fleet tick): MapSpeedToResolution is
// const and is called from the parallel client-step phase; OnDelivered /
// OnBackpressure mutate and are called only from the serial commit phase,
// in deterministic (client-id / completion) order with integer-microsecond
// virtual timestamps. The phases are separated by the tick barrier, so no
// synchronization is needed inside a policy.
class ResolutionPolicy {
 public:
  virtual ~ResolutionPolicy() = default;

  // Returns w_min in [0, 1] for a normalized speed in [0, 1].
  virtual double MapSpeedToResolution(double speed) const = 0;

  // The cell delivered `bytes` of this client's traffic, completing at
  // virtual time `vtime_micros`. Default: ignore.
  virtual void OnDelivered(int64_t /*bytes*/, int64_t /*vtime_micros*/) {}

  // The admission controller deferred or shed this client's request at
  // virtual time `vtime_micros`. Default: ignore.
  virtual void OnBackpressure(BackpressureKind /*kind*/,
                              int64_t /*vtime_micros*/) {}

  virtual PolicySnapshot snapshot() const { return {}; }
};

// The paper's fixed mapping wrapped as a policy: stateless, ignores all
// feedback. This is the default everywhere (`--abr off`) and is a strict
// passthrough — it calls the exact SpeedResolutionMap arithmetic, so
// output is bit-identical to the pre-policy pipeline.
class StaticResolutionPolicy final : public ResolutionPolicy {
 public:
  StaticResolutionPolicy() = default;
  explicit StaticResolutionPolicy(const SpeedResolutionMap& map)
      : map_(map) {}

  double MapSpeedToResolution(double speed) const override {
    return map_.MapSpeedToResolution(speed);
  }

  const SpeedResolutionMap& map() const { return map_; }

 private:
  SpeedResolutionMap map_;
};

}  // namespace mars::qos

#endif  // MARS_QOS_RESOLUTION_POLICY_H_
