#include "qos/adaptive_ladder.h"

#include <algorithm>

#include "common/logging.h"

namespace mars::qos {

AdaptiveLadderPolicy::AdaptiveLadderPolicy(const Options& options)
    : options_(options) {
  MARS_CHECK(options_.ladder_steps >= 1);
  MARS_CHECK(options_.dwell_micros >= 0);
  MARS_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0);
}

double AdaptiveLadderPolicy::MapSpeedToResolution(double speed) const {
  const double base = options_.speed_map.MapSpeedToResolution(speed);
  const double w =
      step_ == 0
          ? base
          : std::clamp(base + (1.0 - base) * static_cast<double>(step_) /
                                  static_cast<double>(options_.ladder_steps),
                       0.0, 1.0);
  ++map_calls_;
  resolution_sum_ += w;
  return w;
}

void AdaptiveLadderPolicy::StepUp(int64_t vtime_micros) {
  if (last_change_was_descent_) {
    // The previous move was a downward probe and it failed: back off
    // probing exponentially.
    probe_backoff_ = std::min(probe_backoff_ * 2, 64);
    last_change_was_descent_ = false;
  }
  if (step_ >= options_.ladder_steps) return;
  ++step_;
  ++step_ups_;
  last_change_micros_ = vtime_micros;
}

void AdaptiveLadderPolicy::OnDelivered(int64_t bytes, int64_t vtime_micros) {
  if (last_delivery_micros_ >= 0 && vtime_micros > last_delivery_micros_) {
    const double dt =
        static_cast<double>(vtime_micros - last_delivery_micros_) * 1e-6;
    const double inst = static_cast<double>(bytes) / dt;
    goodput_ewma_bps_ =
        goodput_ewma_bps_ < 0.0
            ? inst
            : (1.0 - options_.ewma_alpha) * goodput_ewma_bps_ +
                  options_.ewma_alpha * inst;
  }
  last_delivery_micros_ = vtime_micros;

  const bool dwelled = last_change_micros_ < 0 ||
                       vtime_micros - last_change_micros_ >=
                           options_.dwell_micros;
  if (!dwelled || goodput_ewma_bps_ < 0.0) return;

  if (step_ == 0 &&
      goodput_ewma_bps_ < 0.5 * options_.target_goodput_bps) {
    // Starving at full detail without an explicit verdict (WFQ stretches
    // latencies without ever deferring): climb anyway. The rule only
    // applies at rung 0 — a coarse rung's goodput is structurally low
    // because it requests little, and judging it against a full-band
    // target would ratchet the client to the top rung (requesting
    // nothing) with no way back down.
    StepUp(vtime_micros);
    return;
  }
  const bool backpressure_cleared =
      last_backpressure_micros_ < 0 ||
      vtime_micros - last_backpressure_micros_ >= options_.dwell_micros;
  const bool probe_dwelled =
      last_change_micros_ < 0 ||
      vtime_micros - last_change_micros_ >=
          options_.dwell_micros * static_cast<int64_t>(probe_backoff_);
  if (step_ > 0 && backpressure_cleared && probe_dwelled) {
    // No congestion signal for a full dwell: probe one rung down. The
    // lowered w_min makes the client's next plan a resolution increment
    // over what it already holds — the top-up path of Algorithm 1. If
    // the lower rung overloads the cell again, the resulting deferral
    // climbs right back (and doubles the probe backoff): the ladder
    // settles within one rung of the widest band the cell can actually
    // carry instead of oscillating every dwell.
    if (last_change_was_descent_) probe_backoff_ = 1;  // last probe held
    --step_;
    ++top_ups_;
    last_change_micros_ = vtime_micros;
    last_change_was_descent_ = true;
  }
}

void AdaptiveLadderPolicy::OnBackpressure(BackpressureKind kind,
                                          int64_t vtime_micros) {
  last_backpressure_micros_ = vtime_micros;
  const bool dwelled = last_change_micros_ < 0 ||
                       vtime_micros - last_change_micros_ >=
                           options_.dwell_micros;
  if (kind == BackpressureKind::kShed || dwelled) {
    StepUp(vtime_micros);
  }
}

PolicySnapshot AdaptiveLadderPolicy::snapshot() const {
  PolicySnapshot snap;
  snap.ladder_step = step_;
  snap.goodput_ewma_bps = goodput_ewma_bps_ < 0.0 ? 0.0 : goodput_ewma_bps_;
  snap.step_ups = step_ups_;
  snap.top_ups = top_ups_;
  snap.map_calls = map_calls_;
  snap.resolution_sum = resolution_sum_;
  return snap;
}

}  // namespace mars::qos
