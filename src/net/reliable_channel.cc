#include "net/reliable_channel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mars::net {

ReliableChannel::ReliableChannel(SimulatedLink* link, Options options)
    : options_(options), link_(link), rng_(options.seed) {
  MARS_CHECK(link != nullptr);
  MARS_CHECK_GT(options.max_attempts, 0);
  MARS_CHECK_GE(options.base_backoff_seconds, 0.0);
  MARS_CHECK_GE(options.backoff_multiplier, 1.0);
  MARS_CHECK_GE(options.max_backoff_seconds, options.base_backoff_seconds);
  MARS_CHECK_GE(options.jitter_fraction, 0.0);
  MARS_CHECK_GT(options.deadline_seconds, 0.0);
}

void ReliableChannel::Defer(double seconds) {
  MARS_CHECK_GE(seconds, 0.0);
  pending_defer_seconds_ += seconds;
}

ReliableChannel::Result ReliableChannel::Exchange(int64_t request_bytes,
                                                  int64_t response_bytes,
                                                  double speed) {
  Result result;
  ++total_exchanges_;

  // Honor accumulated admission backpressure before the first attempt:
  // the wait advances the link clock (so fault windows progress) and
  // counts toward the exchange's wall time, but not its deadline — the
  // deferral was the server's choice, not lost connectivity.
  if (pending_defer_seconds_ > 0.0) {
    link_->Wait(pending_defer_seconds_);
    result.seconds += pending_defer_seconds_;
    total_deferred_seconds_ += pending_defer_seconds_;
    ++total_deferrals_;
    pending_defer_seconds_ = 0.0;
  }

  // Deadline budget starts after any deferral wait.
  const double deadline_at = result.seconds + options_.deadline_seconds;
  int64_t remaining_response = response_bytes;
  double backoff = options_.base_backoff_seconds;

  while (result.attempts < options_.max_attempts) {
    ++result.attempts;
    const SimulatedLink::AttemptOutcome outcome =
        link_->Attempt(request_bytes, remaining_response, speed);
    result.seconds += outcome.seconds;
    if (outcome.delivered) {
      result.status = common::OkStatus();
      return result;
    }

    ++result.retries;
    ++total_retries_;

    // Partial-transfer resume: bytes that arrived before the drop stay
    // delivered; only the remainder of the response is re-sent. Request
    // headers are small and always re-sent.
    const int64_t saved = static_cast<int64_t>(
        std::floor(static_cast<double>(remaining_response) *
                   outcome.fraction_received));
    remaining_response -= saved;
    result.bytes_saved_by_resume += saved;
    total_bytes_saved_ += saved;

    if (result.seconds >= deadline_at) {
      result.status = common::InternalError(
          "reliable exchange missed its deadline (lost connectivity)");
      ++total_failures_;
      return result;
    }
    if (result.attempts >= options_.max_attempts) break;

    // Exponential backoff with deterministic jitter before the retry.
    double wait = std::min(backoff, options_.max_backoff_seconds);
    if (options_.jitter_fraction > 0.0) {
      wait *= 1.0 + options_.jitter_fraction * rng_.UniformDouble();
    }
    backoff *= options_.backoff_multiplier;
    link_->Wait(wait);
    result.seconds += wait;
    total_backoff_seconds_ += wait;
    if (result.seconds >= deadline_at) {
      result.status = common::InternalError(
          "reliable exchange missed its deadline (lost connectivity)");
      ++total_failures_;
      return result;
    }
  }

  result.status = common::ResourceExhaustedError(
      "reliable exchange exhausted its retry budget");
  ++total_failures_;
  return result;
}

void ReliableChannel::ResetStats() {
  total_exchanges_ = 0;
  total_retries_ = 0;
  total_failures_ = 0;
  total_bytes_saved_ = 0;
  total_deferrals_ = 0;
  total_backoff_seconds_ = 0.0;
  total_deferred_seconds_ = 0.0;
}

}  // namespace mars::net
