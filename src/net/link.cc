#include "net/link.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace mars::net {

SimulatedLink::SimulatedLink() : SimulatedLink(Options()) {}

SimulatedLink::SimulatedLink(Options options)
    : options_(options), rng_(options.loss_seed) {
  MARS_CHECK_GT(options.bandwidth_kbps, 0.0);
  MARS_CHECK_GE(options.latency_seconds, 0.0);
  MARS_CHECK_GE(options.motion_degradation, 0.0);
  MARS_CHECK_LT(options.motion_degradation, 1.0);
  MARS_CHECK_GE(options.loss_probability, 0.0);
  MARS_CHECK_LT(options.loss_probability, 0.5);
}

double SimulatedLink::UsableBandwidth(double speed) const {
  const double s = std::clamp(speed, 0.0, 1.0);
  return common::KbpsToBytesPerSecond(options_.bandwidth_kbps) *
         (1.0 - options_.motion_degradation * s);
}

double SimulatedLink::ExchangeSeconds(int64_t request_bytes,
                                      int64_t response_bytes,
                                      double speed) const {
  MARS_CHECK_GE(request_bytes, 0);
  MARS_CHECK_GE(response_bytes, 0);
  const double bw = UsableBandwidth(speed);
  return options_.latency_seconds +
         static_cast<double>(request_bytes + response_bytes) / bw;
}

double SimulatedLink::Exchange(int64_t request_bytes, int64_t response_bytes,
                               double speed) {
  double seconds = ExchangeSeconds(request_bytes, response_bytes, speed);
  if (options_.loss_probability > 0.0) {
    // Each attempt may be lost: pay its latency plus a random fraction of
    // the transfer before noticing, then retry. Loss worsens with speed.
    const double p = std::min(
        0.95, options_.loss_probability * (1.0 + std::clamp(speed, 0.0, 1.0)));
    const double transfer = seconds - options_.latency_seconds;
    double wasted = 0.0;
    while (rng_.Bernoulli(p)) {
      wasted += options_.latency_seconds + rng_.UniformDouble() * transfer;
      ++total_retries_;
    }
    seconds += wasted;
  }
  ++total_requests_;
  total_bytes_up_ += request_bytes;
  total_bytes_down_ += response_bytes;
  total_seconds_ += seconds;
  return seconds;
}

void SimulatedLink::ResetStats() {
  total_requests_ = 0;
  total_bytes_down_ = 0;
  total_bytes_up_ = 0;
  total_retries_ = 0;
  total_seconds_ = 0.0;
}

}  // namespace mars::net
