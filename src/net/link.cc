#include "net/link.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace mars::net {

SimulatedLink::SimulatedLink() : SimulatedLink(Options()) {}

SimulatedLink::SimulatedLink(Options options)
    : options_(options), rng_(options.loss_seed) {
  MARS_CHECK_GT(options.bandwidth_kbps, 0.0);
  MARS_CHECK_GE(options.latency_seconds, 0.0);
  MARS_CHECK_GE(options.motion_degradation, 0.0);
  MARS_CHECK_LT(options.motion_degradation, 1.0);
  MARS_CHECK_GE(options.loss_probability, 0.0);
  MARS_CHECK_LT(options.loss_probability, 0.5);
  MARS_CHECK_GT(options.max_retries_per_exchange, 0);
}

void SimulatedLink::Wait(double seconds) {
  MARS_CHECK_GE(seconds, 0.0);
  total_seconds_ += seconds;
}

double SimulatedLink::UsableBandwidth(double speed) const {
  const double s = std::clamp(speed, 0.0, 1.0);
  return common::KbpsToBytesPerSecond(options_.bandwidth_kbps) *
         (1.0 - options_.motion_degradation * s);
}

double SimulatedLink::ExchangeSeconds(int64_t request_bytes,
                                      int64_t response_bytes,
                                      double speed) const {
  MARS_CHECK_GE(request_bytes, 0);
  MARS_CHECK_GE(response_bytes, 0);
  const double bw = UsableBandwidth(speed);
  return options_.latency_seconds +
         static_cast<double>(request_bytes + response_bytes) / bw;
}

double SimulatedLink::RawSeconds(int64_t request_bytes,
                                 int64_t response_bytes, double speed) {
  double seconds = ExchangeSeconds(request_bytes, response_bytes, speed);
  if (fault_ != nullptr && fault_->enabled()) {
    const double factor = fault_->BandwidthFactor(total_seconds_);
    if (factor < 1.0) {
      // Only the transfer part stretches; latency is propagation.
      seconds = options_.latency_seconds +
                (seconds - options_.latency_seconds) / factor;
    }
  }
  return seconds;
}

SimulatedLink::AttemptOutcome SimulatedLink::Attempt(int64_t request_bytes,
                                                     int64_t response_bytes,
                                                     double speed) {
  AttemptOutcome outcome;

  // An attempt inside an outage window fails fast: the connection setup
  // never completes, costing one latency.
  if (fault_ != nullptr && fault_->enabled() &&
      fault_->InOutage(total_seconds_)) {
    outcome.delivered = false;
    outcome.seconds = options_.latency_seconds;
    outcome.fraction_received = 0.0;
    ++total_retries_;
    total_seconds_ += outcome.seconds;
    return outcome;
  }

  const double seconds = RawSeconds(request_bytes, response_bytes, speed);
  double p = 0.0;
  if (options_.loss_probability > 0.0) {
    p = options_.loss_probability * (1.0 + std::clamp(speed, 0.0, 1.0));
    if (fault_ != nullptr && fault_->enabled()) {
      p *= fault_->LossFactor(total_seconds_);
    }
    p = std::min(0.95, p);
  }

  if (p > 0.0 && rng_.Bernoulli(p)) {
    // Lost: pay the latency plus a random fraction of the transfer before
    // noticing. The delivered fraction is not re-sent by resuming callers.
    const double fraction = rng_.UniformDouble();
    const double transfer = seconds - options_.latency_seconds;
    outcome.delivered = false;
    outcome.seconds = options_.latency_seconds + fraction * transfer;
    outcome.fraction_received = fraction;
    ++total_retries_;
  } else {
    outcome.delivered = true;
    outcome.seconds = seconds;
    outcome.fraction_received = 1.0;
    ++total_requests_;
    total_bytes_up_ += request_bytes;
    total_bytes_down_ += response_bytes;
  }
  total_seconds_ += outcome.seconds;
  return outcome;
}

double SimulatedLink::Exchange(int64_t request_bytes, int64_t response_bytes,
                               double speed) {
  // Fast path: no loss process and no fault schedule — pure arithmetic,
  // no RNG consumption, bit-identical to the pre-fault-layer link.
  if (options_.loss_probability <= 0.0 &&
      (fault_ == nullptr || !fault_->enabled())) {
    const double seconds =
        ExchangeSeconds(request_bytes, response_bytes, speed);
    ++total_requests_;
    total_bytes_up_ += request_bytes;
    total_bytes_down_ += response_bytes;
    total_seconds_ += seconds;
    return seconds;
  }

  double seconds = 0.0;
  int32_t lost_attempts = 0;
  while (true) {
    const AttemptOutcome outcome =
        Attempt(request_bytes, response_bytes, speed);
    seconds += outcome.seconds;
    if (outcome.delivered) return seconds;
    if (++lost_attempts >= options_.max_retries_per_exchange) break;
  }

  // Retry cap hit: count a timeout and force the exchange through — wait
  // out any remaining outage, then deliver. Legacy callers treat the link
  // as eventually reliable; ReliableChannel callers never reach this (their
  // attempt budget is far below the cap).
  ++total_timeouts_;
  if (fault_ != nullptr && fault_->enabled()) {
    const double wait = fault_->OutageRemaining(total_seconds_);
    seconds += wait;
    total_seconds_ += wait;
  }
  const double final_seconds =
      RawSeconds(request_bytes, response_bytes, speed);
  seconds += final_seconds;
  ++total_requests_;
  total_bytes_up_ += request_bytes;
  total_bytes_down_ += response_bytes;
  total_seconds_ += final_seconds;
  return seconds;
}

void SimulatedLink::ResetStats() {
  total_requests_ = 0;
  total_bytes_down_ = 0;
  total_bytes_up_ = 0;
  total_retries_ = 0;
  total_timeouts_ = 0;
  total_seconds_ = 0.0;
}

}  // namespace mars::net

