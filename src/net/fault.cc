#include "net/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mars::net {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

FaultSchedule::Track::Track(double rate_per_hour, double mean_seconds,
                            uint64_t seed)
    : rate_per_hour_(rate_per_hour),
      mean_seconds_(mean_seconds),
      rng_(seed) {
  MARS_CHECK_GE(rate_per_hour, 0.0);
  if (rate_per_hour > 0.0) {
    MARS_CHECK_GT(mean_seconds, 0.0);
  }
}

double FaultSchedule::Track::SampleExp(double mean) {
  // Inverse-CDF sampling; UniformDouble() < 1 keeps the log finite.
  return -mean * std::log(1.0 - rng_.UniformDouble());
}

void FaultSchedule::Track::EnsureCovered(double t) {
  if (!active()) return;
  const double gap_mean = 3600.0 / rate_per_hour_;
  while (horizon_ <= t) {
    Window w;
    w.start = horizon_ + SampleExp(gap_mean);
    w.end = w.start + SampleExp(mean_seconds_);
    windows_.push_back(w);
    horizon_ = w.end;
  }
}

const FaultSchedule::Window* FaultSchedule::Track::Covering(double t) {
  if (!active() || t < 0.0) return nullptr;
  EnsureCovered(t);
  // First window whose end is past t; covers t iff it has started.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](double value, const Window& w) { return value < w.end; });
  if (it == windows_.end() || it->start > t) return nullptr;
  return &*it;
}

double FaultSchedule::Track::NextBoundaryAfter(double t) {
  if (!active()) return kInfinity;
  EnsureCovered(t);
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](double value, const Window& w) { return value < w.end; });
  // The end() case is unreachable after EnsureCovered.
  if (it == windows_.end()) return kInfinity;
  return it->start > t ? it->start : it->end;
}

FaultSchedule::FaultSchedule() : FaultSchedule(Options()) {}

FaultSchedule::FaultSchedule(Options options)
    : options_(options),
      enabled_(options.outage_rate_per_hour > 0.0 ||
               options.burst_rate_per_hour > 0.0 ||
               options.dip_rate_per_hour > 0.0),
      // Distinct derived seeds keep the three processes independent.
      outages_(options.outage_rate_per_hour, options.outage_mean_seconds,
               options.seed * 2654435761u + 1),
      bursts_(options.burst_rate_per_hour, options.burst_mean_seconds,
              options.seed * 2654435761u + 2),
      dips_(options.dip_rate_per_hour, options.dip_mean_seconds,
            options.seed * 2654435761u + 3) {
  MARS_CHECK_GE(options.burst_loss_factor, 1.0);
  MARS_CHECK_GT(options.dip_bandwidth_factor, 0.0);
  MARS_CHECK_LE(options.dip_bandwidth_factor, 1.0);
}

void FaultSchedule::InjectOutage(double start, double duration) {
  MARS_CHECK_GE(start, 0.0);
  MARS_CHECK_GT(duration, 0.0);
  Window w;
  w.start = start;
  w.end = start + duration;
  // Injections arrive in nondecreasing simulated time in practice; the
  // insertion sort keeps the vector ordered even if they do not.
  auto it = std::upper_bound(injected_.begin(), injected_.end(), w,
                             [](const Window& a, const Window& b) {
                               return a.start < b.start;
                             });
  injected_.insert(it, w);
}

const FaultSchedule::Window* FaultSchedule::InjectedCovering(
    double t) const {
  // Windows may overlap (a handover inside a blackout); report the one
  // reaching furthest so OutageRemaining covers the union.
  const Window* best = nullptr;
  for (const Window& w : injected_) {
    if (w.start > t) break;
    if (t < w.end && (best == nullptr || w.end > best->end)) best = &w;
  }
  return best;
}

bool FaultSchedule::InOutage(double t) {
  if (outages_.active() && outages_.Covering(t) != nullptr) return true;
  return InjectedCovering(t) != nullptr;
}

double FaultSchedule::OutageRemaining(double t) {
  double remaining = 0.0;
  if (outages_.active()) {
    const Window* w = outages_.Covering(t);
    if (w != nullptr) remaining = w->end - t;
  }
  const Window* inj = InjectedCovering(t);
  if (inj != nullptr) remaining = std::max(remaining, inj->end - t);
  return remaining;
}

double FaultSchedule::LossFactor(double t) {
  return bursts_.Covering(t) != nullptr ? options_.burst_loss_factor : 1.0;
}

double FaultSchedule::BandwidthFactor(double t) {
  return dips_.Covering(t) != nullptr ? options_.dip_bandwidth_factor : 1.0;
}

double FaultSchedule::NextBoundaryAfter(double t) {
  double next = std::min({outages_.NextBoundaryAfter(t),
                          bursts_.NextBoundaryAfter(t),
                          dips_.NextBoundaryAfter(t)});
  for (const Window& w : injected_) {
    if (w.start > t) {
      next = std::min(next, w.start);
      break;  // sorted by start; later windows cannot be nearer
    }
    if (w.end > t) next = std::min(next, w.end);
  }
  return next;
}

}  // namespace mars::net
