#include "net/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mars::net {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

FaultSchedule::Track::Track(double rate_per_hour, double mean_seconds,
                            uint64_t seed)
    : rate_per_hour_(rate_per_hour),
      mean_seconds_(mean_seconds),
      rng_(seed) {
  MARS_CHECK_GE(rate_per_hour, 0.0);
  if (rate_per_hour > 0.0) {
    MARS_CHECK_GT(mean_seconds, 0.0);
  }
}

double FaultSchedule::Track::SampleExp(double mean) {
  // Inverse-CDF sampling; UniformDouble() < 1 keeps the log finite.
  return -mean * std::log(1.0 - rng_.UniformDouble());
}

void FaultSchedule::Track::EnsureCovered(double t) {
  if (!active()) return;
  const double gap_mean = 3600.0 / rate_per_hour_;
  while (horizon_ <= t) {
    Window w;
    w.start = horizon_ + SampleExp(gap_mean);
    w.end = w.start + SampleExp(mean_seconds_);
    windows_.push_back(w);
    horizon_ = w.end;
  }
}

const FaultSchedule::Window* FaultSchedule::Track::Covering(double t) {
  if (!active() || t < 0.0) return nullptr;
  EnsureCovered(t);
  // First window whose end is past t; covers t iff it has started.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](double value, const Window& w) { return value < w.end; });
  if (it == windows_.end() || it->start > t) return nullptr;
  return &*it;
}

double FaultSchedule::Track::NextBoundaryAfter(double t) {
  if (!active()) return kInfinity;
  EnsureCovered(t);
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](double value, const Window& w) { return value < w.end; });
  if (it == windows_.end()) return kInfinity;  // unreachable after EnsureCovered
  return it->start > t ? it->start : it->end;
}

FaultSchedule::FaultSchedule() : FaultSchedule(Options()) {}

FaultSchedule::FaultSchedule(Options options)
    : options_(options),
      enabled_(options.outage_rate_per_hour > 0.0 ||
               options.burst_rate_per_hour > 0.0 ||
               options.dip_rate_per_hour > 0.0),
      // Distinct derived seeds keep the three processes independent.
      outages_(options.outage_rate_per_hour, options.outage_mean_seconds,
               options.seed * 2654435761u + 1),
      bursts_(options.burst_rate_per_hour, options.burst_mean_seconds,
              options.seed * 2654435761u + 2),
      dips_(options.dip_rate_per_hour, options.dip_mean_seconds,
            options.seed * 2654435761u + 3) {
  MARS_CHECK_GE(options.burst_loss_factor, 1.0);
  MARS_CHECK_GT(options.dip_bandwidth_factor, 0.0);
  MARS_CHECK_LE(options.dip_bandwidth_factor, 1.0);
}

bool FaultSchedule::InOutage(double t) {
  return outages_.Covering(t) != nullptr;
}

double FaultSchedule::OutageRemaining(double t) {
  const Window* w = outages_.Covering(t);
  return w == nullptr ? 0.0 : w->end - t;
}

double FaultSchedule::LossFactor(double t) {
  return bursts_.Covering(t) != nullptr ? options_.burst_loss_factor : 1.0;
}

double FaultSchedule::BandwidthFactor(double t) {
  return dips_.Covering(t) != nullptr ? options_.dip_bandwidth_factor : 1.0;
}

double FaultSchedule::NextBoundaryAfter(double t) {
  return std::min({outages_.NextBoundaryAfter(t),
                   bursts_.NextBoundaryAfter(t),
                   dips_.NextBoundaryAfter(t)});
}

}  // namespace mars::net
