#ifndef MARS_NET_CELL_TOPOLOGY_H_
#define MARS_NET_CELL_TOPOLOGY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "geometry/box.h"
#include "geometry/vec.h"

namespace mars::net {

// Ground-plane radio topology: a uniform grid of K cells tiling the data
// space, each cell one base station (one SharedMediumLink in the fleet
// engine). Mirrors index::ShardMap's near-square grid (cols =
// ceil(sqrt(K)); trailing grid slots wrap onto the first cells), so the
// serving layout and the index's placement layout speak the same
// coordinates.
//
// Beyond position → cell routing, the topology precomputes each cell's
// *failover order*: the other cells sorted by center distance (ties to
// the lower id). When a cell is down, its clients are served by the
// nearest healthy neighbour — the deterministic coverage rule the
// handover machinery and the chaos harness rely on.
class CellTopology {
 public:
  // Single-cell passthrough: everything maps to cell 0.
  CellTopology() = default;

  static CellTopology Build(const geometry::Box2& bounds, int32_t cells) {
    MARS_CHECK_GE(cells, 1);
    CellTopology topo;
    topo.cells_ = cells;
    topo.bounds_ = bounds;
    topo.cols_ = static_cast<int32_t>(
        std::ceil(std::sqrt(static_cast<double>(cells))));
    topo.rows_ = (cells + topo.cols_ - 1) / topo.cols_;
    topo.failover_.resize(static_cast<size_t>(cells));
    for (int32_t k = 0; k < cells; ++k) {
      const geometry::Vec2 center = topo.CenterOf(k);
      std::vector<int32_t>& order = topo.failover_[static_cast<size_t>(k)];
      order.reserve(static_cast<size_t>(cells - 1));
      for (int32_t other = 0; other < cells; ++other) {
        if (other != k) order.push_back(other);
      }
      std::sort(order.begin(), order.end(),
                [&](int32_t a, int32_t b) {
                  const double da =
                      (topo.CenterOf(a) - center).SquaredNorm();
                  const double db =
                      (topo.CenterOf(b) - center).SquaredNorm();
                  if (da != db) return da < db;
                  return a < b;
                });
    }
    return topo;
  }

  int32_t cells() const { return cells_; }
  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  const geometry::Box2& bounds() const { return bounds_; }

  // Cell covering a ground point (clamped into the grid).
  int32_t CellAt(const geometry::Vec2& p) const {
    if (cells_ == 1 || bounds_.IsEmpty()) return 0;
    const int32_t col = Clamp(
        static_cast<int32_t>((p.x - bounds_.lo(0)) / CellWidth()), cols_);
    const int32_t row = Clamp(
        static_cast<int32_t>((p.y - bounds_.lo(1)) / CellHeight()), rows_);
    return (row * cols_ + col) % cells_;
  }

  // Center of cell k's primary grid slot.
  geometry::Vec2 CenterOf(int32_t cell) const {
    if (cells_ == 1 || bounds_.IsEmpty()) return {0.0, 0.0};
    const int32_t row = cell / cols_;
    const int32_t col = cell % cols_;
    return {bounds_.lo(0) + (col + 0.5) * CellWidth(),
            bounds_.lo(1) + (row + 0.5) * CellHeight()};
  }

  // Cells other than `cell`, nearest center first (ties to lower id).
  const std::vector<int32_t>& FailoverOrder(int32_t cell) const {
    return failover_[static_cast<size_t>(cell)];
  }

  // The cell that serves a client whose home is `home`: home itself when
  // healthy, else the nearest healthy neighbour, else home (nothing
  // better — the client rides out the blackout).
  template <typename HealthyFn>
  int32_t NearestHealthy(int32_t home, HealthyFn&& healthy) const {
    if (cells_ == 1 || healthy(home)) return home;
    for (const int32_t k : FailoverOrder(home)) {
      if (healthy(k)) return k;
    }
    return home;
  }

 private:
  static int32_t Clamp(int32_t v, int32_t n) {
    return std::max<int32_t>(0, std::min<int32_t>(v, n - 1));
  }
  double CellWidth() const {
    const double e = bounds_.Extent(0);
    return e > 0 ? e / cols_ : 1.0;
  }
  double CellHeight() const {
    const double e = bounds_.Extent(1);
    return e > 0 ? e / rows_ : 1.0;
  }

  int32_t cells_ = 1;
  int32_t rows_ = 1;
  int32_t cols_ = 1;
  geometry::Box2 bounds_;
  std::vector<std::vector<int32_t>> failover_;
};

}  // namespace mars::net

#endif  // MARS_NET_CELL_TOPOLOGY_H_
