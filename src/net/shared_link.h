#ifndef MARS_NET_SHARED_LINK_H_
#define MARS_NET_SHARED_LINK_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <vector>

#include "net/link.h"

namespace mars::net {

// A shared wireless medium serving several clients at once, modelled as a
// fluid processor-sharing queue: the cell's downlink capacity is divided
// equally among the transfers in flight (each additionally capped by its
// client's bearer rate and degraded by that client's motion), and
// transfers persist across frames until drained. Clients do not block on
// their transfers — an AR client keeps moving and renders coarse data
// until the bytes arrive — so the reported quantity is the *delivery
// delay* of each exchange.
//
// Used by the multi-client scalability bench; the paper's single-client
// evaluation corresponds to one client on a dedicated bearer.
class SharedMediumLink {
 public:
  struct Options {
    // Total cell capacity.
    double cell_bandwidth_kbps = 2048.0;
    // Per-client bearer cap (the paper's 256 Kbps).
    double client_bandwidth_kbps = 256.0;
    double latency_seconds = 0.2;
    double motion_degradation = 0.5;
  };

  // A finished exchange: which client, and how long from submission to
  // last byte (including the connection latency).
  struct Completion {
    int32_t client = 0;
    double response_seconds = 0.0;
  };

  SharedMediumLink();  // default options
  explicit SharedMediumLink(Options options);

  // Enqueues an exchange of `bytes` for `client` moving at normalized
  // `speed`, submitted at the current simulated time.
  void Submit(int32_t client, int64_t bytes, double speed);

  // Advances simulated time by `dt` seconds, draining transfers under
  // processor sharing; returns the exchanges that completed.
  std::vector<Completion> Advance(double dt);

  // Drains everything left; returns the remaining completions.
  std::vector<Completion> DrainAll();

  double now() const { return now_; }
  size_t in_flight() const { return transfers_.size(); }
  int64_t total_bytes() const { return total_bytes_; }

 private:
  struct Transfer {
    int32_t client;
    double remaining_bytes;
    double submitted_at;
    double speed;
  };

  Options options_;
  double now_ = 0.0;
  std::list<Transfer> transfers_;
  int64_t total_bytes_ = 0;
};

}  // namespace mars::net

#endif  // MARS_NET_SHARED_LINK_H_
