#ifndef MARS_NET_SHARED_LINK_H_
#define MARS_NET_SHARED_LINK_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/rng.h"
#include "net/fault.h"
#include "net/link.h"
#include "net/wfq.h"

namespace mars::net {

// A shared wireless medium serving several clients at once, modelled as a
// fluid queue over the cell's downlink capacity. Two service disciplines:
//
//   * kWeightedFair (default): deterministic weighted fair queuing. Each
//     client owns a FIFO queue; at any instant the backlogged clients
//     divide the cell capacity in proportion to their weights (fluid GPS),
//     each serving its head-of-line transfer, additionally capped by the
//     client's bearer rate and degraded by that transfer's motion.
//     Arrivals are stamped with virtual start/finish tags (net/wfq.h);
//     completions coinciding in real time are emitted in (finish tag,
//     client id) order, so runs are bit-identical for a given submission
//     sequence. A greedy client's backlog cannot starve anyone: every
//     other client keeps at least its weight's share of the cell.
//
//   * kEqualShare: the legacy processor-sharing model — capacity divided
//     equally among the *transfers* in flight, so a client with k
//     transfers holds k shares. Kept for the fairness-isolation bench and
//     ablations. Unlike the original implementation, a client's aggregate
//     rate is now correctly capped by its bearer at every reschedule
//     point: a second transfer joining mid-flight used to grant the
//     client another full bearer's worth of credit (over-crediting bytes
//     already in flight); the shares are now rescaled so the client never
//     outruns its own radio.
//
// Transfers persist across frames until drained. Clients do not block on
// their transfers — an AR client keeps moving and renders coarse data
// until the bytes arrive — so the reported quantity is the *delivery
// delay* of each exchange.
//
// Loss parity with SimulatedLink: each submission may be partially lost
// and retransmitted (bounded retries, deterministic per-seed), which
// inflates the bytes the cell has to carry; an attached FaultSchedule
// additionally stalls the whole cell during outage windows and scales the
// cell rate during bandwidth dips.
//
// Used by the fleet engine and the multi-client benches; the paper's
// single-client evaluation corresponds to one client on a dedicated
// bearer.
class SharedMediumLink {
 public:
  enum class Discipline {
    kWeightedFair,  // per-client WFQ (see above)
    kEqualShare,    // legacy per-transfer processor sharing
  };

  struct Options {
    // Total cell capacity.
    double cell_bandwidth_kbps = 2048.0;
    // Per-client bearer cap (the paper's 256 Kbps). Caps each client's
    // *aggregate* rate across all its inflight transfers.
    double client_bandwidth_kbps = 256.0;
    double latency_seconds = 0.2;
    double motion_degradation = 0.5;
    // Probability that a transfer attempt is lost in flight and must be
    // retransmitted; the lost fraction of the payload is re-sent. Loss at
    // speed s is scaled by (1 + s), mirroring SimulatedLink. 0 disables.
    double loss_probability = 0.0;
    uint64_t loss_seed = 1;
    // Cap on retransmissions per submission; hitting it counts a timeout
    // and delivers the transfer without further inflation.
    int32_t max_retries_per_transfer = 16;
    // Service discipline on the cell.
    Discipline discipline = Discipline::kWeightedFair;
  };

  // A finished exchange: which client, and how long from submission to
  // last byte (including the connection latency). `seq` is the client's
  // per-submission sequence number (assigned by Submit, starting at 0) —
  // the handle coalesced shared payloads are keyed by: a waiter attached
  // to transfer (client, seq) is delivered exactly when that completion
  // fires. Under kWeightedFair each client serves head-of-line only, so
  // a client's completions arrive in seq order; kEqualShare drains all
  // transfers at once and gives no such guarantee.
  struct Completion {
    int32_t client = 0;
    int64_t seq = 0;
    double response_seconds = 0.0;
    // Absolute cell time at which the last byte (plus latency) landed:
    // submitted_at + response_seconds, computed with exactly that
    // expression so callers tracking absolute finish times agree with
    // callers summing submit + response bit-for-bit. Lets a transfer
    // that was cancelled and re-issued elsewhere report a delivery delay
    // spanning the *original* submission.
    double finish_seconds = 0.0;
  };

  // A transfer removed by CancelClient: enough state to re-issue the
  // remaining work on another cell (fault-tolerant handover).
  struct Cancelled {
    int64_t seq = 0;
    double remaining_bytes = 0.0;
    double submitted_at = 0.0;
    double speed = 0.0;
  };

  SharedMediumLink();  // default options
  explicit SharedMediumLink(Options options);

  // Attaches a fault schedule consulted at the cell's simulated time
  // now(). Not owned; must outlive the link.
  void AttachFaultSchedule(FaultSchedule* schedule) { fault_ = schedule; }

  // Sets `client`'s WFQ weight (> 0; default 1). Under kWeightedFair a
  // backlogged client receives cell * weight / sum(active weights); under
  // kEqualShare weights are ignored. May be called at any time; takes
  // effect from the next service interval.
  void SetClientWeight(int32_t client, double weight);
  double ClientWeight(int32_t client) const {
    return vclock_.WeightOf(client);
  }

  // Enqueues an exchange of `bytes` for `client` moving at normalized
  // `speed`, submitted at the current simulated time. Under loss the
  // carried byte count is inflated by the retransmitted fractions.
  // Returns the submission's per-client sequence number (echoed in its
  // Completion), so callers charging shared payloads to this transfer
  // can key their waiters by (client, seq).
  int64_t Submit(int32_t client, int64_t bytes, double speed);

  // Advances simulated time by `dt` seconds, draining transfers under the
  // configured discipline; returns the exchanges that completed.
  std::vector<Completion> Advance(double dt);

  // Drains everything left; returns the remaining completions.
  std::vector<Completion> DrainAll();

  // Removes every queued transfer of `client` (the client was handed
  // over to another cell while this one was down), in submission order.
  // The client's sequence counter is preserved, so later submissions on
  // this cell never reuse a cancelled transfer's seq. Returns what was
  // cancelled so the caller can re-issue the remaining bytes elsewhere.
  std::vector<Cancelled> CancelClient(int32_t client);

  double now() const { return now_; }
  size_t in_flight() const { return in_flight_; }
  int64_t total_bytes() const { return total_bytes_; }
  // Lost attempts retransmitted across all submissions.
  int64_t total_retries() const { return total_retries_; }
  // Submissions that hit the retransmission cap.
  int64_t total_timeouts() const { return total_timeouts_; }
  // Simulated seconds the cell spent fully blacked out.
  double total_outage_seconds() const { return total_outage_seconds_; }

  // Backlog observability — what the admission controller consults.
  // Remaining carried bytes queued for `client` (including the transfer
  // in service).
  int64_t client_backlog_bytes(int32_t client) const;
  // Transfers queued for `client`.
  int32_t client_queue_depth(int32_t client) const;
  // Remaining carried bytes across every client.
  int64_t backlog_bytes() const;
  // The scheduler's virtual time (observability / tests).
  double virtual_time() const { return vclock_.virtual_time(); }

 private:
  struct Transfer {
    double remaining_bytes;
    double submitted_at;
    double speed;
    double virtual_finish;  // WFQ tag stamped at submission
    int64_t seq;            // per-client submission sequence number
  };

  struct ClientQueue {
    std::deque<Transfer> queue;
    double backlog_bytes = 0.0;
    int64_t next_seq = 0;
  };

  // One piecewise-constant service interval under the given discipline;
  // appends completions. `target` bounds the interval.
  void StepWeightedFair(double target, double cell, double bearer,
                        std::vector<Completion>* completions);
  void StepEqualShare(double target, double cell, double bearer,
                      std::vector<Completion>* completions);

  double MotionFactor(double speed) const {
    return 1.0 - options_.motion_degradation * speed;
  }

  void FinishTransfer(int32_t client, ClientQueue* cq,
                      std::vector<Completion>* completions);

  Options options_;
  common::Rng rng_;
  FaultSchedule* fault_ = nullptr;
  double now_ = 0.0;
  // Ordered by client id so every scan (rate allocation, completion
  // emission, backlog sums) is deterministic.
  std::map<int32_t, ClientQueue> clients_;
  WfqVirtualClock vclock_;
  size_t in_flight_ = 0;
  int64_t total_bytes_ = 0;
  int64_t total_retries_ = 0;
  int64_t total_timeouts_ = 0;
  double total_outage_seconds_ = 0.0;
};

}  // namespace mars::net

#endif  // MARS_NET_SHARED_LINK_H_
