#ifndef MARS_NET_SHARED_LINK_H_
#define MARS_NET_SHARED_LINK_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <vector>

#include "common/rng.h"
#include "net/fault.h"
#include "net/link.h"

namespace mars::net {

// A shared wireless medium serving several clients at once, modelled as a
// fluid processor-sharing queue: the cell's downlink capacity is divided
// equally among the transfers in flight (each additionally capped by its
// client's bearer rate and degraded by that client's motion), and
// transfers persist across frames until drained. Clients do not block on
// their transfers — an AR client keeps moving and renders coarse data
// until the bytes arrive — so the reported quantity is the *delivery
// delay* of each exchange.
//
// Loss parity with SimulatedLink: each submission may be partially lost
// and retransmitted (bounded retries, deterministic per-seed), which
// inflates the bytes the cell has to carry; an attached FaultSchedule
// additionally stalls the whole cell during outage windows and scales the
// cell rate during bandwidth dips.
//
// Used by the multi-client scalability bench; the paper's single-client
// evaluation corresponds to one client on a dedicated bearer.
class SharedMediumLink {
 public:
  struct Options {
    // Total cell capacity.
    double cell_bandwidth_kbps = 2048.0;
    // Per-client bearer cap (the paper's 256 Kbps).
    double client_bandwidth_kbps = 256.0;
    double latency_seconds = 0.2;
    double motion_degradation = 0.5;
    // Probability that a transfer attempt is lost in flight and must be
    // retransmitted; the lost fraction of the payload is re-sent. Loss at
    // speed s is scaled by (1 + s), mirroring SimulatedLink. 0 disables.
    double loss_probability = 0.0;
    uint64_t loss_seed = 1;
    // Cap on retransmissions per submission; hitting it counts a timeout
    // and delivers the transfer without further inflation.
    int32_t max_retries_per_transfer = 16;
  };

  // A finished exchange: which client, and how long from submission to
  // last byte (including the connection latency).
  struct Completion {
    int32_t client = 0;
    double response_seconds = 0.0;
  };

  SharedMediumLink();  // default options
  explicit SharedMediumLink(Options options);

  // Attaches a fault schedule consulted at the cell's simulated time
  // now(). Not owned; must outlive the link.
  void AttachFaultSchedule(FaultSchedule* schedule) { fault_ = schedule; }

  // Enqueues an exchange of `bytes` for `client` moving at normalized
  // `speed`, submitted at the current simulated time. Under loss the
  // carried byte count is inflated by the retransmitted fractions.
  void Submit(int32_t client, int64_t bytes, double speed);

  // Advances simulated time by `dt` seconds, draining transfers under
  // processor sharing; returns the exchanges that completed.
  std::vector<Completion> Advance(double dt);

  // Drains everything left; returns the remaining completions.
  std::vector<Completion> DrainAll();

  double now() const { return now_; }
  size_t in_flight() const { return transfers_.size(); }
  int64_t total_bytes() const { return total_bytes_; }
  // Lost attempts retransmitted across all submissions.
  int64_t total_retries() const { return total_retries_; }
  // Submissions that hit the retransmission cap.
  int64_t total_timeouts() const { return total_timeouts_; }
  // Simulated seconds the cell spent fully blacked out.
  double total_outage_seconds() const { return total_outage_seconds_; }

 private:
  struct Transfer {
    int32_t client;
    double remaining_bytes;
    double submitted_at;
    double speed;
  };

  Options options_;
  common::Rng rng_;
  FaultSchedule* fault_ = nullptr;
  double now_ = 0.0;
  std::list<Transfer> transfers_;
  int64_t total_bytes_ = 0;
  int64_t total_retries_ = 0;
  int64_t total_timeouts_ = 0;
  double total_outage_seconds_ = 0.0;
};

}  // namespace mars::net

#endif  // MARS_NET_SHARED_LINK_H_
