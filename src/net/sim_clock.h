#ifndef MARS_NET_SIM_CLOCK_H_
#define MARS_NET_SIM_CLOCK_H_

#include "common/logging.h"

namespace mars::net {

// Simulated wall clock, in seconds. All timing in MARS is simulated — the
// evaluation measures modelled link time, never host time — so experiments
// are deterministic and machine-independent.
class SimClock {
 public:
  double now() const { return now_seconds_; }

  void Advance(double seconds) {
    MARS_CHECK_GE(seconds, 0.0);
    now_seconds_ += seconds;
  }

 private:
  double now_seconds_ = 0.0;
};

}  // namespace mars::net

#endif  // MARS_NET_SIM_CLOCK_H_
