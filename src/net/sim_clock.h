#ifndef MARS_NET_SIM_CLOCK_H_
#define MARS_NET_SIM_CLOCK_H_

#include "common/logging.h"

namespace mars::net {

// Simulated wall clock, in seconds. All timing in MARS is simulated — the
// evaluation measures modelled link time, never host time — so experiments
// are deterministic and machine-independent.
//
// For multi-client scheduling, the clock also exposes an integer
// microsecond view: the fleet engine orders events by int64 µs ticks so
// that "same instant" is an exact integer comparison, never a
// floating-point coincidence (the basis of its bit-identical replays at
// any worker count).
class SimClock {
 public:
  static constexpr double kMicrosPerSecond = 1e6;

  // Rounds to the nearest microsecond tick.
  static int64_t ToMicros(double seconds) {
    return static_cast<int64_t>(seconds * kMicrosPerSecond + 0.5);
  }
  static double ToSeconds(int64_t micros) {
    return static_cast<double>(micros) / kMicrosPerSecond;
  }

  double now() const { return now_seconds_; }
  int64_t now_micros() const { return ToMicros(now_seconds_); }

  void Advance(double seconds) {
    MARS_CHECK_GE(seconds, 0.0);
    now_seconds_ += seconds;
  }

  // Advances to an absolute time; no-op when `seconds` is in the past
  // (completions may already have pushed a sub-clock past a tick edge).
  void AdvanceTo(double seconds) {
    if (seconds > now_seconds_) now_seconds_ = seconds;
  }

 private:
  double now_seconds_ = 0.0;
};

}  // namespace mars::net

#endif  // MARS_NET_SIM_CLOCK_H_
