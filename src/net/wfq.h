#ifndef MARS_NET_WFQ_H_
#define MARS_NET_WFQ_H_

#include <cstdint>
#include <map>

#include "common/logging.h"

namespace mars::net {

// Virtual-time bookkeeping for weighted fair queuing on the shared cell.
//
// The cell is modelled as a fluid server: at any instant the backlogged
// (active) clients divide its capacity in proportion to their weights
// (generalized processor sharing). This clock tracks the scheduler's
// *virtual time* V, which advances at rate C / W(t) where C is the served
// capacity and W(t) the total weight of the active set — one unit of
// virtual time corresponds to one byte of service per unit of weight.
//
// Each arriving transfer is stamped with a virtual start and finish tag:
//
//   start  = max(V, last_finish[client])   (per-client FIFO)
//   finish = start + bytes / weight
//
// Finish tags are the WFQ service order: under pure GPS a transfer's head
// byte drains exactly when V reaches its finish tag. The cell additionally
// caps each client at its bearer rate (a client capped below its GPS share
// lags its tags), so the tags are used for deterministic *ordering* —
// completions that coincide in real time are emitted in (finish tag,
// client id) order — while the byte accounting itself is rate-based.
//
// Everything here is plain double arithmetic over a std::map keyed by
// client id, so every operation sequence is deterministic: same
// submissions in, same tags and virtual times out, independent of host
// threads (the fleet engine only touches the cell from its serial phase).
class WfqVirtualClock {
 public:
  // Sets `client`'s weight (> 0). May be called at any time; an active
  // client's share changes from the next service interval on.
  void SetWeight(int32_t client, double weight) {
    MARS_CHECK_GT(weight, 0.0);
    ClientInfo& info = clients_[client];
    if (info.active) active_weight_ += weight - info.weight;
    info.weight = weight;
  }

  double WeightOf(int32_t client) const {
    const auto it = clients_.find(client);
    return it == clients_.end() ? 1.0 : it->second.weight;
  }

  // Marks `client` backlogged. Idempotent.
  void Activate(int32_t client) {
    ClientInfo& info = clients_[client];
    if (!info.active) {
      info.active = true;
      active_weight_ += info.weight;
    }
  }

  // Marks `client` idle (its queue drained). Idempotent. An idle client's
  // last finish tag is clamped up to V on its next stamp, so it cannot
  // bank credit while idle.
  void Deactivate(int32_t client) {
    const auto it = clients_.find(client);
    if (it != clients_.end() && it->second.active) {
      it->second.active = false;
      active_weight_ -= it->second.weight;
    }
  }

  bool active(int32_t client) const {
    const auto it = clients_.find(client);
    return it != clients_.end() && it->second.active;
  }

  double total_active_weight() const { return active_weight_; }

  // Advances virtual time after the cell served `bytes` across the active
  // set: dV = bytes / W. No-op when nothing is active.
  void OnServed(double bytes) {
    MARS_CHECK_GE(bytes, 0.0);
    if (active_weight_ > 0.0) v_ += bytes / active_weight_;
  }

  // Stamps one arriving transfer of `bytes` for `client`; returns its
  // virtual finish tag and records it as the client's new tail.
  double Stamp(int32_t client, double bytes) {
    MARS_CHECK_GE(bytes, 0.0);
    ClientInfo& info = clients_[client];
    const double start = info.last_finish > v_ ? info.last_finish : v_;
    info.last_finish = start + bytes / info.weight;
    return info.last_finish;
  }

  double virtual_time() const { return v_; }

 private:
  struct ClientInfo {
    double weight = 1.0;
    double last_finish = 0.0;
    bool active = false;
  };

  // Ordered by client id: iteration order (and hence every derived
  // floating-point sum) is a pure function of the submissions.
  std::map<int32_t, ClientInfo> clients_;
  double v_ = 0.0;
  double active_weight_ = 0.0;
};

}  // namespace mars::net

#endif  // MARS_NET_WFQ_H_
