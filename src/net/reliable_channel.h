#ifndef MARS_NET_RELIABLE_CHANNEL_H_
#define MARS_NET_RELIABLE_CHANNEL_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "net/link.h"

namespace mars::net {

// Transport wrapper between client and server that turns the raw lossy
// link into a bounded-effort reliable exchange:
//
//   * a bounded retry budget (max_attempts) instead of the raw link's
//     retry-forever loop,
//   * exponential backoff with deterministic jitter between attempts,
//   * a per-exchange deadline in simulated seconds,
//   * partial-transfer resume: the fraction of the response delivered
//     before a drop is not re-sent on the next attempt (the request
//     headers are always re-sent).
//
// A failed exchange reports a non-OK common::Status (kResourceExhausted
// when the retry budget is spent, kInternal when the deadline passes)
// instead of blocking; the caller rolls back any tentative server-side
// session state and degrades gracefully.
//
// With a lossless link and no fault schedule the wrapper is pay-for-what-
// you-use: one attempt, no RNG consumption, and a cost identical to
// SimulatedLink::Exchange.
class ReliableChannel {
 public:
  struct Options {
    // Total delivery attempts per exchange (first try + retries).
    int32_t max_attempts = 6;
    // Backoff before retry k (1-based) is
    //   min(base * multiplier^(k-1), max) * (1 + jitter * U)
    // with U uniform in [0, 1) from the channel's own seeded Rng.
    double base_backoff_seconds = 0.1;
    double backoff_multiplier = 2.0;
    double max_backoff_seconds = 2.0;
    double jitter_fraction = 0.5;
    // Budget of simulated seconds per exchange; checked between attempts.
    double deadline_seconds = 30.0;
    uint64_t seed = 2024;
  };

  struct Result {
    common::Status status;
    // Total simulated time spent: attempts plus backoff.
    double seconds = 0.0;
    int32_t attempts = 0;
    // Lost attempts within this exchange.
    int32_t retries = 0;
    // True when the exchange failed (budget or deadline).
    bool failed() const { return !status.ok(); }
    // Response bytes NOT re-sent thanks to partial-transfer resume.
    int64_t bytes_saved_by_resume = 0;
  };

  // `link` must outlive the channel; the fault schedule (if any) is
  // attached to the link itself.
  ReliableChannel(SimulatedLink* link, Options options);

  // Runs one request/response exchange through the retry policy.
  Result Exchange(int64_t request_bytes, int64_t response_bytes,
                  double speed);

  // Server-driven backpressure: the cell's admission controller deferred
  // this client's last submission, so the next exchange holds off for
  // `seconds` before its first attempt — an explicit, bounded wait
  // instead of burning the retry budget (and eventually timing out)
  // against an overloaded cell. Repeated deferrals accumulate.
  void Defer(double seconds);
  // Deferral waits consumed by exchanges so far.
  int64_t total_deferrals() const { return total_deferrals_; }
  double total_deferred_seconds() const { return total_deferred_seconds_; }

  const Options& options() const { return options_; }
  int64_t total_exchanges() const { return total_exchanges_; }
  int64_t total_retries() const { return total_retries_; }
  // Exchanges that failed (budget exhausted or deadline exceeded).
  int64_t total_failures() const { return total_failures_; }
  int64_t total_bytes_saved() const { return total_bytes_saved_; }
  double total_backoff_seconds() const { return total_backoff_seconds_; }
  void ResetStats();

 private:
  Options options_;
  SimulatedLink* link_;
  common::Rng rng_;

  // Accumulated backpressure to honor before the next exchange's first
  // attempt.
  double pending_defer_seconds_ = 0.0;

  int64_t total_exchanges_ = 0;
  int64_t total_retries_ = 0;
  int64_t total_failures_ = 0;
  int64_t total_bytes_saved_ = 0;
  int64_t total_deferrals_ = 0;
  double total_backoff_seconds_ = 0.0;
  double total_deferred_seconds_ = 0.0;
};

}  // namespace mars::net

#endif  // MARS_NET_RELIABLE_CHANNEL_H_
