#ifndef MARS_NET_FAULT_H_
#define MARS_NET_FAULT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mars::net {

// Deterministic fault schedule for the mobile link (paper Sec. I / VII-A:
// a 256 Kbps, 200 ms wireless link whose quality collapses with motion).
// Three independent Poisson window processes model the real impairments of
// such a link:
//
//   * outages   — tunnel blackouts and whole-cell failures during which no
//                 attempt can be delivered at all,
//   * bursts    — windows of strongly elevated loss (interference, cell
//                 edges): the link's base loss probability is multiplied,
//   * dips      — transient bandwidth collapses: the usable bandwidth is
//                 scaled down.
//
// The sampled Poisson outages are *uncorrelated with motion* — they model
// environmental failures, not handovers. Cell-handover blackouts (the
// re-association gap a client suffers when it crosses into a new cell)
// are injected explicitly through InjectOutage() by whoever routes the
// client across cells (the fleet engine's CellTopology), so blackout
// timing follows the client's actual trajectory instead of a rate.
//
// Windows are sampled lazily from a seeded Rng (exponential inter-arrival
// and duration), so the schedule is reproducible bit-for-bit, pure with
// respect to simulated time, and free when every rate is zero and no
// window was injected. All times are simulated seconds on the consumer's
// clock (SimulatedLink's cumulative time or SharedMediumLink's now()).
class FaultSchedule {
 public:
  struct Options {
    // Mean outage count per simulated hour; 0 disables outages.
    double outage_rate_per_hour = 0.0;
    // Mean outage duration in seconds (exponentially distributed).
    double outage_mean_seconds = 8.0;

    // Burst-loss windows.
    double burst_rate_per_hour = 0.0;
    double burst_mean_seconds = 3.0;
    // Multiplier applied to the link's loss probability inside a burst
    // (the effective probability is still capped by the link).
    double burst_loss_factor = 8.0;

    // Transient bandwidth dips.
    double dip_rate_per_hour = 0.0;
    double dip_mean_seconds = 10.0;
    // Fraction of the usable bandwidth that survives inside a dip.
    double dip_bandwidth_factor = 0.35;

    uint64_t seed = 1;
  };

  FaultSchedule();  // all-quiet default
  explicit FaultSchedule(Options options);

  // True when any fault process is active or a window was injected; an
  // all-quiet schedule costs nothing to consult.
  bool enabled() const { return enabled_ || !injected_.empty(); }

  // Injects a deterministic outage window [start, start + duration) — the
  // handover-blackout hook. Drives the same outage machinery as the
  // sampled windows (attempts fail, fluid links stall), so a topology can
  // model the re-association gap of a cell crossing at the exact simulated
  // time the crossing happened. Enables an all-quiet schedule from the
  // first injection; a schedule with no injections stays zero-cost.
  void InjectOutage(double start, double duration);

  // Injected windows so far (observability / tests).
  int64_t injected_outages() const {
    return static_cast<int64_t>(injected_.size());
  }

  // True when `t` falls inside an outage window.
  bool InOutage(double t);

  // Seconds until the current outage window ends; 0 when not in outage.
  double OutageRemaining(double t);

  // Loss-probability multiplier at `t` (>= 1; burst_loss_factor inside a
  // burst window).
  double LossFactor(double t);

  // Usable-bandwidth multiplier at `t` (1 normally, dip_bandwidth_factor
  // inside a dip window).
  double BandwidthFactor(double t);

  // The next time > `t` at which any window starts or ends. Lets fluid
  // link models advance in piecewise-constant steps without integrating
  // across a fault boundary.
  double NextBoundaryAfter(double t);

  const Options& options() const { return options_; }

 private:
  struct Window {
    double start = 0.0;
    double end = 0.0;
  };

  // One Poisson window process, lazily extended and cached.
  class Track {
   public:
    Track(double rate_per_hour, double mean_seconds, uint64_t seed);

    bool active() const { return rate_per_hour_ > 0.0; }
    // The window covering `t`, or nullptr.
    const Window* Covering(double t);
    // Next window boundary strictly after `t` (infinity when inactive).
    double NextBoundaryAfter(double t);

   private:
    void EnsureCovered(double t);
    double SampleExp(double mean);

    double rate_per_hour_;
    double mean_seconds_;
    common::Rng rng_;
    std::vector<Window> windows_;
    // Windows are generated through this time.
    double horizon_ = 0.0;
  };

  // The injected window covering `t`, or nullptr.
  const Window* InjectedCovering(double t) const;

  Options options_;
  bool enabled_;
  Track outages_;
  Track bursts_;
  Track dips_;
  // Explicitly injected outage windows (handover blackouts, forced cell
  // failures), kept sorted by start. Usually empty and usually tiny —
  // one entry per handover — so linear scans are fine.
  std::vector<Window> injected_;
};

}  // namespace mars::net

#endif  // MARS_NET_FAULT_H_
