#include "net/shared_link.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/units.h"

namespace mars::net {

SharedMediumLink::SharedMediumLink() : SharedMediumLink(Options()) {}

SharedMediumLink::SharedMediumLink(Options options)
    : options_(options), rng_(options.loss_seed) {
  MARS_CHECK_GT(options.cell_bandwidth_kbps, 0.0);
  MARS_CHECK_GT(options.client_bandwidth_kbps, 0.0);
  MARS_CHECK_GE(options.latency_seconds, 0.0);
  MARS_CHECK_GE(options.motion_degradation, 0.0);
  MARS_CHECK_LT(options.motion_degradation, 1.0);
  MARS_CHECK_GE(options.loss_probability, 0.0);
  MARS_CHECK_LT(options.loss_probability, 0.5);
  MARS_CHECK_GT(options.max_retries_per_transfer, 0);
}

void SharedMediumLink::SetClientWeight(int32_t client, double weight) {
  vclock_.SetWeight(client, weight);
}

int64_t SharedMediumLink::Submit(int32_t client, int64_t bytes,
                                 double speed) {
  MARS_CHECK_GT(bytes, 0);
  const double s = std::clamp(speed, 0.0, 1.0);
  double carried = static_cast<double>(bytes);
  if (options_.loss_probability > 0.0) {
    // Mirror SimulatedLink's loss process at parity: each attempt may be
    // lost after a uniformly random fraction of the payload, and that
    // fraction is retransmitted. Bounded by the retry cap.
    const double p = std::min(0.95, options_.loss_probability * (1.0 + s));
    int32_t lost = 0;
    while (rng_.Bernoulli(p)) {
      carried += rng_.UniformDouble() * static_cast<double>(bytes);
      ++total_retries_;
      if (++lost >= options_.max_retries_per_transfer) {
        ++total_timeouts_;
        break;
      }
    }
  }
  ClientQueue& cq = clients_[client];
  if (cq.queue.empty()) vclock_.Activate(client);
  const double virtual_finish = vclock_.Stamp(client, carried);
  const int64_t seq = cq.next_seq++;
  cq.queue.push_back(Transfer{carried, now_, s, virtual_finish, seq});
  ++in_flight_;
  total_bytes_ += bytes;
  return seq;
}

int64_t SharedMediumLink::client_backlog_bytes(int32_t client) const {
  const auto it = clients_.find(client);
  if (it == clients_.end()) return 0;
  double sum = 0.0;
  for (const Transfer& t : it->second.queue) sum += t.remaining_bytes;
  return static_cast<int64_t>(sum);
}

int32_t SharedMediumLink::client_queue_depth(int32_t client) const {
  const auto it = clients_.find(client);
  if (it == clients_.end()) return 0;
  return static_cast<int32_t>(it->second.queue.size());
}

int64_t SharedMediumLink::backlog_bytes() const {
  double sum = 0.0;
  for (const auto& [id, cq] : clients_) {
    for (const Transfer& t : cq.queue) sum += t.remaining_bytes;
  }
  return static_cast<int64_t>(sum);
}

std::vector<SharedMediumLink::Completion> SharedMediumLink::Advance(
    double dt) {
  MARS_CHECK_GE(dt, 0.0);
  std::vector<Completion> completions;
  const double target = now_ + dt;
  const double cell =
      common::KbpsToBytesPerSecond(options_.cell_bandwidth_kbps);
  const double bearer =
      common::KbpsToBytesPerSecond(options_.client_bandwidth_kbps);
  const bool faulty = fault_ != nullptr && fault_->enabled();

  while (now_ < target) {
    if (in_flight_ == 0) {
      now_ = target;
      break;
    }
    // The whole cell stalls during an outage (tunnel, handover): step to
    // the end of the blackout (or the target) without draining.
    if (faulty && fault_->InOutage(now_)) {
      const double stall =
          std::min(target - now_, fault_->OutageRemaining(now_));
      now_ += stall;
      total_outage_seconds_ += stall;
      continue;
    }
    if (options_.discipline == Discipline::kWeightedFair) {
      StepWeightedFair(target, cell, bearer, &completions);
    } else {
      StepEqualShare(target, cell, bearer, &completions);
    }
  }
  return completions;
}

void SharedMediumLink::StepWeightedFair(
    double target, double cell, double bearer,
    std::vector<Completion>* completions) {
  const bool faulty = fault_ != nullptr && fault_->enabled();
  const double bw_factor = faulty ? fault_->BandwidthFactor(now_) : 1.0;
  const double active_weight = vclock_.total_active_weight();

  // Piecewise-constant rates until the next head-of-line completion,
  // fault boundary, or the target. Each backlogged client serves only its
  // head transfer at min(GPS share, bearer) — the aggregate bearer cap is
  // structural.
  double step = target - now_;
  if (faulty) {
    const double boundary = fault_->NextBoundaryAfter(now_);
    if (boundary > now_) step = std::min(step, boundary - now_);
  }
  // Head-of-line rate for every backlogged client, frozen for the
  // interval; the map scan runs in client-id order.
  struct Service {
    int32_t client;
    ClientQueue* cq;
    double rate;
  };
  std::vector<Service> service;
  service.reserve(clients_.size());
  for (auto& [id, cq] : clients_) {
    if (cq.queue.empty()) continue;
    const Transfer& head = cq.queue.front();
    const double share =
        cell * bw_factor * vclock_.WeightOf(id) / active_weight;
    const double rate = std::min(share, bearer * MotionFactor(head.speed));
    service.push_back(Service{id, &cq, rate});
    if (rate > 0.0) {
      step = std::min(step, head.remaining_bytes / rate);
    }
  }

  now_ += step;
  // Virtual time advances with the capacity offered to the active set.
  vclock_.OnServed(cell * bw_factor * step);

  // Drain heads; completions coinciding at this instant are emitted in
  // (virtual finish tag, client id) order.
  struct Finished {
    double virtual_finish;
    Completion completion;
  };
  std::vector<Finished> finished;
  for (const Service& s : service) {
    Transfer& head = s.cq->queue.front();
    head.remaining_bytes -= s.rate * step;
    if (head.remaining_bytes <= 1e-6) {
      const double response =
          now_ - head.submitted_at + options_.latency_seconds;
      finished.push_back(Finished{
          head.virtual_finish,
          Completion{s.client, head.seq, response,
                     head.submitted_at + response}});
      s.cq->queue.pop_front();
      --in_flight_;
      if (s.cq->queue.empty()) vclock_.Deactivate(s.client);
    }
  }
  std::stable_sort(finished.begin(), finished.end(),
                   [](const Finished& a, const Finished& b) {
                     if (a.virtual_finish != b.virtual_finish) {
                       return a.virtual_finish < b.virtual_finish;
                     }
                     return a.completion.client < b.completion.client;
                   });
  for (const Finished& f : finished) completions->push_back(f.completion);
}

void SharedMediumLink::StepEqualShare(double target, double cell,
                                      double bearer,
                                      std::vector<Completion>* completions) {
  const bool faulty = fault_ != nullptr && fault_->enabled();
  const double bw_factor = faulty ? fault_->BandwidthFactor(now_) : 1.0;
  const double share =
      cell * bw_factor / static_cast<double>(in_flight_);

  double step = target - now_;
  if (faulty) {
    const double boundary = fault_->NextBoundaryAfter(now_);
    if (boundary > now_) step = std::min(step, boundary - now_);
  }
  // First pass: per-transfer uncapped rates, rescaled so each client's
  // aggregate never exceeds its bearer (the mid-transfer-join over-credit
  // fix: a client's k inflight transfers used to draw k bearers' worth).
  for (auto& [id, cq] : clients_) {
    if (cq.queue.empty()) continue;
    double uncapped_sum = 0.0;
    for (const Transfer& t : cq.queue) {
      uncapped_sum += std::min(share, bearer * MotionFactor(t.speed));
    }
    const double cap = bearer * MotionFactor(cq.queue.front().speed);
    const double scale = uncapped_sum > cap ? cap / uncapped_sum : 1.0;
    for (const Transfer& t : cq.queue) {
      const double rate =
          std::min(share, bearer * MotionFactor(t.speed)) * scale;
      if (rate > 0.0) step = std::min(step, t.remaining_bytes / rate);
    }
  }

  now_ += step;
  vclock_.OnServed(cell * bw_factor * step);

  // Second pass: drain with the identical rates and collect completions
  // (clients in id order; within a client, submission order).
  for (auto& [id, cq] : clients_) {
    if (cq.queue.empty()) continue;
    double uncapped_sum = 0.0;
    for (const Transfer& t : cq.queue) {
      uncapped_sum += std::min(share, bearer * MotionFactor(t.speed));
    }
    const double cap = bearer * MotionFactor(cq.queue.front().speed);
    const double scale = uncapped_sum > cap ? cap / uncapped_sum : 1.0;
    for (auto it = cq.queue.begin(); it != cq.queue.end();) {
      const double rate =
          std::min(share, bearer * MotionFactor(it->speed)) * scale;
      it->remaining_bytes -= rate * step;
      if (it->remaining_bytes <= 1e-6) {
        const double response =
            now_ - it->submitted_at + options_.latency_seconds;
        completions->push_back(Completion{
            id, it->seq, response, it->submitted_at + response});
        it = cq.queue.erase(it);
        --in_flight_;
      } else {
        ++it;
      }
    }
    if (cq.queue.empty()) vclock_.Deactivate(id);
  }
}

std::vector<SharedMediumLink::Cancelled> SharedMediumLink::CancelClient(
    int32_t client) {
  std::vector<Cancelled> cancelled;
  const auto it = clients_.find(client);
  if (it == clients_.end()) return cancelled;
  ClientQueue& cq = it->second;
  cancelled.reserve(cq.queue.size());
  for (const Transfer& t : cq.queue) {
    cancelled.push_back(
        Cancelled{t.seq, t.remaining_bytes, t.submitted_at, t.speed});
  }
  if (!cq.queue.empty()) {
    in_flight_ -= cq.queue.size();
    cq.queue.clear();
    vclock_.Deactivate(client);
  }
  // The ClientQueue stays (empty) so next_seq keeps counting from where
  // it was — cancelled seqs are never reused.
  return cancelled;
}

std::vector<SharedMediumLink::Completion> SharedMediumLink::DrainAll() {
  std::vector<Completion> completions;
  while (in_flight_ > 0) {
    const auto batch = Advance(3600.0);
    completions.insert(completions.end(), batch.begin(), batch.end());
  }
  return completions;
}

}  // namespace mars::net
