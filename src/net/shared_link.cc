#include "net/shared_link.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/units.h"

namespace mars::net {

SharedMediumLink::SharedMediumLink() : SharedMediumLink(Options()) {}

SharedMediumLink::SharedMediumLink(Options options) : options_(options) {
  MARS_CHECK_GT(options.cell_bandwidth_kbps, 0.0);
  MARS_CHECK_GT(options.client_bandwidth_kbps, 0.0);
  MARS_CHECK_GE(options.latency_seconds, 0.0);
  MARS_CHECK_GE(options.motion_degradation, 0.0);
  MARS_CHECK_LT(options.motion_degradation, 1.0);
}

void SharedMediumLink::Submit(int32_t client, int64_t bytes, double speed) {
  MARS_CHECK_GT(bytes, 0);
  transfers_.push_back(Transfer{client, static_cast<double>(bytes), now_,
                                std::clamp(speed, 0.0, 1.0)});
  total_bytes_ += bytes;
}

std::vector<SharedMediumLink::Completion> SharedMediumLink::Advance(
    double dt) {
  MARS_CHECK_GE(dt, 0.0);
  std::vector<Completion> completions;
  const double target = now_ + dt;
  const double cell =
      common::KbpsToBytesPerSecond(options_.cell_bandwidth_kbps);
  const double bearer =
      common::KbpsToBytesPerSecond(options_.client_bandwidth_kbps);

  while (now_ < target) {
    if (transfers_.empty()) {
      now_ = target;
      break;
    }
    // Piecewise-constant rates until the next completion or the target.
    const double share = cell / static_cast<double>(transfers_.size());
    double step = target - now_;
    for (const Transfer& t : transfers_) {
      const double rate =
          std::min(share, bearer) *
          (1.0 - options_.motion_degradation * t.speed);
      step = std::min(step, t.remaining_bytes / rate);
    }
    // Drain for `step` seconds.
    now_ += step;
    for (auto it = transfers_.begin(); it != transfers_.end();) {
      const double rate =
          std::min(share, bearer) *
          (1.0 - options_.motion_degradation * it->speed);
      it->remaining_bytes -= rate * step;
      if (it->remaining_bytes <= 1e-6) {
        completions.push_back(Completion{
            it->client,
            now_ - it->submitted_at + options_.latency_seconds});
        it = transfers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return completions;
}

std::vector<SharedMediumLink::Completion> SharedMediumLink::DrainAll() {
  std::vector<Completion> completions;
  while (!transfers_.empty()) {
    const auto batch = Advance(3600.0);
    completions.insert(completions.end(), batch.begin(), batch.end());
  }
  return completions;
}

}  // namespace mars::net
