#include "net/shared_link.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/units.h"

namespace mars::net {

SharedMediumLink::SharedMediumLink() : SharedMediumLink(Options()) {}

SharedMediumLink::SharedMediumLink(Options options)
    : options_(options), rng_(options.loss_seed) {
  MARS_CHECK_GT(options.cell_bandwidth_kbps, 0.0);
  MARS_CHECK_GT(options.client_bandwidth_kbps, 0.0);
  MARS_CHECK_GE(options.latency_seconds, 0.0);
  MARS_CHECK_GE(options.motion_degradation, 0.0);
  MARS_CHECK_LT(options.motion_degradation, 1.0);
  MARS_CHECK_GE(options.loss_probability, 0.0);
  MARS_CHECK_LT(options.loss_probability, 0.5);
  MARS_CHECK_GT(options.max_retries_per_transfer, 0);
}

void SharedMediumLink::Submit(int32_t client, int64_t bytes, double speed) {
  MARS_CHECK_GT(bytes, 0);
  const double s = std::clamp(speed, 0.0, 1.0);
  double carried = static_cast<double>(bytes);
  if (options_.loss_probability > 0.0) {
    // Mirror SimulatedLink's loss process at parity: each attempt may be
    // lost after a uniformly random fraction of the payload, and that
    // fraction is retransmitted. Bounded by the retry cap.
    const double p = std::min(0.95, options_.loss_probability * (1.0 + s));
    int32_t lost = 0;
    while (rng_.Bernoulli(p)) {
      carried += rng_.UniformDouble() * static_cast<double>(bytes);
      ++total_retries_;
      if (++lost >= options_.max_retries_per_transfer) {
        ++total_timeouts_;
        break;
      }
    }
  }
  transfers_.push_back(Transfer{client, carried, now_, s});
  total_bytes_ += bytes;
}

std::vector<SharedMediumLink::Completion> SharedMediumLink::Advance(
    double dt) {
  MARS_CHECK_GE(dt, 0.0);
  std::vector<Completion> completions;
  const double target = now_ + dt;
  const double cell =
      common::KbpsToBytesPerSecond(options_.cell_bandwidth_kbps);
  const double bearer =
      common::KbpsToBytesPerSecond(options_.client_bandwidth_kbps);
  const bool faulty = fault_ != nullptr && fault_->enabled();

  while (now_ < target) {
    if (transfers_.empty()) {
      now_ = target;
      break;
    }
    // The whole cell stalls during an outage (tunnel, handover): step to
    // the end of the blackout (or the target) without draining.
    if (faulty && fault_->InOutage(now_)) {
      const double stall =
          std::min(target - now_, fault_->OutageRemaining(now_));
      now_ += stall;
      total_outage_seconds_ += stall;
      continue;
    }
    const double bw_factor = faulty ? fault_->BandwidthFactor(now_) : 1.0;
    // Piecewise-constant rates until the next completion, fault boundary,
    // or the target.
    const double share =
        cell * bw_factor / static_cast<double>(transfers_.size());
    double step = target - now_;
    if (faulty) {
      const double boundary = fault_->NextBoundaryAfter(now_);
      if (boundary > now_) step = std::min(step, boundary - now_);
    }
    for (const Transfer& t : transfers_) {
      const double rate =
          std::min(share, bearer) *
          (1.0 - options_.motion_degradation * t.speed);
      step = std::min(step, t.remaining_bytes / rate);
    }
    // Drain for `step` seconds.
    now_ += step;
    for (auto it = transfers_.begin(); it != transfers_.end();) {
      const double rate =
          std::min(share, bearer) *
          (1.0 - options_.motion_degradation * it->speed);
      it->remaining_bytes -= rate * step;
      if (it->remaining_bytes <= 1e-6) {
        completions.push_back(Completion{
            it->client,
            now_ - it->submitted_at + options_.latency_seconds});
        it = transfers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return completions;
}

std::vector<SharedMediumLink::Completion> SharedMediumLink::DrainAll() {
  std::vector<Completion> completions;
  while (!transfers_.empty()) {
    const auto batch = Advance(3600.0);
    completions.insert(completions.end(), batch.begin(), batch.end());
  }
  return completions;
}

}  // namespace mars::net
