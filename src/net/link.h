#ifndef MARS_NET_LINK_H_
#define MARS_NET_LINK_H_

#include <cstdint>

#include "common/rng.h"
#include "net/fault.h"

namespace mars::net {

// Deterministic model of the client-server wireless link. Default
// parameters match the paper's experimental setup (Sec. VII-A): 256 Kbps
// bandwidth, 200 ms latency. The usable bandwidth of a *moving* client
// degrades with speed ("the usable bandwidth of a connection ... drops to
// a fraction of the bandwidth that is available for clients at rest",
// Sec. I, after the Ofcom measurements).
class SimulatedLink {
 public:
  struct Options {
    double bandwidth_kbps = 256.0;
    double latency_seconds = 0.2;
    // Usable bandwidth at normalized speed s is
    //   bandwidth * (1 − motion_degradation * s),
    // so a client at full speed keeps (1 − motion_degradation) of the
    // stationary bandwidth.
    double motion_degradation = 0.5;
    // Probability that an exchange attempt is lost mid-flight (mobile
    // links drop in tunnels, at cell handovers, ...). A lost attempt
    // costs its connection latency plus a uniformly random fraction of
    // the transfer time, then the client retries. 0 disables loss.
    // Additionally, loss at speed s is scaled by (1 + s): fast clients
    // drop more.
    double loss_probability = 0.0;
    // Seed for the loss process (deterministic runs).
    uint64_t loss_seed = 1;
    // Cap on lost-attempt retries within one Exchange(). When the cap is
    // hit the exchange is counted as a timeout and forced through (any
    // remaining outage is waited out first), so the benign retry path can
    // no longer spin unboundedly. ReliableChannel enforces its own,
    // tighter budget on top of single attempts.
    int32_t max_retries_per_exchange = 64;
  };

  // Outcome of a single delivery attempt.
  struct AttemptOutcome {
    // True when the attempt got through; false when it was lost (loss
    // draw or outage window).
    bool delivered = false;
    // Simulated cost of the attempt: the full exchange time when
    // delivered; connection latency plus the partial transfer (or a fast
    // failure during an outage) when lost.
    double seconds = 0.0;
    // Fraction of the payload that arrived before the drop, in [0, 1].
    // 1 when delivered. Callers implementing partial-transfer resume can
    // subtract this from the bytes they re-send.
    double fraction_received = 0.0;
  };

  SimulatedLink();  // default options
  explicit SimulatedLink(Options options);

  // Attaches a fault schedule (outages / loss bursts / bandwidth dips)
  // consulted at the link's cumulative simulated time. Pass nullptr to
  // detach. The schedule must outlive the link; it is shared mutable
  // state (lazy window generation), not owned.
  void AttachFaultSchedule(FaultSchedule* schedule) { fault_ = schedule; }
  const FaultSchedule* fault_schedule() const { return fault_; }

  // The link's cumulative simulated time: every attempt and exchange
  // advances it, and the fault schedule is evaluated against it.
  double now() const { return total_seconds_; }

  // Advances the clock without transferring anything (retry backoff,
  // client think time). Lets the fault schedule progress between
  // attempts.
  void Wait(double seconds);

  // Usable bandwidth in bytes/second at normalized speed `speed` ∈ [0, 1].
  // Pure with respect to the fault schedule: scheduled bandwidth dips are
  // applied per attempt, not here.
  double UsableBandwidth(double speed) const;

  // Performs ONE delivery attempt of `request_bytes` up and
  // `response_bytes` down at normalized speed `speed`, advancing the
  // clock and counters. Used by ReliableChannel, which owns the retry
  // policy; plain Exchange() wraps this in the legacy retry loop.
  AttemptOutcome Attempt(int64_t request_bytes, int64_t response_bytes,
                         double speed);

  // Time to complete one request/response exchange carrying
  // `request_bytes` up and `response_bytes` down at normalized speed
  // `speed`: one connection latency plus the transfer time of both
  // payloads, plus retry time under loss (bounded by
  // max_retries_per_exchange). Updates the cumulative counters.
  double Exchange(int64_t request_bytes, int64_t response_bytes,
                  double speed);

  // Pure cost query; does not touch the counters or the fault schedule.
  double ExchangeSeconds(int64_t request_bytes, int64_t response_bytes,
                         double speed) const;

  const Options& options() const { return options_; }
  int64_t total_requests() const { return total_requests_; }
  int64_t total_bytes_down() const { return total_bytes_down_; }
  int64_t total_bytes_up() const { return total_bytes_up_; }
  double total_seconds() const { return total_seconds_; }
  // Attempts lost and retried across all exchanges.
  int64_t total_retries() const { return total_retries_; }
  // Exchanges that exhausted the internal retry cap.
  int64_t total_timeouts() const { return total_timeouts_; }
  void ResetStats();

 private:
  // Exchange time ignoring loss, at the bandwidth valid *now* (i.e.
  // including any scheduled dip at the current clock).
  double RawSeconds(int64_t request_bytes, int64_t response_bytes,
                    double speed);

  Options options_;
  common::Rng rng_;
  FaultSchedule* fault_ = nullptr;
  int64_t total_requests_ = 0;
  int64_t total_bytes_down_ = 0;
  int64_t total_bytes_up_ = 0;
  int64_t total_retries_ = 0;
  int64_t total_timeouts_ = 0;
  double total_seconds_ = 0.0;
};

}  // namespace mars::net

#endif  // MARS_NET_LINK_H_
