#ifndef MARS_NET_LINK_H_
#define MARS_NET_LINK_H_

#include <cstdint>

#include "common/rng.h"

namespace mars::net {

// Deterministic model of the client-server wireless link. Default
// parameters match the paper's experimental setup (Sec. VII-A): 256 Kbps
// bandwidth, 200 ms latency. The usable bandwidth of a *moving* client
// degrades with speed ("the usable bandwidth of a connection ... drops to
// a fraction of the bandwidth that is available for clients at rest",
// Sec. I, after the Ofcom measurements).
class SimulatedLink {
 public:
  struct Options {
    double bandwidth_kbps = 256.0;
    double latency_seconds = 0.2;
    // Usable bandwidth at normalized speed s is
    //   bandwidth * (1 − motion_degradation * s),
    // so a client at full speed keeps (1 − motion_degradation) of the
    // stationary bandwidth.
    double motion_degradation = 0.5;
    // Probability that an exchange attempt is lost mid-flight (mobile
    // links drop in tunnels, at cell handovers, ...). A lost attempt
    // costs its connection latency plus a uniformly random fraction of
    // the transfer time, then the client retries; retries repeat until
    // one attempt succeeds. 0 disables loss. Additionally, loss at speed
    // s is scaled by (1 + s): fast clients drop more.
    double loss_probability = 0.0;
    // Seed for the loss process (deterministic runs).
    uint64_t loss_seed = 1;
  };

  SimulatedLink();  // default options
  explicit SimulatedLink(Options options);

  // Usable bandwidth in bytes/second at normalized speed `speed` ∈ [0, 1].
  double UsableBandwidth(double speed) const;

  // Time to complete one request/response exchange carrying
  // `request_bytes` up and `response_bytes` down at normalized speed
  // `speed`: one connection latency plus the transfer time of both
  // payloads. Updates the cumulative counters.
  double Exchange(int64_t request_bytes, int64_t response_bytes,
                  double speed);

  // Pure cost query; does not touch the counters.
  double ExchangeSeconds(int64_t request_bytes, int64_t response_bytes,
                         double speed) const;

  const Options& options() const { return options_; }
  int64_t total_requests() const { return total_requests_; }
  int64_t total_bytes_down() const { return total_bytes_down_; }
  int64_t total_bytes_up() const { return total_bytes_up_; }
  double total_seconds() const { return total_seconds_; }
  // Attempts lost and retried across all exchanges.
  int64_t total_retries() const { return total_retries_; }
  void ResetStats();

 private:
  Options options_;
  common::Rng rng_;
  int64_t total_requests_ = 0;
  int64_t total_bytes_down_ = 0;
  int64_t total_bytes_up_ = 0;
  int64_t total_retries_ = 0;
  double total_seconds_ = 0.0;
};

}  // namespace mars::net

#endif  // MARS_NET_LINK_H_
