#include "buffer/cost_model.h"

namespace mars::buffer {

double TotalTransferCost(const TransferCostParams& params,
                         const std::vector<int32_t>& blocks_per_miss) {
  double total = 0.0;
  for (int32_t n : blocks_per_miss) {
    total += params.connection_cost +
             params.per_byte_cost * static_cast<double>(params.block_bytes) *
                 static_cast<double>(n);
  }
  return total;
}

}  // namespace mars::buffer
