#include "buffer/sector_allocator.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "buffer/optimal_split.h"
#include "common/logging.h"

namespace mars::buffer {

namespace {

// Recursive halving over probs[lo, hi) with `budget` blocks; writes counts
// into out[lo, hi).
void AllocateRange(const std::vector<double>& probs, int32_t lo, int32_t hi,
                   int32_t budget, std::vector<int32_t>* out) {
  const int32_t count = hi - lo;
  if (count == 1) {
    (*out)[lo] = budget;
    return;
  }
  const int32_t mid = lo + count / 2;
  double p_left = 0.0, p_right = 0.0;
  for (int32_t i = lo; i < mid; ++i) p_left += probs[i];
  for (int32_t i = mid; i < hi; ++i) p_right += probs[i];
  const int32_t left_budget = SplitBudget(budget, p_left, p_right);
  AllocateRange(probs, lo, mid, left_budget, out);
  AllocateRange(probs, mid, hi, budget - left_budget, out);
}

}  // namespace

std::vector<int32_t> AllocateBuffer(const std::vector<double>& probs,
                                    int32_t budget) {
  MARS_CHECK(!probs.empty());
  MARS_CHECK_GE(budget, 0);
  std::vector<int32_t> out(probs.size(), 0);
  AllocateRange(probs, 0, static_cast<int32_t>(probs.size()), budget, &out);
  return out;
}

double AllocationScore(const std::vector<double>& probs,
                       const std::vector<int32_t>& allocation) {
  MARS_CHECK_EQ(probs.size(), allocation.size());
  // Fluid approximation of the star walk: direction i consumes its n_i
  // blocks after roughly n_i / p_i steps; the client leaves the buffered
  // region when the *first* direction runs out.
  double total_p = std::accumulate(probs.begin(), probs.end(), 0.0);
  if (total_p <= 0.0) total_p = 1.0;
  double score = std::numeric_limits<double>::max();
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p = probs[i] / total_p;
    if (p <= 0.0) continue;  // never moves that way; cannot exit there
    score = std::min(score, (allocation[i] + 0.5) / p);
  }
  return score == std::numeric_limits<double>::max() ? 0.0 : score;
}

std::vector<int32_t> AllocateBufferBestOrdering(
    const std::vector<double>& probs, int32_t budget) {
  MARS_CHECK(!probs.empty());
  MARS_CHECK_LE(probs.size(), 8u) << "orderings grow factorially";

  std::vector<int32_t> order(probs.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<int32_t> best_alloc = AllocateBuffer(probs, budget);
  double best_score = AllocationScore(probs, best_alloc);

  std::vector<int32_t> perm = order;
  std::sort(perm.begin(), perm.end());
  do {
    std::vector<double> permuted(probs.size());
    for (size_t i = 0; i < perm.size(); ++i) permuted[i] = probs[perm[i]];
    const std::vector<int32_t> alloc_permuted =
        AllocateBuffer(permuted, budget);
    // Undo the permutation so counts line up with the caller's directions.
    std::vector<int32_t> alloc(probs.size());
    for (size_t i = 0; i < perm.size(); ++i) alloc[perm[i]] = alloc_permuted[i];
    const double score = AllocationScore(probs, alloc);
    if (score > best_score) {
      best_score = score;
      best_alloc = alloc;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best_alloc;
}

}  // namespace mars::buffer
