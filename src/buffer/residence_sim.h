#ifndef MARS_BUFFER_RESIDENCE_SIM_H_
#define MARS_BUFFER_RESIDENCE_SIM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mars::buffer {

// Monte-Carlo evaluation of a buffer allocation: a walker starts on the
// hub cell of a 2D lattice; each step it moves one unit in direction i
// (angle 2πi/k) with probability proportional to p_i, or (with probability
// `return_probability`) drifts one unit back towards the hub. The buffered
// region holds, per direction sector, the allocation[i] cells nearest the
// hub; the walk ends when the walker leaves the buffered region. Returns
// the mean number of steps survived over `trials` runs.
//
// This is the k-direction generalization of the 1D residence time T_{a,n}
// the paper maximizes (Sec. V-A); the allocation ablation bench uses it to
// compare the recursive Eq.-2 allocator against uniform and exhaustive-
// ordering alternatives.
double SimulateStarResidence(const std::vector<double>& probs,
                             const std::vector<int32_t>& allocation,
                             double return_probability, int32_t trials,
                             common::Rng& rng);

}  // namespace mars::buffer

#endif  // MARS_BUFFER_RESIDENCE_SIM_H_
