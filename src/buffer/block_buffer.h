#ifndef MARS_BUFFER_BLOCK_BUFFER_H_
#define MARS_BUFFER_BLOCK_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace mars::buffer {

// Counters for the paper's two buffer-management metrics: cache hit rate
// (Sec. VII-C, "a measure of reduction in latency") and data utilization
// ("the used portion of the total pre-fetched data").
struct BlockBufferStats {
  int64_t lookups = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t prefetched_bytes = 0;
  int64_t used_prefetched_bytes = 0;
  int64_t demand_bytes = 0;

  double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
  double Utilization() const {
    return prefetched_bytes == 0
               ? 0.0
               : static_cast<double>(used_prefetched_bytes) /
                     prefetched_bytes;
  }
};

// The client's limited block buffer (paper Sec. V): holds grid blocks of
// multiresolution data, filled on demand (cache misses) and ahead of time
// by a prefetcher. Eviction removes the lowest-priority block; the
// prefetcher refreshes priorities every frame (predicted visit
// probability), and priorities of unrefreshed blocks decay, so stale data
// ages out unless the motion model keeps predicting it.
class BlockBuffer {
 public:
  // Fixed bookkeeping cost charged against capacity for every resident
  // block (directory entry, ids, held-resolution metadata). Keeps even
  // data-less blocks from being free, so small buffers behave like small
  // buffers.
  static constexpr int64_t kEntryOverheadBytes = 64;

  explicit BlockBuffer(int64_t capacity_bytes);

  // Query-path lookup: true when `block` is resident with detail at least
  // as fine as `needed_w_min` (held w_min <= needed). Counts one hit or
  // miss and, on a hit, credits the block's not-yet-used prefetched bytes
  // to the utilization numerator.
  bool Lookup(int64_t block, double needed_w_min);

  // Same residency test without touching the statistics or the
  // utilization credit. Used for blocks that stay inside the view from
  // one frame to the next: the paper's hit/miss accounting is per *newly
  // visited* region, so steady-state re-reads are not counted.
  bool Peek(int64_t block, double needed_w_min) const;

  // Installs demand-fetched data for `block`: `added_bytes` new bytes that
  // refine the block's held resolution down to `w_min`.
  void InsertDemand(int64_t block, double w_min, int64_t added_bytes,
                    double priority);

  // Installs prefetched data (counted against utilization).
  void InsertPrefetch(int64_t block, double w_min, int64_t added_bytes,
                      double priority);

  // Raises/refreshes a resident block's eviction priority.
  void UpdatePriority(int64_t block, double priority);

  // True when inserting `added_bytes` at `priority` would survive: there is
  // room after evicting only strictly lower-priority blocks. Prefetchers
  // check this before spending link bandwidth on a block that would be
  // evicted straight away (or would evict something more valuable).
  bool CanAdmit(int64_t added_bytes, double priority) const;

  // Pins/unpins a block. Pinned blocks model the data backing the client's
  // *current view* (display memory): they are never evicted and their
  // bytes do not count against the buffer capacity, which — as in the
  // paper's cost model — bounds only the pre-fetched/cached surroundings.
  // Pinning an absent block creates an empty (no data) entry so that data
  // fetched for the current view is protected from the moment it arrives.
  void Pin(int64_t block);
  void Unpin(int64_t block);
  bool IsPinned(int64_t block) const;

  // Multiplies every resident priority by `factor` in [0, 1]; called once
  // per frame so untouched blocks age out.
  void DecayPriorities(double factor);

  bool Contains(int64_t block) const { return entries_.contains(block); }

  // Finest (smallest) w_min held for `block`; returns +inf when absent.
  double HeldWMin(int64_t block) const;

  int64_t used_bytes() const { return used_bytes_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  size_t block_count() const { return entries_.size(); }

  const BlockBufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BlockBufferStats(); }

 private:
  struct Entry {
    double w_min_held = 2.0;  // > 1.0 means "no data yet"
    int64_t bytes = 0;
    double priority = 0.0;
    // Prefetched bytes not yet credited as used.
    int64_t pending_prefetch_bytes = 0;
    bool pinned = false;
  };

  int64_t EntryFootprint(const Entry& e) const {
    return e.bytes + kEntryOverheadBytes;
  }
  // Bytes charged against the capacity (pinned entries are exempt).
  int64_t ChargedBytes() const { return used_bytes_ - pinned_bytes_; }

  void Insert(int64_t block, double w_min, int64_t added_bytes,
              double priority, bool is_prefetch);
  // Evicts the lowest-priority unpinned block; false if none exists.
  bool EvictWorst();

  int64_t capacity_bytes_;
  int64_t used_bytes_ = 0;
  int64_t pinned_bytes_ = 0;
  std::unordered_map<int64_t, Entry> entries_;
  BlockBufferStats stats_;
};

}  // namespace mars::buffer

#endif  // MARS_BUFFER_BLOCK_BUFFER_H_
