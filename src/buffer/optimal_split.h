#ifndef MARS_BUFFER_OPTIMAL_SPLIT_H_
#define MARS_BUFFER_OPTIMAL_SPLIT_H_

#include <cstdint>

namespace mars::buffer {

// Expected residence time (in steps) of a biased 1D random walk inside a
// corridor with absorbing barriers at 0 and `a`, starting at position `n`
// (0 < n < a), stepping towards 0 with probability proportional to p_l and
// towards `a` with probability proportional to p_r. This is the T_{a,n}
// maximized by the pre-fetching model of paper Sec. V-A (after de Nitto
// Personè et al.). p_l and p_r are normalized internally.
double ExpectedResidenceTime(int32_t a, int32_t n, double p_l, double p_r);

// Paper Eq. (2): the real-valued position n_opt in (0, a) that maximizes
// ExpectedResidenceTime. Handles the removable singularity at p_l == p_r
// (limit a/2) and degenerate probabilities by clamping into (0, a).
double OptimalPosition(int32_t a, double p_l, double p_r);

// Splits a budget of `budget` bufferable blocks between the "left" and
// "right" direction groups: corridor width a = budget + 2 (the budget
// blocks plus the two absorbing boundary cells), left share = n_opt − 1.
// Returns the number of blocks for the left group, in [0, budget]; the
// right group gets the rest.
int32_t SplitBudget(int32_t budget, double p_l, double p_r);

}  // namespace mars::buffer

#endif  // MARS_BUFFER_OPTIMAL_SPLIT_H_
