#include "buffer/optimal_split.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mars::buffer {

namespace {
// Below this |ln(p_l/p_r)| the symmetric limit is numerically safer.
constexpr double kSymmetricTolerance = 1e-9;
}  // namespace

double ExpectedResidenceTime(int32_t a, int32_t n, double p_l, double p_r) {
  MARS_CHECK_GE(a, 2);
  MARS_CHECK_GT(n, 0);
  MARS_CHECK_LT(n, a);
  MARS_CHECK_GT(p_l + p_r, 0.0);
  const double q = p_l / (p_l + p_r);  // step towards 0
  const double p = 1.0 - q;            // step towards a
  if (std::abs(p - q) < 1e-12) {
    return static_cast<double>(n) * (a - n);
  }
  // Gambler's-ruin expected duration, start n, absorbing at 0 and a.
  const double r = q / p;
  return n / (q - p) -
         (static_cast<double>(a) / (q - p)) *
             (1.0 - std::pow(r, n)) / (1.0 - std::pow(r, a));
}

double OptimalPosition(int32_t a, double p_l, double p_r) {
  MARS_CHECK_GE(a, 2);
  // Degenerate probabilities: all mass on one side.
  if (p_l <= 0.0 && p_r <= 0.0) return a / 2.0;
  if (p_l <= 0.0) return 1.0;       // never steps left; hug the left wall
  if (p_r <= 0.0) return a - 1.0;   // never steps right
  const double rho = p_l / p_r;
  const double log_rho = std::log(rho);
  if (std::abs(log_rho) < kSymmetricTolerance) {
    return a / 2.0;
  }
  // Paper Eq. (2): n_opt = log((rho^a − 1) / (a·log rho)) / log rho.
  const double n_opt =
      std::log((std::pow(rho, a) - 1.0) / (a * log_rho)) / log_rho;
  return std::clamp(n_opt, 1.0, static_cast<double>(a) - 1.0);
}

int32_t SplitBudget(int32_t budget, double p_l, double p_r) {
  MARS_CHECK_GE(budget, 0);
  if (budget == 0) return 0;
  const int32_t a = budget + 2;
  const double n_opt = OptimalPosition(a, p_l, p_r);
  const int32_t left = static_cast<int32_t>(std::lround(n_opt)) - 1;
  return std::clamp(left, 0, budget);
}

}  // namespace mars::buffer
