#ifndef MARS_BUFFER_SECTOR_ALLOCATOR_H_
#define MARS_BUFFER_SECTOR_ALLOCATOR_H_

#include <cstdint>
#include <vector>

namespace mars::buffer {

// Distributes `budget` bufferable blocks across k directions with movement
// probabilities `probs` (paper Sec. V-A): the probabilities are split into
// two halves, Eq. (2) decides the two groups' shares, and the process
// recurses until each partition holds a single direction. Returns one
// block count per direction; counts sum to `budget`.
std::vector<int32_t> AllocateBuffer(const std::vector<double>& probs,
                                    int32_t budget);

// Same, but tries every ordering of the directions and keeps the
// allocation with the highest analytic residence-time score. The paper
// notes "this step can be omitted as the ordering only slightly affects
// the average residence time" — exposed so the claim can be measured
// (see the allocation ablation bench). k is limited to 8 (8! orderings).
std::vector<int32_t> AllocateBufferBestOrdering(
    const std::vector<double>& probs, int32_t budget);

// Analytic score used to compare allocations: the expected number of steps
// a star-walker (direction i with probability p_i, one block per step)
// survives before exhausting some direction's allocation, approximated by
// min over directions of the 1D two-sided residence bound. Higher is
// better.
double AllocationScore(const std::vector<double>& probs,
                       const std::vector<int32_t>& allocation);

}  // namespace mars::buffer

#endif  // MARS_BUFFER_SECTOR_ALLOCATOR_H_
