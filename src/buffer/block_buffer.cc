#include "buffer/block_buffer.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace mars::buffer {

BlockBuffer::BlockBuffer(int64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  MARS_CHECK_GT(capacity_bytes, 0);
}

bool BlockBuffer::Lookup(int64_t block, double needed_w_min) {
  ++stats_.lookups;
  auto it = entries_.find(block);
  if (it == entries_.end() || it->second.w_min_held > needed_w_min) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  if (e.pending_prefetch_bytes > 0) {
    stats_.used_prefetched_bytes += e.pending_prefetch_bytes;
    e.pending_prefetch_bytes = 0;
  }
  return true;
}

bool BlockBuffer::Peek(int64_t block, double needed_w_min) const {
  const auto it = entries_.find(block);
  return it != entries_.end() && it->second.w_min_held <= needed_w_min;
}

void BlockBuffer::Insert(int64_t block, double w_min, int64_t added_bytes,
                         double priority, bool is_prefetch) {
  MARS_CHECK_GE(added_bytes, 0);
  const bool is_new = !entries_.contains(block);
  Entry& e = entries_[block];
  if (is_new) used_bytes_ += kEntryOverheadBytes;
  e.w_min_held = std::min(e.w_min_held, w_min);
  e.bytes += added_bytes;
  e.priority = std::max(e.priority, priority);
  used_bytes_ += added_bytes;
  if (e.pinned) pinned_bytes_ += added_bytes;
  if (is_prefetch) {
    e.pending_prefetch_bytes += added_bytes;
    stats_.prefetched_bytes += added_bytes;
  } else {
    stats_.demand_bytes += added_bytes;
  }
  while (ChargedBytes() > capacity_bytes_) {
    if (!EvictWorst()) break;
  }
}

void BlockBuffer::InsertDemand(int64_t block, double w_min,
                               int64_t added_bytes, double priority) {
  Insert(block, w_min, added_bytes, priority, /*is_prefetch=*/false);
}

void BlockBuffer::InsertPrefetch(int64_t block, double w_min,
                                 int64_t added_bytes, double priority) {
  Insert(block, w_min, added_bytes, priority, /*is_prefetch=*/true);
}

bool BlockBuffer::CanAdmit(int64_t added_bytes, double priority) const {
  const int64_t needed = added_bytes + kEntryOverheadBytes;
  int64_t reclaimable = capacity_bytes_ - ChargedBytes();
  if (reclaimable >= needed) return true;
  for (const auto& [block, e] : entries_) {
    if (!e.pinned && e.priority < priority) {
      reclaimable += EntryFootprint(e);
      if (reclaimable >= needed) return true;
    }
  }
  return false;
}

void BlockBuffer::Pin(int64_t block) {
  auto it = entries_.find(block);
  if (it == entries_.end()) {
    // Placeholder so the view's data is protected as soon as it arrives.
    it = entries_.emplace(block, Entry{}).first;
    used_bytes_ += kEntryOverheadBytes;
  }
  if (it->second.pinned) return;
  it->second.pinned = true;
  pinned_bytes_ += EntryFootprint(it->second);
}

void BlockBuffer::Unpin(int64_t block) {
  auto it = entries_.find(block);
  if (it == entries_.end() || !it->second.pinned) return;
  it->second.pinned = false;
  pinned_bytes_ -= EntryFootprint(it->second);
  // Leaving the view may overflow the (prefetch) capacity.
  while (ChargedBytes() > capacity_bytes_) {
    if (!EvictWorst()) break;
  }
}

bool BlockBuffer::IsPinned(int64_t block) const {
  const auto it = entries_.find(block);
  return it != entries_.end() && it->second.pinned;
}

void BlockBuffer::UpdatePriority(int64_t block, double priority) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    it->second.priority = std::max(it->second.priority, priority);
  }
}

void BlockBuffer::DecayPriorities(double factor) {
  MARS_CHECK_GE(factor, 0.0);
  MARS_CHECK_LE(factor, 1.0);
  for (auto& [block, e] : entries_) {
    e.priority *= factor;
  }
}

double BlockBuffer::HeldWMin(int64_t block) const {
  auto it = entries_.find(block);
  return it == entries_.end() ? std::numeric_limits<double>::infinity()
                              : it->second.w_min_held;
}

bool BlockBuffer::EvictWorst() {
  auto worst = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.pinned) continue;
    if (worst == entries_.end() ||
        it->second.priority < worst->second.priority) {
      worst = it;
    }
  }
  if (worst == entries_.end()) return false;  // everything pinned
  used_bytes_ -= EntryFootprint(worst->second);
  entries_.erase(worst);
  return true;
}

}  // namespace mars::buffer
