#ifndef MARS_BUFFER_LRU_CACHE_H_
#define MARS_BUFFER_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace mars::buffer {

// Byte-bounded least-recently-used cache over keys of type K. This is the
// "simple Least Recently Used (LRU) scheme" the naive end-to-end system
// uses for caching (paper Sec. VII-E). Entries carry only a byte size;
// payloads live elsewhere (the client's coefficient store).
template <typename K>
class LruCache {
 public:
  explicit LruCache(int64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {
    MARS_CHECK_GE(capacity_bytes, 0);
  }

  // True if `key` is resident; refreshes recency on hit.
  bool Touch(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    order_.splice(order_.begin(), order_, it->second.order_it);
    ++hits_;
    return true;
  }

  // True if resident; does not change recency or hit statistics.
  bool Contains(const K& key) const { return map_.contains(key); }

  // Inserts or refreshes `key` with the given size; evicts LRU entries
  // until within capacity. Returns the evicted keys. An entry larger than
  // the whole capacity is admitted alone (and evicts everything else).
  std::vector<K> Put(const K& key, int64_t bytes) {
    MARS_CHECK_GE(bytes, 0);
    auto it = map_.find(key);
    if (it != map_.end()) {
      used_bytes_ += bytes - it->second.bytes;
      it->second.bytes = bytes;
      order_.splice(order_.begin(), order_, it->second.order_it);
    } else {
      order_.push_front(key);
      map_[key] = Entry{bytes, order_.begin()};
      used_bytes_ += bytes;
    }
    std::vector<K> evicted;
    while (used_bytes_ > capacity_bytes_ && order_.size() > 1) {
      evicted.push_back(EvictLru(key));
    }
    return evicted;
  }

  // Reports the least-recently-used key other than `protect` without
  // evicting it; false when no such key exists.
  bool LeastRecent(const K& protect, K* out) const {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (!(*it == protect)) {
        *out = *it;
        return true;
      }
    }
    return false;
  }

  // Removes `key` if present.
  bool Erase(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    used_bytes_ -= it->second.bytes;
    order_.erase(it->second.order_it);
    map_.erase(it);
    return true;
  }

  int64_t used_bytes() const { return used_bytes_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  size_t size() const { return map_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  struct Entry {
    int64_t bytes = 0;
    typename std::list<K>::iterator order_it;
  };

  // Evicts the least recently used entry, never evicting `protect`.
  K EvictLru(const K& protect) {
    auto victim_it = std::prev(order_.end());
    if (*victim_it == protect) {
      MARS_CHECK(order_.size() > 1);
      victim_it = std::prev(victim_it);
    }
    const K victim = *victim_it;
    auto map_it = map_.find(victim);
    used_bytes_ -= map_it->second.bytes;
    order_.erase(map_it->second.order_it);
    map_.erase(map_it);
    return victim;
  }

  int64_t capacity_bytes_;
  int64_t used_bytes_ = 0;
  std::list<K> order_;  // most recent at front
  std::unordered_map<K, Entry> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace mars::buffer

#endif  // MARS_BUFFER_LRU_CACHE_H_
