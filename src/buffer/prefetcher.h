#ifndef MARS_BUFFER_PREFETCHER_H_
#define MARS_BUFFER_PREFETCHER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geometry/grid.h"
#include "geometry/vec.h"
#include "motion/grid_probability.h"
#include "motion/predictor.h"
#include "motion/sectors.h"

namespace mars::buffer {

// Blocks a prefetcher wants resident, most valuable first.
struct PrefetchPlan {
  struct Item {
    int64_t block = 0;
    // Eviction priority (predicted visit probability for the motion-aware
    // scheme).
    double priority = 0.0;
    // Resolution to prefetch: the motion-aware multiresolution strategy
    // buffers lower resolutions when moving fast (paper Sec. V, last
    // paragraph).
    double w_min = 0.0;
  };
  std::vector<Item> items;

  // Collapses duplicate blocks (e.g. a block reachable from two direction
  // sectors) into one item carrying the higher priority and the finer
  // (smaller) w_min, then re-sorts by priority. A duplicate-free plan is
  // left exactly as-is, ordering included.
  void Dedupe();
};

// Motion-aware prefetcher (paper Sec. V): predicts the client's path,
// derives per-block visit probabilities, aggregates them into k direction
// probabilities, splits the block budget across directions with the
// Eq.-2-based allocator, and picks each direction's most probable blocks.
class MotionAwarePrefetcher {
 public:
  struct Options {
    int32_t directions = 4;  // k
    motion::GridProbabilityOptions probability;
    // Ring search limit when a sector has fewer predicted blocks than its
    // allocation (Chebyshev radius in blocks).
    int32_t max_ring_radius = 12;
    // Use the best-of-all-orderings allocation (paper notes it changes
    // little; exposed for the ablation bench).
    bool exhaustive_ordering = false;
    // Adaptive horizon: the prediction depth (in timestamps) is chosen so
    // the predicted path spans roughly budget_blocks / blocks_per_depth_unit
    // grid blocks — "to fill a large buffer, a client pre-fetches more
    // data by predicting positions of the query frame far into the future"
    // (paper Sec. VII-C) — clamped to [min_horizon, max_horizon].
    double blocks_per_depth_unit = 8.0;
    int32_t min_horizon = 4;
    int32_t max_horizon = 48;
  };

  MotionAwarePrefetcher();  // default options
  explicit MotionAwarePrefetcher(Options options);

  // Plans up to `budget_blocks` blocks around `position`; `w_min` (in
  // [0, 1]) is the prefetch resolution the caller's QoS policy mapped
  // from the current speed (qos::ResolutionPolicy).
  PrefetchPlan Plan(const motion::PositionPredictor& predictor,
                    const geometry::GridPartition& grid,
                    const geometry::Vec2& position, double w_min,
                    int32_t budget_blocks, common::Rng& rng) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

// Baseline prefetcher (paper Sec. VII-C): "all the surrounding regions of a
// query frame are buffered with equal probabilities" — fills the budget
// ring by ring around the client, uniformly.
class NaivePrefetcher {
 public:
  PrefetchPlan Plan(const geometry::GridPartition& grid,
                    const geometry::Vec2& position, double w_min,
                    int32_t budget_blocks) const;
};

}  // namespace mars::buffer

#endif  // MARS_BUFFER_PREFETCHER_H_
