#include "buffer/residence_sim.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace mars::buffer {

namespace {

// Sector of a lattice cell (by its center angle), with sector i spanning
// [i·2π/k − π/k, i·2π/k + π/k) — the same convention as
// motion::SectorPartition.
int32_t SectorOfCell(int32_t x, int32_t y, size_t k) {
  double angle = std::atan2(static_cast<double>(y), static_cast<double>(x));
  angle += M_PI / static_cast<double>(k);
  if (angle < 0) angle += 2.0 * M_PI;
  const int32_t s =
      static_cast<int32_t>(angle / (2.0 * M_PI / static_cast<double>(k)));
  return s % static_cast<int32_t>(k);
}

}  // namespace

double SimulateStarResidence(const std::vector<double>& probs,
                             const std::vector<int32_t>& allocation,
                             double return_probability, int32_t trials,
                             common::Rng& rng) {
  MARS_CHECK_EQ(probs.size(), allocation.size());
  MARS_CHECK_GE(trials, 1);
  MARS_CHECK_GE(return_probability, 0.0);
  MARS_CHECK_LT(return_probability, 1.0);

  const double total_p = std::accumulate(probs.begin(), probs.end(), 0.0);
  MARS_CHECK_GT(total_p, 0.0);
  const size_t k = probs.size();

  // Buffered set: for each sector, the allocation[i] cells of that sector
  // nearest the hub (the hub cell itself is always resident). Cells are
  // enumerated ring by ring.
  std::set<std::pair<int32_t, int32_t>> buffered;
  buffered.insert({0, 0});
  {
    std::vector<int32_t> remaining = allocation;
    int64_t left = 0;
    for (int32_t n : remaining) left += n;
    for (int32_t r = 1; left > 0 && r <= 1000; ++r) {
      // Collect ring cells sorted by (distance, angle) for determinism.
      std::vector<std::pair<double, std::pair<int32_t, int32_t>>> ring;
      for (int32_t x = -r; x <= r; ++x) {
        for (int32_t y = -r; y <= r; ++y) {
          if (std::max(std::abs(x), std::abs(y)) != r) continue;
          ring.push_back({std::hypot(x, y), {x, y}});
        }
      }
      std::sort(ring.begin(), ring.end());
      for (const auto& [dist, cell] : ring) {
        const int32_t s = SectorOfCell(cell.first, cell.second, k);
        if (remaining[s] > 0) {
          buffered.insert(cell);
          --remaining[s];
          --left;
        }
      }
    }
  }

  // Step directions: unit vectors at angles 2πi/k, accumulated on a
  // continuous position and snapped to lattice cells.
  std::vector<std::pair<double, double>> dir(k);
  for (size_t i = 0; i < k; ++i) {
    const double a = 2.0 * M_PI * static_cast<double>(i) / k;
    dir[i] = {std::cos(a), std::sin(a)};
  }

  int64_t total_steps = 0;
  const int64_t step_cap = 1'000'000;
  for (int32_t t = 0; t < trials; ++t) {
    double x = 0.0, y = 0.0;
    int64_t steps = 0;
    while (steps < step_cap) {
      ++steps;
      if (rng.Bernoulli(return_probability)) {
        // Drift back towards the hub.
        const double norm = std::hypot(x, y);
        if (norm > 1e-9) {
          x -= x / norm;
          y -= y / norm;
        }
      } else {
        double u = rng.UniformDouble() * total_p;
        size_t pick = 0;
        for (; pick + 1 < k; ++pick) {
          if (u < probs[pick]) break;
          u -= probs[pick];
        }
        x += dir[pick].first;
        y += dir[pick].second;
      }
      const std::pair<int32_t, int32_t> cell{
          static_cast<int32_t>(std::lround(x)),
          static_cast<int32_t>(std::lround(y))};
      if (!buffered.contains(cell)) break;
    }
    total_steps += steps;
  }
  return static_cast<double>(total_steps) / trials;
}

}  // namespace mars::buffer
