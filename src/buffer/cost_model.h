#ifndef MARS_BUFFER_COST_MODEL_H_
#define MARS_BUFFER_COST_MODEL_H_

#include <cstdint>
#include <vector>

namespace mars::buffer {

// Parameters of the data-transfer cost model (paper Eq. 1):
//   C = Σ_j (C_c + C_t · B · N(j))
// summed over the local cache misses of a continuous query.
struct TransferCostParams {
  // C_c: connection-establishment cost per miss (e.g. seconds, or any cost
  // unit).
  double connection_cost = 0.2;
  // C_t: transfer cost per byte.
  double per_byte_cost = 1.0 / 32000.0;  // 256 Kbps in seconds/byte
  // B: bytes per block.
  int64_t block_bytes = 4096;
};

// Evaluates Eq. (1): `blocks_per_miss[j]` is N(j), the number of blocks
// retrieved at the j-th local cache miss.
double TotalTransferCost(const TransferCostParams& params,
                         const std::vector<int32_t>& blocks_per_miss);

}  // namespace mars::buffer

#endif  // MARS_BUFFER_COST_MODEL_H_
