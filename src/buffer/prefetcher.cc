#include "buffer/prefetcher.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "buffer/sector_allocator.h"
#include "common/logging.h"

namespace mars::buffer {

namespace {

using geometry::BlockCoord;
using geometry::GridPartition;

// Calls `fn(coord)` for every valid block on the Chebyshev ring of radius
// `r` around `center` (r = 0 is the center block itself).
template <typename Fn>
void ForRing(const GridPartition& grid, const BlockCoord& center, int32_t r,
             Fn&& fn) {
  if (r == 0) {
    if (grid.IsValidCoord(center)) fn(center);
    return;
  }
  for (int32_t dx = -r; dx <= r; ++dx) {
    for (int32_t dy = -r; dy <= r; ++dy) {
      if (std::max(std::abs(dx), std::abs(dy)) != r) continue;
      const BlockCoord c{center.i + dx, center.j + dy};
      if (grid.IsValidCoord(c)) fn(c);
    }
  }
}

struct Candidate {
  int64_t block = 0;
  double probability = 0.0;
  int32_t ring = 0;
};

}  // namespace

void PrefetchPlan::Dedupe() {
  std::unordered_map<int64_t, size_t> first;
  std::vector<Item> unique;
  unique.reserve(items.size());
  for (const Item& item : items) {
    const auto [it, inserted] = first.emplace(item.block, unique.size());
    if (inserted) {
      unique.push_back(item);
      continue;
    }
    Item& kept = unique[it->second];
    // Merge: the stronger claim wins the eviction priority; the finer
    // resolution request wins the band (fetching coarser than any
    // requester wanted would leave a hole).
    kept.priority = std::max(kept.priority, item.priority);
    kept.w_min = std::min(kept.w_min, item.w_min);
  }
  if (unique.size() == items.size()) return;  // already duplicate-free
  items = std::move(unique);
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.priority > b.priority;
  });
}

MotionAwarePrefetcher::MotionAwarePrefetcher()
    : MotionAwarePrefetcher(Options()) {}

MotionAwarePrefetcher::MotionAwarePrefetcher(Options options)
    : options_(options) {
  MARS_CHECK_GE(options.directions, 1);
}

PrefetchPlan MotionAwarePrefetcher::Plan(
    const motion::PositionPredictor& predictor, const GridPartition& grid,
    const geometry::Vec2& position, double w_min, int32_t budget_blocks,
    common::Rng& rng) const {
  PrefetchPlan plan;
  if (budget_blocks <= 0) return plan;

  // (i) Estimate the client's path: per-block visit probabilities, with a
  // look-ahead deep enough to span the buffer's worth of blocks at the
  // client's current pace (bigger buffers predict farther into the
  // future, as in the paper's Sec. VII-C discussion).
  motion::GridProbabilityOptions prob_options = options_.probability;
  const double depth_blocks =
      std::max(1.0, budget_blocks / options_.blocks_per_depth_unit);
  const double step_m = std::max(predictor.MeanStepDistance(), 1e-6);
  const double block_span = 0.5 * (grid.block_width() + grid.block_height());
  prob_options.horizon = std::clamp(
      static_cast<int32_t>(depth_blocks * block_span / step_m),
      options_.min_horizon, options_.max_horizon);
  // Keep half of the sampling weight alive at the far end of the horizon.
  prob_options.step_discount = std::pow(0.5, 1.0 / prob_options.horizon);
  const motion::BlockProbabilities probs = motion::ComputeBlockProbabilities(
      predictor, grid, prob_options, rng);

  // (ii) Aggregate into k direction probabilities and split the budget.
  motion::SectorPartition partition(position, options_.directions);
  const auto directions = partition.Aggregate(grid, probs);
  const std::vector<int32_t> allocation =
      options_.exhaustive_ordering
          ? AllocateBufferBestOrdering(directions.p, budget_blocks)
          : AllocateBuffer(directions.p, budget_blocks);

  // (iii) Gather per-sector candidates: every block with predicted mass,
  // plus nearby rings so thin sectors can still fill their allocation.
  std::vector<std::vector<Candidate>> candidates(options_.directions);
  std::unordered_set<int64_t> seen;
  const BlockCoord center = grid.BlockOfPoint(position);
  const int64_t center_id = grid.BlockId(center);
  seen.insert(center_id);  // current block is demand territory

  for (const auto& [block, p] : probs) {
    if (block == center_id) continue;
    auto it = directions.block_sector.find(block);
    const int32_t sector = it != directions.block_sector.end()
                               ? it->second
                               : partition.SectorOfBlock(grid, block);
    const BlockCoord c = grid.BlockCoordOf(block);
    const int32_t ring = std::max(std::abs(c.i - center.i),
                                  std::abs(c.j - center.j));
    candidates[sector].push_back(Candidate{block, p, ring});
    seen.insert(block);
  }
  for (int32_t r = 1; r <= options_.max_ring_radius; ++r) {
    bool all_full = true;
    for (int32_t s = 0; s < options_.directions; ++s) {
      if (static_cast<int32_t>(candidates[s].size()) < allocation[s]) {
        all_full = false;
      }
    }
    if (all_full) break;
    ForRing(grid, center, r, [&](const BlockCoord& c) {
      const int64_t block = grid.BlockId(c);
      if (!seen.insert(block).second) return;
      const int32_t sector = partition.SectorOfBlock(grid, block);
      candidates[sector].push_back(Candidate{block, 0.0, r});
    });
  }

  // (iv) Per sector, keep the most promising blocks up to the allocation.
  for (int32_t s = 0; s < options_.directions; ++s) {
    std::vector<Candidate>& list = candidates[s];
    std::sort(list.begin(), list.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.probability != b.probability) {
                  return a.probability > b.probability;
                }
                if (a.ring != b.ring) return a.ring < b.ring;
                return a.block < b.block;
              });
    const int32_t take =
        std::min<int32_t>(allocation[s], static_cast<int32_t>(list.size()));
    for (int32_t i = 0; i < take; ++i) {
      // Ring-fill candidates carry no predicted mass; once the predictor
      // is producing real probabilities, spending budget on them only
      // wastes bandwidth (they exist to bootstrap a cold predictor).
      if (list[i].probability <= 0.0 && !probs.empty()) break;
      plan.items.push_back(PrefetchPlan::Item{
          list[i].block,
          // Nearer rings break probability ties in eviction decisions.
          list[i].probability + 1e-6 / (1.0 + list[i].ring),
          std::clamp(w_min, 0.0, 1.0)});
    }
  }
  std::sort(plan.items.begin(), plan.items.end(),
            [](const PrefetchPlan::Item& a, const PrefetchPlan::Item& b) {
              return a.priority > b.priority;
            });
  // The per-sector candidate sets are disjoint by construction today (the
  // `seen` set gives every block exactly one sector), but a block
  // reachable from two direction sectors must never be fetched twice —
  // enforce it here rather than relying on upstream invariants.
  plan.Dedupe();
  return plan;
}

PrefetchPlan NaivePrefetcher::Plan(const GridPartition& grid,
                                   const geometry::Vec2& position,
                                   double w_min,
                                   int32_t budget_blocks) const {
  PrefetchPlan plan;
  if (budget_blocks <= 0) return plan;
  const BlockCoord center = grid.BlockOfPoint(position);
  const int64_t center_id = grid.BlockId(center);
  for (int32_t r = 1;
       static_cast<int32_t>(plan.items.size()) < budget_blocks &&
       r <= std::max(grid.nx(), grid.ny());
       ++r) {
    ForRing(grid, center, r, [&](const BlockCoord& c) {
      if (static_cast<int32_t>(plan.items.size()) >= budget_blocks) return;
      const int64_t block = grid.BlockId(c);
      if (block == center_id) return;
      // Equal probabilities: every surrounding block gets the same
      // priority; only the ring order decides what fits in the budget.
      plan.items.push_back(PrefetchPlan::Item{
          block, 0.5, std::clamp(w_min, 0.0, 1.0)});
    });
  }
  // Disjoint rings cannot duplicate a block; a no-op that keeps the
  // ring-order guarantee, present for the same invariant as the
  // motion-aware path.
  plan.Dedupe();
  return plan;
}

}  // namespace mars::buffer
