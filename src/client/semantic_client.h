#ifndef MARS_CLIENT_SEMANTIC_CLIENT_H_
#define MARS_CLIENT_SEMANTIC_CLIENT_H_

#include <cstdint>

#include "client/semantic_cache.h"
#include "client/speed_map.h"
#include "client/viewport.h"
#include "geometry/box.h"
#include "geometry/vec.h"
#include "net/link.h"
#include "server/server.h"

namespace mars::client {

struct SemanticFrameReport {
  int64_t sub_queries = 0;
  int64_t new_records = 0;
  int64_t response_bytes = 0;
  int64_t node_accesses = 0;
  double response_seconds = 0.0;
  double coverage = 0.0;  // fraction of the query answered locally
};

// Retrieval client whose local memory is described *semantically*
// (region × resolution band, see SemanticCache) rather than by the
// previous frame only (StreamingClient) or by grid blocks
// (BufferedClient). Revisiting any previously seen region at a previously
// seen resolution costs nothing — the strongest of the three at
// wandering, revisit-heavy paths.
class SemanticClient {
 public:
  struct Options {
    double query_fraction = 0.1;
    SpeedResolutionMap speed_map;
    // External QoS policy owning the speed → w_min decision (not owned;
    // must outlive the client). Null — the default — wraps `speed_map` in
    // a static policy, which is bit-identical to the pre-policy pipeline.
    const qos::ResolutionPolicy* policy = nullptr;
    SemanticCache::Options cache;
  };

  SemanticClient(const Options& options, const geometry::Box2& space,
                 const server::Server* server, net::SimulatedLink* link);

  SemanticFrameReport Step(const geometry::Vec2& position, double speed);

  int64_t total_bytes() const { return total_bytes_; }
  double total_response_seconds() const { return total_response_seconds_; }
  int64_t frames() const { return frames_; }

 private:
  Options options_;
  qos::StaticResolutionPolicy owned_policy_;
  const qos::ResolutionPolicy* policy_;  // options_.policy or &owned_policy_
  Viewport viewport_;
  const server::Server* server_;
  net::SimulatedLink* link_;
  SemanticCache cache_;
  server::ClientSession session_;

  int64_t total_bytes_ = 0;
  double total_response_seconds_ = 0.0;
  int64_t frames_ = 0;
};

}  // namespace mars::client

#endif  // MARS_CLIENT_SEMANTIC_CLIENT_H_
