#ifndef MARS_CLIENT_SEMANTIC_CACHE_H_
#define MARS_CLIENT_SEMANTIC_CACHE_H_

#include <cstdint>
#include <list>
#include <vector>

#include "geometry/box.h"
#include "server/server.h"

namespace mars::client {

// Semantic cache over (region × resolution band) descriptions — the
// location-dependent caching style of Zheng & Lee (paper reference [8]),
// provided as an alternative to the block-granular buffer. Instead of
// fixed grid blocks, the cache remembers exactly which *query semantics*
// it has answered: each entry says "I hold every coefficient whose support
// intersects `region` with w in [w_min, 1]".
//
// A new query Q(R, w_min) is trimmed against the cache: the parts of R
// already covered at a sufficient resolution are answered locally, and
// only the *remainder* sub-queries (new rectangles, or resolution-upgrade
// bands over covered rectangles) go to the server. This is Algorithm 1
// generalized from one previous frame to the whole cached history.
class SemanticCache {
 public:
  struct Options {
    // Bound on the number of cached semantic regions; the least recently
    // used entries are dropped beyond it (their data is discarded).
    int32_t max_entries = 64;
  };

  SemanticCache();  // default options
  explicit SemanticCache(Options options);

  // Plans the server sub-queries needed to answer Q(window, w_min, 1.0)
  // given the cached semantics, and installs the query's semantics into
  // the cache (assuming the caller executes the plan). The returned
  // sub-queries are disjoint from cached coverage up to resolution bands.
  std::vector<server::SubQuery> PlanAndInsert(const geometry::Box2& window,
                                              double w_min);

  // Fraction of the latest query's area that was answered locally,
  // weighted by band width (1 = fully cached).
  double last_coverage() const { return last_coverage_; }

  size_t entry_count() const { return entries_.size(); }

  // Total area-band volume currently described by the cache.
  double CoverageVolume() const;

 private:
  struct Entry {
    geometry::Box2 region;
    double w_min = 0.0;  // holds band [w_min, 1] over region
  };

  Options options_;
  // Most recently used first.
  std::list<Entry> entries_;
  double last_coverage_ = 0.0;
};

}  // namespace mars::client

#endif  // MARS_CLIENT_SEMANTIC_CACHE_H_
