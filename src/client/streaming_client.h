#ifndef MARS_CLIENT_STREAMING_CLIENT_H_
#define MARS_CLIENT_STREAMING_CLIENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "client/speed_map.h"
#include "common/status.h"
#include "index/record.h"
#include "client/viewport.h"
#include "geometry/box.h"
#include "geometry/vec.h"
#include "net/link.h"
#include "net/reliable_channel.h"
#include "server/server.h"

namespace mars::client {

// Per-frame outcome of a retrieval step.
struct StreamingFrameReport {
  int64_t sub_queries = 0;
  int64_t new_records = 0;
  int64_t request_bytes = 0;
  int64_t response_bytes = 0;
  int64_t node_accesses = 0;
  double response_seconds = 0.0;
  // Transport outcome of the frame's exchange: OK when delivered (or no
  // exchange was needed); non-OK when the retry budget or deadline was
  // exhausted — the frame then installed nothing and the server rolled
  // the tentative delivery back.
  common::Status status;
  // Lost attempts retried within this frame's exchange.
  int64_t retries = 0;
  // Ids of the records delivered this frame (the client's store grows by
  // exactly these).
  std::vector<index::RecordId> records;
};

// The motion-aware *retrieval* client of paper Sec. IV in isolation: pure
// incremental continuous retrieval via Algorithm 1, with an unbounded local
// store (the server session filters anything already delivered). No
// buffering or prefetching — this isolates the multiresolution retrieval
// effect for the Fig. 8/9 experiments and the index I/O studies.
//
// Exchanges run through a ReliableChannel: bounded retries, backoff, and
// a per-exchange deadline. A failed exchange installs nothing, rolls the
// server's pending delivery back, and leaves the incremental-planning
// state at the last *successful* frame, so the next frame's plan
// re-covers whatever was lost (reconnect reconciliation). Delivered
// records are committed server-side by the ack piggybacked on the next
// request.
class StreamingClient {
 public:
  struct Options {
    double query_fraction = 0.1;  // window side as a fraction of the space
    SpeedResolutionMap speed_map;
    // External QoS policy owning the speed → w_min decision (not owned;
    // must outlive the client). Null — the default — wraps `speed_map` in
    // a static policy, which is bit-identical to the pre-policy pipeline.
    const qos::ResolutionPolicy* policy = nullptr;
    // Transport retry policy (pay-for-what-you-use on a clean link).
    net::ReliableChannel::Options channel;
  };

  // `server` and `link` must outlive the client. `session` optionally
  // points at an external (e.g. server-side SessionTable-resident)
  // session this client exchanges against; when null the client keeps a
  // private one. An external session must outlive the client and must not
  // be shared with another client — it carries this client's
  // duplicate-filter state.
  StreamingClient(const Options& options, const geometry::Box2& space,
                  const server::Server* server, net::SimulatedLink* link,
                  server::ClientSession* session = nullptr);

  // Advances one query frame: the client is at `position` moving at
  // normalized `speed`; plans Algorithm-1 sub-queries against the previous
  // frame and executes them as one exchange.
  StreamingFrameReport Step(const geometry::Vec2& position, double speed);

  // Acks any still-pending delivery (normally piggybacked on the next
  // request). Call at end of run to quiesce the session so that the
  // server's committed state matches the client's store.
  void FlushAck();

  // Backpressure signal from the cell's admission controller: the next
  // exchange waits `retry_after_seconds` before its first attempt (the
  // wait is excluded from the exchange's deadline budget). A client that
  // never receives this behaves exactly as before.
  void OnBackpressure(double retry_after_seconds);
  int64_t backpressure_frames() const { return backpressure_frames_; }

  // Coalesced-delivery notification from the serving cell: `records` of
  // the latest frame's response arrive as a single shared copy riding
  // another client's transfer (server inflight table), saving `bytes` on
  // the medium. The payload itself is identical — this is accounting for
  // the delivery path only.
  void OnSharedDelivery(int64_t records, int64_t bytes) {
    shared_delivery_records_ += records;
    shared_delivery_bytes_ += bytes;
  }
  int64_t shared_delivery_records() const {
    return shared_delivery_records_;
  }
  int64_t shared_delivery_bytes() const { return shared_delivery_bytes_; }

  // Cumulative totals.
  int64_t total_bytes() const { return total_bytes_; }
  int64_t total_records() const { return total_records_; }
  double total_response_seconds() const { return total_response_seconds_; }
  int64_t frames() const { return frames_; }
  int64_t total_retries() const { return channel_.total_retries(); }
  int64_t total_failures() const { return channel_.total_failures(); }
  const server::ClientSession& session() const { return *session_; }

 private:
  Options options_;
  qos::StaticResolutionPolicy owned_policy_;
  const qos::ResolutionPolicy* policy_;  // options_.policy or &owned_policy_
  Viewport viewport_;
  const server::Server* server_;
  net::SimulatedLink* link_;
  net::ReliableChannel channel_;
  server::ClientSession owned_session_;
  server::ClientSession* session_;  // owned_session_ or the external one

  // True when the previous frame's delivery still awaits its piggybacked
  // ack (committed at the start of the next exchange-bearing step).
  bool ack_outstanding_ = false;

  std::optional<geometry::Box2> prev_window_;
  double prev_w_min_ = 2.0;  // "no previous resolution"

  int64_t total_bytes_ = 0;
  int64_t total_records_ = 0;
  double total_response_seconds_ = 0.0;
  int64_t frames_ = 0;
  int64_t backpressure_frames_ = 0;
  int64_t shared_delivery_records_ = 0;
  int64_t shared_delivery_bytes_ = 0;
};

}  // namespace mars::client

#endif  // MARS_CLIENT_STREAMING_CLIENT_H_
