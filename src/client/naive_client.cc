#include "client/naive_client.h"

#include "common/logging.h"

namespace mars::client {

NaiveObjectClient::NaiveObjectClient(const Options& options,
                                     const geometry::Box2& space,
                                     const server::Server* server,
                                     net::SimulatedLink* link)
    : options_(options),
      viewport_(space, options.query_fraction, options.query_fraction),
      server_(server),
      link_(link),
      cache_(options.cache_bytes) {
  MARS_CHECK(server != nullptr);
  MARS_CHECK(link != nullptr);
}

void NaiveObjectClient::OnBackpressure(double /*retry_after_seconds*/) {
  next_window_scale_ = 0.5;
  ++backpressure_frames_;
}

NaiveFrameReport NaiveObjectClient::Step(const geometry::Vec2& position,
                                         double speed) {
  NaiveFrameReport report;
  const double scale = next_window_scale_;
  next_window_scale_ = 1.0;
  const geometry::Box2 window = geometry::Box2FromCenter(
      position, viewport_.width() * scale, viewport_.height() * scale);

  const server::Server::ObjectListing listing = server_->ListObjects(window);
  report.node_accesses = listing.node_accesses;
  report.objects_needed = static_cast<int64_t>(listing.objects.size());

  int64_t fetch_bytes = server::Server::kResponseHeaderBytes;
  int64_t fetched = 0;
  for (int32_t obj : listing.objects) {
    ++object_lookups_;
    if (cache_.Touch(obj)) {
      ++object_hits_;
      continue;
    }
    const int64_t bytes = server_->db().ObjectFullBytes(obj);
    fetch_bytes += bytes;
    ++fetched;
    cache_.Put(obj, bytes);
  }
  report.objects_fetched = fetched;

  if (fetched > 0) {
    report.bytes = fetch_bytes;
    report.response_seconds = link_->Exchange(
        server::Server::kRequestHeaderBytes + server::Server::kSubQueryBytes,
        fetch_bytes, speed);
  }

  total_bytes_ += report.bytes;
  total_response_seconds_ += report.response_seconds;
  ++frames_;
  return report;
}

double NaiveObjectClient::CacheHitRate() const {
  return object_lookups_ == 0
             ? 0.0
             : static_cast<double>(object_hits_) / object_lookups_;
}

}  // namespace mars::client
