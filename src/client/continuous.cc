#include "client/continuous.h"

#include "geometry/rect_diff.h"

namespace mars::client {

std::vector<server::SubQuery> PlanContinuousRetrieval(
    const geometry::Box2& q_t, double w_min_t,
    const std::optional<geometry::Box2>& q_prev, double w_min_prev) {
  std::vector<server::SubQuery> plan;

  // First frame, or no overlap with the previous frame: fetch the whole
  // window at the required resolution (Algorithm 1, line 1.10).
  if (!q_prev.has_value() || !q_t.Intersects(*q_prev)) {
    plan.push_back(server::SubQuery{q_t, w_min_t, 1.0});
    return plan;
  }

  // Line 1.5: finer resolution than before? Then the overlap region needs
  // the extra detail band (line 1.6).
  if (w_min_t < w_min_prev) {
    const geometry::Box2 overlap = q_t.Intersection(*q_prev);
    plan.push_back(server::SubQuery{overlap, w_min_t, w_min_prev});
  }

  // The newly exposed region N_t = Q_t − Q_{t−1}, at full band (lines
  // 1.6/1.8), split into disjoint rectangles executed separately.
  for (const geometry::Box2& piece : geometry::Difference(q_t, *q_prev)) {
    plan.push_back(server::SubQuery{piece, w_min_t, 1.0});
  }
  return plan;
}

}  // namespace mars::client
