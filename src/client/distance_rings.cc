#include "client/distance_rings.h"

#include <algorithm>

#include "common/logging.h"
#include "geometry/rect_diff.h"

namespace mars::client {

std::vector<server::SubQuery> PlanDistanceRings(
    const geometry::Box2& window, const geometry::Vec2& position,
    double base_w_min, const DistanceRingOptions& options) {
  MARS_CHECK_GE(options.rings, 1);
  MARS_CHECK_GT(options.falloff, 0.0);
  MARS_CHECK_LE(options.falloff, 1.0);

  std::vector<server::SubQuery> plan;
  if (window.IsEmpty()) return plan;
  if (options.rings == 1) {
    plan.push_back(server::SubQuery{window, base_w_min, 1.0});
    return plan;
  }

  // Nested boxes shrinking towards the client: ring i spans the annulus
  // between shell i and shell i+1 (shell 0 = full window).
  const double half_w = window.Extent(0) / 2.0;
  const double half_h = window.Extent(1) / 2.0;
  auto shell = [&](int32_t i) {
    if (i == 0) return window;  // the outermost shell covers everything
    const double t =
        1.0 - static_cast<double>(i) / static_cast<double>(options.rings);
    return geometry::Box2FromCenter(position, 2.0 * half_w * t,
                                    2.0 * half_h * t)
        .Intersection(window);
  };

  // Ring i's band: innermost keeps the base resolution, outer rings lift
  // w_min towards 1 geometrically.
  auto ring_w_min = [&](int32_t ring_from_center) {
    const double lifted =
        1.0 - (1.0 - base_w_min) *
                  std::pow(options.falloff,
                           static_cast<double>(ring_from_center));
    return std::clamp(lifted, base_w_min, 1.0);
  };

  // Innermost box.
  const geometry::Box2 inner = shell(options.rings - 1);
  if (!inner.IsEmpty()) {
    plan.push_back(server::SubQuery{inner, ring_w_min(0), 1.0});
  }
  // Annuli outward.
  for (int32_t i = options.rings - 1; i >= 1; --i) {
    const geometry::Box2 outer_box = shell(i - 1);
    const geometry::Box2 inner_box = shell(i);
    const double w = ring_w_min(options.rings - i);
    for (const geometry::Box2& piece :
         geometry::Difference(outer_box, inner_box)) {
      plan.push_back(server::SubQuery{piece, w, 1.0});
    }
  }
  return plan;
}

}  // namespace mars::client
