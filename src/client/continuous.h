#ifndef MARS_CLIENT_CONTINUOUS_H_
#define MARS_CLIENT_CONTINUOUS_H_

#include <optional>
#include <vector>

#include "geometry/box.h"
#include "server/server.h"

namespace mars::client {

// Algorithm 1 of the paper (ContinuousDataRetrieval), translated to the
// coefficient-value convention used throughout MARS: a *finer* resolution
// is a *smaller* w_min, so "r_t > r_{t−1}" in the paper reads
// "w_min_t < w_min_prev" here.
//
// Given the current query frame q_t (with required band lower bound
// w_min_t) and the previous frame (absent on the first query), produces
// the sub-queries to send:
//  - no overlap:                      (Q_t,          w_min_t, 1.0)
//  - overlap, finer than before:      (O_t,          w_min_t, w_prev) +
//                                     (N_t pieces,   w_min_t, 1.0)
//  - overlap, same or coarser:        (N_t pieces,   w_min_t, 1.0)
// where O_t = Q_t ∩ Q_{t−1} and N_t = Q_t − Q_{t−1} decomposed into
// disjoint rectangles (the paper's server-side split along the axes).
//
// The overlap band's upper bound is inclusive of w_prev; records exactly
// at w_prev were already delivered and are dropped by the server's session
// filter.
std::vector<server::SubQuery> PlanContinuousRetrieval(
    const geometry::Box2& q_t, double w_min_t,
    const std::optional<geometry::Box2>& q_prev, double w_min_prev);

}  // namespace mars::client

#endif  // MARS_CLIENT_CONTINUOUS_H_
