#ifndef MARS_CLIENT_BUFFERED_CLIENT_H_
#define MARS_CLIENT_BUFFERED_CLIENT_H_

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "buffer/block_buffer.h"
#include "buffer/prefetcher.h"
#include "client/speed_map.h"
#include "client/viewport.h"
#include "common/rng.h"
#include "geometry/box.h"
#include "geometry/grid.h"
#include "geometry/vec.h"
#include "motion/kalman.h"
#include "motion/predictor.h"
#include "net/link.h"
#include "net/reliable_channel.h"
#include "server/server.h"

namespace mars::client {

// Per-frame outcome of the buffered client.
struct BufferedFrameReport {
  int64_t blocks_needed = 0;
  int64_t block_hits = 0;
  int64_t demand_bytes = 0;
  int64_t prefetch_bytes = 0;
  double response_seconds = 0.0;
  int64_t node_accesses = 0;
  // Fault-tolerance telemetry.
  int64_t retries = 0;        // lost attempts retried this frame
  int64_t timeouts = 0;       // exchanges that failed this frame
  bool outage = false;        // a demand fetch failed: frame ran degraded
  // In-view blocks rendered from coarser-than-needed (or absent) data
  // because their fetch failed; the client keeps rendering resident
  // coarse resolution instead of stalling.
  int64_t stale_blocks = 0;
  // Records delivered this frame (demand + prefetch exchanges that
  // succeeded). The fleet engine feeds these to the server's shared
  // hot-encoding cache.
  std::vector<index::RecordId> records;
};

// The full motion-aware system client (paper Secs. IV + V): the data space
// is divided into grid blocks; the view's blocks are served from a limited
// local buffer when possible (a *cache hit*), fetched incrementally in
// resolution bands otherwise (the block-granular generalization of
// Algorithm 1 — a block held at a coarser resolution is upgraded by
// fetching only the missing band), and a motion-aware prefetcher keeps the
// most probable future blocks resident. Prefetch exchanges consume link
// bandwidth but overlap idle time, so they do not add to the per-frame
// response time.
//
// Degraded operation: exchanges run through a ReliableChannel (bounded
// retries + backoff + deadline). When a demand fetch fails — an outage —
// the frame renders whatever resolution is resident (coarse blocks stay
// usable; that is the point of the multiresolution buffer), the missing
// blocks remain missing so the next frame re-requests them (the demand
// queue is implicit in the residency test), and prefetching is suspended
// to save the link budget until an exchange succeeds again.
class BufferedClient {
 public:
  struct Options {
    double query_fraction = 0.1;
    SpeedResolutionMap speed_map;
    // External QoS policy owning the speed → w_min decision (not owned;
    // must outlive the client). Null — the default — wraps `speed_map` in
    // a static policy, which is bit-identical to the pre-policy pipeline.
    const qos::ResolutionPolicy* policy = nullptr;
    int64_t buffer_bytes = 64 * 1024;
    // Grid granularity: with the default 10 km space this gives 250 m
    // blocks, so a 10% query frame covers a handful of blocks — the
    // coarse-block regime of the paper's buffer cost model.
    int32_t grid_nx = 40;
    int32_t grid_ny = 40;
    bool enable_prefetch = true;
    // false → the naive uniform-ring prefetcher of the Sec. VII-C
    // comparisons.
    bool motion_aware = true;
    // Prefetch resolution follows the current speed (the motion-aware
    // multiresolution buffering strategy); false prefetches full detail.
    bool multires_prefetch = true;
    // Resolution headroom: blocks are fetched (demand and prefetch) at
    // w_min = needed × this factor, so small speed fluctuations between
    // fetch time and later lookups still hit the buffer.
    double resolution_headroom = 0.75;
    buffer::MotionAwarePrefetcher::Options prefetch;
    // Cap on prefetch block fetches per frame (background bandwidth).
    int32_t max_prefetch_fetches_per_frame = 16;
    // Motion model driving the prefetcher: the paper's RLS-learned state
    // transition, or a constant-velocity Kalman filter.
    enum class Predictor { kRls, kKalman };
    Predictor predictor = Predictor::kRls;
    // Per-frame decay of resident block priorities.
    double priority_decay = 0.85;
    // Frames at the start of a run whose lookups are not counted in the
    // hit/miss statistics (cold-start exclusion; the buffer is empty by
    // definition on the first frame).
    int32_t warmup_frames = 1;
    // A resident block is considered fine enough for a prefetch request
    // at w if held <= w * (1 + tolerance) + small slack; avoids endless
    // micro-band refetches as the speed jitters.
    double refetch_tolerance = 0.15;
    uint64_t seed = 1;
    // Transport retry policy (pay-for-what-you-use on a clean link).
    net::ReliableChannel::Options channel;
  };

  BufferedClient(const Options& options, const geometry::Box2& space,
                 const server::Server* server, net::SimulatedLink* link);

  BufferedFrameReport Step(const geometry::Vec2& position, double speed);

  // Backpressure signal from the cell's admission controller: the next
  // exchange waits `retry_after_seconds` before its first attempt, and
  // the next frame's speculative prefetch is suppressed so the client
  // sheds load where it hurts least. No-op for clients that never
  // receive it.
  void OnBackpressure(double retry_after_seconds);
  int64_t backpressure_frames() const { return backpressure_frames_; }

  // Coalesced-delivery notification from the serving cell: `records` of
  // the latest frame's exchanges arrive as a single shared copy riding
  // another client's transfer (server inflight table), saving `bytes` on
  // the medium. The payload itself is identical — this is accounting for
  // the delivery path only.
  void OnSharedDelivery(int64_t records, int64_t bytes) {
    shared_delivery_records_ += records;
    shared_delivery_bytes_ += bytes;
  }
  int64_t shared_delivery_records() const {
    return shared_delivery_records_;
  }
  int64_t shared_delivery_bytes() const { return shared_delivery_bytes_; }

  const buffer::BlockBufferStats& buffer_stats() const {
    return buffer_.stats();
  }
  int64_t total_demand_bytes() const { return total_demand_bytes_; }
  int64_t total_prefetch_bytes() const { return total_prefetch_bytes_; }
  double total_response_seconds() const { return total_response_seconds_; }
  int64_t frames() const { return frames_; }
  const geometry::GridPartition& grid() const { return grid_; }
  // Fault-tolerance totals.
  int64_t total_retries() const { return channel_.total_retries(); }
  int64_t total_timeouts() const { return channel_.total_failures(); }
  int64_t outage_frames() const { return outage_frames_; }
  int64_t stale_frames() const { return stale_frames_; }
  // Worst-case staleness: longest run of consecutive degraded frames.
  int64_t max_stale_run_frames() const { return max_stale_run_frames_; }

 private:
  // Upper bound of the band still missing for a block currently held down
  // to `held` (2.0 when the block holds nothing yet).
  static double BandUpTo(double held);

  // Executes block-granular sub-queries as one reliable exchange and
  // installs results on success; on failure nothing is installed.
  struct ExchangeTotals {
    int64_t request_bytes = 0;
    int64_t response_bytes = 0;
    int64_t node_accesses = 0;
    double seconds = 0.0;
    int64_t retries = 0;
    bool ok = true;
    std::vector<index::RecordId> records;  // delivered (empty on failure)
  };
  ExchangeTotals FetchBlocks(const std::vector<int64_t>& blocks,
                             const std::vector<double>& w_mins,
                             const std::vector<double>& priorities,
                             double speed, bool is_prefetch);

  Options options_;
  qos::StaticResolutionPolicy owned_policy_;
  const qos::ResolutionPolicy* policy_;  // options_.policy or &owned_policy_
  Viewport viewport_;
  geometry::GridPartition grid_;
  const server::Server* server_;
  net::SimulatedLink* link_;
  net::ReliableChannel channel_;
  buffer::BlockBuffer buffer_;
  std::unique_ptr<motion::PositionPredictor> predictor_;
  buffer::MotionAwarePrefetcher motion_prefetcher_;
  buffer::NaivePrefetcher naive_prefetcher_;
  common::Rng rng_;

  // Blocks the previous frame's window covered (for the paper's
  // new-region hit/miss accounting).
  std::unordered_set<int64_t> prev_in_view_;

  // Running average block payload, for sizing the prefetch block budget.
  double avg_block_bytes_ = 2048.0;
  int64_t fetched_blocks_ = 0;

  int64_t total_demand_bytes_ = 0;
  int64_t total_prefetch_bytes_ = 0;
  double total_response_seconds_ = 0.0;
  int64_t frames_ = 0;

  // Backpressure: skip the next frame's prefetch after the cell asked us
  // to back off.
  bool suppress_prefetch_once_ = false;
  int64_t backpressure_frames_ = 0;
  int64_t shared_delivery_records_ = 0;
  int64_t shared_delivery_bytes_ = 0;

  // Degraded-operation accounting.
  int64_t outage_frames_ = 0;
  int64_t stale_frames_ = 0;
  int64_t stale_run_frames_ = 0;
  int64_t max_stale_run_frames_ = 0;
};

}  // namespace mars::client

#endif  // MARS_CLIENT_BUFFERED_CLIENT_H_
