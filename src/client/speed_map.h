#ifndef MARS_CLIENT_SPEED_MAP_H_
#define MARS_CLIENT_SPEED_MAP_H_

// The speed → w_min mapping moved into the QoS policy layer
// (qos/resolution_policy.h) when the resolution pipeline grew adaptive
// policies; this forwarding alias keeps the historical client-side name
// working for existing call sites and tests.
#include "qos/resolution_policy.h"

namespace mars::client {

using SpeedResolutionMap = qos::SpeedResolutionMap;

}  // namespace mars::client

#endif  // MARS_CLIENT_SPEED_MAP_H_
