#ifndef MARS_CLIENT_SPEED_MAP_H_
#define MARS_CLIENT_SPEED_MAP_H_

#include <algorithm>
#include <cmath>

namespace mars::client {

// MapSpeedToResolution (paper Sec. IV / Algorithm 1, line 1.3): converts
// the client's normalized speed into the band of coefficient values to
// retrieve. The default is the paper's experimental convention
// (Sec. VII-A): speed is "inversely proportional to the value of the
// wavelet coefficients retrieved", i.e. w_min = speed — a client at speed
// 0.5 retrieves coefficients with w ∈ [0.5, 1.0]; at speed ≈ 0 it
// retrieves everything.
//
// The function is "application dependent and ... should be adjusted by the
// vendor"; `exponent` and `floor` are the QoS tuning knobs (exponent < 1
// keeps more detail at moderate speeds; floor > 0 caps the finest
// resolution ever requested, e.g. for small displays).
class SpeedResolutionMap {
 public:
  SpeedResolutionMap() = default;
  SpeedResolutionMap(double exponent, double floor)
      : exponent_(exponent), floor_(floor) {}

  // Returns w_min for a normalized speed in [0, 1].
  double MapSpeedToResolution(double speed) const {
    const double s = std::clamp(speed, 0.0, 1.0);
    return std::clamp(floor_ + (1.0 - floor_) * std::pow(s, exponent_),
                      0.0, 1.0);
  }

  double exponent() const { return exponent_; }
  double floor() const { return floor_; }

 private:
  double exponent_ = 1.0;
  double floor_ = 0.0;
};

}  // namespace mars::client

#endif  // MARS_CLIENT_SPEED_MAP_H_
