#ifndef MARS_CLIENT_NAIVE_CLIENT_H_
#define MARS_CLIENT_NAIVE_CLIENT_H_

#include <cstdint>
#include <unordered_set>

#include "buffer/lru_cache.h"
#include "client/viewport.h"
#include "geometry/box.h"
#include "geometry/vec.h"
#include "net/link.h"
#include "server/server.h"

namespace mars::client {

struct NaiveFrameReport {
  int64_t objects_needed = 0;
  int64_t objects_fetched = 0;
  int64_t bytes = 0;
  double response_seconds = 0.0;
  int64_t node_accesses = 0;
};

// The fully naive baseline system of paper Sec. VII-E: "we always retrieve
// objects with the highest resolution and we use an R*-tree to index
// objects without using multiple resolutions. We also use a simple Least
// Recently Used (LRU) scheme for caching." No motion model, no wavelets,
// no prefetching.
class NaiveObjectClient {
 public:
  struct Options {
    double query_fraction = 0.1;
    int64_t cache_bytes = 64 * 1024;
  };

  NaiveObjectClient(const Options& options, const geometry::Box2& space,
                    const server::Server* server, net::SimulatedLink* link);

  NaiveFrameReport Step(const geometry::Vec2& position, double speed);

  // Backpressure signal from the cell's admission controller. The naive
  // client has no transport-level deferral (it talks to the raw link), so
  // it adapts the only knob it has: the next frame's window is halved,
  // which roughly halves the full-resolution bytes it demands. No-op for
  // clients that never receive it.
  void OnBackpressure(double retry_after_seconds);
  int64_t backpressure_frames() const { return backpressure_frames_; }

  int64_t total_bytes() const { return total_bytes_; }
  double total_response_seconds() const { return total_response_seconds_; }
  int64_t frames() const { return frames_; }
  double CacheHitRate() const;

 private:
  Options options_;
  Viewport viewport_;
  const server::Server* server_;
  net::SimulatedLink* link_;
  buffer::LruCache<int32_t> cache_;

  // Scale applied to the next frame's window after backpressure (1.0
  // otherwise).
  double next_window_scale_ = 1.0;
  int64_t backpressure_frames_ = 0;

  int64_t object_lookups_ = 0;
  int64_t object_hits_ = 0;
  int64_t total_bytes_ = 0;
  double total_response_seconds_ = 0.0;
  int64_t frames_ = 0;
};

}  // namespace mars::client

#endif  // MARS_CLIENT_NAIVE_CLIENT_H_
