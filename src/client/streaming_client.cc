#include "client/streaming_client.h"

#include "client/continuous.h"
#include "common/logging.h"

namespace mars::client {

StreamingClient::StreamingClient(const Options& options,
                                 const geometry::Box2& space,
                                 const server::Server* server,
                                 net::SimulatedLink* link,
                                 server::ClientSession* session)
    : options_(options),
      owned_policy_(options.speed_map),
      policy_(options.policy != nullptr ? options.policy : &owned_policy_),
      viewport_(space, options.query_fraction, options.query_fraction),
      server_(server),
      link_(link),
      channel_(link, options.channel),
      session_(session != nullptr ? session : &owned_session_) {
  MARS_CHECK(server != nullptr);
  MARS_CHECK(link != nullptr);
}

void StreamingClient::OnBackpressure(double retry_after_seconds) {
  channel_.Defer(retry_after_seconds);
  ++backpressure_frames_;
}

void StreamingClient::FlushAck() {
  if (ack_outstanding_) {
    server::AckPending(session_);
    ack_outstanding_ = false;
  }
}

StreamingFrameReport StreamingClient::Step(const geometry::Vec2& position,
                                           double speed) {
  StreamingFrameReport report;
  const geometry::Box2 window = viewport_.WindowAt(position);
  const double w_min = policy_->MapSpeedToResolution(speed);

  // This request carries the ack for the previous frame's delivery.
  FlushAck();

  const std::vector<server::SubQuery> plan = PlanContinuousRetrieval(
      window, w_min,
      prev_window_.has_value() ? prev_window_ : std::nullopt, prev_w_min_);
  report.sub_queries = static_cast<int64_t>(plan.size());

  const server::QueryResult result = server_->Execute(plan, session_);
  report.node_accesses = result.node_accesses;

  const net::ReliableChannel::Result net = channel_.Exchange(
      result.request_bytes, result.response_bytes, speed);
  report.status = net.status;
  report.retries = net.retries;
  report.response_seconds = net.seconds;

  if (net.status.ok()) {
    // Delivered: install, and leave the batch pending until the next
    // request acks it.
    report.new_records = static_cast<int64_t>(result.records.size());
    report.records = result.records;
    report.request_bytes = result.request_bytes;
    report.response_bytes = result.response_bytes;
    ack_outstanding_ = true;
    // Incremental planning proceeds from this frame.
    prev_window_ = window;
    prev_w_min_ = w_min;
    total_bytes_ += result.response_bytes;
    total_records_ += report.new_records;
  } else {
    // Lost despite the retry budget: nothing was installed. Roll the
    // tentative delivery back so the records are re-sent when next
    // queried, and keep planning against the last successful frame — on
    // reconnect the plan re-covers the lost region.
    server::RollbackPending(session_);
  }

  total_response_seconds_ += report.response_seconds;
  ++frames_;
  return report;
}

}  // namespace mars::client
