#include "client/streaming_client.h"

#include "client/continuous.h"
#include "common/logging.h"

namespace mars::client {

StreamingClient::StreamingClient(const Options& options,
                                 const geometry::Box2& space,
                                 const server::Server* server,
                                 net::SimulatedLink* link)
    : options_(options),
      viewport_(space, options.query_fraction, options.query_fraction),
      server_(server),
      link_(link) {
  MARS_CHECK(server != nullptr);
  MARS_CHECK(link != nullptr);
}

StreamingFrameReport StreamingClient::Step(const geometry::Vec2& position,
                                           double speed) {
  StreamingFrameReport report;
  const geometry::Box2 window = viewport_.WindowAt(position);
  const double w_min = options_.speed_map.MapSpeedToResolution(speed);

  const std::vector<server::SubQuery> plan = PlanContinuousRetrieval(
      window, w_min,
      prev_window_.has_value() ? prev_window_ : std::nullopt, prev_w_min_);
  report.sub_queries = static_cast<int64_t>(plan.size());

  const server::QueryResult result = server_->Execute(plan, &session_);
  report.new_records = static_cast<int64_t>(result.records.size());
  report.records = result.records;
  report.request_bytes = result.request_bytes;
  report.response_bytes = result.response_bytes;
  report.node_accesses = result.node_accesses;
  report.response_seconds =
      link_->Exchange(result.request_bytes, result.response_bytes, speed);

  prev_window_ = window;
  prev_w_min_ = w_min;
  total_bytes_ += result.response_bytes;
  total_records_ += report.new_records;
  total_response_seconds_ += report.response_seconds;
  ++frames_;
  return report;
}

}  // namespace mars::client
