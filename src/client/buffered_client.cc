#include "client/buffered_client.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace mars::client {

namespace {
// Records exactly at the held band's lower edge were already delivered;
// shave the reissued band's top to avoid re-fetching them.
constexpr double kBandEpsilon = 1e-9;
}  // namespace

BufferedClient::BufferedClient(const Options& options,
                               const geometry::Box2& space,
                               const server::Server* server,
                               net::SimulatedLink* link)
    : options_(options),
      owned_policy_(options.speed_map),
      policy_(options.policy != nullptr ? options.policy : &owned_policy_),
      viewport_(space, options.query_fraction, options.query_fraction),
      grid_(space, options.grid_nx, options.grid_ny),
      server_(server),
      link_(link),
      channel_(link, options.channel),
      buffer_(options.buffer_bytes),
      predictor_(options.predictor == Options::Predictor::kKalman
                     ? std::unique_ptr<motion::PositionPredictor>(
                           std::make_unique<motion::KalmanFilterPredictor>())
                     : std::make_unique<motion::MotionPredictor>()),
      motion_prefetcher_([&options, &space]() {
        // Predict where the *query frame* will be, not just the client
        // point (paper Fig. 4(a)).
        buffer::MotionAwarePrefetcher::Options prefetch = options.prefetch;
        prefetch.probability.frame_half_width =
            space.Extent(0) * options.query_fraction / 2.0;
        prefetch.probability.frame_half_height =
            space.Extent(1) * options.query_fraction / 2.0;
        return prefetch;
      }()),
      naive_prefetcher_(),
      rng_(options.seed) {
  MARS_CHECK(server != nullptr);
  MARS_CHECK(link != nullptr);
}

double BufferedClient::BandUpTo(double held) {
  if (held > 1.0) return 1.0;  // nothing held: full band
  return std::max(0.0, held - kBandEpsilon);
}

BufferedClient::ExchangeTotals BufferedClient::FetchBlocks(
    const std::vector<int64_t>& blocks, const std::vector<double>& w_mins,
    const std::vector<double>& priorities, double speed, bool is_prefetch) {
  ExchangeTotals totals;
  if (blocks.empty()) return totals;

  std::vector<server::SubQuery> queries;
  queries.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    const double held = buffer_.HeldWMin(blocks[i]);
    queries.push_back(server::SubQuery{grid_.BlockBox(blocks[i]), w_mins[i],
                                       BandUpTo(held)});
  }
  // Block caching keeps no long-lived record session: duplicates are only
  // filtered within one exchange (coefficients straddling block borders
  // are intentionally stored with each block).
  server::ClientSession transient;
  const server::QueryResult result = server_->Execute(queries, &transient);
  totals.request_bytes = result.request_bytes;
  totals.response_bytes = result.response_bytes;
  totals.node_accesses = result.node_accesses;

  const net::ReliableChannel::Result net = channel_.Exchange(
      result.request_bytes, result.response_bytes, speed);
  totals.seconds = net.seconds;
  totals.retries = net.retries;
  totals.ok = net.status.ok();
  if (!totals.ok) {
    // The response was lost: install nothing. The blocks stay at their
    // resident (possibly coarser) resolution, so the client keeps
    // rendering and re-requests them next frame. The transient session
    // dies here, so there is no server-side state to roll back.
    totals.response_bytes = 0;
    return totals;
  }
  totals.records = result.records;

  for (size_t i = 0; i < blocks.size(); ++i) {
    const int64_t bytes = result.per_query_bytes[i];
    if (is_prefetch) {
      buffer_.InsertPrefetch(blocks[i], w_mins[i], bytes, priorities[i]);
    } else {
      buffer_.InsertDemand(blocks[i], w_mins[i], bytes, priorities[i]);
    }
    avg_block_bytes_ =
        (avg_block_bytes_ * fetched_blocks_ + static_cast<double>(bytes)) /
        static_cast<double>(fetched_blocks_ + 1);
    ++fetched_blocks_;
  }
  return totals;
}

void BufferedClient::OnBackpressure(double retry_after_seconds) {
  channel_.Defer(retry_after_seconds);
  suppress_prefetch_once_ = true;
  ++backpressure_frames_;
}

BufferedFrameReport BufferedClient::Step(const geometry::Vec2& position,
                                         double speed) {
  BufferedFrameReport report;
  predictor_->Observe(position);
  const double w_t = policy_->MapSpeedToResolution(speed);
  const geometry::Box2 window = viewport_.WindowAt(position);

  // Serve the view from the buffer; collect the missing blocks. Hit/miss
  // statistics follow the paper's accounting: counted when the client
  // "visits a new region", i.e. for blocks entering the view this frame
  // and for in-view blocks whose held resolution became insufficient
  // (a slowdown); steady-state re-reads are not counted.
  const std::vector<int64_t> needed = grid_.BlocksIntersecting(window);
  const std::unordered_set<int64_t> in_view(needed.begin(), needed.end());
  report.blocks_needed = static_cast<int64_t>(needed.size());

  // The current view is pinned (display memory); the buffer capacity
  // bounds only the prefetched/cached surroundings, as in the paper's
  // cost model. Blocks that left the view re-enter the capacity-bounded
  // pool.
  for (int64_t block : prev_in_view_) {
    if (!in_view.contains(block)) buffer_.Unpin(block);
  }
  for (int64_t block : needed) {
    buffer_.Pin(block);
  }

  const bool warm = frames_ >= options_.warmup_frames;
  std::vector<int64_t> missing;
  for (int64_t block : needed) {
    const bool frontier = !prev_in_view_.contains(block);
    if (frontier && warm) {
      if (buffer_.Lookup(block, w_t)) {
        ++report.block_hits;
        buffer_.UpdatePriority(block, 1.0);  // in active view: keep
      } else {
        missing.push_back(block);
      }
    } else if (buffer_.Peek(block, w_t)) {
      ++report.block_hits;
      buffer_.UpdatePriority(block, 1.0);
    } else {
      // Resolution upgrade of an in-view block, or a cold-start fill;
      // only the former counts as a miss.
      if (warm) buffer_.Lookup(block, w_t);  // records the miss
      missing.push_back(block);
    }
  }
  prev_in_view_ = in_view;

  // Demand-fetch the missing blocks (one exchange; this is what the user
  // waits for). Fetch slightly finer than needed so the next frames' small
  // speed fluctuations stay buffered.
  const double w_demand = w_t * options_.resolution_headroom;
  bool demand_failed = false;
  if (!missing.empty()) {
    const std::vector<double> w_mins(missing.size(), w_demand);
    const std::vector<double> priorities(missing.size(), 1.0);
    const ExchangeTotals totals = FetchBlocks(missing, w_mins, priorities,
                                              speed, /*is_prefetch=*/false);
    report.demand_bytes = totals.response_bytes;
    report.node_accesses += totals.node_accesses;
    report.response_seconds = totals.seconds;
    report.retries += totals.retries;
    report.records.insert(report.records.end(), totals.records.begin(),
                          totals.records.end());
    if (!totals.ok) {
      // Outage: the frame runs degraded. Whatever resolution is resident
      // keeps rendering (coarse data stays useful — the point of the
      // multiresolution buffer); the still-missing blocks are re-requested
      // next frame because the residency test keeps failing for them.
      demand_failed = true;
      ++report.timeouts;
      report.outage = true;
      report.stale_blocks = static_cast<int64_t>(missing.size());
    }
  }

  // Background prefetch for future frames. Suspended while the link is
  // down (retry budget is better spent on the demand path, and predicted
  // blocks would fail the same way) and for one frame after a
  // backpressure signal (the cell is overloaded; speculative traffic is
  // the first thing to shed).
  buffer_.DecayPriorities(options_.priority_decay);
  const bool prefetch_suppressed = suppress_prefetch_once_;
  suppress_prefetch_once_ = false;
  if (options_.enable_prefetch && !demand_failed && !prefetch_suppressed) {
    const int32_t budget_blocks = std::clamp<int32_t>(
        static_cast<int32_t>(
            static_cast<double>(options_.buffer_bytes) /
            std::max(avg_block_bytes_ +
                         buffer::BlockBuffer::kEntryOverheadBytes,
                     1.0)),
        1, 512);
    const buffer::PrefetchPlan plan =
        options_.motion_aware
            ? motion_prefetcher_.Plan(*predictor_, grid_, position, w_t,
                                      budget_blocks, rng_)
            : naive_prefetcher_.Plan(grid_, position, w_t, budget_blocks);

    std::vector<int64_t> fetch_blocks;
    std::vector<double> fetch_w, fetch_priority;
    for (const buffer::PrefetchPlan::Item& item : plan.items) {
      // Blocks inside the current view are demand territory, not
      // "surrounding regions"; skip them for both prefetchers.
      if (in_view.contains(item.block)) continue;
      const double held = buffer_.HeldWMin(item.block);
      const double want =
          options_.multires_prefetch
              ? item.w_min * options_.resolution_headroom
              : 0.0;
      if (held <= want * (1.0 + options_.refetch_tolerance) + 1e-3) {
        buffer_.UpdatePriority(item.block, item.priority);
        continue;
      }
      if (static_cast<int32_t>(fetch_blocks.size()) >=
          options_.max_prefetch_fetches_per_frame) {
        continue;
      }
      // Skip blocks that would not survive admission. The halved priority
      // demands a clear margin over what would be evicted, so two
      // near-equal prefetch candidates do not evict each other back and
      // forth across frames.
      if (!buffer_.CanAdmit(static_cast<int64_t>(avg_block_bytes_),
                            item.priority * 0.5)) {
        continue;
      }
      fetch_blocks.push_back(item.block);
      fetch_w.push_back(want);
      fetch_priority.push_back(item.priority);
    }
    if (!fetch_blocks.empty()) {
      // Counted on the link, not in the response time: prefetch rides the
      // idle link between frames.
      const ExchangeTotals totals = FetchBlocks(
          fetch_blocks, fetch_w, fetch_priority, speed, /*is_prefetch=*/true);
      report.prefetch_bytes = totals.response_bytes;
      report.node_accesses += totals.node_accesses;
      report.retries += totals.retries;
      report.records.insert(report.records.end(), totals.records.begin(),
                            totals.records.end());
      if (!totals.ok) ++report.timeouts;
    }
  }

  // Degraded-frame accounting: a frame is stale when a demand fetch
  // failed and the view had to render coarser-than-needed data.
  if (report.outage) ++outage_frames_;
  if (demand_failed && report.stale_blocks > 0) {
    ++stale_frames_;
    ++stale_run_frames_;
    max_stale_run_frames_ = std::max(max_stale_run_frames_, stale_run_frames_);
  } else {
    stale_run_frames_ = 0;
  }

  total_demand_bytes_ += report.demand_bytes;
  total_prefetch_bytes_ += report.prefetch_bytes;
  total_response_seconds_ += report.response_seconds;
  ++frames_;
  return report;
}

}  // namespace mars::client
