#ifndef MARS_CLIENT_OBJECT_STORE_H_
#define MARS_CLIENT_OBJECT_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/statusor.h"
#include "index/record.h"
#include "mesh/mesh.h"
#include "server/object_db.h"

namespace mars::client {

// Client-side assembly of received multiresolution data back into
// renderable meshes: the last mile of the pipeline. The store tracks which
// records (base meshes and individual wavelet coefficients) have arrived
// per object and reconstructs each object's best available approximation
// on demand — omitted coefficients leave their vertices at the predicted
// midpoints, exactly as in wavelet synthesis.
//
// Geometry for reconstruction is resolved through the shared object
// database (the client knows object ids and coefficient ids from the
// records it received; the geometry payload itself is what the records
// carry on the wire).
class ClientObjectStore {
 public:
  // `db` must outlive the store.
  explicit ClientObjectStore(const server::ObjectDatabase* db);

  // Registers a received record (base-mesh record or coefficient).
  void AddRecord(index::RecordId id);

  // True once the object's base mesh has arrived (nothing can be rendered
  // before that).
  bool HasBase(int32_t object_id) const;

  // Number of coefficient records received for the object.
  int64_t CoefficientCount(int32_t object_id) const;

  // Objects with any data at all.
  std::vector<int32_t> KnownObjects() const;

  // Reconstructs the object's current approximation at final-mesh
  // connectivity. Fails if the base mesh has not arrived.
  common::StatusOr<mesh::Mesh> Reconstruct(int32_t object_id) const;

  // Residual approximation error of the current holdings against the full
  // resolution object (max vertex distance); 0 once everything arrived.
  common::StatusOr<double> ApproximationError(int32_t object_id) const;

 private:
  struct ObjectState {
    bool has_base = false;
    std::unordered_set<int32_t> coefficients;
  };

  const server::ObjectDatabase* db_;
  std::unordered_map<int32_t, ObjectState> objects_;
};

}  // namespace mars::client

#endif  // MARS_CLIENT_OBJECT_STORE_H_
