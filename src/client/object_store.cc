#include "client/object_store.h"

#include <string>

#include "common/logging.h"
#include "wavelet/reconstruct.h"

namespace mars::client {

ClientObjectStore::ClientObjectStore(const server::ObjectDatabase* db)
    : db_(db) {
  MARS_CHECK(db != nullptr);
}

void ClientObjectStore::AddRecord(index::RecordId id) {
  const index::CoeffRecord& record = db_->record(id);
  ObjectState& state = objects_[record.object_id];
  if (record.is_base()) {
    state.has_base = true;
  } else {
    state.coefficients.insert(record.coeff_id);
  }
}

bool ClientObjectStore::HasBase(int32_t object_id) const {
  const auto it = objects_.find(object_id);
  return it != objects_.end() && it->second.has_base;
}

int64_t ClientObjectStore::CoefficientCount(int32_t object_id) const {
  const auto it = objects_.find(object_id);
  return it == objects_.end()
             ? 0
             : static_cast<int64_t>(it->second.coefficients.size());
}

std::vector<int32_t> ClientObjectStore::KnownObjects() const {
  std::vector<int32_t> out;
  out.reserve(objects_.size());
  for (const auto& [id, state] : objects_) out.push_back(id);
  return out;
}

common::StatusOr<mesh::Mesh> ClientObjectStore::Reconstruct(
    int32_t object_id) const {
  const auto it = objects_.find(object_id);
  if (it == objects_.end() || !it->second.has_base) {
    return common::FailedPreconditionError(
        "object " + std::to_string(object_id) + ": base mesh not received");
  }
  const wavelet::MultiResMesh& mr = db_->object(object_id);
  std::vector<bool> include(mr.coefficient_count(), false);
  for (int32_t coeff : it->second.coefficients) {
    include[coeff] = true;
  }
  return wavelet::ReconstructSubset(mr, include);
}

common::StatusOr<double> ClientObjectStore::ApproximationError(
    int32_t object_id) const {
  MARS_ASSIGN_OR_RETURN(mesh::Mesh approx, Reconstruct(object_id));
  const wavelet::MultiResMesh& mr = db_->object(object_id);
  const mesh::Mesh full = wavelet::Reconstruct(mr, 0.0);
  return wavelet::MaxVertexDistance(approx, full);
}

}  // namespace mars::client
