#include "client/semantic_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "geometry/rect_diff.h"

namespace mars::client {

namespace {

// A still-unanswered fragment of the current query: `region` needs the
// coefficient band [w_lo, w_hi].
struct Piece {
  geometry::Box2 region;
  double w_lo = 0.0;
  double w_hi = 1.0;
};

// Cap on query fragmentation: beyond this, remaining pieces are sent
// untrimmed (correct, merely less parsimonious).
constexpr size_t kMaxPieces = 256;

}  // namespace

SemanticCache::SemanticCache() : SemanticCache(Options()) {}

SemanticCache::SemanticCache(Options options) : options_(options) {
  MARS_CHECK_GE(options.max_entries, 1);
}

std::vector<server::SubQuery> SemanticCache::PlanAndInsert(
    const geometry::Box2& window, double w_min) {
  MARS_CHECK(!window.IsEmpty());
  MARS_CHECK_GE(w_min, 0.0);
  MARS_CHECK_LE(w_min, 1.0);

  std::vector<Piece> pieces = {Piece{window, w_min, 1.0}};

  // Trim the query against every cached semantic region, most recently
  // used first.
  for (const Entry& entry : entries_) {
    std::vector<Piece> next;
    bool overflow = false;
    for (const Piece& piece : pieces) {
      if (next.size() > kMaxPieces) {
        overflow = true;
        next.push_back(piece);
        continue;
      }
      const geometry::Box2 overlap =
          piece.region.Intersection(entry.region);
      if (overlap.IsEmpty()) {
        next.push_back(piece);
        continue;
      }
      // Outside the entry: unchanged need.
      for (const geometry::Box2& rest :
           geometry::Difference(piece.region, entry.region)) {
        next.push_back(Piece{rest, piece.w_lo, piece.w_hi});
      }
      // Inside the entry: the band [entry.w_min, 1] is already held.
      if (entry.w_min <= piece.w_lo) {
        // Fully covered; nothing left for this overlap.
      } else if (entry.w_min < piece.w_hi) {
        next.push_back(Piece{overlap, piece.w_lo, entry.w_min});
      } else {
        // The entry's band starts above this piece's need: no help.
        next.push_back(Piece{overlap, piece.w_lo, piece.w_hi});
      }
    }
    pieces = std::move(next);
    if (overflow) break;
  }

  // Coverage metric: how much of the query's (area × band) volume was
  // answered locally.
  const double band = std::max(1.0 - w_min, 1e-9);
  const double total_volume = window.Volume() * band;
  double missing = 0.0;
  for (const Piece& piece : pieces) {
    missing += piece.region.Volume() * (piece.w_hi - piece.w_lo);
  }
  last_coverage_ =
      total_volume > 0 ? std::clamp(1.0 - missing / total_volume, 0.0, 1.0)
                       : 1.0;

  // Install the new semantics: drop entries this query dominates, then
  // push to the front (MRU) and evict beyond capacity.
  entries_.remove_if([&](const Entry& e) {
    return window.Contains(e.region) && w_min <= e.w_min;
  });
  entries_.push_front(Entry{window, w_min});
  while (static_cast<int32_t>(entries_.size()) > options_.max_entries) {
    entries_.pop_back();
  }

  std::vector<server::SubQuery> plan;
  plan.reserve(pieces.size());
  for (const Piece& piece : pieces) {
    plan.push_back(server::SubQuery{piece.region, piece.w_lo, piece.w_hi});
  }
  return plan;
}

double SemanticCache::CoverageVolume() const {
  // Upper bound (entries may overlap); used as a size indicator only.
  double total = 0.0;
  for (const Entry& e : entries_) {
    total += e.region.Volume() * (1.0 - e.w_min);
  }
  return total;
}

}  // namespace mars::client
