#ifndef MARS_CLIENT_VIEWPORT_H_
#define MARS_CLIENT_VIEWPORT_H_

#include "geometry/box.h"
#include "geometry/vec.h"

namespace mars::client {

// The client's view window over the data space: an axis-aligned rectangle
// centered on the client, sized as a fraction of the space extent (the
// paper's query frames are "5%, 10%, 15%, and 20% of the length and the
// width of the total data space", Sec. VII-A).
class Viewport {
 public:
  // `fraction_x/y` are the window's side lengths as fractions of the data
  // space's extents.
  Viewport(const geometry::Box2& space, double fraction_x, double fraction_y)
      : space_(space),
        width_(space.Extent(0) * fraction_x),
        height_(space.Extent(1) * fraction_y) {}

  // Query frame for a client at `position` (window may extend beyond the
  // space; callers clip as needed).
  geometry::Box2 WindowAt(const geometry::Vec2& position) const {
    return geometry::Box2FromCenter(position, width_, height_);
  }

  double width() const { return width_; }
  double height() const { return height_; }
  const geometry::Box2& space() const { return space_; }

 private:
  geometry::Box2 space_;
  double width_;
  double height_;
};

}  // namespace mars::client

#endif  // MARS_CLIENT_VIEWPORT_H_
