#ifndef MARS_CLIENT_DISTANCE_RINGS_H_
#define MARS_CLIENT_DISTANCE_RINGS_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/vec.h"
#include "server/server.h"

namespace mars::client {

// Distance-aware resolution (paper Sec. III: "the geometric influence of
// a coefficient may be determined by the speed of navigation, the
// resolution level of the screen, or the terminal's processing power").
// Objects far from the client subtend few pixels, so their fine detail is
// invisible regardless of speed. This helper splits the query window into
// concentric rings around the client and assigns each ring a coarser
// resolution band than the last:
//
//   ring 0 (innermost): w_min = base resolution (speed-determined)
//   ring i:             w_min lifted towards 1.0 with distance
//
// The result is a set of disjoint sub-queries covering the window — a
// drop-in replacement for the single-band window query that cuts the
// bytes of large windows considerably (see the distance ablation bench).
struct DistanceRingOptions {
  // Number of rings (1 = plain single-band query).
  int32_t rings = 3;
  // Resolution lift per ring: ring i uses
  //   w_min_i = 1 - (1 - base_w_min) * falloff^i.
  double falloff = 0.5;
};

// Builds the ring sub-queries for a window centered on `position` with
// base band [base_w_min, 1]. The rings are nested boxes; each annulus is
// decomposed into disjoint rectangles.
std::vector<server::SubQuery> PlanDistanceRings(
    const geometry::Box2& window, const geometry::Vec2& position,
    double base_w_min, const DistanceRingOptions& options);

}  // namespace mars::client

#endif  // MARS_CLIENT_DISTANCE_RINGS_H_
