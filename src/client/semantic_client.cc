#include "client/semantic_client.h"

#include "common/logging.h"

namespace mars::client {

SemanticClient::SemanticClient(const Options& options,
                               const geometry::Box2& space,
                               const server::Server* server,
                               net::SimulatedLink* link)
    : options_(options),
      owned_policy_(options.speed_map),
      policy_(options.policy != nullptr ? options.policy : &owned_policy_),
      viewport_(space, options.query_fraction, options.query_fraction),
      server_(server),
      link_(link),
      cache_(options.cache) {
  MARS_CHECK(server != nullptr);
  MARS_CHECK(link != nullptr);
}

SemanticFrameReport SemanticClient::Step(const geometry::Vec2& position,
                                         double speed) {
  SemanticFrameReport report;
  const geometry::Box2 window = viewport_.WindowAt(position);
  const double w_min = policy_->MapSpeedToResolution(speed);

  const std::vector<server::SubQuery> plan =
      cache_.PlanAndInsert(window, w_min);
  report.sub_queries = static_cast<int64_t>(plan.size());
  report.coverage = cache_.last_coverage();

  if (!plan.empty()) {
    const server::QueryResult result = server_->Execute(plan, &session_);
    report.new_records = static_cast<int64_t>(result.records.size());
    report.response_bytes = result.response_bytes;
    report.node_accesses = result.node_accesses;
    report.response_seconds =
        link_->Exchange(result.request_bytes, result.response_bytes, speed);
  }

  total_bytes_ += report.response_bytes;
  total_response_seconds_ += report.response_seconds;
  ++frames_;
  return report;
}

}  // namespace mars::client
