#include "server/object_db.h"

#include <utility>

#include "common/logging.h"

namespace mars::server {

int32_t ObjectDatabase::AddObject(wavelet::MultiResMesh object) {
  objects_.push_back(std::move(object));
  const int32_t obj_id = object_count() - 1;
  // Bulk loading (pre-finalize) defers record emission to
  // FinalizeRecords(); online ingest emits immediately.
  if (finalized_) AppendObjectRecords(obj_id);
  return obj_id;
}

void ObjectDatabase::FinalizeRecords() {
  MARS_CHECK(!finalized_);
  finalized_ = true;
  records_.clear();
  object_bounds_.clear();
  object_full_bytes_.clear();

  for (int32_t obj_id = 0; obj_id < object_count(); ++obj_id) {
    AppendObjectRecords(obj_id);
  }
}

void ObjectDatabase::AppendObjectRecords(int32_t obj_id) {
  const wavelet::MultiResMesh& obj = objects_[obj_id];
  const geometry::Box3 bounds = obj.Bounds();
  object_bounds_.push_back(bounds);
  int64_t full_bytes = 0;

  // Base-mesh record: the coarsest shape, carried at w = 1.0 so it is
  // retrieved at any speed.
  index::CoeffRecord base;
  base.object_id = obj_id;
  base.coeff_id = index::CoeffRecord::kBaseMeshRecord;
  base.w = 1.0;
  const auto center = bounds.Center();
  base.position = {center[0], center[1], center[2]};
  base.support_bounds = bounds;
  base.wire_bytes =
      static_cast<int64_t>(obj.base().vertex_count()) *
      index::kBaseVertexWireBytes;
  full_bytes += base.wire_bytes;
  records_.push_back(base);

  for (const wavelet::WaveletCoefficient& c : obj.coefficients()) {
    index::CoeffRecord rec;
    rec.object_id = obj_id;
    rec.coeff_id = c.id;
    rec.w = c.w;
    rec.position = c.vertex_position;
    rec.support_bounds = c.support_bounds;
    rec.wire_bytes = index::kCoefficientWireBytes;
    full_bytes += rec.wire_bytes;
    records_.push_back(rec);
  }

  object_full_bytes_.push_back(full_bytes);
  total_bytes_ += full_bytes;
}

}  // namespace mars::server
