#include "server/wire_codec.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/serialize.h"

namespace mars::server {

namespace {

constexpr uint8_t kCoefficientTag = 0;
constexpr uint8_t kBaseMeshTag = 1;

// Quantizes v in [-scale, scale] to 16 bits.
uint16_t Quantize(double v, double scale) {
  if (scale <= 0.0) return 0;
  const double t = std::clamp(v / scale, -1.0, 1.0);
  return static_cast<uint16_t>(std::lround((t + 1.0) * 0.5 * 65535.0));
}

double Dequantize(uint16_t q, double scale) {
  return (static_cast<double>(q) / 65535.0 * 2.0 - 1.0) * scale;
}

// Quantizes a position inside [lo, hi].
uint16_t QuantizePos(double v, double lo, double hi) {
  if (hi <= lo) return 0;
  const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  return static_cast<uint16_t>(std::lround(t * 65535.0));
}

double DequantizePos(uint16_t q, double lo, double hi) {
  return lo + static_cast<double>(q) / 65535.0 * (hi - lo);
}

}  // namespace

std::vector<uint8_t> EncodeRecords(
    const ObjectDatabase& db, const std::vector<index::RecordId>& ids) {
  // Group by object, ids ascending within each group.
  std::map<int32_t, std::vector<index::RecordId>> groups;
  for (index::RecordId id : ids) {
    groups[db.record(id).object_id].push_back(id);
  }
  for (auto& [obj, list] : groups) {
    std::sort(list.begin(), list.end());
  }

  common::ByteWriter w;
  w.WriteVarU64(groups.size());
  for (const auto& [obj, list] : groups) {
    const wavelet::MultiResMesh& object = db.object(obj);
    const geometry::Box3& bounds = db.object_bounds()[obj];
    // Detail quantization scale: the object's largest detail magnitude.
    double scale = 0.0;
    for (const auto& c : object.coefficients()) {
      scale = std::max(scale, c.magnitude);
    }

    w.WriteVarU64(static_cast<uint64_t>(obj));
    w.WriteFloat(static_cast<float>(scale));
    for (size_t d = 0; d < 3; ++d) {
      w.WriteFloat(static_cast<float>(bounds.lo(d)));
      w.WriteFloat(static_cast<float>(bounds.hi(d)));
    }
    w.WriteVarU64(list.size());

    int64_t prev_coeff = -1;
    for (index::RecordId id : list) {
      const index::CoeffRecord& record = db.record(id);
      if (record.is_base()) {
        w.WriteU8(kBaseMeshTag);
        const mesh::Mesh& base = object.base();
        w.WriteVarU64(static_cast<uint64_t>(base.vertex_count()));
        for (const geometry::Vec3& v : base.vertices()) {
          w.WriteU32(
              static_cast<uint32_t>(
                  QuantizePos(v.x, bounds.lo(0), bounds.hi(0))) |
              (static_cast<uint32_t>(
                   QuantizePos(v.y, bounds.lo(1), bounds.hi(1)))
               << 16));
          w.WriteU32(QuantizePos(v.z, bounds.lo(2), bounds.hi(2)));
        }
        w.WriteVarU64(static_cast<uint64_t>(base.face_count()));
        for (const mesh::Face& f : base.faces()) {
          for (int32_t c : f) {
            w.WriteVarU64(static_cast<uint64_t>(c));
          }
        }
      } else {
        const wavelet::WaveletCoefficient& c =
            object.coefficient(record.coeff_id);
        w.WriteU8(kCoefficientTag);
        // Delta-coded coefficient id.
        w.WriteVarU64(static_cast<uint64_t>(record.coeff_id - prev_coeff));
        prev_coeff = record.coeff_id;
        w.WriteU32(static_cast<uint32_t>(Quantize(c.detail.x, scale)) |
                   (static_cast<uint32_t>(Quantize(c.detail.y, scale))
                    << 16));
        w.WriteU32(Quantize(c.detail.z, scale));
      }
    }
  }
  return w.Take();
}

common::StatusOr<std::vector<DecodedRecord>> DecodeRecords(
    const std::vector<uint8_t>& bytes) {
  common::ByteReader r(bytes);
  std::vector<DecodedRecord> out;

  uint64_t group_count = 0;
  MARS_RETURN_IF_ERROR(r.ReadVarU64(&group_count));
  for (uint64_t g = 0; g < group_count; ++g) {
    uint64_t object_id = 0;
    MARS_RETURN_IF_ERROR(r.ReadVarU64(&object_id));
    float scale = 0;
    MARS_RETURN_IF_ERROR(r.ReadFloat(&scale));
    float lo[3] = {0, 0, 0}, hi[3] = {0, 0, 0};
    for (int d = 0; d < 3; ++d) {
      MARS_RETURN_IF_ERROR(r.ReadFloat(&lo[d]));
      MARS_RETURN_IF_ERROR(r.ReadFloat(&hi[d]));
    }
    uint64_t record_count = 0;
    MARS_RETURN_IF_ERROR(r.ReadVarU64(&record_count));
    if (record_count > r.remaining()) {
      return common::InvalidArgumentError("corrupt response: record count");
    }

    int64_t prev_coeff = -1;
    for (uint64_t i = 0; i < record_count; ++i) {
      uint8_t tag = 0;
      MARS_RETURN_IF_ERROR(r.ReadU8(&tag));
      DecodedRecord record;
      record.object_id = static_cast<int32_t>(object_id);
      if (tag == kBaseMeshTag) {
        record.coeff_id = index::CoeffRecord::kBaseMeshRecord;
        uint64_t vertex_count = 0;
        MARS_RETURN_IF_ERROR(r.ReadVarU64(&vertex_count));
        if (vertex_count > r.remaining()) {
          return common::InvalidArgumentError("corrupt base: vertices");
        }
        for (uint64_t v = 0; v < vertex_count; ++v) {
          uint32_t xy = 0, z = 0;
          MARS_RETURN_IF_ERROR(r.ReadU32(&xy));
          MARS_RETURN_IF_ERROR(r.ReadU32(&z));
          record.base_vertices.push_back(geometry::Vec3{
              DequantizePos(xy & 0xFFFF, lo[0], hi[0]),
              DequantizePos(xy >> 16, lo[1], hi[1]),
              DequantizePos(static_cast<uint16_t>(z), lo[2], hi[2])});
        }
        uint64_t face_count = 0;
        MARS_RETURN_IF_ERROR(r.ReadVarU64(&face_count));
        if (face_count > r.remaining()) {
          return common::InvalidArgumentError("corrupt base: faces");
        }
        for (uint64_t f = 0; f < face_count; ++f) {
          mesh::Face face;
          for (int k = 0; k < 3; ++k) {
            uint64_t idx = 0;
            MARS_RETURN_IF_ERROR(r.ReadVarU64(&idx));
            face[k] = static_cast<int32_t>(idx);
          }
          record.base_faces.push_back(face);
        }
      } else if (tag == kCoefficientTag) {
        uint64_t delta = 0;
        MARS_RETURN_IF_ERROR(r.ReadVarU64(&delta));
        prev_coeff += static_cast<int64_t>(delta);
        record.coeff_id = static_cast<int32_t>(prev_coeff);
        uint32_t xy = 0, z = 0;
        MARS_RETURN_IF_ERROR(r.ReadU32(&xy));
        MARS_RETURN_IF_ERROR(r.ReadU32(&z));
        record.detail = geometry::Vec3{
            Dequantize(xy & 0xFFFF, scale),
            Dequantize(xy >> 16, scale),
            Dequantize(static_cast<uint16_t>(z), scale)};
      } else {
        return common::InvalidArgumentError("corrupt response: bad tag");
      }
      out.push_back(std::move(record));
    }
  }
  if (!r.AtEnd()) {
    return common::InvalidArgumentError("trailing bytes in response");
  }
  return out;
}

}  // namespace mars::server
