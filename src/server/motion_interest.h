#ifndef MARS_SERVER_MOTION_INTEREST_H_
#define MARS_SERVER_MOTION_INTEREST_H_

#include <cstdint>
#include <map>

#include "common/rng.h"
#include "geometry/box.h"
#include "geometry/grid.h"
#include "geometry/vec.h"
#include "motion/grid_probability.h"
#include "motion/predictor.h"
#include "storage/buffer_pool.h"

namespace mars::server {

// Server-side reuse of the paper's client visit-probability logic (Sec.
// V-B): one motion predictor per connected client, fed the positions the
// fleet reports each frame, aggregated into a ground-plane interest field
// that the buffer pools' motion-aware eviction policy scores pages against.
// Where the paper's client keeps blocks it will soon *query*, the server
// keeps pages the fleet will soon *traverse*.
//
// Not internally synchronized: the Server wraps calls in its own mutex, and
// Observe/Snapshot are only driven from serial phases (the fleet's commit
// phase or the single-client frame loop).
class MotionInterestTracker {
 public:
  struct Options {
    // Interest-grid resolution over the dataset's ground bounds.
    int32_t grid_nx = 16;
    int32_t grid_ny = 16;
    motion::GridProbabilityOptions probability;
    uint64_t seed = 0x4d415253504f4f4cull;  // deterministic sampling
  };

  MotionInterestTracker(const geometry::Box2& space, Options options);

  // Feeds client `client_id`'s position for the current frame.
  void Observe(int32_t client_id, const geometry::Vec2& position);

  // Aggregates every client's discounted block-visit probabilities into
  // one field. Deterministic: clients iterate in ascending id and the
  // Monte-Carlo sampler is seeded per call from the tracker's base seed.
  storage::InterestGrid Snapshot() const;

  int64_t clients() const { return static_cast<int64_t>(predictors_.size()); }

 private:
  Options options_;
  geometry::Box2 space_;
  geometry::GridPartition grid_;
  // Ordered map so Snapshot's accumulation order (and therefore its
  // floating-point result) is independent of insertion order.
  std::map<int32_t, motion::MotionPredictor> predictors_;
};

}  // namespace mars::server

#endif  // MARS_SERVER_MOTION_INTEREST_H_
