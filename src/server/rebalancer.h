#ifndef MARS_SERVER_REBALANCER_H_
#define MARS_SERVER_REBALANCER_H_

#include <cstdint>
#include <vector>

#include "index/sharded_index.h"

namespace mars::server {

// Trigger policy of the load-adaptive shard rebalancer.
struct RebalanceOptions {
  bool enabled = false;

  // Ticks between policy rounds. Each round looks at the node accesses
  // accumulated since the previous round (a windowed rate, so old load
  // never pins a decision) and applies at most one split and one merge.
  int32_t interval = 16;

  // Split the window's hottest shard when its access share exceeds
  // `split_factor / live_shards` — i.e. when it runs at split_factor
  // times its fair share of the window.
  double split_factor = 2.0;

  // Merge the window's coldest shard into a neighbour when its share
  // falls below `merge_factor / live_shards`.
  double merge_factor = 0.1;

  // Never split a shard holding fewer records than this (halving a tiny
  // shard buys nothing and burns a shard id).
  int64_t min_split_records = 64;

  // Hard cap on allocated shard slots (configured K plus split targets,
  // including retired merge sources — ids are append-only).
  int32_t max_shards = 64;
};

// One applied rebalance op, for the sim's JSON log and the tests.
struct RebalanceEvent {
  enum class Kind { kSplit, kMerge };
  Kind kind = Kind::kSplit;
  int64_t round = 0;   // policy round that applied the op
  int32_t shard = 0;   // split: the halved shard; merge: the source
  int32_t target = 0;  // split: the new shard id; merge: the destination
  double share = 0.0;  // the windowed access share that triggered it
  int64_t records = 0;  // records in `shard` at decision time
};

// Drives ShardedCoefficientIndex::SplitShard/MergeShards from windowed
// per-shard access rates. Single-threaded by contract: Tick mutates the
// index through its single-writer surface, so it must only run where
// CommitIngest may — the fleet's serial phase or the single-client frame
// loop. Determinism: decisions depend only on per-shard node-access
// totals, which are order-independent sums, so a fleet run applies the
// same ops at any --workers.
class ShardRebalancer {
 public:
  ShardRebalancer(index::ShardedCoefficientIndex* index,
                  RebalanceOptions options);

  // Advances one tick; every `interval` ticks runs a policy round and
  // returns the ops it applied (empty otherwise). At most one split and
  // one merge per round, always computed from the same window snapshot.
  std::vector<RebalanceEvent> Tick();

  // Every op applied since construction.
  const std::vector<RebalanceEvent>& events() const { return events_; }
  int64_t rounds() const { return rounds_; }

  const RebalanceOptions& options() const { return options_; }

 private:
  std::vector<RebalanceEvent> RunRound();

  index::ShardedCoefficientIndex* index_;
  RebalanceOptions options_;
  int64_t ticks_ = 0;
  int64_t rounds_ = 0;
  // Cumulative per-shard node accesses at the end of the previous round,
  // indexed by shard id. Shards allocated mid-window have no baseline
  // and sit the round out.
  std::vector<int64_t> last_accesses_;
  std::vector<RebalanceEvent> events_;
};

}  // namespace mars::server

#endif  // MARS_SERVER_REBALANCER_H_
