#ifndef MARS_SERVER_ADMISSION_H_
#define MARS_SERVER_ADMISSION_H_

#include <cstdint>

namespace mars::server {

// Server-side admission control for the shared cell.
//
// The WFQ scheduler (net/shared_link.h) guarantees every client its
// weighted share of the cell, but it cannot stop a greedy client from
// building an unbounded private backlog — nor stop the cell's aggregate
// queue from growing without bound when offered load exceeds capacity.
// The admission controller closes both gaps at the request boundary:
//
//   * per-client bounds: a client whose cell backlog (bytes or queue
//     depth) exceeds its budget has further requests *deferred* — the
//     client is told to back off and retry, instead of piling more bytes
//     onto the cell and eventually timing out;
//   * overload shedding: when the cell-wide backlog passes the overload
//     watermark, *deferrable* requests (naive bulk re-retrievals,
//     prefetch batches) are deferred, and past the shed watermark they
//     are rejected outright — the motion-aware clients' tiny demand
//     exchanges keep flowing;
//   * bounded deferral: a request deferred more than `max_defers` times
//     is either admitted (non-deferrable demand traffic must eventually
//     go through) or shed (deferrable bulk), so no client waits forever.
//
// Decide() is a pure function of the request and the options — no
// internal state, no randomness — so admission verdicts computed against
// a tick-frozen cell snapshot are identical no matter how many worker
// threads evaluate them (the fleet engine's determinism contract).
// Record() accumulates observability counters and is only called from
// the engine's serial commit phase.
class AdmissionController {
 public:
  enum class Decision {
    kAdmit,  // submit to the cell now
    kDefer,  // hold; retry after `retry_after_seconds`
    kShed,   // reject; the client keeps serving stale data
  };

  struct Options {
    bool enabled = false;
    // Per-client bounds on cell backlog.
    int64_t max_client_backlog_bytes = 128 * 1024;
    int32_t max_client_queue_depth = 4;
    // Cell-wide watermarks for deferrable (bulk) traffic.
    int64_t overload_backlog_bytes = 512 * 1024;
    int64_t shed_backlog_bytes = 2 * 1024 * 1024;
    // Backpressure hint: retry after base * (1 + prior_defers) seconds.
    double defer_backoff_seconds = 0.5;
    // A request deferred this many times is admitted (non-deferrable) or
    // shed (deferrable).
    int32_t max_defers = 8;
  };

  struct Request {
    int32_t client = 0;
    // Estimated wire bytes of the exchange (the fleet engine uses the
    // client's last observed exchange size; 0 = unknown, always admitted
    // against the byte bound).
    int64_t bytes = 0;
    // Bulk traffic the client can serve stale instead (naive full-object
    // re-retrievals, prefetch batches). Demand exchanges of the
    // motion-aware clients are not deferrable past max_defers.
    bool deferrable = false;
    // Times this request was already deferred.
    int32_t prior_defers = 0;
    // Cell state (tick-frozen snapshot).
    int64_t client_backlog_bytes = 0;
    int32_t client_queue_depth = 0;
    int64_t cell_backlog_bytes = 0;
  };

  struct Verdict {
    Decision decision = Decision::kAdmit;
    // Backpressure hint accompanying kDefer.
    double retry_after_seconds = 0.0;
  };

  AdmissionController() = default;
  explicit AdmissionController(Options options);

  // Pure policy evaluation; see class comment.
  Verdict Decide(const Request& request) const;

  // Folds a verdict into the counters (serial phase only).
  void Record(const Request& request, const Verdict& verdict);

  const Options& options() const { return options_; }
  bool enabled() const { return options_.enabled; }
  int64_t admitted_requests() const { return admitted_requests_; }
  int64_t admitted_bytes() const { return admitted_bytes_; }
  int64_t deferred_requests() const { return deferred_requests_; }
  int64_t shed_requests() const { return shed_requests_; }
  int64_t shed_bytes() const { return shed_bytes_; }

 private:
  Options options_;

  int64_t admitted_requests_ = 0;
  int64_t admitted_bytes_ = 0;
  int64_t deferred_requests_ = 0;
  int64_t shed_requests_ = 0;
  int64_t shed_bytes_ = 0;
};

}  // namespace mars::server

#endif  // MARS_SERVER_ADMISSION_H_
