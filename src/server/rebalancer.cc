#include "server/rebalancer.h"

#include <utility>

#include "common/logging.h"

namespace mars::server {

ShardRebalancer::ShardRebalancer(index::ShardedCoefficientIndex* index,
                                 RebalanceOptions options)
    : index_(index), options_(options) {
  MARS_CHECK(index_ != nullptr);
  MARS_CHECK_GE(options_.interval, 1);
  MARS_CHECK_GT(options_.split_factor, 1.0);
  MARS_CHECK_GE(options_.merge_factor, 0.0);
  MARS_CHECK_LT(options_.merge_factor, 1.0);
  MARS_CHECK_GE(options_.min_split_records, 2);
  MARS_CHECK_GE(options_.max_shards, 1);
}

std::vector<RebalanceEvent> ShardRebalancer::Tick() {
  ++ticks_;
  if (ticks_ % options_.interval != 0) return {};
  return RunRound();
}

std::vector<RebalanceEvent> ShardRebalancer::RunRound() {
  ++rounds_;
  const std::vector<index::ShardedCoefficientIndex::ShardStats> stats =
      index_->Stats();

  // Windowed access deltas, by shard id. A slot with no baseline (split
  // off mid-window) contributes nothing and is never an op candidate
  // this round — it gets a full window of its own first.
  const size_t known = last_accesses_.size();
  std::vector<int64_t> delta(stats.size(), 0);
  int64_t total = 0;
  int32_t live = 0;
  for (size_t s = 0; s < stats.size(); ++s) {
    if (!stats[s].retired) ++live;
    if (s < known && !stats[s].retired) {
      delta[s] = stats[s].node_accesses - last_accesses_[s];
      total += delta[s];
    }
  }

  std::vector<RebalanceEvent> applied;
  if (total > 0 && live > 0) {
    // Split the hottest known live shard running past split_factor times
    // its fair share (ties break to the lowest id).
    int32_t hot = -1;
    int64_t hot_delta = 0;
    for (size_t s = 0; s < known && s < stats.size(); ++s) {
      if (stats[s].retired) continue;
      if (delta[s] > hot_delta) {
        hot = static_cast<int32_t>(s);
        hot_delta = delta[s];
      }
    }
    const double hot_share =
        hot >= 0 ? static_cast<double>(hot_delta) / static_cast<double>(total)
                 : 0.0;
    if (hot >= 0 && hot_share * live > options_.split_factor &&
        stats[hot].records >= options_.min_split_records &&
        index_->shard_count() < options_.max_shards) {
      auto split = index_->SplitShard(hot);
      if (split.ok()) {
        RebalanceEvent event;
        event.kind = RebalanceEvent::Kind::kSplit;
        event.round = rounds_;
        event.shard = hot;
        event.target = split.value();
        event.share = hot_share;
        event.records = stats[hot].records;
        applied.push_back(event);
      }
    }

    // Merge the coldest known live shard idling below merge_factor of
    // its fair share into the live shard whose coverage grows least by
    // absorbing it — locality-preserving, so the union stays a tight
    // fan-out filter. Only shards below the split threshold qualify as
    // sources: merging a large-but-idle shard would bloat the
    // destination's tree for no access-share gain (its coverage already
    // keeps it out of unrelated fan-outs) and invites split/merge
    // ping-pong. Skip the shard we just split (its window is no longer
    // meaningful) and keep at least two live shards.
    const int32_t skip = applied.empty() ? -1 : applied.front().shard;
    int32_t cold = -1;
    int64_t cold_delta = 0;
    for (size_t s = 0; s < known && s < stats.size(); ++s) {
      if (stats[s].retired || static_cast<int32_t>(s) == skip ||
          stats[s].records >= options_.min_split_records) {
        continue;
      }
      if (cold < 0 || delta[s] < cold_delta) {
        cold = static_cast<int32_t>(s);
        cold_delta = delta[s];
      }
    }
    const double cold_share =
        cold >= 0 ? static_cast<double>(cold_delta) / static_cast<double>(total)
                  : 1.0;
    if (cold >= 0 && live > 2 && cold_share * live < options_.merge_factor) {
      int32_t dst = -1;
      double best_growth = 0.0;
      for (size_t s = 0; s < stats.size(); ++s) {
        if (stats[s].retired || static_cast<int32_t>(s) == cold ||
            static_cast<int32_t>(s) == skip) {
          continue;
        }
        const double growth =
            stats[s].coverage.Union(stats[cold].coverage).Volume() -
            stats[s].coverage.Volume();
        if (dst < 0 || growth < best_growth) {
          dst = static_cast<int32_t>(s);
          best_growth = growth;
        }
      }
      if (dst >= 0 && index_->MergeShards(cold, dst).ok()) {
        RebalanceEvent event;
        event.kind = RebalanceEvent::Kind::kMerge;
        event.round = rounds_;
        event.shard = cold;
        event.target = dst;
        event.share = cold_share;
        event.records = stats[cold].records;
        applied.push_back(event);
      }
    }
  }

  // Re-baseline on the post-op shard set so the next window starts
  // clean for every slot, including ones allocated this round.
  const std::vector<index::ShardedCoefficientIndex::ShardStats> fresh =
      index_->Stats();
  last_accesses_.assign(fresh.size(), 0);
  for (size_t s = 0; s < fresh.size(); ++s) {
    last_accesses_[s] = fresh[s].node_accesses;
  }

  events_.insert(events_.end(), applied.begin(), applied.end());
  return applied;
}

}  // namespace mars::server
