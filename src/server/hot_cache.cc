#include "server/hot_cache.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mars::server {

HotRecordCache::HotRecordCache(int64_t budget_bytes, int32_t shards)
    : budget_bytes_(std::max<int64_t>(0, budget_bytes)) {
  MARS_CHECK_GE(shards, 1);
  shards_.reserve(static_cast<size_t>(shards));
  for (int32_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = budget_bytes_ / shards;
}

int64_t HotRecordCache::Lookup(index::RecordId id) const {
  if (!enabled()) return -1;
  const Shard& shard = ShardOf(id);
  common::ReaderLock lock(&shard.mu);
  const auto it = shard.map.find(id);
  if (it == shard.map.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int64_t>(it->second.encoded.size());
}

void HotRecordCache::Touch(index::RecordId id) {
  if (!enabled()) return;
  Shard& shard = ShardOf(id);
  common::WriterLock lock(&shard.mu);
  const auto it = shard.map.find(id);
  if (it == shard.map.end()) return;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
}

void HotRecordCache::Insert(index::RecordId id,
                            std::vector<uint8_t> encoded) {
  if (!enabled()) return;
  Shard& shard = ShardOf(id);
  common::WriterLock lock(&shard.mu);
  const auto it = shard.map.find(id);
  if (it != shard.map.end()) {
    // Raced with an earlier client of the same commit phase: keep the
    // existing payload, just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return;
  }
  const int64_t bytes = static_cast<int64_t>(encoded.size());
  if (bytes > shard_budget_) return;  // would evict the whole shard
  shard.lru.push_front(id);
  shard.map.emplace(id, Entry{std::move(encoded), shard.lru.begin()});
  shard.bytes += bytes;
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const index::RecordId victim = shard.lru.back();
    const auto vit = shard.map.find(victim);
    shard.bytes -= static_cast<int64_t>(vit->second.encoded.size());
    shard.lru.pop_back();
    shard.map.erase(vit);
    ++shard.evictions;
  }
}

int64_t HotRecordCache::size_bytes() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += shard->bytes;
  }
  return n;
}

int64_t HotRecordCache::entries() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += static_cast<int64_t>(shard->map.size());
  }
  return n;
}

int64_t HotRecordCache::evictions() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += shard->evictions;
  }
  return n;
}

std::vector<HotRecordCache::ShardStats> HotRecordCache::Stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    common::ReaderLock lock(&shard.mu);
    ShardStats s;
    s.shard = static_cast<int32_t>(i);
    s.hits = shard.hits.load(std::memory_order_relaxed);
    s.misses = shard.misses.load(std::memory_order_relaxed);
    s.evictions = shard.evictions;
    s.entries = static_cast<int64_t>(shard.map.size());
    s.bytes = shard.bytes;
    stats.push_back(s);
  }
  return stats;
}

}  // namespace mars::server
