#ifndef MARS_SERVER_SESSION_TABLE_H_
#define MARS_SERVER_SESSION_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "server/server.h"

namespace mars::server {

// Server-side registry of per-client sessions for the multi-client fleet.
//
// The table is striped: client ids hash onto kStripes independent shards,
// each guarded by its own mutex, so sessions of different clients never
// contend on a single table lock (the classic session-table bottleneck of
// a threaded server). The stripe lock protects the shard's *map* —
// insertion of new sessions while other workers look sessions up.
//
// The ClientSession objects themselves are NOT locked here: the fleet's
// scheduler runs each client's exchange on exactly one worker at a time
// (a session has one owner by protocol — its client), so per-session
// mutual exclusion is structural. Pointers handed out remain stable for
// the table's lifetime (sessions are heap-allocated and never erased
// individually).
class SessionTable {
 public:
  static constexpr int32_t kStripes = 16;

  SessionTable() = default;

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  // Returns the session of `client_id`, creating it on first use.
  // Safe to call concurrently for any mix of client ids.
  ClientSession* GetOrCreate(int32_t client_id);

  // Returns the session of `client_id`, or nullptr when it was never
  // created. Safe to call concurrently.
  ClientSession* Find(int32_t client_id) const;

  // Total sessions across all stripes.
  int64_t size() const;

  // Cumulative committed + pending records across every session — the
  // server's total duplicate-filter footprint (observability).
  int64_t TotalTrackedRecords() const;

  // Cumulative admission-control events (deferred + shed requests)
  // recorded against every session (observability).
  int64_t TotalAdmissionEvents() const;

 private:
  struct Stripe {
    mutable common::Mutex mu;
    std::unordered_map<int32_t, std::unique_ptr<ClientSession>> sessions
        MARS_GUARDED_BY(mu);
  };

  static int32_t StripeOf(int32_t client_id) {
    // Cheap integer hash; client ids are small and dense, so the identity
    // modulo would also do, but mixing keeps adversarial id patterns from
    // piling onto one stripe.
    uint32_t h = static_cast<uint32_t>(client_id) * 2654435761u;
    return static_cast<int32_t>(h % static_cast<uint32_t>(kStripes));
  }

  std::array<Stripe, kStripes> stripes_;
};

}  // namespace mars::server

#endif  // MARS_SERVER_SESSION_TABLE_H_
