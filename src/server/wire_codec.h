#ifndef MARS_SERVER_WIRE_CODEC_H_
#define MARS_SERVER_WIRE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "index/record.h"
#include "server/object_db.h"

namespace mars::server {

// Compact wire encoding for query responses. The experiment harness uses
// the flat byte *model* of src/index/record.h (sized to the paper's
// datasets); this codec is the real thing — what a production deployment
// would put on the 256 Kbps link — and the compression ablation measures
// how far it undercuts the model.
//
// Per coefficient the codec sends: object id and coefficient id as
// varints (delta-coded within a response), and the detail vector
// quantized to 16 bits per component inside the object's bounding box.
// Positions and connectivity are *not* sent — they are implied by the
// subdivision structure, which is the core transmission advantage of the
// wavelet representation. Base-mesh records send their full vertex and
// face lists (quantized likewise).

// The decoded form of one transmitted record.
struct DecodedRecord {
  int32_t object_id = 0;
  int32_t coeff_id = 0;  // kBaseMeshRecord for base meshes
  // For coefficients: the (de-quantized) detail vector.
  geometry::Vec3 detail;
  // For base records: vertices and faces.
  std::vector<geometry::Vec3> base_vertices;
  std::vector<mesh::Face> base_faces;
};

// Encodes the records identified by `ids` (into db.records()) against the
// database. Records are grouped by object; ids within a group are
// delta-coded.
std::vector<uint8_t> EncodeRecords(const ObjectDatabase& db,
                                   const std::vector<index::RecordId>& ids);

// Decodes a response produced by EncodeRecords. Quantization error per
// component is at most (detail scale) / 32767 for coefficient details and
// (object extent) / 65535 for base-mesh vertex positions.
common::StatusOr<std::vector<DecodedRecord>> DecodeRecords(
    const std::vector<uint8_t>& bytes);

}  // namespace mars::server

#endif  // MARS_SERVER_WIRE_CODEC_H_
