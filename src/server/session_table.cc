#include "server/session_table.h"

namespace mars::server {

ClientSession* SessionTable::GetOrCreate(int32_t client_id) {
  Stripe& stripe = stripes_[StripeOf(client_id)];
  common::MutexLock lock(&stripe.mu);
  std::unique_ptr<ClientSession>& slot = stripe.sessions[client_id];
  if (slot == nullptr) slot = std::make_unique<ClientSession>();
  return slot.get();
}

ClientSession* SessionTable::Find(int32_t client_id) const {
  const Stripe& stripe = stripes_[StripeOf(client_id)];
  common::MutexLock lock(&stripe.mu);
  const auto it = stripe.sessions.find(client_id);
  return it == stripe.sessions.end() ? nullptr : it->second.get();
}

int64_t SessionTable::size() const {
  int64_t n = 0;
  for (const Stripe& stripe : stripes_) {
    common::MutexLock lock(&stripe.mu);
    n += static_cast<int64_t>(stripe.sessions.size());
  }
  return n;
}

int64_t SessionTable::TotalTrackedRecords() const {
  int64_t n = 0;
  for (const Stripe& stripe : stripes_) {
    common::MutexLock lock(&stripe.mu);
    for (const auto& [id, session] : stripe.sessions) {
      n += static_cast<int64_t>(session->delivered.size()) +
           static_cast<int64_t>(session->pending.size());
    }
  }
  return n;
}

int64_t SessionTable::TotalAdmissionEvents() const {
  int64_t n = 0;
  for (const Stripe& stripe : stripes_) {
    common::MutexLock lock(&stripe.mu);
    for (const auto& [id, session] : stripe.sessions) {
      n += session->deferred_requests + session->shed_requests;
    }
  }
  return n;
}

}  // namespace mars::server
