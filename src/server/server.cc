#include "server/server.h"

#include "common/logging.h"
#include "index/shard_map.h"

namespace mars::server {

void AckPending(ClientSession* session) {
  MARS_CHECK(session != nullptr);
  if (session->pending.empty()) return;
  session->delivered.insert(session->pending.begin(),
                            session->pending.end());
  session->pending.clear();
  ++session->acked_batches;
}

void RollbackPending(ClientSession* session) {
  MARS_CHECK(session != nullptr);
  if (session->pending.empty()) return;
  session->pending.clear();
  ++session->rolled_back_batches;
}

Server::Server(const ObjectDatabase* db, Options options)
    : db_(db), object_index_(options.rtree) {
  MARS_CHECK(db != nullptr);
  MARS_CHECK(db->finalized()) << "ObjectDatabase must be finalized";
  index::ShardedIndexOptions sharded;
  sharded.shards = options.shards;
  sharded.kind = options.kind == IndexKind::kSupportRegion
                     ? index::ShardedIndexOptions::Kind::kSupportRegion
                     : index::ShardedIndexOptions::Kind::kNaivePoint;
  sharded.rtree = options.rtree;
  sharded.fanout_workers = options.fanout_workers;
  sharded.storage = options.storage;
  coeff_index_ = std::make_unique<index::ShardedCoefficientIndex>(sharded);
  coeff_index_->Build(db->records());
  object_index_.Build(db->object_bounds());
  if (options.storage.store == storage::StoreKind::kDisk &&
      options.storage.evict == storage::EvictPolicy::kMotion) {
    interest_ = std::make_unique<MotionInterestTracker>(
        index::ShardMap::GroundBounds(db->records()),
        MotionInterestTracker::Options());
  }
  if (options.rebalance.enabled) {
    rebalancer_ = std::make_unique<ShardRebalancer>(coeff_index_.get(),
                                                    options.rebalance);
  }
}

Server::Server(ObjectDatabase* db, Options options)
    : Server(static_cast<const ObjectDatabase*>(db), options) {
  mutable_db_ = db;
}

Server::Server(const ObjectDatabase* db, IndexKind kind,
               index::RTreeOptions options)
    : Server(db, Options{kind, options}) {}

int32_t Server::AddObject(wavelet::MultiResMesh object) {
  MARS_CHECK(mutable_db_ != nullptr)
      << "AddObject requires the ingest-capable constructor";
  const size_t first = db_->records().size();
  const int32_t obj_id = mutable_db_->AddObject(std::move(object));
  const auto& records = db_->records();
  coeff_index_->Stage(records.data() + first, records.size() - first,
                      static_cast<index::RecordId>(first));
  staged_objects_.push_back(obj_id);
  return obj_id;
}

int64_t Server::CommitIngest() {
  MARS_CHECK(mutable_db_ != nullptr)
      << "CommitIngest requires the ingest-capable constructor";
  const int64_t folded = coeff_index_->CommitStaged();
  for (int32_t obj_id : staged_objects_) {
    object_index_.Insert(obj_id, db_->object_bounds()[obj_id]);
  }
  staged_objects_.clear();
  return folded;
}

QueryResult Server::Execute(const std::vector<SubQuery>& queries,
                            ClientSession* session) const {
  MARS_CHECK(session != nullptr);
  QueryResult result;
  result.request_bytes =
      kRequestHeaderBytes +
      kSubQueryBytes * static_cast<int64_t>(queries.size());
  result.response_bytes = kResponseHeaderBytes;

  result.per_query.resize(queries.size());
  result.per_query_bytes.assign(queries.size(), 0);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const SubQuery& q = queries[qi];
    std::vector<index::RecordId> hits;
    // Per-call access counts, never cumulative-counter deltas: with the
    // index const-shared across the fleet's workers, a delta would
    // absorb other clients' concurrent traversals.
    result.node_accesses +=
        coeff_index_->Query(q.region, q.w_min, q.w_max, &hits);
    for (index::RecordId id : hits) {
      // Filter against everything the client holds or is about to hold;
      // new records become pending until the client's ack commits them.
      if (session->delivered.contains(id) ||
          !session->pending.insert(id).second) {
        ++result.filtered_duplicates;
        continue;
      }
      result.records.push_back(id);
      result.per_query[qi].push_back(id);
      const int64_t bytes = db_->record(id).wire_bytes;
      result.per_query_bytes[qi] += bytes;
      result.response_bytes += bytes;
    }
  }
  return result;
}

Server::ObjectQueryResult Server::ExecuteObjectQuery(
    const geometry::Box2& region,
    std::unordered_set<int32_t>* delivered_objects) const {
  MARS_CHECK(delivered_objects != nullptr);
  ObjectQueryResult result;
  result.request_bytes = kRequestHeaderBytes + kSubQueryBytes;
  result.response_bytes = kResponseHeaderBytes;

  std::vector<int32_t> hits;
  result.node_accesses = object_index_.Query(region, &hits);
  result.all_objects = hits;
  for (int32_t obj : hits) {
    if (!delivered_objects->insert(obj).second) continue;
    result.objects.push_back(obj);
    result.response_bytes += db_->ObjectFullBytes(obj);
  }
  return result;
}

Server::ObjectListing Server::ListObjects(
    const geometry::Box2& region) const {
  ObjectListing listing;
  listing.node_accesses = object_index_.Query(region, &listing.objects);
  return listing;
}

void Server::ObserveClientMotion(int32_t client_id,
                                 const geometry::Vec2& position) const {
  if (interest_ == nullptr) return;
  common::MutexLock lock(&interest_mu_);
  interest_->Observe(client_id, position);
}

void Server::RefreshPoolInterest() const {
  if (interest_ == nullptr) return;
  storage::InterestGrid grid;
  {
    common::MutexLock lock(&interest_mu_);
    grid = interest_->Snapshot();
  }
  coeff_index_->UpdateInterest(grid);
}

std::vector<RebalanceEvent> Server::TickRebalancer() const {
  if (rebalancer_ == nullptr) return {};
  return rebalancer_->Tick();
}

std::vector<RebalanceEvent> Server::RebalanceEvents() const {
  if (rebalancer_ == nullptr) return {};
  return rebalancer_->events();
}

int64_t Server::node_accesses() const {
  return coeff_index_->node_accesses() + object_index_.node_accesses();
}

void Server::ResetStats() {
  coeff_index_->ResetStats();
  object_index_.ResetStats();
}

}  // namespace mars::server
