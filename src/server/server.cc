#include "server/server.h"

#include "common/logging.h"

namespace mars::server {

void AckPending(ClientSession* session) {
  MARS_CHECK(session != nullptr);
  if (session->pending.empty()) return;
  session->delivered.insert(session->pending.begin(),
                            session->pending.end());
  session->pending.clear();
  ++session->acked_batches;
}

void RollbackPending(ClientSession* session) {
  MARS_CHECK(session != nullptr);
  if (session->pending.empty()) return;
  session->pending.clear();
  ++session->rolled_back_batches;
}

Server::Server(const ObjectDatabase* db, IndexKind kind,
               index::RTreeOptions options)
    : db_(db), object_index_(options) {
  MARS_CHECK(db != nullptr);
  MARS_CHECK(db->finalized()) << "ObjectDatabase must be finalized";
  switch (kind) {
    case IndexKind::kSupportRegion:
      coeff_index_ = std::make_unique<index::SupportRegionIndex>(options);
      break;
    case IndexKind::kNaivePoint:
      coeff_index_ = std::make_unique<index::NaivePointIndex>(options);
      break;
  }
  coeff_index_->Build(db->records());
  object_index_.Build(db->object_bounds());
}

QueryResult Server::Execute(const std::vector<SubQuery>& queries,
                            ClientSession* session) const {
  MARS_CHECK(session != nullptr);
  QueryResult result;
  result.request_bytes =
      kRequestHeaderBytes +
      kSubQueryBytes * static_cast<int64_t>(queries.size());
  result.response_bytes = kResponseHeaderBytes;

  result.per_query.resize(queries.size());
  result.per_query_bytes.assign(queries.size(), 0);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const SubQuery& q = queries[qi];
    std::vector<index::RecordId> hits;
    // Per-call access counts, never cumulative-counter deltas: with the
    // index const-shared across the fleet's workers, a delta would
    // absorb other clients' concurrent traversals.
    result.node_accesses +=
        coeff_index_->Query(q.region, q.w_min, q.w_max, &hits);
    for (index::RecordId id : hits) {
      // Filter against everything the client holds or is about to hold;
      // new records become pending until the client's ack commits them.
      if (session->delivered.contains(id) ||
          !session->pending.insert(id).second) {
        ++result.filtered_duplicates;
        continue;
      }
      result.records.push_back(id);
      result.per_query[qi].push_back(id);
      const int64_t bytes = db_->record(id).wire_bytes;
      result.per_query_bytes[qi] += bytes;
      result.response_bytes += bytes;
    }
  }
  return result;
}

Server::ObjectQueryResult Server::ExecuteObjectQuery(
    const geometry::Box2& region,
    std::unordered_set<int32_t>* delivered_objects) const {
  MARS_CHECK(delivered_objects != nullptr);
  ObjectQueryResult result;
  result.request_bytes = kRequestHeaderBytes + kSubQueryBytes;
  result.response_bytes = kResponseHeaderBytes;

  std::vector<int32_t> hits;
  result.node_accesses = object_index_.Query(region, &hits);
  result.all_objects = hits;
  for (int32_t obj : hits) {
    if (!delivered_objects->insert(obj).second) continue;
    result.objects.push_back(obj);
    result.response_bytes += db_->ObjectFullBytes(obj);
  }
  return result;
}

Server::ObjectListing Server::ListObjects(
    const geometry::Box2& region) const {
  ObjectListing listing;
  listing.node_accesses = object_index_.Query(region, &listing.objects);
  return listing;
}

int64_t Server::node_accesses() const {
  return coeff_index_->node_accesses() + object_index_.node_accesses();
}

void Server::ResetStats() {
  coeff_index_->ResetStats();
  object_index_.ResetStats();
}

}  // namespace mars::server
