#include "server/motion_interest.h"

#include <utility>

namespace mars::server {
namespace {

geometry::Box2 NonEmptySpace(const geometry::Box2& space) {
  if (space.IsEmpty() || space.Extent(0) <= 0.0 || space.Extent(1) <= 0.0) {
    return geometry::Box2({0.0, 0.0}, {1.0, 1.0});
  }
  return space;
}

}  // namespace

MotionInterestTracker::MotionInterestTracker(const geometry::Box2& space,
                                             Options options)
    : options_(options),
      space_(NonEmptySpace(space)),
      grid_(space_, options_.grid_nx, options_.grid_ny) {}

void MotionInterestTracker::Observe(int32_t client_id,
                                    const geometry::Vec2& position) {
  auto [it, inserted] =
      predictors_.try_emplace(client_id, motion::MotionPredictor());
  it->second.Observe(position);
}

storage::InterestGrid MotionInterestTracker::Snapshot() const {
  storage::InterestGrid interest;
  interest.space = space_;
  interest.nx = options_.grid_nx;
  interest.ny = options_.grid_ny;
  interest.score.assign(
      static_cast<size_t>(options_.grid_nx) * options_.grid_ny, 0.0);
  for (const auto& [client_id, predictor] : predictors_) {
    // A fresh per-client sampler keeps the field a pure function of the
    // observation history — snapshots never drift with call count.
    common::Rng rng(options_.seed +
                    0x9e3779b97f4a7c15ull * static_cast<uint64_t>(
                                                client_id + 1));
    const motion::BlockProbabilities probs = motion::ComputeBlockProbabilities(
        predictor, grid_, options_.probability, rng);
    for (const auto& [block, p] : probs) {
      interest.score[static_cast<size_t>(block)] += p;
    }
  }
  return interest;
}

}  // namespace mars::server
