#include "server/inflight_table.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mars::server {

InflightTable::InflightTable() : InflightTable(Options()) {}

InflightTable::InflightTable(Options options) : options_(options) {
  MARS_CHECK_GE(options.shards, 1);
  MARS_CHECK_GE(options.attach_header_bytes, 0);
  MARS_CHECK_GE(options.max_waiters_per_entry, 0);
  shards_.reserve(static_cast<size_t>(options.shards));
  for (int32_t i = 0; i < options.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

int64_t InflightTable::Probe(index::RecordId id) const {
  if (!enabled()) return -1;
  const Shard& shard = ShardOf(id);
  common::ReaderLock lock(&shard.mu);
  const auto it = shard.map.find(id);
  if (it == shard.map.end()) return -1;
  return it->second.bytes;
}

void InflightTable::Register(index::RecordId id, int32_t owner,
                             int64_t transfer_seq, int64_t bytes,
                             int32_t cell) {
  if (!enabled()) return;
  MARS_CHECK_GT(bytes, 0);
  Shard& shard = ShardOf(id);
  common::WriterLock lock(&shard.mu);
  // Single-flight invariant: one carrier per record, ever.
  const auto [it, inserted] = shard.map.emplace(
      id, Entry{Carrier{owner, transfer_seq, cell}, bytes, {}});
  MARS_CHECK(inserted);
  (void)it;
  ++shard.registered;
}

InflightTable::AttachResult InflightTable::Attach(index::RecordId id,
                                                  int32_t follower,
                                                  int32_t follower_cell) {
  AttachResult result;
  if (!enabled()) return result;
  Shard& shard = ShardOf(id);
  common::WriterLock lock(&shard.mu);
  const auto it = shard.map.find(id);
  if (it == shard.map.end()) return result;  // kNotInflight
  Entry& entry = it->second;
  if (entry.carrier.cell != follower_cell) {
    // The payload rides another cell's radio: no shared transfer to join.
    ++shard.refused;
    ++shard.cross_cell_refused;
    result.outcome = AttachOutcome::kRefused;
    result.carrier = entry.carrier;
    result.bytes = entry.bytes;
    return result;
  }
  if (options_.max_waiters_per_entry > 0 &&
      static_cast<int32_t>(entry.waiters.size()) >=
          options_.max_waiters_per_entry) {
    ++shard.refused;
    result.outcome = AttachOutcome::kRefused;
    result.carrier = entry.carrier;
    result.bytes = entry.bytes;
    return result;
  }
  entry.waiters.push_back(follower);
  ++shard.attached;
  result.outcome = AttachOutcome::kAttached;
  result.carrier = entry.carrier;
  result.bytes = entry.bytes;
  return result;
}

int64_t InflightTable::OnTransferComplete(int32_t owner,
                                          int64_t transfer_seq,
                                          int32_t cell) {
  if (!enabled()) return 0;
  const Carrier carrier{owner, transfer_seq, cell};
  int64_t removed = 0;
  for (const auto& shard : shards_) {
    common::WriterLock lock(&shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->second.carrier == carrier) {
        it = shard->map.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

std::vector<InflightTable::Stranded> InflightTable::CancelClient(
    int32_t client, int32_t cell) {
  std::vector<Stranded> stranded;
  if (!enabled()) return stranded;
  for (const auto& shard : shards_) {
    common::WriterLock lock(&shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->second.carrier.owner == client &&
          (cell < 0 || it->second.carrier.cell == cell)) {
        for (const int32_t waiter : it->second.waiters) {
          stranded.push_back(Stranded{it->first, waiter, it->second.bytes,
                                      it->second.carrier});
        }
        it = shard->map.erase(it);
        ++shard->cancelled;
      } else {
        ++it;
      }
    }
  }
  // Per-record waiter order is attach order; records sort ascending so
  // the caller's re-issue sequence is deterministic.
  std::stable_sort(stranded.begin(), stranded.end(),
                   [](const Stranded& a, const Stranded& b) {
                     return a.record < b.record;
                   });
  return stranded;
}

int64_t InflightTable::entries() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += static_cast<int64_t>(shard->map.size());
  }
  return n;
}

int64_t InflightTable::total_registered() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += shard->registered;
  }
  return n;
}

int64_t InflightTable::total_attached() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += shard->attached;
  }
  return n;
}

int64_t InflightTable::total_refused() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += shard->refused;
  }
  return n;
}

int64_t InflightTable::total_cancelled() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += shard->cancelled;
  }
  return n;
}

int64_t InflightTable::total_cross_cell_refused() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    common::ReaderLock lock(&shard->mu);
    n += shard->cross_cell_refused;
  }
  return n;
}

std::vector<int32_t> InflightTable::WaitersOf(index::RecordId id) const {
  if (!enabled()) return {};
  const Shard& shard = ShardOf(id);
  common::ReaderLock lock(&shard.mu);
  const auto it = shard.map.find(id);
  if (it == shard.map.end()) return {};
  return it->second.waiters;
}

}  // namespace mars::server
