#ifndef MARS_SERVER_HOT_CACHE_H_
#define MARS_SERVER_HOT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "index/record.h"

namespace mars::server {

// Server-side shared cache of hot wire encodings: the serialized bytes of
// records recently sent to *any* client. Concurrent clients touring the
// same district request largely overlapping record sets; encoding each
// record once and replaying the bytes for the next client short-circuits
// the per-response serialization work.
//
// The cache is sharded by record id, each shard an LRU over its byte
// budget behind its own reader/writer mutex. It is built for the fleet
// engine's deterministic two-phase tick:
//
//   * During the parallel read phase, workers call only const Lookup(),
//     which takes a shard's reader lock and mutates nothing — not even
//     LRU recency — so hit/miss outcomes depend only on the cache state
//     frozen at the tick boundary, never on worker interleaving.
//   * During the serial commit phase, the engine applies Touch() (recency
//     for hits) and Insert() (encodings for misses) in client-id order,
//     so the cache contents evolve identically at any worker count.
//
// Used outside that protocol, the locking still makes every method safe
// to call concurrently; only the determinism guarantee needs the
// phase discipline.
class HotRecordCache {
 public:
  // `budget_bytes` caps the summed encoded payload across all shards
  // (split evenly); 0 disables the cache (every Lookup misses, Insert is
  // a no-op).
  explicit HotRecordCache(int64_t budget_bytes, int32_t shards = 8);

  HotRecordCache(const HotRecordCache&) = delete;
  HotRecordCache& operator=(const HotRecordCache&) = delete;

  // Encoded size of `id`'s cached payload, or -1 on a miss. Read-only:
  // recency is NOT updated (see the phase protocol above).
  int64_t Lookup(index::RecordId id) const;

  // Marks `id` most-recently-used. No-op when the entry was evicted
  // between the lookup and the commit.
  void Touch(index::RecordId id);

  // Installs the encoding of `id`, evicting least-recently-used entries
  // while the shard is over budget. An entry already present (e.g.
  // inserted for an earlier client in the same commit phase) is touched
  // instead.
  void Insert(index::RecordId id, std::vector<uint8_t> encoded);

  // Observability.
  int64_t size_bytes() const;
  int64_t entries() const;
  int64_t evictions() const;
  bool enabled() const { return budget_bytes_ > 0; }

  // Per-shard counter snapshot, indexed by shard. Hits/misses count
  // Lookup outcomes (a disabled cache counts nothing); evictions count
  // Insert-driven LRU removals.
  struct ShardStats {
    int32_t shard = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
    int64_t bytes = 0;
  };
  std::vector<ShardStats> Stats() const;

 private:
  struct Entry {
    std::vector<uint8_t> encoded;
    std::list<index::RecordId>::iterator lru_pos;
  };

  struct Shard {
    mutable common::SharedMutex mu;
    std::unordered_map<index::RecordId, Entry> map MARS_GUARDED_BY(mu);
    // Front = most recent, back = eviction candidate.
    std::list<index::RecordId> lru MARS_GUARDED_BY(mu);
    int64_t bytes MARS_GUARDED_BY(mu) = 0;
    int64_t evictions MARS_GUARDED_BY(mu) = 0;
    // Lookup outcome counters: bumped under the reader lock from the
    // fleet's parallel phase, hence relaxed atomics rather than
    // MARS_GUARDED_BY fields.
    mutable std::atomic<int64_t> hits{0};
    mutable std::atomic<int64_t> misses{0};
  };

  Shard& ShardOf(index::RecordId id) {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }
  const Shard& ShardOf(index::RecordId id) const {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }

  int64_t budget_bytes_;
  int64_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mars::server

#endif  // MARS_SERVER_HOT_CACHE_H_
