#ifndef MARS_SERVER_SERVER_H_
#define MARS_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "geometry/box.h"
#include "geometry/vec.h"
#include "index/access.h"
#include "index/record.h"
#include "index/rtree.h"
#include "index/sharded_index.h"
#include "server/motion_interest.h"
#include "server/object_db.h"
#include "server/rebalancer.h"
#include "storage/storage_manager.h"
#include "wavelet/multires_mesh.h"

namespace mars::server {

// One sub-query of a retrieval batch: a region of interest plus the band of
// coefficient values needed, Q(R, w_max, w_min) in the paper's notation.
struct SubQuery {
  geometry::Box2 region;
  double w_min = 0.0;
  double w_max = 1.0;
};

// Per-client server-side session: the records the server believes the
// client holds, so it can filter out data already available there (paper
// Sec. IV: "the server filters the results to avoid transmitting the data
// that is already available at the client").
//
// Delivery is two-phase to survive a lossy link: Execute() records the
// records of a response as *pending*; they are only committed to
// `delivered` by the client's next request, which piggybacks an ack
// (AckPending), or discarded when the exchange failed (RollbackPending).
// Without this, a response lost in flight would leave the server believing
// the client holds data it never received — a permanent desync. Both sets
// participate in duplicate filtering, so back-to-back queries behave as
// before on a healthy link.
struct ClientSession {
  // Committed: acknowledged by the client.
  std::unordered_set<index::RecordId> delivered;
  // Sent in the latest response(s) but not yet acknowledged.
  std::unordered_set<index::RecordId> pending;
  // Protocol counters (observability / tests).
  int64_t acked_batches = 0;
  int64_t rolled_back_batches = 0;
  // Admission outcomes recorded against this client by the cell's
  // admission controller (server/admission.h): exchanges the server told
  // the client to defer, and bulk requests it shed under overload.
  int64_t deferred_requests = 0;
  int64_t shed_requests = 0;
};

// Commits the session's pending deliveries: the client's next request
// carries an ack for everything it installed from the previous response.
void AckPending(ClientSession* session);

// Discards the pending deliveries after a failed exchange, so the records
// are re-sent when next queried.
void RollbackPending(ClientSession* session);

// Result of executing one batch of sub-queries.
struct QueryResult {
  // Newly delivered records (duplicates within the batch and against the
  // session are filtered out).
  std::vector<index::RecordId> records;
  // The same records grouped by the sub-query that produced them (a record
  // matching several sub-queries is delivered with the first), so the
  // client can attribute bytes to buffer blocks.
  std::vector<std::vector<index::RecordId>> per_query;
  // Wire bytes of each per_query group.
  std::vector<int64_t> per_query_bytes;
  // Wire size of the response (records + per-sub-query headers).
  int64_t response_bytes = 0;
  // Wire size of the request (per-sub-query headers).
  int64_t request_bytes = 0;
  // Index node accesses spent on this batch.
  int64_t node_accesses = 0;
  // Records the index returned but the session filter dropped.
  int64_t filtered_duplicates = 0;
};

// The data server: object database + one coefficient access method (always
// a ShardedCoefficientIndex — at the default K = 1 it is a strict
// passthrough around the requested inner tree), plus an object-granularity
// index for the naive full-resolution path.
//
// Thread safety: every const method is safe to call from many threads
// concurrently *provided each thread passes its own session object* — the
// fleet engine's striped SessionTable guarantees exactly that. Index
// access counters are relaxed atomics; per-exchange accounting uses
// per-call counts, so concurrent clients never see each other's I/O.
// ResetStats, AddObject and CommitIngest are NOT thread-safe and must only
// run while no queries are in flight (the fleet's serial phase): ingest
// appends to the shared record table that Execute reads.
class Server {
 public:
  enum class IndexKind {
    kSupportRegion,  // the paper's motion-aware index (Sec. VI-B)
    kNaivePoint,     // the straightforward point index (Sec. VI)
  };

  struct Options {
    IndexKind kind = IndexKind::kSupportRegion;
    index::RTreeOptions rtree;
    // Ground-plane shard count of the coefficient index. 1 (default)
    // behaves bit-identically to the historical single-tree server.
    int32_t shards = 1;
    // Worker budget for parallel per-shard query fan-out (1 = sequential;
    // results are identical either way).
    int32_t fanout_workers = 1;
    // Index node storage (memory passthrough by default, or page-based
    // disk storage behind per-shard buffer pools; see
    // index::ShardedIndexOptions::storage).
    storage::StorageConfig storage = {};
    // Load-adaptive shard rebalancing (off by default — a strict
    // passthrough; see server/rebalancer.h for the trigger policy).
    RebalanceOptions rebalance = {};
  };

  // Read-only server: `db` must be finalized and must outlive the server.
  Server(const ObjectDatabase* db, Options options);

  // Ingest-capable server: additionally accepts AddObject/CommitIngest,
  // which append to `db`.
  Server(ObjectDatabase* db, Options options);

  // Legacy construction, equivalent to Options{kind, options}.
  Server(const ObjectDatabase* db, IndexKind kind,
         index::RTreeOptions options = index::RTreeOptions());

  // Executes a batch of sub-queries as one exchange, filtering against
  // `session` (committed and pending records). The newly selected records
  // are added to the session's *pending* set; the caller acks them
  // (AckPending) once the client confirms installation, or rolls them
  // back (RollbackPending) when the exchange fails.
  QueryResult Execute(const std::vector<SubQuery>& queries,
                      ClientSession* session) const;

  // Naive path: full-resolution object retrieval for every object whose
  // MBR intersects `region`. `delivered_objects` is the session state.
  struct ObjectQueryResult {
    std::vector<int32_t> objects;      // newly delivered object ids
    std::vector<int32_t> all_objects;  // every object the window intersects
    int64_t response_bytes = 0;
    int64_t request_bytes = 0;
    int64_t node_accesses = 0;
  };
  ObjectQueryResult ExecuteObjectQuery(
      const geometry::Box2& region,
      std::unordered_set<int32_t>* delivered_objects) const;

  // Lists the objects whose ground-plane MBR intersects `region` plus the
  // index node accesses spent, without any delivery bookkeeping.
  struct ObjectListing {
    std::vector<int32_t> objects;
    int64_t node_accesses = 0;
  };
  ObjectListing ListObjects(const geometry::Box2& region) const;

  // --- Online ingest (serial phase only; requires the ingest ctor) --------

  // Adds an object to the database and stages its records into the
  // coefficient index. The object stays invisible to every query path
  // until CommitIngest() swaps it in. Returns the object id.
  int32_t AddObject(wavelet::MultiResMesh object);

  // Commits everything staged since the last commit: epoch-rebuilds the
  // affected coefficient shards (build-then-swap; untouched shards keep
  // their trees and counters) and inserts the new objects into the
  // object-granularity index. Returns the number of coefficient records
  // folded in.
  int64_t CommitIngest();

  bool ingest_enabled() const { return mutable_db_ != nullptr; }
  int64_t staged_records() const { return coeff_index_->staged_records(); }
  int64_t ingest_epoch() const { return coeff_index_->epoch(); }

  // --- Observability ------------------------------------------------------

  const ObjectDatabase& db() const { return *db_; }
  const index::CoefficientIndex& coefficient_index() const {
    return *coeff_index_;
  }
  const index::ShardedCoefficientIndex& sharded_index() const {
    return *coeff_index_;
  }
  int32_t shard_count() const { return coeff_index_->shard_count(); }

  // --- Storage layer (disk mode) ------------------------------------------

  bool disk_store() const { return coeff_index_->disk_store(); }
  // Shards restored from the persisted page file instead of rebuilt.
  int32_t restored_shards() const { return coeff_index_->restored_shards(); }
  // Per-shard buffer-pool counters (empty in memory mode).
  std::vector<index::ShardedCoefficientIndex::ShardPoolStats> PoolStats()
      const {
    return coeff_index_->PoolStats();
  }

  // Motion-aware pool interest: active only with `--store disk --evict
  // motion`. The serving path holds a const Server, so these are const
  // with internally-locked mutable state; call them from serial phases
  // only (the fleet's commit phase or the single-client frame loop).
  bool motion_interest_enabled() const { return interest_ != nullptr; }
  // Feeds a client's position into its server-side motion predictor.
  void ObserveClientMotion(int32_t client_id,
                           const geometry::Vec2& position) const;
  // Recomputes the fleet-wide visit-probability field and installs it on
  // every shard's buffer pool.
  void RefreshPoolInterest() const;

  // Background pool warming (`--store disk --evict motion --warm on`):
  // speculative page reads ahead of the fleet's predicted motion. Serial
  // phases only, as a pair per tick — WarmPoolsJoin FIRST (installs the
  // previous tick's reads before anything touches the raw page stores),
  // WarmPoolsDispatch LAST (ranks against the just-refreshed interest
  // field and the settled shard layout). See storage/pool_warmer.h.
  bool pool_warming_enabled() const {
    return coeff_index_->warming_enabled();
  }
  void WarmPoolsJoin() const { coeff_index_->WarmJoin(); }
  void WarmPoolsDispatch() const { coeff_index_->WarmDispatch(); }

  // --- Load-adaptive shard rebalancing ------------------------------------

  // Active only with Options::rebalance.enabled. Const like the
  // motion-interest hooks (the serving path holds a const Server), but
  // NOT internally locked: the rebalancer drives the index's
  // single-writer split/merge surface, so TickRebalancer must only run
  // in serial phases — exactly where CommitIngest may.
  bool rebalance_enabled() const { return rebalancer_ != nullptr; }
  // Advances the rebalancer one tick; returns the ops it applied (empty
  // on non-policy ticks or when disabled).
  std::vector<RebalanceEvent> TickRebalancer() const;
  // Every rebalance op applied so far.
  std::vector<RebalanceEvent> RebalanceEvents() const;
  // Splits + merges applied to the coefficient index.
  int64_t rebalance_ops() const { return coeff_index_->rebalances(); }
  // Shard slots that still receive records (total minus retired).
  int32_t live_shard_count() const {
    return coeff_index_->live_shard_count();
  }

  // Cumulative I/O counters across both indexes.
  int64_t node_accesses() const;
  void ResetStats();

  // Wire-format constants for request/response framing.
  static constexpr int64_t kRequestHeaderBytes = 32;
  static constexpr int64_t kSubQueryBytes = 48;
  static constexpr int64_t kResponseHeaderBytes = 32;

 private:
  const ObjectDatabase* db_;
  ObjectDatabase* mutable_db_ = nullptr;  // non-null iff ingest-capable
  std::unique_ptr<index::ShardedCoefficientIndex> coeff_index_;
  index::ObjectIndex object_index_;
  // Objects added but not yet committed into the object index.
  std::vector<int32_t> staged_objects_;
  // Set once in the constructor (disk + motion eviction only), then only
  // read — motion_interest_enabled() needs no lock. The tracker's state
  // is mutated through const methods, hence mutable + its own mutex.
  mutable common::Mutex interest_mu_;
  mutable std::unique_ptr<MotionInterestTracker> interest_
      MARS_PT_GUARDED_BY(interest_mu_);
  // Set once in the constructor (rebalance.enabled only), then driven
  // through const TickRebalancer in serial phases — no lock by design
  // (see the method comment).
  mutable std::unique_ptr<ShardRebalancer> rebalancer_;
};

}  // namespace mars::server

#endif  // MARS_SERVER_SERVER_H_
