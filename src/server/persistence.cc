#include "server/persistence.h"

#include <cstdio>
#include <utility>

#include "common/serialize.h"
#include "geometry/vec.h"
#include "mesh/mesh.h"
#include "wavelet/coefficient.h"
#include "wavelet/multires_mesh.h"

namespace mars::server {

namespace {

constexpr uint32_t kMagic = 0x4D415253;  // "MARS"
constexpr uint32_t kVersion = 1;

void WriteVec3(common::ByteWriter& w, const geometry::Vec3& v) {
  w.WriteDouble(v.x);
  w.WriteDouble(v.y);
  w.WriteDouble(v.z);
}

common::Status ReadVec3(common::ByteReader& r, geometry::Vec3* v) {
  MARS_RETURN_IF_ERROR(r.ReadDouble(&v->x));
  MARS_RETURN_IF_ERROR(r.ReadDouble(&v->y));
  return r.ReadDouble(&v->z);
}

void WriteBox3(common::ByteWriter& w, const geometry::Box3& b) {
  for (size_t d = 0; d < 3; ++d) w.WriteDouble(b.lo(d));
  for (size_t d = 0; d < 3; ++d) w.WriteDouble(b.hi(d));
}

common::Status ReadBox3(common::ByteReader& r, geometry::Box3* b) {
  std::array<double, 3> lo, hi;
  for (double& v : lo) MARS_RETURN_IF_ERROR(r.ReadDouble(&v));
  for (double& v : hi) MARS_RETURN_IF_ERROR(r.ReadDouble(&v));
  *b = geometry::Box3(lo, hi);
  return common::OkStatus();
}

void WriteObject(common::ByteWriter& w, const wavelet::MultiResMesh& obj) {
  w.WriteI32(obj.levels());
  const mesh::Mesh& base = obj.base();
  w.WriteVarU64(static_cast<uint64_t>(base.vertex_count()));
  for (const geometry::Vec3& v : base.vertices()) WriteVec3(w, v);
  w.WriteVarU64(static_cast<uint64_t>(base.face_count()));
  for (const mesh::Face& f : base.faces()) {
    w.WriteI32(f[0]);
    w.WriteI32(f[1]);
    w.WriteI32(f[2]);
  }
  w.WriteVarU64(static_cast<uint64_t>(obj.coefficient_count()));
  for (const wavelet::WaveletCoefficient& c : obj.coefficients()) {
    w.WriteI32(c.id);
    w.WriteI32(c.level);
    w.WriteI32(c.vertex);
    w.WriteI32(c.parent_a);
    w.WriteI32(c.parent_b);
    WriteVec3(w, c.detail);
    WriteVec3(w, c.vertex_position);
    w.WriteDouble(c.magnitude);
    w.WriteDouble(c.w);
    WriteBox3(w, c.support_bounds);
  }
}

common::StatusOr<wavelet::MultiResMesh> ReadObject(common::ByteReader& r) {
  int32_t levels = 0;
  MARS_RETURN_IF_ERROR(r.ReadI32(&levels));
  if (levels < 0 || levels > 16) {
    return common::InvalidArgumentError("corrupt object: bad level count");
  }

  uint64_t vertex_count = 0;
  MARS_RETURN_IF_ERROR(r.ReadVarU64(&vertex_count));
  if (vertex_count > r.remaining()) {
    return common::InvalidArgumentError("corrupt object: vertex count");
  }
  std::vector<geometry::Vec3> vertices(vertex_count);
  for (geometry::Vec3& v : vertices) {
    MARS_RETURN_IF_ERROR(ReadVec3(r, &v));
  }

  uint64_t face_count = 0;
  MARS_RETURN_IF_ERROR(r.ReadVarU64(&face_count));
  if (face_count > r.remaining()) {
    return common::InvalidArgumentError("corrupt object: face count");
  }
  std::vector<mesh::Face> faces(face_count);
  for (mesh::Face& f : faces) {
    MARS_RETURN_IF_ERROR(r.ReadI32(&f[0]));
    MARS_RETURN_IF_ERROR(r.ReadI32(&f[1]));
    MARS_RETURN_IF_ERROR(r.ReadI32(&f[2]));
  }
  mesh::Mesh base(std::move(vertices), std::move(faces));
  MARS_RETURN_IF_ERROR(base.Validate());

  uint64_t coeff_count = 0;
  MARS_RETURN_IF_ERROR(r.ReadVarU64(&coeff_count));
  if (coeff_count > r.remaining()) {
    return common::InvalidArgumentError("corrupt object: coeff count");
  }
  std::vector<wavelet::WaveletCoefficient> coefficients(coeff_count);
  for (wavelet::WaveletCoefficient& c : coefficients) {
    MARS_RETURN_IF_ERROR(r.ReadI32(&c.id));
    MARS_RETURN_IF_ERROR(r.ReadI32(&c.level));
    MARS_RETURN_IF_ERROR(r.ReadI32(&c.vertex));
    MARS_RETURN_IF_ERROR(r.ReadI32(&c.parent_a));
    MARS_RETURN_IF_ERROR(r.ReadI32(&c.parent_b));
    MARS_RETURN_IF_ERROR(ReadVec3(r, &c.detail));
    MARS_RETURN_IF_ERROR(ReadVec3(r, &c.vertex_position));
    MARS_RETURN_IF_ERROR(r.ReadDouble(&c.magnitude));
    MARS_RETURN_IF_ERROR(r.ReadDouble(&c.w));
    MARS_RETURN_IF_ERROR(ReadBox3(r, &c.support_bounds));
  }
  return wavelet::MultiResMesh(std::move(base), levels,
                               std::move(coefficients));
}

}  // namespace

std::vector<uint8_t> SerializeDatabase(const ObjectDatabase& db) {
  common::ByteWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteVarU64(static_cast<uint64_t>(db.object_count()));
  for (int32_t i = 0; i < db.object_count(); ++i) {
    WriteObject(w, db.object(i));
  }
  return w.Take();
}

common::StatusOr<ObjectDatabase> DeserializeDatabase(
    const std::vector<uint8_t>& bytes) {
  common::ByteReader r(bytes);
  uint32_t magic = 0, version = 0;
  MARS_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kMagic) {
    return common::InvalidArgumentError("not a MARS database file");
  }
  MARS_RETURN_IF_ERROR(r.ReadU32(&version));
  if (version != kVersion) {
    return common::InvalidArgumentError("unsupported database version " +
                                        std::to_string(version));
  }
  uint64_t object_count = 0;
  MARS_RETURN_IF_ERROR(r.ReadVarU64(&object_count));
  ObjectDatabase db;
  for (uint64_t i = 0; i < object_count; ++i) {
    MARS_ASSIGN_OR_RETURN(wavelet::MultiResMesh obj, ReadObject(r));
    db.AddObject(std::move(obj));
  }
  if (!r.AtEnd()) {
    return common::InvalidArgumentError("trailing bytes after database");
  }
  db.FinalizeRecords();
  return db;
}

common::Status SaveDatabase(const ObjectDatabase& db,
                            const std::string& path) {
  const std::vector<uint8_t> bytes = SerializeDatabase(db);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return common::InternalError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_result = std::fclose(f);
  if (written != bytes.size() || close_result != 0) {
    return common::InternalError("short write to " + path);
  }
  return common::OkStatus();
}

common::StatusOr<ObjectDatabase> LoadDatabase(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::NotFoundError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return common::InternalError("cannot stat " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return common::InternalError("short read from " + path);
  }
  return DeserializeDatabase(bytes);
}

}  // namespace mars::server
