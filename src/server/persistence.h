#ifndef MARS_SERVER_PERSISTENCE_H_
#define MARS_SERVER_PERSISTENCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "server/object_db.h"

namespace mars::server {

// Binary persistence for object databases: generating and decomposing a
// paper-scale scene takes seconds, so tools can generate once and reload.
// The format stores the multiresolution objects (base meshes plus all
// coefficient fields); the record table is re-derived on load.

// Serializes a finalized database into bytes.
std::vector<uint8_t> SerializeDatabase(const ObjectDatabase& db);

// Parses bytes produced by SerializeDatabase; returns a finalized
// database. Fails with a descriptive status on truncation, bad magic, or
// version mismatch.
common::StatusOr<ObjectDatabase> DeserializeDatabase(
    const std::vector<uint8_t>& bytes);

// File convenience wrappers.
common::Status SaveDatabase(const ObjectDatabase& db,
                            const std::string& path);
common::StatusOr<ObjectDatabase> LoadDatabase(const std::string& path);

}  // namespace mars::server

#endif  // MARS_SERVER_PERSISTENCE_H_
