#ifndef MARS_SERVER_OBJECT_DB_H_
#define MARS_SERVER_OBJECT_DB_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "index/record.h"
#include "wavelet/multires_mesh.h"

namespace mars::server {

// Server-side store of wavelet-decomposed 3D objects and the flat record
// table the access methods index: one base-mesh record per object plus one
// record per wavelet coefficient.
class ObjectDatabase {
 public:
  ObjectDatabase() = default;

  ObjectDatabase(const ObjectDatabase&) = delete;
  ObjectDatabase& operator=(const ObjectDatabase&) = delete;
  ObjectDatabase(ObjectDatabase&&) = default;
  ObjectDatabase& operator=(ObjectDatabase&&) = default;

  // Adds an object (world coordinates already baked in); returns its id.
  // Before FinalizeRecords() this only stores the mesh; after it (online
  // ingest) the object's records are appended to the table immediately, so
  // callers can diff records().size() around the call to learn the new
  // record-id range. Not safe against concurrent readers of records().
  int32_t AddObject(wavelet::MultiResMesh object);

  // Builds the record table. Call once, after the last bulk AddObject().
  void FinalizeRecords();
  bool finalized() const { return finalized_; }

  int32_t object_count() const {
    return static_cast<int32_t>(objects_.size());
  }
  const wavelet::MultiResMesh& object(int32_t id) const {
    return objects_[id];
  }

  const std::vector<index::CoeffRecord>& records() const { return records_; }
  const index::CoeffRecord& record(index::RecordId id) const {
    return records_[id];
  }

  // World bounds per object (base mesh + support regions).
  const std::vector<geometry::Box3>& object_bounds() const {
    return object_bounds_;
  }

  // Total wire bytes of every record — the "data set size" knob of the
  // experiments (Sec. VII-A).
  int64_t total_bytes() const { return total_bytes_; }

  // Full-resolution wire bytes of one object (base + all coefficients);
  // what the naive system transfers per object.
  int64_t ObjectFullBytes(int32_t object_id) const {
    return object_full_bytes_[object_id];
  }

 private:
  // Emits the base-mesh and coefficient records of one object into the
  // flat table, updating bounds and byte accounting.
  void AppendObjectRecords(int32_t obj_id);

  std::vector<wavelet::MultiResMesh> objects_;
  std::vector<index::CoeffRecord> records_;
  std::vector<geometry::Box3> object_bounds_;
  std::vector<int64_t> object_full_bytes_;
  int64_t total_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace mars::server

#endif  // MARS_SERVER_OBJECT_DB_H_
