#include "server/admission.h"

#include "common/logging.h"

namespace mars::server {

AdmissionController::AdmissionController(Options options)
    : options_(options) {
  MARS_CHECK_GE(options.max_client_backlog_bytes, 0);
  MARS_CHECK_GT(options.max_client_queue_depth, 0);
  MARS_CHECK_GE(options.overload_backlog_bytes, 0);
  MARS_CHECK_GE(options.shed_backlog_bytes, options.overload_backlog_bytes);
  MARS_CHECK_GE(options.defer_backoff_seconds, 0.0);
  MARS_CHECK_GT(options.max_defers, 0);
}

AdmissionController::Verdict AdmissionController::Decide(
    const Request& request) const {
  Verdict verdict;
  if (!options_.enabled) return verdict;

  const auto defer = [&]() -> Verdict {
    // Linear backoff: each further deferral pushes the retry out.
    return Verdict{Decision::kDefer,
                   options_.defer_backoff_seconds *
                       static_cast<double>(1 + request.prior_defers)};
  };

  // Bounded deferral: a request cannot wait forever. Demand traffic is
  // forced through; bulk traffic is shed.
  if (request.prior_defers >= options_.max_defers) {
    if (request.deferrable) return Verdict{Decision::kShed, 0.0};
    return verdict;  // admit
  }

  // Per-client inflight bounds: a client over its budget adds nothing
  // until the cell drains its queue.
  if (request.client_queue_depth >= options_.max_client_queue_depth) {
    return defer();
  }
  if (request.bytes > 0 &&
      request.client_backlog_bytes + request.bytes >
          options_.max_client_backlog_bytes) {
    return defer();
  }

  // Cell-wide overload: deferrable bulk yields first, and is rejected
  // outright past the shed watermark.
  if (request.deferrable) {
    if (request.cell_backlog_bytes >= options_.shed_backlog_bytes) {
      return Verdict{Decision::kShed, 0.0};
    }
    if (request.cell_backlog_bytes >= options_.overload_backlog_bytes) {
      return defer();
    }
  }
  return verdict;  // admit
}

void AdmissionController::Record(const Request& request,
                                 const Verdict& verdict) {
  switch (verdict.decision) {
    case Decision::kAdmit:
      ++admitted_requests_;
      admitted_bytes_ += request.bytes;
      break;
    case Decision::kDefer:
      ++deferred_requests_;
      break;
    case Decision::kShed:
      ++shed_requests_;
      shed_bytes_ += request.bytes;
      break;
  }
}

}  // namespace mars::server
