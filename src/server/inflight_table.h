#ifndef MARS_SERVER_INFLIGHT_TABLE_H_
#define MARS_SERVER_INFLIGHT_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "index/record.h"

namespace mars::server {

// Cross-client request coalescing: a registry of record payloads currently
// in flight on the shared cell. The first client to request a record
// performs the index walk and the wire encoding (reusing HotRecordCache on
// a miss) and becomes the entry's *owner*; its cell transfer is the
// entry's *carrier*. Any client requesting the same record while the
// carrier is still draining *attaches* as a waiter: it receives the
// identical payload bytes from the shared copy, and the cell is charged
// only a small per-attach header instead of the payload — the single-copy
// delivery that makes co-located fleets affordable.
//
// Like HotRecordCache, the table is sharded by record id and built for the
// fleet engine's deterministic two-phase tick:
//
//   * During the parallel read phase, workers call only const Probe(),
//     which takes a shard's reader lock and mutates nothing, so the
//     inflight/absent classification of every record depends only on the
//     table state frozen at the tick boundary, never on worker
//     interleaving.
//   * During the serial commit phase, the engine calls Register() /
//     Attach() in client-id order (so the lowest-id requester of a tick
//     owns the encoding and later ids attach), and OnTransferComplete()
//     as carriers drain, in the cell's deterministic completion order.
//
// Used outside that protocol, the locking still makes every method safe to
// call concurrently; only the determinism guarantee needs the phase
// discipline.
class InflightTable {
 public:
  struct Options {
    // Off by default: a disabled table probes as empty and registers
    // nothing, so the engine's submission path is a strict passthrough.
    bool enabled = false;
    // Wire bytes charged to a follower per distinct carrier it attaches
    // to (the "also deliver this transfer to me" control frame).
    int64_t attach_header_bytes = 64;
    // Attach-policy knob: cap on waiters per entry (0 = unbounded). A
    // full entry refuses further attaches — the next requester pays full
    // freight for its copy, bounding how many sessions one carrier
    // failure could strand.
    int32_t max_waiters_per_entry = 0;
    int32_t shards = 8;
  };

  // The transfer carrying an entry's payload: the owning client, that
  // client's per-submission sequence number, and the cell the transfer
  // rides on. Sequence numbers are per-(cell, client), so the cell is
  // part of the identity in a multi-cell topology; single-cell callers
  // leave it 0.
  struct Carrier {
    int32_t owner = 0;
    int64_t transfer_seq = 0;
    int32_t cell = 0;
    friend bool operator==(const Carrier& a, const Carrier& b) {
      return a.owner == b.owner && a.transfer_seq == b.transfer_seq &&
             a.cell == b.cell;
    }
  };

  enum class AttachOutcome {
    kAttached,     // rides `carrier`'s transfer; payload not re-sent
    kNotInflight,  // no entry: the caller owns (and must register) it
    kRefused,      // entry full: in flight, but the caller pays in full
  };
  struct AttachResult {
    AttachOutcome outcome = AttachOutcome::kNotInflight;
    Carrier carrier;
    int64_t bytes = 0;
  };

  InflightTable();  // default (disabled) options
  explicit InflightTable(Options options);

  InflightTable(const InflightTable&) = delete;
  InflightTable& operator=(const InflightTable&) = delete;

  bool enabled() const { return options_.enabled; }
  const Options& options() const { return options_; }

  // Payload bytes of `id`'s inflight copy, or -1 when nothing is in
  // flight. Read-only (see the phase protocol above).
  int64_t Probe(index::RecordId id) const;

  // Registers `id` as carried by (owner, transfer_seq) on `cell` with
  // `bytes` of payload. Single-flight: a record may have at most one
  // carrier, so registering an id that is already in flight is a
  // programming error — callers must Attach() instead (a kRefused attach
  // pays full freight but still must not re-register).
  void Register(index::RecordId id, int32_t owner, int64_t transfer_seq,
                int64_t bytes, int32_t cell = 0);

  // Attaches `follower` (served on `follower_cell`) to `id`'s entry;
  // waiters are recorded in attach order. A carrier on a *different* cell
  // refuses the attach: single-copy delivery is a property of sharing one
  // radio transfer, so a cross-cell requester pays full freight (and must
  // not re-register — the single-flight invariant spans cells). See
  // AttachOutcome for the three possible results.
  AttachResult Attach(index::RecordId id, int32_t follower,
                      int32_t follower_cell = 0);

  // Removes every entry carried by (owner, transfer_seq) on `cell` — the
  // payloads have been delivered to the owner and all attached waiters.
  // Returns the number of entries removed.
  int64_t OnTransferComplete(int32_t owner, int64_t transfer_seq,
                             int32_t cell = 0);

  // Cancels every entry owned by `client` on `cell` (-1 = every cell:
  // the client timed out / disconnected; a specific cell: the client was
  // handed over while that cell was down, so only the transfers stranded
  // *there* die — carriers it still owns elsewhere keep draining).
  // Waiters of the cancelled entries are stranded: their shared copy
  // will never arrive, so the caller must re-issue their requests.
  // Returned in (record id, attach) order, with the payload bytes and
  // the dead carrier so the caller can re-issue deterministically.
  struct Stranded {
    index::RecordId record = 0;
    int32_t waiter = 0;
    int64_t bytes = 0;
    Carrier carrier;
  };
  std::vector<Stranded> CancelClient(int32_t client, int32_t cell = -1);

  // Observability.
  int64_t entries() const;
  int64_t total_registered() const;
  int64_t total_attached() const;
  int64_t total_refused() const;
  int64_t total_cancelled() const;
  // Attaches refused because the carrier rides another cell.
  int64_t total_cross_cell_refused() const;
  // Waiters currently attached to `id`, in attach order (tests).
  std::vector<int32_t> WaitersOf(index::RecordId id) const;

 private:
  struct Entry {
    Carrier carrier;
    int64_t bytes = 0;
    std::vector<int32_t> waiters;
  };

  struct Shard {
    mutable common::SharedMutex mu;
    std::unordered_map<index::RecordId, Entry> map MARS_GUARDED_BY(mu);
    int64_t registered MARS_GUARDED_BY(mu) = 0;
    int64_t attached MARS_GUARDED_BY(mu) = 0;
    int64_t refused MARS_GUARDED_BY(mu) = 0;
    int64_t cancelled MARS_GUARDED_BY(mu) = 0;
    int64_t cross_cell_refused MARS_GUARDED_BY(mu) = 0;
  };

  Shard& ShardOf(index::RecordId id) {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }
  const Shard& ShardOf(index::RecordId id) const {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mars::server

#endif  // MARS_SERVER_INFLIGHT_TABLE_H_
