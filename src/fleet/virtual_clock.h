#ifndef MARS_FLEET_VIRTUAL_CLOCK_H_
#define MARS_FLEET_VIRTUAL_CLOCK_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "net/sim_clock.h"

namespace mars::fleet {

// Deterministic virtual-time event scheduler for the fleet engine,
// building on net::SimClock's integer-microsecond view. Events are
// (tick, client-id) pairs in a min-heap ordered by tick first and client
// id second, so the set of clients due at an instant — and the order the
// serial commit phase walks them in — is a pure function of the schedule,
// never of host thread timing. This is what makes a fleet run replay
// bit-identically at any worker count.
class VirtualScheduler {
 public:
  // Schedules `client_id` to act at absolute time `at_micros`.
  void Schedule(int64_t at_micros, int32_t client_id) {
    heap_.push(Event{at_micros, client_id});
  }

  bool empty() const { return heap_.empty(); }

  // Earliest scheduled tick. Requires !empty().
  int64_t NextMicros() const {
    MARS_CHECK(!heap_.empty());
    return heap_.top().at_micros;
  }

  // Pops every event scheduled exactly at `at_micros`; returns the client
  // ids in ascending order (the heap tie-break).
  std::vector<int32_t> PopDue(int64_t at_micros) {
    std::vector<int32_t> due;
    while (!heap_.empty() && heap_.top().at_micros == at_micros) {
      due.push_back(heap_.top().client_id);
      heap_.pop();
    }
    return due;
  }

  // The engine's virtual wall clock, advanced tick by tick.
  net::SimClock& clock() { return clock_; }
  const net::SimClock& clock() const { return clock_; }

 private:
  struct Event {
    int64_t at_micros;
    int32_t client_id;
    // Reversed for a min-heap on std::priority_queue's max-heap.
    bool operator<(const Event& other) const {
      if (at_micros != other.at_micros) return at_micros > other.at_micros;
      return client_id > other.client_id;
    }
  };

  std::priority_queue<Event> heap_;
  net::SimClock clock_;
};

}  // namespace mars::fleet

#endif  // MARS_FLEET_VIRTUAL_CLOCK_H_
