#include "fleet/fleet_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "fleet/virtual_clock.h"
#include "server/wire_codec.h"

namespace mars::fleet {

// All per-client simulation state. During phase A exactly one worker
// touches a given ClientState; the shared Server/ObjectDatabase are only
// read, and the hot cache is only probed through const Lookup. The tick
// scratch fields carry phase A's shared-side effects into phase B.
struct FleetEngine::ClientState {
  ClientSpec spec;
  std::vector<workload::TourPoint> tour;
  std::unique_ptr<net::FaultSchedule> fault;
  std::unique_ptr<net::SimulatedLink> link;  // private bearer
  std::unique_ptr<client::StreamingClient> streaming;
  std::unique_ptr<client::BufferedClient> buffered;
  std::unique_ptr<client::NaiveObjectClient> naive;
  // Adaptive resolution ladder (null with ABR off, and for naive clients
  // — whole-object retrieval has no resolution axis). The client reads it
  // through the const ResolutionPolicy interface during phase A; the
  // engine's serial phases feed it backpressure and delivery samples.
  std::unique_ptr<qos::AdaptiveLadderPolicy> abr;

  int32_t next_frame = 0;
  core::RunMetrics metrics;
  int64_t stale_run = 0;  // streaming consecutive-failure tracking
  int64_t hot_hits = 0;
  int64_t hot_misses = 0;
  int64_t hot_bytes_saved = 0;

  // Coalescing lifetime counters (stay zero with coalescing off, except
  // encode_calls, which counts in both modes).
  int64_t coalesce_hits = 0;
  int64_t coalesce_attaches = 0;
  int64_t coalesce_bytes_saved = 0;
  int64_t encode_calls = 0;
  int64_t cell_bytes = 0;
  // Per-cell submission sequence cursor (size K; index = cell id).
  std::vector<int64_t> next_submit_seq;

  // Multi-cell routing state (cell 0 / zero at K = 1).
  int32_t cell = 0;       // cell currently serving this client
  int32_t home_cell = 0;  // cell covering the tour's first point
  int64_t handovers = 0;
  int64_t failovers = 0;
  // Consecutive routing rounds the covering cell has differed from the
  // serving cell (the ping-pong hysteresis dwell counter).
  int32_t away_rounds = 0;

  // A submitted-but-unresolved coalesced exchange: completes when its own
  // transfer and every attached carrier have drained.
  struct PendingExchange {
    int64_t seq = 0;
    int32_t cell = 0;  // cell the own transfer currently rides on
    double submit_seconds = 0.0;
    double own_finish = -1.0;  // < 0 while the own transfer is in flight
    std::vector<server::InflightTable::Carrier> carriers;
  };
  std::deque<PendingExchange> pending;  // engine thread only, FIFO by seq

  // Admission control: times the *current* frame has been deferred, and
  // the last admitted exchange's wire bytes — the size estimate the next
  // admission decision is made against (0 until the first exchange).
  int32_t consecutive_defers = 0;
  int64_t last_wire_bytes = 0;

  // Tick scratch: written by this client's phase-A task, consumed by the
  // serial phase-B commit.
  int64_t wire_bytes = 0;  // successful exchanges' bytes for the cell
  double tick_speed = 0.0;
  server::AdmissionController::Request adm_request;
  server::AdmissionController::Verdict adm_verdict;
  std::vector<index::RecordId> hot_touch;
  std::vector<std::pair<index::RecordId, std::vector<uint8_t>>> hot_insert;
  // Coalescing tick scratch: this tick's delivered records with their
  // payload byte counts, the records missed by both the inflight table
  // and the cache, and the subset this client claimed for encoding.
  std::vector<std::pair<index::RecordId, int64_t>> tick_records;
  std::vector<index::RecordId> encode_candidates;
  std::vector<index::RecordId> claimed;
};

FleetEngine::FleetEngine(const core::System& system, FleetOptions options,
                         std::vector<ClientSpec> specs)
    : system_(system),
      options_(options),
      hot_cache_(options.hot_cache_bytes, options.hot_cache_shards),
      inflight_(options.coalesce) {
  // Coalesced delivery resolution needs the cell's per-client FIFO
  // completion order, which only WFQ provides (equal share drains every
  // transfer simultaneously).
  if (inflight_.enabled()) {
    MARS_CHECK(options_.cell.discipline ==
               net::SharedMediumLink::Discipline::kWeightedFair);
  }
  MARS_CHECK_GE(options_.cells, 1);
  const int32_t num_cells = options_.cells;
  topology_ = net::CellTopology::Build(system_.space(), num_cells);
  admission_.reserve(static_cast<size_t>(num_cells));
  cell_faults_.reserve(static_cast<size_t>(num_cells));
  cells_.reserve(static_cast<size_t>(num_cells));
  cell_stats_.resize(static_cast<size_t>(num_cells));
  for (int32_t k = 0; k < num_cells; ++k) {
    // Cell 0 takes the configured options verbatim (the K = 1
    // passthrough); later cells decorrelate their stochastic streams by
    // mixing the cell id into the seeds.
    net::FaultSchedule::Options fault_opts = options_.cell_fault;
    if (k > 0) {
      fault_opts.seed +=
          0x9E3779B97F4A7C15ull * static_cast<uint64_t>(k);
    }
    auto fault = std::make_unique<net::FaultSchedule>(fault_opts);
    for (const FleetOptions::CellOutage& outage : options_.cell_outages) {
      if (outage.cell == k) fault->InjectOutage(outage.start, outage.duration);
    }
    net::SharedMediumLink::Options link_opts = options_.cell;
    if (k > 0) {
      link_opts.loss_seed +=
          0xC2B2AE3D27D4EB4Full * static_cast<uint64_t>(k);
    }
    auto link = std::make_unique<net::SharedMediumLink>(link_opts);
    if (fault->enabled()) link->AttachFaultSchedule(fault.get());
    admission_.push_back(
        std::make_unique<server::AdmissionController>(options_.admission));
    cell_faults_.push_back(std::move(fault));
    cells_.push_back(std::move(link));
  }

  std::sort(specs.begin(), specs.end(),
            [](const ClientSpec& a, const ClientSpec& b) {
              return a.id < b.id;
            });
  states_.reserve(specs.size());
  by_id_.reserve(specs.size());
  for (const ClientSpec& spec : specs) {
    MARS_CHECK(states_.empty() || states_.back()->spec.id < spec.id);
    // Weights are registered everywhere: a client may be served by any
    // cell over its tour, and registration does not activate it.
    for (const auto& link : cells_) link->SetClientWeight(spec.id, spec.weight);
    states_.push_back(BuildState(spec));
    ClientState* state = states_.back().get();
    state->next_submit_seq.assign(static_cast<size_t>(num_cells), 0);
    if (num_cells > 1 && !state->tour.empty()) {
      state->cell = topology_.CellAt(state->tour.front().position);
      state->home_cell = state->cell;
    }
    by_id_.emplace(spec.id, state);
  }
}

FleetEngine::~FleetEngine() = default;

std::unique_ptr<FleetEngine::ClientState> FleetEngine::BuildState(
    const ClientSpec& spec) {
  auto state = std::make_unique<ClientState>();
  state->spec = spec;

  workload::TourOptions tour;
  tour.kind = spec.tour_kind;
  tour.space = system_.space();
  tour.target_speed = spec.speed;
  tour.frames = spec.frames;
  tour.frame_interval = options_.frame_interval_seconds;
  tour.seed = spec.tour_seed;
  if (spec.group_member >= 0) {
    // Co-moving group: a jittered copy of the shared base trajectory.
    // Member m's tour depends only on (tour options, m), so the group
    // generator can be rebuilt per client without breaking isolation.
    workload::GroupTourGenerator::Options group;
    group.base = tour;
    group.members = spec.group_member + 1;
    group.position_jitter_m = spec.group_position_jitter_m;
    group.speed_jitter = spec.group_speed_jitter;
    state->tour = workload::GroupTourGenerator(group).Tour(spec.group_member);
  } else {
    state->tour = workload::GenerateTour(tour);
  }
  state->spec.frames = std::min<int32_t>(
      spec.frames, static_cast<int32_t>(state->tour.size()));

  // Every derived seed is a function of the spec (hence the client id)
  // only — never of the fleet size.
  net::SimulatedLink::Options link_opts = options_.client_link;
  link_opts.loss_seed = spec.seed * 0x9E3779B97F4A7C15ull + 1;
  state->link = std::make_unique<net::SimulatedLink>(link_opts);
  net::FaultSchedule::Options fault_opts = options_.client_fault;
  fault_opts.seed =
      fault_opts.seed + 0x100 + static_cast<uint64_t>(spec.id) * 131;
  state->fault = std::make_unique<net::FaultSchedule>(fault_opts);
  // Attach when the sampled tracks are live OR handovers will inject
  // re-association blackouts later (InjectOutage flips enabled(), but the
  // bearer only consults a schedule attached up front).
  if (state->fault->enabled() || options_.handover_blackout_seconds > 0.0) {
    state->link->AttachFaultSchedule(state->fault.get());
  }

  // ABR: the motion-aware clients read their w_min through a per-client
  // adaptive ladder instead of the static map. Naive clients retrieve
  // whole objects — there is no resolution to adapt.
  if (options_.abr.enabled && spec.kind != ClientKind::kNaive) {
    state->abr = std::make_unique<qos::AdaptiveLadderPolicy>(
        options_.abr.ladder);
  }

  switch (spec.kind) {
    case ClientKind::kStreaming: {
      client::StreamingClient::Options opts;
      opts.query_fraction = spec.query_fraction;
      opts.policy = state->abr.get();
      opts.channel.seed = spec.seed * 31 + 7;
      // Streaming sessions are long-lived server-side state: they carry
      // the duplicate filter across the whole tour, so they live in the
      // server's striped SessionTable, keyed by client id.
      state->streaming = std::make_unique<client::StreamingClient>(
          opts, system_.space(), &system_.server(), state->link.get(),
          sessions_.GetOrCreate(spec.id));
      break;
    }
    case ClientKind::kBuffered: {
      client::BufferedClient::Options opts;
      opts.query_fraction = spec.query_fraction;
      opts.policy = state->abr.get();
      opts.buffer_bytes = spec.buffer_bytes;
      opts.seed = spec.seed;
      opts.channel.seed = spec.seed * 31 + 7;
      state->buffered = std::make_unique<client::BufferedClient>(
          opts, system_.space(), &system_.server(), state->link.get());
      break;
    }
    case ClientKind::kNaive: {
      client::NaiveObjectClient::Options opts;
      opts.query_fraction = spec.query_fraction;
      opts.cache_bytes = spec.buffer_bytes;
      state->naive = std::make_unique<client::NaiveObjectClient>(
          opts, system_.space(), &system_.server(), state->link.get());
      break;
    }
  }
  return state;
}

void FleetEngine::StepClient(ClientState* state) {
  const workload::TourPoint& point =
      state->tour[static_cast<size_t>(state->next_frame)];
  state->wire_bytes = 0;
  state->tick_speed = point.speed;
  state->hot_touch.clear();
  state->hot_insert.clear();
  state->tick_records.clear();
  state->encode_candidates.clear();
  state->claimed.clear();

  core::RunMetrics& m = state->metrics;

  // Admission check against the tick-frozen cell. The cell is only
  // mutated by the serial phases, so these reads — and the pure
  // Decide() — give every worker interleaving the same verdict.
  state->adm_verdict = server::AdmissionController::Verdict{};
  const server::AdmissionController& admission = *admission_[state->cell];
  if (admission.enabled()) {
    const net::SharedMediumLink& cell = *cells_[state->cell];
    server::AdmissionController::Request req;
    req.client = state->spec.id;
    req.bytes = state->last_wire_bytes;
    // Naive full-resolution re-retrievals are the cell's bulk traffic:
    // the client can keep serving its LRU cache instead. The
    // motion-aware clients' incremental demand exchanges are not
    // sheddable.
    req.deferrable = state->spec.kind == ClientKind::kNaive;
    req.prior_defers = state->consecutive_defers;
    req.client_backlog_bytes = cell.client_backlog_bytes(state->spec.id);
    req.client_queue_depth = cell.client_queue_depth(state->spec.id);
    req.cell_backlog_bytes = cell.backlog_bytes();
    state->adm_request = req;
    state->adm_verdict = admission.Decide(req);
    switch (state->adm_verdict.decision) {
      case server::AdmissionController::Decision::kAdmit:
        break;
      case server::AdmissionController::Decision::kDefer:
        // The engine retries this frame after the backoff; tell the
        // client so it adapts (transport pacing, prefetch suppression,
        // window shrink).
        switch (state->spec.kind) {
          case ClientKind::kStreaming:
            state->streaming->OnBackpressure(
                state->adm_verdict.retry_after_seconds);
            break;
          case ClientKind::kBuffered:
            state->buffered->OnBackpressure(
                state->adm_verdict.retry_after_seconds);
            break;
          case ClientKind::kNaive:
            state->naive->OnBackpressure(
                state->adm_verdict.retry_after_seconds);
            break;
        }
        ++m.deferred_exchanges;
        ++m.backpressure_frames;
        ++state->consecutive_defers;
        return;
      case server::AdmissionController::Decision::kShed:
        // The frame runs without its exchange: the client renders
        // whatever it holds (stale), and the tour moves on.
        ++m.frames;
        ++m.shed_exchanges;
        ++m.stale_frames;
        ++state->stale_run;
        m.max_stale_run_frames =
            std::max(m.max_stale_run_frames, state->stale_run);
        state->consecutive_defers = 0;
        return;
    }
    state->consecutive_defers = 0;
  }

  std::vector<index::RecordId> delivered;
  switch (state->spec.kind) {
    case ClientKind::kStreaming: {
      client::StreamingFrameReport report =
          state->streaming->Step(point.position, point.speed);
      m.demand_bytes += report.response_bytes;
      m.node_accesses += report.node_accesses;
      m.records_delivered += report.new_records;
      m.retries += report.retries;
      if (report.status.ok()) {
        state->stale_run = 0;
        state->wire_bytes = report.request_bytes + report.response_bytes;
        delivered = std::move(report.records);
      } else {
        ++m.timeouts;
        ++m.outage_frames;
        ++m.stale_frames;
        ++state->stale_run;
        m.max_stale_run_frames =
            std::max(m.max_stale_run_frames, state->stale_run);
      }
      break;
    }
    case ClientKind::kBuffered: {
      client::BufferedFrameReport report =
          state->buffered->Step(point.position, point.speed);
      m.demand_bytes += report.demand_bytes;
      m.prefetch_bytes += report.prefetch_bytes;
      m.node_accesses += report.node_accesses;
      m.records_delivered += static_cast<int64_t>(report.records.size());
      m.retries += report.retries;
      m.timeouts += report.timeouts;
      state->wire_bytes = report.demand_bytes + report.prefetch_bytes;
      delivered = std::move(report.records);
      break;
    }
    case ClientKind::kNaive: {
      const client::NaiveFrameReport report =
          state->naive->Step(point.position, point.speed);
      m.demand_bytes += report.bytes;
      m.node_accesses += report.node_accesses;
      state->wire_bytes = report.bytes;
      // Naive responses are whole objects, not coefficient records — the
      // hot-encoding cache does not apply.
      break;
    }
  }
  ++m.frames;
  if (state->wire_bytes > 0) state->last_wire_bytes = state->wire_bytes;

  // Classify this tick's delivered records against the tick-frozen shared
  // structures — read-only probes, so the outcome cannot depend on worker
  // interleaving.
  if (inflight_.enabled() && !delivered.empty()) {
    // Coalescing path: a record already riding another client's transfer
    // needs neither cache accounting nor an encoding — the serial commit
    // will attach this client to the carrier. The remaining records probe
    // the hot cache as usual, but misses are *not* encoded here: the
    // serial claim sub-phase first deduplicates them across the tick's
    // clients (see Run()).
    std::sort(delivered.begin(), delivered.end());
    delivered.erase(std::unique(delivered.begin(), delivered.end()),
                    delivered.end());
    for (const index::RecordId id : delivered) {
      state->tick_records.emplace_back(id,
                                       system_.db().record(id).wire_bytes);
      if (inflight_.Probe(id) >= 0) continue;
      if (!hot_cache_.enabled()) continue;
      const int64_t cached_bytes = hot_cache_.Lookup(id);
      if (cached_bytes >= 0) {
        ++state->hot_hits;
        state->hot_bytes_saved += cached_bytes;
        state->hot_touch.push_back(id);
      } else {
        ++state->hot_misses;
        state->encode_candidates.push_back(id);
      }
    }
    return;
  }
  // Probe the shared hot-encoding cache: read-only against the state the
  // cache had at the tick boundary, so the hit/miss pattern cannot depend
  // on worker interleaving. Misses are encoded *here* — that is the
  // parallel CPU work the cache exists to spread — and installed by the
  // serial commit.
  if (hot_cache_.enabled() && !delivered.empty()) {
    std::sort(delivered.begin(), delivered.end());
    delivered.erase(std::unique(delivered.begin(), delivered.end()),
                    delivered.end());
    for (const index::RecordId id : delivered) {
      const int64_t cached_bytes = hot_cache_.Lookup(id);
      if (cached_bytes >= 0) {
        ++state->hot_hits;
        state->hot_bytes_saved += cached_bytes;
        state->hot_touch.push_back(id);
      } else {
        ++state->hot_misses;
        ++state->encode_calls;
        state->hot_insert.emplace_back(
            id, server::EncodeRecords(system_.db(), {id}));
      }
    }
  }
}

void FleetEngine::CommitClient(ClientState* state) {
  for (const index::RecordId id : state->hot_touch) hot_cache_.Touch(id);
  for (auto& [id, blob] : state->hot_insert) {
    hot_cache_.Insert(id, std::move(blob));
  }
  state->hot_touch.clear();
  state->hot_insert.clear();
  if (state->wire_bytes <= 0) return;
  const int32_t cell_id = state->cell;
  net::SharedMediumLink* cell = cells_[cell_id].get();
  if (!inflight_.enabled()) {
    const int64_t seq =
        cell->Submit(state->spec.id, state->wire_bytes, state->tick_speed);
    MARS_CHECK_EQ(seq, state->next_submit_seq[cell_id]);
    ++state->next_submit_seq[cell_id];
    state->cell_bytes += state->wire_bytes;
    if (state->abr != nullptr) {
      submitted_bytes_.emplace(TransferKey{cell_id, state->spec.id, seq},
                               state->wire_bytes);
    }
    return;
  }

  // Coalesced submission: records already in flight ride their carrier's
  // transfer, so this client is charged its exchange minus those payloads
  // plus one attach header per distinct carrier. Commits run in ascending
  // client id, so a record first requested this tick is registered by its
  // lowest-id requester before the others reach their Attach().
  using AttachOutcome = server::InflightTable::AttachOutcome;
  int64_t shared_bytes = 0;
  int64_t shared_records = 0;
  std::vector<server::InflightTable::Carrier> carriers;
  std::vector<std::pair<index::RecordId, int64_t>> owned;
  for (const auto& [rec, bytes] : state->tick_records) {
    const auto attach = inflight_.Attach(rec, state->spec.id, cell_id);
    switch (attach.outcome) {
      case AttachOutcome::kAttached:
        shared_bytes += bytes;
        ++shared_records;
        ++state->coalesce_hits;
        state->coalesce_bytes_saved += bytes;
        if (std::find(carriers.begin(), carriers.end(), attach.carrier) ==
            carriers.end()) {
          carriers.push_back(attach.carrier);
        }
        break;
      case AttachOutcome::kNotInflight:
        owned.emplace_back(rec, bytes);
        break;
      case AttachOutcome::kRefused:
        // Waiter cap hit, or the carrier rides another cell: the payload
        // is still in flight (re-registering would double-serve it), but
        // this client pays full freight.
        break;
    }
  }
  const int64_t header_bytes = static_cast<int64_t>(carriers.size()) *
                               options_.coalesce.attach_header_bytes;
  state->coalesce_attaches += static_cast<int64_t>(carriers.size());
  const int64_t charged = state->wire_bytes - shared_bytes + header_bytes;
  // The exchange always carries at least its own request/response
  // framing, which is never coalesced.
  MARS_CHECK_GT(charged, 0);
  const int64_t seq =
      cell->Submit(state->spec.id, charged, state->tick_speed);
  MARS_CHECK_EQ(seq, state->next_submit_seq[cell_id]);
  ++state->next_submit_seq[cell_id];
  state->cell_bytes += charged;
  if (state->abr != nullptr) {
    // The ladder's goodput tracks what actually rides the cell: the
    // coalescing discount is bandwidth genuinely delivered elsewhere.
    submitted_bytes_.emplace(TransferKey{cell_id, state->spec.id, seq},
                             charged);
  }
  for (const auto& [rec, bytes] : owned) {
    inflight_.Register(rec, state->spec.id, seq, bytes, cell_id);
  }
  ClientState::PendingExchange exchange;
  exchange.seq = seq;
  exchange.cell = cell_id;
  exchange.submit_seconds = cell->now();
  exchange.carriers = std::move(carriers);
  state->pending.push_back(std::move(exchange));
  if (shared_records > 0) {
    // Delivery-path observability: tell the client part of its frame's
    // payload arrives as a single shared copy on another transfer.
    switch (state->spec.kind) {
      case ClientKind::kStreaming:
        state->streaming->OnSharedDelivery(shared_records, shared_bytes);
        break;
      case ClientKind::kBuffered:
        state->buffered->OnSharedDelivery(shared_records, shared_bytes);
        break;
      case ClientKind::kNaive:
        break;  // naive responses are whole objects; never coalesced
    }
  }
  state->tick_records.clear();
}

void FleetEngine::FinishClient(ClientState* state) {
  core::RunMetrics& m = state->metrics;
  switch (state->spec.kind) {
    case ClientKind::kStreaming:
      // Quiesce: commit the trailing pending delivery so the session's
      // committed state matches the client's store.
      state->streaming->FlushAck();
      break;
    case ClientKind::kBuffered:
      m.cache_hit_rate = state->buffered->buffer_stats().HitRate();
      m.data_utilization = state->buffered->buffer_stats().Utilization();
      // += / max: shed frames may already have been counted stale by the
      // engine's admission path.
      m.outage_frames += state->buffered->outage_frames();
      m.stale_frames += state->buffered->stale_frames();
      m.max_stale_run_frames = std::max(
          m.max_stale_run_frames, state->buffered->max_stale_run_frames());
      break;
    case ClientKind::kNaive:
      m.cache_hit_rate = state->naive->CacheHitRate();
      break;
  }
  m.tour_distance = workload::TourDistance(state->tour);
}

FleetResult FleetEngine::Run() {
  VirtualScheduler scheduler;
  common::ThreadPool pool(options_.workers);
  const int64_t frame_micros =
      net::SimClock::ToMicros(options_.frame_interval_seconds);
  MARS_CHECK_GT(frame_micros, 0);

  for (const auto& state : states_) {
    if (state->spec.frames > 0) {
      scheduler.Schedule(
          net::SimClock::ToMicros(state->spec.start_offset_seconds),
          state->spec.id);
    }
  }

  const int32_t num_cells = options_.cells;
  int64_t peak_backlog = 0;
  const bool coalescing = inflight_.enabled();
  // Disk store with motion eviction: the serial commit phase feeds every
  // committed frame's position into the server-side predictors, and each
  // tick installs one refreshed interest field on the shard pools.
  const bool motion_pools = system_.server().motion_interest_enabled();
  // Load-adaptive rebalancing runs in the serial phase, off atomically
  // summed per-shard counters — worker-count-invariant by construction,
  // so fleet metrics stay byte-identical at any --workers.
  const bool rebalance = system_.server().rebalance_enabled();
  // Background pool warming: join/dispatch bracket the serial phase so
  // speculative reads overlap only the parallel client steps, never the
  // serial window's raw page-store work (see server.h).
  const bool warming = system_.server().pool_warming_enabled();
  // Book one cell's drained completions, in the cell's deterministic
  // completion order. Cells are always recorded in ascending cell id, so
  // the booking sequence is worker-count-invariant.
  const auto record_completions =
      [&](int32_t cell_id,
          const std::vector<net::SharedMediumLink::Completion>& done) {
        // ABR goodput samples: booked per completion in the same serial,
        // cell-id-then-completion order as everything else, with the
        // finish time quantized to integer microseconds — deterministic
        // at any worker count. submitted_bytes_ is only populated while
        // ABR is on, so this is free otherwise.
        const auto feed_abr = [&](const net::SharedMediumLink::Completion&
                                      c) {
          if (submitted_bytes_.empty()) return;
          const auto bit = submitted_bytes_.find(
              TransferKey{cell_id, c.client, c.seq});
          if (bit == submitted_bytes_.end()) return;
          ClientState* state = by_id_.at(c.client);
          if (state->abr != nullptr) {
            state->abr->OnDelivered(bit->second,
                                    net::SimClock::ToMicros(c.finish_seconds));
          }
          submitted_bytes_.erase(bit);
        };
        if (!coalescing) {
          for (const net::SharedMediumLink::Completion& c : done) {
            feed_abr(c);
            ClientState* state = by_id_.at(c.client);
            // Delivery delay on the shared cell is the fleet's response
            // time; each drained submission is one demand exchange. A
            // transfer that was cancelled off a dead cell and re-issued
            // reports the delay from its *original* submission.
            double response = c.response_seconds;
            if (!reissue_origin_.empty()) {
              const auto rit = reissue_origin_.find(
                  TransferKey{cell_id, c.client, c.seq});
              if (rit != reissue_origin_.end()) {
                response = c.finish_seconds - rit->second;
                reissue_origin_.erase(rit);
              }
            }
            state->metrics.total_response_seconds += response;
            state->metrics.response_histogram.Add(response);
            ++state->metrics.demand_exchanges;
          }
          return;
        }
        for (const net::SharedMediumLink::Completion& c : done) {
          feed_abr(c);
          const TransferKey key{cell_id, c.client, c.seq};
          if (!waiter_reissues_.empty() && waiter_reissues_.erase(key) > 0) {
            // A stranded-waiter re-issue: it substitutes for a dead
            // carrier, so it only needs a finish time — it is nobody's
            // own transfer.
            if (!finish_at_.emplace(key, c.finish_seconds).second) {
              ++chaos_duplicates_;
            }
            continue;
          }
          ClientState* state = by_id_.at(c.client);
          // Seqs are unique per (cell, client) and never reused, so the
          // completion maps to exactly one pending exchange. Matching by
          // seq — not by FIFO position — matters after a migration: a
          // re-issued exchange takes a *later* seq on its new cell while
          // keeping its *earlier* place in the deque, so deque order and
          // per-cell completion order no longer agree.
          const int64_t seq = c.seq;
          auto it = std::find_if(
              state->pending.begin(), state->pending.end(),
              [cell_id, seq](const ClientState::PendingExchange& e) {
                return e.cell == cell_id && e.seq == seq &&
                       e.own_finish < 0.0;
              });
          MARS_CHECK(it != state->pending.end());
          it->own_finish = c.finish_seconds;
          if (!finish_at_.emplace(key, it->own_finish).second) {
            ++chaos_duplicates_;
          }
          // The carried payloads are delivered: retire the transfer's
          // inflight entries so later requesters re-fetch (or hit the
          // hot cache) instead of attaching to a drained carrier.
          inflight_.OnTransferComplete(c.client, c.seq, cell_id);
        }
      };
  // Resolve in client-id order: an exchange's response time runs until
  // its own transfer and every attached carrier drained. Runs once per
  // tick, after every cell's completions were recorded.
  const auto resolve_pending = [&] {
    if (!coalescing) return;
    for (const auto& owned : states_) {
      ClientState* state = owned.get();
      while (!state->pending.empty() &&
             state->pending.front().own_finish >= 0.0) {
        ClientState::PendingExchange& ex = state->pending.front();
        double finish = ex.own_finish;
        bool ready = true;
        for (const auto& carrier : ex.carriers) {
          const auto fit = finish_at_.find(TransferKey{
              carrier.cell, carrier.owner, carrier.transfer_seq});
          if (fit == finish_at_.end()) {
            ready = false;
            break;
          }
          finish = std::max(finish, fit->second);
        }
        if (!ready) break;
        const double response = finish - ex.submit_seconds;
        state->metrics.total_response_seconds += response;
        state->metrics.response_histogram.Add(response);
        ++state->metrics.demand_exchanges;
        state->pending.pop_front();
      }
    }
  };

  while (!scheduler.empty()) {
    const int64_t tick = scheduler.NextMicros();
    const double tick_seconds = net::SimClock::ToSeconds(tick);
    // Drain every cell up to this instant first: a transfer finishing at
    // the tick edge completes before the tick's new submissions queue.
    // The fluid drains are independent per cell, so they run on the pool;
    // their completions are *booked* serially in cell-id order, keeping
    // the result worker-count-invariant.
    if (num_cells == 1) {
      if (tick_seconds > cells_[0]->now()) {
        record_completions(0,
                           cells_[0]->Advance(tick_seconds - cells_[0]->now()));
        resolve_pending();
      }
    } else {
      std::vector<std::vector<net::SharedMediumLink::Completion>> done(
          static_cast<size_t>(num_cells));
      std::vector<std::function<void()>> advance_tasks;
      for (int32_t k = 0; k < num_cells; ++k) {
        if (tick_seconds <= cells_[k]->now()) continue;
        advance_tasks.push_back([this, k, tick_seconds, &done] {
          done[k] = cells_[k]->Advance(tick_seconds - cells_[k]->now());
        });
      }
      pool.RunBatch(advance_tasks);
      for (int32_t k = 0; k < num_cells; ++k) {
        if (!done[k].empty()) record_completions(k, done[k]);
      }
      resolve_pending();
      // Handover pre-phase: reroute clients before any of them steps.
      RouteClients(tick_seconds);
    }
    scheduler.clock().AdvanceTo(tick_seconds);

    const std::vector<int32_t> due = scheduler.PopDue(tick);
    // Phase A: all due clients step in parallel; each task touches only
    // its own ClientState plus const shared structures.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(due.size());
    for (const int32_t id : due) {
      tasks.push_back([this, state = by_id_.at(id)] { StepClient(state); });
    }
    pool.RunBatch(tasks);
    if (coalescing && hot_cache_.enabled()) {
      // Phase A2 (serial): claim encode ownership per record in client-id
      // order — of a tick's requesters, exactly the first encodes; the
      // rest attach to its registration at commit time.
      std::unordered_set<index::RecordId> tick_claims;
      std::vector<std::function<void()>> encode_tasks;
      for (const int32_t id : due) {
        ClientState* state = by_id_.at(id);
        for (const index::RecordId rec : state->encode_candidates) {
          if (tick_claims.insert(rec).second) state->claimed.push_back(rec);
        }
        if (state->claimed.empty()) continue;
        encode_tasks.push_back([this, state] {
          for (const index::RecordId rec : state->claimed) {
            state->hot_insert.emplace_back(
                rec, server::EncodeRecords(system_.db(), {rec}));
          }
          state->encode_calls += static_cast<int64_t>(state->claimed.size());
        });
      }
      // Phase A3 (parallel): the claimed encodings are the tick's actual
      // serialization work, spread across the pool.
      pool.RunBatch(encode_tasks);
    }
    // Phase B: commit shared side effects in ascending client id (PopDue
    // returns ids sorted), then reschedule.
    using Decision = server::AdmissionController::Decision;
    for (const int32_t id : due) {
      ClientState* state = by_id_.at(id);
      server::AdmissionController& admission = *admission_[state->cell];
      if (admission.enabled()) {
        admission.Record(state->adm_request, state->adm_verdict);
        if (state->adm_verdict.decision == Decision::kDefer) {
          ++sessions_.GetOrCreate(id)->deferred_requests;
        } else if (state->adm_verdict.decision == Decision::kShed) {
          ++sessions_.GetOrCreate(id)->shed_requests;
        }
        // Close the QoS loop: backpressure verdicts climb the client's
        // resolution ladder (serial phase, integer-microsecond input).
        if (state->abr != nullptr &&
            state->adm_verdict.decision != Decision::kAdmit) {
          state->abr->OnBackpressure(
              state->adm_verdict.decision == Decision::kShed
                  ? qos::BackpressureKind::kShed
                  : qos::BackpressureKind::kDefer,
              tick);
        }
      }
      if (state->adm_verdict.decision == Decision::kDefer) {
        // The frame did not run; retry it after the backoff hint.
        scheduler.Schedule(
            tick + std::max<int64_t>(
                       1, net::SimClock::ToMicros(
                              state->adm_verdict.retry_after_seconds)),
            id);
        continue;
      }
      CommitClient(state);
      if (motion_pools) {
        system_.server().ObserveClientMotion(
            id, state->tour[static_cast<size_t>(state->next_frame)].position);
      }
      ++state->next_frame;
      if (state->next_frame < state->spec.frames) {
        // A frame deferred past its successor's slot pushes the
        // successor to strictly after this tick; on the regular cadence
        // the max() is a no-op.
        scheduler.Schedule(
            std::max<int64_t>(
                net::SimClock::ToMicros(state->spec.start_offset_seconds) +
                    static_cast<int64_t>(state->next_frame) * frame_micros,
                tick + 1),
            id);
      }
    }
    // Warm join first: the previous tick's speculative reads install
    // before the interest refresh or the rebalancer touch the raw page
    // stores.
    if (warming && !due.empty()) {
      system_.server().WarmPoolsJoin();
    }
    if (motion_pools && !due.empty()) {
      system_.server().RefreshPoolInterest();
    }
    if (rebalance && !due.empty()) {
      system_.server().TickRebalancer();
    }
    // Dispatch last: rank against the refreshed interest field and the
    // settled shard layout; the reads overlap the next parallel phase.
    if (warming && !due.empty()) {
      system_.server().WarmPoolsDispatch();
    }
    if (num_cells == 1) {
      peak_backlog = std::max(peak_backlog, cells_[0]->backlog_bytes());
    } else {
      for (int32_t k = 0; k < num_cells; ++k) {
        const int64_t backlog = cells_[k]->backlog_bytes();
        cell_stats_[k].peak_backlog_bytes =
            std::max(cell_stats_[k].peak_backlog_bytes, backlog);
        peak_backlog = std::max(peak_backlog, backlog);
      }
    }
  }
  // Settle the trailing speculative batch so the pool counters the run
  // reports are stable and deterministic.
  if (warming) {
    system_.server().WarmPoolsJoin();
  }
  // Final drain, cell by cell in id order, then one last resolution pass
  // (a cross-cell carrier may finish after the waiting exchange's cell).
  for (int32_t k = 0; k < num_cells; ++k) {
    record_completions(k, cells_[k]->DrainAll());
  }
  resolve_pending();

  FleetResult result;
  // Chaos invariants: counted first so a violated invariant is exported
  // (and FATALs) rather than silently folded into the totals.
  result.chaos_duplicate_deliveries = chaos_duplicates_;
  if (coalescing) {
    // Every carrier has drained, so every coalesced exchange resolved
    // and every inflight entry was retired (or cancelled + re-issued).
    for (const auto& state : states_) {
      result.chaos_unresolved_exchanges +=
          static_cast<int64_t>(state->pending.size());
    }
    result.chaos_stranded_waiters = inflight_.entries();
  }

  result.clients.reserve(states_.size());
  for (const auto& owned : states_) {
    ClientState* state = owned.get();
    FinishClient(state);
    if (state->spec.kind == ClientKind::kStreaming) {
      // Session handover safety: the final flush committed the trailing
      // delivery, so a pending set that survived it is a client/server
      // desync — records delivered but never acknowledged, or vice versa.
      const server::ClientSession* session = sessions_.Find(state->spec.id);
      if (session != nullptr && !session->pending.empty()) {
        ++result.chaos_session_desyncs;
      }
    }
    ClientResult client;
    client.spec = state->spec;
    client.metrics = state->metrics;
    client.hot_hits = state->hot_hits;
    client.hot_misses = state->hot_misses;
    client.hot_bytes_saved = state->hot_bytes_saved;
    client.coalesce_hits = state->coalesce_hits;
    client.coalesce_attaches = state->coalesce_attaches;
    client.coalesce_bytes_saved = state->coalesce_bytes_saved;
    client.encode_calls = state->encode_calls;
    client.cell_bytes = state->cell_bytes;
    client.home_cell = state->home_cell;
    client.final_cell = state->cell;
    client.handovers = state->handovers;
    client.failovers = state->failovers;
    if (state->abr != nullptr) {
      client.abr = state->abr->snapshot();
      result.abr_step_ups += client.abr.step_ups;
      result.abr_top_ups += client.abr.top_ups;
      result.abr_max_ladder_step =
          std::max(result.abr_max_ladder_step, client.abr.ladder_step);
    }
    result.aggregate.Merge(state->metrics);
    ClassStats& cls = result.by_kind[static_cast<size_t>(state->spec.kind)];
    ++cls.clients;
    cls.metrics.Merge(state->metrics);
    cls.coalesce_hits += state->coalesce_hits;
    cls.coalesce_attaches += state->coalesce_attaches;
    cls.coalesce_bytes_saved += state->coalesce_bytes_saved;
    cls.encode_calls += state->encode_calls;
    cls.cell_bytes += state->cell_bytes;
    result.hot_hits += state->hot_hits;
    result.hot_misses += state->hot_misses;
    result.hot_bytes_saved += state->hot_bytes_saved;
    result.coalesce_hits += state->coalesce_hits;
    result.coalesce_attaches += state->coalesce_attaches;
    result.coalesce_bytes_saved += state->coalesce_bytes_saved;
    result.coalesce_header_bytes +=
        state->coalesce_attaches * options_.coalesce.attach_header_bytes;
    result.encode_calls += state->encode_calls;
    result.clients.push_back(std::move(client));
  }
  for (const auto& admission : admission_) {
    result.admitted_exchanges += admission->admitted_requests();
    result.deferred_exchanges += admission->deferred_requests();
    result.shed_exchanges += admission->shed_requests();
  }
  result.peak_cell_backlog_bytes = peak_backlog;
  if (num_cells == 1) {
    // The strict single-cell passthrough: straight assignments, no sums.
    result.cell_bytes = cells_[0]->total_bytes();
    result.cell_retries = cells_[0]->total_retries();
    result.cell_timeouts = cells_[0]->total_timeouts();
    result.cell_outage_seconds = cells_[0]->total_outage_seconds();
    result.virtual_seconds = cells_[0]->now();
  } else {
    result.cell_stats.reserve(static_cast<size_t>(num_cells));
    for (int32_t k = 0; k < num_cells; ++k) {
      FleetResult::CellStats stats = cell_stats_[k];
      stats.bytes = cells_[k]->total_bytes();
      stats.retries = cells_[k]->total_retries();
      stats.timeouts = cells_[k]->total_timeouts();
      stats.outage_seconds = cells_[k]->total_outage_seconds();
      result.cell_bytes += stats.bytes;
      result.cell_retries += stats.retries;
      result.cell_timeouts += stats.timeouts;
      result.cell_outage_seconds += stats.outage_seconds;
      result.virtual_seconds =
          std::max(result.virtual_seconds, cells_[k]->now());
      result.cell_stats.push_back(stats);
    }
  }
  result.hot_cache_entries = hot_cache_.entries();
  result.hot_cache_bytes = hot_cache_.size_bytes();
  result.hot_cache_evictions = hot_cache_.evictions();
  result.hot_shards = hot_cache_.Stats();
  result.coalesce_refused = inflight_.total_refused();
  result.handovers = handovers_;
  result.failovers = failovers_;
  result.reissued_transfers = reissued_transfers_;
  result.reissued_bytes = reissued_bytes_;
  // The chaos invariants hold by construction; a nonzero count here is an
  // engine bug (session desync, duplicate delivery, stranded waiter or
  // unresolved exchange), not a simulated fault — fail loudly.
  MARS_CHECK_EQ(result.chaos_session_desyncs, 0);
  MARS_CHECK_EQ(result.chaos_duplicate_deliveries, 0);
  MARS_CHECK_EQ(result.chaos_stranded_waiters, 0);
  MARS_CHECK_EQ(result.chaos_unresolved_exchanges, 0);
  return result;
}

void FleetEngine::RouteClients(double tick_seconds) {
  const auto healthy = [&](int32_t k) {
    net::FaultSchedule* fault = cell_faults_[k].get();
    return !(fault->enabled() && fault->InOutage(tick_seconds));
  };
  // Pass 1 (client-id order): reassign every touring client to the
  // healthy cell nearest the cell covering its current position. All
  // reassignments land before any migration so a forced mover re-issues
  // onto its *final* cell for this tick.
  for (const auto& owned : states_) {
    ClientState* state = owned.get();
    if (state->tour.empty() || state->spec.frames <= 0) continue;
    const size_t frame = static_cast<size_t>(
        std::min<int32_t>(state->next_frame, state->spec.frames - 1));
    const int32_t home = topology_.CellAt(state->tour[frame].position);
    const int32_t target = topology_.NearestHealthy(home, healthy);
    if (target == state->cell) {
      state->away_rounds = 0;
      continue;
    }
    const bool outage_forced = !healthy(state->cell);
    if (!outage_forced) {
      // Ping-pong hysteresis: a client grazing a cell edge flips its
      // covering cell every few frames; make a voluntary move only after
      // the pull has persisted for the dwell window. A failover never
      // waits — the serving cell is dead.
      ++state->away_rounds;
      if (state->away_rounds < options_.handover_dwell_rounds) continue;
    }
    state->away_rounds = 0;
    state->cell = target;
    ++state->handovers;
    ++handovers_;
    ++cell_stats_[target].handovers_in;
    if (options_.handover_blackout_seconds > 0.0) {
      // Radio re-association gap: the private bearer blacks out for the
      // configured window starting now.
      state->fault->InjectOutage(state->link->now(),
                                 options_.handover_blackout_seconds);
    }
    if (outage_forced) {
      ++state->failovers;
      ++failovers_;
    }
    // Voluntary crossing: nothing moves — in-flight transfers drain on
    // the old cell (anchor forwarding) while new frames submit to the
    // new one.
  }
  // Pass 2 (dead cells ascending, then client id ascending): migrate
  // every transfer stuck on a dead cell whose owner is served elsewhere —
  // it failed over this tick, or crossed voluntarily earlier and left the
  // transfer draining behind (anchor forwarding). A client *stuck* on a
  // dead cell (no healthy neighbour) keeps its queue; the transfers wait
  // out the blackout.
  const bool coalescing = inflight_.enabled();
  for (int32_t dead_cell = 0; dead_cell < options_.cells; ++dead_cell) {
    if (healthy(dead_cell)) continue;
    for (const auto& owned : states_) {
      ClientState* state = owned.get();
      const int32_t id = state->spec.id;
      if (state->cell == dead_cell) continue;
      if (cells_[dead_cell]->client_queue_depth(id) == 0) continue;
      // Strand first: the entries die with the queued transfers, and
      // none of the re-submissions below must re-bind to them.
      const auto stranded = inflight_.CancelClient(id, dead_cell);
      const auto cancelled = cells_[dead_cell]->CancelClient(id);
      // (a) Re-submit this client's own queued transfers on its current
      // cell, preserving submission order. The delivery delay keeps
      // running from the original submission — migration never resets
      // the clock.
      for (const net::SharedMediumLink::Cancelled& t : cancelled) {
        const int64_t bytes = std::max<int64_t>(
            1, static_cast<int64_t>(std::ceil(t.remaining_bytes)));
        const TransferKey old_key{dead_cell, id, t.seq};
        // The cancelled transfer never completes; drop its ABR byte entry
        // (the re-issue below registers its own).
        if (!submitted_bytes_.empty()) submitted_bytes_.erase(old_key);
        if (coalescing && waiter_reissues_.erase(old_key) > 0) {
          // A stranded-waiter substitute caught by a second outage:
          // carry its role to the new cell and re-point every exchange
          // that waits on it.
          const TransferKey new_key = Reissue(state, bytes, t.speed);
          waiter_reissues_.insert(new_key);
          const server::InflightTable::Carrier prior{id, t.seq, dead_cell};
          const server::InflightTable::Carrier repl{id, std::get<2>(new_key),
                                                    state->cell};
          for (const auto& other : states_) {
            for (auto& exchange : other->pending) {
              for (auto& carrier : exchange.carriers) {
                if (carrier == prior) carrier = repl;
              }
            }
          }
          continue;
        }
        if (coalescing) {
          // The transfer is some pending exchange's own leg. Seqs are
          // unique per (cell, client), so match by seq — after an
          // earlier migration the deque order no longer follows this
          // cell's submission order.
          const int64_t seq = t.seq;
          auto eit = std::find_if(
              state->pending.begin(), state->pending.end(),
              [dead_cell, seq](const ClientState::PendingExchange& e) {
                return e.cell == dead_cell && e.seq == seq &&
                       e.own_finish < 0.0;
              });
          MARS_CHECK(eit != state->pending.end());
          const TransferKey new_key = Reissue(state, bytes, t.speed);
          eit->cell = state->cell;
          eit->seq = std::get<2>(new_key);
          continue;
        }
        // Non-coalescing: remember the original submission time (carried
        // across repeated cancellations) for the completion's response.
        double origin = t.submitted_at;
        const auto oit = reissue_origin_.find(old_key);
        if (oit != reissue_origin_.end()) {
          origin = oit->second;
          reissue_origin_.erase(oit);
        }
        const TransferKey new_key = Reissue(state, bytes, t.speed);
        reissue_origin_.emplace(new_key, origin);
      }
      // (b) Re-issue the payloads of waiters stranded by this client's
      // dead carriers: each waiter re-fetches the shared copy on its own
      // current cell. One re-issue per (carrier, waiter) — a waiter that
      // attached for several records of one carrier gets one substitute
      // transfer carrying their summed bytes.
      std::map<std::pair<int64_t, int32_t>, int64_t> grouped;
      for (const server::InflightTable::Stranded& s : stranded) {
        grouped[{s.carrier.transfer_seq, s.waiter}] += s.bytes;
      }
      for (const auto& [group, bytes] : grouped) {
        const auto [carrier_seq, waiter] = group;
        ClientState* waiter_state = by_id_.at(waiter);
        double speed = 0.0;
        if (!waiter_state->tour.empty() && waiter_state->spec.frames > 0) {
          const size_t frame = static_cast<size_t>(std::min<int32_t>(
              waiter_state->next_frame, waiter_state->spec.frames - 1));
          speed = waiter_state->tour[frame].speed;
        }
        const TransferKey new_key = Reissue(waiter_state, bytes, speed);
        waiter_reissues_.insert(new_key);
        const server::InflightTable::Carrier prior{id, carrier_seq,
                                                   dead_cell};
        const server::InflightTable::Carrier repl{
            waiter, std::get<2>(new_key), waiter_state->cell};
        bool found = false;
        for (auto& exchange : waiter_state->pending) {
          for (auto& carrier : exchange.carriers) {
            if (carrier == prior) {
              carrier = repl;
              found = true;
            }
          }
        }
        // Every stranded waiter has at least one unresolved exchange
        // holding the dead carrier, or the entry would have been retired.
        MARS_CHECK(found);
      }
    }
  }
}

FleetEngine::TransferKey FleetEngine::Reissue(ClientState* state,
                                              int64_t bytes, double speed) {
  const int32_t cell_id = state->cell;
  const int64_t seq = cells_[cell_id]->Submit(state->spec.id, bytes, speed);
  MARS_CHECK_EQ(seq, state->next_submit_seq[cell_id]);
  ++state->next_submit_seq[cell_id];
  state->cell_bytes += bytes;
  ++reissued_transfers_;
  reissued_bytes_ += bytes;
  if (state->abr != nullptr) {
    submitted_bytes_.emplace(TransferKey{cell_id, state->spec.id, seq},
                             bytes);
  }
  return TransferKey{cell_id, state->spec.id, seq};
}

std::vector<ClientSpec> FleetEngine::MakeMixedFleet(int32_t n,
                                                    int32_t frames,
                                                    double speed,
                                                    uint64_t seed) {
  std::vector<ClientSpec> specs;
  specs.reserve(static_cast<size_t>(std::max<int32_t>(0, n)));
  for (int32_t i = 0; i < n; ++i) {
    ClientSpec spec;
    spec.id = i;
    spec.kind = i % 3 == 0   ? ClientKind::kStreaming
                : i % 3 == 1 ? ClientKind::kBuffered
                             : ClientKind::kNaive;
    spec.tour_kind = i % 2 == 0 ? workload::TourKind::kTram
                                : workload::TourKind::kPedestrian;
    spec.speed = speed;
    spec.frames = frames;
    spec.seed = seed + 100 + static_cast<uint64_t>(i);
    spec.tour_seed = seed + 3000 + 23 * static_cast<uint64_t>(i);
    spec.query_fraction = 0.05;
    spec.buffer_bytes = 64 * 1024;
    // Stagger fleet arrivals across the frame so the cell sees a steady
    // trickle, not one synchronized burst.
    spec.start_offset_seconds = 0.25 * static_cast<double>(i % 4);
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace mars::fleet
