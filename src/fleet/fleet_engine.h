#ifndef MARS_FLEET_FLEET_ENGINE_H_
#define MARS_FLEET_FLEET_ENGINE_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "core/system.h"
#include "net/cell_topology.h"
#include "qos/adaptive_ladder.h"
#include "net/fault.h"
#include "net/link.h"
#include "net/shared_link.h"
#include "server/admission.h"
#include "server/hot_cache.h"
#include "server/inflight_table.h"
#include "server/session_table.h"
#include "workload/tour.h"

namespace mars::fleet {

// Which client implementation a fleet member runs.
enum class ClientKind {
  kStreaming,  // incremental continuous retrieval (Sec. IV)
  kBuffered,   // full motion-aware system (Secs. IV + V)
  kNaive,      // full-resolution objects + LRU baseline (Sec. VII-E)
};

// One fleet member. Everything that varies per client lives here; every
// seed below must be a function of the client id only (never of the fleet
// size), so that client i behaves identically whether it runs alone or
// among N others — the basis of the session-isolation tests.
struct ClientSpec {
  int32_t id = 0;
  ClientKind kind = ClientKind::kStreaming;
  workload::TourKind tour_kind = workload::TourKind::kTram;
  double speed = 0.5;        // normalized cruise speed
  int32_t frames = 200;      // tour length in query frames
  uint64_t seed = 1;         // client-side randomness (loss, channel, rng)
  uint64_t tour_seed = 7;    // trajectory randomness
  double query_fraction = 0.05;
  int64_t buffer_bytes = 64 * 1024;  // buffered/naive local budget
  // When this client's first frame fires, staggering fleet arrivals on
  // the shared cell.
  double start_offset_seconds = 0.0;
  // This client's weighted-fair-queuing share of the shared cell
  // (net/shared_link.h). Relative: a weight-2 client gets twice the
  // bandwidth of a weight-1 client while both are backlogged.
  double weight = 1.0;
  // Co-moving group membership (workload::GroupTourGenerator). -1 (the
  // default) keeps the historical independent tour — a strict
  // passthrough. >= 0 makes this client member `group_member` of the
  // group whose shared base trajectory is seeded by tour_seed: the tour
  // becomes a per-member jittered copy of that base, still a function of
  // (tour_seed, group_member) only.
  int32_t group_member = -1;
  double group_position_jitter_m = 25.0;
  double group_speed_jitter = 0.05;
};

struct FleetOptions {
  // Seconds of virtual time between a client's query frames.
  double frame_interval_seconds = 1.0;
  // Worker threads for the parallel phase (1 = fully serial reference).
  int32_t workers = 1;
  // Per-client private bearer (install semantics: loss, retries,
  // rollback). loss_seed is re-derived per client from ClientSpec::seed.
  net::SimulatedLink::Options client_link;
  // Per-client fault schedule; seed is offset by the client id. All-zero
  // rates disable it.
  net::FaultSchedule::Options client_fault;
  // Number of radio cells tiling the ground plane (net/cell_topology.h).
  // 1 (the default) is the classic single shared cell — a strict
  // bit-identical passthrough. With K > 1 each client is served by the
  // cell covering its position and handed over when it crosses into
  // another cell or its cell goes down (failover to the nearest healthy
  // neighbour).
  int32_t cells = 1;
  // Per-cell link options. Cell 0 uses these verbatim; cells k > 0
  // derive their loss seed from loss_seed and k.
  net::SharedMediumLink::Options cell;
  // Per-cell fault schedule (outages stall the whole cell at once).
  // Cell 0 uses the seed verbatim; cells k > 0 derive theirs from it.
  net::FaultSchedule::Options cell_fault;
  // Seconds of private-bearer blackout injected at the instant of each
  // handover (the radio re-association gap): the client's own link
  // fails attempts for this long after it switches cells. 0 disables —
  // the hook costs nothing when unused.
  double handover_blackout_seconds = 0.0;
  // Deterministic forced cell outages, injected into the named cell's
  // fault schedule at construction — the chaos/bench hook for "cell k
  // dies at t for d seconds" scenarios.
  struct CellOutage {
    int32_t cell = 0;
    double start = 0.0;
    double duration = 0.0;
  };
  std::vector<CellOutage> cell_outages;
  // Shared hot-encoding cache budget; 0 disables.
  int64_t hot_cache_bytes = 256 * 1024;
  int32_t hot_cache_shards = 8;
  // Server-side admission control on the shared cell (disabled by
  // default, so a fleet behaves exactly as before unless opted in).
  server::AdmissionController::Options admission;
  // Cross-client request coalescing (server/inflight_table.h): records
  // already riding another client's cell transfer are attached to that
  // carrier instead of re-sent, and each tick's overlapping cache misses
  // are encoded once instead of once per client. Disabled by default —
  // a strict bit-identical passthrough. Requires the weighted-fair cell
  // discipline: coalesced delivery resolution relies on WFQ's per-client
  // FIFO completion order.
  server::InflightTable::Options coalesce;
  // Cell-edge ping-pong hysteresis: a *voluntary* handover fires only
  // after the cell covering the client's position has differed from its
  // serving cell for this many consecutive routing rounds. 1 (the
  // default) fires immediately — the historical behavior and a strict
  // passthrough. Outage failovers always fire immediately.
  int32_t handover_dwell_rounds = 1;
  // Per-client adaptive resolution ladder (qos/adaptive_ladder.h): the
  // motion-aware clients close the loop from delivered goodput and
  // admission backpressure to their requested w_min. Disabled by default
  // — a strict bit-identical passthrough. Ladder state only mutates in
  // the serial phases from integer-microsecond virtual-clock input, so
  // fleet output stays byte-identical at any worker count.
  struct AbrConfig {
    bool enabled = false;
    qos::AdaptiveLadderPolicy::Options ladder;
  };
  AbrConfig abr;
};

// Per-client outcome.
struct ClientResult {
  ClientSpec spec;
  core::RunMetrics metrics;
  // Shared hot-encoding cache interactions attributed to this client.
  int64_t hot_hits = 0;
  int64_t hot_misses = 0;
  int64_t hot_bytes_saved = 0;  // encoding work short-circuited, in bytes
  // Cross-client coalescing (all zero with coalescing off).
  int64_t coalesce_hits = 0;         // records delivered via a carrier
  int64_t coalesce_attaches = 0;     // distinct carriers attached to
  int64_t coalesce_bytes_saved = 0;  // payload bytes not re-carried
  // Records this client wire-encoded (counted in both modes: the
  // server-side serialization work the coalescer deduplicates).
  int64_t encode_calls = 0;
  // Bytes this client actually charged to the shared cell (after
  // coalescing discounts; equals its wire bytes with coalescing off).
  int64_t cell_bytes = 0;
  // Multi-cell topology (all zero / home at K = 1).
  int32_t home_cell = 0;   // cell covering the tour's first point
  int32_t final_cell = 0;  // cell serving the client when the run ended
  int64_t handovers = 0;   // cell switches over the tour
  int64_t failovers = 0;   // handovers forced by an outage on the old cell
  // Adaptive-resolution state at the end of the run (all zero with ABR
  // off, and for naive clients, which have no resolution axis).
  qos::PolicySnapshot abr;
};

// Aggregate over all fleet members running one ClientKind — the
// per-class isolation view the fairness benchmarks report (is the
// motion-aware class's p99 protected from the naive class's bulk load?).
struct ClassStats {
  int64_t clients = 0;
  // Merge of the class members' metrics, folded in client-id order.
  core::RunMetrics metrics;
  // Per-class coalescing totals (summed in client-id order).
  int64_t coalesce_hits = 0;
  int64_t coalesce_attaches = 0;
  int64_t coalesce_bytes_saved = 0;
  int64_t encode_calls = 0;
  int64_t cell_bytes = 0;
};

struct FleetResult {
  std::vector<ClientResult> clients;  // ascending client id
  // Merge of every client's metrics, folded in client-id order.
  core::RunMetrics aggregate;
  // Per-kind aggregates, indexed by ClientKind's enumerator order
  // (streaming, buffered, naive).
  std::array<ClassStats, 3> by_kind;
  // Admission-control totals (all zero when admission is disabled).
  int64_t admitted_exchanges = 0;
  int64_t deferred_exchanges = 0;
  int64_t shed_exchanges = 0;
  // Largest cell backlog observed at a tick boundary (bytes queued).
  int64_t peak_cell_backlog_bytes = 0;
  // Shared-cell totals.
  int64_t cell_bytes = 0;
  int64_t cell_retries = 0;
  int64_t cell_timeouts = 0;
  double cell_outage_seconds = 0.0;
  // Hot-encoding cache totals.
  int64_t hot_hits = 0;
  int64_t hot_misses = 0;
  int64_t hot_bytes_saved = 0;
  int64_t hot_cache_entries = 0;
  int64_t hot_cache_bytes = 0;
  int64_t hot_cache_evictions = 0;
  // Per-shard hot-cache counters (always populated; the cache is on by
  // default).
  std::vector<server::HotRecordCache::ShardStats> hot_shards;
  // Cross-client coalescing totals (all zero with coalescing off).
  int64_t coalesce_hits = 0;
  int64_t coalesce_attaches = 0;
  int64_t coalesce_bytes_saved = 0;
  int64_t coalesce_refused = 0;  // attaches refused by the waiter cap
  int64_t coalesce_header_bytes = 0;
  // Records wire-encoded server-side across the whole run (both modes).
  int64_t encode_calls = 0;
  // Virtual time at which the last exchange drained.
  double virtual_seconds = 0.0;

  // --- Multi-cell topology (empty / zero at K = 1) ---
  // Per-cell link totals, indexed by cell id.
  struct CellStats {
    int64_t bytes = 0;
    int64_t retries = 0;
    int64_t timeouts = 0;
    double outage_seconds = 0.0;
    int64_t peak_backlog_bytes = 0;
    int64_t handovers_in = 0;  // clients handed into this cell
  };
  std::vector<CellStats> cell_stats;  // size K when K > 1, else empty
  int64_t handovers = 0;   // total cell switches across the fleet
  int64_t failovers = 0;   // switches forced by an outage on the old cell
  // Transfers cancelled on a dead cell and re-submitted elsewhere
  // (migrated own transfers plus stranded-waiter re-issues).
  int64_t reissued_transfers = 0;
  int64_t reissued_bytes = 0;
  // Chaos invariants, MARS_CHECKed zero before Run() returns and
  // exported so the chaos harness can assert the checks actually ran:
  // streaming sessions whose pending set survived the final flush,
  // transfers that completed twice, inflight entries left after the
  // drain, and coalesced exchanges that never resolved.
  int64_t chaos_session_desyncs = 0;
  int64_t chaos_duplicate_deliveries = 0;
  int64_t chaos_stranded_waiters = 0;
  int64_t chaos_unresolved_exchanges = 0;
  // Adaptive-resolution totals (all zero with ABR off).
  int64_t abr_step_ups = 0;       // ladder climbs (w_min raised)
  int64_t abr_top_ups = 0;        // descents (detail topped back up)
  int32_t abr_max_ladder_step = 0;  // worst rung any client ended on
};

// Runs N heterogeneous clients concurrently against ONE shared server and
// ONE shared cell, in deterministic virtual time.
//
// Each tick the engine runs a two-phase step:
//
//   Phase A (parallel, thread pool): every client due at the tick first
//   passes admission — a pure policy decision against the tick-frozen
//   cell snapshot (deferred/shed clients stop here) — then steps: plans
//   its queries, executes them against the const shared Server (sessions
//   live in a striped SessionTable, one owner each), runs its private
//   bearer's loss/retry model, probes the shared hot-encoding cache with
//   read-only lookups, and encodes its cache misses. Nothing shared is
//   mutated, so the phase is embarrassingly parallel.
//
//   Phase B (serial, ascending client id): admission verdicts are
//   recorded (deferred frames are rescheduled after their backoff),
//   hot-cache touches/inserts are committed, each client's successful
//   wire bytes are submitted to the shared cell (weighted-fair-queued
//   per ClientSpec::weight), and the client's next frame is scheduled.
//   Then the cell advances to the next tick, attributing delivery delays
//   to clients.
//
// With coalescing enabled (FleetOptions::coalesce), two sub-phases slot
// between A and B, preserving the discipline:
//
//   Phase A additionally classifies each delivered record with a
//   read-only InflightTable probe against the tick-frozen table — records
//   already in flight skip the cache probe and the encode entirely.
//
//   Phase A2 (serial, ascending client id): each record missed by both
//   the table and the cache is *claimed* by its lowest-id requester, so
//   one tick encodes each record at most once fleet-wide.
//
//   Phase A3 (parallel): the claimed encodings run on the pool — this is
//   the tick's real serialization work, now deduplicated.
//
//   Phase B then attaches each already-inflight record to its carrier
//   (charging only an attach header per distinct carrier), registers the
//   records this client now carries, and submits the discounted byte
//   count. A coalesced exchange completes when its own transfer AND every
//   carrier it attached to have drained; WFQ's deterministic per-client
//   FIFO completion order makes that resolution worker-count-invariant.
//
// With a multi-cell topology (FleetOptions::cells > 1) each cell is its
// own SharedMediumLink + fault schedule + admission controller, and a
// serial *routing pre-phase* runs before phase A each tick, in client-id
// order: every client is assigned the cell covering its position, or —
// when that cell is in outage — the nearest healthy neighbour. A client
// whose cell changed hands over:
//
//   * voluntary crossing (old cell healthy): in-flight transfers finish
//     on the old cell (anchor forwarding) while new frames submit to the
//     new one — nothing is re-sent;
//   * outage failover (old cell down): the client's queued transfers are
//     cancelled and their remaining bytes re-submitted on the new cell,
//     with the delivery delay still measured from the *original*
//     submission; carriers it owned strand their waiters (the shared
//     copy died with the cell), and each stranded waiter deterministically
//     re-issues the payload on its own current cell.
//
// Every cell advance is applied in cell-id order and every handover
// decision is made serially, so the worker-count invariance holds at any
// K; the expensive per-cell fluid drains themselves run on the pool in
// parallel across cells. Because every cross-client effect happens in a
// serial phase in a fixed order, a fleet run is bit-identical at any
// worker count: same seeds in, same per-client and aggregate metrics
// out, whether workers=1 or 8 — and with cells=1 the engine is a strict
// bit-identical passthrough of the single-cell era.
class FleetEngine {
 public:
  FleetEngine(const core::System& system, FleetOptions options,
              std::vector<ClientSpec> specs);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  // Runs every client's full tour; returns when the cell has drained.
  FleetResult Run();

  // Server-side session registry of the fleet's streaming clients
  // (observability; populated during construction).
  const server::SessionTable& sessions() const { return sessions_; }

  // A standard mixed fleet: client i runs kind i%3 (streaming, buffered,
  // naive) on tour kind i%2 (tram, pedestrian), with id-derived seeds and
  // staggered start offsets. Client i's spec depends only on (i, frames,
  // speed, seed) — not on n.
  static std::vector<ClientSpec> MakeMixedFleet(int32_t n, int32_t frames,
                                                double speed, uint64_t seed);

 private:
  struct ClientState;

  // A transfer's identity across the topology: (cell, client, seq) —
  // sequence numbers are only unique per (cell, client).
  using TransferKey = std::tuple<int32_t, int32_t, int64_t>;

  std::unique_ptr<ClientState> BuildState(const ClientSpec& spec);
  void StepClient(ClientState* state);    // phase A (any worker thread)
  void CommitClient(ClientState* state);  // phase B (engine thread only)
  void FinishClient(ClientState* state);
  // Handover pre-phase (serial, engine thread, K > 1 only): reassigns
  // every client to the healthy cell covering its position and migrates
  // in-flight state off dead cells.
  void RouteClients(double tick_seconds);
  // Re-submits `bytes` for `state` on its current cell and returns the
  // new transfer's key (handover migration bookkeeping).
  TransferKey Reissue(ClientState* state, int64_t bytes, double speed);

  const core::System& system_;
  FleetOptions options_;
  net::CellTopology topology_;
  server::SessionTable sessions_;
  server::HotRecordCache hot_cache_;
  server::InflightTable inflight_;
  std::vector<std::unique_ptr<ClientState>> states_;
  // Id -> state lookup (built once in the constructor; states_ owns).
  std::unordered_map<int32_t, ClientState*> by_id_;
  // Per-cell serving state, indexed by cell id (size K).
  std::vector<std::unique_ptr<server::AdmissionController>> admission_;
  std::vector<std::unique_ptr<net::FaultSchedule>> cell_faults_;
  std::vector<std::unique_ptr<net::SharedMediumLink>> cells_;

  // --- Run() bookkeeping (engine thread only) ---
  // Absolute finish times of drained transfers: what a coalesced
  // exchange waits on for the carriers it attached to.
  std::map<TransferKey, double> finish_at_;
  // Original submit time of cancelled-and-re-submitted own transfers
  // (non-coalescing mode), so the reported delivery delay spans from the
  // first submission to the final completion.
  std::map<TransferKey, double> reissue_origin_;
  // Stranded-waiter re-issue transfers: completions land in finish_at_
  // instead of resolving a pending exchange's own transfer.
  std::set<TransferKey> waiter_reissues_;
  // Bytes submitted per in-flight transfer, kept only while ABR is on:
  // SharedMediumLink completions carry no byte count, and the ladder's
  // goodput EWMA needs one (erased as each completion is booked).
  std::map<TransferKey, int64_t> submitted_bytes_;
  std::vector<FleetResult::CellStats> cell_stats_;
  int64_t handovers_ = 0;
  int64_t failovers_ = 0;
  int64_t reissued_transfers_ = 0;
  int64_t reissued_bytes_ = 0;
  int64_t chaos_duplicates_ = 0;
};

}  // namespace mars::fleet

#endif  // MARS_FLEET_FLEET_ENGINE_H_
