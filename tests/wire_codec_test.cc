#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "server/object_db.h"
#include "server/wire_codec.h"
#include "workload/scene.h"

namespace mars::server {
namespace {

class WireCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SceneOptions scene;
    scene.space = geometry::MakeBox2(0, 0, 1000, 1000);
    scene.object_count = 5;
    scene.levels = 2;
    scene.seed = 61;
    auto db = workload::GenerateScene(scene);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<ObjectDatabase>(std::move(*db));
  }

  // All record ids of one object.
  std::vector<index::RecordId> AllOf(int32_t obj) const {
    std::vector<index::RecordId> out;
    for (size_t i = 0; i < db_->records().size(); ++i) {
      if (db_->records()[i].object_id == obj) {
        out.push_back(static_cast<int64_t>(i));
      }
    }
    return out;
  }

  std::unique_ptr<ObjectDatabase> db_;
};

TEST_F(WireCodecTest, EmptyResponse) {
  const auto bytes = EncodeRecords(*db_, {});
  auto decoded = DecodeRecords(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST_F(WireCodecTest, RoundTripPreservesIds) {
  const auto ids = AllOf(0);
  const auto bytes = EncodeRecords(*db_, ids);
  auto decoded = DecodeRecords(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), ids.size());
  // Same multiset of (object, coeff) pairs.
  std::vector<std::pair<int32_t, int32_t>> want, got;
  for (index::RecordId id : ids) {
    const auto& r = db_->record(id);
    want.push_back({r.object_id, r.coeff_id});
  }
  for (const DecodedRecord& r : *decoded) {
    got.push_back({r.object_id, r.coeff_id});
  }
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(want, got);
}

TEST_F(WireCodecTest, QuantizationErrorBounded) {
  const auto ids = AllOf(1);
  const auto bytes = EncodeRecords(*db_, ids);
  auto decoded = DecodeRecords(bytes);
  ASSERT_TRUE(decoded.ok());

  const wavelet::MultiResMesh& object = db_->object(1);
  double scale = 0.0;
  for (const auto& c : object.coefficients()) {
    scale = std::max(scale, c.magnitude);
  }
  const double detail_tolerance = scale / 32767.0 * 1.01 + 1e-9;

  const geometry::Box3& bounds = db_->object_bounds()[1];
  for (const DecodedRecord& r : *decoded) {
    if (r.coeff_id == index::CoeffRecord::kBaseMeshRecord) {
      const mesh::Mesh& base = object.base();
      ASSERT_EQ(static_cast<int32_t>(r.base_vertices.size()),
                base.vertex_count());
      ASSERT_EQ(static_cast<int32_t>(r.base_faces.size()),
                base.face_count());
      for (int32_t v = 0; v < base.vertex_count(); ++v) {
        const geometry::Vec3 d = r.base_vertices[v] - base.vertex(v);
        // float32 bounds plus 16-bit quantization.
        EXPECT_LE(std::abs(d.x), bounds.Extent(0) / 65535.0 + 1e-2);
        EXPECT_LE(std::abs(d.y), bounds.Extent(1) / 65535.0 + 1e-2);
        EXPECT_LE(std::abs(d.z), bounds.Extent(2) / 65535.0 + 1e-2);
      }
      EXPECT_EQ(r.base_faces, base.faces());  // connectivity is exact
    } else {
      const auto& c = object.coefficient(r.coeff_id);
      const geometry::Vec3 d = r.detail - c.detail;
      EXPECT_LE(std::abs(d.x), detail_tolerance);
      EXPECT_LE(std::abs(d.y), detail_tolerance);
      EXPECT_LE(std::abs(d.z), detail_tolerance);
    }
  }
}

TEST_F(WireCodecTest, MultiObjectResponse) {
  std::vector<index::RecordId> ids = AllOf(0);
  const auto ids2 = AllOf(2);
  ids.insert(ids.end(), ids2.begin(), ids2.end());
  const auto bytes = EncodeRecords(*db_, ids);
  auto decoded = DecodeRecords(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), ids.size());
  int objects_seen[2] = {0, 0};
  for (const auto& r : *decoded) {
    ASSERT_TRUE(r.object_id == 0 || r.object_id == 2);
    ++objects_seen[r.object_id == 0 ? 0 : 1];
  }
  EXPECT_GT(objects_seen[0], 0);
  EXPECT_GT(objects_seen[1], 0);
}

TEST_F(WireCodecTest, CompressionBeatsTheFlatModel) {
  // The real codec should land well under the flat per-record byte model
  // used by the experiment harness (and under a naive raw encoding).
  const auto ids = AllOf(3);
  const auto bytes = EncodeRecords(*db_, ids);
  int64_t model_bytes = 0;
  for (index::RecordId id : ids) {
    model_bytes += db_->record(id).wire_bytes;
  }
  EXPECT_LT(static_cast<int64_t>(bytes.size()), model_bytes / 3);
}

TEST_F(WireCodecTest, RejectsCorruptInput) {
  const auto ids = AllOf(0);
  auto bytes = EncodeRecords(*db_, ids);
  EXPECT_FALSE(DecodeRecords({9, 9, 9}).ok());
  bytes.resize(bytes.size() / 3);
  EXPECT_FALSE(DecodeRecords(bytes).ok());
  auto extended = EncodeRecords(*db_, ids);
  extended.push_back(0);
  EXPECT_FALSE(DecodeRecords(extended).ok());
}

TEST_F(WireCodecTest, SubsetOfCoefficients) {
  // A realistic response: base + the high-w coefficients only.
  std::vector<index::RecordId> ids;
  for (size_t i = 0; i < db_->records().size(); ++i) {
    const auto& r = db_->records()[i];
    if (r.object_id != 4) continue;
    if (r.is_base() || r.w >= 0.5) ids.push_back(static_cast<int64_t>(i));
  }
  const auto bytes = EncodeRecords(*db_, ids);
  auto decoded = DecodeRecords(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), ids.size());
}

}  // namespace
}  // namespace mars::server
