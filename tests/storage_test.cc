// The out-of-core storage layer: page-store roundtrips (memory and disk),
// overflow chains, freelist reuse, restart persistence, the corruption
// idiom extended to the page file (torn writes, truncation, bit flips,
// bad magic — always a clean Status, never UB), the buffer pool's hit/
// miss/eviction accounting under both policies, and the paged index's
// bit-for-bit equivalence with its in-memory twin.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/box.h"
#include "index/access.h"
#include "index/paged_index.h"
#include "index/record.h"
#include "storage/buffer_pool.h"
#include "storage/disk_storage.h"
#include "storage/memory_storage.h"
#include "storage/pool_warmer.h"
#include "storage/storage_manager.h"

namespace mars::storage {
namespace {

std::vector<uint8_t> Bytes(size_t n, uint8_t seed) {
  std::vector<uint8_t> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return data;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// --- Manager roundtrips (shared across implementations) -----------------

void RoundTrip(IStorageManager* mgr) {
  // Fresh store, single-page array.
  PageId a = kInvalidPage;
  const std::vector<uint8_t> small = Bytes(40, 1);
  ASSERT_TRUE(mgr->Store(&a, small).ok());
  ASSERT_NE(a, kInvalidPage);
  std::vector<uint8_t> out;
  ASSERT_TRUE(mgr->Load(a, &out).ok());
  EXPECT_EQ(out, small);

  // Overflow chain: an array much larger than one page payload.
  PageId b = kInvalidPage;
  const std::vector<uint8_t> big = Bytes(5000, 2);
  ASSERT_TRUE(mgr->Store(&b, big).ok());
  ASSERT_TRUE(mgr->Load(b, &out).ok());
  EXPECT_EQ(out, big);

  // In-place rewrite, growing and shrinking the chain.
  const std::vector<uint8_t> grown = Bytes(9000, 3);
  ASSERT_TRUE(mgr->Store(&a, grown).ok());
  ASSERT_TRUE(mgr->Load(a, &out).ok());
  EXPECT_EQ(out, grown);
  const std::vector<uint8_t> shrunk = Bytes(10, 4);
  ASSERT_TRUE(mgr->Store(&a, shrunk).ok());
  ASSERT_TRUE(mgr->Load(a, &out).ok());
  EXPECT_EQ(out, shrunk);
  // The other array is untouched by a's rewrites.
  ASSERT_TRUE(mgr->Load(b, &out).ok());
  EXPECT_EQ(out, big);

  // Empty arrays are legal.
  PageId c = kInvalidPage;
  ASSERT_TRUE(mgr->Store(&c, {}).ok());
  ASSERT_TRUE(mgr->Load(c, &out).ok());
  EXPECT_TRUE(out.empty());

  // Erase frees; loading a freed id is a clean error.
  ASSERT_TRUE(mgr->Erase(b).ok());
  EXPECT_FALSE(mgr->Load(b, &out).ok());
  EXPECT_FALSE(mgr->Erase(b).ok());

  // Root bookkeeping.
  EXPECT_EQ(mgr->root(), kInvalidPage);
  ASSERT_TRUE(mgr->SetRoot(a).ok());
  EXPECT_EQ(mgr->root(), a);
}

TEST(MemoryStorageTest, RoundTrip) {
  MemoryStorageManager mgr(256);
  RoundTrip(&mgr);
  EXPECT_STREQ(mgr.name(), "memory");
}

TEST(DiskStorageTest, RoundTrip) {
  const std::string path = TempPath("storage_roundtrip.pages");
  std::remove(path.c_str());
  auto mgr = DiskStorageManager::Open(path, 256, /*truncate=*/true);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  RoundTrip(mgr.value().get());
  EXPECT_STREQ((*mgr)->name(), "disk");
  EXPECT_FALSE((*mgr)->opened_existing());
  std::remove(path.c_str());
}

TEST(MemoryStorageTest, FreelistReusesLowestId) {
  MemoryStorageManager mgr(256);
  PageId a = kInvalidPage, b = kInvalidPage, c = kInvalidPage;
  ASSERT_TRUE(mgr.Store(&a, Bytes(10, 1)).ok());
  ASSERT_TRUE(mgr.Store(&b, Bytes(10, 2)).ok());
  ASSERT_TRUE(mgr.Store(&c, Bytes(10, 3)).ok());
  ASSERT_TRUE(mgr.Erase(a).ok());
  ASSERT_TRUE(mgr.Erase(b).ok());
  PageId d = kInvalidPage;
  ASSERT_TRUE(mgr.Store(&d, Bytes(10, 4)).ok());
  EXPECT_EQ(d, std::min(a, b));  // lowest freed id is reused first
  EXPECT_EQ(mgr.stats().pages_freed, 2);
}

TEST(DiskStorageTest, FreedPagesAreReusedNotAppended) {
  const std::string path = TempPath("storage_freelist.pages");
  std::remove(path.c_str());
  auto mgr = DiskStorageManager::Open(path, 256, /*truncate=*/true);
  ASSERT_TRUE(mgr.ok());
  // A multi-page chain, freed, must be fully recycled by the next chain.
  PageId a = kInvalidPage;
  ASSERT_TRUE((*mgr)->Store(&a, Bytes(2000, 1)).ok());
  const int64_t pages_after_first = (*mgr)->page_count();
  ASSERT_TRUE((*mgr)->Erase(a).ok());
  PageId b = kInvalidPage;
  ASSERT_TRUE((*mgr)->Store(&b, Bytes(2000, 2)).ok());
  EXPECT_EQ((*mgr)->page_count(), pages_after_first);
  std::remove(path.c_str());
}

// --- Disk persistence across close/reopen -------------------------------

TEST(DiskStorageTest, SurvivesCloseAndReopen) {
  const std::string path = TempPath("storage_reopen.pages");
  std::remove(path.c_str());
  const std::vector<uint8_t> payload = Bytes(3000, 7);
  PageId id = kInvalidPage;
  {
    auto mgr = DiskStorageManager::Open(path, 512, /*truncate=*/true);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Store(&id, payload).ok());
    ASSERT_TRUE((*mgr)->SetRoot(id).ok());
    ASSERT_TRUE((*mgr)->Flush().ok());
  }  // destructor closes the file
  auto reopened = DiskStorageManager::Open(path, 512);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->opened_existing());
  EXPECT_EQ((*reopened)->root(), id);
  std::vector<uint8_t> out;
  ASSERT_TRUE((*reopened)->Load(id, &out).ok());
  EXPECT_EQ(out, payload);
  std::remove(path.c_str());
}

TEST(DiskStorageTest, ReopenTakesPageSizeFromFile) {
  const std::string path = TempPath("storage_pagesize.pages");
  std::remove(path.c_str());
  {
    auto mgr = DiskStorageManager::Open(path, 512, /*truncate=*/true);
    ASSERT_TRUE(mgr.ok());
    PageId id = kInvalidPage;
    ASSERT_TRUE((*mgr)->Store(&id, Bytes(100, 1)).ok());
  }
  // A different requested size attaches at the stored size instead.
  auto reopened = DiskStorageManager::Open(path, 4096);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_size(), 512);
  std::remove(path.c_str());
}

// --- Corruption: clean errors, never UB ---------------------------------

class DiskCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("storage_corrupt.pages");
    std::remove(path_.c_str());
    auto mgr = DiskStorageManager::Open(path_, 256, /*truncate=*/true);
    ASSERT_TRUE(mgr.ok());
    id_ = kInvalidPage;
    ASSERT_TRUE((*mgr)->Store(&id_, Bytes(900, 5)).ok());
    ASSERT_TRUE((*mgr)->SetRoot(id_).ok());
    ASSERT_TRUE((*mgr)->Flush().ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<uint8_t> ReadFile() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
  }

  void WriteFile(const std::vector<uint8_t>& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  std::string path_;
  PageId id_ = kInvalidPage;
};

TEST_F(DiskCorruptionTest, TruncatedFileFailsCleanly) {
  const std::vector<uint8_t> full = ReadFile();
  // Every truncation point (sampled): either Open fails, or Open attaches
  // to the surviving prefix and the torn chain fails at Load — never a
  // crash, never garbage data returned as success.
  for (size_t len = 0; len < full.size(); len += 1 + full.size() / 64) {
    WriteFile(std::vector<uint8_t>(full.begin(), full.begin() + len));
    auto mgr = DiskStorageManager::Open(path_, 256);
    if (!mgr.ok()) continue;
    std::vector<uint8_t> out;
    const auto status = (*mgr)->Load(id_, &out);
    if (status.ok()) {
      EXPECT_EQ(out, Bytes(900, 5)) << "torn read returned wrong data";
    }
  }
}

TEST_F(DiskCorruptionTest, BitFlipsSurfaceAsChecksumErrors) {
  const std::vector<uint8_t> full = ReadFile();
  common::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes = full;
    const size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int>(bytes.size() - 1)));
    bytes[pos] ^= static_cast<uint8_t>(1u << (trial % 8));
    WriteFile(bytes);
    auto mgr = DiskStorageManager::Open(path_, 256);
    if (!mgr.ok()) continue;  // header flip: rejected at open
    std::vector<uint8_t> out;
    const auto status = (*mgr)->Load(id_, &out);
    if (status.ok()) {
      // A flip in an unused slot or freed region may leave the chain
      // intact — but then the data must be exactly right.
      EXPECT_EQ(out, Bytes(900, 5)) << "flip at " << pos << " parsed wrong";
    }
  }
}

TEST_F(DiskCorruptionTest, BadMagicRejectedAtOpen) {
  std::vector<uint8_t> bytes = ReadFile();
  bytes[0] ^= 0xFF;
  WriteFile(bytes);
  auto mgr = DiskStorageManager::Open(path_, 256);
  EXPECT_FALSE(mgr.ok());
}

TEST_F(DiskCorruptionTest, TornPayloadWriteFailsTheLoad) {
  // Simulate a torn write: zero the tail of the last page (checksum and
  // header survive, payload does not).
  std::vector<uint8_t> bytes = ReadFile();
  for (size_t i = bytes.size() - 64; i < bytes.size(); ++i) {
    bytes[i] = 0;
  }
  WriteFile(bytes);
  auto mgr = DiskStorageManager::Open(path_, 256);
  ASSERT_TRUE(mgr.ok());  // header is fine
  std::vector<uint8_t> out;
  EXPECT_FALSE((*mgr)->Load(id_, &out).ok());
}

TEST(DiskStorageTest, LoadOfInvalidIdsFailsCleanly) {
  const std::string path = TempPath("storage_badid.pages");
  std::remove(path.c_str());
  auto mgr = DiskStorageManager::Open(path, 256, /*truncate=*/true);
  ASSERT_TRUE(mgr.ok());
  std::vector<uint8_t> out;
  EXPECT_FALSE((*mgr)->Load(kInvalidPage, &out).ok());
  EXPECT_FALSE((*mgr)->Load(0, &out).ok());    // never allocated
  EXPECT_FALSE((*mgr)->Load(999, &out).ok());  // beyond the file
  EXPECT_FALSE((*mgr)->Erase(999).ok());
  std::remove(path.c_str());
}

// --- BufferPool ---------------------------------------------------------

TEST(BufferPoolTest, CountsHitsMissesAndWritesThrough) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/8, EvictPolicy::kLru);

  PageId a = kInvalidPage;
  ASSERT_TRUE(pool.Store(&a, Bytes(64, 1)).ok());
  EXPECT_EQ(pool.stats().disk_writes, 1);

  // Stored arrays are resident: first fetch is already a hit.
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Fetch(a, &out).ok());
  EXPECT_EQ(out, Bytes(64, 1));
  EXPECT_EQ(pool.stats().hits, 1);
  EXPECT_EQ(pool.stats().misses, 0);

  // A cold array (written behind the pool's back) misses, then hits.
  PageId b = kInvalidPage;
  ASSERT_TRUE(mgr.Store(&b, Bytes(64, 2)).ok());
  ASSERT_TRUE(pool.Fetch(b, &out).ok());
  EXPECT_EQ(pool.stats().misses, 1);
  EXPECT_EQ(pool.stats().disk_reads, 1);
  ASSERT_TRUE(pool.Fetch(b, &out).ok());
  EXPECT_EQ(pool.stats().hits, 2);
  EXPECT_EQ(pool.stats().disk_reads, 1);
}

TEST(BufferPoolTest, EvictsLruWhenOverCapacity) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/2, EvictPolicy::kLru);
  PageId a = kInvalidPage, b = kInvalidPage, c = kInvalidPage;
  ASSERT_TRUE(pool.Store(&a, Bytes(64, 1)).ok());
  ASSERT_TRUE(pool.Store(&b, Bytes(64, 2)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Fetch(a, &out).ok());  // refresh a; b is now LRU
  ASSERT_TRUE(pool.Store(&c, Bytes(64, 3)).ok());
  EXPECT_EQ(pool.stats().evictions, 1);
  EXPECT_EQ(pool.stats().resident_pages, 2);

  // b was evicted: fetching it again is a miss; a stayed resident.
  const int64_t misses = pool.stats().misses;
  ASSERT_TRUE(pool.Fetch(a, &out).ok());
  EXPECT_EQ(pool.stats().misses, misses);
  ASSERT_TRUE(pool.Fetch(b, &out).ok());
  EXPECT_EQ(pool.stats().misses, misses + 1);
}

TEST(BufferPoolTest, MotionPolicyKeepsHighInterestPages) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/2, EvictPolicy::kMotion);

  // Two pages: one in a region the fleet is predicted to visit, one not.
  PageId hot = kInvalidPage, cold = kInvalidPage;
  ASSERT_TRUE(pool.Store(&hot, Bytes(64, 1)).ok());
  ASSERT_TRUE(pool.Store(&cold, Bytes(64, 2)).ok());
  pool.SetPageRegion(hot, geometry::MakeBox2(0, 0, 10, 10));
  pool.SetPageRegion(cold, geometry::MakeBox2(90, 90, 100, 100));

  InterestGrid interest;
  interest.space = geometry::MakeBox2(0, 0, 100, 100);
  interest.nx = 10;
  interest.ny = 10;
  interest.score.assign(100, 0.0);
  interest.score[0] = 1.0;  // block containing `hot`'s region
  pool.UpdateInterest(interest);

  // Make `cold` the most recently used; LRU would evict `hot`, the
  // motion policy must evict `cold` anyway (lowest predicted interest).
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Fetch(cold, &out).ok());
  PageId third = kInvalidPage;
  ASSERT_TRUE(pool.Store(&third, Bytes(64, 3)).ok());

  const int64_t misses = pool.stats().misses;
  ASSERT_TRUE(pool.Fetch(hot, &out).ok());
  EXPECT_EQ(pool.stats().misses, misses) << "hot page was evicted";
  ASSERT_TRUE(pool.Fetch(cold, &out).ok());
  EXPECT_EQ(pool.stats().misses, misses + 1) << "cold page survived";
}

TEST(BufferPoolTest, EraseDropsResidencyAndFreesStorage) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/8, EvictPolicy::kLru);
  PageId a = kInvalidPage;
  ASSERT_TRUE(pool.Store(&a, Bytes(64, 1)).ok());
  ASSERT_TRUE(pool.Erase(a).ok());
  EXPECT_EQ(pool.stats().resident, 0);
  std::vector<uint8_t> out;
  EXPECT_FALSE(pool.Fetch(a, &out).ok());
}

TEST(InterestGridTest, ScoreRegionAveragesOverlappedBlocks) {
  InterestGrid grid;
  grid.space = geometry::MakeBox2(0, 0, 100, 100);
  grid.nx = 2;
  grid.ny = 2;
  grid.score = {1.0, 0.0, 0.0, 0.0};  // only the lower-left block is hot

  EXPECT_DOUBLE_EQ(grid.ScoreRegion(geometry::MakeBox2(0, 0, 40, 40)), 1.0);
  EXPECT_DOUBLE_EQ(grid.ScoreRegion(geometry::MakeBox2(60, 60, 90, 90)), 0.0);
  // A region spanning all four blocks averages them.
  EXPECT_DOUBLE_EQ(grid.ScoreRegion(geometry::MakeBox2(10, 10, 90, 90)),
                   0.25);
  // Degenerate cases score zero.
  EXPECT_DOUBLE_EQ(InterestGrid().ScoreRegion(geometry::MakeBox2(0, 0, 1, 1)),
                   0.0);
}

// --- Pool warming (storage::PoolWarmer) ---------------------------------

// Stores `n` one-page arrays behind the pool's back (cold) and registers
// each with a region in column i of the grid's bottom row, so page i
// scores `GradedGrid`'s column-i value. Returns the ids.
std::vector<PageId> ColdGradedPages(MemoryStorageManager* mgr,
                                    BufferPool* pool, int n) {
  std::vector<PageId> ids;
  for (int i = 0; i < n; ++i) {
    PageId id = kInvalidPage;
    EXPECT_TRUE(mgr->Store(&id, Bytes(64, static_cast<uint8_t>(i))).ok());
    pool->SetPageRegion(
        id, geometry::MakeBox2(10.0 * i + 1, 1, 10.0 * i + 9, 9));
    ids.push_back(id);
  }
  return ids;
}

// Bottom-row scores decline left to right: column i scores 1 - i/10.
InterestGrid GradedGrid() {
  InterestGrid grid;
  grid.space = geometry::MakeBox2(0, 0, 100, 100);
  grid.nx = 10;
  grid.ny = 10;
  grid.score.assign(100, 0.0);
  for (int i = 0; i < 10; ++i) {
    grid.score[static_cast<size_t>(i)] = 1.0 - 0.1 * i;
  }
  return grid;
}

TEST(PoolWarmerTest, WarmsHottestPagesUpToBudget) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/8, EvictPolicy::kMotion);
  const std::vector<PageId> ids = ColdGradedPages(&mgr, &pool, 5);
  pool.UpdateInterest(GradedGrid());

  PoolWarmer::Options opts;
  opts.budget = 2;
  PoolWarmer warmer(opts);
  warmer.AddPool(&pool);
  warmer.Dispatch();
  warmer.Join();

  // Exactly the budget was issued, and it went to the two hottest pages.
  EXPECT_EQ(pool.stats().prefetch_issued, 2);
  EXPECT_EQ(pool.stats().resident, 2);
  EXPECT_EQ(warmer.active_ticks(), 1);
  std::vector<uint8_t> out;
  const int64_t misses = pool.stats().misses;
  ASSERT_TRUE(pool.Fetch(ids[0], &out).ok());
  EXPECT_EQ(out, Bytes(64, 0));
  ASSERT_TRUE(pool.Fetch(ids[1], &out).ok());
  EXPECT_EQ(pool.stats().misses, misses) << "a warmed page missed";
  EXPECT_EQ(pool.stats().prefetch_hits, 2);
  // A second fetch of a warmed page is an ordinary hit, not a second
  // prefetch hit.
  ASSERT_TRUE(pool.Fetch(ids[0], &out).ok());
  EXPECT_EQ(pool.stats().prefetch_hits, 2);
  // The third-hottest page was not admitted this tick.
  ASSERT_TRUE(pool.Fetch(ids[2], &out).ok());
  EXPECT_EQ(pool.stats().misses, misses + 1);
}

TEST(PoolWarmerTest, InFlightBoundCapsAnOversizedBudget) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/8, EvictPolicy::kMotion);
  ColdGradedPages(&mgr, &pool, 6);
  pool.UpdateInterest(GradedGrid());

  PoolWarmer::Options opts;
  opts.budget = 100;
  opts.max_in_flight = 3;
  PoolWarmer warmer(opts);
  warmer.AddPool(&pool);
  warmer.Dispatch();
  warmer.Join();
  EXPECT_EQ(pool.stats().prefetch_issued, 3);
}

TEST(PoolWarmerTest, InertWithoutAnInterestField) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/8, EvictPolicy::kMotion);
  ColdGradedPages(&mgr, &pool, 4);
  // No UpdateInterest: every candidate scores zero, nothing dispatches.
  PoolWarmer warmer(PoolWarmer::Options{});
  warmer.AddPool(&pool);
  warmer.Dispatch();
  warmer.Join();
  EXPECT_EQ(pool.stats().prefetch_issued, 0);
  EXPECT_EQ(pool.stats().resident, 0);
  EXPECT_EQ(warmer.active_ticks(), 0);
}

TEST(PoolWarmerTest, NeverEvictsAHotterResidentForASpeculativePage) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/1, EvictPolicy::kMotion);
  // The resident page sits in the hottest column; the cold candidate
  // (score 0.4 > 0, so it is dispatched) must be refused at install.
  PageId hot = kInvalidPage;
  ASSERT_TRUE(pool.Store(&hot, Bytes(64, 9)).ok());
  pool.SetPageRegion(hot, geometry::MakeBox2(1, 1, 9, 9));
  PageId cold = kInvalidPage;
  ASSERT_TRUE(mgr.Store(&cold, Bytes(64, 8)).ok());
  pool.SetPageRegion(cold, geometry::MakeBox2(61, 1, 69, 9));
  pool.UpdateInterest(GradedGrid());

  PoolWarmer warmer(PoolWarmer::Options{});
  warmer.AddPool(&pool);
  warmer.Dispatch();
  warmer.Join();
  EXPECT_EQ(pool.stats().prefetch_issued, 1);
  EXPECT_EQ(pool.stats().prefetch_dropped, 1);
  EXPECT_EQ(pool.stats().evictions, 0);
  const int64_t misses = pool.stats().misses;
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Fetch(hot, &out).ok());
  EXPECT_EQ(pool.stats().misses, misses) << "hot resident was evicted";
}

TEST(PoolWarmerTest, EvictsAColderResidentForAHotterSpeculativePage) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/1, EvictPolicy::kMotion);
  // Reverse of the test above: cold resident, hot candidate.
  PageId cold = kInvalidPage;
  ASSERT_TRUE(pool.Store(&cold, Bytes(64, 8)).ok());
  pool.SetPageRegion(cold, geometry::MakeBox2(61, 1, 69, 9));
  PageId hot = kInvalidPage;
  ASSERT_TRUE(mgr.Store(&hot, Bytes(64, 9)).ok());
  pool.SetPageRegion(hot, geometry::MakeBox2(1, 1, 9, 9));
  pool.UpdateInterest(GradedGrid());

  PoolWarmer warmer(PoolWarmer::Options{});
  warmer.AddPool(&pool);
  warmer.Dispatch();
  warmer.Join();
  EXPECT_EQ(pool.stats().prefetch_issued, 1);
  EXPECT_EQ(pool.stats().prefetch_dropped, 0);
  EXPECT_EQ(pool.stats().evictions, 1);
  const int64_t misses = pool.stats().misses;
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Fetch(hot, &out).ok());
  EXPECT_EQ(out, Bytes(64, 9));
  EXPECT_EQ(pool.stats().misses, misses) << "warmed page not resident";
}

TEST(PoolWarmerTest, QueryBeatingThePrefetchDropsTheInstall) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/8, EvictPolicy::kMotion);
  const std::vector<PageId> ids = ColdGradedPages(&mgr, &pool, 1);
  pool.UpdateInterest(GradedGrid());

  PoolWarmer::Options opts;
  opts.budget = 1;
  PoolWarmer warmer(opts);
  warmer.AddPool(&pool);
  warmer.Dispatch();
  // A query fetches the page while its speculative read is in flight:
  // whatever the I/O timing, the install at Join finds it resident and
  // must refuse without touching the bytes or double-counting.
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Fetch(ids[0], &out).ok());
  warmer.Join();
  EXPECT_EQ(pool.stats().prefetch_issued, 1);
  EXPECT_EQ(pool.stats().prefetch_dropped, 1);
  EXPECT_EQ(pool.stats().prefetch_hits, 0);
  ASSERT_TRUE(pool.Fetch(ids[0], &out).ok());
  EXPECT_EQ(out, Bytes(64, 0));
}

TEST(PoolWarmerTest, SpeculativePageEvictedUnusedCountsAsWasted) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/2, EvictPolicy::kMotion);
  // Warm the mildly-hot page 6 (score 0.4), then fault in the two
  // hottest pages: the never-used speculative entry is the coldest
  // resident both times, so it is evicted before any query hits it.
  const std::vector<PageId> ids = ColdGradedPages(&mgr, &pool, 7);
  InterestGrid grid = GradedGrid();
  for (int i = 0; i < 6; ++i) grid.score[static_cast<size_t>(i)] = 0.0;
  pool.UpdateInterest(grid);

  PoolWarmer::Options opts;
  opts.budget = 1;
  PoolWarmer warmer(opts);
  warmer.AddPool(&pool);
  warmer.Dispatch();
  warmer.Join();
  EXPECT_EQ(pool.stats().prefetch_issued, 1);
  EXPECT_EQ(pool.stats().resident, 1);

  pool.UpdateInterest(GradedGrid());  // page 6 is now the coldest
  std::vector<uint8_t> out;
  ASSERT_TRUE(pool.Fetch(ids[0], &out).ok());
  ASSERT_TRUE(pool.Fetch(ids[1], &out).ok());
  EXPECT_EQ(pool.stats().prefetch_wasted, 1);
  EXPECT_EQ(pool.stats().prefetch_hits, 0);
}

TEST(PoolWarmerTest, ConcurrentQueriesDuringSpeculativeReads) {
  MemoryStorageManager mgr(256);
  BufferPool pool(&mgr, /*capacity_pages=*/4, EvictPolicy::kMotion);
  const std::vector<PageId> ids = ColdGradedPages(&mgr, &pool, 10);
  pool.UpdateInterest(GradedGrid());

  PoolWarmer::Options opts;
  opts.budget = 4;
  opts.workers = 2;
  PoolWarmer warmer(opts);
  warmer.AddPool(&pool);

  // Production shape: queries only ever overlap the speculative reads
  // (between Dispatch and Join), never the serial install window. TSan
  // runs this file, so any pool/manager race here is caught.
  for (int tick = 0; tick < 8; ++tick) {
    warmer.Join();
    warmer.Dispatch();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&pool, &ids, t] {
        std::vector<uint8_t> out;
        for (int k = 0; k < 8; ++k) {
          const size_t i = static_cast<size_t>(t * 5 + k * 3) % ids.size();
          const common::Status s = pool.Fetch(ids[i], &out);
          EXPECT_TRUE(s.ok());
          EXPECT_EQ(out, Bytes(64, static_cast<uint8_t>(i)));
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  warmer.Join();

  // Whatever the interleaving, every array still reads back intact.
  std::vector<uint8_t> out;
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(pool.Fetch(ids[i], &out).ok());
    EXPECT_EQ(out, Bytes(64, static_cast<uint8_t>(i)));
  }
  EXPECT_GT(pool.stats().prefetch_issued, 0);
}

// --- Paged index vs in-memory twin --------------------------------------

std::vector<index::CoeffRecord> MakeRecords(int objects, int coeffs,
                                            uint64_t seed) {
  common::Rng rng(seed);
  std::vector<index::CoeffRecord> records;
  for (int obj = 0; obj < objects; ++obj) {
    const double cx = rng.Uniform(50, 950);
    const double cy = rng.Uniform(50, 950);
    for (int c = 0; c < coeffs; ++c) {
      index::CoeffRecord rec;
      rec.object_id = obj;
      rec.coeff_id = c;
      rec.w = rng.UniformDouble();
      const double extent = 1.0 + 20.0 * rec.w;
      const double x = cx + rng.Uniform(-25, 25);
      const double y = cy + rng.Uniform(-25, 25);
      rec.position = {x, y, rng.Uniform(0, 20)};
      rec.support_bounds = geometry::MakeBox3(x - extent, y - extent, 0,
                                              x + extent, y + extent, 20);
      records.push_back(rec);
    }
  }
  return records;
}

TEST(PagedIndexTest, MatchesMemoryIndexIncludingNodeAccesses) {
  const auto records = MakeRecords(30, 40, 3);
  MemoryStorageManager mgr(1024);
  BufferPool pool(&mgr, /*capacity_pages=*/4096, EvictPolicy::kLru);

  index::SupportRegionIndex memory_index;
  memory_index.Build(records);
  index::PagedSupportRegionIndex paged_index(index::RTreeOptions(), &pool);
  paged_index.Build(records);

  common::Rng rng(17);
  for (int q = 0; q < 40; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 120, y + 120);
    std::vector<index::RecordId> got_mem, got_paged;
    const int64_t io_mem = memory_index.Query(region, 0.3, 1.0, &got_mem);
    const int64_t io_paged = paged_index.Query(region, 0.3, 1.0, &got_paged);
    EXPECT_EQ(got_paged, got_mem);  // identical ids in identical order
    EXPECT_EQ(io_paged, io_mem);    // page fetches == node accesses
  }
  EXPECT_EQ(paged_index.node_accesses(), memory_index.node_accesses());
}

TEST(PagedIndexTest, NaivePointTwinMatchesToo) {
  const auto records = MakeRecords(20, 30, 5);
  MemoryStorageManager mgr(1024);
  BufferPool pool(&mgr, /*capacity_pages=*/4096, EvictPolicy::kLru);

  index::NaivePointIndex memory_index;
  memory_index.Build(records);
  index::PagedNaivePointIndex paged_index(index::RTreeOptions(), &pool);
  paged_index.Build(records);

  common::Rng rng(19);
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 120, y + 120);
    std::vector<index::RecordId> got_mem, got_paged;
    const int64_t io_mem = memory_index.Query(region, 0.2, 0.9, &got_mem);
    const int64_t io_paged = paged_index.Query(region, 0.2, 0.9, &got_paged);
    EXPECT_EQ(got_paged, got_mem);
    EXPECT_EQ(io_paged, io_mem);
  }
}

TEST(PagedIndexTest, TinyPoolStillReturnsExactResults) {
  // A pool far smaller than the tree forces eviction churn mid-query;
  // results and access counts must not change, only the hit rate.
  const auto records = MakeRecords(30, 40, 7);
  const std::string path = TempPath("storage_tiny_pool.pages");
  std::remove(path.c_str());
  auto mgr = DiskStorageManager::Open(path, 512, /*truncate=*/true);
  ASSERT_TRUE(mgr.ok());
  BufferPool pool(mgr.value().get(), /*capacity_pages=*/4, EvictPolicy::kLru);

  index::SupportRegionIndex memory_index;
  memory_index.Build(records);
  index::PagedSupportRegionIndex paged_index(index::RTreeOptions(), &pool);
  paged_index.Build(records);

  common::Rng rng(23);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 150, y + 150);
    std::vector<index::RecordId> got_mem, got_paged;
    const int64_t io_mem = memory_index.Query(region, 0.0, 1.0, &got_mem);
    const int64_t io_paged = paged_index.Query(region, 0.0, 1.0, &got_paged);
    EXPECT_EQ(got_paged, got_mem);
    EXPECT_EQ(io_paged, io_mem);
  }
  EXPECT_GT(pool.stats().misses, 0);  // the tiny pool really did thrash
  std::remove(path.c_str());
}

TEST(PagedIndexTest, FreePagesReturnsEverythingToTheFreelist) {
  const auto records = MakeRecords(10, 20, 9);
  MemoryStorageManager mgr(1024);
  BufferPool pool(&mgr, /*capacity_pages=*/4096, EvictPolicy::kLru);
  index::PagedSupportRegionIndex paged_index(index::RTreeOptions(), &pool);
  paged_index.Build(records);
  const int64_t allocated = mgr.stats().pages_allocated;
  ASSERT_GT(allocated, 0);
  ASSERT_TRUE(paged_index.FreePages().ok());
  EXPECT_EQ(mgr.stats().pages_freed, allocated);
}

}  // namespace
}  // namespace mars::storage
