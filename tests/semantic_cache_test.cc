#include <cmath>

#include <gtest/gtest.h>

#include "client/semantic_cache.h"
#include "common/rng.h"
#include "geometry/box.h"

namespace mars::client {
namespace {

using geometry::Box2;
using geometry::MakeBox2;

// Brute-force oracle over a fine sample lattice: after executing a
// sequence of (window, w_min) queries through the cache, the union of
// returned sub-query volumes must exactly equal the part of each query's
// (region × band) volume not covered by earlier queries.
class LatticeOracle {
 public:
  // Tracks, per lattice point, the lowest w already fetched.
  LatticeOracle(const Box2& space, int n) : space_(space), n_(n) {
    held_.assign(static_cast<size_t>(n) * n, 2.0);  // 2.0 = nothing
  }

  // Expected remainder volume of a query, and marks it fetched.
  double QueryAndMark(const Box2& window, double w_min) {
    const double cell =
        (space_.Extent(0) / n_) * (space_.Extent(1) / n_);
    double missing = 0.0;
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        const double x = space_.lo(0) + (i + 0.5) * space_.Extent(0) / n_;
        const double y = space_.lo(1) + (j + 0.5) * space_.Extent(1) / n_;
        if (!window.ContainsPoint({x, y})) continue;
        double& held = held_[static_cast<size_t>(i) * n_ + j];
        const double top = std::min(held, 1.0);
        if (w_min < top) missing += (top - w_min) * cell;
        held = std::min(held, w_min);
      }
    }
    return missing;
  }

 private:
  Box2 space_;
  int n_;
  std::vector<double> held_;
};

double PlanVolume(const std::vector<server::SubQuery>& plan) {
  double total = 0.0;
  for (const auto& q : plan) {
    total += q.region.Volume() * (q.w_max - q.w_min);
  }
  return total;
}

TEST(SemanticCacheTest, FirstQueryGoesThroughWhole) {
  SemanticCache cache;
  const Box2 window = MakeBox2(0, 0, 10, 10);
  const auto plan = cache.PlanAndInsert(window, 0.4);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].region, window);
  EXPECT_DOUBLE_EQ(plan[0].w_min, 0.4);
  EXPECT_DOUBLE_EQ(plan[0].w_max, 1.0);
  EXPECT_DOUBLE_EQ(cache.last_coverage(), 0.0);
}

TEST(SemanticCacheTest, RepeatQueryFullyCovered) {
  SemanticCache cache;
  const Box2 window = MakeBox2(0, 0, 10, 10);
  cache.PlanAndInsert(window, 0.4);
  const auto plan = cache.PlanAndInsert(window, 0.4);
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(cache.last_coverage(), 1.0);
}

TEST(SemanticCacheTest, CoarserRepeatAlsoCovered) {
  SemanticCache cache;
  cache.PlanAndInsert(MakeBox2(0, 0, 10, 10), 0.2);
  const auto plan = cache.PlanAndInsert(MakeBox2(2, 2, 8, 8), 0.7);
  EXPECT_TRUE(plan.empty());
}

TEST(SemanticCacheTest, SlowdownFetchesOnlyTheMissingBand) {
  SemanticCache cache;
  const Box2 window = MakeBox2(0, 0, 10, 10);
  cache.PlanAndInsert(window, 0.6);
  const auto plan = cache.PlanAndInsert(window, 0.1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].region, window);
  EXPECT_DOUBLE_EQ(plan[0].w_min, 0.1);
  EXPECT_DOUBLE_EQ(plan[0].w_max, 0.6);  // only the new band
}

TEST(SemanticCacheTest, SlidingWindowFetchesOnlyNewStrip) {
  SemanticCache cache;
  cache.PlanAndInsert(MakeBox2(0, 0, 10, 10), 0.5);
  const auto plan = cache.PlanAndInsert(MakeBox2(2, 0, 12, 10), 0.5);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].region, MakeBox2(10, 0, 12, 10));
  EXPECT_NEAR(cache.last_coverage(), 0.8, 1e-9);
}

TEST(SemanticCacheTest, MultipleHistoryRegionsAllHelp) {
  // Unlike Algorithm 1 (which only remembers the previous frame), the
  // semantic cache trims against the whole history: revisiting an old
  // region is free.
  SemanticCache cache;
  cache.PlanAndInsert(MakeBox2(0, 0, 10, 10), 0.5);
  cache.PlanAndInsert(MakeBox2(50, 50, 60, 60), 0.5);
  const auto plan = cache.PlanAndInsert(MakeBox2(0, 0, 10, 10), 0.5);
  EXPECT_TRUE(plan.empty());
}

TEST(SemanticCacheTest, EvictionForgetsOldRegions) {
  SemanticCache::Options options;
  options.max_entries = 2;
  SemanticCache cache(options);
  cache.PlanAndInsert(MakeBox2(0, 0, 10, 10), 0.5);    // will be evicted
  cache.PlanAndInsert(MakeBox2(20, 0, 30, 10), 0.5);
  cache.PlanAndInsert(MakeBox2(40, 0, 50, 10), 0.5);
  EXPECT_EQ(cache.entry_count(), 2u);
  const auto plan = cache.PlanAndInsert(MakeBox2(0, 0, 10, 10), 0.5);
  EXPECT_FALSE(plan.empty());  // the first region was forgotten
}

TEST(SemanticCacheTest, DominatedEntriesCollapse) {
  SemanticCache cache;
  cache.PlanAndInsert(MakeBox2(2, 2, 4, 4), 0.8);
  cache.PlanAndInsert(MakeBox2(3, 3, 5, 5), 0.9);
  // A strictly dominating query replaces both.
  cache.PlanAndInsert(MakeBox2(0, 0, 10, 10), 0.5);
  EXPECT_EQ(cache.entry_count(), 1u);
}

// Property test against the lattice oracle: the planned remainder volume
// must match the truly missing volume for random query sequences.
class SemanticCachePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SemanticCachePropertyTest, PlannedVolumeMatchesOracle) {
  common::Rng rng(GetParam());
  const Box2 space = MakeBox2(0, 0, 64, 64);
  SemanticCache::Options options;
  options.max_entries = 1000;  // no eviction: the oracle never forgets
  SemanticCache cache(options);
  LatticeOracle oracle(space, 64);

  for (int q = 0; q < 40; ++q) {
    // Lattice-aligned windows so the point-sample oracle is exact.
    const double x0 = rng.UniformInt(0, 48);
    const double y0 = rng.UniformInt(0, 48);
    const Box2 window = MakeBox2(x0, y0, x0 + rng.UniformInt(1, 16),
                                 y0 + rng.UniformInt(1, 16));
    const double w_min = rng.UniformInt(0, 10) / 10.0;
    const double expected = oracle.QueryAndMark(window, w_min);
    const auto plan = cache.PlanAndInsert(window, w_min);
    EXPECT_NEAR(PlanVolume(plan), expected, 1e-6)
        << "query " << q << " window " << window << " w " << w_min;
    // Sub-queries stay inside the window.
    for (const auto& sq : plan) {
      EXPECT_TRUE(window.Contains(sq.region));
      EXPECT_LE(sq.w_min, sq.w_max);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticCachePropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mars::client
