#include <algorithm>
#include <cstdio>
#include <thread>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/box.h"
#include "index/access.h"
#include "index/record.h"
#include "index/sharded_index.h"
#include "index/shard_map.h"
#include "storage/storage_manager.h"
#include "workload/scene.h"

namespace mars::index {
namespace {

// Synthesizes a record table resembling a decomposed scene: clustered
// "objects", each with a large base record and many coefficients whose
// support extent shrinks (and value falls) with level.
std::vector<CoeffRecord> MakeRecords(int objects, int coeffs_per_object,
                                     uint64_t seed) {
  common::Rng rng(seed);
  std::vector<CoeffRecord> records;
  for (int obj = 0; obj < objects; ++obj) {
    const double cx = rng.Uniform(50, 950);
    const double cy = rng.Uniform(50, 950);
    CoeffRecord base;
    base.object_id = obj;
    base.coeff_id = CoeffRecord::kBaseMeshRecord;
    base.w = 1.0;
    base.position = {cx, cy, 10};
    base.support_bounds =
        geometry::MakeBox3(cx - 25, cy - 25, 0, cx + 25, cy + 25, 20);
    base.wire_bytes = 432;
    records.push_back(base);
    for (int c = 0; c < coeffs_per_object; ++c) {
      CoeffRecord rec;
      rec.object_id = obj;
      rec.coeff_id = c;
      rec.w = rng.UniformDouble();
      const double extent = 1.0 + 20.0 * rec.w;  // bigger w, bigger support
      const double x = cx + rng.Uniform(-25, 25);
      const double y = cy + rng.Uniform(-25, 25);
      rec.position = {x, y, rng.Uniform(0, 20)};
      rec.support_bounds = geometry::MakeBox3(
          x - extent, y - extent, 0, x + extent, y + extent, 20);
      records.push_back(rec);
    }
  }
  return records;
}

// The required set: support MBB intersects the window (ground plane) and w
// within band.
std::vector<RecordId> Oracle(const std::vector<CoeffRecord>& records,
                             const geometry::Box2& region, double w_min,
                             double w_max) {
  std::vector<RecordId> out;
  for (size_t i = 0; i < records.size(); ++i) {
    const CoeffRecord& r = records[i];
    if (r.w < w_min || r.w > w_max) continue;
    const geometry::Box2 support2(
        {r.support_bounds.lo(0), r.support_bounds.lo(1)},
        {r.support_bounds.hi(0), r.support_bounds.hi(1)});
    if (support2.Intersects(region)) out.push_back(static_cast<int64_t>(i));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class AccessEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AccessEquivalenceTest, BothStrategiesReturnTheRequiredSet) {
  const auto [w_min, w_max] = GetParam();
  const auto records = MakeRecords(40, 50, 3);

  SupportRegionIndex support;
  NaivePointIndex naive;
  support.Build(records);
  naive.Build(records);

  common::Rng rng(17);
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region =
        geometry::MakeBox2(x, y, x + 100, y + 100);
    const auto expected = Oracle(records, region, w_min, w_max);

    std::vector<RecordId> got_support, got_naive;
    support.Query(region, w_min, w_max, &got_support);
    naive.Query(region, w_min, w_max, &got_naive);
    std::sort(got_support.begin(), got_support.end());
    std::sort(got_naive.begin(), got_naive.end());
    EXPECT_EQ(got_support, expected);
    EXPECT_EQ(got_naive, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Bands, AccessEquivalenceTest,
    ::testing::Values(std::make_tuple(0.0, 1.0), std::make_tuple(0.5, 1.0),
                      std::make_tuple(0.9, 1.0), std::make_tuple(0.2, 0.6),
                      std::make_tuple(1.0, 1.0)));

TEST(AccessCostTest, SupportRegionIndexCheaperThanNaive) {
  // The motivating claim of Sec. VI: the one-pass support-region index
  // beats the two-pass point index on I/O.
  const auto records = MakeRecords(80, 60, 5);
  SupportRegionIndex support;
  NaivePointIndex naive;
  support.Build(records);
  naive.Build(records);
  support.ResetStats();
  naive.ResetStats();

  common::Rng rng(19);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region =
        geometry::MakeBox2(x, y, x + 100, y + 100);
    std::vector<RecordId> out;
    support.Query(region, 0.5, 1.0, &out);
    out.clear();
    naive.Query(region, 0.5, 1.0, &out);
  }
  EXPECT_LT(support.node_accesses(), naive.node_accesses());
}

TEST(AccessCostTest, HighSpeedQueriesCostLessIo) {
  // Fig. 12's mechanism: a narrow w band (high speed) touches fewer nodes
  // than the full band.
  const auto records = MakeRecords(80, 60, 7);
  SupportRegionIndex support;
  support.Build(records);

  common::Rng rng(23);
  int64_t full_band = 0, narrow_band = 0;
  for (int q = 0; q < 100; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region =
        geometry::MakeBox2(x, y, x + 100, y + 100);
    std::vector<RecordId> out;
    support.ResetStats();
    support.Query(region, 0.0, 1.0, &out);
    full_band += support.node_accesses();
    out.clear();
    support.ResetStats();
    support.Query(region, 0.95, 1.0, &out);
    narrow_band += support.node_accesses();
  }
  EXPECT_LT(narrow_band, full_band);
}

TEST(AccessTest, EmptyRegionReturnsNothing) {
  const auto records = MakeRecords(10, 10, 11);
  SupportRegionIndex support;
  NaivePointIndex naive;
  support.Build(records);
  naive.Build(records);
  const geometry::Box2 region = geometry::MakeBox2(5000, 5000, 5100, 5100);
  std::vector<RecordId> out;
  support.Query(region, 0.0, 1.0, &out);
  EXPECT_TRUE(out.empty());
  naive.Query(region, 0.0, 1.0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(AccessTest, Names) {
  SupportRegionIndex support;
  NaivePointIndex naive;
  EXPECT_EQ(support.name(), "support-region");
  EXPECT_EQ(naive.name(), "naive-point");
}

TEST(GroundScaleTest, NormalizesIntoUnitSquare) {
  const auto records = MakeRecords(20, 10, 13);
  const GroundScale scale = GroundScale::FromRecords(records);
  for (const CoeffRecord& r : records) {
    for (double x : {r.support_bounds.lo(0), r.support_bounds.hi(0)}) {
      EXPECT_GE(scale.X(x), -1e-9);
      EXPECT_LE(scale.X(x), 1.0 + 1e-9);
    }
    for (double y : {r.support_bounds.lo(1), r.support_bounds.hi(1)}) {
      EXPECT_GE(scale.Y(y), -1e-9);
      EXPECT_LE(scale.Y(y), 1.0 + 1e-9);
    }
  }
}

TEST(GroundScaleTest, EmptyAndDegenerateRecordsSafe) {
  const GroundScale empty = GroundScale::FromRecords({});
  EXPECT_DOUBLE_EQ(empty.X(5.0), 5.0);  // identity fallback

  // All records at one point: extent zero, scale must stay finite.
  CoeffRecord r;
  r.support_bounds = geometry::MakeBox3(10, 20, 0, 10, 20, 5);
  const GroundScale degenerate = GroundScale::FromRecords({r});
  EXPECT_DOUBLE_EQ(degenerate.X(10.0), 0.0);
  EXPECT_DOUBLE_EQ(degenerate.Y(20.0), 0.0);
}

TEST(AccessCostTest, NormalizationKeepsResultsIdentical) {
  // Normalization is an internal representation detail: results over any
  // window/band must match the unnormalized oracle (already covered by
  // AccessEquivalenceTest, re-checked here on a skewed-extent scene).
  common::Rng rng(41);
  std::vector<CoeffRecord> records;
  for (int i = 0; i < 500; ++i) {
    CoeffRecord r;
    r.object_id = 0;
    r.coeff_id = i;
    r.w = rng.UniformDouble();
    const double x = rng.Uniform(0, 100000);  // very wide space
    const double y = rng.Uniform(0, 100);     // very flat space
    r.position = {x, y, 0};
    r.support_bounds = geometry::MakeBox3(x - 5, y - 1, 0, x + 5, y + 1, 5);
    records.push_back(r);
  }
  SupportRegionIndex index;
  index.Build(records);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.Uniform(0, 90000), y = rng.Uniform(0, 90);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 5000, y + 10);
    std::vector<RecordId> got;
    index.Query(region, 0.2, 0.9, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, Oracle(records, region, 0.2, 0.9));
  }
}

TEST(ObjectIndexTest, ReturnsIntersectingObjects) {
  std::vector<geometry::Box3> bounds = {
      geometry::MakeBox3(0, 0, 0, 10, 10, 30),
      geometry::MakeBox3(50, 50, 0, 60, 60, 30),
      geometry::MakeBox3(5, 5, 0, 15, 15, 30),
  };
  ObjectIndex idx;
  idx.Build(bounds);
  std::vector<int32_t> out;
  idx.Query(geometry::MakeBox2(0, 0, 12, 12), &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int32_t>{0, 2}));
  out.clear();
  idx.Query(geometry::MakeBox2(100, 100, 110, 110), &out);
  EXPECT_TRUE(out.empty());
}

// Oracle for the 4D variant: support MBB intersects the 3D region, w in
// band.
std::vector<RecordId> Oracle4D(const std::vector<CoeffRecord>& records,
                               const geometry::Box3& region, double w_min,
                               double w_max) {
  std::vector<RecordId> out;
  for (size_t i = 0; i < records.size(); ++i) {
    const CoeffRecord& r = records[i];
    if (r.w < w_min || r.w > w_max) continue;
    if (r.support_bounds.Intersects(region)) {
      out.push_back(static_cast<int64_t>(i));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SupportRegionIndex4DTest, MatchesOracle) {
  const auto records = MakeRecords(40, 40, 17);
  SupportRegionIndex4D index;
  index.Build(records);
  common::Rng rng(19);
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const double z = rng.Uniform(0, 15);
    const geometry::Box3 region =
        geometry::MakeBox3(x, y, z, x + 100, y + 100, z + 8);
    for (double w_min : {0.0, 0.5}) {
      std::vector<RecordId> got;
      index.Query(region, w_min, 1.0, &got);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, Oracle4D(records, region, w_min, 1.0));
    }
  }
}

TEST(SupportRegionIndex4DTest, HeightSelectiveQueriesCheaper) {
  // The z dimension buys selectivity the 3D projection cannot have: a
  // thin z-slab query returns a subset of the full-column query. Records
  // here have varied z extents (MakeRecords gives all of them full-height
  // supports, which would defeat the point).
  common::Rng rng(23);
  std::vector<CoeffRecord> records;
  for (int i = 0; i < 2000; ++i) {
    CoeffRecord r;
    r.object_id = 0;
    r.coeff_id = i;
    r.w = rng.UniformDouble();
    const double x = rng.Uniform(0, 1000), y = rng.Uniform(0, 1000);
    const double z = rng.Uniform(0, 18);
    r.position = {x, y, z};
    r.support_bounds =
        geometry::MakeBox3(x - 3, y - 3, z, x + 3, y + 3, z + 2);
    records.push_back(r);
  }
  SupportRegionIndex4D index;
  index.Build(records);
  const geometry::Box3 column = geometry::MakeBox3(0, 0, 0, 300, 300, 20);
  const geometry::Box3 slab = geometry::MakeBox3(0, 0, 18, 300, 300, 20);
  std::vector<RecordId> column_hits, slab_hits;
  index.Query(column, 0.0, 1.0, &column_hits);
  index.Query(slab, 0.0, 1.0, &slab_hits);
  EXPECT_LT(slab_hits.size(), column_hits.size());
  for (RecordId id : slab_hits) {
    EXPECT_NE(std::find(column_hits.begin(), column_hits.end(), id),
              column_hits.end());
  }
}

TEST(SupportRegionIndex4DTest, IoCounterWorks) {
  const auto records = MakeRecords(30, 30, 29);
  SupportRegionIndex4D index;
  index.Build(records);
  index.ResetStats();
  std::vector<RecordId> out;
  index.Query(geometry::MakeBox3(0, 0, 0, 500, 500, 20), 0.0, 1.0, &out);
  EXPECT_GT(index.node_accesses(), 0);
}

// --- ShardedCoefficientIndex ----------------------------------------------

ShardedIndexOptions ShardedOptions(int32_t shards,
                                   ShardedIndexOptions::Kind kind,
                                   int32_t fanout_workers = 1) {
  ShardedIndexOptions options;
  options.shards = shards;
  options.kind = kind;
  options.fanout_workers = fanout_workers;
  return options;
}

// Every shard count must return exactly the single-tree required set:
// same ids, any order.
class ShardEquivalenceTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(ShardEquivalenceTest, MatchesOracleBothKinds) {
  const int32_t shards = GetParam();
  const auto records = MakeRecords(40, 50, 3);

  for (const auto kind : {ShardedIndexOptions::Kind::kSupportRegion,
                          ShardedIndexOptions::Kind::kNaivePoint}) {
    ShardedCoefficientIndex index(ShardedOptions(shards, kind));
    index.Build(records);

    common::Rng rng(17);
    for (int q = 0; q < 30; ++q) {
      const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
      const geometry::Box2 region =
          geometry::MakeBox2(x, y, x + 100, y + 100);
      std::vector<RecordId> got;
      index.Query(region, 0.3, 1.0, &got);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, Oracle(records, region, 0.3, 1.0))
          << "shards=" << shards;
    }
  }
}

TEST_P(ShardEquivalenceTest, MatchesOracleOnGeneratedScenes) {
  const int32_t shards = GetParam();
  for (const auto placement :
       {workload::Placement::kUniform, workload::Placement::kZipf}) {
    workload::SceneOptions scene;
    scene.object_count = 40;
    scene.placement = placement;
    scene.seed = 7;
    auto db = workload::GenerateScene(scene);
    ASSERT_TRUE(db.ok());
    const auto& records = db->records();

    ShardedCoefficientIndex index(
        ShardedOptions(shards, ShardedIndexOptions::Kind::kSupportRegion));
    index.Build(records);

    common::Rng rng(29);
    for (int q = 0; q < 20; ++q) {
      const double x = rng.Uniform(scene.space.lo(0), scene.space.hi(0));
      const double y = rng.Uniform(scene.space.lo(1), scene.space.hi(1));
      const geometry::Box2 region =
          geometry::MakeBox2(x, y, x + 150, y + 150);
      std::vector<RecordId> got;
      index.Query(region, 0.0, 1.0, &got);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, Oracle(records, region, 0.0, 1.0))
          << "shards=" << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardEquivalenceTest,
                         ::testing::Values(1, 3, 4, 7, 16));

TEST(ShardedIndexTest, SingleShardIsBitIdenticalPassthrough) {
  // K = 1 must reproduce the unsharded index exactly: same ids in the
  // same order, same per-call and cumulative node accesses, same name.
  const auto records = MakeRecords(40, 50, 3);
  SupportRegionIndex plain;
  plain.Build(records);
  ShardedCoefficientIndex sharded(
      ShardedOptions(1, ShardedIndexOptions::Kind::kSupportRegion));
  sharded.Build(records);
  EXPECT_EQ(sharded.name(), plain.name());

  common::Rng rng(31);
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 80, y + 80);
    std::vector<RecordId> got_plain, got_sharded;
    const int64_t io_plain = plain.Query(region, 0.4, 1.0, &got_plain);
    const int64_t io_sharded = sharded.Query(region, 0.4, 1.0, &got_sharded);
    EXPECT_EQ(got_sharded, got_plain);  // order included
    EXPECT_EQ(io_sharded, io_plain);
  }
  EXPECT_EQ(sharded.node_accesses(), plain.node_accesses());
}

TEST(ShardedIndexTest, ParallelFanOutMatchesSequential) {
  const auto records = MakeRecords(60, 40, 9);
  ShardedCoefficientIndex sequential(
      ShardedOptions(8, ShardedIndexOptions::Kind::kSupportRegion));
  ShardedCoefficientIndex parallel(ShardedOptions(
      8, ShardedIndexOptions::Kind::kSupportRegion, /*fanout_workers=*/4));
  sequential.Build(records);
  parallel.Build(records);

  common::Rng rng(37);
  for (int q = 0; q < 40; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 200, y + 200);
    std::vector<RecordId> got_seq, got_par;
    const int64_t io_seq = sequential.Query(region, 0.0, 1.0, &got_seq);
    const int64_t io_par = parallel.Query(region, 0.0, 1.0, &got_par);
    // Shard-id-ordered merge: identical order, not just identical sets.
    EXPECT_EQ(got_par, got_seq);
    EXPECT_EQ(io_par, io_seq);
  }
  EXPECT_EQ(parallel.node_accesses(), sequential.node_accesses());
}

TEST(ShardedIndexTest, FanOutSkipsNonIntersectingShards) {
  // Two far-apart clusters: a window over one cluster must not touch the
  // other cluster's shards.
  std::vector<CoeffRecord> records;
  auto add_cluster = [&records](double cx, double cy, int32_t obj) {
    for (int i = 0; i < 50; ++i) {
      CoeffRecord r;
      r.object_id = obj;
      r.coeff_id = i;
      r.w = 0.5;
      r.position = {cx + i, cy + i, 0};
      r.support_bounds = geometry::MakeBox3(cx + i - 1, cy + i - 1, 0,
                                            cx + i + 1, cy + i + 1, 5);
      records.push_back(r);
    }
  };
  add_cluster(0, 0, 0);
  add_cluster(10000, 10000, 1);

  ShardedCoefficientIndex index(
      ShardedOptions(4, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);

  std::vector<RecordId> out;
  index.Query(geometry::MakeBox2(0, 0, 100, 100), 0.0, 1.0, &out);
  EXPECT_EQ(out.size(), 50u);

  int64_t queried_shards = 0;
  for (const auto& s : index.Stats()) {
    if (s.fanout_queries > 0) ++queried_shards;
  }
  EXPECT_LT(queried_shards, index.shard_count());
}

TEST(ShardedIndexTest, OnlineIngestVisibleAfterCommit) {
  const auto records = MakeRecords(30, 30, 13);
  ShardedCoefficientIndex index(
      ShardedOptions(4, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);

  // Stage a batch of extra records continuing the global id space.
  auto extra = MakeRecords(10, 30, 99);
  const RecordId first = static_cast<RecordId>(records.size());
  index.Stage(extra.data(), extra.size(), first);
  EXPECT_EQ(index.staged_records(), static_cast<int64_t>(extra.size()));
  EXPECT_EQ(index.epoch(), 0);

  const geometry::Box2 everything = geometry::MakeBox2(-100, -100, 1100, 1100);
  std::vector<RecordId> out;
  index.Query(everything, 0.0, 1.0, &out);
  EXPECT_EQ(out.size(), records.size());  // staged still invisible

  EXPECT_EQ(index.CommitStaged(), static_cast<int64_t>(extra.size()));
  EXPECT_EQ(index.staged_records(), 0);
  EXPECT_EQ(index.epoch(), 1);

  // All records visible, ids correct: the oracle over the union table.
  std::vector<CoeffRecord> all = records;
  all.insert(all.end(), extra.begin(), extra.end());
  out.clear();
  index.Query(everything, 0.0, 1.0, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, Oracle(all, everything, 0.0, 1.0));

  // Empty commit is a no-op.
  EXPECT_EQ(index.CommitStaged(), 0);
  EXPECT_EQ(index.epoch(), 1);
}

TEST(ShardedIndexTest, CommitOnlyRebuildsAffectedShards) {
  const auto records = MakeRecords(40, 40, 21);
  ShardedCoefficientIndex index(
      ShardedOptions(16, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);

  // One extra record lands in exactly one shard.
  CoeffRecord extra = records[0];
  index.Stage(&extra, 1, static_cast<RecordId>(records.size()));
  ASSERT_EQ(index.CommitStaged(), 1);

  int64_t rebuilt = 0;
  for (const auto& s : index.Stats()) {
    rebuilt += s.rebuilds;
  }
  EXPECT_EQ(rebuilt, 1);
}

TEST(ShardedIndexTest, StatsSurviveEpochRebuild) {
  const auto records = MakeRecords(30, 30, 23);
  ShardedCoefficientIndex index(
      ShardedOptions(4, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);

  const geometry::Box2 everything = geometry::MakeBox2(-100, -100, 1100, 1100);
  std::vector<RecordId> out;
  index.Query(everything, 0.0, 1.0, &out);
  const int64_t before = index.node_accesses();
  EXPECT_GT(before, 0);

  CoeffRecord extra = records[0];
  index.Stage(&extra, 1, static_cast<RecordId>(records.size()));
  index.CommitStaged();
  // The rebuilt shard retires its traversal counter into the new epoch:
  // totals stay monotonic across the swap.
  EXPECT_GE(index.node_accesses(), before);
}

// --- Disk-backed storage (--store disk) -----------------------------------

ShardedIndexOptions DiskOptions(int32_t shards, const std::string& path,
                                ShardedIndexOptions::Kind kind) {
  ShardedIndexOptions options = ShardedOptions(shards, kind);
  options.storage.store = storage::StoreKind::kDisk;
  options.storage.path = path;
  options.storage.page_size = 1024;
  options.storage.pool_pages = 256;
  return options;
}

void RemovePageFiles(const std::string& path, int32_t shards) {
  std::remove(path.c_str());
  std::remove((path + ".shardmap").c_str());
  for (int32_t s = 0; s < shards; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// The acceptance oracle: at K in {1, 4, 16}, a disk-backed index must
// return exactly the in-memory required set — same ids, same order, and
// the same node accesses (page fetches replicate the pointer traversal).
class DiskShardEquivalenceTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(DiskShardEquivalenceTest, DiskMatchesMemoryBitForBit) {
  const int32_t shards = GetParam();
  const auto records = MakeRecords(40, 50, 3);
  const std::string path = ::testing::TempDir() + "/mars_access_disk_" +
                           std::to_string(shards) + ".pages";

  for (const auto kind : {ShardedIndexOptions::Kind::kSupportRegion,
                          ShardedIndexOptions::Kind::kNaivePoint}) {
    RemovePageFiles(path, shards);
    ShardedCoefficientIndex memory_index(ShardedOptions(shards, kind));
    ShardedCoefficientIndex disk_index(DiskOptions(shards, path, kind));
    memory_index.Build(records);
    disk_index.Build(records);
    EXPECT_TRUE(disk_index.disk_store());
    EXPECT_EQ(disk_index.restored_shards(), 0);  // fresh files: full build

    common::Rng rng(17);
    for (int q = 0; q < 30; ++q) {
      const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
      const geometry::Box2 region =
          geometry::MakeBox2(x, y, x + 100, y + 100);
      std::vector<RecordId> got_mem, got_disk;
      const int64_t io_mem = memory_index.Query(region, 0.3, 1.0, &got_mem);
      const int64_t io_disk = disk_index.Query(region, 0.3, 1.0, &got_disk);
      EXPECT_EQ(got_disk, got_mem) << "shards=" << shards;
      EXPECT_EQ(io_disk, io_mem) << "shards=" << shards;
    }
    EXPECT_EQ(disk_index.node_accesses(), memory_index.node_accesses());
    RemovePageFiles(path, shards);
  }
}

INSTANTIATE_TEST_SUITE_P(DiskShardCounts, DiskShardEquivalenceTest,
                         ::testing::Values(1, 4, 16));

TEST(DiskShardedIndexTest, KillAndRestartRestoresIdenticalResults) {
  const auto records = MakeRecords(30, 40, 7);
  const std::string path = ::testing::TempDir() + "/mars_access_restart.pages";
  const int32_t shards = 4;
  RemovePageFiles(path, shards);

  const geometry::Box2 region = geometry::MakeBox2(200, 200, 600, 600);
  std::vector<RecordId> before;
  int64_t io_before = 0;
  {
    ShardedCoefficientIndex index(DiskOptions(
        shards, path, ShardedIndexOptions::Kind::kSupportRegion));
    index.Build(records);
    io_before = index.Query(region, 0.0, 1.0, &before);
  }  // "kill": the destructor flushes but deliberately keeps the pages

  // Restart: Build over the same records must attach, not rebuild.
  ShardedCoefficientIndex revived(DiskOptions(
      shards, path, ShardedIndexOptions::Kind::kSupportRegion));
  revived.Build(records);
  EXPECT_EQ(revived.restored_shards(), shards);

  std::vector<RecordId> after;
  const int64_t io_after = revived.Query(region, 0.0, 1.0, &after);
  EXPECT_EQ(after, before);
  EXPECT_EQ(io_after, io_before);
  RemovePageFiles(path, shards);
}

TEST(DiskShardedIndexTest, MismatchedRecordsForceRebuildNotGarbage) {
  const std::string path = ::testing::TempDir() + "/mars_access_mismatch.pages";
  RemovePageFiles(path, 1);
  {
    ShardedCoefficientIndex index(DiskOptions(
        1, path, ShardedIndexOptions::Kind::kSupportRegion));
    index.Build(MakeRecords(20, 30, 11));
  }
  // A different record table must NOT attach to the stale tree: the
  // fingerprint mismatch forces a truncate-and-rebuild, and queries
  // answer from the new table.
  const auto records = MakeRecords(25, 30, 13);
  ShardedCoefficientIndex index(DiskOptions(
      1, path, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);
  EXPECT_EQ(index.restored_shards(), 0);

  const geometry::Box2 everything = geometry::MakeBox2(-100, -100, 1100, 1100);
  std::vector<RecordId> got;
  index.Query(everything, 0.0, 1.0, &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, Oracle(records, everything, 0.0, 1.0));
  RemovePageFiles(path, 1);
}

TEST(DiskShardedIndexTest, OnlineIngestWorksOnDisk) {
  const auto records = MakeRecords(20, 30, 31);
  const std::string path = ::testing::TempDir() + "/mars_access_ingest.pages";
  const int32_t shards = 4;
  RemovePageFiles(path, shards);

  ShardedCoefficientIndex index(DiskOptions(
      shards, path, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);

  auto extra = MakeRecords(5, 30, 97);
  index.Stage(extra.data(), extra.size(),
              static_cast<RecordId>(records.size()));
  EXPECT_EQ(index.CommitStaged(), static_cast<int64_t>(extra.size()));

  std::vector<CoeffRecord> all = records;
  all.insert(all.end(), extra.begin(), extra.end());
  const geometry::Box2 everything = geometry::MakeBox2(-100, -100, 1100, 1100);
  std::vector<RecordId> got;
  index.Query(everything, 0.0, 1.0, &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, Oracle(all, everything, 0.0, 1.0));

  // The post-commit epoch is what a restart restores.
  ShardedCoefficientIndex revived(DiskOptions(
      shards, path, ShardedIndexOptions::Kind::kSupportRegion));
  revived.Build(all);
  EXPECT_EQ(revived.restored_shards(), shards);
  std::vector<RecordId> after;
  revived.Query(everything, 0.0, 1.0, &after);
  std::sort(after.begin(), after.end());
  EXPECT_EQ(after, got);
  RemovePageFiles(path, shards);
}

// --- Load-adaptive rebalancing (--rebalance on) ----------------------------

// A record whose ground-plane support center is exactly (x, y).
CoeffRecord RecordAt(double x, double y) {
  CoeffRecord r;
  r.w = 0.5;
  r.position = {x, y, 0};
  r.support_bounds = geometry::MakeBox3(x - 1, y - 1, 0, x + 1, y + 1, 1);
  return r;
}

TEST(ShardMapTest, RefinementRoutingFoldsInOrder) {
  ShardMap map = ShardMap::Build(geometry::MakeBox2(0, 0, 100, 100), 1);
  EXPECT_EQ(map.Route(RecordAt(25, 25)), 0);
  EXPECT_EQ(map.total_shards(), 1);

  // Split 0 at x = 50: the high half re-routes to the new id 1.
  map.ApplySplit(0, /*axis=*/0, /*threshold=*/50.0, /*new_shard=*/1);
  EXPECT_EQ(map.total_shards(), 2);
  EXPECT_EQ(map.Route(RecordAt(25, 25)), 0);
  EXPECT_EQ(map.Route(RecordAt(75, 25)), 1);
  EXPECT_EQ(map.Route(RecordAt(50, 25)), 1);  // threshold is high-inclusive

  // Split the split: 1 at y = 50 -> 2. Only shard 1's region re-routes.
  map.ApplySplit(1, /*axis=*/1, /*threshold=*/50.0, /*new_shard=*/2);
  EXPECT_EQ(map.Route(RecordAt(75, 25)), 1);
  EXPECT_EQ(map.Route(RecordAt(75, 75)), 2);
  EXPECT_EQ(map.Route(RecordAt(25, 75)), 0);

  // Merge 0 into 2: the retired id forwards, and a later split of the
  // destination still applies to the forwarded region (ordered fold).
  map.ApplyMerge(0, 2);
  EXPECT_EQ(map.Route(RecordAt(25, 25)), 2);
  map.ApplySplit(2, /*axis=*/0, /*threshold=*/30.0, /*new_shard=*/3);
  EXPECT_EQ(map.Route(RecordAt(25, 25)), 2);
  EXPECT_EQ(map.Route(RecordAt(75, 75)), 3);
  EXPECT_EQ(map.total_shards(), 4);

  // Points outside the bounds clamp to the nearest cell, never crash.
  EXPECT_EQ(map.Route(RecordAt(-500, 2000)), 2);
}

// Route() over a dense probe grid — the compaction oracle: a rewrite is
// routing-preserving iff this vector is unchanged.
std::vector<int32_t> RouteProbe(const ShardMap& map) {
  std::vector<int32_t> out;
  for (int x = 1; x < 100; x += 3) {
    for (int y = 1; y < 100; y += 3) {
      out.push_back(map.Route(RecordAt(x, y)));
    }
  }
  return out;
}

TEST(ShardMapTest, CompactAnnihilatesAPureDetour) {
  // Split 0 -> 1, then merge 1 straight back: the detour cancels and
  // both ops disappear, but the id high-water mark stays.
  ShardMap map = ShardMap::Build(geometry::MakeBox2(0, 0, 100, 100), 1);
  map.ApplySplit(0, /*axis=*/0, /*threshold=*/50.0, /*new_shard=*/1);
  map.ApplyMerge(1, 0);
  const std::vector<int32_t> before = RouteProbe(map);
  EXPECT_EQ(map.Compact(), 2);
  EXPECT_TRUE(map.refinements().empty());
  EXPECT_EQ(map.total_shards(), 2);
  EXPECT_EQ(RouteProbe(map), before);
}

TEST(ShardMapTest, CompactCollapsesAForwardedSplit) {
  // Split 0 -> 2 merged onward into 1: the split re-targets 1 directly —
  // a target no ApplySplit replay could produce — and the merge goes.
  ShardMap map = ShardMap::Build(geometry::MakeBox2(0, 0, 100, 100), 2);
  map.ApplySplit(0, /*axis=*/1, /*threshold=*/50.0, /*new_shard=*/2);
  map.ApplyMerge(2, 1);
  const std::vector<int32_t> before = RouteProbe(map);
  EXPECT_EQ(map.Compact(), 1);
  ASSERT_EQ(map.refinements().size(), 1u);
  EXPECT_EQ(map.refinements()[0].kind, ShardMap::Refinement::Kind::kSplit);
  EXPECT_EQ(map.refinements()[0].shard, 0);
  EXPECT_EQ(map.refinements()[0].target, 1);
  EXPECT_EQ(RouteProbe(map), before);
}

TEST(ShardMapTest, CompactDropsOpsWithUnreachableSources) {
  // Merge 0 -> 1 retires id 0; a later split of 0 can never fire.
  ShardMap map = ShardMap::Build(geometry::MakeBox2(0, 0, 100, 100), 2);
  map.ApplyMerge(0, 1);
  map.ApplySplit(0, /*axis=*/0, /*threshold=*/50.0, /*new_shard=*/2);
  const std::vector<int32_t> before = RouteProbe(map);
  EXPECT_EQ(map.Compact(), 1);
  ASSERT_EQ(map.refinements().size(), 1u);
  EXPECT_EQ(map.refinements()[0].kind, ShardMap::Refinement::Kind::kMerge);
  EXPECT_EQ(RouteProbe(map), before);
}

TEST(ShardMapTest, CompactKeepsOpsWhoseWindowIsDirty) {
  // Split 0 -> 2 with a split of 2 in between before the merge back:
  // the window references the detour target, so nothing may cancel.
  ShardMap map = ShardMap::Build(geometry::MakeBox2(0, 0, 100, 100), 2);
  map.ApplySplit(0, /*axis=*/0, /*threshold=*/50.0, /*new_shard=*/2);
  map.ApplySplit(2, /*axis=*/1, /*threshold=*/50.0, /*new_shard=*/3);
  map.ApplyMerge(2, 0);
  const std::vector<int32_t> before = RouteProbe(map);
  EXPECT_EQ(map.Compact(), 0);
  EXPECT_EQ(map.refinements().size(), 3u);
  EXPECT_EQ(RouteProbe(map), before);
}

TEST(ShardMapTest, CompactedListRestoresThroughRestoreRefinements) {
  // The persistence contract: a compacted list plus the high-water mark
  // round-trips into a freshly built base map with identical routing.
  ShardMap map = ShardMap::Build(geometry::MakeBox2(0, 0, 100, 100), 2);
  map.ApplySplit(1, /*axis=*/0, /*threshold=*/75.0, /*new_shard=*/2);
  map.ApplySplit(0, /*axis=*/1, /*threshold=*/50.0, /*new_shard=*/3);
  map.ApplyMerge(3, 2);
  map.ApplyMerge(1, 0);
  map.Compact();
  const std::vector<int32_t> before = RouteProbe(map);

  ShardMap restored = ShardMap::Build(geometry::MakeBox2(0, 0, 100, 100), 2);
  std::vector<ShardMap::Refinement> ops = map.refinements();
  restored.RestoreRefinements(map.total_shards(), std::move(ops));
  EXPECT_EQ(restored.total_shards(), map.total_shards());
  EXPECT_EQ(RouteProbe(restored), before);
}

TEST(ShardedIndexTest, QueryProfiledMatchesQuery) {
  const auto records = MakeRecords(40, 50, 3);
  for (const int32_t shards : {1, 4}) {
    ShardedCoefficientIndex index(
        ShardedOptions(shards, ShardedIndexOptions::Kind::kSupportRegion));
    index.Build(records);
    common::Rng rng(17);
    for (int q = 0; q < 20; ++q) {
      const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
      const geometry::Box2 region =
          geometry::MakeBox2(x, y, x + 100, y + 100);
      std::vector<RecordId> plain, profiled;
      const int64_t io_plain = index.Query(region, 0.3, 1.0, &plain);
      ShardedCoefficientIndex::FanoutProfile profile;
      const int64_t io_prof =
          index.QueryProfiled(region, 0.3, 1.0, &profiled, &profile);
      EXPECT_EQ(profiled, plain);
      EXPECT_EQ(io_prof, io_plain);
      EXPECT_LE(profile.max_shard_accesses, io_prof);
      if (io_prof > 0) {
        EXPECT_GT(profile.shards_touched, 0);
        EXPECT_GT(profile.max_shard_accesses, 0);
      }
      if (shards == 1) {
        EXPECT_EQ(profile.max_shard_accesses, io_prof);
      }
    }
  }
}

// The acceptance oracle for every rebalance op: the fan-out is correct
// for ANY routing (coverage boxes are exact), so after each forced
// split/merge the index must still return exactly the required set.
void ExpectMatchesOracle(const ShardedCoefficientIndex& index,
                         const std::vector<CoeffRecord>& records) {
  common::Rng rng(17);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 120, y + 120);
    std::vector<RecordId> got;
    index.Query(region, 0.3, 1.0, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, Oracle(records, region, 0.3, 1.0));
  }
}

TEST(RebalanceTest, ForcedSplitsKeepOracleEquivalence) {
  const auto records = MakeRecords(40, 50, 3);
  ShardedCoefficientIndex index(
      ShardedOptions(4, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);
  ExpectMatchesOracle(index, records);
  const int64_t accesses_before = index.node_accesses();

  // Split every original shard once; each op allocates the next id.
  for (int32_t s = 0; s < 4; ++s) {
    auto split = index.SplitShard(s);
    ASSERT_TRUE(split.ok()) << split.status().message();
    EXPECT_EQ(split.value(), 4 + s);
    ExpectMatchesOracle(index, records);
  }
  EXPECT_EQ(index.shard_count(), 8);
  EXPECT_EQ(index.live_shard_count(), 8);
  EXPECT_EQ(index.rebalances(), 4);
  // Counters retire into the surviving halves: totals stay monotonic.
  EXPECT_GE(index.node_accesses(), accesses_before);

  // A second-generation split (of a split product) works the same way.
  auto again = index.SplitShard(4);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 8);
  ExpectMatchesOracle(index, records);
}

TEST(RebalanceTest, MergeRetiresSourceAndTransfersCounters) {
  const auto records = MakeRecords(40, 50, 3);
  ShardedCoefficientIndex index(
      ShardedOptions(4, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);
  ExpectMatchesOracle(index, records);

  const auto before = index.Stats();
  const int64_t src_accesses = before[1].node_accesses;
  const int64_t dst_accesses = before[2].node_accesses;
  const int64_t moved = before[1].records;
  ASSERT_GT(moved, 0);

  ASSERT_TRUE(index.MergeShards(1, 2).ok());
  EXPECT_EQ(index.rebalances(), 1);
  EXPECT_EQ(index.live_shard_count(), 3);
  EXPECT_EQ(index.shard_count(), 4);  // the retired slot is kept

  const auto after = index.Stats();
  EXPECT_TRUE(after[1].retired);
  EXPECT_EQ(after[1].records, 0);
  EXPECT_FALSE(after[2].retired);
  EXPECT_EQ(after[2].records, before[2].records + moved);
  // The destination inherits both shards' cumulative traversal counters.
  EXPECT_GE(after[2].node_accesses, src_accesses + dst_accesses);
  ExpectMatchesOracle(index, records);

  // The retired slot's empty coverage keeps it out of every fan-out.
  const geometry::Box2 everything = geometry::MakeBox2(-100, -100, 1100, 1100);
  std::vector<RecordId> out;
  index.Query(everything, 0.0, 1.0, &out);
  EXPECT_EQ(index.Stats()[1].node_accesses, after[1].node_accesses);
}

TEST(RebalanceTest, InvalidOpsAreRejectedWithoutStateChange) {
  const auto records = MakeRecords(20, 30, 11);
  ShardedCoefficientIndex index(
      ShardedOptions(4, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);

  EXPECT_FALSE(index.SplitShard(-1).ok());
  EXPECT_FALSE(index.SplitShard(4).ok());
  EXPECT_FALSE(index.MergeShards(2, 2).ok());
  EXPECT_FALSE(index.MergeShards(-1, 0).ok());
  EXPECT_FALSE(index.MergeShards(0, 7).ok());
  EXPECT_EQ(index.rebalances(), 0);
  EXPECT_EQ(index.live_shard_count(), 4);

  // Retired shards take part in no further op, either side.
  ASSERT_TRUE(index.MergeShards(1, 2).ok());
  EXPECT_FALSE(index.SplitShard(1).ok());
  EXPECT_FALSE(index.MergeShards(1, 0).ok());
  EXPECT_FALSE(index.MergeShards(0, 1).ok());
  EXPECT_EQ(index.rebalances(), 1);

  // A shard whose record centers all coincide has no usable median.
  std::vector<CoeffRecord> stacked;
  for (int i = 0; i < 8; ++i) stacked.push_back(RecordAt(500, 500));
  ShardedCoefficientIndex point_index(
      ShardedOptions(1, ShardedIndexOptions::Kind::kSupportRegion));
  point_index.Build(stacked);
  EXPECT_FALSE(point_index.SplitShard(0).ok());
}

TEST(RebalanceTest, StagedRecordsSurviveSplitAndMerge) {
  // Records staged before an op must land in the post-op shards when
  // committed (the staging buffers are re-bucketed under the new map).
  const auto records = MakeRecords(30, 40, 23);
  ShardedCoefficientIndex index(
      ShardedOptions(2, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);

  const auto extra = MakeRecords(6, 40, 71);
  index.Stage(extra.data(), extra.size(),
              static_cast<RecordId>(records.size()));
  ASSERT_TRUE(index.SplitShard(0).ok());
  ASSERT_TRUE(index.MergeShards(1, 2).ok());
  EXPECT_EQ(index.staged_records(), static_cast<int64_t>(extra.size()));
  EXPECT_EQ(index.CommitStaged(), static_cast<int64_t>(extra.size()));

  std::vector<CoeffRecord> all = records;
  all.insert(all.end(), extra.begin(), extra.end());
  const geometry::Box2 everything = geometry::MakeBox2(-100, -100, 1100, 1100);
  std::vector<RecordId> got;
  index.Query(everything, 0.0, 1.0, &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, Oracle(all, everything, 0.0, 1.0));
}

TEST(RebalanceTest, DiskSplitMergeMatchesMemoryAndSurvivesRestart) {
  const auto records = MakeRecords(40, 50, 3);
  const std::string path =
      ::testing::TempDir() + "/mars_access_rebalance.pages";
  const int32_t shards = 4;
  // Clean slate, including ids the splits below will allocate.
  RemovePageFiles(path, shards + 4);

  ShardedCoefficientIndex memory_index(
      ShardedOptions(shards, ShardedIndexOptions::Kind::kSupportRegion));
  ShardedCoefficientIndex disk_index(DiskOptions(
      shards, path, ShardedIndexOptions::Kind::kSupportRegion));
  memory_index.Build(records);
  disk_index.Build(records);

  // Identical op sequence on both; disk must replicate memory bit for
  // bit (page fetches mirror the pointer traversal).
  for (auto* index : {&memory_index, &disk_index}) {
    ASSERT_TRUE(index->SplitShard(0).ok());
    ASSERT_TRUE(index->SplitShard(4).ok());
    ASSERT_TRUE(index->MergeShards(2, 3).ok());
  }
  EXPECT_EQ(disk_index.live_shard_count(), 5);

  common::Rng rng(17);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 120, y + 120);
    std::vector<RecordId> got_mem, got_disk;
    const int64_t io_mem = memory_index.Query(region, 0.3, 1.0, &got_mem);
    const int64_t io_disk = disk_index.Query(region, 0.3, 1.0, &got_disk);
    EXPECT_EQ(got_disk, got_mem);
    EXPECT_EQ(io_disk, io_mem);
  }
  ExpectMatchesOracle(disk_index, records);

  // Kill and restart: the persisted shard-map sidecar replays the
  // refinement list before partitioning, so the revived index routes
  // exactly as the rebalanced map did and re-attaches EVERY slot's page
  // file — the two split-allocated shards and the merge tombstone
  // included — instead of rebuilding from the configured static grid.
  {
    ShardedCoefficientIndex revived(DiskOptions(
        shards, path, ShardedIndexOptions::Kind::kSupportRegion));
    revived.Build(records);
    EXPECT_EQ(revived.restored_shards(), shards + 2);  // 4 base + 2 splits
    EXPECT_EQ(revived.shard_count(), shards + 2);
    EXPECT_EQ(revived.live_shard_count(), 5);  // shard 2 stays retired
    ExpectMatchesOracle(revived, records);

    // The revived routing really is the refined one: disk and memory
    // answers still match bit for bit after the restart.
    common::Rng revived_rng(17);
    for (int q = 0; q < 20; ++q) {
      const double x = revived_rng.Uniform(0, 900);
      const double y = revived_rng.Uniform(0, 900);
      const geometry::Box2 region =
          geometry::MakeBox2(x, y, x + 120, y + 120);
      std::vector<RecordId> got_mem, got_disk;
      memory_index.Query(region, 0.3, 1.0, &got_mem);
      revived.Query(region, 0.3, 1.0, &got_disk);
      EXPECT_EQ(got_disk, got_mem);
    }

    // And the restored map still accepts further rebalancing.
    ASSERT_TRUE(revived.SplitShard(3).ok());
    ExpectMatchesOracle(revived, records);
  }
  RemovePageFiles(path, shards + 4);
}

TEST(RebalanceTest, MergeCompactionPreservesRoutingAndRestart) {
  // MergeShards compacts the refinement list in place. Here the merge
  // forwards a freshly split shard onward, so compaction collapses the
  // pair to one split targeting base id 2 — a list that can only be
  // persisted through the v2 sidecar (no ApplySplit replay produces
  // it). Queries, the memory twin, and a kill-and-restart must all be
  // oblivious.
  const auto records = MakeRecords(40, 50, 3);
  const std::string path = ::testing::TempDir() + "/mars_access_compact.pages";
  const int32_t shards = 4;
  RemovePageFiles(path, shards + 2);

  ShardedCoefficientIndex memory_index(
      ShardedOptions(shards, ShardedIndexOptions::Kind::kSupportRegion));
  ShardedCoefficientIndex disk_index(DiskOptions(
      shards, path, ShardedIndexOptions::Kind::kSupportRegion));
  memory_index.Build(records);
  disk_index.Build(records);

  for (auto* index : {&memory_index, &disk_index}) {
    ASSERT_TRUE(index->SplitShard(0).ok());
    ASSERT_TRUE(index->MergeShards(4, 2).ok());
    ASSERT_EQ(index->shard_map().refinements().size(), 1u);
    EXPECT_EQ(index->shard_map().refinements()[0].target, 2);
    EXPECT_EQ(index->shard_map().total_shards(), 5);
  }

  common::Rng rng(17);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const geometry::Box2 region = geometry::MakeBox2(x, y, x + 120, y + 120);
    std::vector<RecordId> got_mem, got_disk;
    const int64_t io_mem = memory_index.Query(region, 0.3, 1.0, &got_mem);
    const int64_t io_disk = disk_index.Query(region, 0.3, 1.0, &got_disk);
    EXPECT_EQ(got_disk, got_mem);
    EXPECT_EQ(io_disk, io_mem);
  }
  ExpectMatchesOracle(disk_index, records);

  // Kill and restart. The compacted sidecar restores the retargeted
  // split; the merge itself is gone, so the annihilated slot 4 revives
  // as an empty *live* slot (nothing routes there — its coverage is
  // empty) instead of a tombstone. Routing and results are unaffected.
  {
    ShardedCoefficientIndex revived(DiskOptions(
        shards, path, ShardedIndexOptions::Kind::kSupportRegion));
    revived.Build(records);
    EXPECT_EQ(revived.restored_shards(), shards + 1);
    EXPECT_EQ(revived.shard_count(), shards + 1);
    ASSERT_EQ(revived.shard_map().refinements().size(), 1u);
    EXPECT_EQ(revived.shard_map().refinements()[0].target, 2);
    ExpectMatchesOracle(revived, records);

    common::Rng revived_rng(17);
    for (int q = 0; q < 20; ++q) {
      const double x = revived_rng.Uniform(0, 900);
      const double y = revived_rng.Uniform(0, 900);
      const geometry::Box2 region =
          geometry::MakeBox2(x, y, x + 120, y + 120);
      std::vector<RecordId> got_mem, got_disk;
      memory_index.Query(region, 0.3, 1.0, &got_mem);
      revived.Query(region, 0.3, 1.0, &got_disk);
      EXPECT_EQ(got_disk, got_mem);
    }

    // The restored map still accepts further rebalancing.
    ASSERT_TRUE(revived.SplitShard(2).ok());
    ExpectMatchesOracle(revived, records);
  }
  RemovePageFiles(path, shards + 2);
}

TEST(RebalanceTest, StaleShardMapSidecarRecoversCleanly) {
  // A sidecar persisted for a different base grid (other K, other record
  // bounds) must be ignored — the build falls back to the fresh static
  // map and rebuilds, never routes under a mismatched refinement list.
  const std::string path =
      ::testing::TempDir() + "/mars_access_stale_map.pages";
  const int32_t shards = 4;
  RemovePageFiles(path, shards + 2);
  {
    ShardedCoefficientIndex index(DiskOptions(
        shards, path, ShardedIndexOptions::Kind::kSupportRegion));
    index.Build(MakeRecords(40, 50, 3));
    ASSERT_TRUE(index.SplitShard(0).ok());
  }
  // Same path, different dataset: bounds differ, sidecar must not apply.
  const auto records = MakeRecords(30, 70, 9);
  ShardedCoefficientIndex index(DiskOptions(
      shards, path, ShardedIndexOptions::Kind::kSupportRegion));
  index.Build(records);
  EXPECT_EQ(index.shard_count(), shards);
  EXPECT_EQ(index.restored_shards(), 0);
  ExpectMatchesOracle(index, records);
  RemovePageFiles(path, shards + 2);
}

TEST(RebalanceTest, ConcurrentQueriesDuringRebalanceStaySound) {
  // The TSan acceptance path: readers fan out while the single writer
  // splits and merges. Every query must observe a complete epoch —
  // exactly the required set, never a torn shard array.
  const auto records = MakeRecords(30, 40, 41);
  ShardedCoefficientIndex index(
      ShardedOptions(4, ShardedIndexOptions::Kind::kSupportRegion,
                     /*fanout_workers=*/2));
  index.Build(records);

  const geometry::Box2 region = geometry::MakeBox2(200, 200, 700, 700);
  const auto expected = Oracle(records, region, 0.0, 1.0);

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&index, &region, &expected] {
      for (int q = 0; q < 50; ++q) {
        std::vector<RecordId> got;
        index.Query(region, 0.0, 1.0, &got);
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expected);
      }
    });
  }
  for (int32_t s = 0; s < 4; ++s) {
    auto split = index.SplitShard(s);
    ASSERT_TRUE(split.ok());
  }
  ASSERT_TRUE(index.MergeShards(4, 5).ok());
  for (std::thread& t : readers) t.join();
  ExpectMatchesOracle(index, records);
}

TEST(ShardedIndexTest, Name) {
  ShardedCoefficientIndex one(
      ShardedOptions(1, ShardedIndexOptions::Kind::kSupportRegion));
  ShardedCoefficientIndex four(
      ShardedOptions(4, ShardedIndexOptions::Kind::kNaivePoint));
  EXPECT_EQ(one.name(), "support-region");
  EXPECT_EQ(four.name(), "sharded-4(naive-point)");
}

TEST(ObjectIndexTest, InsertAfterBuildIsQueryable) {
  std::vector<geometry::Box3> bounds = {
      geometry::MakeBox3(0, 0, 0, 10, 10, 30),
  };
  ObjectIndex idx;
  idx.Build(bounds);
  idx.Insert(1, geometry::MakeBox3(50, 50, 0, 60, 60, 30));
  std::vector<int32_t> out;
  idx.Query(geometry::MakeBox2(45, 45, 65, 65), &out);
  EXPECT_EQ(out, (std::vector<int32_t>{1}));
}

TEST(ObjectIndexTest, IoCounterAdvances) {
  std::vector<geometry::Box3> bounds;
  common::Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0, 1000), y = rng.Uniform(0, 1000);
    bounds.push_back(geometry::MakeBox3(x, y, 0, x + 20, y + 20, 30));
  }
  ObjectIndex idx;
  idx.Build(bounds);
  idx.ResetStats();
  std::vector<int32_t> out;
  idx.Query(geometry::MakeBox2(0, 0, 100, 100), &out);
  EXPECT_GT(idx.node_accesses(), 0);
}

}  // namespace
}  // namespace mars::index
