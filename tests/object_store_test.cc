#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "client/object_store.h"
#include "client/streaming_client.h"
#include "net/link.h"
#include "server/server.h"
#include "wavelet/reconstruct.h"
#include "workload/scene.h"

namespace mars::client {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SceneOptions scene;
    scene.space = geometry::MakeBox2(0, 0, 1000, 1000);
    scene.object_count = 6;
    scene.levels = 2;
    scene.seed = 51;
    auto db = workload::GenerateScene(scene);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<server::ObjectDatabase>(std::move(*db));
    server_ = std::make_unique<server::Server>(
        db_.get(), server::Server::IndexKind::kSupportRegion);
  }

  // Record ids of one object's base + coefficients with w >= w_min.
  std::vector<index::RecordId> RecordsOf(int32_t obj, double w_min) const {
    std::vector<index::RecordId> out;
    for (size_t i = 0; i < db_->records().size(); ++i) {
      const auto& r = db_->records()[i];
      if (r.object_id == obj && (r.is_base() || r.w >= w_min)) {
        out.push_back(static_cast<int64_t>(i));
      }
    }
    return out;
  }

  std::unique_ptr<server::ObjectDatabase> db_;
  std::unique_ptr<server::Server> server_;
};

TEST_F(ObjectStoreTest, EmptyStoreKnowsNothing) {
  ClientObjectStore store(db_.get());
  EXPECT_FALSE(store.HasBase(0));
  EXPECT_EQ(store.CoefficientCount(0), 0);
  EXPECT_TRUE(store.KnownObjects().empty());
  EXPECT_FALSE(store.Reconstruct(0).ok());
}

TEST_F(ObjectStoreTest, FullReceiptReconstructsExactly) {
  ClientObjectStore store(db_.get());
  for (index::RecordId id : RecordsOf(0, 0.0)) {
    store.AddRecord(id);
  }
  ASSERT_TRUE(store.HasBase(0));
  auto approx = store.Reconstruct(0);
  ASSERT_TRUE(approx.ok());
  const mesh::Mesh full = wavelet::Reconstruct(db_->object(0), 0.0);
  EXPECT_LT(wavelet::MaxVertexDistance(*approx, full), 1e-12);
  auto err = store.ApproximationError(0);
  ASSERT_TRUE(err.ok());
  EXPECT_DOUBLE_EQ(*err, 0.0);
}

TEST_F(ObjectStoreTest, PartialReceiptMatchesThresholdReconstruction) {
  ClientObjectStore store(db_.get());
  const double w_min = 0.3;
  for (index::RecordId id : RecordsOf(1, w_min)) {
    store.AddRecord(id);
  }
  auto approx = store.Reconstruct(1);
  ASSERT_TRUE(approx.ok());
  const mesh::Mesh expected = wavelet::Reconstruct(db_->object(1), w_min);
  EXPECT_LT(wavelet::MaxVertexDistance(*approx, expected), 1e-12);
}

TEST_F(ObjectStoreTest, ErrorDecreasesAsCoefficientsArrive) {
  ClientObjectStore store(db_.get());
  // Base first.
  for (index::RecordId id : RecordsOf(2, 2.0)) {
    store.AddRecord(id);  // only the base record (w_min = 2 matches none)
  }
  auto coarse_err = store.ApproximationError(2);
  ASSERT_TRUE(coarse_err.ok());

  for (index::RecordId id : RecordsOf(2, 0.5)) store.AddRecord(id);
  auto mid_err = store.ApproximationError(2);
  ASSERT_TRUE(mid_err.ok());
  EXPECT_LE(*mid_err, *coarse_err);

  for (index::RecordId id : RecordsOf(2, 0.0)) store.AddRecord(id);
  auto full_err = store.ApproximationError(2);
  ASSERT_TRUE(full_err.ok());
  EXPECT_DOUBLE_EQ(*full_err, 0.0);
  EXPECT_LE(*full_err, *mid_err);
}

TEST_F(ObjectStoreTest, DuplicateRecordsAreIdempotent) {
  ClientObjectStore store(db_.get());
  const auto records = RecordsOf(3, 0.0);
  for (index::RecordId id : records) store.AddRecord(id);
  const int64_t count = store.CoefficientCount(3);
  for (index::RecordId id : records) store.AddRecord(id);
  EXPECT_EQ(store.CoefficientCount(3), count);
}

TEST_F(ObjectStoreTest, EndToEndWithStreamingClient) {
  // Drive a streaming client around the scene and feed everything it
  // receives into the store: every object whose base arrived must
  // reconstruct, and a slow pass must leave near-zero error for objects
  // fully inside the window.
  net::SimulatedLink link;
  StreamingClient::Options options;
  options.query_fraction = 0.4;
  StreamingClient client(options, geometry::MakeBox2(0, 0, 1000, 1000),
                         server_.get(), &link);
  ClientObjectStore store(db_.get());

  // Slow sweep across the middle of the space.
  for (int t = 0; t < 20; ++t) {
    const auto report = client.Step({100.0 + 40.0 * t, 500.0}, 0.01);
    for (index::RecordId id : report.records) store.AddRecord(id);
  }

  int reconstructed = 0;
  for (int32_t obj : store.KnownObjects()) {
    if (!store.HasBase(obj)) continue;
    auto mesh = store.Reconstruct(obj);
    ASSERT_TRUE(mesh.ok());
    EXPECT_TRUE(mesh->Validate().ok());
    ++reconstructed;
  }
  EXPECT_GT(reconstructed, 0);
}

}  // namespace
}  // namespace mars::client
