#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/box.h"
#include "index/record.h"
#include "index/rtree.h"
#include "index/shard_map.h"

namespace mars::index {
namespace {

using geometry::Box;

template <size_t Dim>
Box<Dim> RandomBox(common::Rng& rng, double space, double max_extent) {
  std::array<double, Dim> lo, hi;
  for (size_t d = 0; d < Dim; ++d) {
    lo[d] = rng.Uniform(0, space);
    hi[d] = lo[d] + rng.Uniform(0, max_extent);
  }
  return Box<Dim>(lo, hi);
}

template <size_t Dim>
std::vector<int64_t> BruteForceQuery(
    const std::vector<typename RTree<Dim>::Entry>& entries,
    const Box<Dim>& window) {
  std::vector<int64_t> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(window)) out.push_back(e.value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Exercises the tree against a brute-force oracle. Parameterized over
// (split policy, forced reinsert, entry count, seed); repeated for
// dimensions 2, 3 and 4 through the typed helper below.
using Param = std::tuple<SplitPolicy, bool, int, int>;

template <size_t Dim>
void RunOracleTest(const Param& param) {
  const auto [policy, reinsert, count, seed] = param;
  RTreeOptions options;
  options.split_policy = policy;
  options.forced_reinsert = reinsert;
  RTree<Dim> tree(options);
  common::Rng rng(static_cast<uint64_t>(seed) * 7919 + Dim);

  std::vector<typename RTree<Dim>::Entry> entries;
  for (int i = 0; i < count; ++i) {
    const Box<Dim> box = RandomBox<Dim>(rng, 100.0, 10.0);
    tree.Insert(box, i);
    entries.push_back({box, i});
  }
  ASSERT_EQ(tree.size(), count);
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();

  for (int q = 0; q < 50; ++q) {
    const Box<Dim> window = RandomBox<Dim>(rng, 100.0, 30.0);
    std::vector<int64_t> got;
    tree.Query(window, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceQuery<Dim>(entries, window));
  }

  // Remove a third of the entries, re-check, re-query.
  std::vector<typename RTree<Dim>::Entry> kept;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(tree.Remove(entries[i].box, entries[i].value));
    } else {
      kept.push_back(entries[i]);
    }
  }
  ASSERT_EQ(tree.size(), static_cast<int64_t>(kept.size()));
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  for (int q = 0; q < 50; ++q) {
    const Box<Dim> window = RandomBox<Dim>(rng, 100.0, 30.0);
    std::vector<int64_t> got;
    tree.Query(window, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceQuery<Dim>(kept, window));
  }
}

class RTreeOracleTest : public ::testing::TestWithParam<Param> {};

TEST_P(RTreeOracleTest, MatchesBruteForce2D) { RunOracleTest<2>(GetParam()); }
TEST_P(RTreeOracleTest, MatchesBruteForce3D) { RunOracleTest<3>(GetParam()); }
TEST_P(RTreeOracleTest, MatchesBruteForce4D) { RunOracleTest<4>(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeOracleTest,
    ::testing::Combine(
        ::testing::Values(SplitPolicy::kGuttmanQuadratic, SplitPolicy::kRStar),
        ::testing::Values(false, true),
        ::testing::Values(25, 200, 1500),
        ::testing::Values(1, 2)));

TEST(RTreeTest, EmptyTreeBehaves) {
  RTree2 tree;
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.height(), 1);
  std::vector<int64_t> out;
  tree.Query(geometry::MakeBox2(0, 0, 10, 10), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.Bounds().IsEmpty());
  EXPECT_FALSE(tree.Remove(geometry::MakeBox2(0, 0, 1, 1), 5));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, SingleEntry) {
  RTree2 tree;
  const auto box = geometry::MakeBox2(1, 1, 2, 2);
  tree.Insert(box, 42);
  std::vector<int64_t> out;
  tree.Query(geometry::MakeBox2(0, 0, 3, 3), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
  out.clear();
  tree.Query(geometry::MakeBox2(5, 5, 6, 6), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, DuplicateEntriesAllowed) {
  RTree3 tree;
  const auto box = geometry::MakeBox3(0, 0, 0, 1, 1, 1);
  tree.Insert(box, 7);
  tree.Insert(box, 7);
  tree.Insert(box, 8);
  std::vector<int64_t> out;
  tree.Query(box, &out);
  EXPECT_EQ(out.size(), 3u);
  // Remove removes exactly one match.
  EXPECT_TRUE(tree.Remove(box, 7));
  out.clear();
  tree.Query(box, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(RTreeTest, RemoveNonexistentReturnsFalse) {
  RTree2 tree;
  tree.Insert(geometry::MakeBox2(0, 0, 1, 1), 1);
  EXPECT_FALSE(tree.Remove(geometry::MakeBox2(0, 0, 1, 1), 2));
  EXPECT_FALSE(tree.Remove(geometry::MakeBox2(0, 0, 2, 2), 1));
  EXPECT_EQ(tree.size(), 1);
}

TEST(RTreeTest, RemoveEverything) {
  RTreeOptions options;
  RTree2 tree(options);
  common::Rng rng(5);
  std::vector<RTree2::Entry> entries;
  for (int i = 0; i < 300; ++i) {
    const auto box = RandomBox<2>(rng, 50, 5);
    tree.Insert(box, i);
    entries.push_back({box, i});
  }
  for (const auto& e : entries) {
    EXPECT_TRUE(tree.Remove(e.box, e.value));
  }
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<int64_t> out;
  tree.Query(geometry::MakeBox2(0, 0, 100, 100), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree2 tree;  // capacity 20
  common::Rng rng(6);
  for (int i = 0; i < 4000; ++i) {
    tree.Insert(RandomBox<2>(rng, 1000, 5), i);
  }
  // With fanout >= 8 (40% of 20), 4000 entries need at most 4 levels;
  // more than 6 would indicate a broken split.
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 6);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, BoundsCoverAllEntries) {
  RTree2 tree;
  common::Rng rng(7);
  geometry::Box2 expected;
  for (int i = 0; i < 500; ++i) {
    const auto box = RandomBox<2>(rng, 100, 10);
    tree.Insert(box, i);
    expected.Extend(box);
  }
  EXPECT_EQ(tree.Bounds(), expected);
}

TEST(RTreeTest, QueryStatsAccumulate) {
  RTree2 tree;
  common::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(RandomBox<2>(rng, 100, 5), i);
  }
  tree.ResetStats();
  EXPECT_EQ(tree.stats().query_node_accesses, 0);
  std::vector<int64_t> out;
  tree.Query(geometry::MakeBox2(0, 0, 10, 10), &out);
  const int64_t after_one = tree.stats().query_node_accesses;
  EXPECT_GT(after_one, 0);
  EXPECT_EQ(tree.stats().queries, 1);
  tree.Query(geometry::MakeBox2(0, 0, 10, 10), &out);
  EXPECT_EQ(tree.stats().query_node_accesses, 2 * after_one);
}

TEST(RTreeTest, SmallWindowCostsLessThanFullScanWindow) {
  RTree2 tree;
  common::Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    tree.Insert(RandomBox<2>(rng, 1000, 3), i);
  }
  tree.ResetStats();
  std::vector<int64_t> out;
  tree.Query(geometry::MakeBox2(0, 0, 20, 20), &out);
  const int64_t small_cost = tree.stats().query_node_accesses;
  tree.ResetStats();
  out.clear();
  tree.Query(geometry::MakeBox2(0, 0, 1000, 1000), &out);
  const int64_t full_cost = tree.stats().query_node_accesses;
  EXPECT_LT(small_cost, full_cost / 4);
}

TEST(RTreeTest, RStarBeatsOrMatchesGuttmanOnClusteredData) {
  // The R* split should not be (much) worse than quadratic on clustered
  // data; typically it is clearly better. We assert a generous bound to
  // keep the test robust.
  common::Rng rng(10);
  std::vector<RTree2::Entry> entries;
  for (int cluster = 0; cluster < 30; ++cluster) {
    const double cx = rng.Uniform(0, 1000), cy = rng.Uniform(0, 1000);
    for (int i = 0; i < 60; ++i) {
      const double x = cx + rng.Normal(0, 10), y = cy + rng.Normal(0, 10);
      entries.push_back(
          {geometry::MakeBox2(x, y, x + 2, y + 2),
           static_cast<int64_t>(entries.size())});
    }
  }
  RTreeOptions rstar_options;
  rstar_options.split_policy = SplitPolicy::kRStar;
  RTreeOptions guttman_options;
  guttman_options.split_policy = SplitPolicy::kGuttmanQuadratic;
  guttman_options.forced_reinsert = false;
  RTree2 rstar(rstar_options), guttman(guttman_options);
  for (const auto& e : entries) {
    rstar.Insert(e.box, e.value);
    guttman.Insert(e.box, e.value);
  }
  rstar.ResetStats();
  guttman.ResetStats();
  common::Rng qrng(11);
  for (int q = 0; q < 200; ++q) {
    const auto w = RandomBox<2>(qrng, 1000, 50);
    std::vector<int64_t> out;
    rstar.Query(w, &out);
    out.clear();
    guttman.Query(w, &out);
  }
  EXPECT_LE(rstar.stats().query_node_accesses,
            guttman.stats().query_node_accesses * 1.25);
}

TEST(RTreeTest, CapacityOptionRespected) {
  RTreeOptions options;
  options.node_capacity = 8;
  RTree2 tree(options);
  common::Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(RandomBox<2>(rng, 100, 5), i);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());  // checks fanout <= 8
}

TEST(RTreeTest, PointEntriesWork) {
  // Degenerate boxes (points), the naive index's key shape.
  RTree3 tree;
  common::Rng rng(13);
  std::vector<RTree3::Entry> entries;
  for (int i = 0; i < 800; ++i) {
    std::array<double, 3> p = {rng.Uniform(0, 100), rng.Uniform(0, 100),
                               rng.UniformDouble()};
    const auto box = geometry::Box3::FromPoint(p);
    tree.Insert(box, i);
    entries.push_back({box, i});
  }
  common::Rng qrng(14);
  for (int q = 0; q < 50; ++q) {
    const auto w = RandomBox<3>(qrng, 100, 20);
    std::vector<int64_t> got;
    tree.Query(w, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceQuery<3>(entries, w));
  }
}

TEST(RTreeTest, SequentialInsertOrderStillValid) {
  // Monotone (sorted) insertion is a classic R-tree worst case; the tree
  // must stay correct.
  RTree2 tree;
  std::vector<RTree2::Entry> entries;
  for (int i = 0; i < 1000; ++i) {
    const auto box = geometry::MakeBox2(i, i, i + 0.5, i + 0.5);
    tree.Insert(box, i);
    entries.push_back({box, i});
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<int64_t> got;
  tree.Query(geometry::MakeBox2(100.2, 100.2, 200.7, 200.7), &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForceQuery<2>(entries,
                                    geometry::MakeBox2(100.2, 100.2, 200.7,
                                                       200.7)));
}

// --- k-nearest-neighbour queries ------------------------------------------

class KnnTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KnnTest, MatchesBruteForce) {
  const auto [count, k] = GetParam();
  common::Rng rng(9000 + count + k);
  RTree2 tree;
  std::vector<RTree2::Entry> entries;
  for (int i = 0; i < count; ++i) {
    const auto box = RandomBox<2>(rng, 100, 6);
    tree.Insert(box, i);
    entries.push_back({box, i});
  }
  for (int q = 0; q < 25; ++q) {
    const std::array<double, 2> point = {rng.Uniform(0, 100),
                                         rng.Uniform(0, 100)};
    std::vector<RTree2::Entry> got;
    tree.NearestNeighbors(point, k, &got);
    EXPECT_EQ(static_cast<int>(got.size()), std::min(k, count));
    // Oracle: sort by min distance.
    std::vector<std::pair<double, int64_t>> oracle;
    for (const auto& e : entries) {
      oracle.push_back({RTree2::MinDistanceSquared(e.box, point), e.value});
    }
    std::sort(oracle.begin(), oracle.end());
    // Distances must match position by position (values may differ on
    // ties).
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(RTree2::MinDistanceSquared(got[i].box, point),
                  oracle[i].first, 1e-9)
          << "rank " << i;
    }
    // Results are sorted nearest-first.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(RTree2::MinDistanceSquared(got[i - 1].box, point),
                RTree2::MinDistanceSquared(got[i].box, point) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnTest,
    ::testing::Combine(::testing::Values(10, 100, 2000),
                       ::testing::Values(1, 5, 25)));

TEST(KnnTest, EmptyTreeAndZeroK) {
  RTree2 tree;
  std::vector<RTree2::Entry> out;
  tree.NearestNeighbors({0, 0}, 5, &out);
  EXPECT_TRUE(out.empty());
  tree.Insert(geometry::MakeBox2(0, 0, 1, 1), 1);
  tree.NearestNeighbors({0, 0}, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KnnTest, PointInsideBoxHasZeroDistance) {
  RTree2 tree;
  tree.Insert(geometry::MakeBox2(0, 0, 10, 10), 7);
  tree.Insert(geometry::MakeBox2(50, 50, 60, 60), 8);
  std::vector<RTree2::Entry> out;
  tree.NearestNeighbors({5, 5}, 1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 7);
  EXPECT_DOUBLE_EQ(RTree2::MinDistanceSquared(out[0].box, {5, 5}), 0.0);
}

TEST(KnnTest, VisitsFewNodesOnBigTree) {
  common::Rng rng(31);
  std::vector<RTree3::Entry> entries;
  for (int i = 0; i < 50000; ++i) {
    entries.push_back({RandomBox<3>(rng, 1000, 2), i});
  }
  RTree3 tree = RTree3::BulkLoad(entries);
  tree.ResetStats();
  std::vector<RTree3::Entry> out;
  tree.NearestNeighbors({500, 500, 500}, 10, &out);
  EXPECT_EQ(out.size(), 10u);
  // Best-first search should touch a tiny fraction of the ~3000 nodes.
  EXPECT_LT(tree.stats().query_node_accesses, 100);
}

// --- Bulk loading (STR) --------------------------------------------------

class BulkLoadTest : public ::testing::TestWithParam<int> {};

TEST_P(BulkLoadTest, MatchesBruteForceAndInvariants) {
  const int count = GetParam();
  common::Rng rng(1000 + count);
  std::vector<RTree3::Entry> entries;
  for (int i = 0; i < count; ++i) {
    entries.push_back({RandomBox<3>(rng, 100, 8), i});
  }
  RTree3 tree = RTree3::BulkLoad(entries);
  EXPECT_EQ(tree.size(), count);
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  for (int q = 0; q < 30; ++q) {
    const auto window = RandomBox<3>(rng, 100, 25);
    std::vector<int64_t> got;
    tree.Query(window, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceQuery<3>(entries, window));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadTest,
                         ::testing::Values(1, 7, 20, 21, 39, 40, 41, 400,
                                           5000));

TEST(BulkLoadTest, EmptyInput) {
  RTree2 tree = RTree2::BulkLoad({});
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<int64_t> out;
  tree.Query(geometry::MakeBox2(0, 0, 1, 1), &out);
  EXPECT_TRUE(out.empty());
}

TEST(BulkLoadTest, SupportsSubsequentUpdates) {
  common::Rng rng(77);
  std::vector<RTree2::Entry> entries;
  for (int i = 0; i < 300; ++i) {
    entries.push_back({RandomBox<2>(rng, 100, 5), i});
  }
  RTree2 tree = RTree2::BulkLoad(entries);
  // Inserts and removes keep working on a bulk-loaded tree.
  for (int i = 300; i < 400; ++i) {
    const auto box = RandomBox<2>(rng, 100, 5);
    tree.Insert(box, i);
    entries.push_back({box, i});
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(tree.Remove(entries[i].box, entries[i].value));
  }
  entries.erase(entries.begin(), entries.begin() + 100);
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  for (int q = 0; q < 30; ++q) {
    const auto window = RandomBox<2>(rng, 100, 20);
    std::vector<int64_t> got;
    tree.Query(window, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceQuery<2>(entries, window));
  }
}

TEST(BulkLoadTest, QueryCostComparableToInsertBuilt) {
  common::Rng rng(78);
  std::vector<RTree2::Entry> entries;
  for (int i = 0; i < 20000; ++i) {
    entries.push_back({RandomBox<2>(rng, 1000, 4), i});
  }
  RTree2 bulk = RTree2::BulkLoad(entries);
  RTree2 incremental;
  for (const auto& e : entries) incremental.Insert(e.box, e.value);
  bulk.ResetStats();
  incremental.ResetStats();
  common::Rng qrng(79);
  for (int q = 0; q < 200; ++q) {
    const auto w = RandomBox<2>(qrng, 1000, 60);
    std::vector<int64_t> out;
    bulk.Query(w, &out);
    out.clear();
    incremental.Query(w, &out);
  }
  // STR packing should not be drastically worse than R* insertion on
  // uniform data (it is usually better).
  EXPECT_LE(bulk.stats().query_node_accesses,
            incremental.stats().query_node_accesses * 1.3);
}

TEST(RTreeTest, QueryEntriesReturnsBoxes) {
  RTree2 tree;
  tree.Insert(geometry::MakeBox2(0, 0, 1, 1), 1);
  tree.Insert(geometry::MakeBox2(5, 5, 6, 6), 2);
  std::vector<RTree2::Entry> out;
  tree.QueryEntries(geometry::MakeBox2(0, 0, 2, 2), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 1);
  EXPECT_EQ(out[0].box, geometry::MakeBox2(0, 0, 1, 1));
}

// --- ShardMap -------------------------------------------------------------

CoeffRecord RecordAt(double x, double y) {
  CoeffRecord r;
  r.position = {x, y, 0};
  r.support_bounds = geometry::MakeBox3(x - 1, y - 1, 0, x + 1, y + 1, 5);
  return r;
}

TEST(ShardMapTest, DefaultRoutesEverythingToShardZero) {
  ShardMap map;
  EXPECT_EQ(map.shard_count(), 1);
  EXPECT_EQ(map.Route(RecordAt(0, 0)), 0);
  EXPECT_EQ(map.Route(RecordAt(1e9, -1e9)), 0);
}

TEST(ShardMapTest, GridCoversAllShards) {
  // Every shard id must be reachable: spraying points over the bounds
  // hits each of the K shards at least once, and never an out-of-range id.
  const geometry::Box2 bounds = geometry::MakeBox2(0, 0, 1000, 1000);
  for (int32_t k : {1, 2, 3, 4, 7, 16}) {
    const ShardMap map = ShardMap::Build(bounds, k);
    EXPECT_EQ(map.shard_count(), k);
    EXPECT_GE(map.rows() * map.cols(), k);
    std::vector<bool> seen(k, false);
    common::Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
      const int32_t s =
          map.Route(RecordAt(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
      ASSERT_GE(s, 0);
      ASSERT_LT(s, k);
      seen[s] = true;
    }
    for (int32_t s = 0; s < k; ++s) {
      EXPECT_TRUE(seen[s]) << "shard " << s << " unreachable at K=" << k;
    }
  }
}

TEST(ShardMapTest, OutOfBoundsPointsClampToEdgeCells) {
  const ShardMap map =
      ShardMap::Build(geometry::MakeBox2(0, 0, 100, 100), 4);
  // Ingested records outside the original bounds still route somewhere
  // valid (the nearest edge cell), never out of range.
  for (const auto& [x, y] : std::vector<std::pair<double, double>>{
           {-50, -50}, {150, 150}, {-50, 150}, {50, 1e6}}) {
    const int32_t s = map.Route(RecordAt(x, y));
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
  }
}

TEST(ShardMapTest, RoutingIsDeterministic) {
  const geometry::Box2 bounds = geometry::MakeBox2(0, 0, 500, 500);
  const ShardMap a = ShardMap::Build(bounds, 9);
  const ShardMap b = ShardMap::Build(bounds, 9);
  common::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const CoeffRecord r =
        RecordAt(rng.Uniform(0, 500), rng.Uniform(0, 500));
    EXPECT_EQ(a.Route(r), b.Route(r));
  }
}

}  // namespace
}  // namespace mars::index
