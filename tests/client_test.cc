#include <algorithm>
#include <memory>
#include <unordered_set>

#include <gtest/gtest.h>

#include "client/buffered_client.h"
#include "client/continuous.h"
#include "client/naive_client.h"
#include "client/speed_map.h"
#include "client/streaming_client.h"
#include "client/viewport.h"
#include "geometry/box.h"
#include "net/link.h"
#include "server/server.h"
#include "workload/scene.h"

namespace mars::client {
namespace {

using geometry::Box2;
using geometry::MakeBox2;

// --- SpeedResolutionMap ------------------------------------------------------

TEST(SpeedMapTest, DefaultIsIdentity) {
  SpeedResolutionMap map;
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(0.0), 0.0);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(0.5), 0.5);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(1.0), 1.0);
}

TEST(SpeedMapTest, ClampsOutOfRangeSpeeds) {
  SpeedResolutionMap map;
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(2.5), 1.0);
}

TEST(SpeedMapTest, ExponentShapesCurve) {
  SpeedResolutionMap sub_linear(0.5, 0.0);
  SpeedResolutionMap super_linear(2.0, 0.0);
  // Sub-linear exponent drops detail sooner (larger w_min at low speeds).
  EXPECT_GT(sub_linear.MapSpeedToResolution(0.25), 0.25);
  EXPECT_LT(super_linear.MapSpeedToResolution(0.25), 0.25);
}

TEST(SpeedMapTest, FloorCapsFinestResolution) {
  SpeedResolutionMap map(1.0, 0.2);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(0.0), 0.2);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(1.0), 1.0);
}

// --- Viewport ---------------------------------------------------------------

TEST(ViewportTest, WindowSizedAsFraction) {
  const Viewport vp(MakeBox2(0, 0, 1000, 2000), 0.1, 0.1);
  EXPECT_DOUBLE_EQ(vp.width(), 100.0);
  EXPECT_DOUBLE_EQ(vp.height(), 200.0);
  const Box2 w = vp.WindowAt({500, 500});
  EXPECT_EQ(w, MakeBox2(450, 400, 550, 600));
}

// --- PlanContinuousRetrieval (Algorithm 1) ----------------------------------

TEST(ContinuousTest, FirstFrameFetchesWholeWindow) {
  const Box2 q = MakeBox2(0, 0, 10, 10);
  const auto plan = PlanContinuousRetrieval(q, 0.4, std::nullopt, 2.0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].region, q);
  EXPECT_DOUBLE_EQ(plan[0].w_min, 0.4);
  EXPECT_DOUBLE_EQ(plan[0].w_max, 1.0);
}

TEST(ContinuousTest, NoOverlapFetchesWholeWindow) {
  const Box2 q_prev = MakeBox2(0, 0, 10, 10);
  const Box2 q_t = MakeBox2(100, 100, 110, 110);
  const auto plan = PlanContinuousRetrieval(q_t, 0.5, q_prev, 0.5);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].region, q_t);
}

TEST(ContinuousTest, SameResolutionFetchesOnlyNewRegion) {
  const Box2 q_prev = MakeBox2(0, 0, 10, 10);
  const Box2 q_t = MakeBox2(2, 0, 12, 10);  // slide right
  const auto plan = PlanContinuousRetrieval(q_t, 0.5, q_prev, 0.5);
  ASSERT_EQ(plan.size(), 1u);  // a single new strip
  EXPECT_EQ(plan[0].region, MakeBox2(10, 0, 12, 10));
  EXPECT_DOUBLE_EQ(plan[0].w_min, 0.5);
  EXPECT_DOUBLE_EQ(plan[0].w_max, 1.0);
}

TEST(ContinuousTest, CoarserResolutionStillFetchesNewRegionOnly) {
  // Client sped up: w_min rises; the overlap needs nothing.
  const Box2 q_prev = MakeBox2(0, 0, 10, 10);
  const Box2 q_t = MakeBox2(3, 4, 13, 14);
  const auto plan = PlanContinuousRetrieval(q_t, 0.8, q_prev, 0.2);
  // Only N_t pieces (2 of them for a diagonal slide).
  ASSERT_EQ(plan.size(), 2u);
  for (const auto& sq : plan) {
    EXPECT_DOUBLE_EQ(sq.w_min, 0.8);
    EXPECT_DOUBLE_EQ(sq.w_max, 1.0);
    EXPECT_LE(sq.region.Intersection(q_prev).Volume(), 1e-9);
  }
}

TEST(ContinuousTest, FinerResolutionAddsOverlapBand) {
  // Client slowed down: the overlap needs the detail band
  // [w_t, w_prev].
  const Box2 q_prev = MakeBox2(0, 0, 10, 10);
  const Box2 q_t = MakeBox2(2, 0, 12, 10);
  const auto plan = PlanContinuousRetrieval(q_t, 0.2, q_prev, 0.7);
  ASSERT_EQ(plan.size(), 2u);
  // First sub-query: the overlap upgrade.
  EXPECT_EQ(plan[0].region, MakeBox2(2, 0, 10, 10));
  EXPECT_DOUBLE_EQ(plan[0].w_min, 0.2);
  EXPECT_DOUBLE_EQ(plan[0].w_max, 0.7);
  // Second: the new strip at full band.
  EXPECT_EQ(plan[1].region, MakeBox2(10, 0, 12, 10));
  EXPECT_DOUBLE_EQ(plan[1].w_min, 0.2);
  EXPECT_DOUBLE_EQ(plan[1].w_max, 1.0);
}

TEST(ContinuousTest, StationaryClientAtSameResolutionFetchesNothing) {
  const Box2 q = MakeBox2(0, 0, 10, 10);
  const auto plan = PlanContinuousRetrieval(q, 0.5, q, 0.5);
  EXPECT_TRUE(plan.empty());
}

TEST(ContinuousTest, StationaryClientSlowingDownUpgradesInPlace) {
  const Box2 q = MakeBox2(0, 0, 10, 10);
  const auto plan = PlanContinuousRetrieval(q, 0.1, q, 0.6);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].region, q);
  EXPECT_DOUBLE_EQ(plan[0].w_min, 0.1);
  EXPECT_DOUBLE_EQ(plan[0].w_max, 0.6);
}

// Property test for Algorithm 1: for random frame pairs, the plan's
// regions stay inside Q_t, are interior-disjoint, and their (region ×
// band) volume equals exactly the volume of what the client lacks.
class ContinuousPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ContinuousPropertyTest, PlanVolumeIsExactlyTheMissingVolume) {
  common::Rng rng(GetParam() * 37);
  for (int iter = 0; iter < 300; ++iter) {
    auto random_frame = [&rng]() {
      const double x = rng.Uniform(0, 50), y = rng.Uniform(0, 50);
      return MakeBox2(x, y, x + rng.Uniform(1, 20), y + rng.Uniform(1, 20));
    };
    const Box2 q_prev = random_frame();
    const Box2 q_t = random_frame();
    const double w_prev = rng.UniformDouble();
    const double w_t = rng.UniformDouble();
    const auto plan = PlanContinuousRetrieval(q_t, w_t, q_prev, w_prev);

    double plan_volume = 0.0;
    for (size_t i = 0; i < plan.size(); ++i) {
      EXPECT_TRUE(q_t.Contains(plan[i].region));
      EXPECT_LE(plan[i].w_min, plan[i].w_max);
      EXPECT_DOUBLE_EQ(plan[i].w_min, w_t);
      plan_volume += plan[i].region.Volume() *
                     (plan[i].w_max - plan[i].w_min);
      for (size_t j = i + 1; j < plan.size(); ++j) {
        // Pieces may share a region only if their bands are disjoint
        // (overlap-upgrade + new-region share no (area × band) volume).
        const double area_overlap =
            plan[i].region.Intersection(plan[j].region).Volume();
        const double band_overlap = std::max(
            0.0, std::min(plan[i].w_max, plan[j].w_max) -
                     std::max(plan[i].w_min, plan[j].w_min));
        EXPECT_LE(area_overlap * band_overlap, 1e-9);
      }
    }
    // The client holds (q_prev ∩ q_t) × [w_prev, 1]; it needs q_t ×
    // [w_t, 1]. Missing volume:
    const double overlap_area = q_t.Intersection(q_prev).Volume();
    const double full_band = 1.0 - w_t;
    const double covered_band = std::max(0.0, 1.0 - std::max(w_prev, w_t));
    const double expected = q_t.Volume() * full_band -
                            overlap_area * covered_band;
    EXPECT_NEAR(plan_volume, expected, 1e-9) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContinuousPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(SpeedMapTest, MonotoneInSpeed) {
  for (double exponent : {0.5, 1.0, 2.0}) {
    for (double floor : {0.0, 0.2}) {
      SpeedResolutionMap map(exponent, floor);
      double prev = -1.0;
      for (double s = 0.0; s <= 1.0; s += 0.05) {
        const double w = map.MapSpeedToResolution(s);
        EXPECT_GE(w, prev);
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0);
        prev = w;
      }
    }
  }
}

// --- Clients over a real scene ----------------------------------------------

class ClientFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SceneOptions scene;
    scene.space = MakeBox2(0, 0, 1000, 1000);
    scene.object_count = 10;
    scene.levels = 2;
    scene.seed = 21;
    auto db = workload::GenerateScene(scene);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<server::ObjectDatabase>(std::move(*db));
    server_ = std::make_unique<server::Server>(
        db_.get(), server::Server::IndexKind::kSupportRegion);
    space_ = scene.space;
  }

  // Brute-force required set for a window at a resolution.
  std::unordered_set<index::RecordId> Required(const Box2& window,
                                               double w_min) const {
    std::unordered_set<index::RecordId> out;
    for (size_t i = 0; i < db_->records().size(); ++i) {
      const auto& r = db_->records()[i];
      if (r.w < w_min) continue;
      const Box2 support({r.support_bounds.lo(0), r.support_bounds.lo(1)},
                         {r.support_bounds.hi(0), r.support_bounds.hi(1)});
      if (support.Intersects(window)) out.insert(static_cast<int64_t>(i));
    }
    return out;
  }

  std::unique_ptr<server::ObjectDatabase> db_;
  std::unique_ptr<server::Server> server_;
  Box2 space_;
};

TEST_F(ClientFixture, StreamingClientHoldsRequiredSetEveryFrame) {
  net::SimulatedLink link;
  StreamingClient::Options options;
  options.query_fraction = 0.2;
  StreamingClient client(options, space_, server_.get(), &link);

  std::unordered_set<index::RecordId> holdings;
  Viewport vp(space_, 0.2, 0.2);
  // A path that slows down (finer resolution) and turns.
  const std::vector<std::pair<geometry::Vec2, double>> path = {
      {{200, 200}, 0.9}, {{260, 200}, 0.9}, {{320, 200}, 0.6},
      {{360, 240}, 0.4}, {{380, 280}, 0.2}, {{385, 285}, 0.05},
      {{385, 285}, 0.05},
  };
  for (const auto& [pos, speed] : path) {
    const auto report = client.Step(pos, speed);
    holdings.insert(report.records.begin(), report.records.end());
    // Invariant: after frame t the client holds everything required for
    // rendering Q_t at resolution w_t.
    for (index::RecordId id : Required(vp.WindowAt(pos), speed)) {
      EXPECT_TRUE(holdings.contains(id))
          << "missing record " << id << " at pos (" << pos.x << ", "
          << pos.y << ") speed " << speed;
    }
  }
}

TEST_F(ClientFixture, StreamingClientNeverReceivesDuplicates) {
  net::SimulatedLink link;
  StreamingClient::Options options;
  StreamingClient client(options, space_, server_.get(), &link);
  std::unordered_set<index::RecordId> seen;
  for (int t = 0; t < 30; ++t) {
    const auto report =
        client.Step({200.0 + 15.0 * t, 300.0 + 5.0 * t}, 0.5);
    for (index::RecordId id : report.records) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate record " << id;
    }
  }
}

TEST_F(ClientFixture, StreamingSlowerClientsFetchMore) {
  auto run = [&](double speed) {
    net::SimulatedLink link;
    StreamingClient client(StreamingClient::Options(), space_,
                           server_.get(), &link);
    // Equal distance at each speed.
    const double total = 600.0;
    const double step = speed * 15.0;
    int64_t bytes = 0;
    for (double x = 100; x < 100 + total; x += step) {
      bytes += client.Step({x, 500}, speed).response_bytes;
    }
    return bytes;
  };
  const int64_t slow = run(0.1);
  const int64_t medium = run(0.5);
  const int64_t fast = run(1.0);
  EXPECT_GT(slow, medium);
  EXPECT_GT(medium, fast);
}

TEST_F(ClientFixture, BufferedClientDeterministicForSeed) {
  auto run = [&]() {
    net::SimulatedLink link;
    BufferedClient::Options options;
    options.seed = 77;
    BufferedClient client(options, space_, server_.get(), &link);
    double total = 0;
    for (int t = 0; t < 25; ++t) {
      total += client.Step({300.0 + 10.0 * t, 400.0}, 0.4).response_seconds;
    }
    return std::make_pair(total, client.buffer_stats().hits);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST_F(ClientFixture, BufferedClientStationaryFramesAreFree) {
  net::SimulatedLink link;
  BufferedClient::Options options;
  BufferedClient client(options, space_, server_.get(), &link);
  client.Step({500, 500}, 0.3);
  // Staying put at the same resolution: everything is buffered.
  const auto report = client.Step({500, 500}, 0.3);
  EXPECT_EQ(report.demand_bytes, 0);
  EXPECT_DOUBLE_EQ(report.response_seconds, 0.0);
  EXPECT_EQ(report.block_hits, report.blocks_needed);
}

TEST_F(ClientFixture, BufferedClientSlowdownTriggersUpgrade) {
  net::SimulatedLink link;
  BufferedClient::Options options;
  options.enable_prefetch = false;
  BufferedClient client(options, space_, server_.get(), &link);
  // Position near object 0 so there is real data in view.
  const auto& b = db_->object_bounds()[0];
  const geometry::Vec2 pos{0.5 * (b.lo(0) + b.hi(0)),
                           0.5 * (b.lo(1) + b.hi(1))};
  client.Step(pos, 0.9);
  const auto upgrade = client.Step(pos, 0.05);  // slow: needs fine detail
  EXPECT_GT(upgrade.demand_bytes, 0);  // the missing band is fetched
  const auto again = client.Step(pos, 0.05);
  EXPECT_EQ(again.demand_bytes, 0);  // now resident
}

TEST_F(ClientFixture, NaiveClientCachesObjects) {
  net::SimulatedLink link;
  NaiveObjectClient::Options options;
  options.cache_bytes = 10 * 1024 * 1024;  // plenty
  NaiveObjectClient client(options, space_, server_.get(), &link);
  const auto first = client.Step({500, 500}, 0.5);
  const auto second = client.Step({500, 500}, 0.5);
  EXPECT_EQ(second.objects_fetched, 0);
  EXPECT_DOUBLE_EQ(second.response_seconds, 0.0);
  EXPECT_EQ(first.objects_needed, second.objects_needed);
}

TEST_F(ClientFixture, NaiveClientRefetchesAfterEviction) {
  net::SimulatedLink link;
  NaiveObjectClient::Options options;
  options.cache_bytes = 1;  // effectively no cache
  NaiveObjectClient client(options, space_, server_.get(), &link);
  const auto first = client.Step({500, 500}, 0.5);
  // Move far away and back: everything must be re-fetched.
  client.Step({50, 50}, 0.5);
  const auto back = client.Step({500, 500}, 0.5);
  EXPECT_EQ(back.objects_fetched, first.objects_fetched);
}

TEST_F(ClientFixture, NaiveClientFetchesFullResolutionBytes) {
  net::SimulatedLink link;
  NaiveObjectClient::Options options;
  NaiveObjectClient client(options, space_, server_.get(), &link);
  const auto report = client.Step({500, 500}, 0.5);
  if (report.objects_fetched > 0) {
    // Full-resolution objects are big; a motion-aware client at the same
    // speed would fetch far less. Cross-check against the record table.
    net::SimulatedLink link2;
    StreamingClient streaming(StreamingClient::Options(), space_,
                              server_.get(), &link2);
    const auto ma = streaming.Step({500, 500}, 0.5);
    EXPECT_GT(report.bytes, ma.response_bytes);
  }
}

}  // namespace
}  // namespace mars::client
