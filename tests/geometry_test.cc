#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/box.h"
#include "geometry/grid.h"
#include "geometry/rect_diff.h"
#include "geometry/vec.h"

namespace mars::geometry {
namespace {

// --- Vec ---------------------------------------------------------------------

TEST(VecTest, Vec2Arithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, Vec2(4, 1));
  EXPECT_EQ(a - b, Vec2(-2, 3));
  EXPECT_EQ(a * 2.0, Vec2(2, 4));
  EXPECT_EQ(2.0 * a, Vec2(2, 4));
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ(Vec2(3, 4).Norm(), 5.0);
}

TEST(VecTest, Vec3CrossProduct) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_EQ(x.Cross(y), Vec3(0, 0, 1));
  EXPECT_EQ(y.Cross(x), Vec3(0, 0, -1));
  // Cross product is orthogonal to both inputs.
  const Vec3 a{1, 2, 3}, b{-2, 0.5, 4};
  const Vec3 c = a.Cross(b);
  EXPECT_NEAR(c.Dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.Dot(b), 0.0, 1e-12);
}

TEST(VecTest, Midpoint) {
  EXPECT_EQ(Midpoint(Vec3(0, 0, 0), Vec3(2, 4, 6)), Vec3(1, 2, 3));
  EXPECT_EQ(Midpoint(Vec2(-1, 1), Vec2(1, 3)), Vec2(0, 2));
}

// --- Box ---------------------------------------------------------------------

TEST(BoxTest, DefaultIsEmpty) {
  Box2 b;
  EXPECT_TRUE(b.IsEmpty());
  EXPECT_DOUBLE_EQ(b.Volume(), 0.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 0.0);
}

TEST(BoxTest, VolumeAndMargin) {
  const Box2 b = MakeBox2(0, 0, 4, 3);
  EXPECT_DOUBLE_EQ(b.Volume(), 12.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 7.0);
  const Box3 c = MakeBox3(0, 0, 0, 2, 3, 4);
  EXPECT_DOUBLE_EQ(c.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(c.Margin(), 9.0);
}

TEST(BoxTest, ContainsPoint) {
  const Box2 b = MakeBox2(0, 0, 1, 1);
  EXPECT_TRUE(b.ContainsPoint({0.5, 0.5}));
  EXPECT_TRUE(b.ContainsPoint({0.0, 1.0}));  // closed boundary
  EXPECT_FALSE(b.ContainsPoint({1.0001, 0.5}));
}

TEST(BoxTest, ContainsBox) {
  const Box2 outer = MakeBox2(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(MakeBox2(1, 1, 9, 9)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(MakeBox2(5, 5, 11, 9)));
  EXPECT_TRUE(outer.Contains(Box2()));  // empty box in everything
  EXPECT_FALSE(Box2().Contains(outer));
}

TEST(BoxTest, IntersectsSymmetricAndBoundaryTouch) {
  const Box2 a = MakeBox2(0, 0, 2, 2);
  const Box2 b = MakeBox2(2, 0, 4, 2);  // shares an edge
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(MakeBox2(2.1, 0, 4, 2)));
  EXPECT_FALSE(a.Intersects(Box2()));
}

TEST(BoxTest, IntersectionAndUnion) {
  const Box2 a = MakeBox2(0, 0, 4, 4);
  const Box2 b = MakeBox2(2, 1, 6, 3);
  const Box2 i = a.Intersection(b);
  EXPECT_EQ(i, MakeBox2(2, 1, 4, 3));
  const Box2 u = a.Union(b);
  EXPECT_EQ(u, MakeBox2(0, 0, 6, 4));
  EXPECT_TRUE(a.Intersection(MakeBox2(5, 5, 6, 6)).IsEmpty());
}

TEST(BoxTest, UnionWithEmptyIsIdentity) {
  const Box2 a = MakeBox2(1, 2, 3, 4);
  EXPECT_EQ(a.Union(Box2()), a);
  EXPECT_EQ(Box2().Union(a), a);
}

TEST(BoxTest, EnlargementAndOverlap) {
  const Box2 a = MakeBox2(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.Enlargement(MakeBox2(1, 1, 3, 3)), 5.0);  // 9 - 4
  EXPECT_DOUBLE_EQ(a.Enlargement(MakeBox2(0.5, 0.5, 1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(MakeBox2(1, 1, 3, 3)), 1.0);
}

TEST(BoxTest, ExtendPointGrowsEmptyBox) {
  Box3 b;
  b.ExtendPoint({1, 2, 3});
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_DOUBLE_EQ(b.Volume(), 0.0);  // degenerate point box
  b.ExtendPoint({0, 4, 3});
  EXPECT_EQ(b, MakeBox3(0, 2, 3, 1, 4, 3));
}

TEST(BoxTest, CenterAndFromCenter) {
  const Box2 b = Box2FromCenter({5, 5}, 4, 2);
  EXPECT_EQ(b, MakeBox2(3, 4, 7, 6));
  const auto c = b.Center();
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(c[1], 5.0);
}

TEST(BoxTest, FromPoint) {
  const Box4 p = Box4::FromPoint({1, 2, 3, 0.5});
  EXPECT_FALSE(p.IsEmpty());
  EXPECT_TRUE(p.ContainsPoint({1, 2, 3, 0.5}));
  EXPECT_DOUBLE_EQ(p.Volume(), 0.0);
}

// --- Rectangle difference ---------------------------------------------------

TEST(RectDiffTest, DisjointReturnsOriginal) {
  const Box2 a = MakeBox2(0, 0, 1, 1);
  const Box2 b = MakeBox2(5, 5, 6, 6);
  const auto pieces = Difference(a, b);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], a);
}

TEST(RectDiffTest, FullyCoveredReturnsNothing) {
  const auto pieces =
      Difference(MakeBox2(1, 1, 2, 2), MakeBox2(0, 0, 3, 3));
  EXPECT_TRUE(pieces.empty());
}

TEST(RectDiffTest, HoleInMiddleYieldsFourPieces) {
  const auto pieces =
      Difference(MakeBox2(0, 0, 10, 10), MakeBox2(4, 4, 6, 6));
  EXPECT_EQ(pieces.size(), 4u);
  double area = 0;
  for (const auto& p : pieces) area += p.Volume();
  EXPECT_DOUBLE_EQ(area, 100.0 - 4.0);
}

TEST(RectDiffTest, CornerOverlapMatchesPaperFigure3) {
  // Q_{t-1} = (A,B,C,D), Q_t shifted up-right: the difference is an
  // L-shaped region the paper splits into two rectangles.
  const Box2 q_prev = MakeBox2(0, 0, 10, 10);
  const Box2 q_t = MakeBox2(3, 4, 13, 14);
  const auto pieces = Difference(q_t, q_prev);
  EXPECT_EQ(pieces.size(), 2u);
  double area = 0;
  for (const auto& p : pieces) area += p.Volume();
  // |Q_t| − |overlap| = 100 − 7·6 = 58.
  EXPECT_DOUBLE_EQ(area, 58.0);
}

// Property test: for random box pairs, the difference pieces (i) stay
// inside a, (ii) avoid the interior of b, (iii) have disjoint interiors,
// and (iv) their area equals area(a) − area(a ∩ b).
class RectDiffPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RectDiffPropertyTest, DecompositionIsExact) {
  common::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    auto random_box = [&rng]() {
      const double x0 = rng.Uniform(0, 10), y0 = rng.Uniform(0, 10);
      return MakeBox2(x0, y0, x0 + rng.Uniform(0.1, 8),
                      y0 + rng.Uniform(0.1, 8));
    };
    const Box2 a = random_box();
    const Box2 b = random_box();
    const auto pieces = Difference(a, b);
    EXPECT_LE(pieces.size(), 4u);

    double area = 0.0;
    for (size_t i = 0; i < pieces.size(); ++i) {
      EXPECT_TRUE(a.Contains(pieces[i]));
      area += pieces[i].Volume();
      // Interior-disjoint from b and from each other.
      EXPECT_LE(pieces[i].Intersection(b).Volume(), 1e-9);
      for (size_t j = i + 1; j < pieces.size(); ++j) {
        EXPECT_LE(pieces[i].Intersection(pieces[j]).Volume(), 1e-9);
      }
    }
    EXPECT_NEAR(area, a.Volume() - a.Intersection(b).Volume(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectDiffPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RectDiffTest, WorksIn3D) {
  const auto pieces =
      Difference(MakeBox3(0, 0, 0, 4, 4, 4), MakeBox3(1, 1, 1, 3, 3, 3));
  EXPECT_LE(pieces.size(), 6u);
  double volume = 0;
  for (const auto& p : pieces) volume += p.Volume();
  EXPECT_DOUBLE_EQ(volume, 64.0 - 8.0);
}

TEST(RectDiffTest, WorksIn4D) {
  const Box4 a({0, 0, 0, 0}, {2, 2, 2, 1});
  const Box4 b({1, 1, 1, 0.5}, {3, 3, 3, 1});
  const auto pieces = Difference(a, b);
  EXPECT_LE(pieces.size(), 8u);
  double volume = 0;
  for (const auto& p : pieces) volume += p.Volume();
  // vol(a) − vol(a ∩ b) = 8 − 1·1·1·0.5.
  EXPECT_DOUBLE_EQ(volume, 8.0 - 0.5);
}

// Randomized algebraic laws of the box operations.
class BoxAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxAlgebraTest, LawsHold) {
  common::Rng rng(GetParam() * 71);
  auto random_box = [&rng]() {
    std::array<double, 3> lo, hi;
    for (int d = 0; d < 3; ++d) {
      lo[d] = rng.Uniform(0, 10);
      hi[d] = lo[d] + rng.Uniform(0, 5);
    }
    return Box3(lo, hi);
  };
  for (int iter = 0; iter < 300; ++iter) {
    const Box3 a = random_box(), b = random_box(), c = random_box();
    // Commutativity.
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_EQ(a.Intersection(b), b.Intersection(a));
    // Union is an upper bound; intersection a lower bound.
    EXPECT_TRUE(a.Union(b).Contains(a));
    EXPECT_TRUE(a.Union(b).Contains(b));
    EXPECT_TRUE(a.Contains(a.Intersection(b)));
    // Idempotence.
    EXPECT_EQ(a.Union(a), a);
    EXPECT_EQ(a.Intersection(a), a);
    // Associativity of union.
    EXPECT_EQ(a.Union(b).Union(c), a.Union(b.Union(c)));
    // Volumes: |a ∪ b| >= max(|a|, |b|); |a ∩ b| <= min(|a|, |b|).
    EXPECT_GE(a.Union(b).Volume(), std::max(a.Volume(), b.Volume()) - 1e-9);
    EXPECT_LE(a.Intersection(b).Volume(),
              std::min(a.Volume(), b.Volume()) + 1e-9);
    // Intersects consistency.
    EXPECT_EQ(a.Intersects(b), !a.Intersection(b).IsEmpty());
    // Enlargement is non-negative and zero iff contained.
    EXPECT_GE(a.Enlargement(b), -1e-12);
    if (a.Contains(b)) {
      EXPECT_NEAR(a.Enlargement(b), 0.0, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxAlgebraTest, ::testing::Values(1, 2, 3));

// --- Grid -------------------------------------------------------------------

TEST(GridTest, BlockIdRoundTrip) {
  const GridPartition grid(MakeBox2(0, 0, 100, 100), 10, 8);
  EXPECT_EQ(grid.block_count(), 80);
  for (int64_t id = 0; id < grid.block_count(); ++id) {
    EXPECT_EQ(grid.BlockId(grid.BlockCoordOf(id)), id);
  }
}

TEST(GridTest, BlockOfPoint) {
  const GridPartition grid(MakeBox2(0, 0, 100, 100), 10, 10);
  EXPECT_EQ(grid.BlockOfPoint({5, 5}), (BlockCoord{0, 0}));
  EXPECT_EQ(grid.BlockOfPoint({95, 15}), (BlockCoord{9, 1}));
  // Outside points clamp to edge blocks.
  EXPECT_EQ(grid.BlockOfPoint({-5, 50}), (BlockCoord{0, 5}));
  EXPECT_EQ(grid.BlockOfPoint({500, 500}), (BlockCoord{9, 9}));
}

TEST(GridTest, BlockBoxTilesTheSpace) {
  const GridPartition grid(MakeBox2(0, 0, 60, 30), 6, 3);
  double total = 0;
  for (int64_t id = 0; id < grid.block_count(); ++id) {
    total += grid.BlockBox(id).Volume();
  }
  EXPECT_DOUBLE_EQ(total, 60.0 * 30.0);
  EXPECT_EQ(grid.BlockBox(BlockCoord{0, 0}), MakeBox2(0, 0, 10, 10));
  EXPECT_EQ(grid.BlockBox(BlockCoord{5, 2}), MakeBox2(50, 20, 60, 30));
}

TEST(GridTest, BlocksIntersectingWindow) {
  const GridPartition grid(MakeBox2(0, 0, 100, 100), 10, 10);
  const auto blocks = grid.BlocksIntersecting(MakeBox2(15, 15, 35, 25));
  // Covers x blocks 1..3, y blocks 1..2 -> 6 blocks.
  EXPECT_EQ(blocks.size(), 6u);
}

TEST(GridTest, WindowOnBlockBoundaryDoesNotSpill) {
  const GridPartition grid(MakeBox2(0, 0, 100, 100), 10, 10);
  const auto blocks = grid.BlocksIntersecting(MakeBox2(10, 10, 20, 20));
  EXPECT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], grid.BlockId(BlockCoord{1, 1}));
}

TEST(GridTest, WindowOutsideSpaceClipped) {
  const GridPartition grid(MakeBox2(0, 0, 100, 100), 10, 10);
  EXPECT_TRUE(grid.BlocksIntersecting(MakeBox2(200, 200, 300, 300)).empty());
  const auto blocks = grid.BlocksIntersecting(MakeBox2(-50, -50, 5, 5));
  EXPECT_EQ(blocks.size(), 1u);
}

TEST(GridTest, BlocksIntersectingMatchesBruteForce) {
  const GridPartition grid(MakeBox2(-10, 5, 90, 85), 13, 9);
  common::Rng rng(55);
  for (int iter = 0; iter < 300; ++iter) {
    const double x = rng.Uniform(-30, 100), y = rng.Uniform(-10, 100);
    const Box2 window =
        MakeBox2(x, y, x + rng.Uniform(0.5, 60), y + rng.Uniform(0.5, 60));
    auto got = grid.BlocksIntersecting(window);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> expected;
    for (int64_t id = 0; id < grid.block_count(); ++id) {
      const Box2 block = grid.BlockBox(id);
      const Box2 overlap = block.Intersection(window);
      // The grid treats boundary-only contact as non-membership (a window
      // ending exactly on a block edge does not claim the next block), so
      // the oracle requires positive overlap area.
      if (!overlap.IsEmpty() && overlap.Volume() > 1e-9) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(got, expected) << "window " << window;
  }
}

TEST(GridTest, MembershipConsistency) {
  // Every point maps to a block whose box contains it.
  const GridPartition grid(MakeBox2(-20, 10, 80, 90), 7, 13);
  common::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.Uniform(-20, 80), rng.Uniform(10, 90)};
    const Box2 box = grid.BlockBox(grid.BlockOfPoint(p));
    EXPECT_TRUE(box.ContainsPoint({p.x, p.y}));
  }
}

}  // namespace
}  // namespace mars::geometry
