#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "motion/kalman.h"

namespace mars::motion {
namespace {

TEST(KalmanTest, ConvergesOnLinearMotion) {
  KalmanFilterPredictor kf;
  for (int t = 0; t < 60; ++t) {
    kf.Observe({2.0 * t, 100.0 - 1.0 * t});
  }
  ASSERT_TRUE(kf.ready());
  EXPECT_NEAR(kf.velocity().x, 2.0, 0.05);
  EXPECT_NEAR(kf.velocity().y, -1.0, 0.05);
  for (int steps = 1; steps <= 8; ++steps) {
    const Prediction p = kf.Predict(steps);
    EXPECT_NEAR(p.mean.x, 2.0 * (59 + steps), 0.5) << steps;
    EXPECT_NEAR(p.mean.y, 100.0 - 1.0 * (59 + steps), 0.5) << steps;
  }
}

TEST(KalmanTest, FirstObservationSeedsPosition) {
  KalmanFilterPredictor kf;
  kf.Observe({10, 20});
  const Prediction p = kf.Predict(1);
  EXPECT_NEAR(p.mean.x, 10.0, 1.0);
  EXPECT_NEAR(p.mean.y, 20.0, 1.0);
  EXPECT_FALSE(kf.ready());
}

TEST(KalmanTest, PredictOnEmptyFilterIsSafe) {
  KalmanFilterPredictor kf;
  const Prediction p = kf.Predict(3);
  EXPECT_GE(p.cov_xx, 1e5);
}

TEST(KalmanTest, UncertaintyGrowsWithHorizon) {
  KalmanFilterPredictor kf;
  for (int t = 0; t < 40; ++t) kf.Observe({3.0 * t, 0});
  const Prediction p1 = kf.Predict(1);
  const Prediction p10 = kf.Predict(10);
  EXPECT_GT(p10.cov_xx + p10.cov_yy, p1.cov_xx + p1.cov_yy);
}

TEST(KalmanTest, FiltersMeasurementNoise) {
  // Noisy observations of linear motion: the KF velocity estimate should
  // be much closer to the truth than a naive two-point difference.
  common::Rng rng(7);
  KalmanFilterPredictor::Options options;
  options.measurement_noise = 4.0;
  options.process_noise = 0.01;
  KalmanFilterPredictor kf(options);
  geometry::Vec2 prev_noisy{0, 0}, noisy{0, 0};
  for (int t = 0; t < 300; ++t) {
    prev_noisy = noisy;
    noisy = {5.0 * t + rng.Normal(0, 2.0), rng.Normal(0, 2.0)};
    kf.Observe(noisy);
  }
  const double kf_error = std::abs(kf.velocity().x - 5.0);
  const double naive_error = std::abs((noisy - prev_noisy).x - 5.0);
  EXPECT_LT(kf_error, 1.0);
  EXPECT_LT(kf_error, naive_error);
}

TEST(KalmanTest, TracksTurns) {
  KalmanFilterPredictor kf;
  geometry::Vec2 pos{0, 0};
  for (int t = 0; t < 50; ++t) {
    pos += {5, 0};
    kf.Observe(pos);
  }
  for (int t = 0; t < 50; ++t) {
    pos += {0, 5};
    kf.Observe(pos);
  }
  // After a long northbound stretch the velocity must have rotated.
  EXPECT_NEAR(kf.velocity().x, 0.0, 0.5);
  EXPECT_NEAR(kf.velocity().y, 5.0, 0.5);
}

TEST(KalmanTest, CovarianceSymmetricAndPositive) {
  KalmanFilterPredictor kf;
  common::Rng rng(11);
  geometry::Vec2 pos{0, 0};
  double heading = 0.5;
  for (int t = 0; t < 100; ++t) {
    heading += rng.Normal(0, 0.2);
    pos += {5 * std::cos(heading), 5 * std::sin(heading)};
    kf.Observe(pos);
    const Prediction p = kf.Predict(4);
    EXPECT_GT(p.cov_xx, 0.0);
    EXPECT_GT(p.cov_yy, 0.0);
    // 2x2 positive semidefinite: det >= 0.
    EXPECT_GE(p.cov_xx * p.cov_yy - p.cov_xy * p.cov_xy, -1e-9);
  }
}

TEST(KalmanTest, DtScalesDynamics) {
  KalmanFilterPredictor::Options options;
  options.dt = 0.5;
  KalmanFilterPredictor kf(options);
  // Positions advance 2 per observation => velocity 4 per second.
  for (int t = 0; t < 60; ++t) kf.Observe({2.0 * t, 0});
  EXPECT_NEAR(kf.velocity().x, 4.0, 0.1);
}

}  // namespace
}  // namespace mars::motion
