#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/grid.h"
#include "motion/grid_probability.h"
#include "motion/matrix.h"
#include "motion/predictor.h"
#include "motion/rls.h"
#include "motion/sectors.h"

namespace mars::motion {
namespace {

// --- Matrix -----------------------------------------------------------------

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix i = Matrix::Identity(3);
  Matrix a(3, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 2) = 3;
  a(2, 0) = -1;
  const Matrix ai = a * i;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
    }
  }
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  int v = 1;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) a(r, c) = v++;
  v = 7;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 2; ++c) b(r, c) = v++;
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 58);
  EXPECT_DOUBLE_EQ(p(0, 1), 64);
  EXPECT_DOUBLE_EQ(p(1, 0), 139);
  EXPECT_DOUBLE_EQ(p(1, 1), 154);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 4);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 4; ++c) a(r, c) = r * 10 + c;
  const Matrix att = a.Transpose().Transpose();
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
}

TEST(MatrixTest, InverseRecoversIdentity) {
  common::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix a(4, 4);
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) a(r, c) = rng.Uniform(-2, 2);
    for (int d = 0; d < 4; ++d) a(d, d) += 3.0;  // keep well-conditioned
    auto inv = a.Inverse();
    ASSERT_TRUE(inv.ok());
    const Matrix prod = a * *inv;
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
      }
    }
  }
}

TEST(MatrixTest, SingularInverseFails) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_FALSE(a.Inverse().ok());
}

TEST(MatrixTest, PowZeroIsIdentity) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(1, 1) = 3;
  const Matrix p0 = a.Pow(0);
  EXPECT_DOUBLE_EQ(p0(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p0(1, 1), 1.0);
  const Matrix p3 = a.Pow(3);
  EXPECT_DOUBLE_EQ(p3(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(p3(1, 1), 27.0);
}

TEST(MatrixTest, ColumnVector) {
  const Matrix v = Matrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.cols(), 1);
  EXPECT_DOUBLE_EQ(v(2, 0), 3.0);
}

// --- RLS --------------------------------------------------------------------

TEST(RlsTest, RecoversPlantedTransition) {
  // y = A x with a known A; RLS must converge to it.
  Matrix a(3, 3);
  a(0, 0) = 0.9;
  a(0, 1) = 0.1;
  a(1, 1) = 1.0;
  a(1, 2) = -0.2;
  a(2, 0) = 0.3;
  a(2, 2) = 0.8;
  RlsEstimator rls(3, /*forgetting=*/1.0);
  common::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Matrix x(3, 1);
    for (int r = 0; r < 3; ++r) x(r, 0) = rng.Uniform(-5, 5);
    rls.Update(x, a * x);
  }
  EXPECT_LT((rls.transition() - a).Norm(), 1e-6);
  EXPECT_EQ(rls.update_count(), 500);
}

TEST(RlsTest, TracksDriftingSystemWithForgetting) {
  Matrix a1 = Matrix::Identity(2) * 0.5;
  Matrix a2 = Matrix::Identity(2) * 1.5;
  RlsEstimator rls(2, /*forgetting=*/0.9);
  common::Rng rng(9);
  auto feed = [&](const Matrix& a, int n) {
    for (int i = 0; i < n; ++i) {
      Matrix x(2, 1);
      x(0, 0) = rng.Uniform(-3, 3);
      x(1, 0) = rng.Uniform(-3, 3);
      rls.Update(x, a * x);
    }
  };
  feed(a1, 200);
  EXPECT_LT((rls.transition() - a1).Norm(), 1e-3);
  feed(a2, 200);
  EXPECT_LT((rls.transition() - a2).Norm(), 1e-3);
}

TEST(RlsTest, IdentityBeforeAnyUpdate) {
  RlsEstimator rls(4);
  EXPECT_LT((rls.transition() - Matrix::Identity(4)).Norm(), 1e-12);
}

// --- MotionPredictor --------------------------------------------------------

TEST(PredictorTest, LinearMotionPredictedExactly) {
  MotionPredictor predictor;
  // Constant velocity (3, -2) per step.
  for (int t = 0; t < 60; ++t) {
    predictor.Observe({3.0 * t, 100.0 - 2.0 * t});
  }
  ASSERT_TRUE(predictor.ready());
  for (int steps = 1; steps <= 5; ++steps) {
    const Prediction p = predictor.Predict(steps);
    EXPECT_NEAR(p.mean.x, 3.0 * (59 + steps), 0.5) << "steps " << steps;
    EXPECT_NEAR(p.mean.y, 100.0 - 2.0 * (59 + steps), 0.5);
  }
}

TEST(PredictorTest, UncertaintyGrowsWithHorizon) {
  MotionPredictor predictor;
  common::Rng rng(11);
  geometry::Vec2 pos{0, 0};
  double heading = 0.3;
  for (int t = 0; t < 200; ++t) {
    heading += rng.Normal(0, 0.2);  // noisy walker
    pos += geometry::Vec2{std::cos(heading), std::sin(heading)} * 5.0;
    predictor.Observe(pos);
  }
  const Prediction p1 = predictor.Predict(1);
  const Prediction p8 = predictor.Predict(8);
  EXPECT_GT(p8.cov_xx + p8.cov_yy, p1.cov_xx + p1.cov_yy);
}

TEST(PredictorTest, FallbackBeforeEnoughHistory) {
  MotionPredictor predictor;
  predictor.Observe({5, 7});
  const Prediction p = predictor.Predict(3);
  EXPECT_DOUBLE_EQ(p.mean.x, 5);
  EXPECT_DOUBLE_EQ(p.mean.y, 7);
  EXPECT_GE(p.cov_xx, 1e5);  // "don't trust me" covariance
}

TEST(PredictorTest, PredictOnEmptyPredictorIsSafe) {
  MotionPredictor predictor;
  const Prediction p = predictor.Predict(1);
  EXPECT_GE(p.cov_xx, 1e5);
}

TEST(PredictorTest, MeanStepDistanceTracksPace) {
  MotionPredictor predictor;
  EXPECT_DOUBLE_EQ(predictor.MeanStepDistance(), 0.0);
  for (int t = 0; t < 50; ++t) {
    predictor.Observe({4.0 * t, 0});
  }
  EXPECT_NEAR(predictor.MeanStepDistance(), 4.0, 1e-9);
  // Pace change is followed (EWMA).
  geometry::Vec2 pos{4.0 * 49, 0};
  for (int t = 0; t < 50; ++t) {
    pos += {10.0, 0};
    predictor.Observe(pos);
  }
  EXPECT_NEAR(predictor.MeanStepDistance(), 10.0, 0.1);
}

TEST(PredictorTest, TramLikePathMorePredictableThanWalk) {
  // The core premise behind the tram-vs-pedestrian gap in the paper's
  // buffer experiments.
  auto mean_error = [](double heading_sigma, uint64_t seed) {
    MotionPredictor predictor;
    common::Rng rng(seed);
    geometry::Vec2 pos{0, 0};
    double heading = 0.0;
    double err = 0.0;
    int count = 0;
    for (int t = 0; t < 300; ++t) {
      if (predictor.ready()) {
        const Prediction p = predictor.Predict(1);
        const geometry::Vec2 next =
            pos + geometry::Vec2{std::cos(heading), std::sin(heading)} * 5.0;
        err += (p.mean - next).Norm();
        ++count;
      }
      heading += rng.Normal(0, heading_sigma);
      pos += geometry::Vec2{std::cos(heading), std::sin(heading)} * 5.0;
      predictor.Observe(pos);
    }
    return err / count;
  };
  EXPECT_LT(mean_error(0.02, 1), mean_error(0.5, 1));
}

// --- Grid probabilities -----------------------------------------------------

TEST(GridProbabilityTest, SumsToOne) {
  MotionPredictor predictor;
  for (int t = 0; t < 40; ++t) predictor.Observe({10.0 * t, 500});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  common::Rng rng(13);
  const BlockProbabilities probs =
      ComputeBlockProbabilities(predictor, grid, GridProbabilityOptions(),
                                rng);
  ASSERT_FALSE(probs.empty());
  double total = 0;
  for (const auto& [block, p] : probs) {
    EXPECT_GT(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GridProbabilityTest, MassConcentratesAhead) {
  // Eastbound client: blocks to the east of the current position should
  // hold most of the mass.
  MotionPredictor predictor;
  for (int t = 0; t < 40; ++t) predictor.Observe({10.0 * t, 500});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  common::Rng rng(17);
  const BlockProbabilities probs =
      ComputeBlockProbabilities(predictor, grid, GridProbabilityOptions(),
                                rng);
  double east = 0, west = 0;
  const double current_x = 10.0 * 39;
  for (const auto& [block, p] : probs) {
    const auto center = grid.BlockBox(block).Center();
    (center[0] >= current_x ? east : west) += p;
  }
  EXPECT_GT(east, 0.9);
}

TEST(GridProbabilityTest, DeterministicGivenSeed) {
  MotionPredictor predictor;
  for (int t = 0; t < 40; ++t) predictor.Observe({5.0 * t, 5.0 * t});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  common::Rng rng_a(21), rng_b(21);
  const auto a = ComputeBlockProbabilities(predictor, grid,
                                           GridProbabilityOptions(), rng_a);
  const auto b = ComputeBlockProbabilities(predictor, grid,
                                           GridProbabilityOptions(), rng_b);
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [block, p] : a) {
    auto it = b.find(block);
    ASSERT_NE(it, b.end());
    EXPECT_DOUBLE_EQ(it->second, p);
  }
}

TEST(GridProbabilityTest, FrameFootprintSpreadsMass) {
  // With query-frame spreading, blocks well ahead of the predicted point
  // (but inside the predicted frame) receive mass.
  MotionPredictor predictor;
  for (int t = 0; t < 40; ++t) predictor.Observe({2.0 * t, 500});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);  // 50 m blocks
  GridProbabilityOptions point_options;
  GridProbabilityOptions frame_options;
  frame_options.frame_half_width = 150;
  frame_options.frame_half_height = 150;
  common::Rng rng_a(31), rng_b(31);
  const auto point_probs =
      ComputeBlockProbabilities(predictor, grid, point_options, rng_a);
  const auto frame_probs =
      ComputeBlockProbabilities(predictor, grid, frame_options, rng_b);
  EXPECT_GT(frame_probs.size(), point_probs.size());
  // The block 150 m ahead of the farthest point prediction gets frame
  // mass.
  double frame_max_x = 0, point_max_x = 0;
  for (const auto& [block, p] : frame_probs) {
    frame_max_x = std::max(frame_max_x, grid.BlockBox(block).hi(0));
  }
  for (const auto& [block, p] : point_probs) {
    point_max_x = std::max(point_max_x, grid.BlockBox(block).hi(0));
  }
  EXPECT_GT(frame_max_x, point_max_x);
}

TEST(GridProbabilityTest, OutOfSpaceMassDropped) {
  // A client heading straight at the boundary: probabilities stay
  // normalized using only in-space mass.
  MotionPredictor predictor;
  for (int t = 0; t < 40; ++t) predictor.Observe({25.0 * t, 500});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  GridProbabilityOptions options;
  options.horizon = 20;  // predictions fly off the east edge
  common::Rng rng(37);
  const auto probs = ComputeBlockProbabilities(predictor, grid, options, rng);
  double total = 0;
  for (const auto& [block, p] : probs) total += p;
  if (!probs.empty()) {
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

// --- Sectors ----------------------------------------------------------------

TEST(SectorTest, PointSectorsForFourDirections) {
  SectorPartition partition({0, 0}, 4);
  EXPECT_EQ(partition.SectorOfPoint({10, 0}), 0);    // east
  EXPECT_EQ(partition.SectorOfPoint({0, 10}), 1);    // north
  EXPECT_EQ(partition.SectorOfPoint({-10, 0}), 2);   // west
  EXPECT_EQ(partition.SectorOfPoint({0, -10}), 3);   // south
  EXPECT_EQ(partition.SectorOfPoint({10, 1}), 0);
  EXPECT_EQ(partition.SectorOfPoint({1, 10}), 1);
}

TEST(SectorTest, EightDirections) {
  SectorPartition partition({0, 0}, 8);
  EXPECT_EQ(partition.SectorOfPoint({10, 0}), 0);
  EXPECT_EQ(partition.SectorOfPoint({10, 10}), 1);
  EXPECT_EQ(partition.SectorOfPoint({0, 10}), 2);
  EXPECT_EQ(partition.SectorOfPoint({-10, 10}), 3);
  EXPECT_EQ(partition.SectorOfPoint({-10, -10}), 5);
  EXPECT_EQ(partition.SectorOfPoint({0, -10}), 6);
}

TEST(SectorTest, BoundaryBlocksAlternate) {
  // Blocks centered exactly on the 45° partition line between sector 0
  // and 1 (for k = 4) must alternate between the two sectors.
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 100, 100),
                                     10, 10);
  SectorPartition partition({0, 0}, 4);
  std::vector<int32_t> sectors;
  for (int d = 1; d <= 6; ++d) {
    // Diagonal blocks (d, d) have centers on the 45° line from the origin.
    sectors.push_back(
        partition.SectorOfBlock(grid, grid.BlockId({d, d})));
  }
  int count0 = 0, count1 = 0;
  for (int32_t s : sectors) {
    EXPECT_TRUE(s == 0 || s == 1);
    (s == 0 ? count0 : count1)++;
  }
  EXPECT_EQ(count0, 3);
  EXPECT_EQ(count1, 3);
  // And they alternate pairwise.
  for (size_t i = 1; i < sectors.size(); ++i) {
    EXPECT_NE(sectors[i], sectors[i - 1]);
  }
}

TEST(SectorTest, AggregateNormalizes) {
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 100, 100),
                                     10, 10);
  SectorPartition partition({50, 50}, 4);
  BlockProbabilities probs;
  probs[grid.BlockId({8, 5})] = 0.6;  // east
  probs[grid.BlockId({5, 8})] = 0.3;  // north
  probs[grid.BlockId({1, 5})] = 0.1;  // west
  const auto dir = partition.Aggregate(grid, probs);
  ASSERT_EQ(dir.p.size(), 4u);
  EXPECT_NEAR(std::accumulate(dir.p.begin(), dir.p.end(), 0.0), 1.0, 1e-12);
  EXPECT_NEAR(dir.p[0], 0.6, 1e-12);
  EXPECT_NEAR(dir.p[1], 0.3, 1e-12);
  EXPECT_NEAR(dir.p[2], 0.1, 1e-12);
  EXPECT_NEAR(dir.p[3], 0.0, 1e-12);
  EXPECT_EQ(dir.block_sector.size(), 3u);
}

TEST(SectorTest, AggregateConservesProbability) {
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 100, 100),
                                     10, 10);
  common::Rng rng(61);
  for (int k : {1, 2, 4, 8}) {
    SectorPartition partition({50, 50}, k);
    BlockProbabilities probs;
    for (int i = 0; i < 30; ++i) {
      probs[rng.UniformInt(0, grid.block_count() - 1)] +=
          rng.UniformDouble();
    }
    const auto dir = partition.Aggregate(grid, probs);
    ASSERT_EQ(static_cast<int>(dir.p.size()), k);
    double total = 0;
    for (double p : dir.p) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(dir.block_sector.size(), probs.size());
    for (const auto& [block, sector] : dir.block_sector) {
      EXPECT_GE(sector, 0);
      EXPECT_LT(sector, k);
    }
  }
}

TEST(SectorTest, SingleSectorTakesEverything) {
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 100, 100),
                                     10, 10);
  SectorPartition partition({50, 50}, 1);
  BlockProbabilities probs;
  probs[3] = 0.7;
  probs[97] = 0.3;
  const auto dir = partition.Aggregate(grid, probs);
  ASSERT_EQ(dir.p.size(), 1u);
  EXPECT_DOUBLE_EQ(dir.p[0], 1.0);
}

TEST(MatrixTest, PowMatchesRepeatedMultiply) {
  common::Rng rng(67);
  Matrix a(3, 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) a(r, c) = rng.Uniform(-0.5, 0.5);
  }
  Matrix expected = Matrix::Identity(3);
  for (int k = 0; k <= 6; ++k) {
    EXPECT_LT((a.Pow(k) - expected).Norm(), 1e-12) << "k=" << k;
    expected = expected * a;
  }
}

TEST(MatrixTest, OneByOneInverse) {
  Matrix a(1, 1);
  a(0, 0) = 4.0;
  auto inv = a.Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_DOUBLE_EQ((*inv)(0, 0), 0.25);
}

TEST(SectorTest, EmptyProbabilitiesYieldUniform) {
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 100, 100),
                                     10, 10);
  SectorPartition partition({50, 50}, 4);
  const auto dir = partition.Aggregate(grid, {});
  for (double p : dir.p) EXPECT_DOUBLE_EQ(p, 0.25);
}

}  // namespace
}  // namespace mars::motion
