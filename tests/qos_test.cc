#include <cstdint>

#include <gtest/gtest.h>

#include "qos/adaptive_ladder.h"
#include "qos/resolution_policy.h"

namespace mars {
namespace {

constexpr int64_t kSecond = 1'000'000;  // virtual microseconds

// ---------------------------------------------------------------------------
// SpeedResolutionMap

TEST(SpeedResolutionMapTest, DefaultIsPaperIdentity) {
  const qos::SpeedResolutionMap map;
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(0.0), 0.0);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(0.3), 0.3);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(1.0), 1.0);
  // Out-of-range speeds clamp.
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(7.0), 1.0);
}

TEST(SpeedResolutionMapTest, ExponentAndFloorShapeTheCurve) {
  const qos::SpeedResolutionMap map(/*exponent=*/2.0, /*floor=*/0.1);
  // w = floor + (1 - floor) * s^e.
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(0.0), 0.1);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(0.5), 0.1 + 0.9 * 0.25);
  EXPECT_DOUBLE_EQ(map.MapSpeedToResolution(1.0), 1.0);
}

// ---------------------------------------------------------------------------
// StaticResolutionPolicy

TEST(StaticPolicyTest, PassthroughAndInertFeedback) {
  const qos::SpeedResolutionMap map(/*exponent=*/0.5, /*floor=*/0.2);
  qos::StaticResolutionPolicy policy(map);
  for (const double s : {0.0, 0.25, 0.6, 1.0}) {
    EXPECT_DOUBLE_EQ(policy.MapSpeedToResolution(s),
                     map.MapSpeedToResolution(s));
  }
  // Feedback is ignored and the snapshot stays all-zero.
  policy.OnBackpressure(qos::BackpressureKind::kShed, kSecond);
  policy.OnDelivered(4096, 2 * kSecond);
  const qos::PolicySnapshot snap = policy.snapshot();
  EXPECT_EQ(snap.ladder_step, 0);
  EXPECT_EQ(snap.step_ups, 0);
  EXPECT_EQ(snap.top_ups, 0);
  EXPECT_EQ(snap.map_calls, 0);
  EXPECT_DOUBLE_EQ(snap.resolution_sum, 0.0);
}

// ---------------------------------------------------------------------------
// AdaptiveLadderPolicy

qos::AdaptiveLadderPolicy::Options LadderOptions(int32_t steps) {
  qos::AdaptiveLadderPolicy::Options options;
  options.ladder_steps = steps;
  options.dwell_micros = kSecond;
  options.target_goodput_bps = 1000.0;
  return options;
}

TEST(AdaptiveLadderTest, RungMappingInterpolatesToCoarsest) {
  qos::AdaptiveLadderPolicy policy(LadderOptions(4));
  // Rung 0 is the static mapping.
  EXPECT_DOUBLE_EQ(policy.MapSpeedToResolution(0.5), 0.5);
  // Each shed climbs one rung: w = base + (1 - base) * k / 4.
  policy.OnBackpressure(qos::BackpressureKind::kShed, 0);
  EXPECT_DOUBLE_EQ(policy.MapSpeedToResolution(0.5), 0.625);
  policy.OnBackpressure(qos::BackpressureKind::kShed, 1);
  EXPECT_DOUBLE_EQ(policy.MapSpeedToResolution(0.5), 0.75);
  policy.OnBackpressure(qos::BackpressureKind::kShed, 2);
  policy.OnBackpressure(qos::BackpressureKind::kShed, 3);
  EXPECT_EQ(policy.ladder_step(), 4);
  EXPECT_DOUBLE_EQ(policy.MapSpeedToResolution(0.5), 1.0);
  // The top rung saturates.
  policy.OnBackpressure(qos::BackpressureKind::kShed, 4);
  EXPECT_EQ(policy.ladder_step(), 4);
  EXPECT_EQ(policy.snapshot().step_ups, 4);
}

TEST(AdaptiveLadderTest, DeferredClimbRespectsDwellShedDoesNot) {
  qos::AdaptiveLadderPolicy policy(LadderOptions(4));
  policy.OnBackpressure(qos::BackpressureKind::kDefer, 100);
  EXPECT_EQ(policy.ladder_step(), 1);
  // A second deferral inside the dwell window is absorbed.
  policy.OnBackpressure(qos::BackpressureKind::kDefer, 100 + kSecond / 2);
  EXPECT_EQ(policy.ladder_step(), 1);
  // A shed climbs immediately regardless of the dwell.
  policy.OnBackpressure(qos::BackpressureKind::kShed, 100 + kSecond / 2 + 1);
  EXPECT_EQ(policy.ladder_step(), 2);
  // Once the dwell elapses, a deferral climbs again.
  policy.OnBackpressure(qos::BackpressureKind::kDefer, 100 + 3 * kSecond);
  EXPECT_EQ(policy.ladder_step(), 3);
}

TEST(AdaptiveLadderTest, StarvationClimbsOnlyFromRungZero) {
  qos::AdaptiveLadderPolicy policy(LadderOptions(4));
  // Two deliveries establish a goodput EWMA of ~10 B/s, far below the
  // 500 B/s starvation threshold: the ladder climbs off rung 0 without
  // any admission verdict.
  policy.OnDelivered(10, 1 * kSecond);
  EXPECT_EQ(policy.ladder_step(), 0);  // no EWMA sample yet
  policy.OnDelivered(10, 2 * kSecond);
  EXPECT_EQ(policy.ladder_step(), 1);
  EXPECT_GT(policy.snapshot().goodput_ewma_bps, 0.0);
  // Above rung 0 the same starving goodput does NOT climb further — a
  // coarse rung's goodput is structurally low because it requests
  // little. (The delivery lands inside the backpressure-clear window of
  // a fresh shed so the descent probe cannot fire either.)
  policy.OnBackpressure(qos::BackpressureKind::kShed, 3 * kSecond);
  EXPECT_EQ(policy.ladder_step(), 2);
  policy.OnDelivered(10, 3 * kSecond + kSecond / 2);
  EXPECT_EQ(policy.ladder_step(), 2);
  EXPECT_EQ(policy.snapshot().step_ups, 2);
}

TEST(AdaptiveLadderTest, ProbeDownBacksOffExponentiallyAndResets) {
  qos::AdaptiveLadderPolicy policy(LadderOptions(4));
  // Two immediate sheds: rung 2.
  policy.OnBackpressure(qos::BackpressureKind::kShed, 0);
  policy.OnBackpressure(qos::BackpressureKind::kShed, 100'000);
  ASSERT_EQ(policy.ladder_step(), 2);
  // Seed the EWMA, then deliver with backpressure clear for a full
  // dwell: the ladder probes one rung down.
  policy.OnDelivered(10, 200'000);
  policy.OnDelivered(10, 1'200'000);
  EXPECT_EQ(policy.ladder_step(), 1);
  EXPECT_EQ(policy.snapshot().top_ups, 1);
  // The probe fails — the wider band draws a deferral — so the ladder
  // climbs back AND doubles the probe backoff.
  policy.OnBackpressure(qos::BackpressureKind::kDefer, 2'300'000);
  ASSERT_EQ(policy.ladder_step(), 2);
  // One dwell after the failed probe is no longer enough to probe again…
  policy.OnDelivered(10, 3'400'000);
  EXPECT_EQ(policy.ladder_step(), 2);
  // …but two dwells are.
  policy.OnDelivered(10, 4'400'000);
  EXPECT_EQ(policy.ladder_step(), 1);
  // This probe holds (no backpressure follows), so the next descent —
  // still at the doubled spacing — resets the backoff to 1.
  policy.OnDelivered(10, 6'500'000);
  EXPECT_EQ(policy.ladder_step(), 0);
  EXPECT_EQ(policy.snapshot().top_ups, 3);
}

TEST(AdaptiveLadderTest, SnapshotTracksRequestTrace) {
  qos::AdaptiveLadderPolicy policy(LadderOptions(2));
  policy.OnBackpressure(qos::BackpressureKind::kShed, 0);
  // Rung 1 of 2: w = s + (1 - s) / 2.
  const double w1 = policy.MapSpeedToResolution(0.2);
  const double w2 = policy.MapSpeedToResolution(0.8);
  EXPECT_DOUBLE_EQ(w1, 0.6);
  EXPECT_DOUBLE_EQ(w2, 0.9);
  const qos::PolicySnapshot snap = policy.snapshot();
  EXPECT_EQ(snap.ladder_step, 1);
  EXPECT_EQ(snap.map_calls, 2);
  EXPECT_DOUBLE_EQ(snap.resolution_sum, w1 + w2);
  EXPECT_EQ(snap.step_ups, 1);
  EXPECT_EQ(snap.top_ups, 0);
}

TEST(AdaptiveLadderTest, IdenticalFeedbackYieldsIdenticalTrajectory) {
  // The determinism contract in miniature: two policies fed the same
  // serial feedback stream agree on every decision.
  qos::AdaptiveLadderPolicy a(LadderOptions(3));
  qos::AdaptiveLadderPolicy b(LadderOptions(3));
  const auto feed = [](qos::AdaptiveLadderPolicy& p) {
    p.OnBackpressure(qos::BackpressureKind::kDefer, 50'000);
    p.OnDelivered(900, 400'000);
    p.OnDelivered(1200, 900'000);
    p.OnBackpressure(qos::BackpressureKind::kShed, 1'000'000);
    p.OnDelivered(700, 2'500'000);
    p.OnDelivered(800, 3'600'000);
    p.MapSpeedToResolution(0.4);
  };
  feed(a);
  feed(b);
  const qos::PolicySnapshot sa = a.snapshot();
  const qos::PolicySnapshot sb = b.snapshot();
  EXPECT_EQ(sa.ladder_step, sb.ladder_step);
  EXPECT_DOUBLE_EQ(sa.goodput_ewma_bps, sb.goodput_ewma_bps);
  EXPECT_EQ(sa.step_ups, sb.step_ups);
  EXPECT_EQ(sa.top_ups, sb.top_ups);
  EXPECT_EQ(sa.map_calls, sb.map_calls);
  EXPECT_DOUBLE_EQ(sa.resolution_sum, sb.resolution_sum);
}

}  // namespace
}  // namespace mars
