#!/bin/sh
# End-to-end smoke test of the mars_sim CLI: generate -> info -> run,
# both from a persisted database and from a fresh scene.
set -e
BIN_DIR="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BIN_DIR/tools/mars_sim" generate --objects 10 --seed 5 --out "$TMP/city.mars"
"$BIN_DIR/tools/mars_sim" info --db "$TMP/city.mars" | grep -q "objects : 10"
"$BIN_DIR/tools/mars_sim" run --db "$TMP/city.mars" --tour tram --speed 0.5 \
    --frames 40 --client buffered | grep -q "cache hit rate"
"$BIN_DIR/tools/mars_sim" run --objects 10 --seed 5 --tour walk --speed 0.8 \
    --frames 30 --client naive | grep -q "mean response / query"
"$BIN_DIR/tools/mars_sim" run --objects 10 --seed 5 --frames 30 \
    --client streaming --kalman --index naive-point | grep -q "index I/O"
# A degraded link: loss + scheduled outages still terminate and report
# the fault metrics.
"$BIN_DIR/tools/mars_sim" run --objects 10 --seed 5 --frames 40 \
    --client buffered --loss 0.05 --outage-rate 30 --outage-secs 5 \
    | grep -q "outage frames"
# Out-of-core store: the first disk run builds the page file, the rerun
# restores the persisted index from it instead of rebuilding. The page
# file lives in $TMP so the trap cleans it up with everything else.
"$BIN_DIR/tools/mars_sim" run --db "$TMP/city.mars" --frames 30 \
    --client streaming --store disk --pages "$TMP/city.pages" \
    --evict motion | grep -q "restored shards 0/1"
test -s "$TMP/city.pages"
"$BIN_DIR/tools/mars_sim" run --db "$TMP/city.mars" --frames 30 \
    --client streaming --store disk --pages "$TMP/city.pages" \
    | grep -q "restored shards 1/1"
# --store disk without --pages fails loudly.
if "$BIN_DIR/tools/mars_sim" run --db "$TMP/city.mars" --frames 30 \
    --store disk 2>/dev/null; then exit 1; fi
# Unknown flags and missing files fail loudly.
if "$BIN_DIR/tools/mars_sim" run --loss 0.9 2>/dev/null; then exit 1; fi
if "$BIN_DIR/tools/mars_sim" run --bogus 2>/dev/null; then exit 1; fi
if "$BIN_DIR/tools/mars_sim" info --db /nonexistent 2>/dev/null; then exit 1; fi
echo "cli smoke ok"
