#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mesh/mesh.h"
#include "mesh/primitives.h"
#include "mesh/subdivide.h"
#include "wavelet/decompose.h"
#include "wavelet/multires_mesh.h"
#include "wavelet/reconstruct.h"

namespace mars::wavelet {
namespace {

// Builds a displaced fine mesh from `base` with the given per-level
// displacement amplitudes, mirroring the scene generator.
mesh::Mesh DisplacedFine(const mesh::Mesh& base, int levels,
                         double amplitude, double decay, uint64_t seed) {
  common::Rng rng(seed);
  mesh::Mesh current = base;
  double amp = amplitude;
  for (int j = 0; j < levels; ++j) {
    mesh::Subdivision sub = mesh::Subdivide(current);
    for (const mesh::OddVertex& odd : sub.odd_vertices) {
      geometry::Vec3 dir{rng.Normal(), rng.Normal(), rng.Normal()};
      const double n = dir.Norm();
      if (n > 1e-12) dir = dir / n;
      sub.mesh.mutable_vertex(odd.vertex) +=
          dir * (amp * rng.Uniform(0.2, 1.0));
    }
    current = std::move(sub.mesh);
    amp *= decay;
  }
  return current;
}

class DecomposeTest : public ::testing::TestWithParam<int> {
 protected:
  int levels() const { return GetParam(); }
};

TEST_P(DecomposeTest, PerfectReconstructionWithAllCoefficients) {
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, levels(), 2.0, 0.5, 17);
  auto mr = Decompose(fine, base, levels());
  ASSERT_TRUE(mr.ok()) << mr.status().ToString();
  const mesh::Mesh rebuilt = Reconstruct(*mr, 0.0);
  ASSERT_EQ(rebuilt.vertex_count(), fine.vertex_count());
  EXPECT_LT(MaxVertexDistance(rebuilt, fine), 1e-9);
}

TEST_P(DecomposeTest, CoefficientCountMatchesEdgeGrowth) {
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, levels(), 2.0, 0.5, 18);
  auto mr = Decompose(fine, base, levels());
  ASSERT_TRUE(mr.ok());
  // Level j has E_j = E_0·4^j coefficients (one per coarse edge).
  const int64_t e0 = mesh::CountEdges(base);
  int64_t expected = 0;
  for (int j = 0; j < levels(); ++j) expected += e0 * (1LL << (2 * j));
  EXPECT_EQ(mr->coefficient_count(), expected);
  for (int j = 0; j < levels(); ++j) {
    EXPECT_EQ(static_cast<int64_t>(mr->CoefficientsAtLevel(j).size()),
              e0 * (1LL << (2 * j)));
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, DecomposeTest, ::testing::Values(1, 2, 3));

TEST(DecomposeTest, RejectsMismatchedConnectivity) {
  const mesh::Mesh base = mesh::MakeTetrahedron();
  const mesh::Mesh fine = DisplacedFine(base, 2, 1.0, 0.5, 3);
  // Claiming 1 level for a 2-level mesh must fail.
  EXPECT_FALSE(Decompose(fine, base, 1).ok());
  // Wrong base entirely must fail.
  EXPECT_FALSE(Decompose(fine, mesh::MakeOctahedron(), 2).ok());
}

TEST(DecomposeTest, RejectsNegativeLevels) {
  const mesh::Mesh base = mesh::MakeTetrahedron();
  EXPECT_FALSE(Decompose(base, base, -1).ok());
}

TEST(DecomposeTest, ZeroLevelsYieldsBaseOnly) {
  const mesh::Mesh base = mesh::MakeTetrahedron();
  auto mr = Decompose(base, base, 0);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mr->coefficient_count(), 0);
  EXPECT_EQ(mr->base().vertex_count(), 4);
}

TEST(DecomposeTest, ValuesNormalizedToUnitInterval) {
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, 3, 2.0, 0.4, 19);
  auto mr = Decompose(fine, base, 3);
  ASSERT_TRUE(mr.ok());
  double max_w = 0.0;
  for (const WaveletCoefficient& c : mr->coefficients()) {
    EXPECT_GE(c.w, 0.0);
    EXPECT_LE(c.w, 1.0);
    max_w = std::max(max_w, c.w);
    EXPECT_NEAR(c.magnitude, c.detail.Norm(), 1e-12);
  }
  EXPECT_DOUBLE_EQ(max_w, 1.0);  // the largest coefficient defines 1.0
}

TEST(DecomposeTest, SmoothObjectHasZeroValues) {
  // No displacement: all details are exactly zero.
  const mesh::Mesh base = mesh::MakeOctahedron();
  mesh::Mesh fine = base;
  for (int j = 0; j < 2; ++j) fine = mesh::Subdivide(fine).mesh;
  auto mr = Decompose(fine, base, 2);
  ASSERT_TRUE(mr.ok());
  for (const WaveletCoefficient& c : mr->coefficients()) {
    EXPECT_DOUBLE_EQ(c.w, 0.0);
    EXPECT_DOUBLE_EQ(c.magnitude, 0.0);
  }
}

TEST(DecomposeTest, CoarseLevelsCarryLargerValues) {
  // With decaying displacement, mean |coefficient| should fall with level.
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, 3, 3.0, 0.4, 21);
  auto mr = Decompose(fine, base, 3);
  ASSERT_TRUE(mr.ok());
  std::vector<double> mean_w(3, 0.0);
  std::vector<int> count(3, 0);
  for (const WaveletCoefficient& c : mr->coefficients()) {
    mean_w[c.level] += c.w;
    ++count[c.level];
  }
  for (int j = 0; j < 3; ++j) mean_w[j] /= count[j];
  EXPECT_GT(mean_w[0], mean_w[1]);
  EXPECT_GT(mean_w[1], mean_w[2]);
}

TEST(ReconstructTest, ApproximationErrorMonotoneInThreshold) {
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, 3, 2.0, 0.5, 23);
  auto mr = Decompose(fine, base, 3);
  ASSERT_TRUE(mr.ok());
  // Lowering w_min adds coefficients, so the error must not increase.
  const std::vector<double> thresholds = {1.1, 0.8, 0.5, 0.2, 0.0};
  double prev_error = std::numeric_limits<double>::max();
  for (double t : thresholds) {
    const double err = MeanVertexDistance(Reconstruct(*mr, t), fine);
    EXPECT_LE(err, prev_error + 1e-12) << "threshold " << t;
    prev_error = err;
  }
  EXPECT_NEAR(prev_error, 0.0, 1e-9);
}

TEST(ReconstructTest, SubsetSelectsIndividualCoefficients) {
  const mesh::Mesh base = mesh::MakeTetrahedron();
  const mesh::Mesh fine = DisplacedFine(base, 1, 1.0, 0.5, 29);
  auto mr = Decompose(fine, base, 1);
  ASSERT_TRUE(mr.ok());
  ASSERT_GT(mr->coefficient_count(), 0);

  // Applying exactly one coefficient moves exactly one vertex.
  std::vector<bool> include(mr->coefficient_count(), false);
  include[0] = true;
  const mesh::Mesh partial = ReconstructSubset(*mr, include);
  const mesh::Mesh none = Reconstruct(*mr, 2.0);
  int moved = 0;
  for (int32_t v = 0; v < partial.vertex_count(); ++v) {
    if ((partial.vertex(v) - none.vertex(v)).Norm() > 1e-12) ++moved;
  }
  EXPECT_EQ(moved, 1);
}

TEST(ReconstructTest, BaseShapePreservedAtAnyThreshold) {
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, 2, 2.0, 0.5, 31);
  auto mr = Decompose(fine, base, 2);
  ASSERT_TRUE(mr.ok());
  const mesh::Mesh coarse = Reconstruct(*mr, 2.0);  // no coefficients
  // Even vertices (the base) keep their fine positions.
  for (int32_t v = 0; v < base.vertex_count(); ++v) {
    EXPECT_LT((coarse.vertex(v) - fine.vertex(v)).Norm(), 1e-12);
  }
}

TEST(SupportRegionTest, BoundsContainVertexAndParents) {
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, 2, 2.0, 0.5, 37);
  auto mr = Decompose(fine, base, 2);
  ASSERT_TRUE(mr.ok());
  for (const WaveletCoefficient& c : mr->coefficients()) {
    const geometry::Vec3& v = c.vertex_position;
    EXPECT_TRUE(c.support_bounds.ContainsPoint({v.x, v.y, v.z}))
        << "coefficient " << c.id;
    // The parent edge endpoints are in the one-ring of the odd vertex.
    const geometry::Vec3& a = fine.vertex(c.parent_a);
    const geometry::Vec3& b = fine.vertex(c.parent_b);
    EXPECT_TRUE(c.support_bounds.ContainsPoint({a.x, a.y, a.z}));
    EXPECT_TRUE(c.support_bounds.ContainsPoint({b.x, b.y, b.z}));
  }
}

TEST(SupportRegionTest, SubsetMonotonicityProperty) {
  // Paper Sec. VI-A: if R2 ⊆ R1 then the region affected by a new
  // coefficient's support within R2 is a subset of that within R1:
  // (R2 ∩ r_k) ⊆ (R1 ∩ r_k). Verified over the generated support MBBs.
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, 2, 2.0, 0.5, 41);
  auto mr = Decompose(fine, base, 2);
  ASSERT_TRUE(mr.ok());

  const geometry::Box3 r1 = mr->Bounds();
  geometry::Box3 r2 = r1;
  // Shrink R2 to an octant of R1.
  for (size_t d = 0; d < 3; ++d) {
    r2.set_hi(d, 0.5 * (r1.lo(d) + r1.hi(d)));
  }
  ASSERT_TRUE(r1.Contains(r2));
  for (const WaveletCoefficient& c : mr->coefficients()) {
    const geometry::Box3 affected1 = r1.Intersection(c.support_bounds);
    const geometry::Box3 affected2 = r2.Intersection(c.support_bounds);
    EXPECT_TRUE(affected1.Contains(affected2));
  }
}

TEST(MultiResMeshTest, CountAtLeastMonotone) {
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, 3, 2.0, 0.5, 43);
  auto mr = Decompose(fine, base, 3);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mr->CountAtLeast(0.0), mr->coefficient_count());
  int64_t prev = mr->coefficient_count() + 1;
  for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const int64_t n = mr->CountAtLeast(w);
    EXPECT_LE(n, prev);
    prev = n;
  }
  EXPECT_GE(mr->CountAtLeast(1.0), 1);  // the max-magnitude coefficient
}

TEST(MultiResMeshTest, BoundsCoverBaseAndSupports) {
  const mesh::Mesh base = mesh::MakeBuilding(20, 25, 15, 5);
  const mesh::Mesh fine = DisplacedFine(base, 2, 2.0, 0.5, 47);
  auto mr = Decompose(fine, base, 2);
  ASSERT_TRUE(mr.ok());
  const geometry::Box3 bounds = mr->Bounds();
  EXPECT_TRUE(bounds.Contains(mr->base().Bounds()));
  for (const WaveletCoefficient& c : mr->coefficients()) {
    EXPECT_TRUE(bounds.Contains(c.support_bounds));
  }
}

TEST(DecomposeTest, OpenTerrainMeshRoundTrips) {
  // The wavelet pipeline is not limited to closed building shells: a
  // displaced terrain patch (open mesh with boundary) decomposes and
  // reconstructs exactly.
  const mesh::Mesh base = mesh::MakeTerrainPatch(3, 3, 90, 90);
  common::Rng rng(71);
  mesh::Mesh fine = base;
  for (int j = 0; j < 2; ++j) {
    mesh::Subdivision sub = mesh::Subdivide(fine);
    for (const mesh::OddVertex& odd : sub.odd_vertices) {
      // Terrain-style displacement: mostly vertical.
      sub.mesh.mutable_vertex(odd.vertex) +=
          geometry::Vec3{rng.Normal(0, 0.2), rng.Normal(0, 0.2),
                         rng.Normal(0, 2.0)};
    }
    fine = std::move(sub.mesh);
  }
  auto mr = Decompose(fine, base, 2);
  ASSERT_TRUE(mr.ok()) << mr.status().ToString();
  EXPECT_LT(MaxVertexDistance(Reconstruct(*mr, 0.0), fine), 1e-9);
  // Coarse approximations remain valid open meshes.
  const mesh::Mesh coarse = Reconstruct(*mr, 0.5);
  EXPECT_TRUE(coarse.Validate().ok());
}

TEST(ReconstructTest, IdsAlignWithSubdivisionOrder) {
  // The decompose/reconstruct contract: level-j coefficients appear in the
  // deterministic odd-vertex order of Subdivide. ReconstructSubset CHECKs
  // this internally; run it across several levels to exercise the CHECK.
  const mesh::Mesh base = mesh::MakeOctahedron();
  const mesh::Mesh fine = DisplacedFine(base, 3, 1.0, 0.5, 53);
  auto mr = Decompose(fine, base, 3);
  ASSERT_TRUE(mr.ok());
  const std::vector<bool> all(mr->coefficient_count(), true);
  const mesh::Mesh rebuilt = ReconstructSubset(*mr, all);
  EXPECT_LT(MaxVertexDistance(rebuilt, fine), 1e-9);
}

}  // namespace
}  // namespace mars::wavelet
